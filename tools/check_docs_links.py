#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md and docs/*.md for inline markdown links and checks that
every relative target (optionally with a #fragment) exists on disk.
Absolute URLs (http/https/mailto) are out of scope — CI must not depend
on the network. Heading fragments are validated against the target
file's headings using GitHub's anchor rules (lowercase, strip
punctuation, spaces to dashes).

Usage: tools/check_docs_links.py [repo_root]   (exit 1 on any dead link)
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def headings_in(path: str) -> set[str]:
    with open(path, encoding="utf-8") as f:
        return {anchor_of(m.group(1)) for m in HEADING_RE.finditer(f.read())}


def check_file(md_path: str, root: str) -> list[str]:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = f.read()
    rel_md = os.path.relpath(md_path, root)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file fragment
            dest = md_path
        else:
            dest = os.path.normpath(os.path.join(os.path.dirname(md_path), path_part))
            if not os.path.exists(dest):
                errors.append(f"{rel_md}: dead link -> {target}")
                continue
        if fragment and dest.endswith(".md"):
            if anchor_of(fragment) not in headings_in(dest):
                errors.append(f"{rel_md}: dead anchor -> {target}")
    return errors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = [os.path.join(root, "README.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        files += sorted(
            os.path.join(docs, f) for f in os.listdir(docs) if f.endswith(".md")
        )
    errors = []
    for md in files:
        if os.path.exists(md):
            errors += check_file(md, root)
    for err in errors:
        print(err, file=sys.stderr)
    checked = ", ".join(os.path.relpath(f, root) for f in files)
    if errors:
        print(f"{len(errors)} dead link(s) across: {checked}", file=sys.stderr)
        return 1
    print(f"docs link check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
