// Multi-model co-location (src/serve/colocation.h): two trained models
// share ONE elastic device set. Each model keeps its own request queue,
// SLO tracker, and per-VN slots; a deadline-aware arbiter hands free
// slots to whichever model's oldest request is closest to its deadline,
// and a SHARED elastic budget sizes the set from the models' combined
// load. When model A bursts while model B idles, A borrows the whole
// set — the statistical multiplexing a dedicated per-model split can
// never offer.
//
//   $ ./build/examples/example_colocation
#include <cstdio>

#include "virtualflow.h"

namespace {

/// One trained model-to-serve: task + engine, built deterministically.
struct Deployment {
  vf::ProxyTask task;
  vf::Sequential model;
  vf::TrainRecipe recipe;
  vf::VirtualFlowEngine engine;
};

Deployment make_deployment(const char* task_name, std::uint64_t seed) {
  vf::ProxyTask task = vf::make_task(task_name, seed);
  vf::Sequential model = vf::make_proxy_model(task_name, seed);
  vf::TrainRecipe recipe = vf::make_recipe(task_name);
  vf::EngineConfig config;
  config.seed = seed;
  config.enforce_memory = false;
  vf::VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule,
                               *task.train, vf::model_profile("bert-base"),
                               vf::make_devices(vf::DeviceType::kV100, 2),
                               vf::VnMapping::even(8, 2, recipe.global_batch),
                               config);
  for (std::int64_t s = 0; s < engine.steps_per_epoch(); ++s) engine.train_step();
  return Deployment{std::move(task), std::move(model), std::move(recipe),
                    std::move(engine)};
}

}  // namespace

int main() {
  using namespace vf;
  using namespace vf::serve;
  const std::uint64_t seed = 42;

  // Two independently trained models, each an epoch of its task.
  Deployment a = make_deployment("cola-sim", seed);
  Deployment b = make_deployment("mrpc-sim", seed);
  std::printf("models ready: cola-sim %.1f%%, mrpc-sim %.1f%% accuracy\n",
              100 * a.engine.evaluate(*a.task.val),
              100 * b.engine.evaluate(*b.task.val));

  // Register both models with their own SLOs; mrpc is the stricter one.
  ModelRegistry registry;
  ModelConfig cfg_a;
  cfg_a.name = "cola";
  cfg_a.queue_capacity = 1024;
  cfg_a.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  cfg_a.deadline_s = 0.5;
  ModelConfig cfg_b = cfg_a;
  cfg_b.name = "mrpc";
  cfg_b.deadline_s = 0.3;
  registry.add(a.engine, *a.task.val, cfg_a);
  registry.add(b.engine, *b.task.val, cfg_b);

  // One shared set, 2 -> 8 devices, sized by the COMBINED load.
  ColocationConfig colo;
  colo.continuous = true;
  colo.elastic.high_watermark = 32;
  colo.elastic.low_watermark = 4;
  colo.elastic.max_devices = 8;
  colo.elastic.cooldown_batches = 1;
  ColocatedServer server(registry, colo);

  // Staggered bursts: cola spikes first, mrpc after — each model's burst
  // finds the other nearly idle, so the shared set absorbs both. mrpc's
  // rates are lower: its recipe's global batch is 16, so a full slice
  // carries only 2 requests — slice-granularity multiplexing fair-shares
  // DEVICE TIME, and a small-batch model buys less throughput with it.
  server.replay({phased_poisson_trace(seed,
                                      {{150.0, 0.5}, {1500.0, 1.0}, {75.0, 2.5}},
                                      a.task.val->size()),
                 phased_poisson_trace(seed + 1,
                                      {{100.0, 1.5}, {400.0, 1.0}, {50.0, 1.5}},
                                      b.task.val->size())});

  const char* names[2] = {"cola", "mrpc"};
  std::printf("\nco-located replay (%lld shared devices at the end):\n",
              static_cast<long long>(server.shared_devices()));
  for (std::int32_t m = 0; m < 2; ++m) {
    const SloSummary s = server.slo(m).summary();
    std::printf("  %s: %lld served, %lld rejected | p50 %.1f ms  p99 %.1f ms | "
                "SLO %.0f ms, hit %.1f%%\n",
                names[m], static_cast<long long>(s.completed),
                static_cast<long long>(s.rejected), s.p50_s * 1e3, s.p99_s * 1e3,
                registry.config(m).deadline_s * 1e3, 100 * s.hit_rate);
  }

  std::printf("\nshared elastic budget under the staggered bursts:\n");
  for (const ResizeEvent& e : server.resizes()) {
    std::printf("  t=%6.3fs  %s to %lld device(s)  (combined depth %lld, "
                "rolling migration %.0f ms)\n",
                e.time_s, e.to_devices > e.from_devices ? "grew" : "shrank",
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth), e.migration_s * 1e3);
  }

  // Work-unit accounting: every executed slice is tagged with its model.
  std::int64_t slices[2] = {0, 0};
  for (const BatchEvent& ev : server.batches()) ++slices[ev.model];
  std::printf("\nwork units: %lld cola slices, %lld mrpc slices on one device set\n",
              static_cast<long long>(slices[0]), static_cast<long long>(slices[1]));
  return 0;
}
