// Hyperparameter exploration (§6.3 / Fig 2): use virtual nodes to explore
// batch sizes that do not fit in one GPU's memory — on that one GPU.
//
//   $ ./build/examples/batch_exploration
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;
  const std::uint64_t seed = 42;

  // BERT-LARGE fine-tuning on the RTE proxy; an RTX 2080 Ti fits batch 4.
  const DeviceSpec& gpu = device_spec(DeviceType::kRtx2080Ti);
  const ModelProfile& profile = model_profile("bert-large");
  const std::int64_t max_fit = max_micro_batch(gpu, profile, /*use_grad_buffer=*/true);
  std::printf("bert-large on one %s: largest batch that fits is %lld\n", gpu.name.c_str(),
              static_cast<long long>(max_fit));

  ProxyTask task = make_task("rte-sim", seed);
  std::printf("exploring batch sizes on rte-sim (%lld training examples):\n\n",
              static_cast<long long>(task.train->size()));

  std::printf("  %-8s %-6s %-16s %-14s\n", "batch", "VNs", "final acc (%)",
              "sim time (s)");
  for (const std::int64_t batch : {4, 8, 16, 32, 64}) {
    const std::int64_t vns = std::max<std::int64_t>(1, batch / max_fit);
    Sequential model = make_proxy_model("rte-sim", seed);
    TrainRecipe recipe = make_recipe_with_batch("rte-sim", batch);
    EngineConfig config;
    config.seed = seed;
    VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             profile, make_devices(DeviceType::kRtx2080Ti, 1),
                             VnMapping::even(vns, 1, batch), config);
    const TrainResult res = train(engine, *task.val, recipe.epochs);
    std::printf("  %-8lld %-6lld %-16.2f %-14.0f%s\n", static_cast<long long>(batch),
                static_cast<long long>(vns), 100 * res.final_accuracy,
                res.total_sim_time_s,
                batch <= max_fit ? "  <- reachable without VirtualFlow" : "");
  }

  std::printf(
      "\nEvery row beyond batch %lld was previously out of reach on this GPU —\n"
      "vanilla frameworks would need %lld GPUs for batch 64. Virtual nodes turn\n"
      "the memory wall into extra sequential waves on the same device.\n",
      static_cast<long long>(max_fit), static_cast<long long>(64 / max_fit));
  return 0;
}
