// Quickstart: train a model with VirtualFlow and see the core guarantee —
// the same job, on different hardware, produces the exact same model.
//
//   $ ./build/examples/quickstart
//
// The walkthrough trains the qnli-sim proxy task (a BERT-BASE/GLUE
// stand-in) at global batch 64 with 8 virtual nodes, twice: once on one
// simulated V100, once on four. Because only the virtual-node -> device
// mapping changed, the trained parameters are bit-identical; only the
// (simulated) wall-clock differs.
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;
  const std::uint64_t seed = 42;

  // 1. A task, a model, and a training recipe. The recipe's batch size and
  //    learning-rate schedule are tuned once — they never change with the
  //    hardware below.
  ProxyTask task = make_task("qnli-sim", seed);
  Sequential model = make_proxy_model("qnli-sim", seed);

  std::printf("task: %s  (train %lld examples, target accuracy %.1f%%)\n",
              task.name.c_str(), static_cast<long long>(task.train->size()),
              100 * task.target_accuracy);

  auto run = [&](std::int64_t num_gpus) {
    TrainRecipe recipe = make_recipe("qnli-sim");
    EngineConfig config;
    config.seed = seed;

    // 2. The hardware mapping: 8 virtual nodes spread over the GPUs. This
    //    is the ONLY thing that changes between runs.
    auto devices = make_devices(DeviceType::kV100, num_gpus);
    auto mapping = VnMapping::even(/*total_vns=*/8, num_gpus, recipe.global_batch);

    VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule,
                             *task.train, model_profile("bert-base"), devices,
                             mapping, config);

    // 3. Train.
    TrainResult result = train(engine, *task.val, recipe.epochs);
    std::printf(
        "  %lld x V100: final accuracy %.2f%%  simulated time %.0f s  (%lld steps)\n",
        static_cast<long long>(num_gpus), 100 * result.final_accuracy,
        result.total_sim_time_s, static_cast<long long>(result.total_steps));
    return engine.parameters();
  };

  std::printf("\ntraining the same job on two different clusters:\n");
  Tensor params_1gpu = run(1);
  Tensor params_4gpu = run(4);

  // 4. The decoupling guarantee: identical results, different hardware.
  std::printf("\nparameters bit-identical across 1-GPU and 4-GPU runs: %s\n",
              params_1gpu.equals(params_4gpu) ? "YES" : "NO");
  return 0;
}
