// Resource elasticity (§4 of the paper): resize a job mid-training —
// downsize when the cluster reclaims GPUs, upsize when they come back —
// without restarting and without changing what the model learns.
//
//   $ ./build/examples/elastic_training
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;
  const std::uint64_t seed = 42;

  ProxyTask task = make_task("cola-sim", seed);
  Sequential model = make_proxy_model("cola-sim", seed);

  auto make_engine = [&]() {
    TrainRecipe recipe = make_recipe("cola-sim");
    EngineConfig config;
    config.seed = seed;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             model_profile("bert-base"),
                             make_devices(DeviceType::kV100, 4),
                             VnMapping::even(8, 4, recipe.global_batch), config);
  };

  // Reference: an uninterrupted run on 4 GPUs.
  VirtualFlowEngine steady = make_engine();
  // Elastic: same job, but the "scheduler" takes GPUs away and returns them.
  VirtualFlowEngine elastic = make_engine();

  const std::int64_t spe = steady.steps_per_epoch();
  std::printf("cola-sim: %lld steps/epoch, starting on 4 x V100\n",
              static_cast<long long>(spe));

  for (std::int64_t step = 0; step < 3 * spe; ++step) {
    if (step == spe / 2) {
      // Cluster pressure: down to 1 GPU. The 8 virtual nodes now run
      // sequentially on the survivor; semantics are untouched.
      elastic.resize(make_devices(DeviceType::kV100, 1));
      std::printf("  step %4lld: downsized to 1 GPU (migration cost %.3f s)\n",
                  static_cast<long long>(step),
                  elastic.sim_time_s() - steady.sim_time_s());
    }
    if (step == spe + spe / 2) {
      // GPUs are back — and newer ones, too: move to 8 RTX 2080 Tis.
      elastic.resize(make_devices(DeviceType::kRtx2080Ti, 8));
      std::printf("  step %4lld: upsized to 8 x RTX 2080 Ti\n",
                  static_cast<long long>(step));
    }
    steady.train_step();
    elastic.train_step();
  }

  const double acc_steady = steady.evaluate(*task.val);
  const double acc_elastic = elastic.evaluate(*task.val);
  std::printf("\nafter 3 epochs:\n");
  std::printf("  steady 4-GPU run:   accuracy %.2f%%  sim time %.0f s\n",
              100 * acc_steady, steady.sim_time_s());
  std::printf("  elastic run:        accuracy %.2f%%  sim time %.0f s\n",
              100 * acc_elastic, elastic.sim_time_s());
  std::printf("  models bit-identical: %s\n",
              steady.parameters().equals(elastic.parameters()) ? "YES" : "NO");
  std::printf(
      "\nThe elastic run took longer on the wall clock (it spent an epoch on one\n"
      "GPU) but learned the exact same model — the scheduler can take and return\n"
      "resources freely without touching convergence.\n");
  return 0;
}
