// Heterogeneous training (§5 of the paper): combine different GPU types in
// one job. The offline profiler measures each type; the solver picks an
// uneven batch split that equalizes step times; weighted gradient
// synchronization keeps the math identical to homogeneous training.
//
//   $ ./build/examples/heterogeneous_training
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;
  const std::uint64_t seed = 42;
  const std::int64_t global_batch = 2048;
  const ModelProfile& profile = model_profile("resnet50");

  // 1. Offline profiles: throughput-vs-batch curves per device type
  //    (§5.1.1 — in this library the "hardware" is the simulated device
  //    model, see DESIGN.md).
  std::printf("profiling resnet50 on each device type...\n");
  std::map<DeviceType, OfflineProfile> profiles;
  for (const DeviceType t : {DeviceType::kV100, DeviceType::kP100}) {
    double cost_s = 0.0;
    profiles.emplace(t, profile_workload(t, profile, {}, &cost_s));
    std::printf("  %-6s frontier batch %lld, profiling cost %.0f simulated s\n",
                device_type_name(t),
                static_cast<long long>(profiles.at(t).max_batch()), cost_s);
  }

  // 2. The solver: given 1 V100 + 2 P100, how should batch 2048 split?
  HeterogeneousSolver solver(profile, std::move(profiles));
  const auto best = solver.solve({{DeviceType::kV100, 1}, {DeviceType::kP100, 2}},
                                 global_batch);
  if (!best.has_value()) {
    std::printf("no feasible configuration\n");
    return 1;
  }
  std::printf("\nsolver configuration for batch %lld on 1 V100 + 2 P100:\n",
              static_cast<long long>(global_batch));
  for (const auto& a : best->assignment) {
    std::printf("  %-6s x%lld: per-GPU batch %lld as %lld VN(s) of %lld\n",
                device_type_name(a.type), static_cast<long long>(a.gpus),
                static_cast<long long>(a.per_gpu_batch),
                static_cast<long long>(a.vns_per_gpu),
                static_cast<long long>(a.per_vn_batch));
  }
  std::printf("  predicted: %.0f img/s (%s)\n", best->predicted_throughput,
              best->heterogeneous ? "heterogeneous" : "homogeneous fallback");

  // 3. Train under that configuration and compare against the same job on
  //    the V100 alone.
  ProxyTask task = make_task("imagenet-sim", seed);
  Sequential model = make_proxy_model("imagenet-sim", seed);
  auto run = [&](std::vector<Device> devices, VnMapping mapping, const char* label) {
    TrainRecipe recipe = make_recipe_with_batch("imagenet-sim", global_batch);
    recipe.epochs = 10;
    EngineConfig config;
    config.seed = seed;
    config.enforce_memory = false;  // proxy model; paper profile drives timing
    VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             profile, std::move(devices), std::move(mapping), config);
    TrainResult res = train(engine, *task.val, recipe.epochs);
    std::printf("  %-24s accuracy %.2f%%  sim time %.0f s\n", label,
                100 * res.final_accuracy, res.total_sim_time_s);
    return res;
  };

  std::printf("\ntraining 10 epochs:\n");
  // Build the solver's mapping: VNs per device, in device order.
  std::vector<std::vector<std::int64_t>> per_device;
  std::vector<std::pair<DeviceType, std::int64_t>> groups;
  for (const auto& a : best->assignment) {
    groups.push_back({a.type, a.gpus});
    for (std::int64_t g = 0; g < a.gpus; ++g)
      per_device.push_back(std::vector<std::int64_t>(
          static_cast<std::size_t>(a.vns_per_gpu), a.per_vn_batch));
  }
  const TrainResult hetero =
      run(make_heterogeneous(groups), VnMapping::uneven(per_device), "1 V100 + 2 P100:");
  const TrainResult homog = run(make_devices(DeviceType::kV100, 1),
                                VnMapping::even(8, 1, global_batch), "1 V100 alone:");

  std::printf("\nspeedup from the idle P100s: %.2fx at matching accuracy (%+.2f pts)\n",
              homog.total_sim_time_s / hetero.total_sim_time_s,
              100 * (hetero.final_accuracy - homog.final_accuracy));
  return 0;
}
