// Inference serving on virtual nodes (src/serve/): the same decoupling the
// paper built for elastic training carries a serving workload. Requests
// arrive on an open-loop Poisson trace, a size-or-timeout policy packs
// them into per-VN micro-batches, the engine runs forward-only passes on
// whatever devices are currently mapped, and when a traffic burst builds
// queue depth the server seamlessly resizes the device set — then shrinks
// it back once the queue drains.
//
//   $ ./build/examples/example_serving
//
// Pass --trace=<path> to dump the continuous replay's device timeline as
// Chrome trace-event JSON (open it at https://ui.perfetto.dev), and
// --metrics=<path> for the "serve.*" metrics snapshot.
#include <cstdio>
#include <cstring>
#include <string>

#include "virtualflow.h"

namespace {

/// Builds a freshly trained engine (one epoch of cola-sim). Construction
/// is deterministic, so two calls yield bit-identical engines — the A/B
/// below replays both batching modes from identical hardware state.
vf::VirtualFlowEngine make_trained_engine(const vf::ProxyTask& task,
                                          const vf::Sequential& model,
                                          const vf::TrainRecipe& recipe,
                                          std::uint64_t seed) {
  vf::EngineConfig config;
  config.seed = seed;
  config.enforce_memory = false;
  vf::VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule,
                               *task.train, vf::model_profile("bert-base"),
                               vf::make_devices(vf::DeviceType::kV100, 1),
                               vf::VnMapping::even(8, 1, recipe.global_batch),
                               config);
  for (std::int64_t s = 0; s < engine.steps_per_epoch(); ++s) engine.train_step();
  return engine;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vf;
  using namespace vf::serve;
  const std::uint64_t seed = 42;

  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) metrics_path = argv[i] + 10;
  }

  // A trained-ish model to serve: a few epochs of cola-sim.
  ProxyTask task = make_task("cola-sim", seed);
  Sequential model = make_proxy_model("cola-sim", seed);
  TrainRecipe recipe = make_recipe("cola-sim");
  VirtualFlowEngine engine = make_trained_engine(task, model, recipe, seed);
  std::printf("model ready: one epoch of cola-sim, accuracy %.2f%%\n",
              100 * engine.evaluate(*task.val));

  // Serve a morning-rush trace: steady 200 rps, a 2000 rps burst, drain.
  ServerConfig scfg;
  scfg.queue_capacity = 256;
  scfg.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  scfg.deadline_s = 0.5;
  scfg.elastic.high_watermark = 32;
  scfg.elastic.low_watermark = 4;
  scfg.elastic.max_devices = 8;
  scfg.elastic.cooldown_batches = 1;

  Server server(engine, *task.val, scfg);
  server.replay(phased_poisson_trace(seed,
                                     {{200.0, 1.0}, {2000.0, 1.5}, {100.0, 2.0}},
                                     task.val->size()));

  const SloSummary slo = server.slo().summary();
  std::printf("\nreplay: %lld served, %lld rejected (backpressure), %lld batches\n",
              static_cast<long long>(slo.completed),
              static_cast<long long>(slo.rejected),
              static_cast<long long>(server.batches().size()));
  std::printf("latency p50 %.1f ms  p95 %.1f ms  p99 %.1f ms  (SLO %.0f ms, hit %.1f%%)\n",
              slo.p50_s * 1e3, slo.p95_s * 1e3, slo.p99_s * 1e3,
              scfg.deadline_s * 1e3, 100 * slo.hit_rate);

  std::printf("\nelasticity under the burst:\n");
  for (const ResizeEvent& e : server.resizes()) {
    std::printf("  t=%6.3fs  %s to %lld device(s)  queue depth %lld\n", e.time_s,
                e.to_devices > e.from_devices ? "grew" : "shrank",
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth));
  }

  // Same trace, continuous batching, on a fresh identically-trained
  // engine (the first replay's elastic loop mutated the device set):
  // arrivals are admitted into in-flight per-VN slots as slices finish,
  // instead of waiting for the next full batch drain — queue wait drops,
  // especially under the burst.
  scfg.continuous = true;
  VirtualFlowEngine engine2 = make_trained_engine(task, model, recipe, seed);
  Server cont(engine2, *task.val, scfg);
  // The observability sinks ride the continuous replay: spans for every
  // slice on its device track, markers for resizes/rejections, "serve.*"
  // metrics. Recording never changes a record.
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  cont.set_observability({trace_path.empty() ? nullptr : &trace,
                          metrics_path.empty() ? nullptr : &metrics});
  cont.replay(phased_poisson_trace(seed,
                                   {{200.0, 1.0}, {2000.0, 1.5}, {100.0, 2.0}},
                                   task.val->size()));
  const SloSummary cslo = cont.slo().summary();
  std::printf("\ncontinuous batching on the same trace: %lld served, %lld slices\n",
              static_cast<long long>(cslo.completed),
              static_cast<long long>(cont.batches().size()));
  std::printf("mean queue wait %.1f ms -> %.1f ms  (in-flight %.1f ms -> %.1f ms)\n",
              slo.mean_queue_wait_s * 1e3, cslo.mean_queue_wait_s * 1e3,
              slo.mean_inflight_s * 1e3, cslo.mean_inflight_s * 1e3);

  if (!trace_path.empty() && trace.save(trace_path))
    std::printf("\nwrote %zu trace events to %s (open in https://ui.perfetto.dev)\n",
                trace.size(), trace_path.c_str());
  if (!metrics_path.empty() && metrics.save(metrics_path))
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  return 0;
}
