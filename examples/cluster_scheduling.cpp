// Cluster scheduling with elastic jobs (§4.2 / §6.4): run a shared-cluster
// trace under the elastic WFS scheduler and the static priority baseline,
// then under Gavel with and without heterogeneous allocations.
//
//   $ ./build/examples/cluster_scheduling
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;

  // A 10-job Poisson trace over the Table 3 workload mix.
  TraceOptions opt;
  opt.num_jobs = 10;
  opt.jobs_per_hour = 10.0;
  opt.seed = 5;
  opt.steps_scale = 0.6;
  const auto trace = poisson_trace(opt);
  std::printf("trace: %zu jobs, priorities in {1,5,10}, Table 3 workload mix\n\n",
              trace.size());

  // ---- Homogeneous 8-V100 pool: elastic WFS vs static priority.
  ClusterInventory pool;
  pool.per_type[DeviceType::kV100] = 8;
  ElasticWfsScheduler wfs;
  PriorityScheduler priority;
  const SimResult elastic = simulate(pool, trace, wfs);
  const SimResult fixed = simulate(pool, trace, priority);

  std::printf("8 x V100 pool:\n");
  std::printf("  %-22s %-12s %-12s\n", "", "elastic WFS", "priority");
  std::printf("  %-22s %-12.1f %-12.1f\n", "makespan (min)", elastic.makespan_s / 60,
              fixed.makespan_s / 60);
  std::printf("  %-22s %-12.1f %-12.1f\n", "median JCT (min)",
              median(elastic.jcts()) / 60, median(fixed.jcts()) / 60);
  std::printf("  %-22s %-12.1f %-12.1f\n", "median queue wait (s)",
              median(elastic.queueing_delays()), median(fixed.queueing_delays()));
  std::printf("  %-22s %-12.1f %-12.1f\n", "avg utilization (%)",
              100 * elastic.avg_utilization, 100 * fixed.avg_utilization);

  std::int64_t resizes = 0;
  for (const auto& j : elastic.jobs) resizes += j.resizes;
  std::printf("  elastic resizes performed: %lld (each a ~1 s virtual-node migration)\n\n",
              static_cast<long long>(resizes));

  // ---- Mixed cluster: Gavel vs Gavel + heterogeneous allocations.
  ClusterInventory mixed;
  mixed.per_type[DeviceType::kV100] = 4;
  mixed.per_type[DeviceType::kP100] = 8;
  mixed.per_type[DeviceType::kK80] = 16;
  TraceOptions hopt = opt;
  hopt.workloads = {"resnet50", "transformer"};
  const auto htrace = poisson_trace(hopt);

  GavelScheduler gavel({});
  GavelOptions ho;
  ho.heterogeneous_allocations = true;
  GavelScheduler gavel_ht(ho);
  const SimResult plain = simulate(mixed, htrace, gavel);
  const SimResult ht = simulate(mixed, htrace, gavel_ht);

  std::printf("4 V100 + 8 P100 + 16 K80 cluster (Gavel rounds of 6 min):\n");
  std::printf("  avg JCT: %.1f min (Gavel)  ->  %.1f min (Gavel+HT)  [%.1f%%]\n",
              mean(plain.jcts()) / 60, mean(ht.jcts()) / 60,
              100.0 * (1.0 - mean(ht.jcts()) / mean(plain.jcts())));
  std::int64_t hetero_grants = 0;
  for (const auto& j : ht.jobs)
    for (const auto& seg : j.timeline)
      if (seg.alloc.heterogeneous()) ++hetero_grants;
  std::printf("  heterogeneous allocation segments granted: %lld\n",
              static_cast<long long>(hetero_grants));
  return 0;
}
