// Cluster scheduling with elastic jobs (§4.2 / §6.4): run a shared-cluster
// trace under the elastic WFS scheduler and the static priority baseline,
// then under Gavel with and without heterogeneous allocations.
//
//   $ ./build/examples/cluster_scheduling
#include <cstdio>

#include "virtualflow.h"

int main() {
  using namespace vf;

  // A 10-job Poisson trace over the Table 3 workload mix.
  TraceOptions opt;
  opt.num_jobs = 10;
  opt.jobs_per_hour = 10.0;
  opt.seed = 5;
  opt.steps_scale = 0.6;
  const auto trace = poisson_trace(opt);
  std::printf("trace: %zu jobs, priorities in {1,5,10}, Table 3 workload mix\n\n",
              trace.size());

  // ---- Homogeneous 8-V100 pool: elastic WFS vs static priority.
  ClusterInventory pool;
  pool.per_type[DeviceType::kV100] = 8;
  ElasticWfsScheduler wfs;
  PriorityScheduler priority;
  const SimResult elastic = simulate(pool, trace, wfs);
  const SimResult fixed = simulate(pool, trace, priority);

  std::printf("8 x V100 pool:\n");
  std::printf("  %-22s %-12s %-12s\n", "", "elastic WFS", "priority");
  std::printf("  %-22s %-12.1f %-12.1f\n", "makespan (min)", elastic.makespan_s / 60,
              fixed.makespan_s / 60);
  std::printf("  %-22s %-12.1f %-12.1f\n", "median JCT (min)",
              median(elastic.jcts()) / 60, median(fixed.jcts()) / 60);
  std::printf("  %-22s %-12.1f %-12.1f\n", "median queue wait (s)",
              median(elastic.queueing_delays()), median(fixed.queueing_delays()));
  std::printf("  %-22s %-12.1f %-12.1f\n", "avg utilization (%)",
              100 * elastic.avg_utilization, 100 * fixed.avg_utilization);

  std::int64_t resizes = 0;
  for (const auto& j : elastic.jobs) resizes += j.resizes;
  std::printf("  elastic resizes performed: %lld (each a ~1 s virtual-node migration)\n\n",
              static_cast<long long>(resizes));

  // ---- Mixed cluster: Gavel vs Gavel + heterogeneous allocations.
  ClusterInventory mixed;
  mixed.per_type[DeviceType::kV100] = 4;
  mixed.per_type[DeviceType::kP100] = 8;
  mixed.per_type[DeviceType::kK80] = 16;
  TraceOptions hopt = opt;
  hopt.workloads = {"resnet50", "transformer"};
  const auto htrace = poisson_trace(hopt);

  GavelScheduler gavel({});
  GavelOptions ho;
  ho.heterogeneous_allocations = true;
  GavelScheduler gavel_ht(ho);
  const SimResult plain = simulate(mixed, htrace, gavel);
  const SimResult ht = simulate(mixed, htrace, gavel_ht);

  std::printf("4 V100 + 8 P100 + 16 K80 cluster (Gavel rounds of 6 min):\n");
  std::printf("  avg JCT: %.1f min (Gavel)  ->  %.1f min (Gavel+HT)  [%.1f%%]\n",
              mean(plain.jcts()) / 60, mean(ht.jcts()) / 60,
              100.0 * (1.0 - mean(ht.jcts()) / mean(plain.jcts())));
  std::int64_t hetero_grants = 0;
  for (const auto& j : ht.jobs)
    for (const auto& seg : j.timeline)
      if (seg.alloc.heterogeneous()) ++hetero_grants;
  std::printf("  heterogeneous allocation segments granted: %lld\n",
              static_cast<long long>(hetero_grants));

  // ---- Co-scheduling: a live serving lease and training jobs on ONE
  // economy (docs/scheduling.md). The server reports load through
  // DeviceLease::load(); the WFS policy arbitrates its desires against
  // the training queue; grants flow back through apply_grant().
  ProxyTask stask = make_task("cola-sim", 42);
  Sequential smodel = make_proxy_model("cola-sim", 42);
  TrainRecipe srecipe = make_recipe("cola-sim");
  EngineConfig ecfg;
  ecfg.seed = 42;
  ecfg.enforce_memory = false;
  VirtualFlowEngine sengine(smodel, *srecipe.optimizer, *srecipe.schedule,
                            *stask.train, model_profile("bert-base"),
                            make_devices(DeviceType::kV100, 1),
                            VnMapping::even(8, 1, srecipe.global_batch), ecfg);
  serve::ServerConfig scfg;
  scfg.continuous = true;
  scfg.batch = {32, 0.01};
  scfg.deadline_s = 0.5;
  scfg.elastic.enabled = true;
  scfg.elastic.max_devices = 8;
  serve::Server server(sengine, *stask.val, scfg);
  server.set_cluster_governed();
  const auto strace = serve::phased_poisson_trace(
      7, {{100.0, 0.5}, {1200.0, 1.0}, {50.0, 1.0}}, stask.val->size());
  server.begin(strace);  // begin() keeps a pointer: strace outlives run()

  JobSpec sjob;
  sjob.id = 0;
  sjob.kind = JobKind::kServe;
  sjob.priority = 10.0;
  sjob.demand_gpus = 2;
  sjob.min_gpus = 1;
  sjob.max_gpus = 8;

  ClusterInventory cpool;
  cpool.per_type[DeviceType::kV100] = 16;
  ElasticWfsScheduler cosched_policy;
  ClusterController controller(cpool, cosched_policy);
  controller.add_serve_job(sjob, server);
  for (std::int64_t id = 1; id <= 3; ++id) {
    JobSpec t;
    t.id = id;
    t.workload = "resnet56";
    t.profile = model_profile("resnet56");
    t.global_batch = 128;
    t.total_steps = 4000;
    t.demand_gpus = 8;
    controller.add_train_job(t);
  }
  const ClusterReport creport = controller.run();
  server.finish();

  std::printf("\n16 x V100 one-economy run (elastic WFS): serving burst vs 3 "
              "training jobs\n");
  std::printf("  serving SLO hit rate: %.3f  (deadline 500 ms under a 1200 "
              "rps burst)\n", server.slo().summary().hit_rate);
  std::printf("  training makespan: %.1f s, final clock %.1f s\n",
              creport.train_makespan_s, creport.end_s);
  std::printf("  device grants issued to the serving lease:\n");
  for (const auto& g : creport.grants)
    std::printf("    t=%6.2f s  job %lld  %lld -> %lld devices (migration "
                "%.3f s)\n", g.time_s, static_cast<long long>(g.job_id),
                static_cast<long long>(g.from_devices),
                static_cast<long long>(g.to_devices), g.migration_s);
  return 0;
}
