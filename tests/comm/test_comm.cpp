// Collective cost model and the weighted-sum numerics of §5.2.
#include <gtest/gtest.h>

#include <algorithm>

#include "comm/comm.h"
#include "util/common.h"
#include "util/rng.h"

namespace vf {
namespace {

TEST(RingAllreduce, ZeroForSingleParticipant) {
  EXPECT_DOUBLE_EQ(ring_allreduce_time_s(1e9, 1, {}), 0.0);
}

TEST(RingAllreduce, GrowsWithBytes) {
  LinkSpec link;
  EXPECT_LT(ring_allreduce_time_s(1e6, 4, link), ring_allreduce_time_s(1e8, 4, link));
}

TEST(RingAllreduce, BandwidthTermApproaches2BytesOverBw) {
  // For large messages the ring moves ~2x bytes per node.
  LinkSpec link;
  link.latency_s = 0.0;
  const double bytes = 1e9;
  const double t = ring_allreduce_time_s(bytes, 16, link);
  EXPECT_NEAR(t, 2.0 * bytes / link.bandwidth_bytes * (15.0 / 16.0), 1e-6);
}

TEST(RingAllreduce, LatencyTermScalesWithWorld) {
  LinkSpec link;
  link.bandwidth_bytes = 1e15;  // latency dominated
  const double t4 = ring_allreduce_time_s(1.0, 4, link);
  const double t8 = ring_allreduce_time_s(1.0, 8, link);
  EXPECT_NEAR(t8 / t4, 14.0 / 6.0, 1e-6);  // 2(n-1) rounds
}

TEST(RingAllgather, ZeroForSingleAndGrowsWithWorld) {
  LinkSpec link;
  EXPECT_DOUBLE_EQ(ring_allgather_time_s(1e6, 1, link), 0.0);
  EXPECT_LT(ring_allgather_time_s(1e6, 2, link), ring_allgather_time_s(1e6, 8, link));
}

TEST(StateMigration, SubSecondLikePaper) {
  // §4.1: migrating model + stateful kernels "typically takes less than a
  // second". ResNet-50-scale state over the paper's 16 Gbps link:
  LinkSpec link;  // defaults = 16 Gbps
  const double state_bytes = 110e6;  // params + BN stats + slots
  EXPECT_LT(ring_allgather_time_s(state_bytes, 16, link), 1.0);
}

TEST(Broadcast, ZeroForSingle) {
  EXPECT_DOUBLE_EQ(broadcast_time_s(1e6, 1, {}), 0.0);
  EXPECT_GT(broadcast_time_s(1e6, 4, {}), 0.0);
}

TEST(WeightedSum, MatchesManualComputation) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3}, {10, 20, 30});
  Tensor out = weighted_sum({&a, &b}, {0.25, 0.75});
  EXPECT_FLOAT_EQ(out.at(0), 0.25F * 1 + 0.75F * 10);
  EXPECT_FLOAT_EQ(out.at(2), 0.25F * 3 + 0.75F * 30);
}

TEST(WeightedSum, PaperSection52Example) {
  // The paper's 6:2 example: weighting per-device means by 3/4 and 1/4
  // recovers the flat mean of all 8 gradients.
  CounterRng rng(1, 0);
  Tensor g = Tensor::randn({8}, rng);  // g1..g8 as one vector per "example"
  // Device means: mean(g1..g6), mean(g7..g8) — emulate with scalars.
  float g16 = 0.0F, g78 = 0.0F, all = 0.0F;
  for (int i = 0; i < 6; ++i) g16 += g.at(i);
  g16 /= 6.0F;
  for (int i = 6; i < 8; ++i) g78 += g.at(i);
  g78 /= 2.0F;
  for (int i = 0; i < 8; ++i) all += g.at(i);
  all /= 8.0F;
  Tensor d0 = Tensor::full({1}, g16);
  Tensor d1 = Tensor::full({1}, g78);
  Tensor weighted = weighted_sum({&d0, &d1}, {6.0 / 8.0, 2.0 / 8.0});
  EXPECT_NEAR(weighted.at(0), all, 1e-6F);
  // The naive flat average of device means is wrong (paper's point).
  Tensor naive = weighted_sum({&d0, &d1}, {0.5, 0.5});
  EXPECT_GT(std::abs(naive.at(0) - all), 1e-3F);
}

TEST(WeightedSum, DeterministicOrder) {
  // Reduction combines buffers in ascending index order, so the result is
  // bitwise stable across calls.
  CounterRng rng(2, 0);
  Tensor a = Tensor::randn({64}, rng);
  Tensor b = Tensor::randn({64}, rng);
  Tensor c = Tensor::randn({64}, rng);
  Tensor r1 = weighted_sum({&a, &b, &c}, {0.3, 0.3, 0.4});
  Tensor r2 = weighted_sum({&a, &b, &c}, {0.3, 0.3, 0.4});
  EXPECT_TRUE(r1.equals(r2));
}

TEST(Average, UniformWeights) {
  Tensor a = Tensor::full({2}, 1.0F);
  Tensor b = Tensor::full({2}, 3.0F);
  Tensor avg = average({&a, &b});
  EXPECT_FLOAT_EQ(avg.at(0), 2.0F);
}

TEST(WeightedSum, Validation) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(weighted_sum({}, {}), VfError);
  EXPECT_THROW(weighted_sum({&a}, {0.5, 0.5}), VfError);
  EXPECT_THROW(weighted_sum({&a, &b}, {0.5, 0.5}), VfError);
}

TEST(CommCost, InvalidInputsThrow) {
  EXPECT_THROW(ring_allreduce_time_s(1.0, 0, {}), VfError);
  EXPECT_THROW(ring_allreduce_time_s(-1.0, 2, {}), VfError);
}

}  // namespace
}  // namespace vf
