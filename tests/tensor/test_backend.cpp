// Backend-factory suite: the runtime dispatch policy behind
// VF_KERNELS=simd. What is asserted here is the *decision*, not just the
// bits — which tier serves which (op, shape) and under which registry
// rule — plus the bit-identity of the simd tier against the reference
// specification on the shapes the generic kernel suite does not reach
// (edge dims with a live lane axis, negative zero, NaN/Inf passthrough).
//
// Everything must pass on hosts WITHOUT the vector ISA too: there the
// factory serves every shape with the blocked tier under rule "isa", and
// the tier-specific asserts are skipped rather than weakened.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/common.h"
#include "util/rng.h"

namespace vf {
namespace {

using backend::BackendFactory;
using backend::Dispatch;
using backend::KernelOp;
using backend::ScopedSimdDisable;

/// Restores the global kernel mode and drops any contract fallbacks the
/// test registered.
struct FactoryGuard {
  KernelMode mode = TensorConfig::kernel_mode();
  ~FactoryGuard() {
    TensorConfig::set_kernel_mode(mode);
    BackendFactory::instance().clear_contract_fallbacks();
  }
};

/// True bitwise equality (Tensor::equals uses float ==, which conflates
/// +0/-0 and rejects equal NaNs — exactly the cases this suite probes).
bool bits_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(float)) == 0;
}

TEST(BackendFactory, ProbeAndAvailabilityAreCoherent) {
  BackendFactory& f = BackendFactory::instance();
  if (BackendFactory::simd_compiled()) {
    EXPECT_STREQ(BackendFactory::simd_isa(), "avx2");
  }
  // simd_available implies all three gates.
  if (f.simd_available()) {
    EXPECT_TRUE(BackendFactory::simd_compiled());
    EXPECT_TRUE(f.cpu_features().avx2);
    EXPECT_FALSE(f.simd_disabled());
  }
}

TEST(BackendFactory, ForceDisableFallsBackToBlockedUnderIsaRule) {
  FactoryGuard guard;
  BackendFactory& f = BackendFactory::instance();
  {
    ScopedSimdDisable disable;
    EXPECT_FALSE(f.simd_available());
    const Dispatch d = f.select(KernelOp::kMatmul, 64, 64, 64);
    EXPECT_EQ(d.tier, KernelMode::kBlocked);
    EXPECT_STREQ(d.rule, "isa");

    // Dispatch through the public kernel entry points still works and
    // still keeps the contract while disabled.
    CounterRng rng(3, 0x51);
    const Tensor a = Tensor::randn({17, 9}, rng);
    const Tensor b = Tensor::randn({9, 21}, rng);
    Tensor ref({17, 21}), simd({17, 21});
    kernels::matmul(a.data().data(), b.data().data(), ref.data().data(), 17, 9,
                    21, KernelMode::kReference);
    kernels::matmul(a.data().data(), b.data().data(), simd.data().data(), 17, 9,
                    21, KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(ref, simd));
  }
  // The guard restored the previous override.
  EXPECT_EQ(f.simd_disabled(), false);
}

TEST(BackendFactory, PerShapeIntrospectionNamesTheDecidingRule) {
  BackendFactory& f = BackendFactory::instance();
  if (!f.simd_available()) GTEST_SKIP() << "no vector ISA on this host";

  // A healthy GEMM shape is served by the vector kernel.
  Dispatch d = f.select(KernelOp::kMatmul, 64, 64, 64);
  EXPECT_EQ(d.tier, KernelMode::kSimd);
  EXPECT_STREQ(d.rule, "vector");

  // A lane axis shorter than one vector register has nothing to win.
  d = f.select(KernelOp::kMatmul, 64, 64, 3);
  EXPECT_EQ(d.tier, KernelMode::kBlocked);
  EXPECT_STREQ(d.rule, "narrow-n");

  // Transpose is pure data movement; the blocked tiles serve it.
  d = f.select(KernelOp::kTranspose, 64, 64, 64);
  EXPECT_EQ(d.tier, KernelMode::kBlocked);
  EXPECT_STREQ(d.rule, "no-simd-transpose");

  // Elementwise ops vectorize from one full register up.
  EXPECT_EQ(f.select(KernelOp::kAdd, 0, 0, 8).tier, KernelMode::kSimd);
  EXPECT_EQ(f.select(KernelOp::kAdd, 0, 0, 7).tier, KernelMode::kBlocked);
  EXPECT_EQ(f.select(KernelOp::kColumnSums, 40, 0, 11).tier, KernelMode::kSimd);
}

TEST(BackendFactory, ContractFallbackRegistryServesReferencePerShape) {
  FactoryGuard guard;
  BackendFactory& f = BackendFactory::instance();
  if (!f.simd_available()) GTEST_SKIP() << "no vector ISA on this host";

  ASSERT_EQ(f.contract_fallback_count(), 0U);
  f.register_contract_fallback(KernelOp::kMatmul, 40, 64, 200);
  EXPECT_EQ(f.contract_fallback_count(), 1U);

  // The registered shape is pinned to the executable specification...
  Dispatch d = f.select(KernelOp::kMatmul, 40, 64, 200);
  EXPECT_EQ(d.tier, KernelMode::kReference);
  EXPECT_STREQ(d.rule, "contract");
  // ...per shape AND per op: neighbours are untouched.
  EXPECT_EQ(f.select(KernelOp::kMatmul, 40, 64, 201).tier, KernelMode::kSimd);
  EXPECT_EQ(f.select(KernelOp::kMatmulTransposeRhs, 40, 64, 200).tier,
            KernelMode::kSimd);

  // Dispatch honors it end to end (trivially bit-identical — the point is
  // that the simd entry point routed to the reference loop).
  CounterRng rng(5, 0x52);
  const Tensor a = Tensor::randn({40, 64}, rng);
  const Tensor b = Tensor::randn({64, 200}, rng);
  Tensor ref({40, 200}), simd({40, 200});
  kernels::matmul(a.data().data(), b.data().data(), ref.data().data(), 40, 64,
                  200, KernelMode::kReference);
  kernels::matmul(a.data().data(), b.data().data(), simd.data().data(), 40, 64,
                  200, KernelMode::kSimd);
  EXPECT_TRUE(bits_equal(ref, simd));

  f.clear_contract_fallbacks();
  EXPECT_EQ(f.contract_fallback_count(), 0U);
  EXPECT_EQ(f.select(KernelOp::kMatmul, 40, 64, 200).tier, KernelMode::kSimd);
}

TEST(BackendFactory, ContractRegistryIsBoundedAndThrowsWhenFull) {
  FactoryGuard guard;
  BackendFactory& f = BackendFactory::instance();
  for (std::int64_t i = 0; i < 64; ++i)
    f.register_contract_fallback(KernelOp::kMul, 0, 0, 1000 + i);
  EXPECT_THROW(f.register_contract_fallback(KernelOp::kMul, 0, 0, 2000), VfError);
  f.clear_contract_fallbacks();
}

TEST(BackendFactory, KernelOpNamesRoundTrip) {
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kMatmul), "matmul");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kMatmulTransposeLhs), "tl");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kMatmulTransposeRhs), "tr");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kTranspose), "transpose");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kAdd), "add");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kMul), "mul");
  EXPECT_STREQ(backend::kernel_op_name(KernelOp::kColumnSums), "column_sums");
}

// ---- simd bit-identity on the edges the generic suite does not reach.

struct Shape {
  std::int64_t m, k, n;
};

/// Edge shapes with a live lane axis (n >= 8, so the vector kernel — not
/// a fallback — actually serves): degenerate and 1-sized m/k, odd
/// everything, panel boundaries (8/16/32) and their neighbours.
const std::vector<Shape> kEdgeShapes = {
    {0, 5, 9},  {5, 0, 9},   {1, 1, 8},   {3, 1, 12},  {1, 7, 33},
    {2, 3, 8},  {7, 5, 31},  {9, 11, 32}, {33, 7, 40}, {5, 13, 72},
};

void expect_matmul_family_bits_equal(const Tensor& a_mm, const Tensor& b_mm,
                                     const Shape& s) {
  Tensor ref({s.m, s.n}), simd({s.m, s.n});
  kernels::matmul(a_mm.data().data(), b_mm.data().data(), ref.data().data(),
                  s.m, s.k, s.n, KernelMode::kReference);
  kernels::matmul(a_mm.data().data(), b_mm.data().data(), simd.data().data(),
                  s.m, s.k, s.n, KernelMode::kSimd);
  EXPECT_TRUE(bits_equal(ref, simd))
      << "matmul " << s.m << "x" << s.k << "x" << s.n;
}

TEST(SimdBitIdentity, EdgeShapesMatchReferenceBitForBit) {
  CounterRng rng(41, 0x53);
  for (const Shape& s : kEdgeShapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    expect_matmul_family_bits_equal(a, b, s);

    const Tensor atl = Tensor::randn({s.k, s.m}, rng);
    Tensor ref({s.m, s.n}), simd({s.m, s.n});
    kernels::matmul_transpose_lhs(atl.data().data(), b.data().data(),
                                  ref.data().data(), s.m, s.k, s.n,
                                  KernelMode::kReference);
    kernels::matmul_transpose_lhs(atl.data().data(), b.data().data(),
                                  simd.data().data(), s.m, s.k, s.n,
                                  KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(ref, simd)) << "tl " << s.m << "x" << s.k << "x" << s.n;

    const Tensor btr = Tensor::randn({s.n, s.k}, rng);
    kernels::matmul_transpose_rhs(a.data().data(), btr.data().data(),
                                  ref.data().data(), s.m, s.k, s.n,
                                  KernelMode::kReference);
    kernels::matmul_transpose_rhs(a.data().data(), btr.data().data(),
                                  simd.data().data(), s.m, s.k, s.n,
                                  KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(ref, simd)) << "tr " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(SimdBitIdentity, NegativeZeroSurvivesEveryTier) {
  // -0.0 inputs are where a "harmless" re-association or a skipped term
  // shows up: (+0) + (-0) = +0 but (-0) + (-0) = -0. Seed operands with
  // signed zeros in every position parity and require exact bits.
  CounterRng rng(43, 0x54);
  const Shape s{9, 12, 16};
  Tensor a = Tensor::randn({s.m, s.k}, rng);
  Tensor b = Tensor::randn({s.k, s.n}, rng);
  for (std::int64_t i = 0; i < a.size(); i += 3) a.at(i) = -0.0F;
  for (std::int64_t i = 1; i < b.size(); i += 4) b.at(i) = -0.0F;
  expect_matmul_family_bits_equal(a, b, s);

  // Elementwise: a lane is one element; signed-zero sums must match.
  Tensor ref, simd;
  Tensor zpos = Tensor::full({4, 8}, 0.0F);
  Tensor zneg = Tensor::full({4, 8}, -0.0F);
  TensorConfig::set_kernel_mode(KernelMode::kReference);
  zneg.add_into(zneg, ref);
  TensorConfig::set_kernel_mode(KernelMode::kSimd);
  zneg.add_into(zneg, simd);
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  EXPECT_TRUE(bits_equal(ref, simd));
  EXPECT_EQ(std::signbit(simd.at(0)), true);  // (-0) + (-0) = -0
}

TEST(SimdBitIdentity, NanAndInfPassThroughIdentically) {
  // With no exact zeros in the lhs the reference zero-skip never fires,
  // so the chains are term-for-term identical and NaN/Inf must propagate
  // to the same bits. (With zeros, 0 * inf differs by documented design —
  // kernels.h.)
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  CounterRng rng(47, 0x55);
  const Shape s{6, 9, 24};
  Tensor a = Tensor::randn({s.m, s.k}, rng);
  Tensor b = Tensor::randn({s.k, s.n}, rng);
  for (float& v : a.data())
    if (v == 0.0F) v = 1.0F;  // keep the zero-skip out of play
  a.at(0, 3) = kInf;
  a.at(2, 1) = -kInf;
  a.at(4, 7) = kNan;
  b.at(1, 9) = kInf;
  b.at(5, 17) = kNan;
  expect_matmul_family_bits_equal(a, b, s);
}

TEST(SimdBitIdentity, ElementwiseAndColumnSumsMatchAcrossCounts) {
  // Sweep counts across the 8-lane boundary (tails 0..7) and odd column
  // counts for the strided reduction.
  CounterRng rng(53, 0x56);
  for (std::int64_t count : {1, 7, 8, 9, 15, 16, 17, 40, 64, 100}) {
    const Tensor a = Tensor::randn({count}, rng);
    const Tensor b = Tensor::randn({count}, rng);
    Tensor r1({count}), r2({count});
    kernels::add(a.data().data(), b.data().data(), r1.data().data(), count,
                 KernelMode::kReference);
    kernels::add(a.data().data(), b.data().data(), r2.data().data(), count,
                 KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(r1, r2)) << "add " << count;
    kernels::mul(a.data().data(), b.data().data(), r1.data().data(), count,
                 KernelMode::kReference);
    kernels::mul(a.data().data(), b.data().data(), r2.data().data(), count,
                 KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(r1, r2)) << "mul " << count;
  }
  for (const auto& [rows, cols] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {0, 9}, {1, 8}, {23, 11}, {40, 31}, {7, 64}}) {
    const Tensor m = Tensor::randn({rows, cols}, rng);
    Tensor r1({cols}), r2({cols});
    kernels::column_sums(m.data().data(), r1.data().data(), rows, cols,
                         KernelMode::kReference);
    kernels::column_sums(m.data().data(), r2.data().data(), rows, cols,
                         KernelMode::kSimd);
    EXPECT_TRUE(bits_equal(r1, r2)) << "column_sums " << rows << "x" << cols;
  }
}

TEST(SimdBitIdentity, TensorOpsHonorTheSimdMode) {
  FactoryGuard guard;
  CounterRng rng(59, 0x57);
  const Tensor a = Tensor::randn({33, 17}, rng);
  const Tensor b = Tensor::randn({17, 29}, rng);

  TensorConfig::set_kernel_mode(KernelMode::kReference);
  const Tensor ref = a.matmul(b);
  const Tensor ref_cs = a.column_sums();
  TensorConfig::set_kernel_mode(KernelMode::kSimd);
  const Tensor simd = a.matmul(b);
  const Tensor simd_cs = a.column_sums();

  EXPECT_TRUE(bits_equal(ref, simd));
  EXPECT_TRUE(bits_equal(ref_cs, simd_cs));
}

}  // namespace
}  // namespace vf
