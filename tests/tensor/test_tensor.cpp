// Tensor math against hand-computed values; the numerical floor under the
// whole training stack.
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.rank(), 2);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(Tensor, FromValuesAndAccessors) {
  Tensor t = Tensor::from_values({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 1), 2.0F);
  EXPECT_EQ(t.at(1, 0), 3.0F);
  EXPECT_EQ(t.at(1, 1), 4.0F);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 2);
}

TEST(Tensor, FromValuesShapeMismatchThrows) {
  EXPECT_THROW(Tensor::from_values({2, 2}, {1, 2, 3}), VfError);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(4), VfError);
  EXPECT_THROW(t.at(2, 0), VfError);
  EXPECT_THROW(t.at(0, -1), VfError);
}

TEST(Tensor, FillAndFull) {
  Tensor t = Tensor::full({3}, 2.5F);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_EQ(t.at(i), 2.5F);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3}, {4, 5, 6});
  EXPECT_EQ(a.add(b).at(1), 7.0F);
  EXPECT_EQ(b.sub(a).at(2), 3.0F);
  EXPECT_EQ(a.mul(b).at(0), 4.0F);
  EXPECT_EQ(a.scaled(2.0F).at(2), 6.0F);
  Tensor c = a;
  c.axpy_(2.0F, b);
  EXPECT_EQ(c.at(0), 9.0F);  // 1 + 2*4
  c.add_scalar_(1.0F);
  EXPECT_EQ(c.at(0), 10.0F);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a.add(b), VfError);
  EXPECT_THROW(a.mul_(b), VfError);
}

TEST(Tensor, MatmulHandValues) {
  // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
  Tensor a = Tensor::from_values({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_values({2, 2}, {5, 6, 7, 8});
  Tensor c = a.matmul(b);
  EXPECT_EQ(c.at(0, 0), 19.0F);
  EXPECT_EQ(c.at(0, 1), 22.0F);
  EXPECT_EQ(c.at(1, 0), 43.0F);
  EXPECT_EQ(c.at(1, 1), 50.0F);
}

TEST(Tensor, MatmulRectangular) {
  Tensor a = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor b = Tensor::from_values({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = a.matmul(b);
  EXPECT_EQ(c.shape(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(c.at(0, 0), 4.0F);
  EXPECT_EQ(c.at(0, 1), 5.0F);
}

TEST(Tensor, MatmulInnerDimMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_THROW(a.matmul(b), VfError);
}

TEST(Tensor, MatmulTransposeLhsMatchesExplicit) {
  CounterRng rng(1, 0);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  const Tensor expect = a.transposed().matmul(b);
  const Tensor got = a.matmul_transpose_lhs(b);
  EXPECT_LT(expect.max_abs_diff(got), 1e-5F);
}

TEST(Tensor, MatmulTransposeRhsMatchesExplicit) {
  CounterRng rng(2, 0);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({5, 3}, rng);
  const Tensor expect = a.matmul(b.transposed());
  const Tensor got = a.matmul_transpose_rhs(b);
  EXPECT_LT(expect.max_abs_diff(got), 1e-5F);
}

TEST(Tensor, TransposedHandValues) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = a.transposed();
  EXPECT_EQ(t.shape(), (std::vector<std::int64_t>{3, 2}));
  EXPECT_EQ(t.at(0, 1), 4.0F);
  EXPECT_EQ(t.at(2, 0), 3.0F);
}

TEST(Tensor, Reductions) {
  Tensor a = Tensor::from_values({2, 2}, {1, -2, 3, -4});
  EXPECT_EQ(a.sum(), -2.0F);
  EXPECT_EQ(a.mean(), -0.5F);
  EXPECT_EQ(a.abs_max(), 4.0F);
  EXPECT_EQ(a.squared_norm(), 30.0F);
}

TEST(Tensor, ColumnSums) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = a.column_sums();
  EXPECT_EQ(s.at(0), 5.0F);
  EXPECT_EQ(s.at(1), 7.0F);
  EXPECT_EQ(s.at(2), 9.0F);
}

TEST(Tensor, RowArgmax) {
  Tensor a = Tensor::from_values({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto am = a.row_argmax();
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(Tensor, RowArgmaxTieBreaksFirst) {
  Tensor a = Tensor::from_values({1, 3}, {7, 7, 7});
  EXPECT_EQ(a.row_argmax()[0], 0);
}

TEST(Tensor, SliceRows) {
  Tensor a = Tensor::from_values({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor s = a.slice_rows(1, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0F);
  EXPECT_EQ(s.at(1, 1), 6.0F);
  EXPECT_THROW(a.slice_rows(2, 2), VfError);
}

TEST(Tensor, EqualsAndMaxAbsDiff) {
  Tensor a = Tensor::from_values({2}, {1, 2});
  Tensor b = Tensor::from_values({2}, {1, 2.5});
  EXPECT_TRUE(a.equals(a));
  EXPECT_FALSE(a.equals(b));
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 0.5F);
}

TEST(Tensor, RandnDeterministicInRng) {
  CounterRng r1(7, 1), r2(7, 1);
  Tensor a = Tensor::randn({8}, r1);
  Tensor b = Tensor::randn({8}, r2);
  EXPECT_TRUE(a.equals(b));
}

TEST(Tensor, RandnStddevScales) {
  CounterRng rng(8, 0);
  Tensor a = Tensor::randn({10000}, rng, 3.0F);
  float sum2 = 0.0F;
  for (float v : a.data()) sum2 += v * v;
  EXPECT_NEAR(sum2 / 10000.0F, 9.0F, 0.5F);
}

TEST(Tensor, ShapeStr) {
  EXPECT_EQ(Tensor({2, 3}).shape_str(), "[2, 3]");
  EXPECT_EQ(Tensor().shape_str(), "[]");
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({-1, 2}), VfError);
}

TEST(Tensor, RankLimit) {
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), VfError);
}

}  // namespace
}  // namespace vf
