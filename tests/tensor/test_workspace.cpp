// vf::Workspace: per-VN slot reuse, the allocation audit, the
// allocate-per-use baseline mode, slot eviction on shrink, and the debug
// one-worker-per-VN confinement tripwire.
#include <gtest/gtest.h>

#include <exception>
#include <thread>

#include "tensor/kernels.h"
#include "tensor/workspace.h"
#include "util/common.h"

namespace vf {
namespace {

struct ConfigGuard {
  KernelMode mode = TensorConfig::kernel_mode();
  bool reuse = TensorConfig::workspace_reuse();
  ~ConfigGuard() {
    TensorConfig::set_kernel_mode(mode);
    TensorConfig::set_workspace_reuse(reuse);
  }
};

TEST(Workspace, SlotsAreStableAndKeyedByVnAndTag) {
  Workspace ws(3);
  Tensor& a = ws.acquire(0, 7, {4, 4});
  a.fill(1.0F);
  Tensor& b = ws.acquire(1, 7, {4, 4});
  b.fill(2.0F);
  Tensor& c = ws.acquire(0, 8, {2});
  c.fill(3.0F);

  // Same key returns the same tensor object with contents intact (stale
  // but stable between acquisitions).
  EXPECT_EQ(&ws.acquire(0, 7), &a);
  EXPECT_EQ(ws.acquire(0, 7).at(0), 1.0F);
  EXPECT_EQ(ws.acquire(1, 7).at(0), 2.0F);
  EXPECT_EQ(ws.acquire(0, 8).at(0), 3.0F);
}

TEST(Workspace, OutOfRangeVnThrows) {
  Workspace ws(2);
  EXPECT_THROW(ws.acquire(2, 0), VfError);
  EXPECT_THROW(ws.acquire(-1, 0), VfError);
  ws.ensure_vns(5);
  EXPECT_NO_THROW(ws.acquire(4, 0));
}

TEST(Workspace, AuditCountsGrowthOnceThenGoesQuiet) {
  ConfigGuard guard;
  TensorConfig::set_workspace_reuse(true);
  Workspace ws(1);
  EXPECT_EQ(ws.heap_allocs(), 0);

  ws.acquire(0, 1, {64, 64});
  EXPECT_EQ(ws.heap_allocs(), 1);

  // Steady state: same shape, or any shape within capacity — no charge.
  for (int i = 0; i < 10; ++i) ws.acquire(0, 1, {64, 64});
  ws.acquire(0, 1, {8, 8});
  EXPECT_EQ(ws.heap_allocs(), 1);

  // Genuine growth is charged again.
  ws.acquire(0, 1, {128, 128});
  EXPECT_EQ(ws.heap_allocs(), 2);
}

TEST(Workspace, NoReuseModeReallocatesEveryAcquisition) {
  ConfigGuard guard;
  TensorConfig::set_workspace_reuse(false);
  Workspace ws(1);
  const std::int64_t t0 = tensor_alloc_count();
  for (int i = 0; i < 5; ++i) ws.acquire(0, 1, {16, 16});
  // Every acquisition dropped the buffer and re-allocated: 5 tensor heap
  // allocations, faithfully reproducing the pre-workspace churn.
  EXPECT_EQ(tensor_alloc_count() - t0, 5);

  TensorConfig::set_workspace_reuse(true);
  ws.acquire(0, 1, {16, 16});  // warm
  const std::int64_t t1 = tensor_alloc_count();
  for (int i = 0; i < 5; ++i) ws.acquire(0, 1, {16, 16});
  EXPECT_EQ(tensor_alloc_count() - t1, 0);
}

TEST(Workspace, ClearDropsEverything) {
  Workspace ws(2);
  ws.acquire(1, 3, {8});
  ws.clear();
  EXPECT_EQ(ws.num_vns(), 0);
  EXPECT_EQ(ws.heap_allocs(), 0);
}

TEST(Workspace, ShrinkEvictsSlotsBeyondTheNewVnCount) {
  ConfigGuard guard;
  TensorConfig::set_workspace_reuse(true);
  Workspace ws(4);
  ws.acquire(0, 1, {16, 16}).fill(1.0F);
  ws.acquire(3, 1, {16, 16}).fill(4.0F);

  // Shrink drops VNs 2-3 (slots, buffers, the lot); surviving slots keep
  // their contents.
  ws.shrink_vns(2);
  EXPECT_EQ(ws.num_vns(), 2);
  EXPECT_EQ(ws.acquire(0, 1).at(0), 1.0F);
  EXPECT_THROW(ws.acquire(3, 1), VfError);

  // Growing back re-creates VN 3 fresh: its old slot really was evicted,
  // so the re-acquisition pays a new allocation.
  const std::int64_t allocs_before = ws.heap_allocs();
  ws.ensure_vns(4);
  ws.acquire(3, 1, {16, 16});
  EXPECT_EQ(ws.heap_allocs(), allocs_before + 1);

  // Shrinking to the current (or larger) count is a no-op.
  ws.shrink_vns(8);
  EXPECT_EQ(ws.num_vns(), 4);
}

#ifndef NDEBUG
// The one-worker-per-VN confinement contract, enforced (debug builds): a
// second thread touching a VN's slots within one ownership region is the
// bug the Workspace docs warn about — the tripwire must catch it even
// when the accesses are serialized (no data race needed), which also
// keeps this test TSan-clean. This is the test that would have caught a
// confinement violation before it corrupted buffers silently.
TEST(Workspace, SecondThreadOnOneVnWithinRegionThrows) {
  Workspace ws(2);
  ws.begin_region();
  ws.acquire(0, 1, {4});  // this thread now owns VN 0 for the region

  std::exception_ptr thrown;
  std::thread intruder([&] {
    try {
      ws.acquire(0, 2);  // same VN, different tag: still a violation
    } catch (...) {
      thrown = std::current_exception();
    }
  });
  intruder.join();
  ASSERT_TRUE(thrown) << "cross-thread acquisition of an owned VN must throw";
  EXPECT_THROW(std::rethrow_exception(thrown), VfError);

  // A different VN is fair game for another thread within the region.
  std::thread neighbour([&] { ws.acquire(1, 1, {4}); });
  neighbour.join();

  // A new region releases ownership: the same VN may move to another
  // worker (exactly what the engine's pool does between steps).
  ws.begin_region();
  std::thread successor([&] { ws.acquire(0, 1); });
  successor.join();
  EXPECT_THROW(ws.acquire(0, 1), VfError)
      << "ownership moved to the successor thread for this region";
}
#endif

}  // namespace
}  // namespace vf
