// vf::Workspace: per-VN slot reuse, the allocation audit, and the
// allocate-per-use baseline mode.
#include <gtest/gtest.h>

#include "tensor/kernels.h"
#include "tensor/workspace.h"
#include "util/common.h"

namespace vf {
namespace {

struct ConfigGuard {
  KernelMode mode = TensorConfig::kernel_mode();
  bool reuse = TensorConfig::workspace_reuse();
  ~ConfigGuard() {
    TensorConfig::set_kernel_mode(mode);
    TensorConfig::set_workspace_reuse(reuse);
  }
};

TEST(Workspace, SlotsAreStableAndKeyedByVnAndTag) {
  Workspace ws(3);
  Tensor& a = ws.acquire(0, 7, {4, 4});
  a.fill(1.0F);
  Tensor& b = ws.acquire(1, 7, {4, 4});
  b.fill(2.0F);
  Tensor& c = ws.acquire(0, 8, {2});
  c.fill(3.0F);

  // Same key returns the same tensor object with contents intact (stale
  // but stable between acquisitions).
  EXPECT_EQ(&ws.acquire(0, 7), &a);
  EXPECT_EQ(ws.acquire(0, 7).at(0), 1.0F);
  EXPECT_EQ(ws.acquire(1, 7).at(0), 2.0F);
  EXPECT_EQ(ws.acquire(0, 8).at(0), 3.0F);
}

TEST(Workspace, OutOfRangeVnThrows) {
  Workspace ws(2);
  EXPECT_THROW(ws.acquire(2, 0), VfError);
  EXPECT_THROW(ws.acquire(-1, 0), VfError);
  ws.ensure_vns(5);
  EXPECT_NO_THROW(ws.acquire(4, 0));
}

TEST(Workspace, AuditCountsGrowthOnceThenGoesQuiet) {
  ConfigGuard guard;
  TensorConfig::set_workspace_reuse(true);
  Workspace ws(1);
  EXPECT_EQ(ws.heap_allocs(), 0);

  ws.acquire(0, 1, {64, 64});
  EXPECT_EQ(ws.heap_allocs(), 1);

  // Steady state: same shape, or any shape within capacity — no charge.
  for (int i = 0; i < 10; ++i) ws.acquire(0, 1, {64, 64});
  ws.acquire(0, 1, {8, 8});
  EXPECT_EQ(ws.heap_allocs(), 1);

  // Genuine growth is charged again.
  ws.acquire(0, 1, {128, 128});
  EXPECT_EQ(ws.heap_allocs(), 2);
}

TEST(Workspace, NoReuseModeReallocatesEveryAcquisition) {
  ConfigGuard guard;
  TensorConfig::set_workspace_reuse(false);
  Workspace ws(1);
  const std::int64_t t0 = tensor_alloc_count();
  for (int i = 0; i < 5; ++i) ws.acquire(0, 1, {16, 16});
  // Every acquisition dropped the buffer and re-allocated: 5 tensor heap
  // allocations, faithfully reproducing the pre-workspace churn.
  EXPECT_EQ(tensor_alloc_count() - t0, 5);

  TensorConfig::set_workspace_reuse(true);
  ws.acquire(0, 1, {16, 16});  // warm
  const std::int64_t t1 = tensor_alloc_count();
  for (int i = 0; i < 5; ++i) ws.acquire(0, 1, {16, 16});
  EXPECT_EQ(tensor_alloc_count() - t1, 0);
}

TEST(Workspace, ClearDropsEverything) {
  Workspace ws(2);
  ws.acquire(1, 3, {8});
  ws.clear();
  EXPECT_EQ(ws.num_vns(), 0);
  EXPECT_EQ(ws.heap_allocs(), 0);
}

}  // namespace
}  // namespace vf
