// Kernel equivalence suite: the blocked AND simd kernels must be
// bit-identical to the reference kernels on every (finite) input — that
// is the contract that lets the training/serving bit-reproducibility
// story survive a kernel swap. Hammered shape by shape, including the
// degenerate and odd shapes the tiling/lane tails have to get right, and
// with ReLU-style exact zeros (the reference's zero-skip must be
// invisible). On hosts without the vector ISA the kSimd arms still run —
// the backend factory serves them with the blocked tier, so the asserts
// hold everywhere (tier-selection specifics live in test_backend.cpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "util/common.h"
#include "util/rng.h"

namespace vf {
namespace {

/// Restores the global tensor config on scope exit.
struct ConfigGuard {
  KernelMode mode = TensorConfig::kernel_mode();
  bool reuse = TensorConfig::workspace_reuse();
  ~ConfigGuard() {
    TensorConfig::set_kernel_mode(mode);
    TensorConfig::set_workspace_reuse(reuse);
  }
};

/// Gaussian tensor with a `sparsity` fraction of exact zeros — the shape
/// of a post-ReLU activation, which is what the lhs zero-skip sees.
Tensor sparse_randn(std::vector<std::int64_t> shape, CounterRng& rng,
                    double sparsity) {
  Tensor t = Tensor::randn(std::move(shape), rng);
  for (float& v : t.data())
    if (rng.next_double() < sparsity) v = 0.0F;
  return t;
}

struct Shape {
  std::int64_t m, k, n;
};

// Degenerate (0- and 1-sized dims), odd, prime, tile-boundary, and
// beyond-one-tile shapes. kTileI=32 / kTileJ=128 boundaries included.
const std::vector<Shape> kShapes = {
    {0, 5, 3},   {5, 0, 3},   {4, 6, 0},    {1, 1, 1},   {1, 7, 1},
    {3, 1, 5},   {7, 13, 9},  {17, 33, 29}, {32, 4, 128}, {33, 5, 129},
    {64, 31, 64}, {40, 64, 200}, {129, 128, 65},
};

class KernelEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(KernelEquivalence, MatmulBlockedMatchesReferenceBitForBit) {
  const double sparsity = GetParam();
  CounterRng rng(7, 0xAB);
  for (const Shape& s : kShapes) {
    const Tensor a = sparse_randn({s.m, s.k}, rng, sparsity);
    const Tensor b = sparse_randn({s.k, s.n}, rng, sparsity);
    Tensor ref({s.m, s.n}), blk({s.m, s.n}), simd({s.m, s.n});
    kernels::matmul(a.data().data(), b.data().data(), ref.data().data(), s.m, s.k,
                    s.n, KernelMode::kReference);
    kernels::matmul(a.data().data(), b.data().data(), blk.data().data(), s.m, s.k,
                    s.n, KernelMode::kBlocked);
    kernels::matmul(a.data().data(), b.data().data(), simd.data().data(), s.m,
                    s.k, s.n, KernelMode::kSimd);
    EXPECT_TRUE(ref.equals(blk)) << s.m << "x" << s.k << "x" << s.n
                                 << " max diff " << ref.max_abs_diff(blk);
    EXPECT_TRUE(ref.equals(simd)) << "simd " << s.m << "x" << s.k << "x" << s.n
                                  << " max diff " << ref.max_abs_diff(simd);
  }
}

TEST_P(KernelEquivalence, TransposeLhsBlockedMatchesReferenceBitForBit) {
  const double sparsity = GetParam();
  CounterRng rng(11, 0xCD);
  for (const Shape& s : kShapes) {
    const Tensor a = sparse_randn({s.k, s.m}, rng, sparsity);  // lhs is [k x m]
    const Tensor b = sparse_randn({s.k, s.n}, rng, sparsity);
    Tensor ref({s.m, s.n}), blk({s.m, s.n}), simd({s.m, s.n});
    kernels::matmul_transpose_lhs(a.data().data(), b.data().data(),
                                  ref.data().data(), s.m, s.k, s.n,
                                  KernelMode::kReference);
    kernels::matmul_transpose_lhs(a.data().data(), b.data().data(),
                                  blk.data().data(), s.m, s.k, s.n,
                                  KernelMode::kBlocked);
    kernels::matmul_transpose_lhs(a.data().data(), b.data().data(),
                                  simd.data().data(), s.m, s.k, s.n,
                                  KernelMode::kSimd);
    EXPECT_TRUE(ref.equals(blk)) << s.m << "x" << s.k << "x" << s.n;
    EXPECT_TRUE(ref.equals(simd)) << "simd " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST_P(KernelEquivalence, TransposeRhsBlockedMatchesReferenceBitForBit) {
  const double sparsity = GetParam();
  CounterRng rng(13, 0xEF);
  for (const Shape& s : kShapes) {
    const Tensor a = sparse_randn({s.m, s.k}, rng, sparsity);
    const Tensor b = sparse_randn({s.n, s.k}, rng, sparsity);  // rhs is [n x k]
    Tensor ref({s.m, s.n}), blk({s.m, s.n}), simd({s.m, s.n});
    kernels::matmul_transpose_rhs(a.data().data(), b.data().data(),
                                  ref.data().data(), s.m, s.k, s.n,
                                  KernelMode::kReference);
    kernels::matmul_transpose_rhs(a.data().data(), b.data().data(),
                                  blk.data().data(), s.m, s.k, s.n,
                                  KernelMode::kBlocked);
    kernels::matmul_transpose_rhs(a.data().data(), b.data().data(),
                                  simd.data().data(), s.m, s.k, s.n,
                                  KernelMode::kSimd);
    EXPECT_TRUE(ref.equals(blk)) << s.m << "x" << s.k << "x" << s.n;
    EXPECT_TRUE(ref.equals(simd)) << "simd " << s.m << "x" << s.k << "x" << s.n;
  }
}

INSTANTIATE_TEST_SUITE_P(DenseAndReluSparse, KernelEquivalence,
                         ::testing::Values(0.0, 0.5, 0.95),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "sparsity" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(KernelEquivalence, TransposeBlockedMatchesReference) {
  CounterRng rng(17, 0x11);
  for (const Shape& s : kShapes) {
    const Tensor a = Tensor::randn({s.m, s.n}, rng);
    Tensor ref({s.n, s.m}), blk({s.n, s.m}), simd({s.n, s.m});
    kernels::transpose(a.data().data(), ref.data().data(), s.m, s.n,
                       KernelMode::kReference);
    kernels::transpose(a.data().data(), blk.data().data(), s.m, s.n,
                       KernelMode::kBlocked);
    // There is no vector transpose; the factory serves kSimd with the
    // blocked tiles — the result must still be exact.
    kernels::transpose(a.data().data(), simd.data().data(), s.m, s.n,
                       KernelMode::kSimd);
    EXPECT_TRUE(ref.equals(blk));
    EXPECT_TRUE(ref.equals(simd));
  }
}

TEST(KernelDispatch, TensorOpsHonorTheGlobalMode) {
  ConfigGuard guard;
  CounterRng rng(19, 0x22);
  const Tensor a = Tensor::randn({33, 17}, rng);
  const Tensor b = Tensor::randn({17, 29}, rng);

  TensorConfig::set_kernel_mode(KernelMode::kReference);
  const Tensor ref = a.matmul(b);
  const Tensor ref_t = a.transposed();
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  const Tensor blk = a.matmul(b);
  const Tensor blk_t = a.transposed();

  EXPECT_TRUE(ref.equals(blk));
  EXPECT_TRUE(ref_t.equals(blk_t));
}

TEST(KernelDispatch, ModeNamesRoundTrip) {
  EXPECT_STREQ(kernel_mode_name(KernelMode::kReference), "reference");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kBlocked), "blocked");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kSimd), "simd");
}

// ---- Environment parsing: accept the documented values, reject loudly.
//
// A typo in VF_KERNELS silently running the wrong tier would invalidate a
// whole benchmark campaign, so unknown values are a hard usage error
// (stderr one-liner + exit 2 — bench_util's kUsageErrorExit), not a
// fall-through to the default. The env is latched on first use, so the
// death tests go through the reload_from_env() test hook; EXPECT_EXIT
// forks, leaving the parent's latched config untouched.

class EnvConfig : public ::testing::Test {
 protected:
  void SetUp() override {
    save(kernels_, "VF_KERNELS");
    save(reuse_, "VF_WORKSPACE_REUSE");
  }
  void TearDown() override {
    restore(kernels_, "VF_KERNELS");
    restore(reuse_, "VF_WORKSPACE_REUSE");
    TensorConfig::reload_from_env();
  }

 private:
  static void save(std::pair<bool, std::string>& slot, const char* name) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v != nullptr ? v : ""};
  }
  static void restore(const std::pair<bool, std::string>& slot,
                      const char* name) {
    if (slot.first)
      ::setenv(name, slot.second.c_str(), 1);
    else
      ::unsetenv(name);
  }
  std::pair<bool, std::string> kernels_;
  std::pair<bool, std::string> reuse_;
};

TEST_F(EnvConfig, AcceptsEveryDocumentedKernelMode) {
  ::setenv("VF_KERNELS", "reference", 1);
  TensorConfig::reload_from_env();
  EXPECT_EQ(TensorConfig::kernel_mode(), KernelMode::kReference);
  ::setenv("VF_KERNELS", "simd", 1);
  TensorConfig::reload_from_env();
  EXPECT_EQ(TensorConfig::kernel_mode(), KernelMode::kSimd);
  ::setenv("VF_KERNELS", "blocked", 1);
  TensorConfig::reload_from_env();
  EXPECT_EQ(TensorConfig::kernel_mode(), KernelMode::kBlocked);
  ::unsetenv("VF_KERNELS");
  TensorConfig::reload_from_env();
  EXPECT_EQ(TensorConfig::kernel_mode(), KernelMode::kBlocked);
}

TEST_F(EnvConfig, RejectsUnknownKernelModeWithUsageError) {
  ::setenv("VF_KERNELS", "sidm", 1);  // the classic transposition typo
  EXPECT_EXIT(TensorConfig::reload_from_env(),
              ::testing::ExitedWithCode(2),
              "VF_KERNELS must be 'reference', 'blocked', or 'simd'");
}

TEST_F(EnvConfig, RejectsUnknownWorkspaceReuseWithUsageError) {
  ::setenv("VF_WORKSPACE_REUSE", "yes", 1);
  EXPECT_EXIT(TensorConfig::reload_from_env(),
              ::testing::ExitedWithCode(2),
              "VF_WORKSPACE_REUSE must be '0' or '1'");
}

TEST(TensorInto, MatmulIntoReusesTheOutputBuffer) {
  CounterRng rng(23, 0x33);
  const Tensor a = Tensor::randn({40, 24}, rng);
  const Tensor b = Tensor::randn({24, 56}, rng);
  Tensor out;
  a.matmul_into(b, out);
  EXPECT_TRUE(out.equals(a.matmul(b)));

  const std::int64_t allocs = tensor_alloc_count();
  a.matmul_into(b, out);  // same shape: must not touch the heap
  EXPECT_EQ(tensor_alloc_count(), allocs);

  // Shrinking reuses capacity too.
  const Tensor a2 = Tensor::randn({8, 24}, rng);
  const std::int64_t allocs2 = tensor_alloc_count();
  a2.matmul_into(b, out);
  EXPECT_EQ(tensor_alloc_count(), allocs2);
  EXPECT_TRUE(out.equals(a2.matmul(b)));
}

TEST(TensorInto, IntoVariantsMatchByValueOps) {
  CounterRng rng(29, 0x44);
  const Tensor a = Tensor::randn({9, 14}, rng);
  const Tensor b = Tensor::randn({9, 14}, rng);
  Tensor out;
  a.add_into(b, out);
  EXPECT_TRUE(out.equals(a.add(b)));
  a.mul_into(b, out);
  EXPECT_TRUE(out.equals(a.mul(b)));
  a.transpose_into(out);
  EXPECT_TRUE(out.equals(a.transposed()));
  a.column_sums_into(out);
  EXPECT_TRUE(out.equals(a.column_sums()));
}

TEST(TensorInto, AliasingIsRejected) {
  CounterRng rng(31, 0x55);
  Tensor a = Tensor::randn({6, 6}, rng);
  const Tensor b = Tensor::randn({6, 6}, rng);
  EXPECT_THROW(a.matmul_into(b, a), VfError);
  EXPECT_THROW(a.add_into(b, a), VfError);
  EXPECT_THROW(a.transpose_into(a), VfError);
}

TEST(TensorInto, EnsureShapeCountsOnlyGrowth) {
  Tensor t;
  const std::int64_t before = tensor_alloc_count();
  t.ensure_shape({16, 16});
  EXPECT_EQ(tensor_alloc_count(), before + 1);
  t.ensure_shape({4, 4});  // shrink: reuse
  t.ensure_shape({16, 16});  // regrow within capacity: reuse
  EXPECT_EQ(tensor_alloc_count(), before + 1);
  t.ensure_shape({32, 32});  // genuine growth
  EXPECT_EQ(tensor_alloc_count(), before + 2);
}

TEST(SinglePassReductions, RowArgmaxAndColumnSumsMatchNaiveLoops) {
  CounterRng rng(37, 0x66);
  const Tensor a = Tensor::randn({23, 11}, rng);
  const auto am = a.row_argmax();
  ASSERT_EQ(am.size(), 23U);
  for (std::int64_t i = 0; i < 23; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < 11; ++j)
      if (a.at(i, j) > a.at(i, best)) best = j;
    EXPECT_EQ(am[static_cast<std::size_t>(i)], best) << "row " << i;
  }
  const Tensor cs = a.column_sums();
  for (std::int64_t j = 0; j < 11; ++j) {
    float s = 0.0F;
    for (std::int64_t i = 0; i < 23; ++i) s += a.at(i, j);
    EXPECT_EQ(cs.at(j), s) << "col " << j;
  }
}

}  // namespace
}  // namespace vf
