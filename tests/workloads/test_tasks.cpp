#include <gtest/gtest.h>

#include "util/common.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

TEST(Tasks, CatalogComplete) {
  const auto names = task_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& n : names) {
    const ProxyTask t = make_task(n, 42);
    EXPECT_EQ(t.name, n);
    EXPECT_GT(t.train->size(), 0);
    EXPECT_GT(t.val->size(), 0);
    EXPECT_GT(t.target_accuracy, 0.5);
  }
}

TEST(Tasks, UnknownThrows) {
  EXPECT_THROW(make_task("mnli-sim", 42), VfError);
  EXPECT_THROW(make_proxy_model("mnli-sim", 42), VfError);
  EXPECT_THROW(make_recipe("mnli-sim"), VfError);
}

TEST(Tasks, TrainValShareDistributionButNotExamples) {
  const ProxyTask t = make_task("qnli-sim", 42);
  EXPECT_EQ(t.train->feature_dim(), t.val->feature_dim());
  EXPECT_EQ(t.train->num_classes(), t.val->num_classes());
  EXPECT_NE(t.train->example(0).features, t.val->example(0).features);
}

TEST(Tasks, DatasetSizesMatchPaperAnchors) {
  // RTE's real training set has 2,490 examples; MRPC has 3,668.
  EXPECT_EQ(make_task("rte-sim", 42).train->size(), 2490);
  EXPECT_EQ(make_task("mrpc-sim", 42).train->size(), 3668);
}

TEST(Tasks, ModelMatchesTaskGeometry) {
  for (const auto& n : task_names()) {
    const ProxyTask t = make_task(n, 42);
    Sequential m = make_proxy_model(n, 42);
    ExecContext ctx;
    ctx.seed = 42;
    ctx.training = false;
    Tensor x({2, t.train->feature_dim()});
    Tensor y = m.forward(x, ctx);
    EXPECT_EQ(y.cols(), t.train->num_classes()) << n;
  }
}

TEST(Tasks, RecipeReferenceBatches) {
  EXPECT_EQ(make_recipe("imagenet-sim").global_batch, 8192);
  EXPECT_EQ(make_recipe("qnli-sim").global_batch, 64);
  EXPECT_EQ(make_recipe("rte-sim").global_batch, 16);
}

TEST(Tasks, RecipeWithBatchKeepsLearningRate) {
  // The TF* baseline: same hyperparameters, different batch. The schedule
  // peak must be identical (no linear-scaling retune).
  const TrainRecipe ref = make_recipe("imagenet-sim");
  const TrainRecipe small = make_recipe_with_batch("imagenet-sim", 256);
  EXPECT_EQ(small.global_batch, 256);
  // Compare post-warmup learning rates.
  const std::int64_t probe_ref = 15;
  const std::int64_t probe_small = 900;  // past warmup, before decay
  EXPECT_FLOAT_EQ(ref.schedule->lr(probe_ref), small.schedule->lr(probe_small));
}

TEST(Tasks, OptimizerFamiliesPerTask) {
  EXPECT_EQ(make_recipe("imagenet-sim").optimizer->name(), "sgd");
  EXPECT_EQ(make_recipe("qnli-sim").optimizer->name(), "adam");
  EXPECT_EQ(make_recipe("rte-sim").optimizer->name(), "sgd");
}

TEST(Tasks, SeedChangesData) {
  const ProxyTask a = make_task("sst2-sim", 1);
  const ProxyTask b = make_task("sst2-sim", 2);
  EXPECT_NE(a.train->example(0).features, b.train->example(0).features);
}

TEST(Tasks, DeterministicAcrossConstructions) {
  const ProxyTask a = make_task("cola-sim", 42);
  const ProxyTask b = make_task("cola-sim", 42);
  for (std::int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.train->example(i).label, b.train->example(i).label);
    EXPECT_EQ(a.val->example(i).features, b.val->example(i).features);
  }
}

}  // namespace
}  // namespace vf
