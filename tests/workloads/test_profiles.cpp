#include <gtest/gtest.h>

#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

TEST(Profiles, CatalogComplete) {
  for (const auto& name : model_profile_names()) {
    const ModelProfile& p = model_profile(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.param_count, 0);
    EXPECT_GT(p.flops_per_example, 0.0);
    EXPECT_GT(p.activation_bytes_per_example, 0.0);
  }
  EXPECT_EQ(model_profile_names().size(), 6u);
}

TEST(Profiles, UnknownNameThrows) { EXPECT_THROW(model_profile("vgg"), VfError); }

TEST(Profiles, Resnet50ParamBytesMatchFig6) {
  // Fig 6: parameters (102.45 MB, decimal): 25.61M fp32 params x 4 bytes.
  EXPECT_NEAR(model_profile("resnet50").param_bytes() / 1e6, 102.45, 0.5);
}

TEST(Profiles, RelativeModelSizes) {
  EXPECT_GT(model_profile("bert-large").param_count,
            2 * model_profile("bert-base").param_count);
  EXPECT_GT(model_profile("bert-base").param_count,
            model_profile("resnet50").param_count);
  EXPECT_LT(model_profile("resnet56").param_count, 1'000'000);
}

TEST(Profiles, TrainFlopsIsThreeTimesForward) {
  const ModelProfile& p = model_profile("resnet50");
  EXPECT_DOUBLE_EQ(p.train_flops_per_example(), 3.0 * p.flops_per_example);
}

TEST(Profiles, BertUpdateCostlierThanResnet) {
  // LAMB/Adam state makes transformer updates pricier per parameter —
  // the lever behind Fig 17's throughput gains.
  EXPECT_GT(model_profile("bert-large").update_cost_factor,
            model_profile("resnet50").update_cost_factor);
}

}  // namespace
}  // namespace vf
