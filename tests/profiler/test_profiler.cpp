// Offline profiler (§5.1.1).
#include <gtest/gtest.h>

#include "profiler/profiler.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

TEST(Profiler, CoversPow2LikeGridUpToMemoryFrontier) {
  const auto prof = profile_workload(DeviceType::kRtx2080Ti, model_profile("resnet50"));
  EXPECT_EQ(prof.max_batch(), 192);  // Fig 18 anchor
  const auto grid = pow2_like_batches(192);
  ASSERT_EQ(prof.points().size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(prof.points()[i].batch, grid[i]);
}

TEST(Profiler, ThroughputCurveRisesWithBatch) {
  const auto prof = profile_workload(DeviceType::kV100, model_profile("transformer"));
  const auto& pts = prof.points();
  EXPECT_GT(pts.back().throughput, pts.front().throughput);
  // Allow the deterministic +/-1.5% measurement perturbation.
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GE(pts[i].throughput, pts[i - 1].throughput * 0.96);
}

TEST(Profiler, StepTimeMonotoneInBatch) {
  const auto prof = profile_workload(DeviceType::kV100, model_profile("resnet50"));
  const auto& pts = prof.points();
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].step_time_s, pts[i - 1].step_time_s);
}

TEST(Profiler, InterpolationExactAtProfiledPoints) {
  const auto prof = profile_workload(DeviceType::kV100, model_profile("resnet50"));
  for (const auto& p : prof.points())
    EXPECT_DOUBLE_EQ(prof.step_time(p.batch), p.step_time_s);
}

TEST(Profiler, InterpolationBetweenPoints) {
  const auto prof = profile_workload(DeviceType::kV100, model_profile("resnet50"));
  // Between 128 and 192 the interpolated time lies between the endpoints.
  const double t128 = prof.step_time(128);
  const double t192 = prof.step_time(192);
  const double t160 = prof.step_time(160);
  EXPECT_GT(t160, t128);
  EXPECT_LT(t160, t192);
}

TEST(Profiler, BeyondFrontierThrows) {
  const auto prof = profile_workload(DeviceType::kRtx2080Ti, model_profile("bert-large"));
  EXPECT_EQ(prof.max_batch(), 4);
  EXPECT_THROW(prof.step_time(6), VfError);
  EXPECT_THROW(prof.step_time(0), VfError);
}

TEST(Profiler, ProfilingTimeUnderTenMinutes) {
  // §5.1.1: "the entire process typically takes no longer than 10 minutes"
  // — per device type, for the batch grid at ~20 steps per point.
  double time_s = 0.0;
  profile_workload(DeviceType::kV100, model_profile("resnet50"), {}, &time_s);
  EXPECT_GT(time_s, 0.0);
  EXPECT_LT(time_s, 600.0);
}

TEST(Profiler, CommOverheadEstimatePositiveAndSmall) {
  const auto prof = profile_workload(DeviceType::kV100, model_profile("resnet50"));
  EXPECT_GT(prof.comm_overhead_s(), 0.0);
  EXPECT_LT(prof.comm_overhead_s(), 1.0);
}

TEST(Profiler, FasterDeviceProfilesFaster) {
  const auto v = profile_workload(DeviceType::kV100, model_profile("resnet50"));
  const auto p = profile_workload(DeviceType::kP100, model_profile("resnet50"));
  EXPECT_LT(v.step_time(128), p.step_time(128));
}

TEST(OfflineProfile, ValidatesConstruction) {
  EXPECT_THROW(OfflineProfile(DeviceType::kV100, "m", {}, 0.0), VfError);
  std::vector<ProfilePoint> unsorted = {{8, 1.0, 8.0}, {4, 0.5, 8.0}};
  EXPECT_THROW(OfflineProfile(DeviceType::kV100, "m", unsorted, 0.0), VfError);
}

}  // namespace
}  // namespace vf
