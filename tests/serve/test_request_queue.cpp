// RequestQueue: bounded FIFO admission with backpressure.
#include <gtest/gtest.h>

#include "serve/request_queue.h"
#include "util/common.h"

namespace vf::serve {
namespace {

InferRequest req(std::int64_t id, double t) {
  InferRequest r;
  r.id = id;
  r.arrival_s = t;
  r.example_index = id;
  return r;
}

TEST(RequestQueue, FifoOrderAndCounts) {
  RequestQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(req(0, 0.0)));
  EXPECT_TRUE(q.push(req(1, 0.5)));
  EXPECT_TRUE(q.push(req(2, 0.5)));
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(q.front().id, 0);
  EXPECT_EQ(q.at(2).id, 2);

  const auto popped = q.pop(2);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].id, 0);
  EXPECT_EQ(popped[1].id, 1);
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(q.admitted(), 3);
  EXPECT_EQ(q.rejected(), 0);
}

TEST(RequestQueue, BackpressureRejectsAtCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(req(0, 0.0)));
  EXPECT_TRUE(q.push(req(1, 1.0)));
  // Full: the next admissions bounce without disturbing queued requests.
  EXPECT_FALSE(q.push(req(2, 2.0)));
  EXPECT_FALSE(q.push(req(3, 3.0)));
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.admitted(), 2);
  EXPECT_EQ(q.rejected(), 2);
  // Draining reopens admission.
  q.pop(1);
  EXPECT_TRUE(q.push(req(4, 4.0)));
  EXPECT_EQ(q.rejected(), 2);
  EXPECT_EQ(q.front().id, 1);
}

TEST(RequestQueue, RejectsOutOfOrderAdmission) {
  RequestQueue q(4);
  EXPECT_TRUE(q.push(req(0, 1.0)));
  EXPECT_THROW(q.push(req(1, 0.5)), VfError);
}

TEST(RequestQueue, GuardsInvalidUse) {
  EXPECT_THROW(RequestQueue(0), VfError);
  RequestQueue q(2);
  EXPECT_THROW(q.front(), VfError);
  EXPECT_THROW(q.pop(1), VfError);
  EXPECT_THROW(q.at(0), VfError);
}

}  // namespace
}  // namespace vf::serve
