// RequestQueue: bounded FIFO admission with backpressure.
#include <gtest/gtest.h>

#include "serve/request_queue.h"
#include "serve/slo_tracker.h"
#include "util/common.h"

namespace vf::serve {
namespace {

InferRequest req(std::int64_t id, double t) {
  InferRequest r;
  r.id = id;
  r.arrival_s = t;
  r.example_index = id;
  return r;
}

TEST(RequestQueue, FifoOrderAndCounts) {
  RequestQueue q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(req(0, 0.0)));
  EXPECT_TRUE(q.push(req(1, 0.5)));
  EXPECT_TRUE(q.push(req(2, 0.5)));
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(q.front().id, 0);
  EXPECT_EQ(q.at(2).id, 2);

  const auto popped = q.pop(2);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].id, 0);
  EXPECT_EQ(popped[1].id, 1);
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(q.admitted(), 3);
  EXPECT_EQ(q.rejected(), 0);
}

TEST(RequestQueue, BackpressureRejectsAtCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(req(0, 0.0)));
  EXPECT_TRUE(q.push(req(1, 1.0)));
  // Full: the next admissions bounce without disturbing queued requests.
  EXPECT_FALSE(q.push(req(2, 2.0)));
  EXPECT_FALSE(q.push(req(3, 3.0)));
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.admitted(), 2);
  EXPECT_EQ(q.rejected(), 2);
  // Draining reopens admission.
  q.pop(1);
  EXPECT_TRUE(q.push(req(4, 4.0)));
  EXPECT_EQ(q.rejected(), 2);
  EXPECT_EQ(q.front().id, 1);
}

// Regression: a dropped request must reach the SloTracker *with its id* —
// drop accounting is wired at the queue itself (the backpressure point),
// so it survives batching-policy rewrites instead of depending on each
// replay loop remembering to record rejections.
TEST(RequestQueue, RejectObserverReceivesEveryDroppedRequest) {
  RequestQueue q(2);
  SloTracker tracker(0.5);
  q.set_reject_observer([&](const InferRequest& r, double now_s) {
    tracker.record_rejection(r, now_s);
  });

  EXPECT_TRUE(q.push(req(0, 0.0)));
  EXPECT_TRUE(q.push(req(1, 1.0)));
  EXPECT_FALSE(q.push(req(42, 2.0)));
  EXPECT_FALSE(q.push(req(43, 3.0)));

  EXPECT_EQ(tracker.rejected(), 2);
  ASSERT_EQ(tracker.records().size(), 2u);
  EXPECT_EQ(tracker.records()[0].id, 42) << "the dropped request's own id";
  EXPECT_TRUE(tracker.records()[0].rejected);
  EXPECT_EQ(tracker.records()[0].arrival_s, 2.0);
  EXPECT_EQ(tracker.records()[1].id, 43);
  EXPECT_EQ(q.rejected(), tracker.rejected())
      << "queue counter and tracker accounting must agree";

  // Admitted pushes never notify the observer.
  q.pop(1);
  EXPECT_TRUE(q.push(req(44, 4.0)));
  EXPECT_EQ(tracker.rejected(), 2);
}

TEST(RequestQueue, DeadlineShedsExpiredRequestsAtAdmission) {
  RequestQueue q(4);
  q.set_deadline(0.5);
  SloTracker tracker(0.5);
  q.set_reject_observer([&](const InferRequest& r, double now_s) {
    tracker.record_rejection(r, now_s);
  });

  // Within deadline at admission time: admitted.
  EXPECT_TRUE(q.push(req(0, 0.0), /*now_s=*/0.4));
  // Past deadline when the loop gets to it: shed, stamped at now_s.
  EXPECT_FALSE(q.push(req(1, 0.0), /*now_s=*/0.6));
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(q.shed(), 1);
  EXPECT_EQ(q.rejected(), 1) << "sheds count as rejections";
  ASSERT_EQ(tracker.records().size(), 1u);
  EXPECT_EQ(tracker.records()[0].id, 1);
  EXPECT_EQ(tracker.records()[0].finish_s, 0.6) << "shed stamped at now_s";

  // Without set_deadline, push(r, now) never sheds.
  RequestQueue plain(4);
  EXPECT_TRUE(plain.push(req(0, 0.0), /*now_s=*/100.0));
  EXPECT_EQ(plain.shed(), 0);
}

TEST(RequestQueue, PushFrontRequeuesAtHeadBypassingCapacity) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(req(5, 1.0)));
  EXPECT_TRUE(q.push(req(6, 2.0)));
  // Fault requeue of an older (already-admitted) request: accepted at the
  // head even though the queue is at capacity — zero-loss invariant.
  q.push_front(req(3, 0.5));
  EXPECT_EQ(q.size(), 3);
  EXPECT_EQ(q.front().id, 3);
  EXPECT_EQ(q.requeued(), 1);
  EXPECT_EQ(q.admitted(), 2) << "a requeue is not a second admission";
  // Head insertion must keep the queue arrival-ordered.
  EXPECT_THROW(q.push_front(req(9, 9.0)), VfError);
}

TEST(RequestQueue, RejectsOutOfOrderAdmission) {
  RequestQueue q(4);
  EXPECT_TRUE(q.push(req(0, 1.0)));
  EXPECT_THROW(q.push(req(1, 0.5)), VfError);
}

TEST(RequestQueue, GuardsInvalidUse) {
  EXPECT_THROW(RequestQueue(0), VfError);
  RequestQueue q(2);
  EXPECT_THROW(q.front(), VfError);
  EXPECT_THROW(q.pop(1), VfError);
  EXPECT_THROW(q.at(0), VfError);
}

}  // namespace
}  // namespace vf::serve
