// Fault injection through the serving loops: zero-loss re-dispatch on
// device kills, streaming chains resuming from their last landed token,
// honest retry/queue-wait accounting, graceful shedding, and the
// determinism contract for faulted replays — single-model Server and the
// co-located multi-model server, including the reconfigure-under-load
// edge cases (kill during a rolling migration, kill of a device hosting a
// parked stream, kill at minimum device-set size).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fault/fault.h"
#include "serve/arrival.h"
#include "serve/colocation.h"
#include "serve/server.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig(const std::string& task = "mrpc-sim") {
  return Rig{make_task(task, kSeed), make_proxy_model(task, kSeed),
             make_recipe(task)};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t devices, std::int64_t workers,
                              std::int64_t vns = 8) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch), cfg);
}

ServerConfig fault_config() {
  ServerConfig cfg;
  cfg.queue_capacity = 2048;
  cfg.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  cfg.deadline_s = 0.5;
  cfg.continuous = true;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

std::vector<InferRequest> burst_trace(const Dataset& pool) {
  return phased_poisson_trace(
      kSeed, {{300.0, 0.4}, {3000.0, 1.0}, {150.0, 1.6}}, pool.size());
}

/// Zero-loss invariant: every trace request leaves the replay exactly once
/// — served or rejected, never lost, never duplicated.
void expect_zero_loss(const SloTracker& slo, std::size_t trace_size) {
  EXPECT_EQ(slo.completed() + slo.rejected(),
            static_cast<std::int64_t>(trace_size));
  std::set<std::int64_t> ids;
  for (const RequestRecord& r : slo.records()) ids.insert(r.id);
  EXPECT_EQ(ids.size(), slo.records().size()) << "a request recorded twice";
  EXPECT_EQ(ids.size(), trace_size);
}

TEST(FaultRecovery, KillUnderLoadLosesAndDuplicatesNothing) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/4, /*workers=*/0);
  Server server(engine, *rig.task.val, fault_config());

  fault::FaultPlan plan;
  plan.kill(0.5, 1).kill(0.8, 2).recover(1.6).recover(1.9);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);

  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  expect_zero_loss(server.slo(), trace.size());
  EXPECT_TRUE(server.queue().empty());

  // Both kills were honored (4 devices, never at minimum) and evicted
  // mid-burst in-flight work.
  ASSERT_EQ(server.faults().size(), 4u);
  std::int64_t evicted = 0;
  for (const FaultRecord& f : server.faults()) {
    if (f.kind != fault::FaultKind::kKill) continue;
    EXPECT_FALSE(f.skipped);
    EXPECT_GT(f.migration_s, 0.0) << "a kill charges a VN-remap migration";
    evicted += f.evicted_slices;
  }
  EXPECT_GT(evicted, 0) << "kills during a 3000 rps burst must hit slices";
  EXPECT_EQ(server.queue().requeued(), server.slo().summary().retries)
      << "every fault requeue surfaces as a recorded retry";
  EXPECT_GT(server.slo().summary().retried, 0);
}

TEST(FaultRecovery, RetryStampsKeepQueueWaitHonest) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/4, /*workers=*/0);
  Server server(engine, *rig.task.val, fault_config());

  fault::FaultPlan plan;
  plan.kill(0.6, 0);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);
  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  bool saw_retry = false;
  for (const RequestRecord& r : server.slo().records()) {
    if (r.rejected) continue;
    EXPECT_GE(r.queue_wait_s, 0.0) << r.id;
    EXPECT_LE(r.queue_wait_s, r.latency_s() + 1e-12) << r.id;
    if (r.retries > 0) {
      saw_retry = true;
      // An evicted request waited, dispatched, was evicted, and waited
      // again: its honest queue wait spans both stints, so it can exceed
      // dispatch_s - arrival_s of the final dispatch alone but never the
      // whole latency.
      EXPECT_GT(r.queue_wait_s, 0.0) << r.id;
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(FaultRecovery, StreamsResumeFromLastLandedToken) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/4, /*workers=*/0);
  ServerConfig cfg = fault_config();
  cfg.stream.disaggregate = true;
  Server server(engine, *rig.task.val, cfg);

  fault::FaultPlan plan;
  plan.kill(0.5, 1).kill(0.9, 0).recover(1.8).recover(2.1);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);

  StreamShape shape;
  shape.stream_fraction = 0.5;
  const auto trace = streaming_trace(
      kSeed, {{200.0, 0.4}, {1500.0, 1.0}, {100.0, 1.6}}, rig.task.val->size(),
      shape);
  server.replay(trace);

  expect_zero_loss(server.slo(), trace.size());
  std::vector<std::int64_t> requested(trace.size(), 0);
  for (const InferRequest& r : trace)
    requested[static_cast<std::size_t>(r.id)] = r.stream_tokens;
  bool saw_stream_retry = false;
  for (const RequestRecord& r : server.slo().records()) {
    if (r.rejected || !r.streamed()) continue;
    // A stream completes with exactly its requested tokens, stamped
    // monotonically — an eviction re-dispatches only the lost token,
    // never rewinds landed ones.
    EXPECT_EQ(static_cast<std::int64_t>(r.tokens.size()),
              requested[static_cast<std::size_t>(r.id)])
        << r.id;
    for (std::size_t i = 1; i < r.token_stamps.size(); ++i)
      EXPECT_GT(r.token_stamps[i], r.token_stamps[i - 1]) << r.id;
    if (r.retries > 0) saw_stream_retry = true;
  }
  EXPECT_TRUE(saw_stream_retry)
      << "kills during a streaming burst must catch live chains";
}

TEST(FaultRecovery, KillAtMinimumSizeIsSkippedAndRecoveryRegrows) {
  // Edge case: the device set is already at one device when the kill
  // fires — the kill is skipped (recorded as such, capacity loss
  // reverted) and the replay continues unharmed; the paired recover
  // leaves the budget whole so the burst can still grow the set.
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
  Server server(engine, *rig.task.val, fault_config());

  fault::FaultPlan plan;
  plan.kill(0.05, 0).recover(0.2);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);

  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  expect_zero_loss(server.slo(), trace.size());
  ASSERT_GE(server.faults().size(), 1u);
  EXPECT_EQ(server.faults()[0].kind, fault::FaultKind::kKill);
  EXPECT_TRUE(server.faults()[0].skipped);
  EXPECT_EQ(server.faults()[0].evicted_slices, 0);
  bool grew = false;
  for (const ResizeEvent& e : server.resizes())
    if (e.to_devices > e.from_devices) grew = true;
  EXPECT_TRUE(grew) << "a skipped kill must not poison the elastic budget";
}

TEST(FaultRecovery, CapacityCapHoldsTheSetDownUntilRecovery) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/4, /*workers=*/0);
  ServerConfig cfg = fault_config();
  cfg.elastic.max_devices = 4;
  Server server(engine, *rig.task.val, cfg);

  // Two kills, no recovery: the budget is capped at 2 for the rest of the
  // replay, so no resize may ever land above it.
  fault::FaultPlan plan;
  plan.kill(0.5, 0).kill(0.7, 0);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);
  server.replay(burst_trace(*rig.task.val));

  // Locate the second kill's own shrink event in the resize stream (its
  // stamp is the kill's processing clock plus its migration); every
  // elastic decision after it sees the capped budget of 2.
  ASSERT_EQ(server.faults().size(), 2u);
  const FaultRecord& last_kill = server.faults()[1];
  EXPECT_FALSE(last_kill.skipped);
  std::size_t cap_from = server.resizes().size();
  for (std::size_t i = 0; i < server.resizes().size(); ++i) {
    const ResizeEvent& e = server.resizes()[i];
    if (e.from_devices - e.to_devices == 1 &&
        e.time_s == last_kill.time_s + last_kill.migration_s)
      cap_from = i;
  }
  ASSERT_LT(cap_from, server.resizes().size()) << "kill shrink event missing";
  for (std::size_t i = cap_from; i < server.resizes().size(); ++i)
    EXPECT_LE(server.resizes()[i].to_devices, 2)
        << "growth above the post-kill budget (resize " << i << ")";
  EXPECT_LE(static_cast<std::int64_t>(engine.devices().size()), 2);
}

TEST(FaultRecovery, ExpiredRequestsShedAtAdmissionWhenOptedIn) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/2, /*workers=*/0);
  ServerConfig cfg = fault_config();
  cfg.shed_expired = true;
  cfg.deadline_s = 0.05;  // tight SLO + kill-induced backlog => sheds
  Server server(engine, *rig.task.val, cfg);

  fault::FaultPlan plan;
  plan.kill(0.5, 0);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);
  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  expect_zero_loss(server.slo(), trace.size());
  EXPECT_GT(server.queue().shed(), 0);
  EXPECT_LE(server.queue().shed(), server.queue().rejected())
      << "sheds are a subset of rejections";
  // A shed request's record carries no queue wait credit: it was bounced
  // at admission, stamped at the bounce.
  for (const RequestRecord& r : server.slo().records())
    if (r.rejected) EXPECT_DOUBLE_EQ(r.finish_s, r.dispatch_s) << r.id;
}

TEST(FaultRecovery, FaultedReplayBitIdenticalAcrossWorkerCounts) {
  const auto run = [](std::int64_t workers) {
    Rig rig = make_rig();
    VirtualFlowEngine engine = make_engine(rig, /*devices=*/4, workers);
    ServerConfig cfg = fault_config();
    cfg.stream.disaggregate = true;
    Server server(engine, *rig.task.val, cfg);
    fault::ChaosConfig chaos;
    chaos.start_s = 0.4;
    chaos.duration_s = 1.2;
    chaos.max_device = 3;
    fault::FaultInjector injector(fault::FaultPlan::chaos(7, chaos));
    server.set_fault_injector(&injector);
    StreamShape shape;
    shape.stream_fraction = 0.3;
    server.replay(streaming_trace(
        kSeed, {{200.0, 0.4}, {1500.0, 1.0}, {100.0, 1.6}},
        rig.task.val->size(), shape));
    return std::make_pair(server.slo().records(), server.faults());
  };

  const auto serial = run(0);
  ASSERT_FALSE(serial.first.empty());
  ASSERT_FALSE(serial.second.empty());
  for (const std::int64_t workers : {2, 8}) {
    const auto pooled = run(workers);
    ASSERT_EQ(serial.first.size(), pooled.first.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.first.size(); ++i) {
      const RequestRecord& a = serial.first[i];
      const RequestRecord& b = pooled.first[i];
      EXPECT_EQ(a.id, b.id) << i;
      EXPECT_EQ(a.retries, b.retries) << i;
      EXPECT_EQ(a.prediction, b.prediction) << i;
      // EXPECT_EQ on doubles is exact — bit-identical, not approximately.
      EXPECT_EQ(a.queue_wait_s, b.queue_wait_s) << i;
      EXPECT_EQ(a.finish_s, b.finish_s) << i;
    }
    ASSERT_EQ(serial.second.size(), pooled.second.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.second.size(); ++i) {
      EXPECT_EQ(serial.second[i].time_s, pooled.second[i].time_s) << i;
      EXPECT_EQ(serial.second[i].device, pooled.second[i].device) << i;
      EXPECT_EQ(serial.second[i].evicted_slices, pooled.second[i].evicted_slices)
          << i;
    }
  }
}

TEST(FaultRecovery, InjectorRequiresContinuousModeAndPreReplayAttach) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 2, 0);
  ServerConfig cfg = fault_config();
  cfg.continuous = false;
  Server server(engine, *rig.task.val, cfg);
  fault::FaultInjector injector{fault::FaultPlan{}};
  EXPECT_THROW(server.set_fault_injector(&injector), VfError);
}

// ---- Co-located multi-model recovery ---------------------------------------

ModelConfig model_config(const std::string& name) {
  ModelConfig mc;
  mc.name = name;
  mc.queue_capacity = 2048;
  mc.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  mc.deadline_s = 0.5;
  return mc;
}

ColocationConfig colo_config() {
  ColocationConfig cfg;
  cfg.continuous = true;
  cfg.stream.disaggregate = true;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

TEST(FaultRecovery, ColocatedKillDuringRollingMigrationKeepsEveryRequest) {
  // Edge case: staggered bursts keep elastic rolling migrations in flight
  // when the kills land; the kill's own rolling remap must stack its
  // cutover stamps past any still-pending ones, every model's in-flight
  // work on the dead slot must requeue/park, and the engines must end in
  // lockstep. Zero loss per model, as always.
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, /*devices=*/2, /*workers=*/0);
  VirtualFlowEngine eng_b = make_engine(rig_b, /*devices=*/2, /*workers=*/0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("mrpc"));
  registry.add(eng_b, *rig_b.task.val, model_config("cola"));
  ColocatedServer server(registry, colo_config());

  fault::FaultPlan plan;
  plan.kill(0.6, 1).kill(1.4, 0).recover(1.8).recover(2.2);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);

  StreamShape shape;
  shape.stream_fraction = 0.4;
  const std::vector<std::vector<InferRequest>> traces = {
      streaming_trace(kSeed, {{250.0, 0.4}, {2000.0, 0.8}, {120.0, 1.6}},
                      rig_a.task.val->size(), shape),
      streaming_trace(kSeed + 1, {{200.0, 1.0}, {2000.0, 0.8}, {100.0, 1.2}},
                      rig_b.task.val->size(), shape)};
  server.replay(traces);

  for (std::int32_t m = 0; m < 2; ++m)
    expect_zero_loss(server.slo(m), traces[static_cast<std::size_t>(m)].size());
  EXPECT_EQ(
      static_cast<std::int64_t>(eng_a.devices().size()),
      static_cast<std::int64_t>(eng_b.devices().size()))
      << "engines must stay in lockstep through kills and resizes";

  std::int64_t honored_kills = 0;
  for (const FaultRecord& f : server.faults())
    if (f.kind == fault::FaultKind::kKill && !f.skipped) ++honored_kills;
  EXPECT_GT(honored_kills, 0);
  // A kill doubles as a shrink event in the resize stream.
  bool kill_resize = false;
  for (const ResizeEvent& e : server.resizes())
    if (e.to_devices == e.from_devices - 1) kill_resize = true;
  EXPECT_TRUE(kill_resize);
}

TEST(FaultRecovery, ColocatedFaultedReplayBitIdenticalAcrossWorkerCounts) {
  const auto run = [](std::int64_t workers) {
    Rig rig_a = make_rig("mrpc-sim");
    Rig rig_b = make_rig("cola-sim");
    VirtualFlowEngine eng_a = make_engine(rig_a, 2, workers);
    VirtualFlowEngine eng_b = make_engine(rig_b, 2, workers);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("mrpc"));
    registry.add(eng_b, *rig_b.task.val, model_config("cola"));
    ColocatedServer server(registry, colo_config());
    fault::ChaosConfig chaos;
    chaos.start_s = 0.4;
    chaos.duration_s = 1.0;
    chaos.kills = 1;
    chaos.max_device = 1;
    fault::FaultInjector injector(fault::FaultPlan::chaos(11, chaos));
    server.set_fault_injector(&injector);
    StreamShape shape;
    shape.stream_fraction = 0.3;
    server.replay({streaming_trace(kSeed, {{250.0, 0.4}, {1500.0, 0.8}, {100.0, 1.4}},
                                   rig_a.task.val->size(), shape),
                   streaming_trace(kSeed + 1,
                                   {{200.0, 0.6}, {1500.0, 0.8}, {100.0, 1.2}},
                                   rig_b.task.val->size(), shape)});
    std::vector<std::vector<RequestRecord>> records;
    for (std::int32_t m = 0; m < 2; ++m) records.push_back(server.slo(m).records());
    return records;
  };

  const auto serial = run(0);
  for (const std::int64_t workers : {2, 8}) {
    const auto pooled = run(workers);
    for (std::size_t m = 0; m < 2; ++m) {
      ASSERT_EQ(serial[m].size(), pooled[m].size()) << "model " << m;
      for (std::size_t i = 0; i < serial[m].size(); ++i) {
        EXPECT_EQ(serial[m][i].id, pooled[m][i].id) << m << "/" << i;
        EXPECT_EQ(serial[m][i].retries, pooled[m][i].retries) << m << "/" << i;
        EXPECT_EQ(serial[m][i].finish_s, pooled[m][i].finish_s) << m << "/" << i;
        EXPECT_EQ(serial[m][i].queue_wait_s, pooled[m][i].queue_wait_s)
            << m << "/" << i;
      }
    }
  }
}

}  // namespace
}  // namespace vf::serve
