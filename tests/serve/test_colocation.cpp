// Multi-model co-location end-to-end: per-model SLO accounting, the
// deadline-aware arbiter, the shared elastic budget under staggered
// bursts, lockstep seamless resizes, and the bit-exactness contract
// across host worker counts in BOTH batching modes.
#include <gtest/gtest.h>

#include <vector>

#include "serve/arrival.h"
#include "serve/colocation.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig(const std::string& task) {
  return Rig{make_task(task, kSeed), make_proxy_model(task, kSeed),
             make_recipe(task)};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t devices, std::int64_t workers,
                              std::int64_t vns = 8) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch), cfg);
}

ModelConfig model_config(const std::string& name, double deadline_s = 0.5) {
  ModelConfig mc;
  mc.name = name;
  mc.queue_capacity = 512;
  mc.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  mc.deadline_s = deadline_s;
  return mc;
}

ColocationConfig colo_config(bool continuous) {
  ColocationConfig cfg;
  cfg.continuous = continuous;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

/// Staggered bursts: model 0 bursts early, model 1 bursts late — the
/// statistical-multiplexing shape co-location exists for.
std::vector<std::vector<InferRequest>> staggered_traces(const Dataset& pool_a,
                                                        const Dataset& pool_b) {
  return {phased_poisson_trace(kSeed,
                               {{300.0, 0.4}, {3000.0, 0.8}, {120.0, 1.8}},
                               pool_a.size()),
          phased_poisson_trace(kSeed + 1,
                               {{250.0, 1.2}, {3000.0, 0.8}, {100.0, 1.0}},
                               pool_b.size())};
}

struct ColoResult {
  std::vector<std::vector<RequestRecord>> records;  // per model
  std::vector<ResizeEvent> resizes;
  std::vector<SloSummary> summaries;
  std::int64_t final_devices = 0;
};

ColoResult run_colocated(bool continuous, std::int64_t workers,
                         double deadline_a = 0.5, double deadline_b = 0.5) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, /*devices=*/1, workers);
  VirtualFlowEngine eng_b = make_engine(rig_b, /*devices=*/1, workers);

  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("mrpc", deadline_a));
  registry.add(eng_b, *rig_b.task.val, model_config("cola", deadline_b));

  ColocatedServer server(registry, colo_config(continuous));
  server.replay(staggered_traces(*rig_a.task.val, *rig_b.task.val));

  ColoResult out;
  for (std::int32_t m = 0; m < 2; ++m) {
    out.records.push_back(server.slo(m).records());
    out.summaries.push_back(server.slo(m).summary());
  }
  out.resizes = server.resizes();
  out.final_devices = server.shared_devices();
  return out;
}

TEST(Colocation, PerModelSloAccountingCoversEveryRequest) {
  for (const bool continuous : {true, false}) {
    Rig rig_a = make_rig("mrpc-sim");
    Rig rig_b = make_rig("cola-sim");
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("mrpc", 0.5));
    registry.add(eng_b, *rig_b.task.val, model_config("cola", 0.25));
    ColocatedServer server(registry, colo_config(continuous));

    const auto traces = staggered_traces(*rig_a.task.val, *rig_b.task.val);
    ASSERT_GT(traces[0].size(), 100u);
    ASSERT_GT(traces[1].size(), 100u);
    server.replay(traces);

    for (std::int32_t m = 0; m < 2; ++m) {
      const SloTracker& slo = server.slo(m);
      EXPECT_EQ(slo.completed() + slo.rejected(),
                static_cast<std::int64_t>(traces[static_cast<std::size_t>(m)].size()))
          << "model " << m << " (continuous=" << continuous << ")";
      EXPECT_TRUE(server.queue(m).empty()) << "replay must drain every queue";
      ASSERT_GT(slo.completed(), 0) << "model " << m;
      for (const RequestRecord& r : slo.records()) {
        if (r.rejected) continue;
        EXPECT_GE(r.queue_wait_s, 0.0);
        EXPECT_GT(r.compute_s, 0.0);
        EXPECT_GE(r.prediction, 0);
      }
      // Deadline accounting uses the model's own SLO, not a global one.
      EXPECT_EQ(slo.deadline_s(), m == 0 ? 0.5 : 0.25);
    }
    // Work units are labelled with their model; both models executed work.
    bool saw[2] = {false, false};
    for (const BatchEvent& b : server.batches()) {
      ASSERT_GE(b.model, 0);
      ASSERT_LT(b.model, 2);
      saw[b.model] = true;
      if (continuous) {
        EXPECT_GE(b.vn, 0) << "continuous work units are per-VN slices";
      } else {
        EXPECT_EQ(b.vn, -1) << "batch-boundary work units are whole batches";
      }
    }
    EXPECT_TRUE(saw[0] && saw[1]);
  }
}

TEST(Colocation, ArbiterServesTheTighterDeadlineFirst) {
  // Both models present identical, simultaneously-arrived backlogs; model
  // 1's deadline is 10x tighter, so the arbiter must dispatch it first
  // even though model 0 has the lower id.
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("lenient", 1.0));
  registry.add(eng_b, *rig_b.task.val, model_config("strict", 0.1));
  ColocationConfig cfg = colo_config(/*continuous=*/true);
  cfg.elastic.enabled = false;
  ColocatedServer server(registry, cfg);

  std::vector<std::vector<InferRequest>> traces(2);
  for (std::int64_t m = 0; m < 2; ++m) {
    for (std::int64_t i = 0; i < 64; ++i)
      traces[static_cast<std::size_t>(m)].push_back(
          InferRequest{/*id=*/i, /*arrival_s=*/0.0, /*example_index=*/i});
  }
  server.replay(traces);

  // Equal dispatch stamps, but the strict model's slices must be placed
  // on the shared device first — its first completion precedes model 0's.
  const double first_strict = server.slo(1).records().front().finish_s;
  const double first_lenient = server.slo(0).records().front().finish_s;
  EXPECT_LT(first_strict, first_lenient)
      << "(earliest-deadline, model id, VN id) order must favour the "
         "tighter SLO";
}

TEST(Colocation, OneModelsBurstGrowsTheSharedSetAndDrainShrinksIt) {
  const ColoResult r = run_colocated(/*continuous=*/true, /*workers=*/0);
  ASSERT_GE(r.resizes.size(), 2u)
      << "a single model's burst must move the SHARED budget";
  EXPECT_GT(r.resizes.front().to_devices, r.resizes.front().from_devices);
  // Growth fires on the COMBINED system load — both models' queues plus
  // both models' in-flight requests — so the recorded queue depth at the
  // trigger sits below the watermark by at most the combined in-flight
  // capacity (each model's global batch across its full slots). The
  // pre-fix rule read queue depth alone and grew strictly later.
  EXPECT_GT(r.resizes.front().queue_depth, 0);
  EXPECT_LT(r.resizes.front().queue_depth, 48)
      << "continuous batching must grow before the queues alone hit the mark";
  EXPECT_GE(r.resizes.front().queue_depth + make_recipe("mrpc-sim").global_batch +
                make_recipe("cola-sim").global_batch,
            48);
  bool shrank = false;
  for (const ResizeEvent& e : r.resizes) {
    EXPECT_GT(e.migration_s, 0.0) << "lockstep seamless resize still all-gathers";
    if (e.to_devices < e.from_devices) shrank = true;
  }
  EXPECT_TRUE(shrank) << "post-burst drain must shrink the shared set back";
  // The set parks wherever the last decision left it once work stops
  // (rolling migrations advance no clock, so no trailing decision points
  // appear after the final completion) — but it must have come down from
  // the burst peak.
  EXPECT_LT(r.final_devices, colo_config(true).elastic.max_devices);
  EXPECT_GE(r.final_devices, colo_config(true).elastic.min_devices);
}

TEST(Colocation, EnginesStayInLockstepThroughResizes) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("mrpc"));
  registry.add(eng_b, *rig_b.task.val, model_config("cola"));
  ColocatedServer server(registry, colo_config(/*continuous=*/true));
  server.replay(staggered_traces(*rig_a.task.val, *rig_b.task.val));

  ASSERT_GE(server.resizes().size(), 1u);
  EXPECT_EQ(eng_a.devices().size(), eng_b.devices().size())
      << "co-located engines share one device set";
  // In-flight slices launched before a resize keep the completion times
  // the old mapping scheduled (seamless: compute is never interrupted) —
  // at least one slice dispatched before a migration began must still be
  // running when it begins. (e.time_s is the instant the
  // rolling migration completes; e.time_s - e.migration_s is the decision
  // instant that started it. System-load-triggered growth guarantees
  // in-flight work exists at that instant.)
  bool straddled = false;
  for (const BatchEvent& b : server.batches()) {
    for (const ResizeEvent& e : server.resizes()) {
      const double decision_s = e.time_s - e.migration_s;
      if (b.start_s < decision_s && b.finish_s > decision_s) straddled = true;
    }
  }
  EXPECT_TRUE(straddled) << "seamless resize must not quiesce in-flight slices";
}

// ---- The share-weighted arbiter (the small-batch starvation fix).

/// `count` requests all arriving at t = 0: a sustained backlog that keeps
/// the model dispatchable for the whole replay — the contention shape the
/// share ledger governs.
std::vector<InferRequest> backlog_trace(std::int64_t count, const Dataset& pool) {
  std::vector<InferRequest> trace;
  for (std::int64_t i = 0; i < count; ++i)
    trace.push_back(InferRequest{/*id=*/i, /*arrival_s=*/0.0,
                                 /*example_index=*/i % pool.size()});
  return trace;
}

TEST(Colocation, WeightedSharesGovernDeviceTimeUnderContention) {
  // Two identical models, 3:1 share weights, demands matched 3:1 so both
  // stay backlogged until the end: the arbiter must split device time by
  // the configured weights, not by deadline urgency alone.
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("mrpc-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  ModelConfig mc_a = model_config("heavy");
  mc_a.share = 3.0;
  ModelConfig mc_b = model_config("light");
  mc_b.share = 1.0;
  registry.add(eng_a, *rig_a.task.val, mc_a);
  registry.add(eng_b, *rig_b.task.val, mc_b);
  ColocationConfig cfg = colo_config(/*continuous=*/true);
  cfg.elastic.enabled = false;
  ColocatedServer server(registry, cfg);

  server.replay({backlog_trace(300, *rig_a.task.val),
                 backlog_trace(100, *rig_b.task.val)});

  const double used_a = server.device_time_used(0);
  const double used_b = server.device_time_used(1);
  ASSERT_GT(used_a, 0.0);
  ASSERT_GT(used_b, 0.0);
  const double frac_a = used_a / (used_a + used_b);
  EXPECT_NEAR(frac_a, 0.75, 0.075)
      << "device time must converge to share / sum(shares) within 10%";
}

TEST(Colocation, SmallBatchModelHoldsItsShareAgainstAggressiveCoTenant) {
  // The documented pre-fix starvation: a small-batch model's cheap slices
  // kept its deadline key looking less urgent than an aggressive
  // co-tenant's, and it fell arbitrarily far below any intended split.
  // With equal shares the ledger must hold it near half the device time —
  // regardless of the cost asymmetry. Demands are matched empirically so
  // both models stay backlogged for essentially the whole replay.
  Rig rig_a{make_task("mrpc-sim", kSeed), make_proxy_model("mrpc-sim", kSeed),
            make_recipe_with_batch("mrpc-sim", 64)};
  Rig rig_b{make_task("cola-sim", kSeed), make_proxy_model("cola-sim", kSeed),
            make_recipe_with_batch("cola-sim", 2)};
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0, /*vns=*/8);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0, /*vns=*/2);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("aggressive"));
  registry.add(eng_b, *rig_b.task.val, model_config("small-batch"));
  ColocationConfig cfg = colo_config(/*continuous=*/true);
  cfg.elastic.enabled = false;
  ColocatedServer server(registry, cfg);

  server.replay({backlog_trace(256, *rig_a.task.val),
                 backlog_trace(256, *rig_b.task.val)});

  const double used_a = server.device_time_used(0);
  const double used_b = server.device_time_used(1);
  ASSERT_GT(used_b, 0.0);
  const double frac_b = used_b / (used_a + used_b);
  EXPECT_GT(frac_b, 0.4)
      << "equal shares must keep the small-batch model near half the device "
         "time (deadline-only arbitration starved it)";
}

TEST(Colocation, StreamingChainsRideTheSharedArbiter) {
  // Token streams of two co-located models compete through the same
  // share-weighted arbiter: every requested token must be served, and the
  // per-token record streams must replay bit-identically across worker
  // counts (decode chains + rolling migrations + preemption included).
  const auto run = [](std::int64_t workers) {
    Rig rig_a = make_rig("mrpc-sim");
    Rig rig_b = make_rig("cola-sim");
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, workers);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, workers);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("mrpc"));
    registry.add(eng_b, *rig_b.task.val, model_config("cola"));
    ColocatedServer server(registry, colo_config(/*continuous=*/true));
    StreamShape shape;
    shape.stream_fraction = 0.6;
    shape.tokens_min = 3;
    shape.tokens_max = 8;
    const std::vector<TracePhase> phases = {{60.0, 0.4}, {200.0, 0.8},
                                            {40.0, 0.8}};
    server.replay(
        {streaming_trace(kSeed, phases, rig_a.task.val->size(), shape),
         streaming_trace(kSeed + 1, phases, rig_b.task.val->size(), shape)});
    std::vector<std::vector<RequestRecord>> records;
    for (std::int32_t m = 0; m < 2; ++m) records.push_back(server.slo(m).records());
    return records;
  };

  const auto serial = run(0);
  for (std::size_t m = 0; m < 2; ++m) {
    std::int64_t streams = 0;
    for (const RequestRecord& r : serial[m]) {
      if (!r.streamed()) continue;
      ++streams;
      ASSERT_EQ(r.tokens.size(), r.token_stamps.size());
      EXPECT_EQ(r.prediction, r.tokens.back());
      for (std::size_t i = 1; i < r.token_stamps.size(); ++i)
        EXPECT_GT(r.token_stamps[i], r.token_stamps[i - 1]);
    }
    EXPECT_GT(streams, 20) << "model " << m;
  }
  const auto pooled = run(8);
  for (std::size_t m = 0; m < 2; ++m) {
    ASSERT_EQ(serial[m].size(), pooled[m].size()) << "model " << m;
    for (std::size_t i = 0; i < serial[m].size(); ++i) {
      EXPECT_EQ(serial[m][i].finish_s, pooled[m][i].finish_s) << m << ":" << i;
      EXPECT_EQ(serial[m][i].first_token_s, pooled[m][i].first_token_s)
          << m << ":" << i;
      ASSERT_EQ(serial[m][i].token_stamps.size(), pooled[m][i].token_stamps.size());
      for (std::size_t t = 0; t < serial[m][i].token_stamps.size(); ++t)
        EXPECT_EQ(serial[m][i].token_stamps[t], pooled[m][i].token_stamps[t])
            << m << ":" << i << ":" << t;
    }
  }
}

TEST(Colocation, ShareWeightMustBePositive) {
  Rig rig = make_rig("mrpc-sim");
  VirtualFlowEngine eng = make_engine(rig, 1, 0);
  ModelRegistry registry;
  ModelConfig mc = model_config("bad");
  mc.share = 0.0;
  EXPECT_THROW(registry.add(eng, *rig.task.val, mc), VfError);
}

// ---- The acceptance-criteria property: per-model record streams are
// bit-identical across host worker counts, in both batching modes.

TEST(Colocation, ReplayBitIdenticalAcrossWorkerCountsBothModes) {
  for (const bool continuous : {true, false}) {
    const ColoResult serial = run_colocated(continuous, 0);
    ASSERT_FALSE(serial.records[0].empty());
    ASSERT_FALSE(serial.records[1].empty());
    for (const std::int64_t workers : {2, 8}) {
      const ColoResult pooled = run_colocated(continuous, workers);
      for (std::size_t m = 0; m < 2; ++m) {
        ASSERT_EQ(serial.records[m].size(), pooled.records[m].size())
            << "model " << m << " " << workers << "w continuous=" << continuous;
        for (std::size_t i = 0; i < serial.records[m].size(); ++i) {
          const RequestRecord& a = serial.records[m][i];
          const RequestRecord& b = pooled.records[m][i];
          EXPECT_EQ(a.id, b.id) << i;
          EXPECT_EQ(a.rejected, b.rejected) << i;
          EXPECT_EQ(a.prediction, b.prediction) << i;
          // EXPECT_EQ on doubles is exact — bit-identical, not close.
          EXPECT_EQ(a.dispatch_s, b.dispatch_s) << i;
          EXPECT_EQ(a.queue_wait_s, b.queue_wait_s) << i;
          EXPECT_EQ(a.compute_s, b.compute_s) << i;
          EXPECT_EQ(a.comm_s, b.comm_s) << i;
          EXPECT_EQ(a.finish_s, b.finish_s) << i;
        }
        EXPECT_EQ(serial.summaries[m].p99_s, pooled.summaries[m].p99_s);
      }
      ASSERT_EQ(serial.resizes.size(), pooled.resizes.size());
      for (std::size_t i = 0; i < serial.resizes.size(); ++i) {
        EXPECT_EQ(serial.resizes[i].time_s, pooled.resizes[i].time_s) << i;
        EXPECT_EQ(serial.resizes[i].to_devices, pooled.resizes[i].to_devices) << i;
      }
    }
  }
}

TEST(Colocation, ValidatesConstruction) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");

  {
    // Mismatched starting device counts: no shared set to multiplex.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 2, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    EXPECT_THROW(ColocatedServer(registry, colo_config(true)), VfError);
  }
  {
    // A model with fewer VNs than the elastic ceiling could never use the
    // grown set.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0, /*vns=*/4);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    EXPECT_THROW(ColocatedServer(registry, colo_config(true)), VfError);
  }
  {
    // One engine is one model: double registration is a bug.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    EXPECT_THROW(registry.add(eng_a, *rig_a.task.val, model_config("dup")), VfError);
  }
  {
    // Trace count must match the registry.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    ColocatedServer server(registry, colo_config(true));
    EXPECT_THROW(server.replay({poisson_trace(kSeed, 100.0, 10,
                                              rig_a.task.val->size())}),
                 VfError);
  }
}

TEST(Colocation, RejectsRegistryGrowthAfterConstruction) {
  // The server freezes its model set at construction; registering a
  // third model afterwards must be rejected at replay (and the accessors
  // must stay bounded by the frozen set, not the grown registry).
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  VirtualFlowEngine eng_c = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("a"));
  ColocatedServer server(registry, colo_config(true));
  registry.add(eng_b, *rig_b.task.val, model_config("late"));
  registry.add(eng_c, *rig_b.task.val, model_config("later"));

  EXPECT_EQ(server.num_models(), 1);
  EXPECT_THROW(server.slo(1), VfError);
  EXPECT_THROW(server.queue(1), VfError);
  EXPECT_THROW(
      server.replay({poisson_trace(kSeed, 100.0, 5, rig_a.task.val->size()),
                     poisson_trace(kSeed, 100.0, 5, rig_b.task.val->size()),
                     poisson_trace(kSeed, 100.0, 5, rig_b.task.val->size())}),
      VfError);
}

TEST(Colocation, ReplayIsOneShot) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("a"));
  registry.add(eng_b, *rig_b.task.val, model_config("b"));
  ColocatedServer server(registry, colo_config(true));
  const std::vector<std::vector<InferRequest>> traces = {
      poisson_trace(kSeed, 100.0, 10, rig_a.task.val->size()),
      poisson_trace(kSeed + 1, 100.0, 10, rig_b.task.val->size())};
  server.replay(traces);
  EXPECT_THROW(server.replay(traces), VfError);
}

}  // namespace
}  // namespace vf::serve
