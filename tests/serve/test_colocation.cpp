// Multi-model co-location end-to-end: per-model SLO accounting, the
// deadline-aware arbiter, the shared elastic budget under staggered
// bursts, lockstep seamless resizes, and the bit-exactness contract
// across host worker counts in BOTH batching modes.
#include <gtest/gtest.h>

#include <vector>

#include "serve/arrival.h"
#include "serve/colocation.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig(const std::string& task) {
  return Rig{make_task(task, kSeed), make_proxy_model(task, kSeed),
             make_recipe(task)};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t devices, std::int64_t workers,
                              std::int64_t vns = 8) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch), cfg);
}

ModelConfig model_config(const std::string& name, double deadline_s = 0.5) {
  ModelConfig mc;
  mc.name = name;
  mc.queue_capacity = 512;
  mc.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  mc.deadline_s = deadline_s;
  return mc;
}

ColocationConfig colo_config(bool continuous) {
  ColocationConfig cfg;
  cfg.continuous = continuous;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

/// Staggered bursts: model 0 bursts early, model 1 bursts late — the
/// statistical-multiplexing shape co-location exists for.
std::vector<std::vector<InferRequest>> staggered_traces(const Dataset& pool_a,
                                                        const Dataset& pool_b) {
  return {phased_poisson_trace(kSeed,
                               {{300.0, 0.4}, {3000.0, 0.8}, {120.0, 1.8}},
                               pool_a.size()),
          phased_poisson_trace(kSeed + 1,
                               {{250.0, 1.2}, {3000.0, 0.8}, {100.0, 1.0}},
                               pool_b.size())};
}

struct ColoResult {
  std::vector<std::vector<RequestRecord>> records;  // per model
  std::vector<ResizeEvent> resizes;
  std::vector<SloSummary> summaries;
  std::int64_t final_devices = 0;
};

ColoResult run_colocated(bool continuous, std::int64_t workers,
                         double deadline_a = 0.5, double deadline_b = 0.5) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, /*devices=*/1, workers);
  VirtualFlowEngine eng_b = make_engine(rig_b, /*devices=*/1, workers);

  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("mrpc", deadline_a));
  registry.add(eng_b, *rig_b.task.val, model_config("cola", deadline_b));

  ColocatedServer server(registry, colo_config(continuous));
  server.replay(staggered_traces(*rig_a.task.val, *rig_b.task.val));

  ColoResult out;
  for (std::int32_t m = 0; m < 2; ++m) {
    out.records.push_back(server.slo(m).records());
    out.summaries.push_back(server.slo(m).summary());
  }
  out.resizes = server.resizes();
  out.final_devices = server.shared_devices();
  return out;
}

TEST(Colocation, PerModelSloAccountingCoversEveryRequest) {
  for (const bool continuous : {true, false}) {
    Rig rig_a = make_rig("mrpc-sim");
    Rig rig_b = make_rig("cola-sim");
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("mrpc", 0.5));
    registry.add(eng_b, *rig_b.task.val, model_config("cola", 0.25));
    ColocatedServer server(registry, colo_config(continuous));

    const auto traces = staggered_traces(*rig_a.task.val, *rig_b.task.val);
    ASSERT_GT(traces[0].size(), 100u);
    ASSERT_GT(traces[1].size(), 100u);
    server.replay(traces);

    for (std::int32_t m = 0; m < 2; ++m) {
      const SloTracker& slo = server.slo(m);
      EXPECT_EQ(slo.completed() + slo.rejected(),
                static_cast<std::int64_t>(traces[static_cast<std::size_t>(m)].size()))
          << "model " << m << " (continuous=" << continuous << ")";
      EXPECT_TRUE(server.queue(m).empty()) << "replay must drain every queue";
      ASSERT_GT(slo.completed(), 0) << "model " << m;
      for (const RequestRecord& r : slo.records()) {
        if (r.rejected) continue;
        EXPECT_GE(r.queue_wait_s, 0.0);
        EXPECT_GT(r.compute_s, 0.0);
        EXPECT_GE(r.prediction, 0);
      }
      // Deadline accounting uses the model's own SLO, not a global one.
      EXPECT_EQ(slo.deadline_s(), m == 0 ? 0.5 : 0.25);
    }
    // Work units are labelled with their model; both models executed work.
    bool saw[2] = {false, false};
    for (const BatchEvent& b : server.batches()) {
      ASSERT_GE(b.model, 0);
      ASSERT_LT(b.model, 2);
      saw[b.model] = true;
      if (continuous) {
        EXPECT_GE(b.vn, 0) << "continuous work units are per-VN slices";
      } else {
        EXPECT_EQ(b.vn, -1) << "batch-boundary work units are whole batches";
      }
    }
    EXPECT_TRUE(saw[0] && saw[1]);
  }
}

TEST(Colocation, ArbiterServesTheTighterDeadlineFirst) {
  // Both models present identical, simultaneously-arrived backlogs; model
  // 1's deadline is 10x tighter, so the arbiter must dispatch it first
  // even though model 0 has the lower id.
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("lenient", 1.0));
  registry.add(eng_b, *rig_b.task.val, model_config("strict", 0.1));
  ColocationConfig cfg = colo_config(/*continuous=*/true);
  cfg.elastic.enabled = false;
  ColocatedServer server(registry, cfg);

  std::vector<std::vector<InferRequest>> traces(2);
  for (std::int64_t m = 0; m < 2; ++m) {
    for (std::int64_t i = 0; i < 64; ++i)
      traces[static_cast<std::size_t>(m)].push_back(
          InferRequest{/*id=*/i, /*arrival_s=*/0.0, /*example_index=*/i});
  }
  server.replay(traces);

  // Equal dispatch stamps, but the strict model's slices must be placed
  // on the shared device first — its first completion precedes model 0's.
  const double first_strict = server.slo(1).records().front().finish_s;
  const double first_lenient = server.slo(0).records().front().finish_s;
  EXPECT_LT(first_strict, first_lenient)
      << "(earliest-deadline, model id, VN id) order must favour the "
         "tighter SLO";
}

TEST(Colocation, OneModelsBurstGrowsTheSharedSetAndDrainShrinksIt) {
  const ColoResult r = run_colocated(/*continuous=*/true, /*workers=*/0);
  ASSERT_GE(r.resizes.size(), 2u)
      << "a single model's burst must move the SHARED budget";
  EXPECT_GT(r.resizes.front().to_devices, r.resizes.front().from_devices);
  EXPECT_GE(r.resizes.front().queue_depth, 48);
  bool shrank = false;
  for (const ResizeEvent& e : r.resizes) {
    EXPECT_GT(e.migration_s, 0.0) << "lockstep seamless resize still all-gathers";
    if (e.to_devices < e.from_devices) shrank = true;
  }
  EXPECT_TRUE(shrank) << "post-burst drain must shrink the shared set back";
  // The set parks wherever the last decision left it once work stops
  // (rolling migrations advance no clock, so no trailing decision points
  // appear after the final completion) — but it must have come down from
  // the burst peak.
  EXPECT_LT(r.final_devices, colo_config(true).elastic.max_devices);
  EXPECT_GE(r.final_devices, colo_config(true).elastic.min_devices);
}

TEST(Colocation, EnginesStayInLockstepThroughResizes) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("mrpc"));
  registry.add(eng_b, *rig_b.task.val, model_config("cola"));
  ColocatedServer server(registry, colo_config(/*continuous=*/true));
  server.replay(staggered_traces(*rig_a.task.val, *rig_b.task.val));

  ASSERT_GE(server.resizes().size(), 1u);
  EXPECT_EQ(eng_a.devices().size(), eng_b.devices().size())
      << "co-located engines share one device set";
  // In-flight slices launched before a resize keep the device count of
  // the mapping that dispatched them (seamless: compute is never
  // interrupted) — at least one slice must straddle a resize boundary.
  bool straddled = false;
  for (const BatchEvent& b : server.batches()) {
    for (const ResizeEvent& e : server.resizes()) {
      if (b.start_s < e.time_s && b.finish_s > e.time_s &&
          b.devices == e.from_devices)
        straddled = true;
    }
  }
  EXPECT_TRUE(straddled) << "seamless resize must not quiesce in-flight slices";
}

// ---- The acceptance-criteria property: per-model record streams are
// bit-identical across host worker counts, in both batching modes.

TEST(Colocation, ReplayBitIdenticalAcrossWorkerCountsBothModes) {
  for (const bool continuous : {true, false}) {
    const ColoResult serial = run_colocated(continuous, 0);
    ASSERT_FALSE(serial.records[0].empty());
    ASSERT_FALSE(serial.records[1].empty());
    for (const std::int64_t workers : {2, 8}) {
      const ColoResult pooled = run_colocated(continuous, workers);
      for (std::size_t m = 0; m < 2; ++m) {
        ASSERT_EQ(serial.records[m].size(), pooled.records[m].size())
            << "model " << m << " " << workers << "w continuous=" << continuous;
        for (std::size_t i = 0; i < serial.records[m].size(); ++i) {
          const RequestRecord& a = serial.records[m][i];
          const RequestRecord& b = pooled.records[m][i];
          EXPECT_EQ(a.id, b.id) << i;
          EXPECT_EQ(a.rejected, b.rejected) << i;
          EXPECT_EQ(a.prediction, b.prediction) << i;
          // EXPECT_EQ on doubles is exact — bit-identical, not close.
          EXPECT_EQ(a.dispatch_s, b.dispatch_s) << i;
          EXPECT_EQ(a.queue_wait_s, b.queue_wait_s) << i;
          EXPECT_EQ(a.compute_s, b.compute_s) << i;
          EXPECT_EQ(a.comm_s, b.comm_s) << i;
          EXPECT_EQ(a.finish_s, b.finish_s) << i;
        }
        EXPECT_EQ(serial.summaries[m].p99_s, pooled.summaries[m].p99_s);
      }
      ASSERT_EQ(serial.resizes.size(), pooled.resizes.size());
      for (std::size_t i = 0; i < serial.resizes.size(); ++i) {
        EXPECT_EQ(serial.resizes[i].time_s, pooled.resizes[i].time_s) << i;
        EXPECT_EQ(serial.resizes[i].to_devices, pooled.resizes[i].to_devices) << i;
      }
    }
  }
}

TEST(Colocation, ValidatesConstruction) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");

  {
    // Mismatched starting device counts: no shared set to multiplex.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 2, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    EXPECT_THROW(ColocatedServer(registry, colo_config(true)), VfError);
  }
  {
    // A model with fewer VNs than the elastic ceiling could never use the
    // grown set.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0, /*vns=*/4);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    EXPECT_THROW(ColocatedServer(registry, colo_config(true)), VfError);
  }
  {
    // One engine is one model: double registration is a bug.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    EXPECT_THROW(registry.add(eng_a, *rig_a.task.val, model_config("dup")), VfError);
  }
  {
    // Trace count must match the registry.
    VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
    VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
    ModelRegistry registry;
    registry.add(eng_a, *rig_a.task.val, model_config("a"));
    registry.add(eng_b, *rig_b.task.val, model_config("b"));
    ColocatedServer server(registry, colo_config(true));
    EXPECT_THROW(server.replay({poisson_trace(kSeed, 100.0, 10,
                                              rig_a.task.val->size())}),
                 VfError);
  }
}

TEST(Colocation, RejectsRegistryGrowthAfterConstruction) {
  // The server freezes its model set at construction; registering a
  // third model afterwards must be rejected at replay (and the accessors
  // must stay bounded by the frozen set, not the grown registry).
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  VirtualFlowEngine eng_c = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("a"));
  ColocatedServer server(registry, colo_config(true));
  registry.add(eng_b, *rig_b.task.val, model_config("late"));
  registry.add(eng_c, *rig_b.task.val, model_config("later"));

  EXPECT_EQ(server.num_models(), 1);
  EXPECT_THROW(server.slo(1), VfError);
  EXPECT_THROW(server.queue(1), VfError);
  EXPECT_THROW(
      server.replay({poisson_trace(kSeed, 100.0, 5, rig_a.task.val->size()),
                     poisson_trace(kSeed, 100.0, 5, rig_b.task.val->size()),
                     poisson_trace(kSeed, 100.0, 5, rig_b.task.val->size())}),
      VfError);
}

TEST(Colocation, ReplayIsOneShot) {
  Rig rig_a = make_rig("mrpc-sim");
  Rig rig_b = make_rig("cola-sim");
  VirtualFlowEngine eng_a = make_engine(rig_a, 1, 0);
  VirtualFlowEngine eng_b = make_engine(rig_b, 1, 0);
  ModelRegistry registry;
  registry.add(eng_a, *rig_a.task.val, model_config("a"));
  registry.add(eng_b, *rig_b.task.val, model_config("b"));
  ColocatedServer server(registry, colo_config(true));
  const std::vector<std::vector<InferRequest>> traces = {
      poisson_trace(kSeed, 100.0, 10, rig_a.task.val->size()),
      poisson_trace(kSeed + 1, 100.0, 10, rig_b.task.val->size())};
  server.replay(traces);
  EXPECT_THROW(server.replay(traces), VfError);
}

}  // namespace
}  // namespace vf::serve
