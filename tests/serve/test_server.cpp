// Server end-to-end: seeded open-loop replay through the full pipeline
// (queue -> former -> infer -> SLO), elasticity under queue pressure, and
// the bit-exactness contract across host worker counts.
#include <gtest/gtest.h>

#include <vector>

#include "serve/arrival.h"
#include "serve/server.h"
#include "tensor/kernels.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig() {
  return Rig{make_task("mrpc-sim", kSeed), make_proxy_model("mrpc-sim", kSeed),
             make_recipe("mrpc-sim")};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t devices, std::int64_t workers,
                              std::int64_t vns = 8) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch), cfg);
}

ServerConfig burst_config() {
  ServerConfig cfg;
  cfg.queue_capacity = 512;
  cfg.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  cfg.deadline_s = 0.5;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

/// steady -> burst -> steady: the burst outruns one device, builds queue
/// depth past the high watermark, and the tail drains it back down.
std::vector<InferRequest> burst_trace(const Dataset& pool) {
  return phased_poisson_trace(
      kSeed,
      {{/*rate_rps=*/300.0, /*duration_s=*/0.5},
       {/*rate_rps=*/4000.0, /*duration_s=*/1.0},
       {/*rate_rps=*/150.0, /*duration_s=*/2.0}},
      pool.size());
}

TEST(Server, ReplayServesEveryAdmittedRequest) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
  Server server(engine, *rig.task.val, burst_config());
  const auto trace = burst_trace(*rig.task.val);
  ASSERT_GT(trace.size(), 100u);
  server.replay(trace);

  const SloTracker& slo = server.slo();
  EXPECT_EQ(slo.completed() + slo.rejected(), static_cast<std::int64_t>(trace.size()));
  EXPECT_TRUE(server.queue().empty()) << "replay must drain the queue";
  ASSERT_GT(slo.completed(), 0);
  for (const RequestRecord& r : slo.records()) {
    if (r.rejected) continue;
    EXPECT_GE(r.queue_wait_s, 0.0) << "request " << r.id;
    EXPECT_GT(r.compute_s, 0.0) << "request " << r.id;
    EXPECT_GE(r.latency_s(), r.compute_s) << "request " << r.id;
    EXPECT_GE(r.prediction, 0) << "request " << r.id;
  }
}

TEST(Server, QueueDepthTriggersGrowthThenDrainShrinks) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
  Server server(engine, *rig.task.val, burst_config());
  server.replay(burst_trace(*rig.task.val));

  const auto& resizes = server.resizes();
  ASSERT_GE(resizes.size(), 2u) << "burst must trigger growth and drain must shrink";
  EXPECT_GT(resizes.front().to_devices, resizes.front().from_devices)
      << "first resize grows under queue pressure";
  EXPECT_GE(resizes.front().queue_depth, burst_config().elastic.high_watermark);
  bool shrank = false;
  for (const ResizeEvent& e : resizes) {
    EXPECT_GT(e.migration_s, 0.0) << "seamless resize still costs an all-gather";
    if (e.to_devices < e.from_devices) shrank = true;
  }
  EXPECT_TRUE(shrank) << "post-burst drain must shrink back";
  EXPECT_EQ(static_cast<std::int64_t>(engine.devices().size()),
            burst_config().elastic.min_devices)
      << "fully drained server ends at min_devices";
}

TEST(Server, SloSummaryIsCoherent) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  Server server(engine, *rig.task.val, burst_config());
  server.replay(burst_trace(*rig.task.val));

  const SloSummary s = server.slo().summary();
  EXPECT_GT(s.completed, 0);
  EXPECT_LE(s.p50_s, s.p95_s);
  EXPECT_LE(s.p95_s, s.p99_s);
  EXPECT_LE(s.p99_s, s.max_s);
  EXPECT_GT(s.p50_s, 0.0);
  EXPECT_GE(s.hit_rate, 0.0);
  EXPECT_LE(s.hit_rate, 1.0);
  EXPECT_EQ(server.slo().latency_percentile_s(0.5), s.p50_s);
}

TEST(Server, TinyQueueExercisesBackpressure) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  ServerConfig cfg = burst_config();
  cfg.queue_capacity = 8;
  cfg.elastic.enabled = false;
  Server server(engine, *rig.task.val, cfg);
  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  const SloTracker& slo = server.slo();
  EXPECT_GT(slo.rejected(), 0) << "burst into an 8-deep queue must bounce requests";
  EXPECT_EQ(slo.completed() + slo.rejected(), static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(slo.rejected(), server.queue().rejected());
  EXPECT_TRUE(server.resizes().empty()) << "elasticity disabled";
}

// ---- The acceptance-criteria property: bit-identical across num_threads.

struct ReplayResult {
  std::vector<RequestRecord> records;
  std::vector<ResizeEvent> resizes;
  SloSummary summary;
};

ReplayResult run_replay(std::int64_t workers) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, workers);
  Server server(engine, *rig.task.val, burst_config());
  server.replay(burst_trace(*rig.task.val));
  return ReplayResult{server.slo().records(), server.resizes(),
                      server.slo().summary()};
}

TEST(Server, ReplayBitIdenticalAcrossWorkerCounts) {
  const ReplayResult serial = run_replay(0);
  ASSERT_FALSE(serial.records.empty());
  ASSERT_FALSE(serial.resizes.empty());
  for (const std::int64_t workers : {2, 8}) {
    const ReplayResult pooled = run_replay(workers);
    ASSERT_EQ(serial.records.size(), pooled.records.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const RequestRecord& a = serial.records[i];
      const RequestRecord& b = pooled.records[i];
      EXPECT_EQ(a.id, b.id) << i;
      EXPECT_EQ(a.rejected, b.rejected) << i;
      EXPECT_EQ(a.prediction, b.prediction) << i;
      // EXPECT_EQ on doubles is exact — bit-identical, not approximately.
      EXPECT_EQ(a.queue_wait_s, b.queue_wait_s) << i;
      EXPECT_EQ(a.compute_s, b.compute_s) << i;
      EXPECT_EQ(a.comm_s, b.comm_s) << i;
      EXPECT_EQ(a.finish_s, b.finish_s) << i;
    }
    ASSERT_EQ(serial.resizes.size(), pooled.resizes.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.resizes.size(); ++i) {
      EXPECT_EQ(serial.resizes[i].time_s, pooled.resizes[i].time_s) << i;
      EXPECT_EQ(serial.resizes[i].to_devices, pooled.resizes[i].to_devices) << i;
    }
    EXPECT_EQ(serial.summary.p99_s, pooled.summary.p99_s);
  }
}

// ---- Continuous (in-flight) batching.

TEST(Server, ContinuousReplayServesEveryAdmittedRequest) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
  ServerConfig cfg = burst_config();
  cfg.continuous = true;
  Server server(engine, *rig.task.val, cfg);
  const auto trace = burst_trace(*rig.task.val);
  server.replay(trace);

  const SloTracker& slo = server.slo();
  EXPECT_EQ(slo.completed() + slo.rejected(), static_cast<std::int64_t>(trace.size()));
  EXPECT_TRUE(server.queue().empty()) << "replay must drain the queue";
  ASSERT_GT(slo.completed(), 0);
  const std::int64_t max_slice = engine.mapping().vn_batch(0);
  for (const RequestRecord& r : slo.records()) {
    if (r.rejected) continue;
    EXPECT_GE(r.queue_wait_s, 0.0) << "request " << r.id;
    EXPECT_GT(r.compute_s, 0.0) << "request " << r.id;
    // finish - dispatch re-derives compute through additions on the
    // virtual clock; allow one ulp-scale slack.
    EXPECT_GE(r.inflight_s(), r.compute_s - 1e-12) << "request " << r.id;
    EXPECT_GE(r.prediction, 0) << "request " << r.id;
  }
  for (const BatchEvent& b : server.batches()) {
    EXPECT_GE(b.vn, 0) << "continuous work units are per-VN slices";
    EXPECT_LT(b.vn, engine.mapping().total_vns());
    EXPECT_LE(b.size, max_slice) << "a slice never exceeds its VN's batch share";
    EXPECT_GT(b.finish_s, b.start_s);
  }
}

TEST(Server, ContinuousBurstTriggersElasticGrowth) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
  ServerConfig cfg = burst_config();
  cfg.continuous = true;
  Server server(engine, *rig.task.val, cfg);
  server.replay(burst_trace(*rig.task.val));

  const auto& resizes = server.resizes();
  ASSERT_GE(resizes.size(), 2u);
  EXPECT_GT(resizes.front().to_devices, resizes.front().from_devices)
      << "first resize grows under queue pressure";
  // Growth fires on SYSTEM load (queue + in-flight), so under continuous
  // batching the recorded queue depth at the trigger sits BELOW the
  // watermark by at most the in-flight capacity (global_batch requests
  // across full slots) — the pre-fix blind spot was exactly that gap.
  EXPECT_LT(resizes.front().queue_depth, burst_config().elastic.high_watermark)
      << "continuous batching must grow before the queue alone hits the mark";
  EXPECT_GE(resizes.front().queue_depth + engine.mapping().global_batch(),
            burst_config().elastic.high_watermark);
  bool shrank = false;
  for (const ResizeEvent& e : resizes) {
    EXPECT_GT(e.migration_s, 0.0) << "seamless resize still costs an all-gather";
    if (e.to_devices < e.from_devices) shrank = true;
  }
  EXPECT_TRUE(shrank) << "post-burst drain must shrink back";
}

TEST(Server, ContinuousCutsQueueWaitUnderBurst) {
  const auto run_mode = [](bool continuous) {
    Rig rig = make_rig();
    VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, /*workers=*/0);
    ServerConfig cfg = burst_config();
    cfg.continuous = continuous;
    Server server(engine, *rig.task.val, cfg);
    server.replay(burst_trace(*rig.task.val));
    return server.slo().summary();
  };
  const SloSummary batch = run_mode(false);
  const SloSummary cont = run_mode(true);
  ASSERT_GT(batch.completed, 0);
  ASSERT_GT(cont.completed, 0);
  EXPECT_LT(cont.mean_queue_wait_s, batch.mean_queue_wait_s)
      << "admitting arrivals into in-flight slots must cut mean queue wait";
  EXPECT_NEAR(cont.mean_queue_wait_s + cont.mean_inflight_s, cont.mean_s, 1e-9)
      << "latency decomposes into queue wait + in-flight time";
}

ReplayResult run_continuous_replay(std::int64_t workers) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, workers);
  ServerConfig cfg = burst_config();
  cfg.continuous = true;
  Server server(engine, *rig.task.val, cfg);
  server.replay(burst_trace(*rig.task.val));
  return ReplayResult{server.slo().records(), server.resizes(),
                      server.slo().summary()};
}

TEST(Server, ContinuousReplayBitIdenticalAcrossWorkerCounts) {
  const ReplayResult serial = run_continuous_replay(0);
  ASSERT_FALSE(serial.records.empty());
  ASSERT_FALSE(serial.resizes.empty());
  for (const std::int64_t workers : {2, 8}) {
    const ReplayResult pooled = run_continuous_replay(workers);
    ASSERT_EQ(serial.records.size(), pooled.records.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const RequestRecord& a = serial.records[i];
      const RequestRecord& b = pooled.records[i];
      EXPECT_EQ(a.id, b.id) << i;
      EXPECT_EQ(a.rejected, b.rejected) << i;
      EXPECT_EQ(a.prediction, b.prediction) << i;
      // EXPECT_EQ on doubles is exact — bit-identical, not approximately.
      EXPECT_EQ(a.dispatch_s, b.dispatch_s) << i;
      EXPECT_EQ(a.queue_wait_s, b.queue_wait_s) << i;
      EXPECT_EQ(a.compute_s, b.compute_s) << i;
      EXPECT_EQ(a.comm_s, b.comm_s) << i;
      EXPECT_EQ(a.finish_s, b.finish_s) << i;
    }
    ASSERT_EQ(serial.resizes.size(), pooled.resizes.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.resizes.size(); ++i) {
      EXPECT_EQ(serial.resizes[i].time_s, pooled.resizes[i].time_s) << i;
      EXPECT_EQ(serial.resizes[i].to_devices, pooled.resizes[i].to_devices) << i;
    }
    EXPECT_EQ(serial.summary.p99_s, pooled.summary.p99_s);
  }
}

TEST(Server, ReplayBitIdenticalAcrossKernelModes) {
  // The kernel layer cannot move a prediction, a latency bit, or a resize
  // decision — in either batching mode. (Replays run under reference,
  // blocked, and simd kernels at different worker counts; records are
  // compared exactly. The simd arm runs everywhere: without the vector
  // ISA the backend factory serves it with the blocked tier.)
  const KernelMode saved = TensorConfig::kernel_mode();
  const auto compare = [](const ReplayResult& a, const ReplayResult& b) {
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].id, b.records[i].id) << i;
      EXPECT_EQ(a.records[i].prediction, b.records[i].prediction) << i;
      EXPECT_EQ(a.records[i].queue_wait_s, b.records[i].queue_wait_s) << i;
      EXPECT_EQ(a.records[i].finish_s, b.records[i].finish_s) << i;
    }
    ASSERT_EQ(a.resizes.size(), b.resizes.size());
    EXPECT_EQ(a.summary.p99_s, b.summary.p99_s);
  };

  TensorConfig::set_kernel_mode(KernelMode::kReference);
  const ReplayResult batch_ref = run_replay(0);
  const ReplayResult cont_ref = run_continuous_replay(0);
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  const ReplayResult batch_blk = run_replay(2);
  const ReplayResult cont_blk = run_continuous_replay(2);
  TensorConfig::set_kernel_mode(KernelMode::kSimd);
  const ReplayResult batch_simd = run_replay(8);
  const ReplayResult cont_simd = run_continuous_replay(8);
  TensorConfig::set_kernel_mode(saved);

  ASSERT_FALSE(batch_ref.records.empty());
  compare(batch_ref, batch_blk);
  compare(cont_ref, cont_blk);
  compare(batch_ref, batch_simd);
  compare(cont_ref, cont_simd);
}

// ---- Token streaming: prefill/decode disaggregation on the slice chain.

/// Mixed classify + stream trace: steady -> burst -> drain with most
/// requests streaming a short completion.
std::vector<InferRequest> stream_trace(const Dataset& pool) {
  StreamShape shape;
  shape.stream_fraction = 0.7;
  shape.prompt_min = 8;
  shape.prompt_max = 32;
  shape.tokens_min = 4;
  shape.tokens_max = 12;
  return streaming_trace(kSeed,
                         {{/*rate_rps=*/40.0, /*duration_s=*/0.5},
                          {/*rate_rps=*/150.0, /*duration_s=*/1.0},
                          {/*rate_rps=*/30.0, /*duration_s=*/1.0}},
                         pool.size(), shape);
}

ReplayResult run_streaming_replay(std::int64_t workers, bool disaggregate = true) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, workers);
  ServerConfig cfg = burst_config();
  cfg.continuous = true;
  cfg.stream.disaggregate = disaggregate;
  Server server(engine, *rig.task.val, cfg);
  server.replay(stream_trace(*rig.task.val));
  return {server.slo().records(), server.resizes(), server.slo().summary()};
}

TEST(Server, StreamingReplayStampsEveryToken) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  ServerConfig cfg = burst_config();
  cfg.continuous = true;
  Server server(engine, *rig.task.val, cfg);
  const auto trace = stream_trace(*rig.task.val);
  std::int64_t expect_streams = 0;
  std::int64_t expect_tokens = 0;
  for (const InferRequest& r : trace) {
    if (r.stream_tokens > 0) {
      ++expect_streams;
      expect_tokens += r.stream_tokens;
    }
  }
  ASSERT_GT(expect_streams, 50);
  ASSERT_LT(expect_streams, static_cast<std::int64_t>(trace.size()))
      << "the trace must mix classify requests in";
  server.replay(trace);

  const SloTracker& slo = server.slo();
  EXPECT_EQ(slo.completed() + slo.rejected(), static_cast<std::int64_t>(trace.size()));
  EXPECT_TRUE(server.queue().empty());
  const SloSummary s = slo.summary();
  EXPECT_EQ(s.rejected, 0) << "512-deep queue must admit this trace";
  EXPECT_EQ(s.streams, expect_streams);
  EXPECT_EQ(s.tokens, expect_tokens) << "every requested token must be served";
  EXPECT_GT(s.p50_ttft_s, 0.0);
  EXPECT_GT(s.mean_itl_s, 0.0);

  std::int64_t prefills = 0;
  std::int64_t decodes = 0;
  for (const BatchEvent& b : server.batches()) {
    if (b.kind == SliceKind::kPrefill) ++prefills;
    if (b.kind == SliceKind::kDecode) ++decodes;
  }
  EXPECT_EQ(prefills, expect_streams) << "one prefill slice per stream";
  EXPECT_EQ(decodes, expect_tokens - expect_streams)
      << "one decode slice per token after the first";

  for (const RequestRecord& r : slo.records()) {
    if (!r.streamed()) continue;
    ASSERT_EQ(r.tokens.size(), r.token_stamps.size()) << "request " << r.id;
    EXPECT_DOUBLE_EQ(r.first_token_s, r.token_stamps.front()) << r.id;
    EXPECT_DOUBLE_EQ(r.finish_s, r.token_stamps.back()) << r.id;
    EXPECT_EQ(r.prediction, r.tokens.back()) << r.id;
    EXPECT_GT(r.ttft_s(), 0.0) << r.id;
    for (std::size_t i = 1; i < r.token_stamps.size(); ++i)
      EXPECT_GT(r.token_stamps[i], r.token_stamps[i - 1])
          << "tokens must stream strictly forward, request " << r.id;
  }
}

TEST(Server, StreamingRequiresContinuousMode) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  ServerConfig cfg = burst_config();
  cfg.continuous = false;
  Server server(engine, *rig.task.val, cfg);
  EXPECT_THROW(server.replay(stream_trace(*rig.task.val)), VfError)
      << "a stream is a slice chain; batch-boundary mode has no slots";
}

TEST(Server, DisaggregationCutsTtftTailAtEqualTokens) {
  // A/B on the same trace: disaggregated scheduling (prefill admission
  // preferred, token-boundary preemption of decode chains) against plain
  // FIFO slice order. Both modes serve every requested token; the
  // disaggregated policy must buy its complexity with a lower TTFT tail.
  const ReplayResult disagg = run_streaming_replay(0, /*disaggregate=*/true);
  const ReplayResult fifo = run_streaming_replay(0, /*disaggregate=*/false);
  ASSERT_GT(disagg.summary.streams, 0);
  EXPECT_EQ(disagg.summary.tokens, fifo.summary.tokens)
      << "policy must not change the work served";
  EXPECT_EQ(disagg.summary.streams, fifo.summary.streams);
  EXPECT_LT(disagg.summary.p99_ttft_s, fifo.summary.p99_ttft_s)
      << "prefill preference must cut the TTFT tail";
}

TEST(Server, StreamingReplayBitIdenticalAcrossWorkerCounts) {
  const ReplayResult serial = run_streaming_replay(0);
  ASSERT_FALSE(serial.records.empty());
  for (const std::int64_t workers : {2, 8}) {
    const ReplayResult pooled = run_streaming_replay(workers);
    ASSERT_EQ(serial.records.size(), pooled.records.size()) << workers << "w";
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const RequestRecord& a = serial.records[i];
      const RequestRecord& b = pooled.records[i];
      EXPECT_EQ(a.id, b.id) << i;
      EXPECT_EQ(a.prediction, b.prediction) << i;
      EXPECT_EQ(a.dispatch_s, b.dispatch_s) << i;
      EXPECT_EQ(a.finish_s, b.finish_s) << i;
      EXPECT_EQ(a.first_token_s, b.first_token_s) << i;
      ASSERT_EQ(a.tokens.size(), b.tokens.size()) << i;
      for (std::size_t t = 0; t < a.tokens.size(); ++t) {
        EXPECT_EQ(a.tokens[t], b.tokens[t]) << i << ":" << t;
        // Exact double equality: per-token stamps are part of the
        // bit-exactness contract, not just the scalar record fields.
        EXPECT_EQ(a.token_stamps[t], b.token_stamps[t]) << i << ":" << t;
      }
    }
    EXPECT_EQ(serial.summary.p99_ttft_s, pooled.summary.p99_ttft_s);
    EXPECT_EQ(serial.summary.mean_itl_s, pooled.summary.mean_itl_s);
  }
}

TEST(Server, ValidatesElasticPolicy) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0, /*vns=*/4);
  ServerConfig cfg = burst_config();
  cfg.elastic.max_devices = 8;  // > 4 VNs: extra devices could never serve
  EXPECT_THROW(Server(engine, *rig.task.val, cfg), VfError);
  cfg.elastic.max_devices = 4;
  cfg.elastic.high_watermark = cfg.elastic.low_watermark;  // no hysteresis band
  EXPECT_THROW(Server(engine, *rig.task.val, cfg), VfError);
}

TEST(Server, ReplayIsOneShot) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  Server server(engine, *rig.task.val, burst_config());
  server.replay(poisson_trace(kSeed, 100.0, 10, rig.task.val->size()));
  EXPECT_THROW(server.replay(poisson_trace(kSeed, 100.0, 10, rig.task.val->size())),
               VfError);
}

}  // namespace
}  // namespace vf::serve
