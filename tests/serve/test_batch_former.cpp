// BatchFormer: the size-or-timeout policy and the purity property.
//
// The headline property: the formed batch sequence is a pure function of
// (arrival trace, policy) — replaying the same trace through full servers
// whose engines run 0, 2, and 8 pool workers yields identical batch
// boundaries, start times, and memberships. Host scheduling must not be
// able to move a single request between batches.
#include <gtest/gtest.h>

#include <vector>

#include "serve/arrival.h"
#include "serve/batch_former.h"
#include "serve/server.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

InferRequest req(std::int64_t id, double t) {
  InferRequest r;
  r.id = id;
  r.arrival_s = t;
  r.example_index = id % 16;
  return r;
}

TEST(BatchFormer, SizeTriggerFiresAtMaxBatch) {
  BatchFormer former({/*max_batch=*/3, /*max_wait_s=*/10.0});
  RequestQueue q(16);
  q.push(req(0, 0.0));
  q.push(req(1, 0.1));
  EXPECT_EQ(former.ready_count(q, 0.1), 0) << "below max_batch, within wait";
  q.push(req(2, 0.2));
  EXPECT_EQ(former.ready_count(q, 0.2), 3) << "max_batch reached";
  q.push(req(3, 0.3));
  EXPECT_EQ(former.ready_count(q, 0.3), 3) << "a batch never exceeds max_batch";
}

TEST(BatchFormer, TimeoutTriggerFlushesPartialBatch) {
  BatchFormer former({/*max_batch=*/8, /*max_wait_s=*/0.5});
  RequestQueue q(16);
  q.push(req(0, 1.0));
  q.push(req(1, 1.2));
  EXPECT_EQ(former.ready_count(q, 1.49), 0);
  EXPECT_DOUBLE_EQ(former.timeout_deadline_s(q), 1.5);
  EXPECT_EQ(former.ready_count(q, 1.5), 2) << "oldest timed out: flush all queued";
}

TEST(BatchFormer, PackAssignsFifoPrefixAscendingVnOrder) {
  BatchFormer former({32, 0.1});
  // 4 VNs x 8 examples each; a 21-request batch fills VN0, VN1, then 5 on VN2.
  const VnMapping m = VnMapping::even(4, 2, 32);
  const auto packs = former.pack(21, m);
  ASSERT_EQ(packs.size(), 3u);
  EXPECT_EQ(packs[0].vn, 0);
  EXPECT_EQ(packs[1].vn, 1);
  EXPECT_EQ(packs[2].vn, 2);
  EXPECT_EQ(packs[0].positions, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(packs[1].positions, (std::vector<std::int64_t>{8, 9, 10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(packs[2].positions, (std::vector<std::int64_t>{16, 17, 18, 19, 20}));
}

TEST(BatchFormer, PackRejectsOverCapacityAndEmpty) {
  BatchFormer former({64, 0.1});
  const VnMapping m = VnMapping::even(2, 1, 16);
  EXPECT_THROW(former.pack(17, m), VfError);
  EXPECT_THROW(former.pack(0, m), VfError);
  EXPECT_THROW(BatchFormer({0, 0.1}), VfError);
  EXPECT_THROW(BatchFormer({4, -1.0}), VfError);
}

// ---- Purity property: batches are a function of the trace, not the host.

struct ReplayShape {
  std::vector<BatchEvent> batches;
  std::vector<std::int64_t> record_ids;  // completion order
};

ReplayShape run_replay(std::int64_t workers) {
  const std::uint64_t seed = 7;
  ProxyTask task = make_task("mrpc-sim", seed);
  Sequential model = make_proxy_model("mrpc-sim", seed);
  TrainRecipe recipe = make_recipe("mrpc-sim");
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 2),
                           VnMapping::even(4, 2, recipe.global_batch), cfg);

  ServerConfig scfg;
  scfg.queue_capacity = 64;
  scfg.batch = {/*max_batch=*/16, /*max_wait_s=*/0.02};
  scfg.deadline_s = 0.5;
  scfg.elastic.enabled = true;
  scfg.elastic.high_watermark = 24;
  scfg.elastic.low_watermark = 2;
  scfg.elastic.max_devices = 4;
  scfg.elastic.cooldown_batches = 2;

  Server server(engine, *task.val, scfg);
  server.replay(poisson_trace(seed, /*rate_rps=*/400.0, /*count=*/300,
                              task.val->size()));

  ReplayShape shape;
  shape.batches = server.batches();
  for (const RequestRecord& r : server.slo().records()) shape.record_ids.push_back(r.id);
  return shape;
}

TEST(BatchFormer, BatchSequencePureFunctionOfTraceAcrossWorkerCounts) {
  const ReplayShape serial = run_replay(0);
  ASSERT_FALSE(serial.batches.empty());
  for (const std::int64_t workers : {2LL, 8LL}) {
    const ReplayShape pooled = run_replay(workers);
    ASSERT_EQ(serial.batches.size(), pooled.batches.size()) << workers << " workers";
    for (std::size_t b = 0; b < serial.batches.size(); ++b) {
      EXPECT_EQ(serial.batches[b].size, pooled.batches[b].size) << "batch " << b;
      EXPECT_EQ(serial.batches[b].start_s, pooled.batches[b].start_s) << "batch " << b;
      EXPECT_EQ(serial.batches[b].finish_s, pooled.batches[b].finish_s) << "batch " << b;
      EXPECT_EQ(serial.batches[b].devices, pooled.batches[b].devices) << "batch " << b;
    }
    EXPECT_EQ(serial.record_ids, pooled.record_ids) << workers << " workers";
  }
}

}  // namespace
}  // namespace vf::serve
