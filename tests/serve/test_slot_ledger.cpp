// SlotLedger: admit/complete transitions and the deterministic orderings
// continuous batching leans on — free slots claimed in ascending VN-id
// order, due completions processed in (done time, VN id) order.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "serve/slot_ledger.h"
#include "util/common.h"

namespace vf::serve {
namespace {

Slot slice(double dispatch_s, double done_s, std::initializer_list<std::int64_t> ids) {
  Slot s;
  s.dispatch_s = dispatch_s;
  s.done_s = done_s;
  for (const std::int64_t id : ids) {
    InferRequest r;
    r.id = id;
    r.arrival_s = dispatch_s;
    s.requests.push_back(r);
    s.predictions.push_back(0);
  }
  return s;
}

TEST(SlotLedger, AdmitCompleteLifecycle) {
  SlotLedger ledger(3);
  EXPECT_EQ(ledger.total_slots(), 3);
  EXPECT_TRUE(ledger.all_free());
  EXPECT_EQ(ledger.lowest_free(), 0);
  EXPECT_EQ(ledger.earliest_done_s(), std::numeric_limits<double>::infinity());

  ledger.admit(0, slice(1.0, 2.0, {10, 11}));
  EXPECT_FALSE(ledger.all_free());
  EXPECT_EQ(ledger.busy_count(), 1);
  EXPECT_EQ(ledger.inflight_requests(), 2)
      << "in-flight load counts requests, not slots";
  EXPECT_EQ(ledger.lowest_free(), 1) << "slot 0 busy: next free is VN 1";
  EXPECT_DOUBLE_EQ(ledger.earliest_done_s(), 2.0);
  EXPECT_TRUE(ledger.slot(0).busy);
  EXPECT_FALSE(ledger.slot(1).busy);

  const Slot done = ledger.complete(0);
  EXPECT_TRUE(ledger.all_free());
  EXPECT_EQ(ledger.inflight_requests(), 0);
  ASSERT_EQ(done.requests.size(), 2u);
  EXPECT_EQ(done.requests[0].id, 10);
  EXPECT_EQ(done.requests[1].id, 11);
  EXPECT_EQ(ledger.lowest_free(), 0) << "completed slot is reusable";
}

TEST(SlotLedger, LowestFreeClaimsAscendingVnOrder) {
  SlotLedger ledger(4);
  ledger.admit(0, slice(0.0, 1.0, {0}));
  ledger.admit(1, slice(0.0, 1.0, {1}));
  ledger.admit(2, slice(0.0, 1.0, {2}));
  EXPECT_EQ(ledger.lowest_free(), 3);
  ledger.complete(1);
  EXPECT_EQ(ledger.lowest_free(), 1) << "freed VN 1 outranks free VN 3";
  ledger.admit(3, slice(0.0, 2.0, {3}));
  ledger.admit(1, slice(0.0, 2.0, {4}));
  EXPECT_EQ(ledger.lowest_free(), -1) << "every slot in flight";
}

TEST(SlotLedger, DueOrdersByDoneTimeThenVnId) {
  SlotLedger ledger(4);
  ledger.admit(0, slice(0.0, 3.0, {0}));
  ledger.admit(1, slice(0.0, 1.0, {1}));
  ledger.admit(2, slice(0.0, 2.0, {2}));
  ledger.admit(3, slice(0.0, 1.0, {3}));  // ties VN 1 on done time

  EXPECT_TRUE(ledger.due(0.5).empty());
  EXPECT_EQ(ledger.due(1.0), (std::vector<std::int32_t>{1, 3}))
      << "equal done times break ties by VN id";
  EXPECT_EQ(ledger.due(2.5), (std::vector<std::int32_t>{1, 3, 2}));
  EXPECT_EQ(ledger.due(10.0), (std::vector<std::int32_t>{1, 3, 2, 0}));

  ledger.complete(1);
  ledger.complete(3);
  EXPECT_EQ(ledger.due(2.5), (std::vector<std::int32_t>{2}));
  EXPECT_DOUBLE_EQ(ledger.earliest_done_s(), 2.0);
}

TEST(SlotLedger, ReadmitChainsSlicesWithoutFreeingTheSlot) {
  // A token stream's decode chain: prefill, then per-token slices swapped
  // in via readmit. The slot never passes through the free state, so a
  // queued admission can never steal it mid-stream.
  SlotLedger ledger(2);
  Slot prefill = slice(0.0, 1.0, {7});
  prefill.kind = SliceKind::kPrefill;
  ledger.admit(0, std::move(prefill));
  ledger.admit(1, slice(0.0, 5.0, {8}));
  EXPECT_EQ(ledger.lowest_free(), -1);

  Slot decode = slice(1.0, 2.0, {7});
  decode.kind = SliceKind::kDecode;
  const Slot finished = ledger.complete(0);  // would free the slot...
  ledger.admit(0, std::move(decode));        // ...if readmit did not exist
  EXPECT_EQ(finished.kind, SliceKind::kPrefill);

  // The real transition: swap without the intermediate free state.
  Slot decode2 = slice(2.0, 3.0, {7});
  decode2.kind = SliceKind::kDecode;
  const Slot first_decode = ledger.readmit(0, std::move(decode2));
  EXPECT_EQ(first_decode.kind, SliceKind::kDecode);
  ASSERT_EQ(first_decode.requests.size(), 1u);
  EXPECT_EQ(first_decode.requests[0].id, 7);
  EXPECT_TRUE(ledger.slot(0).busy) << "the slot never went free";
  EXPECT_EQ(ledger.busy_count(), 2);
  EXPECT_EQ(ledger.lowest_free(), -1)
      << "chained readmits leave no admission window";
  EXPECT_DOUBLE_EQ(ledger.slot(0).done_s, 3.0);
  // Due ordering sees the continuation's completion time, with the usual
  // (done_s, VN id) order against other slots.
  EXPECT_EQ(ledger.due(3.0), (std::vector<std::int32_t>{0}));
  EXPECT_EQ(ledger.due(5.0), (std::vector<std::int32_t>{0, 1}));
}

TEST(SlotLedger, ReadmitTracksInflightRequestDelta) {
  SlotLedger ledger(1);
  ledger.admit(0, slice(0.0, 1.0, {1, 2, 3}));
  EXPECT_EQ(ledger.inflight_requests(), 3);
  // A continuation can carry a different request count (a decode slice is
  // a single stream); the in-flight load the elastic rule reads must track
  // the delta, not leak the old count.
  const Slot done = ledger.readmit(0, slice(1.0, 2.0, {1}));
  ASSERT_EQ(done.requests.size(), 3u);
  EXPECT_EQ(ledger.inflight_requests(), 1);
  ledger.complete(0);
  EXPECT_EQ(ledger.inflight_requests(), 0);
}

TEST(SlotLedger, ReadmitGuardsInvalidTransitions) {
  SlotLedger ledger(2);
  EXPECT_THROW(ledger.readmit(0, slice(0.0, 1.0, {0})), VfError)
      << "readmit on a free slot";
  ledger.admit(0, slice(0.0, 2.0, {0}));
  EXPECT_THROW(ledger.readmit(0, slice(1.0, 3.0, {0})), VfError)
      << "continuation dispatched before the slice finished";
  EXPECT_THROW(ledger.readmit(0, Slot{}), VfError) << "empty continuation";
  EXPECT_THROW(ledger.readmit(0, slice(3.0, 2.5, {0})), VfError)
      << "continuation completes before its dispatch";
  // A same-instant handoff (done_s == next.dispatch_s) is legal — that is
  // the normal cadence of a decode chain.
  const Slot done = ledger.readmit(0, slice(2.0, 2.5, {0}));
  EXPECT_DOUBLE_EQ(done.done_s, 2.0);
}

TEST(SlotLedger, EvictFreesSlotBeforeCompletion) {
  // Fault recovery: a kill tears an in-flight slice off its dead device
  // before its scheduled done_s — complete() would reject that, evict()
  // must not.
  SlotLedger ledger(2);
  ledger.admit(0, slice(0.0, 5.0, {3, 4}));
  ledger.admit(1, slice(0.0, 1.0, {5}));
  EXPECT_EQ(ledger.inflight_requests(), 3);

  const Slot evicted = ledger.evict(0);
  ASSERT_EQ(evicted.requests.size(), 2u);
  EXPECT_EQ(evicted.requests[0].id, 3);
  EXPECT_FALSE(ledger.slot(0).busy);
  EXPECT_EQ(ledger.busy_count(), 1);
  EXPECT_EQ(ledger.inflight_requests(), 1);
  EXPECT_EQ(ledger.lowest_free(), 0) << "the evicted slot is free again";
  EXPECT_THROW(ledger.evict(0), VfError) << "evict on a free slot";
}

TEST(SlotLedger, GuardsInvalidTransitions) {
  EXPECT_THROW(SlotLedger(0), VfError);
  SlotLedger ledger(2);
  EXPECT_THROW(ledger.complete(0), VfError) << "complete on free slot";
  EXPECT_THROW(ledger.admit(5, slice(0.0, 1.0, {0})), VfError) << "bad VN";
  EXPECT_THROW(ledger.admit(0, Slot{}), VfError) << "empty slice";
  EXPECT_THROW(ledger.admit(0, slice(2.0, 1.0, {0})), VfError)
      << "completes before dispatch";
  ledger.admit(0, slice(0.0, 1.0, {0}));
  EXPECT_THROW(ledger.admit(0, slice(0.0, 1.0, {1})), VfError) << "slot busy";
}

}  // namespace
}  // namespace vf::serve
