// SlotLedger: admit/complete transitions and the deterministic orderings
// continuous batching leans on — free slots claimed in ascending VN-id
// order, due completions processed in (done time, VN id) order.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "serve/slot_ledger.h"
#include "util/common.h"

namespace vf::serve {
namespace {

Slot slice(double dispatch_s, double done_s, std::initializer_list<std::int64_t> ids) {
  Slot s;
  s.dispatch_s = dispatch_s;
  s.done_s = done_s;
  for (const std::int64_t id : ids) {
    InferRequest r;
    r.id = id;
    r.arrival_s = dispatch_s;
    s.requests.push_back(r);
    s.predictions.push_back(0);
  }
  return s;
}

TEST(SlotLedger, AdmitCompleteLifecycle) {
  SlotLedger ledger(3);
  EXPECT_EQ(ledger.total_slots(), 3);
  EXPECT_TRUE(ledger.all_free());
  EXPECT_EQ(ledger.lowest_free(), 0);
  EXPECT_EQ(ledger.earliest_done_s(), std::numeric_limits<double>::infinity());

  ledger.admit(0, slice(1.0, 2.0, {10, 11}));
  EXPECT_FALSE(ledger.all_free());
  EXPECT_EQ(ledger.busy_count(), 1);
  EXPECT_EQ(ledger.inflight_requests(), 2)
      << "in-flight load counts requests, not slots";
  EXPECT_EQ(ledger.lowest_free(), 1) << "slot 0 busy: next free is VN 1";
  EXPECT_DOUBLE_EQ(ledger.earliest_done_s(), 2.0);
  EXPECT_TRUE(ledger.slot(0).busy);
  EXPECT_FALSE(ledger.slot(1).busy);

  const Slot done = ledger.complete(0);
  EXPECT_TRUE(ledger.all_free());
  EXPECT_EQ(ledger.inflight_requests(), 0);
  ASSERT_EQ(done.requests.size(), 2u);
  EXPECT_EQ(done.requests[0].id, 10);
  EXPECT_EQ(done.requests[1].id, 11);
  EXPECT_EQ(ledger.lowest_free(), 0) << "completed slot is reusable";
}

TEST(SlotLedger, LowestFreeClaimsAscendingVnOrder) {
  SlotLedger ledger(4);
  ledger.admit(0, slice(0.0, 1.0, {0}));
  ledger.admit(1, slice(0.0, 1.0, {1}));
  ledger.admit(2, slice(0.0, 1.0, {2}));
  EXPECT_EQ(ledger.lowest_free(), 3);
  ledger.complete(1);
  EXPECT_EQ(ledger.lowest_free(), 1) << "freed VN 1 outranks free VN 3";
  ledger.admit(3, slice(0.0, 2.0, {3}));
  ledger.admit(1, slice(0.0, 2.0, {4}));
  EXPECT_EQ(ledger.lowest_free(), -1) << "every slot in flight";
}

TEST(SlotLedger, DueOrdersByDoneTimeThenVnId) {
  SlotLedger ledger(4);
  ledger.admit(0, slice(0.0, 3.0, {0}));
  ledger.admit(1, slice(0.0, 1.0, {1}));
  ledger.admit(2, slice(0.0, 2.0, {2}));
  ledger.admit(3, slice(0.0, 1.0, {3}));  // ties VN 1 on done time

  EXPECT_TRUE(ledger.due(0.5).empty());
  EXPECT_EQ(ledger.due(1.0), (std::vector<std::int32_t>{1, 3}))
      << "equal done times break ties by VN id";
  EXPECT_EQ(ledger.due(2.5), (std::vector<std::int32_t>{1, 3, 2}));
  EXPECT_EQ(ledger.due(10.0), (std::vector<std::int32_t>{1, 3, 2, 0}));

  ledger.complete(1);
  ledger.complete(3);
  EXPECT_EQ(ledger.due(2.5), (std::vector<std::int32_t>{2}));
  EXPECT_DOUBLE_EQ(ledger.earliest_done_s(), 2.0);
}

TEST(SlotLedger, GuardsInvalidTransitions) {
  EXPECT_THROW(SlotLedger(0), VfError);
  SlotLedger ledger(2);
  EXPECT_THROW(ledger.complete(0), VfError) << "complete on free slot";
  EXPECT_THROW(ledger.admit(5, slice(0.0, 1.0, {0})), VfError) << "bad VN";
  EXPECT_THROW(ledger.admit(0, Slot{}), VfError) << "empty slice";
  EXPECT_THROW(ledger.admit(0, slice(2.0, 1.0, {0})), VfError)
      << "completes before dispatch";
  ledger.admit(0, slice(0.0, 1.0, {0}));
  EXPECT_THROW(ledger.admit(0, slice(0.0, 1.0, {1})), VfError) << "slot busy";
}

}  // namespace
}  // namespace vf::serve
