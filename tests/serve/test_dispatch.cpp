// SliceDispatcher helpers: per-request stamp derivation in
// record_slice_requests, BatchEvent construction in make_slice_event
// (including the hosting-device-count fix: a single-VN continuous slice
// reports the one device it ran on, never the full set), and the
// observability plumbing — span emission, kind counters, and the late
// queue-depth finalization the servers perform.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/dispatch.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

Slot finished_slot(SliceKind kind) {
  Slot s;
  s.kind = kind;
  s.dispatch_s = 2.0;
  s.compute_s = 0.25;
  s.comm_s = 0.05;
  s.done_s = 2.3;
  s.devices = 1;
  s.device = 3;
  s.warm = true;
  s.trace_span = 7;
  for (std::int64_t id : {10, 11}) {
    InferRequest r;
    r.id = id;
    r.arrival_s = 1.5 + 0.1 * static_cast<double>(id - 10);
    s.requests.push_back(r);
    s.predictions.push_back(id % 2);
  }
  return s;
}

TEST(Dispatch, SliceKindNames) {
  EXPECT_STREQ(slice_kind_name(SliceKind::kClassify), "classify");
  EXPECT_STREQ(slice_kind_name(SliceKind::kPrefill), "prefill");
  EXPECT_STREQ(slice_kind_name(SliceKind::kDecode), "decode");
}

TEST(Dispatch, MakeSliceEventCopiesScheduleAndObsFields) {
  for (const SliceKind kind :
       {SliceKind::kClassify, SliceKind::kPrefill, SliceKind::kDecode}) {
    const Slot done = finished_slot(kind);
    const BatchEvent ev = make_slice_event(done, /*vn=*/5, /*queue_depth=*/9);
    EXPECT_EQ(ev.start_s, done.dispatch_s);
    EXPECT_EQ(ev.finish_s, done.done_s);
    EXPECT_EQ(ev.size, 2);
    EXPECT_EQ(ev.devices, 1);
    EXPECT_EQ(ev.queue_depth_after, 9);
    EXPECT_EQ(ev.vn, 5);
    EXPECT_EQ(ev.model, -1) << "model is finalized by the co-located caller";
    EXPECT_EQ(ev.kind, kind);
    EXPECT_EQ(ev.device, 3);
    EXPECT_TRUE(ev.warm);
    EXPECT_EQ(ev.trace_span, 7);
  }
}

TEST(Dispatch, RecordSliceRequestsDerivesPerRequestStamps) {
  const Slot done = finished_slot(SliceKind::kClassify);
  SloTracker tracker(/*deadline_s=*/0.5);
  record_slice_requests(done, tracker);

  ASSERT_EQ(tracker.completed(), 2);
  const std::vector<RequestRecord>& recs = tracker.records();
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const RequestRecord& r = recs[i];
    const InferRequest& q = done.requests[i];
    EXPECT_EQ(r.id, q.id);
    EXPECT_EQ(r.arrival_s, q.arrival_s);
    EXPECT_EQ(r.dispatch_s, done.dispatch_s);
    EXPECT_EQ(r.queue_wait_s, done.dispatch_s - q.arrival_s)
        << "queue wait is admission -> slice dispatch";
    EXPECT_EQ(r.compute_s, done.compute_s);
    EXPECT_EQ(r.comm_s, done.comm_s);
    EXPECT_EQ(r.finish_s, done.done_s) << "every request finishes at the "
                                          "slice's own completion time";
    EXPECT_EQ(r.prediction, done.predictions[i]);
  }
}

TEST(Dispatch, ContinuousSliceReportsHostingDeviceNotFullSet) {
  // Regression: with a 4-device mapping, a dispatched single-VN slice ran
  // on exactly one device — BatchEvent.devices used to report 4, which
  // disagreed with the per-device trace spans and double-counted capacity
  // in device-seconds accounting.
  ProxyTask task = make_task("mrpc-sim", kSeed);
  Sequential model = make_proxy_model("mrpc-sim", kSeed);
  TrainRecipe recipe = make_recipe("mrpc-sim");
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule,
                           *task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 4),
                           VnMapping::even(8, 4, recipe.global_batch), cfg);

  SliceDispatcher dispatcher(engine, *task.val);
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  dispatcher.set_observability({&trace, &metrics}, /*model=*/-1, "serve.");

  std::vector<double> device_free(4, 0.0);
  std::vector<InferRequest> reqs;
  for (std::int64_t id = 0; id < 3; ++id)
    reqs.push_back(InferRequest{id, /*arrival_s=*/0.0, /*example_index=*/id});
  const Slot slot =
      dispatcher.dispatch_classify(/*vn=*/5, /*now_s=*/1.0, device_free, reqs);

  EXPECT_EQ(slot.devices, 1) << "a single-VN slice runs on one device";
  EXPECT_GE(slot.device, 0);
  EXPECT_LT(slot.device, 4);
  EXPECT_GT(slot.done_s, 1.0);
  const BatchEvent ev = make_slice_event(slot, 5, /*queue_depth=*/0);
  EXPECT_EQ(ev.devices, 1);
  EXPECT_EQ(ev.device, slot.device);

  // The dispatch recorded one classify span on the hosting device's track
  // and bumped the kind counter; queue depth is unfinalized until the
  // server settles post-dispatch admissions.
  ASSERT_EQ(trace.size(), 1u);
  const obs::TraceEvent& span = trace.events()[0];
  EXPECT_STREQ(span.name, "classify");
  EXPECT_EQ(span.device, static_cast<std::int32_t>(slot.device));
  EXPECT_EQ(span.vn, 5);
  EXPECT_EQ(span.batch, 3);
  EXPECT_EQ(span.queue_depth, -1);
  EXPECT_EQ(metrics.find_counter("serve.slices.classify")->value, 1);

  // Late finalization through the slot's span index — the path the
  // servers use once admissions have settled.
  trace.set_queue_depth(ev.trace_span, 4);
  EXPECT_EQ(trace.events()[0].queue_depth, 4);

  // Decode slices carry their own kind through the same path.
  std::vector<InferRequest> stream_req;
  InferRequest sr;
  sr.id = 100;
  sr.arrival_s = 1.0;
  stream_req.push_back(sr);
  const Slot decode =
      dispatcher.dispatch_rows(/*vn=*/2, SliceKind::kDecode, /*now_s=*/1.1,
                               device_free, stream_req, /*rows=*/{0});
  EXPECT_EQ(decode.kind, SliceKind::kDecode);
  EXPECT_EQ(decode.devices, 1);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_STREQ(trace.events()[1].name, "decode");
  EXPECT_EQ(metrics.find_counter("serve.slices.decode")->value, 1);

  // Recording off: the same dispatch emits nothing and marks no span.
  dispatcher.set_observability({}, -1, "");
  const Slot quiet =
      dispatcher.dispatch_classify(/*vn=*/6, /*now_s=*/1.2, device_free, reqs);
  EXPECT_EQ(quiet.trace_span, obs::TraceRecorder::kNoSpan);
  EXPECT_EQ(trace.size(), 2u);
}

}  // namespace
}  // namespace vf::serve
