// SloTracker edge cases and the queue-wait / in-flight latency breakdown.
//
// Percentiles must be well-defined for ANY sample count: an empty replay
// reports exact zeros (never NaN, never an out-of-range index), a single
// sample is every percentile of itself, and all-identical latencies make
// every percentile that common value.
#include <gtest/gtest.h>

#include <cmath>

#include "serve/slo_tracker.h"
#include "util/common.h"

namespace vf::serve {
namespace {

RequestRecord completed(std::int64_t id, double arrival_s, double dispatch_s,
                        double finish_s) {
  RequestRecord r;
  r.id = id;
  r.arrival_s = arrival_s;
  r.dispatch_s = dispatch_s;
  r.queue_wait_s = dispatch_s - arrival_s;
  r.finish_s = finish_s;
  r.prediction = 0;
  return r;
}

TEST(SloTracker, ZeroSamplesAreWellDefined) {
  SloTracker t(0.5);
  EXPECT_EQ(t.completed(), 0);
  EXPECT_EQ(t.latency_percentile_s(0.5), 0.0);
  EXPECT_EQ(t.latency_percentile_s(0.99), 0.0);
  EXPECT_EQ(t.queue_wait_percentile_s(0.95), 0.0);

  const SloSummary s = t.summary();
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.p50_s, 0.0);
  EXPECT_EQ(s.p95_s, 0.0);
  EXPECT_EQ(s.p99_s, 0.0);
  EXPECT_EQ(s.mean_s, 0.0);
  EXPECT_EQ(s.hit_rate, 0.0);
  EXPECT_EQ(s.mean_queue_wait_s, 0.0);
  EXPECT_FALSE(std::isnan(s.p99_queue_wait_s));
}

TEST(SloTracker, RejectionsAloneStillHaveNoLatencySamples) {
  SloTracker t(0.5);
  InferRequest r;
  r.id = 7;
  r.arrival_s = 1.0;
  t.record_rejection(r, 1.0);
  EXPECT_EQ(t.rejected(), 1);
  EXPECT_EQ(t.completed(), 0);
  // A rejection is its own SLO event, never a latency sample.
  EXPECT_EQ(t.latency_percentile_s(0.99), 0.0);
  const SloSummary s = t.summary();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.p99_s, 0.0);
  EXPECT_FALSE(std::isnan(s.hit_rate));
}

TEST(SloTracker, OneSampleIsEveryPercentile) {
  SloTracker t(0.75);
  // Dyadic stamps: 0.25/0.5 are exact in binary, so every comparison here
  // can be exact equality.
  t.record_completion(completed(0, 1.0, 1.25, 1.5));
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(t.latency_percentile_s(p), 0.5) << "p=" << p;
    EXPECT_DOUBLE_EQ(t.queue_wait_percentile_s(p), 0.25) << "p=" << p;
  }
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.p50_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.5);
  EXPECT_DOUBLE_EQ(s.max_s, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_inflight_s, 0.25);
  EXPECT_DOUBLE_EQ(s.hit_rate, 1.0);
}

TEST(SloTracker, AllIdenticalLatenciesCollapseEveryPercentile) {
  SloTracker t(1.0);
  for (std::int64_t i = 0; i < 10; ++i)
    t.record_completion(completed(i, static_cast<double>(i),
                                  static_cast<double>(i) + 0.25,
                                  static_cast<double>(i) + 0.5));
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.p50_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p95_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_s, 0.5);
  EXPECT_DOUBLE_EQ(s.max_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p95_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.p99_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_inflight_s, 0.25);
}

TEST(SloTracker, QueueWaitPlusInflightIsLatency) {
  SloTracker t(10.0);
  t.record_completion(completed(0, 0.0, 2.0, 5.0));
  t.record_completion(completed(1, 1.0, 2.0, 7.0));
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_s + s.mean_inflight_s, s.mean_s)
      << "the decomposition must be exact, not approximate";
}

TEST(SloTracker, ValidatesDispatchStamp) {
  SloTracker t(0.5);
  RequestRecord before_arrival = completed(0, 1.0, 0.5, 2.0);
  before_arrival.queue_wait_s = 0.0;
  EXPECT_THROW(t.record_completion(before_arrival), VfError);
  RequestRecord after_finish = completed(1, 1.0, 3.0, 2.0);
  EXPECT_THROW(t.record_completion(after_finish), VfError);
}

}  // namespace
}  // namespace vf::serve
