// SloTracker edge cases and the queue-wait / in-flight latency breakdown.
//
// Percentiles must be well-defined for ANY sample count: an empty replay
// reports exact zeros (never NaN, never an out-of-range index), a single
// sample is every percentile of itself, and all-identical latencies make
// every percentile that common value.
#include <gtest/gtest.h>

#include <cmath>

#include "serve/slo_tracker.h"
#include "util/common.h"
#include "util/stats.h"

namespace vf::serve {
namespace {

RequestRecord completed(std::int64_t id, double arrival_s, double dispatch_s,
                        double finish_s) {
  RequestRecord r;
  r.id = id;
  r.arrival_s = arrival_s;
  r.dispatch_s = dispatch_s;
  r.queue_wait_s = dispatch_s - arrival_s;
  r.finish_s = finish_s;
  r.prediction = 0;
  return r;
}

TEST(SloTracker, ZeroSamplesAreWellDefined) {
  SloTracker t(0.5);
  EXPECT_EQ(t.completed(), 0);
  EXPECT_EQ(t.latency_percentile_s(0.5), 0.0);
  EXPECT_EQ(t.latency_percentile_s(0.99), 0.0);
  EXPECT_EQ(t.queue_wait_percentile_s(0.95), 0.0);

  const SloSummary s = t.summary();
  EXPECT_EQ(s.completed, 0);
  EXPECT_EQ(s.p50_s, 0.0);
  EXPECT_EQ(s.p95_s, 0.0);
  EXPECT_EQ(s.p99_s, 0.0);
  EXPECT_EQ(s.mean_s, 0.0);
  EXPECT_EQ(s.hit_rate, 0.0);
  EXPECT_EQ(s.mean_queue_wait_s, 0.0);
  EXPECT_FALSE(std::isnan(s.p99_queue_wait_s));
}

TEST(SloTracker, RejectionsAloneStillHaveNoLatencySamples) {
  SloTracker t(0.5);
  InferRequest r;
  r.id = 7;
  r.arrival_s = 1.0;
  t.record_rejection(r, 1.0);
  EXPECT_EQ(t.rejected(), 1);
  EXPECT_EQ(t.completed(), 0);
  // A rejection is its own SLO event, never a latency sample.
  EXPECT_EQ(t.latency_percentile_s(0.99), 0.0);
  const SloSummary s = t.summary();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.p99_s, 0.0);
  EXPECT_FALSE(std::isnan(s.hit_rate));
}

TEST(SloTracker, OneSampleIsEveryPercentile) {
  SloTracker t(0.75);
  // Dyadic stamps: 0.25/0.5 are exact in binary, so every comparison here
  // can be exact equality.
  t.record_completion(completed(0, 1.0, 1.25, 1.5));
  for (const double p : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(t.latency_percentile_s(p), 0.5) << "p=" << p;
    EXPECT_DOUBLE_EQ(t.queue_wait_percentile_s(p), 0.25) << "p=" << p;
  }
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.p50_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.5);
  EXPECT_DOUBLE_EQ(s.max_s, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_inflight_s, 0.25);
  EXPECT_DOUBLE_EQ(s.hit_rate, 1.0);
}

TEST(SloTracker, AllIdenticalLatenciesCollapseEveryPercentile) {
  SloTracker t(1.0);
  for (std::int64_t i = 0; i < 10; ++i)
    t.record_completion(completed(i, static_cast<double>(i),
                                  static_cast<double>(i) + 0.25,
                                  static_cast<double>(i) + 0.5));
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.p50_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p95_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p99_s, 0.5);
  EXPECT_DOUBLE_EQ(s.mean_s, 0.5);
  EXPECT_DOUBLE_EQ(s.max_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p95_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.p99_queue_wait_s, 0.25);
  EXPECT_DOUBLE_EQ(s.mean_inflight_s, 0.25);
}

TEST(SloTracker, QueueWaitPlusInflightIsLatency) {
  SloTracker t(10.0);
  t.record_completion(completed(0, 0.0, 2.0, 5.0));
  t.record_completion(completed(1, 1.0, 2.0, 7.0));
  const SloSummary s = t.summary();
  EXPECT_DOUBLE_EQ(s.mean_queue_wait_s + s.mean_inflight_s, s.mean_s)
      << "the decomposition must be exact, not approximate";
}

TEST(SloTracker, RejectionStampsDispatchAndFinishAtRejectionTime) {
  // Regression: record_rejection used to leave dispatch_s/finish_s at
  // their zero defaults, so inflight_s() read as now_s and queue_wait_s as
  // zero — wall-clock-sized garbage in any aggregate mixing rejected
  // records. A rejection leaves the system the instant it is bounced.
  SloTracker t(0.5);
  InferRequest r;
  r.id = 3;
  r.arrival_s = 2.0;
  t.record_rejection(r, 2.5);
  ASSERT_EQ(t.records().size(), 1u);
  const RequestRecord& rec = t.records().front();
  EXPECT_TRUE(rec.rejected);
  EXPECT_DOUBLE_EQ(rec.dispatch_s, 2.5);
  EXPECT_DOUBLE_EQ(rec.finish_s, 2.5);
  EXPECT_DOUBLE_EQ(rec.queue_wait_s, 0.5);
  EXPECT_DOUBLE_EQ(rec.inflight_s(), 0.0)
      << "a bounced request spends no time in flight";
  EXPECT_DOUBLE_EQ(rec.latency_s(), 0.5);
}

TEST(SloTracker, SummaryPercentilesBitEqualSinglePercentileReads) {
  // summary() reads its percentiles off one sort per sample set; the
  // read-outs must stay bit-equal to the percentile() calls the accessors
  // make, or determinism comparisons across the two paths would drift.
  SloTracker t(0.3);
  double arrive = 0.0;
  for (std::int64_t i = 0; i < 97; ++i) {
    arrive += 0.0125 * static_cast<double>(i % 7 + 1);
    const double dispatch = arrive + 0.015625 * static_cast<double>(i % 5);
    const double finish = dispatch + 0.03125 * static_cast<double>(i % 11 + 1);
    t.record_completion(completed(i, arrive, dispatch, finish));
  }
  const SloSummary s = t.summary();
  EXPECT_EQ(s.p50_s, t.latency_percentile_s(0.50));
  EXPECT_EQ(s.p95_s, t.latency_percentile_s(0.95));
  EXPECT_EQ(s.p99_s, t.latency_percentile_s(0.99));
  EXPECT_EQ(s.p95_queue_wait_s, t.queue_wait_percentile_s(0.95));
  EXPECT_EQ(s.p99_queue_wait_s, t.queue_wait_percentile_s(0.99));
}

RequestRecord streamed_record(std::int64_t id, double arrival_s, double ttft_s,
                              double itl_s, std::int64_t tokens) {
  RequestRecord r;
  r.id = id;
  r.arrival_s = arrival_s;
  r.dispatch_s = arrival_s;
  r.queue_wait_s = 0.0;
  r.first_token_s = arrival_s + ttft_s;
  for (std::int64_t i = 0; i < tokens; ++i) {
    r.tokens.push_back(i % 10);
    r.token_stamps.push_back(r.first_token_s + itl_s * static_cast<double>(i));
  }
  r.finish_s = r.token_stamps.back();
  r.prediction = r.tokens.back();
  return r;
}

TEST(SloTracker, StreamedSummaryReportsTtftAndItl) {
  SloTracker t(/*deadline_s=*/0.5);
  // Two streams with dyadic stamps: TTFT 0.25 and 0.75, ITL 0.125 and
  // 0.25. The second stream misses the TTFT deadline even though nothing
  // about its total latency is checked.
  t.record_completion(streamed_record(0, 1.0, 0.25, 0.125, 4));
  t.record_completion(streamed_record(1, 2.0, 0.75, 0.25, 3));
  const SloSummary s = t.summary();
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.streams, 2);
  EXPECT_EQ(s.tokens, 7);
  EXPECT_EQ(s.deadline_misses, 1) << "a stream's deadline is its TTFT";
  EXPECT_DOUBLE_EQ(s.p50_ttft_s, 0.5);   // midpoint of {0.25, 0.75}
  EXPECT_DOUBLE_EQ(s.p99_ttft_s, 0.25 + 0.99 * 0.5);
  // ITL samples: {0.125 x3, 0.25 x2} -> mean = (0.375 + 0.5) / 5.
  EXPECT_DOUBLE_EQ(s.mean_itl_s, 0.175);
  EXPECT_DOUBLE_EQ(s.p99_itl_s, percentile({0.125, 0.125, 0.125, 0.25, 0.25}, 0.99));
  // Classify percentiles still cover the streams' total latencies.
  EXPECT_GT(s.p99_s, 0.0);
}

TEST(SloTracker, StreamedRecordValidation) {
  SloTracker t(0.5);
  RequestRecord bad = streamed_record(0, 1.0, 0.25, 0.125, 3);
  bad.tokens.pop_back();  // stamp count no longer matches token count
  EXPECT_THROW(t.record_completion(bad), VfError);
  RequestRecord early = streamed_record(1, 1.0, 0.25, 0.125, 3);
  early.first_token_s = 0.5;  // before dispatch
  EXPECT_THROW(t.record_completion(early), VfError);
}

TEST(SloTracker, ValidatesDispatchStamp) {
  SloTracker t(0.5);
  RequestRecord before_arrival = completed(0, 1.0, 0.5, 2.0);
  before_arrival.queue_wait_s = 0.0;
  EXPECT_THROW(t.record_completion(before_arrival), VfError);
  RequestRecord after_finish = completed(1, 1.0, 3.0, 2.0);
  EXPECT_THROW(t.record_completion(after_finish), VfError);
}

}  // namespace
}  // namespace vf::serve
