// vf::fault — seeded fault plans and the injector state machine.
#include <gtest/gtest.h>

#include <limits>

#include "core/engine.h"
#include "fault/fault.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::fault {
namespace {

EngineConfig test_cfg() {
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  return cfg;
}

VirtualFlowEngine make_engine(const ProxyTask& task, const Sequential& model,
                              const TrainRecipe& recipe, std::int64_t devices = 2) {
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(8, devices, recipe.global_batch),
                           test_cfg());
}

TEST(FaultPlan, FluentBuildersRecordEventsWithInsertionIds) {
  FaultPlan plan;
  plan.kill(1.0, 3)
      .recover(2.0)
      .straggler(0.5, 1, 2.5, 0.75)
      .comm_fault(1.5);
  // straggler() adds the paired start/end, so five events total.
  ASSERT_EQ(plan.size(), 5u);
  const auto& ev = plan.events();
  EXPECT_EQ(ev[0].kind, FaultKind::kKill);
  EXPECT_EQ(ev[0].device, 3);
  EXPECT_EQ(ev[1].kind, FaultKind::kRecover);
  EXPECT_EQ(ev[2].kind, FaultKind::kStragglerStart);
  EXPECT_DOUBLE_EQ(ev[2].multiplier, 2.5);
  EXPECT_EQ(ev[3].kind, FaultKind::kStragglerEnd);
  EXPECT_DOUBLE_EQ(ev[3].time_s, 1.25);
  EXPECT_EQ(ev[3].device, 1);
  EXPECT_EQ(ev[4].kind, FaultKind::kCommFault);
  for (std::size_t i = 0; i < ev.size(); ++i)
    EXPECT_EQ(ev[i].id, static_cast<std::int64_t>(i)) << "insertion id";
}

TEST(FaultPlan, ChaosIsPureFunctionOfSeed) {
  ChaosConfig cfg;
  const FaultPlan a = FaultPlan::chaos(7, cfg);
  const FaultPlan b = FaultPlan::chaos(7, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].time_s, b.events()[i].time_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].device, b.events()[i].device);
    EXPECT_DOUBLE_EQ(a.events()[i].multiplier, b.events()[i].multiplier);
  }
  // Counts follow the config: kills pair with recovers, stragglers with
  // their end events.
  EXPECT_EQ(a.size(), static_cast<std::size_t>(2 * cfg.kills + 2 * cfg.stragglers +
                                               cfg.comm_faults));
  // A different seed reshuffles at least one stamp.
  const FaultPlan c = FaultPlan::chaos(8, cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a.events()[i].time_s != c.events()[i].time_s ||
              a.events()[i].device != c.events()[i].device;
  EXPECT_TRUE(differs);
  // Every event lands inside the chaos window (plus the recover delay and
  // straggler duration tails), with legal devices and multipliers.
  for (const FaultEvent& ev : a.events()) {
    EXPECT_GE(ev.time_s, cfg.start_s);
    EXPECT_LT(ev.time_s, cfg.start_s + cfg.duration_s + cfg.recover_delay_s +
                             cfg.straggler_duration_s);
    if (ev.kind == FaultKind::kKill || ev.kind == FaultKind::kStragglerStart) {
      EXPECT_GE(ev.device, 0);
      EXPECT_LE(ev.device, cfg.max_device);
    }
    if (ev.kind == FaultKind::kStragglerStart) {
      EXPECT_GE(ev.multiplier, cfg.multiplier_min);
      EXPECT_LE(ev.multiplier, cfg.multiplier_max);
    }
  }
}

TEST(FaultInjector, DueFiresInOrderAndTracksDerivedState) {
  FaultPlan plan;
  plan.kill(1.0, 2).comm_fault(1.5).recover(2.0);
  FaultInjector inj(std::move(plan));

  EXPECT_TRUE(inj.due(0.5).empty());
  EXPECT_DOUBLE_EQ(inj.next_event_s(), 1.0);

  const auto killed = inj.due(1.0);
  ASSERT_EQ(killed.size(), 1u);
  EXPECT_EQ(killed[0].kind, FaultKind::kKill);
  EXPECT_EQ(inj.killed(), 1);
  EXPECT_EQ(inj.capacity_cap(8), 7);

  const auto comm = inj.due(1.5);
  ASSERT_EQ(comm.size(), 1u);
  EXPECT_TRUE(inj.comm_fault_pending());
  EXPECT_TRUE(inj.take_comm_fault());
  EXPECT_FALSE(inj.take_comm_fault()) << "comm faults are one-shot";

  const auto rec = inj.due(10.0);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec[0].kind, FaultKind::kRecover);
  EXPECT_EQ(inj.killed(), 0);
  EXPECT_EQ(inj.capacity_cap(8), 8);
  EXPECT_EQ(inj.next_event_s(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(inj.fired().size(), 3u);
}

TEST(FaultInjector, KillSkippedRevertsCapacityLoss) {
  FaultPlan plan;
  plan.kill(1.0, 0);
  FaultInjector inj(std::move(plan));
  inj.due(1.0);
  EXPECT_EQ(inj.killed(), 1);
  inj.kill_skipped();
  EXPECT_EQ(inj.killed(), 0);
  EXPECT_EQ(inj.capacity_cap(4), 4);
}

TEST(FaultInjector, CapacityCapFloorsAtOneDevice) {
  FaultPlan plan;
  for (int i = 0; i < 10; ++i) plan.kill(1.0 + i, 0);
  FaultInjector inj(std::move(plan));
  inj.due(100.0);
  EXPECT_EQ(inj.killed(), 10);
  EXPECT_EQ(inj.capacity_cap(4), 1) << "the budget never reaches zero";
}

TEST(FaultInjector, ApplySlowdownsWrapsModuloAndKeepsLargestMultiplier) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe, 2);

  FaultPlan plan;
  // Device 5 wraps onto slot 1 of a 2-device set; the overlapping window
  // on the same slot must keep the larger multiplier.
  plan.straggler(1.0, 5, 3.0, 2.0).straggler(1.5, 1, 2.0, 0.25);
  FaultInjector inj(std::move(plan));

  inj.due(1.5);  // both windows active
  inj.apply_slowdowns(eng);
  EXPECT_DOUBLE_EQ(eng.device_slowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(eng.device_slowdown(1), 3.0);

  inj.due(2.0);  // second window ended, first still active
  inj.apply_slowdowns(eng);
  EXPECT_DOUBLE_EQ(eng.device_slowdown(1), 3.0);

  inj.due(4.0);  // all windows ended
  inj.apply_slowdowns(eng);
  EXPECT_DOUBLE_EQ(eng.device_slowdown(1), 1.0);
}

TEST(FaultInjector, EngineGuardsSlowdownInputs) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe, 2);
  EXPECT_THROW(eng.set_device_slowdown(5, 2.0), VfError);
  EXPECT_THROW(eng.set_device_slowdown(0, 0.5), VfError)
      << "a slowdown below 1 would be a speedup";
}

}  // namespace
}  // namespace vf::fault
