// Synthetic dataset generators: determinism, geometry, split semantics.
#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(GaussianMixture, DeterministicExamples) {
  GaussianMixtureDataset a("t", 42, 100, 8, 4, 0.3F);
  GaussianMixtureDataset b("t", 42, 100, 8, 4, 0.3F);
  for (std::int64_t i = 0; i < 100; i += 7) {
    const Example ea = a.example(i);
    const Example eb = b.example(i);
    EXPECT_EQ(ea.label, eb.label);
    EXPECT_EQ(ea.features, eb.features);
  }
}

TEST(GaussianMixture, ExampleAccessIsOrderIndependent) {
  GaussianMixtureDataset a("t", 42, 100, 8, 4, 0.3F);
  const Example e50_first = a.example(50);
  GaussianMixtureDataset b("t", 42, 100, 8, 4, 0.3F);
  for (std::int64_t i = 0; i < 50; ++i) b.example(i);
  EXPECT_EQ(b.example(50).features, e50_first.features);
}

TEST(GaussianMixture, SeedsChangeData) {
  GaussianMixtureDataset a("t", 1, 10, 8, 4, 0.3F);
  GaussianMixtureDataset b("t", 2, 10, 8, 4, 0.3F);
  EXPECT_NE(a.example(0).features, b.example(0).features);
}

TEST(GaussianMixture, LabelsCoverClasses) {
  GaussianMixtureDataset d("t", 3, 2000, 4, 5, 0.3F);
  std::set<std::int64_t> labels;
  for (std::int64_t i = 0; i < 2000; ++i) labels.insert(d.example(i).label);
  EXPECT_EQ(labels.size(), 5u);
}

TEST(GaussianMixture, OffsetShiftsExamplesButKeepsCenters) {
  // With offset n, val example i equals what train example i+n would be —
  // same mixture, disjoint draws.
  GaussianMixtureDataset train("t", 4, 100, 8, 4, 0.3F, 0);
  GaussianMixtureDataset val("t", 4, 50, 8, 4, 0.3F, 100);
  GaussianMixtureDataset wide("t", 4, 150, 8, 4, 0.3F, 0);
  EXPECT_EQ(val.example(0).features, wide.example(100).features);
  EXPECT_NE(val.example(0).features, train.example(0).features);
}

TEST(GaussianMixture, NoiseControlsSpread) {
  GaussianMixtureDataset tight("t", 5, 500, 8, 2, 0.05F);
  GaussianMixtureDataset loose("t", 5, 500, 8, 2, 1.0F);
  // Average distance of example from its class's average position grows
  // with noise; proxy: feature variance.
  auto var = [](const Dataset& d) {
    double sum = 0.0, sum2 = 0.0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < 500; ++i) {
      for (float v : d.example(i).features) {
        sum += v;
        sum2 += v * v;
        ++n;
      }
    }
    const double m = sum / n;
    return sum2 / n - m * m;
  };
  EXPECT_GT(var(loose), var(tight) * 2.0);
}

TEST(GaussianMixture, InvalidParamsThrow) {
  EXPECT_THROW(GaussianMixtureDataset("t", 1, 0, 8, 4, 0.3F), VfError);
  EXPECT_THROW(GaussianMixtureDataset("t", 1, 10, 8, 1, 0.3F), VfError);
  EXPECT_THROW(GaussianMixtureDataset("t", 1, 10, 8, 4, 0.0F), VfError);
}

TEST(Teacher, DeterministicAndConsistent) {
  TeacherDataset a("t", 42, 50, 8, 2, 4, 0.1F);
  TeacherDataset b("t", 42, 50, 8, 2, 4, 0.1F);
  for (std::int64_t i = 0; i < 50; i += 5) {
    EXPECT_EQ(a.example(i).label, b.example(i).label);
    EXPECT_EQ(a.example(i).features, b.example(i).features);
  }
}

TEST(Teacher, LabelNoiseRateApproximatelyRespected) {
  // With noise p, labels differ from the clean teacher on ~p/2 of examples
  // (resampling can restore the original label for binary classes).
  TeacherDataset clean("t", 7, 4000, 8, 2, 4, 0.0F);
  TeacherDataset noisy("t", 7, 4000, 8, 2, 4, 0.4F);
  std::int64_t diff = 0;
  for (std::int64_t i = 0; i < 4000; ++i)
    if (clean.example(i).label != noisy.example(i).label) ++diff;
  EXPECT_NEAR(static_cast<double>(diff) / 4000.0, 0.2, 0.03);
}

TEST(Teacher, BothClassesPresent) {
  TeacherDataset d("t", 8, 1000, 8, 2, 4, 0.0F);
  std::set<std::int64_t> labels;
  for (std::int64_t i = 0; i < 1000; ++i) labels.insert(d.example(i).label);
  EXPECT_EQ(labels.size(), 2u);
}

TEST(Spirals, GeometryAndDeterminism) {
  SpiralsDataset d("s", 42, 100, 0.0F);
  EXPECT_EQ(d.feature_dim(), 2);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_EQ(d.example(0).label, 0);
  EXPECT_EQ(d.example(1).label, 1);
  SpiralsDataset e("s", 42, 100, 0.0F);
  EXPECT_EQ(d.example(13).features, e.example(13).features);
}

TEST(Dataset, GatherMaterializesSelectedRows) {
  GaussianMixtureDataset d("t", 9, 100, 4, 3, 0.3F);
  Tensor feats;
  std::vector<std::int64_t> labels;
  d.gather({5, 10, 5}, feats, labels);
  EXPECT_EQ(feats.rows(), 3);
  EXPECT_EQ(feats.cols(), 4);
  EXPECT_EQ(labels.size(), 3u);
  // Row 0 and row 2 both reference example 5.
  for (std::int64_t j = 0; j < 4; ++j) EXPECT_EQ(feats.at(0, j), feats.at(2, j));
  EXPECT_EQ(labels[0], labels[2]);
}

TEST(Dataset, ExampleIndexOutOfRangeThrows) {
  GaussianMixtureDataset d("t", 10, 10, 4, 3, 0.3F);
  EXPECT_THROW(d.example(10), VfError);
  EXPECT_THROW(d.example(-1), VfError);
}

}  // namespace
}  // namespace vf
