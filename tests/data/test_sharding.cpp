// Exactly-once sharding (§5.2) — including the parameterized property test
// over uneven share vectors that guards the heterogeneous data semantics.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "data/sharding.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(EpochPermutation, IsPermutationAndDeterministic) {
  const auto p = epoch_permutation(100, 42, 3);
  std::set<std::int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(p, epoch_permutation(100, 42, 3));
}

TEST(EpochPermutation, VariesByEpochAndSeed) {
  EXPECT_NE(epoch_permutation(64, 42, 0), epoch_permutation(64, 42, 1));
  EXPECT_NE(epoch_permutation(64, 42, 0), epoch_permutation(64, 43, 0));
}

TEST(SplitBatch, EvenShares) {
  const auto slices = split_batch(8, {2, 2, 2, 2});
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(slices[0].begin, 0);
  EXPECT_EQ(slices[3].begin, 6);
  for (const auto& s : slices) EXPECT_EQ(s.count, 2);
}

TEST(SplitBatch, UnevenSharesPreserveOrder) {
  // The paper's 6:2 example (§5.2).
  const auto slices = split_batch(8, {6, 2});
  EXPECT_EQ(slices[0].count, 6);
  EXPECT_EQ(slices[1].begin, 6);
  EXPECT_EQ(slices[1].count, 2);
}

TEST(SplitBatch, Validation) {
  EXPECT_THROW(split_batch(8, {4, 3}), VfError);   // doesn't sum to B
  EXPECT_THROW(split_batch(8, {8, 0}), VfError);   // zero share
  EXPECT_THROW(split_batch(8, {}), VfError);       // no VNs
  EXPECT_THROW(split_batch(0, {0}), VfError);      // empty batch
}

TEST(BatchesPerEpoch, DropRemainder) {
  EXPECT_EQ(batches_per_epoch(100, 30), 3);
  EXPECT_EQ(batches_per_epoch(90, 30), 3);
  EXPECT_THROW(batches_per_epoch(10, 30), VfError);
}

TEST(VnBatchIndices, DisjointCoverAcrossVnsWithinBatch) {
  const auto slices = split_batch(12, {4, 4, 4});
  std::set<std::int64_t> seen;
  for (std::int64_t vn = 0; vn < 3; ++vn) {
    for (auto idx : vn_batch_indices(48, 42, 0, 1, 12, slices, vn)) {
      EXPECT_TRUE(seen.insert(idx).second) << "index seen twice";
    }
  }
  EXPECT_EQ(seen.size(), 12u);
}

TEST(VnBatchIndices, IndependentOfSliceLayoutUnion) {
  // The union of indices in a global batch must not depend on how the
  // batch is sliced — only per-VN membership changes.
  auto collect = [](const std::vector<BatchSlice>& slices) {
    std::set<std::int64_t> all;
    for (std::size_t vn = 0; vn < slices.size(); ++vn)
      for (auto i : vn_batch_indices(64, 7, 2, 1, 16, slices,
                                     static_cast<std::int64_t>(vn)))
        all.insert(i);
    return all;
  };
  EXPECT_EQ(collect(split_batch(16, {4, 4, 4, 4})),
            collect(split_batch(16, {12, 4})));
  EXPECT_EQ(collect(split_batch(16, {4, 4, 4, 4})),
            collect(split_batch(16, {16})));
}

// ---- Property test: exactly-once delivery over an epoch for arbitrary
// (even and uneven) share vectors.
class ShardingProperty : public ::testing::TestWithParam<std::vector<std::int64_t>> {};

TEST_P(ShardingProperty, ExactlyOncePerEpoch) {
  const std::vector<std::int64_t> shares = GetParam();
  const std::int64_t B = std::accumulate(shares.begin(), shares.end(), std::int64_t{0});
  const std::int64_t dataset = 4 * B + 3;  // deliberately not a multiple
  const auto slices = split_batch(B, shares);
  const std::int64_t nb = batches_per_epoch(dataset, B);

  std::map<std::int64_t, int> count;
  for (std::int64_t b = 0; b < nb; ++b) {
    for (std::size_t vn = 0; vn < shares.size(); ++vn) {
      for (auto idx : vn_batch_indices(dataset, 42, 1, b, B, slices,
                                       static_cast<std::int64_t>(vn))) {
        ++count[idx];
      }
    }
  }
  // Every consumed example exactly once; exactly nb*B examples consumed.
  std::int64_t total = 0;
  for (const auto& [idx, c] : count) {
    EXPECT_EQ(c, 1) << "example " << idx << " seen " << c << " times";
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, dataset);
    total += c;
  }
  EXPECT_EQ(total, nb * B);
}

INSTANTIATE_TEST_SUITE_P(
    ShareVectors, ShardingProperty,
    ::testing::Values(
        std::vector<std::int64_t>{8},                 // single VN
        std::vector<std::int64_t>{4, 4},              // even
        std::vector<std::int64_t>{6, 2},              // paper's §5.2 example
        std::vector<std::int64_t>{3, 1, 1, 3},        // mixed
        std::vector<std::int64_t>{1, 1, 1, 1, 1, 1},  // many tiny VNs
        std::vector<std::int64_t>{12, 4},             // 3:1 heterogeneous
        std::vector<std::int64_t>{5, 7, 11},          // awkward primes
        std::vector<std::int64_t>{1, 31}));           // extreme skew

}  // namespace
}  // namespace vf
