#include <gtest/gtest.h>

#include <set>

#include "data/batch.h"
#include "util/common.h"

namespace vf {
namespace {

GaussianMixtureDataset make_ds() {
  return GaussianMixtureDataset("t", 42, 64, 4, 2, 0.3F);
}

TEST(EpochBatcher, MatchesPureFunctionForm) {
  // The cached batcher must produce exactly the indices of the pure
  // sharding functions.
  const auto ds = make_ds();
  EpochBatcher batcher(ds, 7, 16);
  const auto slices = split_batch(16, {4, 4, 8});
  for (std::int64_t epoch : {0, 1, 5}) {
    for (std::int64_t b = 0; b < batcher.batches_per_epoch(); ++b) {
      for (std::int64_t vn = 0; vn < 3; ++vn) {
        EXPECT_EQ(batcher.indices(epoch, b, slices, vn),
                  vn_batch_indices(64, 7, epoch, b, 16, slices, vn));
      }
    }
  }
}

TEST(EpochBatcher, CacheSurvivesEpochSwitches) {
  const auto ds = make_ds();
  EpochBatcher batcher(ds, 7, 16);
  const auto slices = split_batch(16, {16});
  const auto e0 = batcher.indices(0, 0, slices, 0);
  batcher.indices(1, 0, slices, 0);  // switch epoch
  EXPECT_EQ(batcher.indices(0, 0, slices, 0), e0);  // switch back
}

TEST(EpochBatcher, MicroBatchMaterializesFeaturesAndLabels) {
  const auto ds = make_ds();
  EpochBatcher batcher(ds, 7, 16);
  const auto slices = split_batch(16, {12, 4});
  const MicroBatch mb = batcher.micro_batch(0, 0, slices, 1);
  EXPECT_EQ(mb.features.rows(), 4);
  EXPECT_EQ(mb.features.cols(), 4);
  EXPECT_EQ(mb.labels.size(), 4u);
}

TEST(EpochBatcher, SliceLayoutMayChangeBetweenBatches) {
  // An elastic resize changes the slicing mid-epoch; the union of indices
  // per global batch must be unaffected.
  const auto ds = make_ds();
  EpochBatcher batcher(ds, 7, 16);
  const auto even = split_batch(16, {4, 4, 4, 4});
  const auto skew = split_batch(16, {8, 8});

  std::set<std::int64_t> union_even, union_skew;
  for (std::int64_t vn = 0; vn < 4; ++vn)
    for (auto i : batcher.indices(0, 1, even, vn)) union_even.insert(i);
  for (std::int64_t vn = 0; vn < 2; ++vn)
    for (auto i : batcher.indices(0, 1, skew, vn)) union_skew.insert(i);
  EXPECT_EQ(union_even, union_skew);
}

TEST(EpochBatcher, OutOfRangeBatchThrows) {
  const auto ds = make_ds();
  EpochBatcher batcher(ds, 7, 16);
  const auto slices = split_batch(16, {16});
  EXPECT_THROW(batcher.indices(0, 4, slices, 0), VfError);  // 64/16 = 4 batches
  EXPECT_THROW(batcher.indices(0, 0, slices, 1), VfError);  // only VN 0 exists
}

TEST(MaterializeAll, FullAndLimited) {
  const auto ds = make_ds();
  const MicroBatch all = materialize_all(ds);
  EXPECT_EQ(all.features.rows(), 64);
  const MicroBatch ten = materialize_all(ds, 10);
  EXPECT_EQ(ten.features.rows(), 10);
  // Limited view is a prefix of the full view.
  for (std::int64_t j = 0; j < ds.feature_dim(); ++j)
    EXPECT_EQ(ten.features.at(9, j), all.features.at(9, j));
}

}  // namespace
}  // namespace vf
