// Heterogeneous solver (§5.1.2): objective correctness against brute
// force, the homogeneous fallback, and the paper's Fig 7 uneven-beats-even
// behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "solver/solver.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

HeterogeneousSolver make_solver(const std::string& workload = "resnet50") {
  const ModelProfile& m = model_profile(workload);
  std::map<DeviceType, OfflineProfile> profiles;
  for (auto t : {DeviceType::kV100, DeviceType::kP100, DeviceType::kK80})
    profiles.emplace(t, profile_workload(t, m));
  return HeterogeneousSolver(m, std::move(profiles));
}

TEST(Solver, ChoosesFewestVnsThatFit) {
  const auto s = make_solver();
  // V100 frontier for resnet50 is 256: per-GPU batch 2048 needs 8 VNs.
  EXPECT_EQ(s.choose_vns(DeviceType::kV100, 2048), 8);
  EXPECT_EQ(s.choose_vns(DeviceType::kV100, 256), 1);
  EXPECT_EQ(s.choose_vns(DeviceType::kV100, 128), 1);
  // 3072 = 2^10 * 3: smallest divisor v with 3072/v <= 256 is 12.
  EXPECT_EQ(s.choose_vns(DeviceType::kV100, 3072), 12);
}

TEST(Solver, SatisfiesBatchConstraint) {
  const auto s = make_solver();
  const auto r = s.solve({{DeviceType::kV100, 2}, {DeviceType::kP100, 2}}, 8192);
  ASSERT_TRUE(r.has_value());
  std::int64_t covered = 0;
  for (const auto& a : r->assignment) covered += a.gpus * a.per_gpu_batch;
  EXPECT_EQ(covered, 8192);
}

TEST(Solver, UnevenBeatsEvenOnMixedCluster) {
  // Fig 7 (right): on 2 V100 + 2 P100 at B=8192, the even 2048:2048 split
  // is bottlenecked on the P100s; the solver's uneven split (3072:1024)
  // is much faster.
  const auto s = make_solver();
  const auto all = s.solve_all({{DeviceType::kV100, 2}, {DeviceType::kP100, 2}}, 8192);
  ASSERT_FALSE(all.empty());

  double even_time = -1.0, best_hetero = -1.0;
  for (const auto& r : all) {
    if (!r.heterogeneous) continue;
    if (best_hetero < 0.0) best_hetero = r.predicted_step_time_s;  // sorted
    bool is_even = r.assignment.size() == 2 &&
                   r.assignment[0].per_gpu_batch == r.assignment[1].per_gpu_batch;
    if (is_even && even_time < 0.0) even_time = r.predicted_step_time_s;
  }
  ASSERT_GT(even_time, 0.0);
  ASSERT_GT(best_hetero, 0.0);
  EXPECT_LT(best_hetero, 0.7 * even_time);  // paper: ~44% shorter
}

TEST(Solver, BestConfigMatchesBruteForceObjective) {
  // Independent brute force over the same grid must not beat the solver.
  const auto s = make_solver();
  const std::vector<GpuGroup> inv = {{DeviceType::kV100, 1}, {DeviceType::kP100, 2}};
  const std::int64_t B = 2048;
  const auto best = s.solve_all(inv, B);
  ASSERT_FALSE(best.empty());

  double brute = 1e18;
  for (const std::int64_t bv : pow2_like_batches(B)) {
    for (std::int64_t use_v : {0, 1}) {
      const std::int64_t covered_v = use_v * bv;
      if (covered_v > B) continue;
      const std::int64_t rem = B - covered_v;
      // P100 share: 2 GPUs, equal per-GPU batch from the grid (or unused).
      if (rem == 0 && use_v) {
        std::vector<TypeAssignment> a = {
            {DeviceType::kV100, 1, bv, s.choose_vns(DeviceType::kV100, bv),
             bv / std::max<std::int64_t>(1, s.choose_vns(DeviceType::kV100, bv))}};
        if (a[0].vns_per_gpu > 0) brute = std::min(brute, s.predict_step_time(a));
        continue;
      }
      if (rem % 2 != 0) continue;
      const std::int64_t bp = rem / 2;
      const auto grid = pow2_like_batches(B);
      if (std::find(grid.begin(), grid.end(), bp) == grid.end()) continue;
      const std::int64_t vv = use_v ? s.choose_vns(DeviceType::kV100, bv) : 1;
      const std::int64_t vp = s.choose_vns(DeviceType::kP100, bp);
      if (vp == 0 || (use_v && vv == 0)) continue;
      std::vector<TypeAssignment> a;
      if (use_v) a.push_back({DeviceType::kV100, 1, bv, vv, bv / vv});
      a.push_back({DeviceType::kP100, 2, bp, vp, bp / vp});
      brute = std::min(brute, s.predict_step_time(a));
    }
  }
  EXPECT_LE(best.front().predicted_step_time_s, brute + 1e-9);
}

TEST(Solver, FallsBackToHomogeneousWhenMixingDoesNotHelp) {
  // H1-style case: 1 V100 + 1 K80 — the K80 is ~16x slower, so any split
  // granting it a pow-2-like share slows the job; expect a V100-only
  // recommendation (§5.1.2's fallback).
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kK80, profile_workload(DeviceType::kK80, m));
  HeterogeneousSolver s(m, std::move(profiles));
  const auto r = s.solve({{DeviceType::kV100, 1}, {DeviceType::kK80, 1}}, 1024);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->heterogeneous);
  EXPECT_EQ(r->assignment[0].type, DeviceType::kV100);
}

TEST(Solver, PrefersHeterogeneousWhenItWins) {
  // H3-style case: 2 V100 + 8 P100 (P100 pool = V100 pool in aggregate
  // compute) — mixing should clearly beat either pool alone.
  const auto s = make_solver();
  const auto r = s.solve({{DeviceType::kV100, 2}, {DeviceType::kP100, 8}}, 8192);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->heterogeneous);

  const auto v_only = s.solve({{DeviceType::kV100, 2}}, 8192);
  ASSERT_TRUE(v_only.has_value());
  EXPECT_GT(r->predicted_throughput, 1.3 * v_only->predicted_throughput);
}

TEST(Solver, BalancedSplitFollowsFourToOneSpeedRatio) {
  const auto s = make_solver();
  const auto r = s.solve({{DeviceType::kV100, 2}, {DeviceType::kP100, 8}}, 8192);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->heterogeneous);
  std::int64_t bv = 0, bp = 0;
  for (const auto& a : r->assignment) {
    if (a.type == DeviceType::kV100) bv = a.per_gpu_batch;
    if (a.type == DeviceType::kP100) bp = a.per_gpu_batch;
  }
  // V100s should carry ~4x the per-GPU share of P100s (paper Table 4 H3:
  // 2048 vs 512).
  EXPECT_GE(bv, 3 * bp);
  EXPECT_LE(bv, 6 * bp);
}

TEST(Solver, PredictThroughputConsistent) {
  const auto s = make_solver();
  const auto r = s.solve({{DeviceType::kV100, 2}}, 4096);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->predicted_throughput, 4096.0 / r->predicted_step_time_s, 1e-6);
}

TEST(Solver, InfeasibleReturnsNullopt) {
  // Global batch below the smallest pow2-like coverage: e.g. B=1 on a
  // 2-GPU group can't give both GPUs a positive grid batch, and a single
  // GPU covers it — so craft a truly infeasible case: B=3 with 2 GPUs
  // only (2*b=3 has no integer solution; skipping the group covers 0).
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  HeterogeneousSolver s(m, std::move(profiles));
  EXPECT_FALSE(s.solve({{DeviceType::kV100, 2}}, 3).has_value());
}

TEST(Solver, UnprofiledTypeRejected) {
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  HeterogeneousSolver s(m, std::move(profiles));
  EXPECT_THROW(s.profile(DeviceType::kK80), VfError);
  // Unprofiled groups are simply unusable (skipped), not fatal.
  const auto r = s.solve({{DeviceType::kV100, 1}, {DeviceType::kK80, 4}}, 1024);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->assignment.size(), 1u);
}

TEST(Solver, WorkloadMismatchThrows) {
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100,
                   profile_workload(DeviceType::kV100, model_profile("bert-base")));
  EXPECT_THROW(HeterogeneousSolver(m, std::move(profiles)), VfError);
}

}  // namespace
}  // namespace vf
