#include <gtest/gtest.h>

#include <sstream>

#include "util/common.h"
#include "util/table.h"

namespace vf {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("b").cell(12.5, 1);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell(std::int64_t{2});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,2\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_THROW(t.cell("overflow"), VfError);
}

TEST(Table, RejectsCellBeforeRow) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), VfError);
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table(std::vector<std::string>{}), VfError);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FmtBytes, Units) {
  EXPECT_EQ(fmt_bytes(512), "512.00 B");
  EXPECT_EQ(fmt_bytes(1024), "1.00 KB");
  EXPECT_EQ(fmt_bytes(8.17 * 1024 * 1024 * 1024), "8.17 GB");
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Table 1");
  EXPECT_NE(os.str().find("Table 1"), std::string::npos);
}

}  // namespace
}  // namespace vf
