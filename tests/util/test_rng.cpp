// Determinism and statistical sanity of the counter-based RNG — the
// foundation of every reproducibility claim in the library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/common.h"
#include "util/rng.h"

namespace vf {
namespace {

TEST(CounterRng, SameKeySameSequence) {
  CounterRng a(42, 7);
  CounterRng b(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CounterRng, DifferentStreamsDiffer) {
  CounterRng a(42, 1);
  CounterRng b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(CounterRng, DifferentSeedsDiffer) {
  CounterRng a(1, 0);
  CounterRng b(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(CounterRng, IndependentInstancesDontInterfere) {
  // Drawing from one instance must not perturb another with the same key.
  CounterRng a(9, 3);
  CounterRng noise(123, 99);
  for (int i = 0; i < 10; ++i) noise.next_u64();
  CounterRng b(9, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    noise.next_u64();
  }
}

TEST(CounterRng, DoubleInUnitInterval) {
  CounterRng r(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(CounterRng, DoubleMeanNearHalf) {
  CounterRng r(4, 0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(CounterRng, NormalMoments) {
  CounterRng r(5, 0);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(CounterRng, NormalMeanStddev) {
  CounterRng r(6, 0);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(5.0F, 2.0F);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(CounterRng, NextBelowInRange) {
  CounterRng r(7, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(CounterRng, NextBelowCoversAllValues) {
  CounterRng r(8, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(CounterRng, NextBelowRejectsZero) {
  CounterRng r(9, 0);
  EXPECT_THROW(r.next_below(0), VfError);
}

TEST(CounterRng, PermutationIsPermutation) {
  CounterRng r(10, 0);
  const auto p = r.permutation(100);
  std::set<std::int64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(CounterRng, PermutationDeterministic) {
  CounterRng a(11, 0), b(11, 0);
  EXPECT_EQ(a.permutation(50), b.permutation(50));
}

TEST(CounterRng, PermutationNotIdentity) {
  CounterRng r(12, 0);
  const auto p = r.permutation(64);
  std::int64_t fixed = 0;
  for (std::int64_t i = 0; i < 64; ++i)
    if (p[static_cast<std::size_t>(i)] == i) ++fixed;
  EXPECT_LT(fixed, 10);
}

TEST(CounterRng, PermutationEmptyAndSingle) {
  CounterRng r(13, 0);
  EXPECT_TRUE(r.permutation(0).empty());
  EXPECT_EQ(r.permutation(1), (std::vector<std::int64_t>{0}));
}

TEST(DeriveSeed, DistinctTagsGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t tag = 0; tag < 1000; ++tag) seen.insert(derive_seed(42, tag));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

TEST(Splitmix64, KnownAvalanche) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(CounterRng, UniformRange) {
  CounterRng r(14, 0);
  for (int i = 0; i < 200; ++i) {
    const float x = r.uniform(-2.0F, 3.0F);
    EXPECT_GE(x, -2.0F);
    EXPECT_LT(x, 3.0F);
  }
}

}  // namespace
}  // namespace vf
