#include <gtest/gtest.h>

#include "util/common.h"
#include "util/stats.h"

namespace vf {
namespace {

TEST(Stats, MeanAndSum) {
  EXPECT_DOUBLE_EQ(sum({1, 2, 3}), 6.0);
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({5}), 5.0);
}

TEST(Stats, MeanOfEmptyThrows) { EXPECT_THROW(mean({}), VfError); }

TEST(Stats, Stddev) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_THROW(stddev({1.0}), VfError);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(median({30, 10, 20}), 20.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 0.5), VfError);
  EXPECT_THROW(percentile({1.0}, 1.5), VfError);
}

TEST(Stats, PercentilesBitEqualToRepeatedPercentile) {
  // The single-sort multi-read must reproduce percentile() bit-for-bit —
  // SloTracker summaries feed determinism assertions, so "close" is not
  // good enough.
  std::vector<double> xs;
  double v = 0.137;
  for (int i = 0; i < 257; ++i) {
    v = v * 1.618033988749895 + 0.002;
    while (v > 10.0) v -= 9.7;
    xs.push_back(v);
  }
  const std::vector<double> ps = {0.0, 0.5, 0.95, 0.99, 1.0};
  const std::vector<double> many = percentiles(xs, ps);
  ASSERT_EQ(many.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_EQ(many[i], percentile(xs, ps[i])) << "p=" << ps[i];
}

TEST(Stats, PercentilesValidation) {
  EXPECT_THROW(percentiles({}, {0.5}), VfError);
  EXPECT_THROW(percentiles({1.0}, {-0.1}), VfError);
  EXPECT_TRUE(percentiles({1.0, 2.0}, {}).empty());
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
}

TEST(Stats, EmpiricalCdf) {
  const auto cdf = empirical_cdf({3, 1, 2});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_NEAR(cdf[0].fraction, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].fraction, 1.0);
}

TEST(Stats, PctChange) {
  EXPECT_DOUBLE_EQ(pct_change(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(pct_change(200.0, 100.0), -50.0);
  EXPECT_THROW(pct_change(0.0, 1.0), VfError);
}

}  // namespace
}  // namespace vf
