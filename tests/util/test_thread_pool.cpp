// vf::ThreadPool: the deterministic-by-partitioning worker pool behind the
// engine's per-device concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/common.h"
#include "util/thread_pool.h"

namespace vf {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (std::int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, PerIndexSlotsNeedNoSynchronization) {
  // The engine's usage pattern: each index writes only its own slot; the
  // caller reduces in fixed order afterwards.
  ThreadPool pool(8);
  constexpr std::int64_t kN = 512;
  std::vector<std::int64_t> out(kN, 0);
  pool.parallel_for(kN, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i * i; });
  std::int64_t sum = 0;
  for (const std::int64_t v : out) sum += v;
  EXPECT_EQ(sum, (kN - 1) * kN * (2 * kN - 1) / 6);
}

TEST(ThreadPool, MoreWorkersThanWork) {
  ThreadPool pool(8);
  std::vector<std::int64_t> out(3, -1);
  pool.parallel_for(3, [&](std::int64_t i) { out[static_cast<std::size_t>(i)] = i; });
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(16, [&](std::int64_t) { total++; });
  EXPECT_EQ(total, 50 * 16);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::int64_t i) {
                                   if (i == 17) throw VfError("boom");
                                 }),
               VfError);
  // The pool is still usable after an exception (workers did not die).
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(10, [&](std::int64_t) { count++; });
  EXPECT_EQ(count, 10);
}

TEST(ThreadPool, StopsStartingWorkAfterFailure) {
  // Mirror of the serial loop's stop-at-first-throw: with one worker the
  // schedule is sequential, so after index 0 throws, no later index may
  // execute.
  ThreadPool pool(1);
  std::atomic<std::int64_t> executed{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t) {
                                   executed++;
                                   throw VfError("first index fails");
                                 }),
               VfError);
  EXPECT_EQ(executed, 1);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), VfError);
  EXPECT_THROW(ThreadPool(-3), VfError);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

}  // namespace
}  // namespace vf
