// Cost-model shape properties the paper's performance results rely on.
#include <gtest/gtest.h>

#include "device/cost_model.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

const DeviceSpec& v100() { return device_spec(DeviceType::kV100); }
const DeviceSpec& p100() { return device_spec(DeviceType::kP100); }

TEST(BatchUtilization, SaturatesWithBatch) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_LT(batch_utilization(m, 1), batch_utilization(m, 16));
  EXPECT_LT(batch_utilization(m, 16), batch_utilization(m, 256));
  EXPECT_LT(batch_utilization(m, 256), 1.0);
  EXPECT_NEAR(batch_utilization(m, m.batch_half_saturation), 0.5, 1e-9);
}

TEST(PassTime, IncreasesWithBatch) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_LT(pass_time_s(v100(), m, 32), pass_time_s(v100(), m, 64));
  EXPECT_LT(pass_time_s(v100(), m, 64), pass_time_s(v100(), m, 256));
}

TEST(PassTime, SublinearAtSmallBatch) {
  // Doubling a small batch less than doubles time (fixed launch overhead
  // and rising utilization) — the paper's motivation for preferring large
  // local batches in §2.1.
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_LT(pass_time_s(v100(), m, 2), 2.0 * pass_time_s(v100(), m, 1));
}

TEST(PassTime, V100FourTimesP100OnResnet) {
  const ModelProfile& m = model_profile("resnet50");
  const double ratio = pass_time_s(p100(), m, 256) / pass_time_s(v100(), m, 256);
  EXPECT_NEAR(ratio, 4.0, 0.4);
}

TEST(UpdateTime, IndependentOfBatch) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_GT(update_time_s(v100(), m), 0.0);
}

TEST(UpdateTime, ScalesWithModelSize) {
  EXPECT_GT(update_time_s(v100(), model_profile("bert-large")),
            10.0 * update_time_s(v100(), model_profile("resnet56")));
}

TEST(DeviceStepTime, SequentialVnsAddUp) {
  const ModelProfile& m = model_profile("resnet50");
  const double one = device_step_time_s(v100(), m, {256});
  const double four = device_step_time_s(v100(), m, {256, 256, 256, 256});
  // Four sequential passes cost ~4x the pass portion but only one update.
  EXPECT_GT(four, 3.5 * (one - update_time_s(v100(), m)));
  EXPECT_LT(four, 4.0 * one);
}

TEST(DeviceStepTime, UpdateChargedOncePerStep) {
  // §3.2 / Fig 17: the shared gradient buffer means one update per step,
  // independent of the number of virtual nodes.
  const ModelProfile& m = model_profile("bert-large");
  const double t1 = device_step_time_s(v100(), m, {4});
  const double t2 = device_step_time_s(v100(), m, {4, 4});
  const double pass = pass_time_s(v100(), m, 4);
  EXPECT_NEAR(t2 - t1, pass, 1e-9);
}

TEST(DeviceThroughput, ImprovesWithBiggerBatchAtFixedVns) {
  const ModelProfile& m = model_profile("transformer");
  EXPECT_LT(device_throughput(v100(), m, 256, 1), device_throughput(v100(), m, 2048, 1));
}

TEST(DeviceThroughput, LargeModelGainsFromMoreVns) {
  // Fig 17 (bottom): for models with expensive updates, scaling VNs (and
  // thus the global batch) raises throughput by amortizing the update.
  const ModelProfile& m = model_profile("bert-large");
  const double t1 = device_throughput(v100(), m, 4, 1);
  const double t32 = device_throughput(v100(), m, 4 * 32, 32);
  EXPECT_GT(t32, t1 * 1.15);
}

TEST(DeviceThroughput, ValidatesDivisibility) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_THROW(device_throughput(v100(), m, 10, 3), VfError);
  EXPECT_THROW(device_throughput(v100(), m, 8, 0), VfError);
}

TEST(PassTime, MemoryBoundForTinyComputeModels) {
  // A profile with negligible FLOPs but large activations is bounded by
  // memory bandwidth, not compute.
  ModelProfile m = model_profile("resnet56");
  m.flops_per_example = 1.0;  // effectively free compute
  const double t = pass_time_s(v100(), m, 1024);
  const double mem_bytes = 3.0 * m.activation_bytes_per_example * 1024 + 2.0 * m.param_bytes();
  EXPECT_NEAR(t - v100().kernel_launch_s, mem_bytes / v100().mem_bw_bytes, 1e-6);
}

TEST(CostModel, InvalidInputsThrow) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_THROW(pass_time_s(v100(), m, 0), VfError);
  EXPECT_THROW(device_step_time_s(v100(), m, {}), VfError);
  EXPECT_THROW(slice_infer_time_s(v100(), m, 0), VfError);
}

TEST(SliceInferTime, ColdDispatchPaysPassPlusFixedOverhead) {
  const ModelProfile& m = model_profile("bert-base");
  for (const std::int64_t b : {1, 4, 32}) {
    EXPECT_DOUBLE_EQ(slice_infer_time_s(v100(), m, b),
                     infer_pass_time_s(v100(), m, b) + v100().step_fixed_s)
        << "batch " << b;
  }
}

TEST(SliceInferTime, BatchDispatchAmortizesWhatSlicesPaySolo) {
  // device_infer_time_s charges the framework overhead once for a batch of
  // co-scheduled VN slices; dispatching the same slices one by one (cold)
  // pays it per slice. The gap is exactly (V - 1) x step_fixed.
  const ModelProfile& m = model_profile("bert-base");
  const std::vector<std::int64_t> batches = {8, 8, 8, 8};
  double solo = 0.0;
  for (const std::int64_t b : batches) solo += slice_infer_time_s(v100(), m, b);
  const double together = device_infer_time_s(v100(), m, batches);
  EXPECT_LT(together, solo);
  EXPECT_NEAR(solo - together,
              static_cast<double>(batches.size() - 1) * v100().step_fixed_s, 1e-12);
  // Single-slice batches are the equality case.
  EXPECT_DOUBLE_EQ(device_infer_time_s(v100(), m, {8}),
                   slice_infer_time_s(v100(), m, 8));
}

}  // namespace
}  // namespace vf
