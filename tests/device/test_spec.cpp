// Device catalog: calibration anchors the paper's ratios depend on.
#include <gtest/gtest.h>

#include "device/spec.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(DeviceSpec, CatalogNames) {
  EXPECT_STREQ(device_type_name(DeviceType::kV100), "V100");
  EXPECT_STREQ(device_type_name(DeviceType::kP100), "P100");
  EXPECT_STREQ(device_type_name(DeviceType::kK80), "K80");
  EXPECT_STREQ(device_type_name(DeviceType::kRtx2080Ti), "RTX2080Ti");
}

TEST(DeviceSpec, MemoryCapacities) {
  EXPECT_DOUBLE_EQ(device_spec(DeviceType::kV100).mem_bytes, 16.0 * kGiB);
  EXPECT_DOUBLE_EQ(device_spec(DeviceType::kP100).mem_bytes, 16.0 * kGiB);
  EXPECT_DOUBLE_EQ(device_spec(DeviceType::kRtx2080Ti).mem_bytes, 11.0 * kGiB);
  EXPECT_DOUBLE_EQ(device_spec(DeviceType::kK80).mem_bytes, 12.0 * kGiB);
}

TEST(DeviceSpec, V100IsFourTimesP100) {
  // §5.1.2: "V100 GPUs are 4x as fast as P100 GPUs" for ResNet-50-class
  // work. Our effective-FLOPs calibration encodes exactly that ratio.
  const double v = device_spec(DeviceType::kV100).effective_flops();
  const double p = device_spec(DeviceType::kP100).effective_flops();
  EXPECT_NEAR(v / p, 4.0, 0.2);
}

TEST(DeviceSpec, P100IsRoughlyFourTimesK80) {
  const double p = device_spec(DeviceType::kP100).effective_flops();
  const double k = device_spec(DeviceType::kK80).effective_flops();
  EXPECT_NEAR(p / k, 4.0, 0.3);
}

TEST(DeviceSpec, Rtx2080TiBetweenP100AndV100) {
  const double v = device_spec(DeviceType::kV100).effective_flops();
  const double p = device_spec(DeviceType::kP100).effective_flops();
  const double r = device_spec(DeviceType::kRtx2080Ti).effective_flops();
  EXPECT_GT(r, p);
  EXPECT_LT(r, v);
}

TEST(DeviceSpec, UsableMemoryBelowCapacity) {
  for (auto t : {DeviceType::kV100, DeviceType::kP100, DeviceType::kK80,
                 DeviceType::kRtx2080Ti}) {
    const DeviceSpec& s = device_spec(t);
    EXPECT_LT(s.usable_mem_bytes(), s.mem_bytes);
    EXPECT_GT(s.usable_mem_bytes(), 0.9 * s.mem_bytes * 0.9);
  }
}

TEST(MakeDevices, IdsSequential) {
  const auto d = make_devices(DeviceType::kV100, 3, 10);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].id, 10);
  EXPECT_EQ(d[2].id, 12);
  EXPECT_EQ(d[1].type, DeviceType::kV100);
}

TEST(MakeHeterogeneous, ContiguousIdsAcrossGroups) {
  const auto d = make_heterogeneous({{DeviceType::kV100, 2}, {DeviceType::kP100, 3}});
  ASSERT_EQ(d.size(), 5u);
  EXPECT_EQ(d[0].type, DeviceType::kV100);
  EXPECT_EQ(d[2].type, DeviceType::kP100);
  EXPECT_EQ(d[4].id, 4);
}

TEST(MakeDevices, NegativeCountThrows) {
  EXPECT_THROW(make_devices(DeviceType::kV100, -1), VfError);
}

}  // namespace
}  // namespace vf
