// Memory model: Fig 6 accounting, §3.3's constant-overhead claim, and the
// paper's published memory-fit anchors.
#include <gtest/gtest.h>

#include "device/memory_model.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

const DeviceSpec& rtx() { return device_spec(DeviceType::kRtx2080Ti); }
const DeviceSpec& v100() { return device_spec(DeviceType::kV100); }

TEST(Pow2Like, EnumeratesPowersAndMidpoints) {
  EXPECT_EQ(pow2_like_batches(8), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 8}));
  // §5.1.1 calls out 48, 192, 768 as examples of power-of-2-like values.
  const auto big = pow2_like_batches(1024);
  EXPECT_NE(std::find(big.begin(), big.end(), 48), big.end());
  EXPECT_NE(std::find(big.begin(), big.end(), 192), big.end());
  EXPECT_NE(std::find(big.begin(), big.end(), 768), big.end());
}

TEST(Pow2Like, SortedUniqueWithinLimit) {
  const auto xs = pow2_like_batches(500);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_LT(xs[i - 1], xs[i]);
  EXPECT_LE(xs.back(), 500);
}

TEST(PeakMemory, GradBufferEqualsModelSize) {
  // §3.3: the gradient buffer is the same size as the model.
  const ModelProfile& m = model_profile("resnet50");
  const auto with = peak_memory(m, {64}, true);
  const auto without = peak_memory(m, {64}, false);
  EXPECT_DOUBLE_EQ(with.grad_buffer, m.param_bytes());
  EXPECT_DOUBLE_EQ(without.grad_buffer, 0.0);
  EXPECT_DOUBLE_EQ(with.total() - without.total(), m.param_bytes());
}

TEST(PeakMemory, ConstantInVirtualNodeCount) {
  // §3.3 / Fig 17 (top): overhead is independent of V because VNs execute
  // sequentially and share the buffer.
  const ModelProfile& m = model_profile("resnet50");
  const double two = peak_memory(m, {64, 64}, true).total();
  const double eight = peak_memory(m, {64, 64, 64, 64, 64, 64, 64, 64}, true).total();
  EXPECT_DOUBLE_EQ(two, eight);
}

TEST(PeakMemory, DrivenByLargestVn) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_DOUBLE_EQ(peak_memory(m, {64, 32}, true).total(),
                   peak_memory(m, {64, 64}, true).total());
}

TEST(PeakMemory, ActivationsDominateForResnet) {
  // Fig 6: activations are the vast majority of peak usage.
  const ModelProfile& m = model_profile("resnet50");
  const auto mem = peak_memory(m, {192}, true);
  EXPECT_GT(mem.activations, 0.7 * mem.total());
  EXPECT_NEAR(mem.activations / kGiB, 8.0, 0.5);      // ~8.17 GB in Fig 6
  EXPECT_NEAR(mem.parameters / kMiB, 102.45, 5.0);    // 102.45 MB in Fig 6
}

TEST(MaxMicroBatch, PaperAnchors) {
  // Fig 18: max batches on a 2080 Ti are 192 (ResNet-50), 3072
  // (Transformer), 4 (BERT-LARGE). §6.2.1: 256 fits a 16 GB V100.
  EXPECT_EQ(max_micro_batch(rtx(), model_profile("resnet50"), true), 192);
  EXPECT_EQ(max_micro_batch(rtx(), model_profile("transformer"), true), 3072);
  EXPECT_EQ(max_micro_batch(rtx(), model_profile("bert-large"), true), 4);
  EXPECT_EQ(max_micro_batch(v100(), model_profile("resnet50"), true), 256);
}

TEST(MaxMicroBatch, BertBase64DoesNotFitV100) {
  // Table 2: "Previously, a batch size of 64 would not fit in the memory
  // of 1 V100 GPU."
  const ModelProfile& m = model_profile("bert-base");
  EXPECT_FALSE(fits(v100(), m, {64}, true));
  EXPECT_LT(max_micro_batch(v100(), m, true), 64);
  EXPECT_TRUE(fits(v100(), m, {8, 8, 8, 8, 8, 8, 8, 8}, true));  // 8 VNs of 8
}

TEST(CheckFits, ThrowsOomWithDiagnostics) {
  const ModelProfile& m = model_profile("bert-large");
  try {
    check_fits(rtx(), m, {64}, true);
    FAIL() << "expected OomError";
  } catch (const OomError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bert-large"), std::string::npos);
    EXPECT_NE(what.find("RTX2080Ti"), std::string::npos);
  }
}

TEST(PeakMemory, PrefetchDoublesInputsOnlyWithMultipleVns) {
  const ModelProfile& m = model_profile("resnet50");
  const auto one = peak_memory(m, {64}, false);
  const auto two = peak_memory(m, {64, 64}, false);
  EXPECT_DOUBLE_EQ(two.inputs, 2.0 * one.inputs);
  EXPECT_DOUBLE_EQ(two.activations, one.activations);
}

TEST(PeakMemory, InvalidBatchesThrow) {
  const ModelProfile& m = model_profile("resnet50");
  EXPECT_THROW(peak_memory(m, {0}, true), VfError);
}

TEST(PeakMemory, IdleDeviceHoldsReplicaOnly) {
  // A device hosting zero VNs (legal skewed mapping) still pays for its
  // model replica and the framework footprint, but no inputs/activations.
  const ModelProfile& m = model_profile("resnet50");
  const MemoryBreakdown idle = peak_memory(m, {}, false);
  EXPECT_DOUBLE_EQ(idle.inputs, 0.0);
  EXPECT_DOUBLE_EQ(idle.activations, 0.0);
  EXPECT_DOUBLE_EQ(idle.parameters, m.param_bytes());
  EXPECT_GT(idle.total(), 0.0);
}

TEST(MaxMicroBatch, VirtualNodesUnlockLargeGlobalBatches) {
  // The central memory story: a global batch far beyond device memory
  // works when folded into per-VN micro-batches that fit.
  const ModelProfile& m = model_profile("resnet50");
  const std::int64_t frontier = max_micro_batch(rtx(), m, true);
  std::vector<std::int64_t> vns(8192 / frontier + 1, frontier);
  EXPECT_TRUE(fits(rtx(), m, vns, true));
}

}  // namespace
}  // namespace vf
