// Cross-module integration: full training runs reach calibrated targets,
// the TF* baseline degrades, heterogeneous training preserves accuracy,
// and scheduler-driven resizes leave convergence untouched end to end.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/trainer.h"
#include "profiler/profiler.h"
#include "sched/simulator.h"
#include "sched/wfs.h"
#include "solver/solver.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

EngineConfig cfg_with_seed(std::uint64_t seed) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  return cfg;
}

TEST(EndToEnd, GlueTaskReachesPaperTargetBand) {
  // qnli-sim at reference batch 64 should land near the paper's 90.9%.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(DeviceType::kV100, 2),
                        VnMapping::even(8, 2, recipe.global_batch), cfg_with_seed(42));
  const TrainResult res = train(eng, *task.val, recipe.epochs);
  EXPECT_GT(res.final_accuracy, task.target_accuracy - 0.02);
  EXPECT_LT(res.final_accuracy, task.target_accuracy + 0.03);
}

TEST(EndToEnd, HeterogeneousSolverConfigTrainsToSameAccuracyAsHomogeneous) {
  // Solve a 1 V100 + 1 P100 split for rte-sim's batch and verify training
  // under the solver's uneven mapping matches the homogeneous result
  // (same seed, same VN count => same examples; BN sees per-VN batches,
  // so require near-equality of final accuracy).
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  // Homogeneous: 8 VNs of 8 on one V100.
  VirtualFlowEngine homog(model, *r1.optimizer, *r1.schedule, *task.train,
                          model_profile("bert-base"),
                          make_devices(DeviceType::kV100, 1),
                          VnMapping::even(8, 1, 64), cfg_with_seed(42));
  // Heterogeneous with the same 8-example VN granularity: 6 VNs on the
  // V100, 2 on the P100 — same slices, so bit-exact equality is expected.
  auto hetero_devices =
      make_heterogeneous({{DeviceType::kV100, 1}, {DeviceType::kP100, 1}});
  VirtualFlowEngine hetero(model, *r2.optimizer, *r2.schedule, *task.train,
                           model_profile("bert-base"), hetero_devices,
                           VnMapping::uneven({{8, 8, 8, 8, 8, 8}, {8, 8}}),
                           cfg_with_seed(42));
  for (int i = 0; i < 40; ++i) {
    homog.train_step();
    hetero.train_step();
  }
  EXPECT_TRUE(homog.parameters().equals(hetero.parameters()));
  EXPECT_DOUBLE_EQ(homog.evaluate(*task.val), hetero.evaluate(*task.val));
}

TEST(EndToEnd, SolverPredictionCloseToEngineSimulation) {
  // Fig 14's claim at integration level: solver-predicted step time within
  // ~10% of the engine's simulated step time for a heterogeneous config.
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kP100, profile_workload(DeviceType::kP100, m));
  HeterogeneousSolver solver(m, std::move(profiles));
  const auto sol = solver.solve({{DeviceType::kV100, 1}, {DeviceType::kP100, 1}}, 2048);
  ASSERT_TRUE(sol.has_value());

  // Build the engine mapping from the solver's assignment.
  std::vector<std::vector<std::int64_t>> per_device;
  std::vector<std::pair<DeviceType, std::int64_t>> groups;
  for (const auto& a : sol->assignment) {
    groups.push_back({a.type, a.gpus});
    for (std::int64_t g = 0; g < a.gpus; ++g)
      per_device.push_back(std::vector<std::int64_t>(
          static_cast<std::size_t>(a.vns_per_gpu), a.per_vn_batch));
  }
  ProxyTask task = make_task("imagenet-sim", 42);
  Sequential model = make_proxy_model("imagenet-sim", 42);
  TrainRecipe recipe = make_recipe_with_batch("imagenet-sim", 2048);
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train, m,
                        make_heterogeneous(groups), VnMapping::uneven(per_device),
                        cfg_with_seed(42));
  eng.train_step();  // warm (first step pays graph optimization)
  const double actual = eng.train_step().step_time_s;
  EXPECT_NEAR(sol->predicted_step_time_s, actual, 0.10 * actual);
}

TEST(EndToEnd, WfsResizeScheduleReplaysWithoutAccuracyLoss) {
  // Drive a real training run with the allocation timeline produced by
  // the WFS scheduler (Fig 10c's experiment): accuracies must match the
  // uninterrupted run exactly.
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe r1 = make_recipe("cola-sim");
  TrainRecipe r2 = make_recipe("cola-sim");

  VirtualFlowEngine steady(model, *r1.optimizer, *r1.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 4),
                           VnMapping::even(8, 4, 64), cfg_with_seed(42));
  VirtualFlowEngine elastic(model, *r2.optimizer, *r2.schedule, *task.train,
                            model_profile("bert-base"),
                            make_devices(DeviceType::kV100, 4),
                            VnMapping::even(8, 4, 64), cfg_with_seed(42));

  std::vector<ReconfigEvent> events;
  for (const auto& [step, devices] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{{20, 2}, {50, 1}, {90, 8}}) {
    ReconfigEvent ev;
    ev.at_step = step;
    ev.devices = make_devices(DeviceType::kV100, devices);
    events.push_back(ev);
  }
  const TrainResult a = train(steady, *task.val, 1);
  const TrainResult b = train(elastic, *task.val, 1, events);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(EndToEnd, SimulatedClockRewardsElasticity) {
  // A downsized-then-upsized run takes longer in simulated time than a
  // fixed large allocation but much less than running at the small
  // allocation throughout — the Fig 4 trade-off.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);

  auto run = [&](std::int64_t devices, bool dip) {
    TrainRecipe r = make_recipe("qnli-sim");
    VirtualFlowEngine eng(model, *r.optimizer, *r.schedule, *task.train,
                          model_profile("bert-base"),
                          make_devices(DeviceType::kV100, devices),
                          VnMapping::even(8, devices, 64), cfg_with_seed(42));
    for (int i = 0; i < 30; ++i) {
      if (dip && i == 10) eng.resize(make_devices(DeviceType::kV100, 1));
      if (dip && i == 20) eng.resize(make_devices(DeviceType::kV100, 8));
      eng.train_step();
    }
    return eng.sim_time_s();
  };
  const double fast = run(8, false);
  const double dipped = run(8, true);
  const double slow = run(1, false);
  EXPECT_GT(dipped, fast);
  EXPECT_LT(dipped, slow);
}

}  // namespace
}  // namespace vf
