// MetricsRegistry: instrument lifecycle, node-stable references, fixed
// histogram edges, and the sorted deterministic snapshot.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace vf::obs {
namespace {

TEST(Metrics, CounterAndGaugeGetOrCreate) {
  MetricsRegistry reg;
  Counter& c = reg.counter("serve.slices.classify");
  c.add();
  c.add(3);
  EXPECT_EQ(reg.counter("serve.slices.classify").value, 4);
  EXPECT_EQ(&reg.counter("serve.slices.classify"), &c)
      << "get-or-create must return the same node-stable instrument";

  reg.gauge("serve.devices").set(8.0, 1.25);
  EXPECT_EQ(reg.find_gauge("serve.devices")->value, 8.0);
  EXPECT_EQ(reg.find_gauge("serve.devices")->stamp_s, 1.25);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.find_gauge("absent"), nullptr);
  EXPECT_EQ(reg.find_histogram("absent"), nullptr);
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency_s", {0.1, 1.0, 10.0});
  // 4 buckets: <=0.1, <=1.0, <=10.0, overflow.
  h.observe(0.05);
  h.observe(0.1);  // boundary lands in its edge's bucket
  h.observe(0.5);
  h.observe(100.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.min(), 0.05);
  EXPECT_EQ(h.max(), 100.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 0);
  EXPECT_EQ(h.buckets()[3], 1) << "past the top edge lands in overflow";

  // Re-registration with identical edges returns the same histogram;
  // different edges are a caller bug.
  EXPECT_EQ(&reg.histogram("latency_s", {0.1, 1.0, 10.0}), &h);
  EXPECT_THROW(reg.histogram("latency_s", {0.5, 1.0}), std::runtime_error);
  EXPECT_THROW(reg.histogram("bad_edges", {1.0, 1.0}), std::runtime_error)
      << "edges must be strictly ascending";
  EXPECT_THROW(reg.histogram("no_edges", {}), std::runtime_error);
}

TEST(Metrics, SnapshotSortedAndDeterministic) {
  // Two registries fed the same instruments in DIFFERENT creation order
  // serialize byte-identically: std::map sorts by name.
  MetricsRegistry a, b;
  a.counter("z.last").add(2);
  a.counter("a.first").add(1);
  a.gauge("m.mid").set(0.1, 3.0);
  a.histogram("h", {1.0, 2.0}).observe(1.5);

  b.histogram("h", {1.0, 2.0}).observe(1.5);
  b.gauge("m.mid").set(0.1, 3.0);
  b.counter("a.first").add(1);
  b.counter("z.last").add(2);

  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string json = a.to_json();
  EXPECT_LT(json.find("a.first"), json.find("z.last")) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  // Round-trip-exact gauge value, shortest form.
  EXPECT_NE(json.find("0.1"), std::string::npos);
  EXPECT_EQ(json.find("0.10000000000000001"), std::string::npos);
}

}  // namespace
}  // namespace vf::obs
