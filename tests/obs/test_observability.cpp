// End-to-end observability contract on a serving replay: the exported
// trace and metrics snapshot are byte-identical across host worker
// counts, recording never perturbs a record, and the trace covers the
// slice kinds and scheduler markers the replay exercised.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/arrival.h"
#include "serve/server.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf::serve {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig() {
  return Rig{make_task("cifar10-sim", kSeed), make_proxy_model("cifar10-sim", kSeed),
             make_recipe("cifar10-sim")};
}

struct Outcome {
  std::vector<RequestRecord> records;
  std::string trace_json;
  std::string metrics_json;
};

/// One elastic streaming replay (prefill/decode disaggregation on, so
/// token-boundary preemptions occur) with optional recording.
Outcome run(std::int64_t workers, bool record) {
  Rig rig = make_rig();
  EngineConfig ecfg;
  ecfg.seed = kSeed;
  ecfg.enforce_memory = false;
  ecfg.num_threads = workers;
  VirtualFlowEngine engine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("llm-decode"),
                           make_devices(DeviceType::kV100, 1),
                           VnMapping::even(8, 1, rig.recipe.global_batch), ecfg);

  ServerConfig cfg;
  cfg.queue_capacity = 4096;
  cfg.batch = {/*max_batch=*/64, /*max_wait_s=*/0.005};
  cfg.deadline_s = 0.25;
  cfg.continuous = true;
  cfg.stream.disaggregate = true;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 18;
  cfg.elastic.low_watermark = 6;
  cfg.elastic.max_devices = 4;
  cfg.elastic.cooldown_batches = 1;

  Server server(engine, *rig.task.val, cfg);
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  if (record) server.set_observability({&trace, &metrics});

  StreamShape shape;
  shape.stream_fraction = 0.85;
  server.replay(streaming_trace(kSeed,
                                {{25.0, 0.5}, {90.0, 0.6}, {15.0, 0.8}},
                                rig.task.val->size(), shape));

  return {server.slo().records(), trace.to_json(), metrics.to_json()};
}

bool same_records(const std::vector<RequestRecord>& a,
                  const std::vector<RequestRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].dispatch_s != b[i].dispatch_s ||
        a[i].finish_s != b[i].finish_s || a[i].rejected != b[i].rejected ||
        a[i].first_token_s != b[i].first_token_s)
      return false;
  }
  return true;
}

bool has_event(const std::string& trace_json, const char* name) {
  return trace_json.find("{\"name\": \"" + std::string(name) + "\"") !=
         std::string::npos;
}

TEST(Observability, TraceBytesIdenticalAcrossWorkerCounts) {
  const Outcome serial = run(/*workers=*/0, /*record=*/true);
  const Outcome pooled = run(/*workers=*/2, /*record=*/true);
  EXPECT_TRUE(same_records(serial.records, pooled.records));
  EXPECT_EQ(serial.trace_json, pooled.trace_json)
      << "the exported trace is a pure function of the replay";
  EXPECT_EQ(serial.metrics_json, pooled.metrics_json);
}

TEST(Observability, RecordingNeverPerturbsTheReplay) {
  const Outcome observed = run(/*workers=*/0, /*record=*/true);
  const Outcome silent = run(/*workers=*/0, /*record=*/false);
  EXPECT_TRUE(same_records(observed.records, silent.records))
      << "attaching the recorder must not move one stamp";
  EXPECT_EQ(silent.trace_json, "{\"traceEvents\": [\n  {\"name\": "
                               "\"process_name\", \"ph\": \"M\", \"pid\": 0, "
                               "\"args\": {\"name\": \"virtualflow\"}}\n]}\n")
      << "no sink attached -> nothing recorded";
}

TEST(Observability, TraceCoversKindsAndMarkers) {
  const Outcome o = run(/*workers=*/0, /*record=*/true);
  EXPECT_TRUE(has_event(o.trace_json, "classify"));
  EXPECT_TRUE(has_event(o.trace_json, "prefill"));
  EXPECT_TRUE(has_event(o.trace_json, "decode"));
  EXPECT_TRUE(has_event(o.trace_json, "resize"));
  EXPECT_TRUE(has_event(o.trace_json, "preempt"));

  // The metrics feed agrees with the trace on what happened.
  EXPECT_NE(o.metrics_json.find("serve.slices.prefill"), std::string::npos);
  EXPECT_NE(o.metrics_json.find("serve.preemptions"), std::string::npos);
  EXPECT_NE(o.metrics_json.find("serve.slo.hit_rate"), std::string::npos);
  EXPECT_NE(o.metrics_json.find("serve.latency_s"), std::string::npos);
}

}  // namespace
}  // namespace vf::serve
