// TraceRecorder: span/instant recording, late finalization, and the
// Chrome trace-event export — per-device tracks, metadata header, and
// byte-determinism given identical event streams.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace vf::obs {
namespace {

TEST(Trace, SpanAndInstantRecording) {
  TraceRecorder rec;
  const std::int64_t s0 = rec.span("classify", 1.0, 1.5, /*device=*/0,
                                   /*vn=*/3, /*model=*/-1, /*batch=*/8,
                                   /*warm=*/true);
  rec.instant("resize", 2.0, /*device=*/-1, /*vn=*/-1, /*model=*/-1,
              /*arg0=*/1, /*arg1=*/2, /*arg_s=*/0.25);
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(s0, 0);

  const TraceEvent& span = rec.events()[0];
  EXPECT_FALSE(span.instant);
  EXPECT_EQ(span.ts_s, 1.0);
  EXPECT_EQ(span.dur_s, 0.5);
  EXPECT_EQ(span.vn, 3);
  EXPECT_TRUE(span.warm);
  EXPECT_EQ(span.queue_depth, -1) << "unfinalized until set_queue_depth";

  rec.set_queue_depth(s0, 7);
  rec.set_model(s0, 2);
  EXPECT_EQ(rec.events()[0].queue_depth, 7);
  EXPECT_EQ(rec.events()[0].model, 2);

  // kNoSpan finalizations are no-ops, so call sites need no branching.
  rec.set_queue_depth(TraceRecorder::kNoSpan, 99);
  rec.set_model(TraceRecorder::kNoSpan, 99);
  EXPECT_EQ(rec.size(), 2u);

  const TraceEvent& mark = rec.events()[1];
  EXPECT_TRUE(mark.instant);
  EXPECT_EQ(mark.arg0, 1);
  EXPECT_EQ(mark.arg1, 2);
  EXPECT_EQ(mark.arg_s, 0.25);

  EXPECT_THROW(rec.span("bad", 2.0, 1.0, 0, 0, -1, 1, false),
               std::runtime_error)
      << "a span must not end before it starts";
}

TEST(Trace, ExportShapeAndTracks) {
  TraceRecorder rec;
  rec.span("classify", 1.0, 1.5, /*device=*/1, 0, -1, 4, false);
  rec.span("prefill", 2.0, 2.5, /*device=*/0, 1, -1, 1, true);
  rec.instant("preempt", 3.0, /*device=*/0, 2, -1);
  rec.instant("reject", 4.0, /*device=*/-1, -1, -1, /*arg0=*/17);
  const std::string json = rec.to_json();

  // Metadata header: process name once, one thread_name per distinct
  // track in ascending tid order, control track (device -1) named.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  const std::size_t d0 = json.find("\"name\": \"device 0\"");
  const std::size_t d1 = json.find("\"name\": \"device 1\"");
  const std::size_t ctl = json.find("\"name\": \"control\"");
  ASSERT_NE(d0, std::string::npos);
  ASSERT_NE(d1, std::string::npos);
  ASSERT_NE(ctl, std::string::npos);
  EXPECT_LT(d0, d1);
  EXPECT_LT(d1, ctl) << "control tid sorts last";

  // Spans are "X" with ts/dur in MICROseconds of virtual time (shortest
  // round-trip form, so round values may print scientific: 1e+06);
  // instants are global "i".
  const std::size_t xpos = json.find("\"ph\": \"X\", \"pid\": 0, \"tid\": 1, \"ts\": ");
  ASSERT_NE(xpos, std::string::npos) << json;
  const std::size_t tpos = json.find("\"ts\": ", xpos);
  EXPECT_EQ(std::strtod(json.c_str() + tpos + 6, nullptr), 1e6) << json;
  const std::size_t upos = json.find("\"dur\": ", xpos);
  ASSERT_NE(upos, std::string::npos);
  EXPECT_EQ(std::strtod(json.c_str() + upos + 7, nullptr), 5e5) << json;
  EXPECT_NE(json.find("\"ph\": \"i\", \"s\": \"g\""), std::string::npos);
  EXPECT_NE(json.find("\"warm\": true"), std::string::npos);
  EXPECT_NE(json.find("\"arg0\": 17"), std::string::npos);

  // Identical event streams export identical bytes (the determinism
  // contract extends to the file).
  TraceRecorder twin;
  twin.span("classify", 1.0, 1.5, 1, 0, -1, 4, false);
  twin.span("prefill", 2.0, 2.5, 0, 1, -1, 1, true);
  twin.instant("preempt", 3.0, 0, 2, -1);
  twin.instant("reject", 4.0, -1, -1, -1, 17);
  EXPECT_EQ(twin.to_json(), json);
}

}  // namespace
}  // namespace vf::obs
