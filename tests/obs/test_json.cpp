// obs/json.h: the locale-independent round-trip-exact double writer and
// the JsonReport perf record it feeds. The regression that motivated the
// rewrite: the old %.17g writer printed 0.1 as "0.10000000000000001" and,
// under a comma-decimal locale, emitted "0,1" — which is not JSON.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "obs/json.h"

namespace vf::obs {
namespace {

double parse(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

TEST(JsonDouble, ShortestFormRoundTrips) {
  // Shortest decimal: no %.17g digit noise.
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-2.0), "-2");

  // Round-trip exactness on awkward values: parsing the printed form
  // recovers the same bits.
  const double cases[] = {1.0 / 3.0,
                          1e-300,
                          1e300,
                          123456789.123456789,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -0.0,
                          3.141592653589793};
  for (const double v : cases) {
    const std::string s = format_double(v);
    EXPECT_EQ(parse(s), v) << s;
  }
}

TEST(JsonDouble, NonFiniteSerializesAsNull) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(std::nan("")), "null");
}

TEST(JsonDouble, IgnoresCommaDecimalLocales) {
  // A comma-decimal global locale must not leak into the output (the
  // %.17g writer this replaced was locale-sensitive). Containers often
  // ship only the C locale; skip the assertion when none is available,
  // but the shortest-form checks above still cover the formatter.
  const char* old = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    old = std::setlocale(LC_ALL, name);
    if (old != nullptr) break;
  }
  if (old == nullptr) GTEST_SKIP() << "no comma-decimal locale installed";
  const std::string s = format_double(1.5);
  std::setlocale(LC_ALL, "C");
  EXPECT_EQ(s, "1.5") << "decimal point must be '.' under any locale";
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
}

TEST(JsonReport, ShapeAndRoundTripValues) {
  JsonReport report("unit_test");
  report.add("alpha.speedup", 0.1, "x");
  report.add("beta.time", 1.0 / 3.0, "s");
  ASSERT_EQ(report.size(), 2u);

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"alpha.speedup\""), std::string::npos);
  // The value is printed shortest-form, and the exact bits survive.
  EXPECT_NE(json.find("\"value\": 0.1,"), std::string::npos) << json;
  const std::size_t pos = json.find("\"name\": \"beta.time\"");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t vpos = json.find("\"value\": ", pos);
  ASSERT_NE(vpos, std::string::npos);
  EXPECT_EQ(parse(json.substr(vpos + 9)), 1.0 / 3.0);
}

}  // namespace
}  // namespace vf::obs
