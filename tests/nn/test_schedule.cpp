#include <gtest/gtest.h>

#include "nn/schedule.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(ConstantLr, AlwaysSame) {
  ConstantLr s(0.1F);
  EXPECT_FLOAT_EQ(s.lr(0), 0.1F);
  EXPECT_FLOAT_EQ(s.lr(100000), 0.1F);
  EXPECT_THROW(ConstantLr(0.0F), VfError);
}

TEST(WarmupStepDecay, LinearWarmup) {
  WarmupStepDecayLr s(1.0F, 10, {}, 0.1F);
  EXPECT_FLOAT_EQ(s.lr(0), 0.1F);   // (0+1)/10
  EXPECT_FLOAT_EQ(s.lr(4), 0.5F);
  EXPECT_FLOAT_EQ(s.lr(9), 1.0F);
  EXPECT_FLOAT_EQ(s.lr(10), 1.0F);
}

TEST(WarmupStepDecay, DecaysAtMilestones) {
  WarmupStepDecayLr s(1.0F, 0, {100, 200}, 0.1F);
  EXPECT_FLOAT_EQ(s.lr(50), 1.0F);
  EXPECT_FLOAT_EQ(s.lr(100), 0.1F);
  EXPECT_FLOAT_EQ(s.lr(150), 0.1F);
  EXPECT_NEAR(s.lr(200), 0.01F, 1e-7F);
}

TEST(WarmupStepDecay, MilestonesMustIncrease) {
  EXPECT_THROW(WarmupStepDecayLr(1.0F, 0, {200, 100}, 0.1F), VfError);
}

TEST(WarmupStepDecay, HardwareIndependence) {
  // The schedule is a pure function of the step: two instances agree at
  // every step regardless of construction order or call history.
  WarmupStepDecayLr a(2.0F, 5, {50}, 0.5F);
  WarmupStepDecayLr b(2.0F, 5, {50}, 0.5F);
  a.lr(7);
  for (std::int64_t s = 0; s < 100; s += 13) EXPECT_FLOAT_EQ(a.lr(s), b.lr(s));
}

TEST(CosineLr, EndpointsAndMidpoint) {
  CosineLr s(1.0F, 100, 0.0F);
  EXPECT_NEAR(s.lr(0), 1.0F, 1e-6F);
  EXPECT_NEAR(s.lr(50), 0.5F, 1e-6F);
  EXPECT_NEAR(s.lr(100), 0.0F, 1e-6F);
  EXPECT_NEAR(s.lr(150), 0.0F, 1e-6F);  // clamped past the end
}

TEST(CosineLr, RespectsFloor) {
  CosineLr s(1.0F, 10, 0.2F);
  EXPECT_NEAR(s.lr(10), 0.2F, 1e-6F);
  EXPECT_THROW(CosineLr(1.0F, 10, 2.0F), VfError);
  EXPECT_THROW(CosineLr(1.0F, 0), VfError);
}

TEST(Schedules, CloneBehavesIdentically) {
  WarmupStepDecayLr s(1.0F, 10, {30}, 0.1F);
  auto c = s.clone();
  for (std::int64_t i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(s.lr(i), c->lr(i));
}

}  // namespace
}  // namespace vf
