// Optimizer update rules against hand-computed steps.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/optimizer.h"
#include "util/common.h"

namespace vf {
namespace {

/// One-parameter model: a single Dense(1,1) with no bias use; we poke the
/// weight and gradient directly.
struct Rig {
  Sequential model;
  Rig() {
    CounterRng rng(1, 0);
    model.add(std::make_unique<Dense>(1, 1, rng));
    w() = 1.0F;
    b() = 0.0F;
  }
  float& w() { return model.params()[0]->at(0); }
  float& b() { return model.params()[1]->at(0); }
  void set_grads(float gw, float gb) {
    model.grads()[0]->at(0) = gw;
    model.grads()[1]->at(0) = gb;
  }
};

TEST(Sgd, PlainStep) {
  Rig r;
  Sgd opt;  // no momentum, no decay
  r.set_grads(0.5F, 0.25F);
  opt.apply(r.model, 0.1F);
  EXPECT_NEAR(r.w(), 1.0F - 0.1F * 0.5F, 1e-6F);
  EXPECT_NEAR(r.b(), -0.1F * 0.25F, 1e-6F);
}

TEST(Sgd, WeightDecayAddsToGradient) {
  Rig r;
  Sgd opt(0.0F, 0.1F);
  r.set_grads(0.0F, 0.0F);
  opt.apply(r.model, 1.0F);
  EXPECT_NEAR(r.w(), 1.0F - 0.1F * 1.0F, 1e-6F);  // pure decay on w=1
}

TEST(Sgd, MomentumAccumulates) {
  Rig r;
  Sgd opt(0.9F, 0.0F);
  r.set_grads(1.0F, 0.0F);
  opt.apply(r.model, 0.1F);  // v=1, w=1-0.1
  EXPECT_NEAR(r.w(), 0.9F, 1e-6F);
  r.set_grads(1.0F, 0.0F);
  opt.apply(r.model, 0.1F);  // v=0.9+1=1.9, w=0.9-0.19
  EXPECT_NEAR(r.w(), 0.71F, 1e-6F);
}

TEST(Sgd, SlotsExposedForMigration) {
  Rig r;
  Sgd opt(0.9F);
  r.set_grads(1.0F, 1.0F);
  opt.apply(r.model, 0.1F);
  EXPECT_EQ(opt.slots().size(), 2u);  // one velocity per param tensor
  EXPECT_GT(opt.slot_bytes(), 0);
  EXPECT_NEAR(opt.slots()[0].at(0), 1.0F, 1e-6F);
}

TEST(Sgd, NoMomentumHasNoSlots) {
  Rig r;
  Sgd opt;
  r.set_grads(1.0F, 1.0F);
  opt.apply(r.model, 0.1F);
  EXPECT_TRUE(opt.slots().empty());
  EXPECT_EQ(opt.slot_bytes(), 0);
}

TEST(Sgd, CloneCopiesState) {
  Rig r;
  Sgd opt(0.9F);
  r.set_grads(1.0F, 0.0F);
  opt.apply(r.model, 0.1F);
  auto c = opt.clone();
  // Applying the clone and the original to identical rigs gives the same
  // result (velocity carried over).
  Rig r1, r2;
  r1.w() = r2.w() = 0.5F;
  r1.set_grads(0.0F, 0.0F);
  r2.set_grads(0.0F, 0.0F);
  opt.apply(r1.model, 0.1F);
  c->apply(r2.model, 0.1F);
  EXPECT_FLOAT_EQ(r1.w(), r2.w());
}

TEST(Adam, FirstStepMovesByLr) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  Rig r;
  Adam opt;
  r.set_grads(0.5F, 0.0F);
  opt.apply(r.model, 0.01F);
  EXPECT_NEAR(r.w(), 1.0F - 0.01F, 1e-4F);
}

TEST(Adam, SlotsAreTwoPerParam) {
  Rig r;
  Adam opt;
  r.set_grads(1.0F, 1.0F);
  opt.apply(r.model, 0.01F);
  EXPECT_EQ(opt.slots().size(), 4u);  // m and v per param tensor
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w-3)^2 by feeding grad = 2(w-3).
  Rig r;
  Adam opt;
  for (int i = 0; i < 2000; ++i) {
    r.set_grads(2.0F * (r.w() - 3.0F), 0.0F);
    opt.apply(r.model, 0.05F);
  }
  EXPECT_NEAR(r.w(), 3.0F, 0.05F);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Rig r;
  Sgd opt(0.9F);
  for (int i = 0; i < 500; ++i) {
    r.set_grads(2.0F * (r.w() - 3.0F), 0.0F);
    opt.apply(r.model, 0.01F);
  }
  EXPECT_NEAR(r.w(), 3.0F, 0.02F);
}

TEST(Optimizer, InvalidHyperparametersThrow) {
  EXPECT_THROW(Sgd(1.0F), VfError);
  EXPECT_THROW(Sgd(-0.1F), VfError);
  EXPECT_THROW(Sgd(0.5F, -1.0F), VfError);
  EXPECT_THROW(Adam(1.0F), VfError);
  EXPECT_THROW(Adam(0.9F, 0.0F), VfError);
}

}  // namespace
}  // namespace vf
