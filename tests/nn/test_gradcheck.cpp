// Finite-difference gradient checks for every layer's backward pass and
// for the softmax cross-entropy loss. These are the tests that make the
// convergence experiments trustworthy: if backward() is right, training
// results are real SGD, not an artifact.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"

namespace vf {
namespace {

ExecContext train_ctx(VnState* state = nullptr) {
  ExecContext ctx;
  ctx.seed = 42;
  ctx.step = 3;
  ctx.vn_id = 1;
  ctx.training = true;
  ctx.state = state;
  return ctx;
}

/// Pseudo-loss L(x) = sum(G ⊙ layer(x)) with fixed G; compares analytic
/// dL/dx (and dL/dparams) against central differences.
void check_layer_gradients(Layer& layer, const Tensor& x0, float eps, float tol) {
  VnState state;
  ExecContext ctx = train_ctx(&state);

  CounterRng grng(7, 99);
  Tensor x = x0;
  Tensor y = layer.forward(x, ctx);
  Tensor g = Tensor::randn(y.shape(), grng);

  layer.zero_grad();
  Tensor gx = layer.backward(g);

  auto loss_at = [&](const Tensor& xin) -> double {
    // Fresh state copy so batch-norm moving averages don't drift between
    // probes (the probe uses training-mode batch statistics, which are a
    // pure function of the input).
    VnState probe_state = state;
    ExecContext pctx = train_ctx(&probe_state);
    Tensor out = layer.forward(xin, pctx);
    double l = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i)
      l += static_cast<double>(g.at(i)) * static_cast<double>(out.at(i));
    return l;
  };

  // Input gradients.
  for (std::int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp.at(i) += eps;
    xm.at(i) -= eps;
    const double num = (loss_at(xp) - loss_at(xm)) / (2.0 * eps);
    EXPECT_NEAR(gx.at(i), num, tol) << "input grad " << i;
  }

  // Parameter gradients.
  const auto params = layer.params();
  const auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    for (std::int64_t i = 0; i < params[p]->size(); ++i) {
      const float orig = params[p]->at(i);
      params[p]->at(i) = orig + eps;
      const double lp = loss_at(x);
      params[p]->at(i) = orig - eps;
      const double lm = loss_at(x);
      params[p]->at(i) = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(grads[p]->at(i), num, tol) << "param " << p << " grad " << i;
    }
  }
}

TEST(GradCheck, Dense) {
  CounterRng rng(1, 0);
  Dense layer(4, 3, rng);
  Tensor x = Tensor::randn({5, 4}, rng);
  check_layer_gradients(layer, x, 1e-2F, 2e-2F);
}

TEST(GradCheck, Relu) {
  CounterRng rng(2, 0);
  Relu layer;
  // Keep probe points away from the kink at 0.
  Tensor x = Tensor::randn({4, 6}, rng);
  for (float& v : x.data())
    if (std::fabs(v) < 0.05F) v = 0.2F;
  check_layer_gradients(layer, x, 1e-2F, 1e-2F);
}

TEST(GradCheck, Tanh) {
  CounterRng rng(3, 0);
  Tanh layer;
  Tensor x = Tensor::randn({4, 5}, rng);
  check_layer_gradients(layer, x, 1e-2F, 1e-2F);
}

TEST(GradCheck, Dropout) {
  CounterRng rng(4, 0);
  Dropout layer(0.4F);
  layer.set_layer_index(2);
  Tensor x = Tensor::randn({4, 6}, rng);
  // The mask is deterministic in (seed, layer, step, vn), so the pseudo-
  // loss is differentiable with a fixed context.
  check_layer_gradients(layer, x, 1e-2F, 1e-2F);
}

TEST(GradCheck, BatchNorm) {
  CounterRng rng(5, 0);
  BatchNorm1d layer(3);
  layer.set_layer_index(1);
  Tensor x = Tensor::randn({6, 3}, rng);
  check_layer_gradients(layer, x, 1e-2F, 3e-2F);
}

TEST(GradCheck, BatchNormWithScaleShift) {
  CounterRng rng(6, 0);
  BatchNorm1d layer(4);
  layer.set_layer_index(1);
  // Non-trivial gamma/beta to exercise those paths in backward.
  for (std::int64_t i = 0; i < 4; ++i) {
    layer.params()[0]->at(i) = 0.5F + 0.3F * static_cast<float>(i);
    layer.params()[1]->at(i) = -0.2F * static_cast<float>(i);
  }
  Tensor x = Tensor::randn({8, 4}, rng);
  check_layer_gradients(layer, x, 1e-2F, 3e-2F);
}

TEST(GradCheck, SequentialStack) {
  CounterRng rng(7, 0);
  Sequential model;
  model.add(std::make_unique<Dense>(4, 8, rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(8, 3, rng));
  Tensor x = Tensor::randn({3, 4}, rng);
  check_layer_gradients(model, x, 1e-2F, 3e-2F);
}

TEST(GradCheck, ResidualBlock) {
  CounterRng rng(8, 0);
  Sequential inner;
  inner.add(std::make_unique<Dense>(5, 5, rng));
  inner.add(std::make_unique<Tanh>());
  ResidualBlock block(std::move(inner));
  Tensor x = Tensor::randn({3, 5}, rng);
  check_layer_gradients(block, x, 1e-2F, 3e-2F);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  CounterRng rng(9, 0);
  Tensor logits = Tensor::randn({5, 4}, rng);
  std::vector<std::int64_t> labels = {0, 3, 1, 2, 2};
  const LossResult res = softmax_cross_entropy(logits, labels);

  const float eps = 1e-2F;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp.at(i) += eps;
    lm.at(i) -= eps;
    const double num = (softmax_cross_entropy(lp, labels).loss_sum -
                        softmax_cross_entropy(lm, labels).loss_sum) /
                       (2.0 * eps);
    EXPECT_NEAR(res.grad_logits.at(i), num, 1e-2) << "logit grad " << i;
  }
}

}  // namespace
}  // namespace vf
