#include <gtest/gtest.h>

#include "nn/state.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(VnState, SlotCreatesZeroInitialized) {
  VnState s;
  Tensor& t = s.slot("bn0/mean", {3});
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.at(0), 0.0F);
  EXPECT_TRUE(s.has("bn0/mean"));
}

TEST(VnState, SlotReturnsSameTensor) {
  VnState s;
  s.slot("k", {2}).at(0) = 5.0F;
  EXPECT_EQ(s.slot("k", {2}).at(0), 5.0F);
}

TEST(VnState, SlotShapeMismatchThrows) {
  VnState s;
  s.slot("k", {2});
  EXPECT_THROW(s.slot("k", {3}), VfError);
}

TEST(VnState, GetMissingThrows) {
  VnState s;
  EXPECT_THROW(s.get("nope"), VfError);
}

TEST(VnState, PutOverwrites) {
  VnState s;
  s.put("k", Tensor::full({2}, 1.0F));
  s.put("k", Tensor::full({2}, 2.0F));
  EXPECT_EQ(s.get("k").at(1), 2.0F);
}

TEST(VnState, KeysSortedDeterministically) {
  VnState s;
  s.slot("b", {1});
  s.slot("a", {1});
  s.slot("c", {1});
  EXPECT_EQ(s.keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(VnState, TotalBytesAndClear) {
  VnState s;
  s.slot("a", {10});
  s.slot("b", {6});
  EXPECT_EQ(s.total_bytes(), 64);  // 16 floats
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.total_bytes(), 0);
}

}  // namespace
}  // namespace vf
