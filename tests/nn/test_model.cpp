// Sequential container: composition, cloning, parameter flattening.
#include <gtest/gtest.h>

#include <memory>

#include "nn/model.h"
#include "util/common.h"

namespace vf {
namespace {

Sequential small_model(std::uint64_t seed = 1) {
  CounterRng rng(seed, 0);
  Sequential m;
  m.add(std::make_unique<Dense>(3, 4, rng));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Dense>(4, 2, rng));
  return m;
}

ExecContext ctx_train() {
  ExecContext c;
  c.seed = 42;
  c.training = true;
  return c;
}

TEST(Sequential, ForwardComposesLayers) {
  Sequential m = small_model();
  CounterRng rng(2, 0);
  Tensor x = Tensor::randn({5, 3}, rng);
  Tensor y = m.forward(x, ctx_train());
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{5, 2}));
}

TEST(Sequential, ParamAndGradListsPaired) {
  Sequential m = small_model();
  EXPECT_EQ(m.params().size(), 4u);  // two Dense layers x (W, b)
  EXPECT_EQ(m.grads().size(), 4u);
  EXPECT_EQ(m.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
}

TEST(Sequential, CopyIsDeep) {
  Sequential m = small_model();
  Sequential copy = m;
  m.params()[0]->fill(7.0F);
  EXPECT_NE(copy.params()[0]->at(0), 7.0F);
}

TEST(Sequential, CloneEqualsOriginalFunctionally) {
  Sequential m = small_model();
  auto c = m.clone();
  auto* cm = dynamic_cast<Sequential*>(c.get());
  ASSERT_NE(cm, nullptr);
  CounterRng rng(3, 0);
  Tensor x = Tensor::randn({2, 3}, rng);
  EXPECT_TRUE(m.forward(x, ctx_train()).equals(cm->forward(x, ctx_train())));
}

TEST(Sequential, FlattenUnflattenRoundTrips) {
  Sequential m = small_model();
  Tensor flat = m.flatten_params();
  EXPECT_EQ(flat.size(), m.param_count());
  Sequential other = small_model(99);  // different init
  EXPECT_FALSE(other.flatten_params().equals(flat));
  other.unflatten_params(flat);
  EXPECT_TRUE(other.flatten_params().equals(flat));
}

TEST(Sequential, UnflattenSizeMismatchThrows) {
  Sequential m = small_model();
  Tensor wrong({m.param_count() + 1});
  EXPECT_THROW(m.unflatten_params(wrong), VfError);
}

TEST(Sequential, LoadGradsRoundTrips) {
  Sequential m = small_model();
  Tensor g({m.param_count()});
  for (std::int64_t i = 0; i < g.size(); ++i) g.at(i) = static_cast<float>(i);
  m.load_grads(g);
  EXPECT_TRUE(m.flatten_grads().equals(g));
}

TEST(Sequential, LayerIndicesAssignedInOrder) {
  Sequential m = small_model();
  EXPECT_EQ(m.layer(0).layer_index(), 0);
  EXPECT_EQ(m.layer(1).layer_index(), 1);
  EXPECT_EQ(m.layer(2).layer_index(), 2);
}

TEST(Sequential, NestedIndicesDisjointFromTopLevel) {
  CounterRng rng(4, 0);
  Sequential inner;
  inner.add(std::make_unique<Dense>(4, 4, rng));
  inner.add(std::make_unique<BatchNorm1d>(4));
  Sequential outer;
  outer.add(std::make_unique<Dense>(4, 4, rng));
  outer.add(std::make_unique<ResidualBlock>(std::move(inner)));
  outer.add(std::make_unique<BatchNorm1d>(4));

  // The top-level BN and the nested BN must use different state keys.
  auto* top_bn = dynamic_cast<BatchNorm1d*>(&outer.layer(2));
  ASSERT_NE(top_bn, nullptr);
  // Nested BN key comes from its re-based index; just assert the top-level
  // key is plain and different from any plausibly nested value.
  EXPECT_EQ(top_bn->mean_key(), "bn2/moving_mean");
}

TEST(Sequential, AddNullThrows) {
  Sequential m;
  EXPECT_THROW(m.add(nullptr), VfError);
}

TEST(Sequential, DescribeListsLayers) {
  Sequential m = small_model();
  EXPECT_EQ(m.describe(), "dense-relu-dense");
}

TEST(ResidualBlock, AddsSkipConnection) {
  CounterRng rng(5, 0);
  Sequential inner;
  auto dense = std::make_unique<Dense>(3, 3, rng);
  dense->params()[0]->fill(0.0F);  // inner output = bias = 0
  dense->params()[1]->fill(0.0F);
  inner.add(std::move(dense));
  ResidualBlock block(std::move(inner));
  Tensor x = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor y = block.forward(x, ctx_train());
  EXPECT_TRUE(y.equals(x));  // 0 + x
}

TEST(ResidualBlock, ShapeMismatchThrows) {
  CounterRng rng(6, 0);
  Sequential inner;
  inner.add(std::make_unique<Dense>(3, 4, rng));  // changes width: invalid
  ResidualBlock block(std::move(inner));
  Tensor x({2, 3});
  EXPECT_THROW(block.forward(x, ctx_train()), VfError);
}

TEST(Sequential, EmptyModelIsIdentity) {
  Sequential m;
  Tensor x = Tensor::from_values({1, 2}, {3, 4});
  EXPECT_TRUE(m.forward(x, ctx_train()).equals(x));
  EXPECT_EQ(m.param_count(), 0);
  EXPECT_EQ(m.flatten_params().size(), 0);
}

}  // namespace
}  // namespace vf
