// Behavioural tests for individual layers (shapes, modes, determinism).
#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.h"
#include "util/common.h"

namespace vf {
namespace {

ExecContext make_ctx(bool training, std::int64_t step = 0, std::int32_t vn = 0,
                     VnState* state = nullptr) {
  ExecContext ctx;
  ctx.seed = 42;
  ctx.step = step;
  ctx.vn_id = vn;
  ctx.training = training;
  ctx.state = state;
  return ctx;
}

TEST(Dense, ForwardShapeAndBias) {
  CounterRng rng(1, 0);
  Dense d(3, 2, rng);
  // Zero the weights: output should equal the bias.
  d.params()[0]->fill(0.0F);
  d.params()[1]->at(0) = 1.5F;
  d.params()[1]->at(1) = -2.0F;
  Tensor x = Tensor::full({4, 3}, 1.0F);
  Tensor y = d.forward(x, make_ctx(true));
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{4, 2}));
  EXPECT_EQ(y.at(2, 0), 1.5F);
  EXPECT_EQ(y.at(3, 1), -2.0F);
}

TEST(Dense, ParamCount) {
  CounterRng rng(2, 0);
  Dense d(10, 7, rng);
  EXPECT_EQ(d.param_count(), 10 * 7 + 7);
}

TEST(Dense, GradAccumulatesAcrossBackwards) {
  CounterRng rng(3, 0);
  Dense d(2, 2, rng);
  Tensor x = Tensor::full({1, 2}, 1.0F);
  Tensor g = Tensor::full({1, 2}, 1.0F);
  d.forward(x, make_ctx(true));
  d.backward(g);
  const float once = d.grads()[0]->at(0);
  d.forward(x, make_ctx(true));
  d.backward(g);
  EXPECT_FLOAT_EQ(d.grads()[0]->at(0), 2.0F * once);
  d.zero_grad();
  EXPECT_EQ(d.grads()[0]->at(0), 0.0F);
}

TEST(Dense, InputShapeMismatchThrows) {
  CounterRng rng(4, 0);
  Dense d(3, 2, rng);
  Tensor x({2, 4});
  EXPECT_THROW(d.forward(x, make_ctx(true)), VfError);
}

TEST(Relu, ClampsNegatives) {
  Relu r;
  Tensor x = Tensor::from_values({1, 4}, {-1, 0, 2, -3});
  Tensor y = r.forward(x, make_ctx(true));
  EXPECT_EQ(y.at(0, 0), 0.0F);
  EXPECT_EQ(y.at(0, 2), 2.0F);
}

TEST(Relu, BackwardMasksBySign) {
  Relu r;
  Tensor x = Tensor::from_values({1, 3}, {-1, 2, 0});
  r.forward(x, make_ctx(true));
  Tensor g = Tensor::full({1, 3}, 5.0F);
  Tensor gx = r.backward(g);
  EXPECT_EQ(gx.at(0, 0), 0.0F);
  EXPECT_EQ(gx.at(0, 1), 5.0F);
  EXPECT_EQ(gx.at(0, 2), 0.0F);  // derivative at 0 defined as 0
}

TEST(Tanh, Saturates) {
  Tanh t;
  Tensor x = Tensor::from_values({1, 2}, {100.0F, -100.0F});
  Tensor y = t.forward(x, make_ctx(true));
  EXPECT_NEAR(y.at(0, 0), 1.0F, 1e-6F);
  EXPECT_NEAR(y.at(0, 1), -1.0F, 1e-6F);
}

TEST(Dropout, EvalModeIsIdentity) {
  Dropout d(0.5F);
  d.set_layer_index(1);
  Tensor x = Tensor::full({2, 4}, 3.0F);
  Tensor y = d.forward(x, make_ctx(false));
  EXPECT_TRUE(y.equals(x));
}

TEST(Dropout, ZeroRateIsIdentity) {
  Dropout d(0.0F);
  d.set_layer_index(1);
  Tensor x = Tensor::full({2, 4}, 3.0F);
  EXPECT_TRUE(d.forward(x, make_ctx(true)).equals(x));
}

TEST(Dropout, InvalidRateThrows) {
  EXPECT_THROW(Dropout(1.0F), VfError);
  EXPECT_THROW(Dropout(-0.1F), VfError);
}

TEST(Dropout, MaskDeterministicInContext) {
  Dropout a(0.5F), b(0.5F);
  a.set_layer_index(3);
  b.set_layer_index(3);
  CounterRng rng(5, 0);
  Tensor x = Tensor::randn({4, 8}, rng);
  Tensor ya = a.forward(x, make_ctx(true, 7, 2));
  Tensor yb = b.forward(x, make_ctx(true, 7, 2));
  EXPECT_TRUE(ya.equals(yb));
}

TEST(Dropout, MaskVariesWithStepVnAndLayer) {
  Dropout d(0.5F);
  d.set_layer_index(3);
  Tensor x = Tensor::full({1, 64}, 1.0F);
  Tensor base = d.forward(x, make_ctx(true, 7, 2));
  EXPECT_FALSE(d.forward(x, make_ctx(true, 8, 2)).equals(base)) << "step must vary mask";
  EXPECT_FALSE(d.forward(x, make_ctx(true, 7, 3)).equals(base)) << "vn must vary mask";
  Dropout other(0.5F);
  other.set_layer_index(4);
  EXPECT_FALSE(other.forward(x, make_ctx(true, 7, 2)).equals(base))
      << "layer index must vary mask";
}

TEST(Dropout, InvertedScalingPreservesExpectation) {
  Dropout d(0.25F);
  d.set_layer_index(1);
  Tensor x = Tensor::full({100, 100}, 1.0F);
  Tensor y = d.forward(x, make_ctx(true));
  EXPECT_NEAR(y.mean(), 1.0F, 0.02F);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  BatchNorm1d bn(2);
  bn.set_layer_index(0);
  VnState state;
  Tensor x = Tensor::from_values({4, 2}, {1, 10, 2, 20, 3, 30, 4, 40});
  Tensor y = bn.forward(x, make_ctx(true, 0, 0, &state));
  // Column means ~0, variance ~1 after normalization (gamma=1, beta=0).
  float mean0 = 0.0F, var0 = 0.0F;
  for (std::int64_t i = 0; i < 4; ++i) mean0 += y.at(i, 0);
  mean0 /= 4.0F;
  for (std::int64_t i = 0; i < 4; ++i) var0 += (y.at(i, 0) - mean0) * (y.at(i, 0) - mean0);
  var0 /= 4.0F;
  EXPECT_NEAR(mean0, 0.0F, 1e-5F);
  EXPECT_NEAR(var0, 1.0F, 1e-3F);
}

TEST(BatchNorm, UpdatesMovingStatsInVnState) {
  BatchNorm1d bn(1);
  bn.set_layer_index(5);
  VnState state;
  Tensor x = Tensor::full({4, 1}, 10.0F);
  bn.forward(x, make_ctx(true, 0, 0, &state));
  ASSERT_TRUE(state.has(bn.mean_key()));
  // momentum 0.9: mean = 0.9*0 + 0.1*10 = 1.
  EXPECT_NEAR(state.get(bn.mean_key()).at(0), 1.0F, 1e-5F);
}

TEST(BatchNorm, EvalUsesMovingStats) {
  BatchNorm1d bn(1);
  bn.set_layer_index(5);
  VnState state;
  state.put(bn.mean_key(), Tensor::full({1}, 4.0F));
  state.put(bn.var_key(), Tensor::full({1}, 1.0F));
  Tensor x = Tensor::full({2, 1}, 5.0F);
  Tensor y = bn.forward(x, make_ctx(false, 0, 0, &state));
  EXPECT_NEAR(y.at(0, 0), 1.0F, 1e-3F);  // (5-4)/sqrt(1+eps)
}

TEST(BatchNorm, EvalWithoutStateFallsBackToIdentityStats) {
  // The "reset stateful kernels" failure mode: mean 0 / var 1.
  BatchNorm1d bn(1);
  bn.set_layer_index(5);
  Tensor x = Tensor::full({2, 1}, 3.0F);
  Tensor y = bn.forward(x, make_ctx(false, 0, 0, nullptr));
  EXPECT_NEAR(y.at(0, 0), 3.0F, 1e-3F);
}

TEST(BatchNorm, DistinctLayersUseDistinctKeys) {
  BatchNorm1d a(1), b(1);
  a.set_layer_index(1);
  b.set_layer_index(2);
  EXPECT_NE(a.mean_key(), b.mean_key());
  EXPECT_NE(a.var_key(), b.var_key());
}

TEST(Layers, CloneIsDeep) {
  CounterRng rng(6, 0);
  Dense d(2, 2, rng);
  auto c = d.clone();
  d.params()[0]->fill(9.0F);
  auto* cd = dynamic_cast<Dense*>(c.get());
  ASSERT_NE(cd, nullptr);
  EXPECT_NE(cd->params()[0]->at(0), 9.0F);
}

}  // namespace
}  // namespace vf
