// LAMB optimizer and LayerNorm: behaviour + gradient checks.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/common.h"

namespace vf {
namespace {

// ------------------------------------------------------------------ LAMB

struct Rig {
  Sequential model;
  Rig() {
    CounterRng rng(1, 0);
    model.add(std::make_unique<Dense>(1, 1, rng));
    w() = 1.0F;
    b() = 0.0F;
  }
  float& w() { return model.params()[0]->at(0); }
  float& b() { return model.params()[1]->at(0); }
  void set_grads(float gw, float gb) {
    model.grads()[0]->at(0) = gw;
    model.grads()[1]->at(0) = gb;
  }
};

TEST(Lamb, TrustRatioScalesUpdateToWeightNorm) {
  // For a single scalar with |w| = 1, the first LAMB step has magnitude
  // ~lr * |w| regardless of gradient scale (the layer-wise adaptivity).
  Rig big, small;
  Lamb opt_a(0.9F, 0.999F, 1e-6F, 0.0F);
  Lamb opt_b(0.9F, 0.999F, 1e-6F, 0.0F);
  big.set_grads(100.0F, 0.0F);
  small.set_grads(0.01F, 0.0F);
  opt_a.apply(big.model, 0.1F);
  opt_b.apply(small.model, 0.1F);
  EXPECT_NEAR(big.w(), 1.0F - 0.1F, 1e-3F);
  EXPECT_NEAR(small.w(), 1.0F - 0.1F, 1e-3F);
}

TEST(Lamb, ConvergesOnQuadratic) {
  Rig r;
  Lamb opt(0.9F, 0.999F, 1e-6F, 0.0F);
  for (int i = 0; i < 3000; ++i) {
    r.set_grads(2.0F * (r.w() - 3.0F), 0.0F);
    opt.apply(r.model, 0.01F);
  }
  EXPECT_NEAR(r.w(), 3.0F, 0.1F);
}

TEST(Lamb, SlotsAndCounterRoundTrip) {
  Rig r;
  Lamb opt;
  r.set_grads(1.0F, 1.0F);
  opt.apply(r.model, 0.01F);
  opt.apply(r.model, 0.01F);
  EXPECT_EQ(opt.slots().size(), 4u);  // m and v per tensor
  EXPECT_EQ(opt.counter(), 2);
  opt.set_counter(7);
  EXPECT_EQ(opt.counter(), 7);
}

TEST(Lamb, CloneCarriesState) {
  Rig r;
  Lamb opt;
  r.set_grads(1.0F, 0.5F);
  opt.apply(r.model, 0.01F);
  auto c = opt.clone();
  EXPECT_EQ(c->counter(), 1);
  EXPECT_EQ(c->slots().size(), opt.slots().size());
}

TEST(Lamb, InvalidHyperparametersThrow) {
  EXPECT_THROW(Lamb(1.0F), VfError);
  EXPECT_THROW(Lamb(0.9F, 0.999F, 1e-6F, -1.0F), VfError);
}

// -------------------------------------------------------------- LayerNorm

ExecContext train_ctx() {
  ExecContext ctx;
  ctx.seed = 42;
  ctx.training = true;
  return ctx;
}

TEST(LayerNorm, NormalizesEachRow) {
  LayerNorm ln(4);
  Tensor x = Tensor::from_values({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Tensor y = ln.forward(x, train_ctx());
  for (std::int64_t i = 0; i < 2; ++i) {
    float mean = 0.0F, var = 0.0F;
    for (std::int64_t j = 0; j < 4; ++j) mean += y.at(i, j);
    mean /= 4.0F;
    for (std::int64_t j = 0; j < 4; ++j) var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 4.0F;
    EXPECT_NEAR(mean, 0.0F, 1e-5F);
    EXPECT_NEAR(var, 1.0F, 1e-2F);
  }
}

TEST(LayerNorm, IndependentOfBatchComposition) {
  // The property that makes LayerNorm models trivially mapping-invariant:
  // each row's output is independent of the other rows.
  LayerNorm ln(3);
  Tensor two = Tensor::from_values({2, 3}, {1, 2, 3, -5, 0, 5});
  Tensor one = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor y2 = ln.forward(two, train_ctx());
  Tensor y1 = ln.forward(one, train_ctx());
  for (std::int64_t j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(y2.at(0, j), y1.at(0, j));
}

TEST(LayerNorm, GradCheck) {
  CounterRng rng(5, 0);
  LayerNorm ln(5);
  // Non-trivial gamma/beta.
  for (std::int64_t j = 0; j < 5; ++j) {
    ln.params()[0]->at(j) = 0.7F + 0.2F * static_cast<float>(j);
    ln.params()[1]->at(j) = -0.1F * static_cast<float>(j);
  }
  Tensor x = Tensor::randn({4, 5}, rng);
  Tensor y = ln.forward(x, train_ctx());
  Tensor g = Tensor::randn(y.shape(), rng);
  ln.zero_grad();
  Tensor gx = ln.backward(g);

  auto loss_at = [&](LayerNorm& layer, const Tensor& xin) {
    Tensor out = layer.forward(xin, train_ctx());
    double l = 0.0;
    for (std::int64_t i = 0; i < out.size(); ++i)
      l += static_cast<double>(g.at(i)) * out.at(i);
    return l;
  };
  const float eps = 1e-2F;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp.at(i) += eps;
    xm.at(i) -= eps;
    EXPECT_NEAR(gx.at(i), (loss_at(ln, xp) - loss_at(ln, xm)) / (2 * eps), 2e-2)
        << "input grad " << i;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::int64_t i = 0; i < 5; ++i) {
      const float orig = ln.params()[p]->at(i);
      ln.params()[p]->at(i) = orig + eps;
      const double lp = loss_at(ln, x);
      ln.params()[p]->at(i) = orig - eps;
      const double lm = loss_at(ln, x);
      ln.params()[p]->at(i) = orig;
      EXPECT_NEAR(ln.grads()[p]->at(i), (lp - lm) / (2 * eps), 2e-2)
          << "param " << p << " grad " << i;
    }
  }
}

TEST(LayerNorm, CloneAndDims) {
  LayerNorm ln(7);
  EXPECT_EQ(ln.dim(), 7);
  auto c = ln.clone();
  EXPECT_EQ(c->name(), "layer_norm");
  EXPECT_THROW(LayerNorm(0), VfError);
}

}  // namespace
}  // namespace vf
