#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});  // all zeros -> uniform distribution
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss_sum, 2.0 * std::log(4.0), 1e-5);
  EXPECT_EQ(r.count, 2);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectHasLowLoss) {
  Tensor logits = Tensor::from_values({1, 3}, {10, 0, 0});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_LT(r.loss_sum, 1e-3);
  EXPECT_EQ(r.correct, 1);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongHasHighLoss) {
  Tensor logits = Tensor::from_values({1, 3}, {10, 0, 0});
  const LossResult r = softmax_cross_entropy(logits, {2});
  EXPECT_GT(r.loss_sum, 9.0);
  EXPECT_EQ(r.correct, 0);
}

TEST(SoftmaxCrossEntropy, GradRowsSumToZero) {
  // d(loss)/d(logits) rows are (softmax - onehot), which sums to zero.
  Tensor logits = Tensor::from_values({2, 3}, {1, 2, 3, -1, 0, 1});
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  for (std::int64_t i = 0; i < 2; ++i) {
    float s = 0.0F;
    for (std::int64_t j = 0; j < 3; ++j) s += r.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0F, 1e-5F);
  }
}

TEST(SoftmaxCrossEntropy, GradIsSumFormNotMean) {
  // Duplicating the batch must double loss_sum and keep per-row grads.
  Tensor one = Tensor::from_values({1, 3}, {1, 2, 3});
  Tensor two = Tensor::from_values({2, 3}, {1, 2, 3, 1, 2, 3});
  const auto r1 = softmax_cross_entropy(one, {0});
  const auto r2 = softmax_cross_entropy(two, {0, 0});
  EXPECT_NEAR(r2.loss_sum, 2.0 * r1.loss_sum, 1e-6);
  EXPECT_NEAR(r2.grad_logits.at(0, 0), r1.grad_logits.at(0, 0), 1e-6F);
  EXPECT_NEAR(r2.grad_logits.at(1, 0), r1.grad_logits.at(0, 0), 1e-6F);
}

TEST(SoftmaxCrossEntropy, NumericallyStableAtExtremes) {
  Tensor logits = Tensor::from_values({1, 2}, {1000.0F, -1000.0F});
  const LossResult r = softmax_cross_entropy(logits, {0});
  EXPECT_TRUE(std::isfinite(r.loss_sum));
  EXPECT_NEAR(r.loss_sum, 0.0, 1e-5);
  const LossResult r2 = softmax_cross_entropy(logits, {1});
  EXPECT_TRUE(std::isfinite(r2.loss_sum));
  EXPECT_NEAR(r2.loss_sum, 2000.0, 1.0);
}

TEST(SoftmaxCrossEntropy, BadLabelThrows) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), VfError);
  EXPECT_THROW(softmax_cross_entropy(logits, {-1}), VfError);
}

TEST(SoftmaxCrossEntropy, LabelCountMismatchThrows) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {0}), VfError);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits = Tensor::from_values({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_NEAR(accuracy(logits, {0, 1, 1}), 2.0 / 3.0, 1e-9);
}

TEST(Accuracy, EmptyThrows) {
  Tensor logits({0, 2});
  EXPECT_THROW(accuracy(logits, {}), VfError);
}

}  // namespace
}  // namespace vf
