// VnMapping invariants: every VN placed exactly once, batches conserved.
#include <gtest/gtest.h>

#include <numeric>

#include "core/mapping.h"
#include "util/common.h"

namespace vf {
namespace {

TEST(VnMapping, EvenSplitsUniformly) {
  const auto m = VnMapping::even(16, 4, 8192);
  EXPECT_EQ(m.num_devices(), 4);
  EXPECT_EQ(m.total_vns(), 16);
  EXPECT_EQ(m.global_batch(), 8192);
  for (std::int64_t d = 0; d < 4; ++d) {
    EXPECT_EQ(m.device_vns(d).size(), 4u);
    EXPECT_EQ(m.device_batch_total(d), 2048);
  }
  for (std::int32_t vn = 0; vn < 16; ++vn) EXPECT_EQ(m.vn_batch(vn), 512);
}

TEST(VnMapping, EvenHandlesNonDividingVnCount) {
  const auto m = VnMapping::even(5, 2, 500);
  EXPECT_EQ(m.device_vns(0).size(), 3u);
  EXPECT_EQ(m.device_vns(1).size(), 2u);
  EXPECT_EQ(m.global_batch(), 500);
}

TEST(VnMapping, EvenValidation) {
  EXPECT_THROW(VnMapping::even(4, 8, 64), VfError);   // more devices than VNs
  EXPECT_THROW(VnMapping::even(3, 1, 64), VfError);   // 64 % 3 != 0
  EXPECT_THROW(VnMapping::even(0, 1, 64), VfError);
}

TEST(VnMapping, UnevenAssignsVnIdsInDeviceOrder) {
  // Fig 7's heterogeneous shape: device 0 runs two VNs of 3072, device 1
  // runs four VNs of 256.
  const auto m = VnMapping::uneven({{3072, 3072}, {256, 256, 256, 256}});
  EXPECT_EQ(m.total_vns(), 6);
  EXPECT_EQ(m.global_batch(), 7168);
  EXPECT_EQ(m.device_vns(0), (std::vector<std::int32_t>{0, 1}));
  EXPECT_EQ(m.device_vns(1), (std::vector<std::int32_t>{2, 3, 4, 5}));
  EXPECT_EQ(m.vn_batch(0), 3072);
  EXPECT_EQ(m.vn_batch(5), 256);
  EXPECT_EQ(m.device_batch_total(0), 6144);
}

TEST(VnMapping, UnevenValidation) {
  EXPECT_THROW(VnMapping::uneven({}), VfError);
  EXPECT_THROW(VnMapping::uneven({{64}, {0}}), VfError);  // zero batch
  EXPECT_THROW(VnMapping::uneven({{}, {}}), VfError);     // zero VNs overall
}

TEST(VnMapping, DeviceMayHostZeroVns) {
  // A device hosting zero virtual nodes is a legal skewed mapping (it
  // idles this phase but stays in the cluster) — the shape a skewed
  // heterogeneous reconfigure or a co-location warm spare produces.
  const auto m = VnMapping::uneven({{}, {64, 64}});
  EXPECT_EQ(m.num_devices(), 2);
  EXPECT_EQ(m.total_vns(), 2);
  EXPECT_TRUE(m.device_vns(0).empty());
  EXPECT_EQ(m.device_batch_total(0), 0);
  EXPECT_EQ(m.device_of(0), 1);
  EXPECT_EQ(m.global_batch(), 128);
}

TEST(VnMapping, RedistributedPreservesVnsAndBatches) {
  // Fig 1: 16 GPUs -> 4 GPUs keeps all 16 VNs, 4 per GPU.
  const auto m16 = VnMapping::even(16, 16, 8192);
  const auto m4 = m16.redistributed(4);
  EXPECT_EQ(m4.num_devices(), 4);
  EXPECT_EQ(m4.total_vns(), 16);
  EXPECT_EQ(m4.global_batch(), 8192);
  EXPECT_EQ(m4.shares(), m16.shares());
  for (std::int64_t d = 0; d < 4; ++d) EXPECT_EQ(m4.device_vns(d).size(), 4u);
}

TEST(VnMapping, RedistributeUpAndDown) {
  const auto m = VnMapping::even(8, 2, 64);
  const auto up = m.redistributed(8);
  EXPECT_EQ(up.num_devices(), 8);
  for (std::int64_t d = 0; d < 8; ++d) EXPECT_EQ(up.device_vns(d).size(), 1u);
  EXPECT_THROW(m.redistributed(9), VfError);  // more devices than VNs
}

TEST(VnMapping, SlicesMatchShares) {
  const auto m = VnMapping::uneven({{6}, {2}});
  const auto slices = m.slices();
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].count, 6);
  EXPECT_EQ(slices[1].begin, 6);
}

TEST(VnMapping, DeviceOfFindsHost) {
  const auto m = VnMapping::even(6, 3, 60);
  EXPECT_EQ(m.device_of(0), 0);
  EXPECT_EQ(m.device_of(2), 1);
  EXPECT_EQ(m.device_of(5), 2);
  EXPECT_THROW(m.device_of(6), VfError);
}

TEST(VnMapping, DescribeMentionsGeometry) {
  const auto m = VnMapping::even(4, 2, 64);
  const std::string s = m.describe();
  EXPECT_NE(s.find("2 device"), std::string::npos);
  EXPECT_NE(s.find("4 VN"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

}  // namespace
}  // namespace vf
