// Checkpoint capture/restore and file round-tripping: the substrate behind
// the restart-based baselines, and the §7 fault-tolerance story.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

EngineConfig test_cfg() {
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  return cfg;
}

VirtualFlowEngine make_engine(const ProxyTask& task, const Sequential& model,
                              const TrainRecipe& recipe, std::int64_t devices = 2) {
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(8, devices, recipe.global_batch),
                           test_cfg());
}

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(Checkpoint, CaptureRestoreResumesExactTrajectory) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto continuous = make_engine(task, model, r1);
  auto restarted = make_engine(task, model, r2);
  for (int i = 0; i < 10; ++i) {
    continuous.train_step();
    restarted.train_step();
  }
  const Checkpoint snap = restarted.capture();
  // Diverge the restarted engine, then restore.
  for (int i = 0; i < 5; ++i) restarted.train_step();
  restarted.restore(snap);
  EXPECT_EQ(restarted.step(), 10);
  // Both now advance from step 10; trajectories must match bit-exactly
  // (optimizer slots and Adam counters restored too).
  for (int i = 0; i < 10; ++i) {
    continuous.train_step();
    restarted.train_step();
  }
  EXPECT_TRUE(continuous.parameters().equals(restarted.parameters()));
  EXPECT_DOUBLE_EQ(continuous.evaluate(*task.val), restarted.evaluate(*task.val));
}

TEST(Checkpoint, FileRoundTripIsExact) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe);
  for (int i = 0; i < 7; ++i) eng.train_step();

  const Checkpoint snap = eng.capture();
  TempPath file("vf_ckpt_roundtrip.bin");
  save_checkpoint(snap, file.path);
  const Checkpoint loaded = load_checkpoint(file.path);

  EXPECT_TRUE(loaded.parameters.equals(snap.parameters));
  EXPECT_EQ(loaded.step, snap.step);
  EXPECT_DOUBLE_EQ(loaded.sim_time_s, snap.sim_time_s);
  EXPECT_EQ(loaded.optimizer_counter, snap.optimizer_counter);
  ASSERT_EQ(loaded.optimizer_slots.size(), snap.optimizer_slots.size());
  for (std::size_t i = 0; i < snap.optimizer_slots.size(); ++i)
    EXPECT_TRUE(loaded.optimizer_slots[i].equals(snap.optimizer_slots[i]));
  ASSERT_EQ(loaded.vn_states.size(), snap.vn_states.size());
  for (std::size_t i = 0; i < snap.vn_states.size(); ++i) {
    EXPECT_EQ(loaded.vn_states[i].keys(), snap.vn_states[i].keys());
    for (const auto& key : snap.vn_states[i].keys())
      EXPECT_TRUE(loaded.vn_states[i].get(key).equals(snap.vn_states[i].get(key)));
  }
}

TEST(Checkpoint, RestoreAcrossProcessBoundaryEquivalent) {
  // Simulate a restart: build a FRESH engine, load the file, continue.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  TempPath file("vf_ckpt_restart.bin");
  auto first = make_engine(task, model, r1);
  for (int i = 0; i < 8; ++i) first.train_step();
  save_checkpoint(first.capture(), file.path);
  for (int i = 0; i < 6; ++i) first.train_step();

  auto second = make_engine(task, model, r2);  // fresh init
  second.restore(load_checkpoint(file.path));
  for (int i = 0; i < 6; ++i) second.train_step();
  EXPECT_TRUE(first.parameters().equals(second.parameters()));
}

/// Field-by-field equality of two snapshots (parameters, optimizer slots
/// and counter, VN states, progress counters).
void expect_checkpoints_equal(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_TRUE(a.parameters.equals(b.parameters));
  EXPECT_EQ(a.step, b.step);
  EXPECT_DOUBLE_EQ(a.sim_time_s, b.sim_time_s);
  EXPECT_EQ(a.optimizer_counter, b.optimizer_counter);
  ASSERT_EQ(a.optimizer_slots.size(), b.optimizer_slots.size());
  for (std::size_t i = 0; i < a.optimizer_slots.size(); ++i)
    EXPECT_TRUE(a.optimizer_slots[i].equals(b.optimizer_slots[i]));
  ASSERT_EQ(a.vn_states.size(), b.vn_states.size());
  for (std::size_t i = 0; i < a.vn_states.size(); ++i) {
    ASSERT_EQ(a.vn_states[i].keys(), b.vn_states[i].keys());
    for (const auto& key : a.vn_states[i].keys())
      EXPECT_TRUE(a.vn_states[i].get(key).equals(b.vn_states[i].get(key)));
  }
}

TEST(Checkpoint, SaveLoadRestoreReproducesCaptureExactly) {
  // The full file cycle: capture -> save -> load -> restore into a fresh
  // engine -> capture again. The second capture must equal the first in
  // every field — the restored engine IS the snapshotted one.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto source = make_engine(task, model, r1);
  for (int i = 0; i < 9; ++i) source.train_step();
  const Checkpoint original = source.capture();

  TempPath file("vf_ckpt_capture_cycle.bin");
  save_checkpoint(original, file.path);

  auto fresh = make_engine(task, model, r2);
  fresh.restore(load_checkpoint(file.path));
  expect_checkpoints_equal(fresh.capture(), original);
}

TEST(Checkpoint, LoadErrors) {
  EXPECT_THROW(load_checkpoint("/nonexistent/path/ckpt.bin"), VfError);
  TempPath file("vf_ckpt_garbage.bin");
  {
    std::ofstream os(file.path, std::ios::binary);
    os << "not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(file.path), VfError);
}

TEST(Checkpoint, TruncatedFileThrowsAtEveryPrefixLength) {
  // A valid checkpoint cut off at any point — mid-magic, mid-header,
  // mid-tensor — must throw VfError rather than return partial state.
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe);
  for (int i = 0; i < 3; ++i) eng.train_step();

  TempPath full("vf_ckpt_full.bin");
  save_checkpoint(eng.capture(), full.path);
  std::string bytes;
  {
    std::ifstream is(full.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64U);

  // Sample prefix lengths across the whole file, including 0 and size-1.
  std::vector<std::size_t> cuts = {0, 1, 4, 7, 8, 12, bytes.size() / 2,
                                   bytes.size() - 1};
  for (const std::size_t cut : cuts) {
    TempPath trunc("vf_ckpt_truncated.bin");
    {
      std::ofstream os(trunc.path, std::ios::binary | std::ios::trunc);
      os.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    EXPECT_THROW(load_checkpoint(trunc.path), VfError)
        << "prefix of " << cut << " bytes did not throw";
  }
}

TEST(Checkpoint, SaveIsAtomicAgainstInterruptedWrites) {
  // A save interrupted mid-write must never leave the destination partial:
  // the writer goes through "<path>.tmp" + rename, so an intact previous
  // checkpoint survives anything that dies before the rename.
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe);
  for (int i = 0; i < 4; ++i) eng.train_step();
  const Checkpoint good = eng.capture();

  TempPath file("vf_ckpt_atomic.bin");
  const std::string tmp = file.path + ".tmp";
  save_checkpoint(good, file.path);
  {
    std::ifstream probe(tmp, std::ios::binary);
    EXPECT_FALSE(probe.is_open()) << "a completed save must not leave a .tmp";
  }

  // Simulate a crash mid-save: a truncated/garbage temp file beside the
  // good checkpoint. The destination must stay loadable and bit-intact.
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os << "interrupted mid-write";
  }
  expect_checkpoints_equal(load_checkpoint(file.path), good);

  // The next save replaces both the stale temp and the destination.
  for (int i = 0; i < 3; ++i) eng.train_step();
  const Checkpoint newer = eng.capture();
  save_checkpoint(newer, file.path);
  expect_checkpoints_equal(load_checkpoint(file.path), newer);
  {
    std::ifstream probe(tmp, std::ios::binary);
    EXPECT_FALSE(probe.is_open());
  }
  std::remove(tmp.c_str());
}

TEST(Checkpoint, SaveToUnwritablePathLeavesNoArtifacts) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe);
  EXPECT_THROW(save_checkpoint(eng.capture(), "/nonexistent/dir/ckpt.bin"),
               VfError);
}

TEST(Checkpoint, CorruptedMagicRejected) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe recipe = make_recipe("cola-sim");
  auto eng = make_engine(task, model, recipe);

  TempPath file("vf_ckpt_badmagic.bin");
  save_checkpoint(eng.capture(), file.path);
  // Flip a bit inside the magic number.
  std::fstream io(file.path, std::ios::binary | std::ios::in | std::ios::out);
  char byte = 0;
  io.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  io.seekp(0);
  io.write(&byte, 1);
  io.close();
  EXPECT_THROW(load_checkpoint(file.path), VfError);
}

TEST(Checkpoint, RestoreRejectsVnCountMismatch) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, r1);
  Checkpoint snap = eng.capture();
  snap.vn_states.pop_back();
  EXPECT_THROW(eng.restore(snap), VfError);
}

TEST(FaultTolerance, DeviceFailureContinuesBitExactly) {
  // §7: when a worker dies, its virtual nodes migrate to survivors and
  // training continues as if nothing happened (vs. checkpoint-restart).
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto healthy = make_engine(task, model, r1, 4);
  auto faulty = make_engine(task, model, r2, 4);
  for (int i = 0; i < 6; ++i) {
    healthy.train_step();
    faulty.train_step();
  }
  faulty.fail_device(2);  // device 2 dies
  EXPECT_EQ(faulty.mapping().num_devices(), 3);
  EXPECT_EQ(faulty.mapping().total_vns(), 8);
  for (int i = 0; i < 6; ++i) {
    healthy.train_step();
    faulty.train_step();
  }
  // Replacement arrives: scale back up.
  faulty.resize(make_devices(DeviceType::kV100, 4));
  for (int i = 0; i < 6; ++i) {
    healthy.train_step();
    faulty.train_step();
  }
  EXPECT_TRUE(healthy.parameters().equals(faulty.parameters()));
}

TEST(FaultTolerance, CannotLoseLastDevice) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 1);
  EXPECT_THROW(eng.fail_device(0), VfError);
  auto eng2 = make_engine(task, model, recipe, 2);
  EXPECT_THROW(eng2.fail_device(5), VfError);  // bad index
}

TEST(FaultTolerance, RepeatedFailuresDownToOneDevice) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 4);
  eng.train_step();
  eng.fail_device(0);
  eng.train_step();
  eng.fail_device(0);
  eng.train_step();
  eng.fail_device(1);
  EXPECT_EQ(eng.mapping().num_devices(), 1);
  const StepStats s = eng.train_step();
  EXPECT_GT(s.throughput, 0.0);
}

}  // namespace
}  // namespace vf
