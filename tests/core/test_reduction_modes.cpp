// Ablation of the strict VN-ordered reduction (DESIGN.md §4): both modes
// compute the same expectation, but only the strict order is bit-exact
// across mappings.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

Tensor run(std::int64_t devices, ReductionMode mode, std::int64_t steps = 15) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.reduction = mode;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"),
                        make_devices(DeviceType::kV100, devices),
                        VnMapping::even(8, devices, recipe.global_batch), cfg);
  for (std::int64_t i = 0; i < steps; ++i) eng.train_step();
  return eng.parameters();
}

TEST(ReductionModes, HierarchicalMatchesStrictOnSingleDevice) {
  // One device hosting all VNs: both modes fold the same buffers in the
  // same order, so they agree exactly.
  EXPECT_TRUE(run(1, ReductionMode::kStrictVnOrder)
                  .equals(run(1, ReductionMode::kHierarchical)));
}

TEST(ReductionModes, StrictIsBitExactAcrossMappings) {
  const Tensor ref = run(1, ReductionMode::kStrictVnOrder);
  EXPECT_TRUE(ref.equals(run(2, ReductionMode::kStrictVnOrder)));
  EXPECT_TRUE(ref.equals(run(8, ReductionMode::kStrictVnOrder)));
}

TEST(ReductionModes, HierarchicalStaysNumericallyClose) {
  // Hierarchical reduction is the same mathematical mean; across mappings
  // it may drift by float non-associativity but must stay tiny over a few
  // steps (this bounds the error the strict order eliminates).
  const Tensor a = run(1, ReductionMode::kHierarchical);
  const Tensor b = run(8, ReductionMode::kHierarchical);
  EXPECT_LT(a.max_abs_diff(b), 5e-3F);
}

TEST(ReductionModes, BothModesLearn) {
  // Sanity: the ablation mode is a real training path, not a stub.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.reduction = ReductionMode::kHierarchical;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(DeviceType::kV100, 4),
                        VnMapping::even(8, 4, recipe.global_batch), cfg);
  const double before = eng.evaluate(*task.val, 1024);
  for (int i = 0; i < 100; ++i) eng.train_step();
  EXPECT_GT(eng.evaluate(*task.val, 1024), before + 0.2);
}

}  // namespace
}  // namespace vf
