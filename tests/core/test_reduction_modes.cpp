// Ablation of the strict VN-ordered reduction (DESIGN.md §4): both modes
// compute the same expectation, but only the strict order is bit-exact
// across mappings.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

Tensor run(std::int64_t devices, ReductionMode mode, std::int64_t steps = 15) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.reduction = mode;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"),
                        make_devices(DeviceType::kV100, devices),
                        VnMapping::even(8, devices, recipe.global_batch), cfg);
  for (std::int64_t i = 0; i < steps; ++i) eng.train_step();
  return eng.parameters();
}

TEST(ReductionModes, HierarchicalMatchesStrictOnSingleDevice) {
  // One device hosting all VNs: both modes fold the same buffers in the
  // same order, so they agree exactly.
  EXPECT_TRUE(run(1, ReductionMode::kStrictVnOrder)
                  .equals(run(1, ReductionMode::kHierarchical)));
}

TEST(ReductionModes, StrictIsBitExactAcrossMappings) {
  const Tensor ref = run(1, ReductionMode::kStrictVnOrder);
  EXPECT_TRUE(ref.equals(run(2, ReductionMode::kStrictVnOrder)));
  EXPECT_TRUE(ref.equals(run(8, ReductionMode::kStrictVnOrder)));
}

TEST(ReductionModes, HierarchicalStaysNumericallyClose) {
  // Hierarchical reduction is the same mathematical mean; across mappings
  // it may drift by float non-associativity but must stay tiny over a few
  // steps (this bounds the error the strict order eliminates).
  const Tensor a = run(1, ReductionMode::kHierarchical);
  const Tensor b = run(8, ReductionMode::kHierarchical);
  EXPECT_LT(a.max_abs_diff(b), 5e-3F);
}

// ---- Regressions: devices hosting zero virtual nodes (legal skewed
// mappings) must contribute NOTHING to the hierarchical reduction. Before
// the fix, an empty device's entry in the per-device partial-sum scratch
// was folded in anyway: default-constructed on a fresh engine (shape
// mismatch), or — worse — stale from the previous mapping after a skewed
// reconfigure (silently wrong gradients).

/// Engine on an explicit mapping; all VNs share the reference batch size.
/// `task` must outlive the engine (the batcher references its dataset).
VirtualFlowEngine make_mapped(const ProxyTask& task, ReductionMode mode,
                              const std::vector<std::vector<std::int64_t>>& per_device,
                              std::int64_t devices) {
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.reduction = mode;
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::uneven(per_device), cfg);
}

TEST(ReductionModes, HierarchicalSkipsZeroVnDevice) {
  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  const std::int64_t b = recipe.global_batch / 8;
  const std::vector<std::int64_t> all(8, b);

  // Device 0 hosts zero VNs; device 1 folds all 8 VNs in ascending VN-id
  // order — exactly the strict reduction's chain, so the two runs must be
  // bit-identical. Pre-fix this threw (the empty device's never-written
  // partial sum was folded into the gradient).
  VirtualFlowEngine skewed =
      make_mapped(task, ReductionMode::kHierarchical, {{}, all}, 2);
  VirtualFlowEngine ref = make_mapped(task, ReductionMode::kStrictVnOrder, {all}, 1);
  for (int i = 0; i < 10; ++i) {
    skewed.train_step();
    ref.train_step();
  }
  EXPECT_TRUE(skewed.parameters().equals(ref.parameters()));
}

TEST(ReductionModes, HierarchicalIgnoresStaleBufferAfterSkewedReconfigure) {
  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  const std::int64_t b = recipe.global_batch / 8;
  const std::vector<std::int64_t> all(8, b);

  // Phase 1 (even 2-device mapping) populates BOTH devices' partial-sum
  // buffers. The skewed reconfigure then empties device 0 — whose buffer
  // still holds phase-1 gradients. Pre-fix those stale sums kept flowing
  // into every post-reconfigure step (silently wrong math); post-fix the
  // empty device is skipped and the run matches a reference that folded
  // all VNs on one device from the start.
  VirtualFlowEngine skewed =
      make_mapped(task, ReductionMode::kHierarchical, {{b, b, b, b}, {b, b, b, b}}, 2);
  VirtualFlowEngine ref =
      make_mapped(task, ReductionMode::kHierarchical, {{b, b, b, b}, {b, b, b, b}}, 2);
  for (int i = 0; i < 3; ++i) {
    skewed.train_step();
    ref.train_step();
  }
  skewed.reconfigure(make_devices(DeviceType::kV100, 2), VnMapping::uneven({{}, all}));
  ref.reconfigure(make_devices(DeviceType::kV100, 2), VnMapping::uneven({all, {}}));
  for (int i = 0; i < 10; ++i) {
    skewed.train_step();
    ref.train_step();
  }
  // Both runs now fold all 8 VNs in one ascending chain (on device 1 and
  // device 0 respectively); placement of the chain cannot matter.
  EXPECT_TRUE(skewed.parameters().equals(ref.parameters()));
}

TEST(ReductionModes, StrictHandlesZeroVnDevice) {
  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  const std::int64_t b = recipe.global_batch / 8;
  const std::vector<std::int64_t> all(8, b);
  VirtualFlowEngine skewed =
      make_mapped(task, ReductionMode::kStrictVnOrder, {{}, all}, 2);
  VirtualFlowEngine ref = make_mapped(task, ReductionMode::kStrictVnOrder, {all}, 1);
  for (int i = 0; i < 5; ++i) {
    skewed.train_step();
    ref.train_step();
  }
  EXPECT_TRUE(skewed.parameters().equals(ref.parameters()))
      << "strict VN-order reduction is mapping-invariant, idle devices included";
}

TEST(ReductionModes, BothModesLearn) {
  // Sanity: the ablation mode is a real training path, not a stub.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.reduction = ReductionMode::kHierarchical;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(DeviceType::kV100, 4),
                        VnMapping::even(8, 4, recipe.global_batch), cfg);
  const double before = eng.evaluate(*task.val, 1024);
  for (int i = 0; i < 100; ++i) eng.train_step();
  EXPECT_GT(eng.evaluate(*task.val, 1024), before + 0.2);
}

}  // namespace
}  // namespace vf
