// Model parallelism with virtual nodes (§7, Fig 19).
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

const DeviceSpec& v100() { return device_spec(DeviceType::kV100); }

TEST(StageProfile, SplitsCostEvenly) {
  const ModelProfile& m = model_profile("resnet50");
  const ModelProfile s = stage_profile(m, 4);
  EXPECT_EQ(s.param_count, m.param_count / 4);
  EXPECT_DOUBLE_EQ(s.flops_per_example, m.flops_per_example / 4.0);
  EXPECT_DOUBLE_EQ(s.activation_bytes_per_example, m.activation_bytes_per_example / 4.0);
}

TEST(PipelineCost, Fig19DeviceRequirementHalves) {
  // Fig 19: 4 stages x 2 replicas = 8 GPUs today; folding the 2 replicas
  // into virtual nodes needs only 4 GPUs at ~1.25x the step time (the
  // steady portion doubles; pipeline fill/drain is shared).
  const ModelProfile& m = model_profile("resnet50");
  PipelineConfig today;
  today.stages = 4;
  today.replicas_per_stage = 2;
  today.vns_per_replica = 1;
  today.global_batch = 256;

  PipelineConfig folded = today;
  folded.vns_per_replica = 2;

  const auto a = pipeline_cost(v100(), m, today);
  const auto b = pipeline_cost(v100(), m, folded);
  EXPECT_EQ(a.devices_required, 8);
  EXPECT_EQ(b.devices_required, 4);
  EXPECT_GT(b.step_time_s, 1.15 * a.step_time_s);
  EXPECT_LT(b.step_time_s, 2.0 * a.step_time_s);
}

TEST(PipelineCost, DeepFoldApproachesLinearTimeTradeoff) {
  // With an 8-way fold the steady passes dominate fill/drain: 32 GPUs ->
  // 4 GPUs for ~(8+3)/(1+3) = 2.75x the step time.
  const ModelProfile& m = model_profile("resnet50");
  PipelineConfig today;
  today.stages = 4;
  today.replicas_per_stage = 8;
  today.vns_per_replica = 1;
  today.global_batch = 512;
  PipelineConfig folded = today;
  folded.vns_per_replica = 8;
  const auto a = pipeline_cost(v100(), m, today);
  const auto b = pipeline_cost(v100(), m, folded);
  EXPECT_EQ(a.devices_required, 32);
  EXPECT_EQ(b.devices_required, 4);
  EXPECT_GT(b.step_time_s, 2.0 * a.step_time_s);
  EXPECT_LT(b.step_time_s, 3.5 * a.step_time_s);
}

TEST(PipelineCost, ThroughputConsistentWithStepTime) {
  const ModelProfile& m = model_profile("resnet50");
  PipelineConfig c;
  c.stages = 2;
  c.replicas_per_stage = 4;
  c.vns_per_replica = 2;
  c.global_batch = 512;
  const auto r = pipeline_cost(v100(), m, c);
  EXPECT_NEAR(r.throughput, 512.0 / r.step_time_s, 1e-6);
  EXPECT_EQ(r.devices_required, 2 * 2);
}

TEST(PipelineCost, PerStageMemoryShrinksWithStages) {
  const ModelProfile& m = model_profile("bert-large");
  PipelineConfig one;
  one.stages = 1;
  one.replicas_per_stage = 1;
  one.vns_per_replica = 1;
  one.global_batch = 4;
  PipelineConfig four = one;
  four.stages = 4;
  const auto a = pipeline_cost(v100(), m, one);
  const auto b = pipeline_cost(v100(), m, four);
  EXPECT_LT(b.peak_stage_mem_bytes, a.peak_stage_mem_bytes);
}

TEST(PipelineCost, MoreStagesAddFillDrainCost) {
  const ModelProfile& m = model_profile("resnet50");
  PipelineConfig two;
  two.stages = 2;
  two.replicas_per_stage = 2;
  two.vns_per_replica = 1;
  two.global_batch = 256;
  PipelineConfig eight = two;
  eight.stages = 8;
  const auto a = pipeline_cost(v100(), m, two);
  const auto b = pipeline_cost(v100(), m, eight);
  // Per-stage work shrinks 4x but fill/drain passes grow; at this scale
  // the 8-stage pipe is not 4x faster.
  EXPECT_GT(b.step_time_s, a.step_time_s / 4.0);
}

TEST(PipelineCost, Validation) {
  const ModelProfile& m = model_profile("resnet50");
  PipelineConfig c;
  c.stages = 2;
  c.replicas_per_stage = 3;
  c.vns_per_replica = 2;  // does not divide 3
  c.global_batch = 60;
  EXPECT_THROW(pipeline_cost(v100(), m, c), VfError);
  c.vns_per_replica = 3;
  c.global_batch = 61;  // not divisible by replicas
  EXPECT_THROW(pipeline_cost(v100(), m, c), VfError);
  EXPECT_THROW(stage_profile(m, 0), VfError);
}

}  // namespace
}  // namespace vf
