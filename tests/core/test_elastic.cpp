// Resource elasticity (§4.1): seamless resizes preserve semantics
// bit-exactly, state migration carries batch-norm statistics, and the
// naive bootstrap (no migration) measurably hurts — the paper's warning.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/trainer.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

EngineConfig test_cfg() {
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  return cfg;
}

VirtualFlowEngine make_engine(const ProxyTask& task, const Sequential& model,
                              const TrainRecipe& recipe, std::int64_t devices) {
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(8, devices, recipe.global_batch),
                           test_cfg());
}

TEST(Elastic, DownsizeAndUpsizeMatchUninterruptedRunBitExactly) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto steady = make_engine(task, model, r1, 4);
  auto elastic = make_engine(task, model, r2, 4);

  for (int i = 0; i < 5; ++i) {
    steady.train_step();
    elastic.train_step();
  }
  // Downsize 4 -> 1 (Fig 1), run, then upsize 1 -> 8.
  elastic.resize(make_devices(DeviceType::kV100, 1));
  for (int i = 0; i < 5; ++i) {
    steady.train_step();
    elastic.train_step();
  }
  elastic.resize(make_devices(DeviceType::kV100, 8));
  for (int i = 0; i < 5; ++i) {
    steady.train_step();
    elastic.train_step();
  }
  EXPECT_TRUE(steady.parameters().equals(elastic.parameters()))
      << "max diff " << steady.parameters().max_abs_diff(elastic.parameters());
  EXPECT_DOUBLE_EQ(steady.evaluate(*task.val), elastic.evaluate(*task.val));
}

TEST(Elastic, ResizePreservesVnCountAndBatch) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 4);
  eng.resize(make_devices(DeviceType::kV100, 2));
  EXPECT_EQ(eng.mapping().total_vns(), 8);
  EXPECT_EQ(eng.mapping().global_batch(), 64);
  EXPECT_EQ(eng.mapping().num_devices(), 2);
  EXPECT_EQ(eng.num_replicas(), 2);
}

TEST(Elastic, SeamlessResizeCostsUnderASecond) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 4);
  eng.train_step();
  const double before = eng.sim_time_s();
  eng.resize(make_devices(DeviceType::kV100, 8));
  const double cost = eng.sim_time_s() - before;
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1.0);  // §4.1: "typically takes less than a second"
}

TEST(Elastic, RestartResizeCostsMuchMore) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 4);
  eng.train_step();
  const double before = eng.sim_time_s();
  ResizeOptions opts;
  opts.seamless = false;  // checkpoint-restart baseline [38]
  eng.resize(make_devices(DeviceType::kV100, 8), opts);
  EXPECT_GT(eng.sim_time_s() - before, 10.0);
}

TEST(Elastic, ResizeToDifferentDeviceTypeKeepsTrajectory) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");
  auto steady = make_engine(task, model, r1, 2);
  auto moved = make_engine(task, model, r2, 2);
  for (int i = 0; i < 4; ++i) {
    steady.train_step();
    moved.train_step();
  }
  moved.resize(make_devices(DeviceType::kK80, 4));  // V100 -> K80 migration
  for (int i = 0; i < 4; ++i) {
    steady.train_step();
    moved.train_step();
  }
  EXPECT_TRUE(steady.parameters().equals(moved.parameters()));
}

TEST(Elastic, StateMigrationCarriesBatchNormStatistics) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 2);
  for (int i = 0; i < 30; ++i) eng.train_step();
  const double acc_before = eng.evaluate(*task.val);
  eng.resize(make_devices(DeviceType::kV100, 8));
  // With migration, eval right after the resize is unchanged: same params,
  // same BN moving statistics.
  EXPECT_DOUBLE_EQ(eng.evaluate(*task.val), acc_before);
  for (std::int32_t vn = 0; vn < 8; ++vn)
    EXPECT_FALSE(eng.vn_state(vn).empty()) << "VN " << vn << " lost its state";
}

TEST(Elastic, DroppingStatefulKernelsHurtsEvaluation) {
  // §4.1: "Bootstrapping new workers without also migrating these stateful
  // kernels would effectively reset their internal state, potentially
  // hurting convergence."
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 2);
  for (int i = 0; i < 60; ++i) eng.train_step();
  const double with_state = eng.evaluate(*task.val);

  ResizeOptions naive;
  naive.migrate_state = false;
  eng.resize(make_devices(DeviceType::kV100, 8), naive);
  const double without_state = eng.evaluate(*task.val);
  EXPECT_LT(without_state, with_state - 0.01)
      << "resetting BN statistics should visibly hurt accuracy";
  for (std::int32_t vn = 0; vn < 8; ++vn) EXPECT_TRUE(eng.vn_state(vn).empty());
}

TEST(Elastic, ReconfigureRejectsBatchChange) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  auto eng = make_engine(task, model, recipe, 2);
  EXPECT_THROW(eng.reconfigure(make_devices(DeviceType::kV100, 2),
                               VnMapping::even(8, 2, 128)),
               VfError);
}

TEST(Elastic, TrainerRunsScheduledResizes) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto steady = make_engine(task, model, r1, 4);
  auto elastic = make_engine(task, model, r2, 4);

  std::vector<ReconfigEvent> events;
  ReconfigEvent down;
  down.at_step = 3;
  down.devices = make_devices(DeviceType::kV100, 1);
  events.push_back(down);
  ReconfigEvent up;
  up.at_step = 7;
  up.devices = make_devices(DeviceType::kV100, 8);
  events.push_back(up);

  const TrainResult a = train(steady, *task.val, 1);
  const TrainResult b = train(elastic, *task.val, 1, events);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(elastic.mapping().num_devices(), 8);
}

}  // namespace
}  // namespace vf
