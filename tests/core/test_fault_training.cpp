// Injector-driven training faults: VN remap on kill keeps the trajectory
// bit-exact (across worker counts AND against a from-scratch run on the
// surviving device set), stragglers and comm retries are timing-only.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "fault/fault.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

EngineConfig test_cfg(std::int64_t num_threads = 0) {
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.num_threads = num_threads;
  return cfg;
}

VirtualFlowEngine make_engine(const ProxyTask& task, const Sequential& model,
                              const TrainRecipe& recipe, std::int64_t devices,
                              std::int64_t num_threads = 0) {
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(8, devices, recipe.global_batch),
                           test_cfg(num_threads));
}

/// Drives `steps` training steps against an injector-scheduled fault plan:
/// the virtual clock is the engine's sim time, polled before every step —
/// exactly how a training driver would consume vf::fault.
void train_with_faults(VirtualFlowEngine& eng, fault::FaultInjector& inj,
                       int steps) {
  for (int i = 0; i < steps; ++i) {
    for (const fault::FaultEvent& ev : inj.due(eng.sim_time_s())) {
      switch (ev.kind) {
        case fault::FaultKind::kKill: {
          const auto ndev = static_cast<std::int64_t>(eng.devices().size());
          if (ndev <= 1) {
            inj.kill_skipped();
            break;
          }
          eng.fail_device(ev.device % ndev);
          inj.apply_slowdowns(eng);
          break;
        }
        case fault::FaultKind::kStragglerStart:
        case fault::FaultKind::kStragglerEnd:
          inj.apply_slowdowns(eng);
          break;
        case fault::FaultKind::kCommFault:
          if (inj.take_comm_fault()) eng.inject_comm_retry();
          break;
        case fault::FaultKind::kRecover:
          break;
      }
    }
    eng.train_step();
  }
}

TEST(FaultTraining, InjectedKillIsBitExactAcrossWorkerCounts) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);

  // The same chaos seed replays the same plan for every engine; the kill
  // lands mid-run, remaps VNs onto survivors, and the trajectory must not
  // depend on host threading one bit.
  std::vector<Tensor> params;
  std::vector<double> sim_times;
  for (const std::int64_t workers : {0, 2, 8}) {
    TrainRecipe recipe = make_recipe("qnli-sim");
    auto eng = make_engine(task, model, recipe, 4, workers);
    fault::ChaosConfig cfg;
    cfg.kills = 1;
    cfg.stragglers = 1;
    cfg.comm_faults = 1;
    cfg.max_device = 3;
    fault::FaultInjector inj(fault::FaultPlan::chaos(7, cfg));
    train_with_faults(eng, inj, 12);
    params.push_back(eng.parameters());
    sim_times.push_back(eng.sim_time_s());
  }
  EXPECT_TRUE(params[0].equals(params[1]));
  EXPECT_TRUE(params[0].equals(params[2]));
  EXPECT_DOUBLE_EQ(sim_times[0], sim_times[1]);
  EXPECT_DOUBLE_EQ(sim_times[0], sim_times[2]);
}

TEST(FaultTraining, PostKillTrajectoryMatchesSurvivingSetFromScratch) {
  // The §7 invariant, driven through the injector: after a kill, the
  // faulted engine's parameter trajectory is identical to an engine that
  // ran on the surviving device count from the start — the VN remap is
  // invisible to the math.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  auto faulted = make_engine(task, model, r1, 4);
  auto survivors = make_engine(task, model, r2, 3);

  fault::FaultPlan plan;
  plan.kill(faulted.sim_time_s(), 2);  // dies before the first step
  fault::FaultInjector inj(std::move(plan));
  train_with_faults(faulted, inj, 10);
  for (int i = 0; i < 10; ++i) survivors.train_step();

  EXPECT_EQ(faulted.mapping().num_devices(), 3);
  EXPECT_TRUE(faulted.parameters().equals(survivors.parameters()));
}

TEST(FaultTraining, StragglerSlowsTheClockButNotTheTrajectory) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe r1 = make_recipe("cola-sim");
  TrainRecipe r2 = make_recipe("cola-sim");

  auto baseline = make_engine(task, model, r1, 2);
  auto slowed = make_engine(task, model, r2, 2);
  const StepStats base_step = baseline.train_step();
  slowed.set_device_slowdown(0, 2.0);
  const StepStats slow_step = slowed.train_step();

  // Timing-only: the barrier waits for the straggler, the math is
  // untouched.
  EXPECT_GT(slow_step.step_time_s, base_step.step_time_s);
  EXPECT_DOUBLE_EQ(slow_step.loss, base_step.loss);
  EXPECT_TRUE(baseline.parameters().equals(slowed.parameters()));

  // Reconfiguration resets the multipliers (the slots are remapped).
  slowed.resize(make_devices(DeviceType::kV100, 4));
  EXPECT_DOUBLE_EQ(slowed.device_slowdown(0), 1.0);
}

TEST(FaultTraining, CommRetryChargesOneExtraAllReduce) {
  ProxyTask task = make_task("cola-sim", 42);
  Sequential model = make_proxy_model("cola-sim", 42);
  TrainRecipe r1 = make_recipe("cola-sim");
  TrainRecipe r2 = make_recipe("cola-sim");

  auto baseline = make_engine(task, model, r1, 2);
  auto faulted = make_engine(task, model, r2, 2);
  faulted.inject_comm_retry();
  const StepStats base_step = baseline.train_step();
  const StepStats retry_step = faulted.train_step();
  EXPECT_DOUBLE_EQ(retry_step.comm_time_s, 2.0 * base_step.comm_time_s);
  EXPECT_DOUBLE_EQ(retry_step.loss, base_step.loss);

  // One-shot: the next step is back to the normal charge.
  const StepStats after = faulted.train_step();
  EXPECT_DOUBLE_EQ(after.comm_time_s, baseline.train_step().comm_time_s);
  EXPECT_TRUE(baseline.parameters().equals(faulted.parameters()));
}

}  // namespace
}  // namespace vf
