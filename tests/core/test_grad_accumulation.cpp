// Related-work positioning test (§8): on a single device, virtual-node
// processing generalizes gradient accumulation. A hand-rolled gradient-
// accumulation loop (micro-batch forward/backward, accumulate, one update)
// must produce exactly the engine's result.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

TEST(GradAccumulation, EngineMatchesHandRolledLoop) {
  const std::uint64_t seed = 42;
  const std::int64_t B = 64, vns = 4, steps = 12;
  ProxyTask task = make_task("qnli-sim", seed);

  // --- Engine under test.
  Sequential model = make_proxy_model("qnli-sim", seed);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 1),
                           VnMapping::even(vns, 1, B), cfg);
  for (std::int64_t s = 0; s < steps; ++s) engine.train_step();

  // --- Hand-rolled gradient accumulation with identical inputs: same
  // epoch permutation, same micro-batch slices, same per-VN contexts.
  Sequential manual = make_proxy_model("qnli-sim", seed);
  TrainRecipe mrecipe = make_recipe("qnli-sim");
  EpochBatcher batcher(*task.train, seed, B);
  const auto slices = split_batch(B, std::vector<std::int64_t>(vns, B / vns));
  std::vector<VnState> states(static_cast<std::size_t>(vns));

  for (std::int64_t s = 0; s < steps; ++s) {
    const std::int64_t epoch = s / batcher.batches_per_epoch();
    const std::int64_t bie = s % batcher.batches_per_epoch();
    Tensor accum({manual.param_count()});
    for (std::int64_t v = 0; v < vns; ++v) {
      MicroBatch mb = batcher.micro_batch(epoch, bie, slices, v);
      ExecContext ctx;
      ctx.seed = seed;
      ctx.step = s;
      ctx.vn_id = static_cast<std::int32_t>(v);
      ctx.training = true;
      ctx.state = &states[static_cast<std::size_t>(v)];
      manual.zero_grad();
      const Tensor logits = manual.forward(mb.features, ctx);
      const LossResult loss = softmax_cross_entropy(logits, mb.labels);
      manual.backward(loss.grad_logits);
      accum.add_(manual.flatten_grads());
    }
    accum.scale_(1.0F / static_cast<float>(B));
    manual.load_grads(accum);
    mrecipe.optimizer->apply(manual, mrecipe.schedule->lr(s));
  }

  EXPECT_TRUE(engine.parameters().equals(manual.flatten_params()))
      << "max diff " << engine.parameters().max_abs_diff(manual.flatten_params());
}

}  // namespace
}  // namespace vf
