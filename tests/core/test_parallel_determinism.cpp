// The host thread pool preserves the engine's bit-exactness contract:
// running the per-device step loop on 1, 2, or 8 workers produces
// parameters, VN states, per-step losses, and evaluation results that are
// bit-identical to the serial reference path — for multiple device
// mappings, including an uneven one. This holds by construction (each
// device writes only its own VNs' gradient sums; sync_and_update reduces
// in ascending VN-id order), and this suite is the proof.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "nn/state.h"
#include "tensor/kernels.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

constexpr std::int64_t kSteps = 10;

/// Everything the bit-exactness claim quantifies over.
struct RunResult {
  Tensor params;
  std::vector<double> losses;       // per-step global-batch mean loss
  std::vector<VnState> vn_states;   // batch-norm moving stats per VN
  double eval_acc = 0.0;
  double eval_loss = 0.0;
};

RunResult run(std::int64_t vns, std::int64_t num_devices, std::int64_t workers) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;  // 0 = the serial reference path
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"),
                        make_devices(DeviceType::kV100, num_devices),
                        VnMapping::even(vns, num_devices, recipe.global_batch), cfg);

  RunResult r;
  for (std::int64_t i = 0; i < kSteps; ++i) r.losses.push_back(eng.train_step().loss);
  r.params = eng.parameters();
  for (std::int64_t vn = 0; vn < eng.mapping().total_vns(); ++vn)
    r.vn_states.push_back(eng.vn_state(static_cast<std::int32_t>(vn)));
  r.eval_acc = eng.evaluate(*task.val);
  r.eval_loss = eng.evaluate_loss(*task.val);
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_TRUE(a.params.equals(b.params))
      << "max diff " << a.params.max_abs_diff(b.params);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i)
    EXPECT_EQ(a.losses[i], b.losses[i]) << "loss diverged at step " << i;
  ASSERT_EQ(a.vn_states.size(), b.vn_states.size());
  for (std::size_t vn = 0; vn < a.vn_states.size(); ++vn) {
    ASSERT_EQ(a.vn_states[vn].keys(), b.vn_states[vn].keys()) << "VN " << vn;
    for (const auto& key : a.vn_states[vn].keys())
      EXPECT_TRUE(a.vn_states[vn].get(key).equals(b.vn_states[vn].get(key)))
          << "VN " << vn << " key " << key;
  }
  EXPECT_EQ(a.eval_acc, b.eval_acc);
  EXPECT_EQ(a.eval_loss, b.eval_loss);
}

struct PoolCase {
  std::int64_t vns;
  std::int64_t num_devices;
  std::int64_t workers;
};

class ParallelDeterminism : public ::testing::TestWithParam<PoolCase> {};

TEST_P(ParallelDeterminism, PoolBitIdenticalToSerial) {
  const PoolCase c = GetParam();
  const RunResult serial = run(c.vns, c.num_devices, /*workers=*/0);
  const RunResult pooled = run(c.vns, c.num_devices, c.workers);
  expect_identical(serial, pooled);
}

// Two device mappings (4x and 2x V100) x worker counts {1, 2, 8}. The
// 8-worker cases oversubscribe the 4- and 2-device loops, exercising the
// pool's queueing path.
INSTANTIATE_TEST_SUITE_P(
    MappingsAndWorkerCounts, ParallelDeterminism,
    ::testing::Values(PoolCase{8, 4, 1}, PoolCase{8, 4, 2}, PoolCase{8, 4, 8},
                      PoolCase{8, 2, 1}, PoolCase{8, 2, 2}, PoolCase{8, 2, 8}),
    [](const ::testing::TestParamInfo<PoolCase>& info) {
      return std::to_string(info.param.vns) + "vn" +
             std::to_string(info.param.num_devices) + "dev" +
             std::to_string(info.param.workers) + "w";
    });

TEST(ParallelDeterminism, IdenticalAcrossWorkerCounts) {
  // Transitivity check made explicit: every pooled run equals every other.
  const RunResult w1 = run(8, 4, 1);
  const RunResult w2 = run(8, 4, 2);
  const RunResult w8 = run(8, 4, 8);
  expect_identical(w1, w2);
  expect_identical(w2, w8);
}

TEST(ParallelDeterminism, MappingInvarianceHoldsUnderPool) {
  // The library's core contract (mapping invariance) composed with the
  // pool: a serial 1-device run and an 8-worker 8-device run of the same
  // 8 VNs are bit-identical.
  const RunResult serial_1dev = run(8, 1, 0);
  const RunResult pooled_8dev = run(8, 8, 8);
  expect_identical(serial_1dev, pooled_8dev);
}

TEST(ParallelDeterminism, UnevenMappingBitIdenticalUnderPool) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");
  EngineConfig serial_cfg;
  serial_cfg.seed = 42;
  serial_cfg.enforce_memory = false;
  EngineConfig pool_cfg = serial_cfg;
  pool_cfg.num_threads = 4;

  VirtualFlowEngine serial(model, *r1.optimizer, *r1.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 2),
                           VnMapping::uneven({{8, 8, 8, 8, 8}, {8, 8, 8}}), serial_cfg);
  VirtualFlowEngine pooled(model, *r2.optimizer, *r2.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 2),
                           VnMapping::uneven({{8, 8, 8, 8, 8}, {8, 8, 8}}), pool_cfg);
  for (int i = 0; i < kSteps; ++i) {
    const StepStats a = serial.train_step();
    const StepStats b = pooled.train_step();
    EXPECT_EQ(a.loss, b.loss) << "step " << i;
  }
  EXPECT_TRUE(serial.parameters().equals(pooled.parameters()));
}

TEST(ParallelDeterminism, KernelModeAndWorkspacePolicyCannotChangeBits) {
  // The kernel layer's contract composed with the pool's: reference vs
  // blocked vs simd kernels, buffer reuse vs allocate-per-use, serial vs
  // pooled — every combination must land on the same bits
  // (tensor/kernels.h). The simd arms run everywhere: on hosts without
  // the vector ISA the backend factory serves them with the blocked tier.
  const KernelMode saved_mode = TensorConfig::kernel_mode();
  const bool saved_reuse = TensorConfig::workspace_reuse();

  TensorConfig::set_kernel_mode(KernelMode::kReference);
  TensorConfig::set_workspace_reuse(true);
  const RunResult reference = run(8, 4, 0);

  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  const RunResult blocked = run(8, 4, 0);
  const RunResult blocked_pooled = run(8, 4, 8);

  TensorConfig::set_kernel_mode(KernelMode::kSimd);
  const RunResult simd = run(8, 4, 0);
  const RunResult simd_pooled = run(8, 4, 8);
  const RunResult simd_wide = run(8, 4, 2);

  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  TensorConfig::set_workspace_reuse(false);
  const RunResult blocked_churn = run(8, 4, 2);

  TensorConfig::set_kernel_mode(KernelMode::kSimd);
  const RunResult simd_churn = run(8, 4, 2);

  TensorConfig::set_kernel_mode(saved_mode);
  TensorConfig::set_workspace_reuse(saved_reuse);

  expect_identical(reference, blocked);
  expect_identical(blocked, blocked_pooled);
  expect_identical(blocked, blocked_churn);
  expect_identical(reference, simd);
  expect_identical(simd, simd_pooled);
  expect_identical(simd, simd_wide);
  expect_identical(simd, simd_churn);
}

TEST(ParallelDeterminism, EvalStripingDecoupledFromReplicaCount) {
  // Eval-only parallelism is no longer capped by the device count: a
  // 1-device mapping with 8 pool workers stripes eval chunks over all 8
  // (workers past the replica count run private model copies) and must
  // still match the serial reference bit for bit.
  const RunResult serial = run(8, 1, /*workers=*/0);
  const RunResult pooled = run(8, 1, /*workers=*/8);
  expect_identical(serial, pooled);
}

TEST(ParallelDeterminism, PoolSurvivesResize) {
  // Elastic resize with a live pool: the device count changes under the
  // pool's feet and the trajectory still matches the serial engine.
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");
  EngineConfig serial_cfg;
  serial_cfg.seed = 42;
  serial_cfg.enforce_memory = false;
  EngineConfig pool_cfg = serial_cfg;
  pool_cfg.num_threads = 8;

  VirtualFlowEngine serial(model, *r1.optimizer, *r1.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 4),
                           VnMapping::even(8, 4, r1.global_batch), serial_cfg);
  VirtualFlowEngine pooled(model, *r2.optimizer, *r2.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, 4),
                           VnMapping::even(8, 4, r2.global_batch), pool_cfg);
  for (int i = 0; i < 5; ++i) {
    serial.train_step();
    pooled.train_step();
  }
  serial.resize(make_devices(DeviceType::kV100, 2));
  pooled.resize(make_devices(DeviceType::kV100, 2));
  for (int i = 0; i < 5; ++i) {
    serial.train_step();
    pooled.train_step();
  }
  EXPECT_TRUE(serial.parameters().equals(pooled.parameters()));
}

}  // namespace
}  // namespace vf
