// The library's core contract, tested as a property: the virtual-node ->
// device mapping has NO effect on training semantics. Trajectories are
// bit-identical across device counts, device types, and (for models whose
// gradients are linear in example count, i.e. no per-VN batch statistics)
// even across uneven heterogeneous splits.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

EngineConfig test_cfg() {
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  return cfg;
}

/// Trains `steps` steps of qnli-sim (BN + dropout + Adam: the full
/// stateful stack) under the given mapping; returns final parameters.
Tensor run_mapping(std::int64_t vns, std::int64_t num_devices, DeviceType type,
                   std::int64_t steps = 12) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(type, num_devices),
                        VnMapping::even(vns, num_devices, recipe.global_batch),
                        test_cfg());
  for (std::int64_t i = 0; i < steps; ++i) eng.train_step();
  return eng.parameters();
}

// ---- Property: with total VNs fixed at 8 (batch 64), every device count
// dividing 8, on every GPU type, yields bit-identical parameters. This is
// Table 1/2's reproducibility claim strengthened to exact equality.
struct MappingCase {
  std::int64_t num_devices;
  DeviceType type;
};

class MappingInvariance : public ::testing::TestWithParam<MappingCase> {};

TEST_P(MappingInvariance, BitExactAcrossMappings) {
  static const Tensor reference = run_mapping(8, 1, DeviceType::kV100);
  const MappingCase c = GetParam();
  const Tensor params = run_mapping(8, c.num_devices, c.type);
  EXPECT_TRUE(reference.equals(params))
      << "max diff " << reference.max_abs_diff(params) << " on "
      << c.num_devices << "x" << device_type_name(c.type);
}

INSTANTIATE_TEST_SUITE_P(
    DeviceCountsAndTypes, MappingInvariance,
    ::testing::Values(MappingCase{1, DeviceType::kV100},
                      MappingCase{2, DeviceType::kV100},
                      MappingCase{4, DeviceType::kV100},
                      MappingCase{8, DeviceType::kV100},
                      MappingCase{1, DeviceType::kRtx2080Ti},
                      MappingCase{2, DeviceType::kP100},
                      MappingCase{4, DeviceType::kK80},
                      MappingCase{8, DeviceType::kRtx2080Ti}),
    [](const ::testing::TestParamInfo<MappingCase>& info) {
      return std::to_string(info.param.num_devices) + "x" +
             device_type_name(info.param.type);
    });

TEST(MappingInvariance, ContiguousVsDefaultPlacementIdentical) {
  // Same VN count, different placement shape: 8 VNs as 2 devices x 4 VNs
  // vs an uneven placement of the same equal-sized VNs (5 + 3).
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");

  VirtualFlowEngine even(model, *r1.optimizer, *r1.schedule, *task.train,
                         model_profile("bert-base"),
                         make_devices(DeviceType::kV100, 2),
                         VnMapping::even(8, 2, 64), test_cfg());
  VirtualFlowEngine skew(model, *r2.optimizer, *r2.schedule, *task.train,
                         model_profile("bert-base"),
                         make_devices(DeviceType::kV100, 2),
                         VnMapping::uneven({{8, 8, 8, 8, 8}, {8, 8, 8}}), test_cfg());
  for (int i = 0; i < 10; ++i) {
    even.train_step();
    skew.train_step();
  }
  EXPECT_TRUE(even.parameters().equals(skew.parameters()));
}

TEST(MappingInvariance, ValidationAccuracyIdenticalAcrossMappings) {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe r1 = make_recipe("qnli-sim");
  TrainRecipe r2 = make_recipe("qnli-sim");
  VirtualFlowEngine a(model, *r1.optimizer, *r1.schedule, *task.train,
                      model_profile("bert-base"), make_devices(DeviceType::kV100, 1),
                      VnMapping::even(8, 1, 64), test_cfg());
  VirtualFlowEngine b(model, *r2.optimizer, *r2.schedule, *task.train,
                      model_profile("bert-base"), make_devices(DeviceType::kV100, 8),
                      VnMapping::even(8, 8, 64), test_cfg());
  for (int i = 0; i < 20; ++i) {
    a.train_step();
    b.train_step();
  }
  EXPECT_DOUBLE_EQ(a.evaluate(*task.val), b.evaluate(*task.val));
}

TEST(MappingInvariance, BnFreeModelExactUnderUnevenHeterogeneousSplit) {
  // For a model with no per-VN batch statistics, per-VN gradient *sums*
  // reduced in VN-id order make even the heterogeneous uneven split (§5.2)
  // bit-exact against the single-device run.
  ProxyTask task = make_task("imagenet-sim", 42);
  CounterRng rng(42, 0x30DE1);
  Sequential model;
  model.add(std::make_unique<Dense>(32, 32, rng));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dense>(32, 16, rng));

  Sgd opt(0.9F, 1e-4F);
  ConstantLr lr(0.5F);
  const std::int64_t B = 64;

  VirtualFlowEngine homog(model, opt, lr, *task.train, model_profile("resnet50"),
                          make_devices(DeviceType::kV100, 1),
                          VnMapping::even(4, 1, B), test_cfg());
  // 48:16 split over V100 + P100 — different VN sizes (48 vs 16), but the
  // total VN count is 4 and slices cover the same 64 examples.
  auto hetero_devices =
      make_heterogeneous({{DeviceType::kV100, 1}, {DeviceType::kP100, 1}});
  VirtualFlowEngine hetero(model, opt, lr, *task.train, model_profile("resnet50"),
                           hetero_devices,
                           VnMapping::uneven({{16, 16}, {16, 16}}), test_cfg());
  for (int i = 0; i < 15; ++i) {
    homog.train_step();
    hetero.train_step();
  }
  EXPECT_TRUE(homog.parameters().equals(hetero.parameters()));
}

TEST(MappingInvariance, WeightedSyncEquivalentToFlatMeanUnevenSizes) {
  // Uneven VN sizes with a BN-free model: the weighted average over
  // unequal shares must equal the flat mean over all examples — compare
  // a 48+16 split against a 32+32 split (same batch, different shares).
  ProxyTask task = make_task("imagenet-sim", 42);
  CounterRng rng(42, 0x30DE1);
  Sequential model;
  model.add(std::make_unique<Dense>(32, 24, rng));
  model.add(std::make_unique<Tanh>());
  model.add(std::make_unique<Dense>(24, 16, rng));
  Sgd opt;
  ConstantLr lr(0.3F);

  VirtualFlowEngine a(model, opt, lr, *task.train, model_profile("resnet50"),
                      make_devices(DeviceType::kV100, 2),
                      VnMapping::uneven({{48}, {16}}), test_cfg());
  VirtualFlowEngine b(model, opt, lr, *task.train, model_profile("resnet50"),
                      make_devices(DeviceType::kV100, 2),
                      VnMapping::uneven({{32}, {32}}), test_cfg());
  for (int i = 0; i < 10; ++i) {
    a.train_step();
    b.train_step();
  }
  // Same examples, same flat mean — but FP summation order differs
  // between a 48-sum and a 32-sum, so require near-equality.
  EXPECT_LT(a.parameters().max_abs_diff(b.parameters()), 2e-4F);
}

TEST(MappingInvariance, SeedChangesTrajectory) {
  // Sanity check that the equality above is not vacuous: a different seed
  // gives different parameters.
  const Tensor base = run_mapping(8, 1, DeviceType::kV100);
  ProxyTask task = make_task("qnli-sim", 43);
  Sequential model = make_proxy_model("qnli-sim", 43);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg = test_cfg();
  cfg.seed = 43;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(DeviceType::kV100, 1),
                        VnMapping::even(8, 1, 64), cfg);
  for (int i = 0; i < 12; ++i) eng.train_step();
  EXPECT_FALSE(base.equals(eng.parameters()));
}

}  // namespace
}  // namespace vf
