// The zero-allocation steady-state contract: once warm, a training step
// performs ZERO tensor heap allocations — every activation, gradient
// temporary, micro-batch buffer, and reduction scratch lives in a per-VN
// slot reused across steps. Asserted through both counters: the engine's
// Workspace audit and the global tensor allocation counter (the stronger
// claim — nothing anywhere in the step touches the heap).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

struct ConfigGuard {
  KernelMode mode = TensorConfig::kernel_mode();
  bool reuse = TensorConfig::workspace_reuse();
  ~ConfigGuard() {
    TensorConfig::set_kernel_mode(mode);
    TensorConfig::set_workspace_reuse(reuse);
  }
};

/// qnli-sim exercises the full layer zoo on the hot path: Dense, BatchNorm
/// (per-VN stateful slots), ReLU, Dropout (per-step masks), Adam.
VirtualFlowEngine make_engine(std::int64_t vns, std::int64_t devices,
                              std::int64_t workers, const ProxyTask& task,
                              const TrainRecipe& recipe) {
  Sequential model = make_proxy_model("qnli-sim", 42);
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, recipe.global_batch), cfg);
}

class ZeroAllocSteadyState : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ZeroAllocSteadyState, WarmTrainStepNeverTouchesTheHeap) {
  ConfigGuard guard;
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  TensorConfig::set_workspace_reuse(true);

  const std::int64_t workers = GetParam();
  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  VirtualFlowEngine eng = make_engine(8, 2, workers, task, recipe);

  // Warm-up: slot creation, optimizer-slot laziness, BN state init, and
  // (via enough steps) at least one epoch-permutation refresh.
  for (int i = 0; i < 3; ++i) eng.train_step();

  const std::int64_t tensor0 = tensor_alloc_count();
  const std::int64_t ws0 = eng.workspace_allocs();
  for (int i = 0; i < 5; ++i) eng.train_step();
  EXPECT_EQ(eng.workspace_allocs() - ws0, 0)
      << "workspace slots grew after warm-up";
  EXPECT_EQ(tensor_alloc_count() - tensor0, 0)
      << "a steady-state train step allocated tensor heap memory";
}

INSTANTIATE_TEST_SUITE_P(SerialAndPooled, ZeroAllocSteadyState,
                         ::testing::Values<std::int64_t>(0, 2),
                         [](const ::testing::TestParamInfo<std::int64_t>& info) {
                           return info.param == 0
                                      ? std::string("serial")
                                      : "pool" + std::to_string(info.param) + "w";
                         });

TEST(ZeroAllocSteadyState, ResizeRewarmsThenGoesQuietAgain) {
  ConfigGuard guard;
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  TensorConfig::set_workspace_reuse(true);

  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  VirtualFlowEngine eng = make_engine(8, 4, 0, task, recipe);
  for (int i = 0; i < 3; ++i) eng.train_step();

  // An elastic resize rebuilds replicas — the next steps may allocate
  // (fresh model scratch) but the workspace slots survive by VN id and
  // the step must go allocation-quiet again.
  eng.resize(make_devices(DeviceType::kV100, 2));
  for (int i = 0; i < 3; ++i) eng.train_step();

  const std::int64_t tensor0 = tensor_alloc_count();
  for (int i = 0; i < 4; ++i) eng.train_step();
  EXPECT_EQ(tensor_alloc_count() - tensor0, 0);
}

TEST(ZeroAllocSteadyState, GrowShrinkGrowCycleEvictsStaleVnSlotsAndRewarms) {
  ConfigGuard guard;
  TensorConfig::set_kernel_mode(KernelMode::kBlocked);
  TensorConfig::set_workspace_reuse(true);

  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  const std::int64_t gb = recipe.global_batch;
  VirtualFlowEngine eng = make_engine(8, 2, 0, task, recipe);
  for (int i = 0; i < 3; ++i) eng.train_step();
  ASSERT_EQ(eng.workspace_vns(), 8);

  // Shrink the VN count (heterogeneous reconfigure, same global batch):
  // the departed VNs' workspace slots and infer scratch must be evicted
  // with the mapping — before the fix they outlived it, pinning their
  // buffers for the engine's lifetime.
  eng.reconfigure(make_devices(DeviceType::kV100, 2),
                  VnMapping::even(4, 2, gb));
  EXPECT_EQ(eng.workspace_vns(), 4)
      << "reconfigure must evict slots of VNs outside the new mapping";
  for (int i = 0; i < 3; ++i) eng.train_step();

  const std::int64_t shrunk0 = tensor_alloc_count();
  for (int i = 0; i < 4; ++i) eng.train_step();
  EXPECT_EQ(tensor_alloc_count() - shrunk0, 0)
      << "steady state must return after the shrink re-warm";

  // Growing back re-creates the evicted VNs' slots (a re-warm may
  // allocate), then the step goes allocation-quiet again.
  eng.reconfigure(make_devices(DeviceType::kV100, 2),
                  VnMapping::even(8, 2, gb));
  EXPECT_EQ(eng.workspace_vns(), 8);
  for (int i = 0; i < 3; ++i) eng.train_step();

  const std::int64_t regrown0 = tensor_alloc_count();
  for (int i = 0; i < 4; ++i) eng.train_step();
  EXPECT_EQ(tensor_alloc_count() - regrown0, 0)
      << "steady state must return after the grow re-warm";
}

TEST(ZeroAllocSteadyState, NoReuseBaselineChurnsEveryStep) {
  ConfigGuard guard;
  TensorConfig::set_kernel_mode(KernelMode::kReference);
  TensorConfig::set_workspace_reuse(false);

  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  VirtualFlowEngine eng = make_engine(8, 2, 0, task, recipe);
  for (int i = 0; i < 2; ++i) eng.train_step();

  // The A/B baseline really does allocate per use — the bench's
  // "before" arm measures what it claims to measure.
  const std::int64_t tensor0 = tensor_alloc_count();
  eng.train_step();
  EXPECT_GT(tensor_alloc_count() - tensor0, 0);
}

}  // namespace
}  // namespace vf
