// VirtualFlowEngine behaviour: step mechanics, replica consistency, the
// simulated clock, evaluation, and memory enforcement.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "core/trainer.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

struct Rig {
  ProxyTask task = make_task("qnli-sim", 42);
  Sequential model = make_proxy_model("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");

  VirtualFlowEngine engine(std::int64_t vns, std::int64_t num_devices,
                           DeviceType type = DeviceType::kV100,
                           EngineConfig cfg = {}) {
    cfg.seed = 42;
    cfg.enforce_memory = false;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             model_profile("bert-base"), make_devices(type, num_devices),
                             VnMapping::even(vns, num_devices, recipe.global_batch), cfg);
  }
};

TEST(Engine, StepAdvancesCountersAndClock) {
  Rig rig;
  auto eng = rig.engine(8, 2);
  EXPECT_EQ(eng.step(), 0);
  const StepStats s = eng.train_step();
  EXPECT_EQ(eng.step(), 1);
  EXPECT_EQ(s.step, 1);
  EXPECT_GT(s.step_time_s, 0.0);
  EXPECT_DOUBLE_EQ(s.sim_time_s, eng.sim_time_s());
  EXPECT_GT(s.throughput, 0.0);
}

TEST(Engine, FirstStepPaysGraphOptimization) {
  // Fig 6: "The first step is slower due to initial graph optimizations."
  Rig rig;
  auto eng = rig.engine(8, 2);
  const double t1 = eng.train_step().step_time_s;
  const double t2 = eng.train_step().step_time_s;
  EXPECT_GT(t1, t2 + 0.9 * device_spec(DeviceType::kV100).first_step_extra_s);
}

TEST(Engine, LossDecreasesOverTraining) {
  Rig rig;
  auto eng = rig.engine(8, 1);
  const double first = eng.train_step().loss;
  for (int i = 0; i < 60; ++i) eng.train_step();
  const double later = eng.train_step().loss;
  EXPECT_LT(later, first);
}

TEST(Engine, ReplicasStayBitIdentical) {
  Rig rig;
  auto eng = rig.engine(8, 4);
  for (int i = 0; i < 5; ++i) eng.train_step();
  const Tensor p0 = eng.replica_model(0).flatten_params();
  for (std::int64_t d = 1; d < eng.num_replicas(); ++d) {
    EXPECT_TRUE(p0.equals(eng.replica_model(d).flatten_params()))
        << "replica " << d << " diverged";
  }
}

TEST(Engine, MoreDevicesShortenSimulatedStep) {
  Rig a, b;
  auto eng1 = a.engine(8, 1);
  auto eng4 = b.engine(8, 4);
  eng1.train_step();
  eng4.train_step();
  const double t1 = eng1.train_step().step_time_s;
  const double t4 = eng4.train_step().step_time_s;
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.5);  // sublinear because of comm overhead
}

TEST(Engine, CommTimeZeroOnSingleDevice) {
  Rig rig;
  auto eng = rig.engine(8, 1);
  EXPECT_DOUBLE_EQ(eng.train_step().comm_time_s, 0.0);
  Rig rig2;
  auto eng2 = rig2.engine(8, 2);
  EXPECT_GT(eng2.train_step().comm_time_s, 0.0);
}

TEST(Engine, EvaluateReflectsTraining) {
  Rig rig;
  auto eng = rig.engine(8, 1);
  const double before = eng.evaluate(*rig.task.val);
  for (int i = 0; i < 150; ++i) eng.train_step();
  const double after = eng.evaluate(*rig.task.val);
  EXPECT_GT(after, before + 0.2);
  EXPECT_GT(after, 0.8);
}

TEST(Engine, EvaluateLossFiniteAndImproves) {
  Rig rig;
  auto eng = rig.engine(8, 1);
  const double before = eng.evaluate_loss(*rig.task.val, 512);
  for (int i = 0; i < 100; ++i) eng.train_step();
  EXPECT_LT(eng.evaluate_loss(*rig.task.val, 512), before);
}

TEST(Engine, EpochAccounting) {
  Rig rig;
  auto eng = rig.engine(8, 1);
  const std::int64_t spe = eng.steps_per_epoch();
  EXPECT_EQ(spe, rig.task.train->size() / rig.recipe.global_batch);
  for (std::int64_t i = 0; i < spe; ++i) eng.train_step();
  EXPECT_EQ(eng.epoch(), 1);
}

TEST(Engine, MappingDeviceCountMismatchThrows) {
  Rig rig;
  EngineConfig cfg;
  cfg.enforce_memory = false;
  EXPECT_THROW(
      VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                        *rig.task.train, model_profile("bert-base"),
                        make_devices(DeviceType::kV100, 3),
                        VnMapping::even(8, 2, rig.recipe.global_batch), cfg),
      VfError);
}

TEST(Engine, MemoryEnforcementRejectsOversizedVn) {
  // bert-base at per-VN batch 64 exceeds one V100 (Table 2 anchor); the
  // engine must refuse to build, mirroring the real framework's OOM.
  Rig rig;
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = true;
  EXPECT_THROW(
      VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                        *rig.task.train, model_profile("bert-base"),
                        make_devices(DeviceType::kV100, 1),
                        VnMapping::even(1, 1, 64), cfg),
      OomError);
  // Eight VNs of 8 fit fine.
  VirtualFlowEngine ok(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                       *rig.task.train, model_profile("bert-base"),
                       make_devices(DeviceType::kV100, 1),
                       VnMapping::even(8, 1, 64), cfg);
  EXPECT_EQ(ok.mapping().total_vns(), 8);
}

TEST(Engine, GradBufferOnlyWithMultipleVns) {
  Rig rig;
  auto eng = rig.engine(8, 4);  // 2 VNs per device
  EXPECT_TRUE(eng.uses_grad_buffer(0));
  Rig rig2;
  auto eng2 = rig2.engine(8, 8);  // 1 VN per device: stock fallback (§3.2)
  EXPECT_FALSE(eng2.uses_grad_buffer(0));
  EXPECT_LT(eng2.device_memory(0).grad_buffer, 1.0);
}

TEST(Engine, ThroughputScalesWithDevicesInSimTime) {
  // Over a fast (NVLink-class) interconnect, compute scaling dominates.
  // (Over the default 16 Gbps link, bert-base at global batch 64 is
  // comm-bound and 4 GPUs barely beat 2 — which is realistic, and why the
  // paper's small-batch jobs keep modest GPU demands.)
  EngineConfig cfg;
  cfg.link.bandwidth_bytes = 150e9;
  Rig a, b;
  auto eng2 = a.engine(8, 2, DeviceType::kV100, cfg);
  auto eng4 = b.engine(8, 4, DeviceType::kV100, cfg);
  eng2.train_step();
  eng4.train_step();
  EXPECT_GT(eng4.train_step().throughput, eng2.train_step().throughput * 1.5);
}

TEST(Engine, HeterogeneousMappingRuns) {
  Rig rig;
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  // 48 on a V100 VN + two 8-example VNs on a P100.
  auto devices = make_heterogeneous({{DeviceType::kV100, 1}, {DeviceType::kP100, 1}});
  VnMapping mapping = VnMapping::uneven({{48}, {8, 8}});
  VirtualFlowEngine eng(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                        *rig.task.train, model_profile("bert-base"), devices, mapping,
                        cfg);
  const StepStats s = eng.train_step();
  EXPECT_GT(s.throughput, 0.0);
  EXPECT_EQ(eng.mapping().global_batch(), 64);
}

}  // namespace
}  // namespace vf
