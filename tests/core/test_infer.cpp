// VirtualFlowEngine::infer — the forward-only serving entry point.
//
// Contracts under test: predictions are a pure function of (parameters,
// averaged VN state, inputs) — invariant to the VN -> device mapping, to
// how examples are sliced across VNs, and to the host worker count; the
// simulated compute cost reflects the mapping (more devices -> faster
// batch) without ever feeding back into the math.
#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "data/batch.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

constexpr std::uint64_t kSeed = 42;

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig() {
  return Rig{make_task("mrpc-sim", kSeed), make_proxy_model("mrpc-sim", kSeed),
             make_recipe("mrpc-sim")};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t vns, std::int64_t devices,
                              std::int64_t workers) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch), cfg);
}

/// First `n` validation examples sliced evenly over `n_slices` VNs.
std::vector<InferSlice> make_slices(const Dataset& val, std::int64_t n,
                                    std::int64_t n_slices) {
  std::vector<InferSlice> slices;
  const std::int64_t per = n / n_slices;
  for (std::int64_t s = 0; s < n_slices; ++s) {
    std::vector<std::int64_t> idx;
    for (std::int64_t k = s * per; k < (s + 1) * per; ++k) idx.push_back(k);
    InferSlice slice;
    slice.vn = static_cast<std::int32_t>(s);
    slice.features = gather_micro_batch(val, idx).features;
    slices.push_back(std::move(slice));
  }
  return slices;
}

TEST(Infer, MappingInvariantPredictions) {
  Rig rig = make_rig();
  // Train a few steps so parameters and batch-norm state are non-trivial.
  VirtualFlowEngine e1 = make_engine(rig, 8, 1, 0);
  VirtualFlowEngine e4 = make_engine(rig, 8, 4, 0);
  for (int i = 0; i < 3; ++i) {
    e1.train_step();
    e4.train_step();
  }

  const auto slices = make_slices(*rig.task.val, 64, 8);
  const InferStats r1 = e1.infer(slices);
  const InferStats r4 = e4.infer(slices);
  ASSERT_EQ(r1.predictions.size(), 64u);
  EXPECT_EQ(r1.predictions, r4.predictions)
      << "predictions must not depend on the VN -> device mapping";
  EXPECT_LT(r4.compute_s, r1.compute_s)
      << "4 devices drain the same slices faster than 1";
  EXPECT_EQ(r1.comm_s, 0.0) << "single device: no logits return hop";
  EXPECT_GT(r4.comm_s, 0.0);
}

TEST(Infer, SliceLayoutInvariantPredictions) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 2, 0);
  for (int i = 0; i < 3; ++i) engine.train_step();

  const InferStats wide = engine.infer(make_slices(*rig.task.val, 64, 8));
  const InferStats narrow = engine.infer(make_slices(*rig.task.val, 64, 2));
  EXPECT_EQ(wide.predictions, narrow.predictions)
      << "how examples are split across VNs must not change any prediction";
}

TEST(Infer, WorkerCountInvariant) {
  Rig rig = make_rig();
  VirtualFlowEngine serial = make_engine(rig, 8, 4, 0);
  VirtualFlowEngine pooled = make_engine(rig, 8, 4, 8);
  const auto slices = make_slices(*rig.task.val, 64, 8);
  const InferStats a = serial.infer(slices);
  const InferStats b = pooled.infer(slices);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.compute_s, b.compute_s);
  EXPECT_EQ(a.comm_s, b.comm_s);
}

TEST(Infer, SurvivesResize) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 4, 0);
  const auto slices = make_slices(*rig.task.val, 64, 8);
  const InferStats before = engine.infer(slices);
  engine.resize(make_devices(DeviceType::kV100, 1));
  const InferStats after = engine.infer(slices);
  EXPECT_EQ(before.predictions, after.predictions)
      << "elastic resize must not change inference results";
  EXPECT_GT(after.compute_s, before.compute_s);
}

TEST(Infer, ValidatesSlices) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 4, 2, 0);
  EXPECT_THROW(engine.infer({}), VfError);

  auto dup = make_slices(*rig.task.val, 16, 2);
  dup[1].vn = dup[0].vn;
  EXPECT_THROW(engine.infer(dup), VfError);

  auto bad_vn = make_slices(*rig.task.val, 16, 2);
  bad_vn[0].vn = 99;
  EXPECT_THROW(engine.infer(bad_vn), VfError);

  InferSlice empty;
  empty.vn = 0;
  EXPECT_THROW(engine.infer({empty}), VfError);
}

TEST(Infer, SliceCostsPriceEachSliceIndependently) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 4, 0);
  const auto slices = make_slices(*rig.task.val, 64, 8);
  const InferStats stats = engine.infer(slices);

  ASSERT_EQ(stats.slice_costs.size(), slices.size());
  const DeviceSpec& spec = engine.devices()[0].spec();
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const SliceCost& c = stats.slice_costs[i];
    EXPECT_EQ(c.vn, slices[i].vn) << "aligned with input slice order";
    EXPECT_EQ(c.device, engine.mapping().device_of(slices[i].vn));
    EXPECT_DOUBLE_EQ(
        c.pass_s, infer_pass_time_s(spec, engine.profile(), slices[i].features.rows()));
    EXPECT_DOUBLE_EQ(c.overhead_s, spec.step_fixed_s);
    EXPECT_DOUBLE_EQ(c.cold_total_s(),
                     slice_infer_time_s(spec, engine.profile(),
                                        slices[i].features.rows()));
    EXPECT_GT(c.comm_s, 0.0) << "multi-device: logits return over the link";
    EXPECT_LT(c.comm_s, stats.comm_s + 1e-12)
        << "one slice's return never exceeds the device-level max";
  }

  // Single device: no frontend hop, per-slice or batch-level.
  VirtualFlowEngine one = make_engine(rig, 8, 1, 0);
  const InferStats solo = one.infer(make_slices(*rig.task.val, 64, 8));
  for (const SliceCost& c : solo.slice_costs) {
    EXPECT_EQ(c.comm_s, 0.0);
    EXPECT_EQ(c.device, 0);
  }
}

TEST(Infer, ReusesEngineScratchAcrossCalls) {
  // The serving loop issues thousands of infer dispatches; after the first
  // call warms the per-VN scratch (predictions, grouping lists, the cached
  // averaged eval state), repeat calls with the same shapes must perform
  // zero tensor heap allocations inside the engine. The caller-visible
  // result vectors are excluded — only Tensor allocations are counted.
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 2, 0);
  for (int i = 0; i < 2; ++i) engine.train_step();
  const auto slices = make_slices(*rig.task.val, 64, 8);
  engine.infer(slices);  // warm-up: slots, cached eval state

  const std::int64_t t0 = tensor_alloc_count();
  for (int i = 0; i < 5; ++i) engine.infer(slices);
  EXPECT_EQ(tensor_alloc_count() - t0, 0)
      << "steady-state infer must not allocate tensors";

  // A training step invalidates the cached averaged eval state; the next
  // infer recomputes it (allocates once), then goes quiet again.
  engine.train_step();
  engine.infer(slices);
  const std::int64_t t1 = tensor_alloc_count();
  engine.infer(slices);
  EXPECT_EQ(tensor_alloc_count() - t1, 0);
}

TEST(Infer, ScratchShrinksWithTheMapping) {
  // Reconfiguring to fewer VNs must evict the departed VNs' infer scratch
  // and workspace slots alongside the training scratch.
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 2, 0);
  engine.infer(make_slices(*rig.task.val, 64, 8));
  ASSERT_EQ(engine.workspace_vns(), 8);

  engine.reconfigure(make_devices(DeviceType::kV100, 2),
                     VnMapping::even(4, 2, rig.recipe.global_batch));
  EXPECT_EQ(engine.workspace_vns(), 4);
  // Slices naming departed VNs are rejected against the live mapping.
  auto stale = make_slices(*rig.task.val, 16, 8);
  EXPECT_THROW(engine.infer(stale), VfError);
  const InferStats ok = engine.infer(make_slices(*rig.task.val, 16, 4));
  EXPECT_EQ(ok.predictions.size(), 16u);
}

TEST(Infer, DoesNotAdvanceClockOrTraining) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 8, 2, 0);
  engine.train_step();
  const double t = engine.sim_time_s();
  const std::int64_t step = engine.step();
  const Tensor params = engine.parameters();
  engine.infer(make_slices(*rig.task.val, 32, 4));
  EXPECT_EQ(engine.sim_time_s(), t) << "serving owns its own timeline";
  EXPECT_EQ(engine.step(), step);
  EXPECT_TRUE(engine.parameters().equals(params)) << "forward-only: no updates";
}

}  // namespace
}  // namespace vf
