// Event-driven cluster simulator: conservation laws and timing identities.
#include <gtest/gtest.h>

#include "sched/simulator.h"
#include "sched/wfs.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

JobSpec basic_job(std::int64_t id, double arrival, std::int64_t steps,
                  std::int64_t demand, double priority = 1.0) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = priority;
  j.workload = "resnet56";
  j.profile = model_profile("resnet56");
  j.global_batch = 128;
  j.total_steps = steps;
  j.demand_gpus = demand;
  return j;
}

ClusterInventory v100s(std::int64_t n) {
  ClusterInventory c;
  c.per_type[DeviceType::kV100] = n;
  return c;
}

TEST(Simulator, SingleJobRunsToCompletion) {
  PriorityScheduler policy;
  const auto res = simulate(v100s(4), {basic_job(0, 0.0, 500, 2)}, policy);
  ASSERT_EQ(res.jobs.size(), 1u);
  const JobState& j = res.jobs[0];
  EXPECT_TRUE(j.finished());
  EXPECT_DOUBLE_EQ(j.first_start_s, 0.0);
  // Completion = steps x step_time at 2 GPUs.
  const double expect = 500.0 * allocation_step_time_s(j.spec.profile, 128,
                                                       Allocation::of(DeviceType::kV100, 2));
  EXPECT_NEAR(j.completion_s, expect, 1e-6);
  EXPECT_NEAR(res.makespan_s, expect, 1e-6);
}

TEST(Simulator, TimelineCoversRunDuration) {
  PriorityScheduler policy;
  const auto res = simulate(v100s(2), {basic_job(0, 10.0, 200, 2)}, policy);
  const JobState& j = res.jobs[0];
  ASSERT_EQ(j.timeline.size(), 1u);
  EXPECT_DOUBLE_EQ(j.timeline[0].t0, 10.0);
  EXPECT_DOUBLE_EQ(j.timeline[0].t1, j.completion_s);
  EXPECT_EQ(j.timeline[0].alloc.total(), 2);
}

TEST(Simulator, QueuedJobWaitsForFreeGpus) {
  PriorityScheduler policy;
  auto res = simulate(v100s(2),
                      {basic_job(0, 0.0, 300, 2), basic_job(1, 1.0, 300, 2)}, policy);
  const JobState& j0 = res.jobs[0];
  const JobState& j1 = res.jobs[1];
  EXPECT_NEAR(j1.first_start_s, j0.completion_s, 1e-6);
  EXPECT_GT(j1.first_start_s - j1.spec.arrival_s, 0.0);  // queueing delay
}

TEST(Simulator, UtilizationBetweenZeroAndOne) {
  PriorityScheduler policy;
  const auto res = simulate(
      v100s(4), {basic_job(0, 0.0, 200, 2), basic_job(1, 5.0, 200, 4)}, policy);
  EXPECT_GT(res.avg_utilization, 0.0);
  EXPECT_LE(res.avg_utilization, 1.0 + 1e-9);
}

TEST(Simulator, JctAndQueueingDelayVectors) {
  PriorityScheduler policy;
  const auto res = simulate(v100s(2),
                            {basic_job(0, 0.0, 100, 2), basic_job(1, 0.0, 100, 2)},
                            policy);
  EXPECT_EQ(res.jcts().size(), 2u);
  EXPECT_EQ(res.queueing_delays().size(), 2u);
  for (double d : res.queueing_delays()) EXPECT_GE(d, -1e-9);
  for (double j : res.jcts()) EXPECT_GT(j, 0.0);
}

TEST(Simulator, ElasticResizePausesJob) {
  // With WFS, a second arrival forces a resize of the first job; the
  // resize costs ~1 s of paused progress. Jobs must be long enough to
  // still be running at the second arrival.
  ElasticWfsScheduler policy;
  auto res = simulate(v100s(4),
                      {basic_job(0, 0.0, 20000, 4), basic_job(1, 5.0, 20000, 4)},
                      policy);
  EXPECT_GE(res.jobs[0].resizes, 1);
  EXPECT_TRUE(res.jobs[0].finished());
  EXPECT_TRUE(res.jobs[1].finished());
}

TEST(Simulator, AttainedServiceAccumulates) {
  PriorityScheduler policy;
  const auto res = simulate(v100s(2), {basic_job(0, 0.0, 100, 2)}, policy);
  EXPECT_GT(res.jobs[0].attained_service, 0.0);
}

TEST(Simulator, ValidationErrors) {
  PriorityScheduler policy;
  EXPECT_THROW(simulate(v100s(0), {basic_job(0, 0.0, 100, 1)}, policy), VfError);
  EXPECT_THROW(simulate(v100s(2), {}, policy), VfError);
  EXPECT_THROW(simulate(v100s(2), {basic_job(0, 0.0, 0, 1)}, policy), VfError);
}

TEST(Simulator, OvercommittingPolicyRejected) {
  struct Greedy : Scheduler {
    std::map<std::int64_t, Allocation> schedule(const ClusterInventory&,
                                                const std::vector<const JobState*>& jobs,
                                                double) override {
      std::map<std::int64_t, Allocation> out;
      for (const JobState* j : jobs)
        out[j->spec.id] = Allocation::of(DeviceType::kV100, 100);
      return out;
    }
    std::string name() const override { return "greedy"; }
  } policy;
  EXPECT_THROW(simulate(v100s(2), {basic_job(0, 0.0, 10, 1)}, policy), VfError);
}

TEST(Simulator, StalledPolicyDetected) {
  struct Lazy : Scheduler {
    std::map<std::int64_t, Allocation> schedule(const ClusterInventory&,
                                                const std::vector<const JobState*>&,
                                                double) override {
      return {};  // never allocates anything
    }
    std::string name() const override { return "lazy"; }
  } policy;
  EXPECT_THROW(simulate(v100s(2), {basic_job(0, 0.0, 10, 1)}, policy), VfError);
}

}  // namespace
}  // namespace vf
