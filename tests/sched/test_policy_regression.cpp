// Legacy-policy regression net for the co-scheduling refactor: the mixed
// train+serve code paths (serving carve-outs, mid-round cache rebuilds)
// must leave pure-training behavior exactly where it was — round
// quantization, weighted fairness, resize-penalty accounting, and
// bit-identical policy output across repeated runs of the same trace seed.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sched/gavel.h"
#include "sched/simulator.h"
#include "sched/trace.h"
#include "sched/wfs.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

JobSpec train_job(std::int64_t id, double arrival, std::int64_t steps,
                  std::int64_t demand, double priority = 1.0) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = priority;
  j.workload = "resnet56";
  j.profile = model_profile("resnet56");
  j.global_batch = 128;
  j.total_steps = steps;
  j.demand_gpus = demand;
  return j;
}

ClusterInventory v100s(std::int64_t n) {
  ClusterInventory c;
  c.per_type[DeviceType::kV100] = n;
  return c;
}

std::vector<JobSpec> seeded_trace(std::uint64_t seed) {
  TraceOptions opt;
  opt.num_jobs = 8;
  opt.jobs_per_hour = 240.0;  // compress arrivals so jobs overlap
  opt.seed = seed;
  opt.steps_scale = 0.05;
  return poisson_trace(opt);
}

TEST(PolicyRegression, GavelQuantizesMidRoundArrivalsToRoundBoundaries) {
  GavelOptions opt;
  opt.round_s = 360.0;
  GavelScheduler gavel(opt);
  // Three staggered mid-round arrivals on a contended cluster: none may
  // start (or be resized) anywhere but a round boundary.
  const auto res = simulate(
      v100s(4),
      {train_job(0, 0.0, 4000, 2), train_job(1, 100.0, 4000, 2),
       train_job(2, 500.0, 4000, 2)},
      gavel);
  for (const JobState& j : res.jobs) {
    EXPECT_TRUE(j.finished()) << "job " << j.spec.id;
    const double frac =
        std::fmod(j.first_start_s, opt.round_s) / opt.round_s;
    EXPECT_TRUE(frac < 1e-6 || frac > 1.0 - 1e-6)
        << "job " << j.spec.id << " started mid-round at " << j.first_start_s;
    for (const AllocSegment& seg : j.timeline) {
      const double f = std::fmod(seg.t0, opt.round_s) / opt.round_s;
      EXPECT_TRUE(f < 1e-6 || f > 1.0 - 1e-6)
          << "job " << j.spec.id << " reallocated mid-round at " << seg.t0;
    }
  }
}

TEST(PolicyRegression, WfsSharesTrackWeightsUnderContention) {
  ElasticWfsScheduler wfs;
  // Equal weights, saturated cluster: three jobs demanding all 8 GPUs
  // settle at the integerized equal split 3/3/2 (ties broken by id).
  const auto equal = simulate(v100s(8),
                              {train_job(0, 0.0, 3000, 8, 1.0),
                               train_job(1, 0.0, 3000, 8, 1.0),
                               train_job(2, 0.0, 3000, 8, 1.0)},
                              wfs);
  ASSERT_FALSE(equal.jobs[0].timeline.empty());
  EXPECT_EQ(equal.jobs[0].timeline[0].alloc.total(), 3);
  EXPECT_EQ(equal.jobs[1].timeline[0].alloc.total(), 3);
  EXPECT_EQ(equal.jobs[2].timeline[0].alloc.total(), 2);

  // Weighted contention: a weight-5 job arriving against a running
  // weight-1 job water-fills 8 GPUs as 8 * 5/6 -> 7 vs 1, shrinking the
  // incumbent (lower priority may be hurt; the reverse never happens).
  ElasticWfsScheduler wfs2;
  const auto weighted = simulate(v100s(8),
                                 {train_job(0, 0.0, 20000, 8, 1.0),
                                  train_job(1, 10.0, 3000, 8, 5.0)},
                                 wfs2);
  const JobState& light = weighted.jobs[0];
  const JobState& heavy = weighted.jobs[1];
  ASSERT_GE(light.timeline.size(), 2u);
  EXPECT_EQ(light.timeline[0].alloc.total(), 8) << "sole job holds the cluster";
  EXPECT_EQ(light.timeline[1].alloc.total(), 1) << "weighted share after arrival";
  ASSERT_FALSE(heavy.timeline.empty());
  EXPECT_EQ(heavy.timeline[0].alloc.total(), 7);
  EXPECT_NEAR(heavy.first_start_s, 10.0, 1e-9) << "WFS consults at arrivals";
  EXPECT_GE(light.resizes, 1);
}

TEST(PolicyRegression, ResizePenaltyChargesPausedProgress) {
  // The same trace under two penalty settings: each resize of job 0 must
  // push its completion out by exactly the penalty difference.
  struct PenaltyWfs : ElasticWfsScheduler {
    double penalty;
    explicit PenaltyWfs(double p) : penalty(p) {}
    double resize_penalty_s() const override { return penalty; }
  };
  // Job 1 outlives job 0, so job 0 resizes exactly once (the shrink at
  // job 1's arrival) and runs at the same allocation either side of the
  // pause — the completion delta is purely the penalty delta.
  const std::vector<JobSpec> trace = {train_job(0, 0.0, 20000, 4),
                                      train_job(1, 5.0, 200000, 2)};
  PenaltyWfs cheap(1.0), dear(5.0);
  const auto res_cheap = simulate(v100s(4), trace, cheap);
  const auto res_dear = simulate(v100s(4), trace, dear);

  ASSERT_EQ(res_cheap.jobs[0].resizes, 1);
  ASSERT_EQ(res_cheap.jobs[0].resizes, res_dear.jobs[0].resizes);
  const double extra =
      (dear.penalty - cheap.penalty) * static_cast<double>(res_cheap.jobs[0].resizes);
  EXPECT_NEAR(res_dear.jobs[0].completion_s - res_cheap.jobs[0].completion_s,
              extra, 1e-6)
      << "resize pauses must be charged once per resize, nothing more";
}

TEST(PolicyRegression, PolicyOutputDeterministicAcrossRepeatedRuns) {
  const auto trace = seeded_trace(7);
  ASSERT_EQ(trace.size(), 8u);

  // Same seed, same policy, run twice: every stamp bit-identical.
  for (int variant = 0; variant < 2; ++variant) {
    auto make_policy = [&]() -> std::unique_ptr<Scheduler> {
      if (variant == 0) return std::make_unique<ElasticWfsScheduler>();
      GavelOptions opt;
      opt.round_s = 60.0;
      return std::make_unique<GavelScheduler>(opt);
    };
    auto p1 = make_policy();
    auto p2 = make_policy();
    const auto a = simulate(v100s(8), trace, *p1);
    const auto b = simulate(v100s(8), trace, *p2);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.makespan_s, b.makespan_s) << p1->name();
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      const JobState& ja = a.jobs[i];
      const JobState& jb = b.jobs[i];
      EXPECT_EQ(ja.completion_s, jb.completion_s) << p1->name() << " job " << i;
      EXPECT_EQ(ja.first_start_s, jb.first_start_s) << p1->name() << " job " << i;
      EXPECT_EQ(ja.resizes, jb.resizes) << p1->name() << " job " << i;
      EXPECT_EQ(ja.attained_service, jb.attained_service)
          << p1->name() << " job " << i;
      ASSERT_EQ(ja.timeline.size(), jb.timeline.size());
      for (std::size_t s = 0; s < ja.timeline.size(); ++s) {
        EXPECT_EQ(ja.timeline[s].t0, jb.timeline[s].t0);
        EXPECT_EQ(ja.timeline[s].t1, jb.timeline[s].t1);
        EXPECT_TRUE(ja.timeline[s].alloc == jb.timeline[s].alloc);
      }
    }
  }
}

}  // namespace
}  // namespace vf
