#include <gtest/gtest.h>

#include <set>

#include "sched/trace.h"
#include "util/common.h"
#include "util/stats.h"

namespace vf {
namespace {

TEST(Table3Mix, ContainsPaperWorkloads) {
  const auto& mix = table3_mix();
  ASSERT_EQ(mix.size(), 5u);
  std::set<std::string> names;
  for (const auto& e : mix) names.insert(e.workload);
  EXPECT_TRUE(names.count("resnet56"));
  EXPECT_TRUE(names.count("resnet50"));
  EXPECT_TRUE(names.count("bert-base"));
  EXPECT_TRUE(names.count("transformer"));
}

TEST(Table3Mix, BatchOptionsMatchPaper) {
  for (const auto& e : table3_mix()) {
    if (e.workload == "resnet56") {
      EXPECT_EQ(e.batch_sizes, (std::vector<std::int64_t>{64, 128}));
    }
    if (e.workload == "transformer") {
      EXPECT_EQ(e.batch_sizes.back(), 65536);
    }
  }
}

TEST(PoissonTrace, DeterministicForSeed) {
  TraceOptions opt;
  opt.seed = 7;
  const auto a = poisson_trace(opt);
  const auto b = poisson_trace(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].workload, b[i].workload);
    EXPECT_EQ(a[i].global_batch, b[i].global_batch);
  }
}

TEST(PoissonTrace, ArrivalsIncreaseAndMatchRate) {
  TraceOptions opt;
  opt.num_jobs = 200;
  opt.jobs_per_hour = 12.0;
  const auto t = poisson_trace(opt);
  for (std::size_t i = 1; i < t.size(); ++i)
    EXPECT_GT(t[i].arrival_s, t[i - 1].arrival_s);
  // Mean interarrival ~ 300 s.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < t.size(); ++i)
    gaps.push_back(t[i].arrival_s - t[i - 1].arrival_s);
  EXPECT_NEAR(mean(gaps), 300.0, 60.0);
}

TEST(PoissonTrace, PrioritiesFromPaperSet) {
  TraceOptions opt;
  opt.num_jobs = 100;
  std::set<double> prios;
  for (const auto& j : poisson_trace(opt)) prios.insert(j.priority);
  for (double p : prios) EXPECT_TRUE(p == 1.0 || p == 5.0 || p == 10.0);
  EXPECT_GE(prios.size(), 2u);
}

TEST(PoissonTrace, BatchesComeFromWorkloadOptions) {
  TraceOptions opt;
  opt.num_jobs = 100;
  for (const auto& j : poisson_trace(opt)) {
    bool found = false;
    for (const auto& e : table3_mix()) {
      if (e.workload != j.workload) continue;
      for (auto b : e.batch_sizes) found |= (b == j.global_batch);
    }
    EXPECT_TRUE(found) << j.workload << " batch " << j.global_batch;
  }
}

TEST(PoissonTrace, StepsScaleApplies) {
  TraceOptions big;
  big.seed = 9;
  TraceOptions small = big;
  small.steps_scale = 0.1;
  const auto a = poisson_trace(big);
  const auto b = poisson_trace(small);
  double ra = 0, rb = 0;
  for (const auto& j : a) ra += static_cast<double>(j.total_steps);
  for (const auto& j : b) rb += static_cast<double>(j.total_steps);
  EXPECT_LT(rb, ra * 0.2);
}

TEST(PoissonTrace, SeedChangesTrace) {
  TraceOptions a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(poisson_trace(a)[0].arrival_s, poisson_trace(b)[0].arrival_s);
}

TEST(PoissonTrace, Validation) {
  TraceOptions bad;
  bad.num_jobs = 0;
  EXPECT_THROW(poisson_trace(bad), VfError);
}

}  // namespace
}  // namespace vf
