// Allocation throughput estimation shared by all schedulers.
#include <gtest/gtest.h>

#include <cmath>

#include "sched/throughput.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

const ModelProfile& resnet() { return model_profile("resnet50"); }

TEST(Allocation, TotalsAndDescribe) {
  Allocation a = Allocation::of(DeviceType::kV100, 2);
  a.per_type[DeviceType::kP100] = 3;
  EXPECT_EQ(a.total(), 5);
  EXPECT_TRUE(a.heterogeneous());
  EXPECT_EQ(a.describe(), "2xV100+3xP100");
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(Allocation{}.empty());
  EXPECT_EQ(Allocation{}.describe(), "(none)");
}

TEST(Allocation, OfZeroIsEmpty) {
  EXPECT_TRUE(Allocation::of(DeviceType::kV100, 0).empty());
}

TEST(AllocationThroughput, EmptyAllocationIsZero) {
  EXPECT_DOUBLE_EQ(allocation_throughput(resnet(), 1024, Allocation{}), 0.0);
  EXPECT_TRUE(std::isinf(allocation_step_time_s(resnet(), 1024, Allocation{})));
}

TEST(AllocationThroughput, MoreGpusFaster) {
  const double one = allocation_throughput(resnet(), 2048, Allocation::of(DeviceType::kV100, 1));
  const double four = allocation_throughput(resnet(), 2048, Allocation::of(DeviceType::kV100, 4));
  EXPECT_GT(four, 2.5 * one);
  EXPECT_LT(four, 4.5 * one);
}

TEST(AllocationThroughput, V100BeatsP100) {
  const double v = allocation_throughput(resnet(), 2048, Allocation::of(DeviceType::kV100, 2));
  const double p = allocation_throughput(resnet(), 2048, Allocation::of(DeviceType::kP100, 2));
  EXPECT_NEAR(v / p, 4.0, 0.6);
}

TEST(AllocationThroughput, HeterogeneousAddsCapacity) {
  // The Fig 16 example: adding leftover P100s to a K80 job helps.
  Allocation k80only = Allocation::of(DeviceType::kK80, 16);
  Allocation mixed = k80only;
  mixed.per_type[DeviceType::kP100] = 5;
  const double base = allocation_throughput(resnet(), 8192, k80only);
  const double more = allocation_throughput(resnet(), 8192, mixed);
  // Paper Fig 16 reports +33.7% for this shape; our cost model scales
  // closer to the additive ideal (5 P100 ~ 20 K80-equivalents), so the
  // gain is larger. Direction and boundedness are what we assert.
  EXPECT_GT(more, base * 1.15);
  EXPECT_LT(more, base * 2.5);
}

TEST(AllocationThroughput, HeterogeneousBalancedNotBottlenecked) {
  // 1 V100 + 4 P100 have equal aggregate speed halves; the mixed
  // allocation should land near the sum, not at the slower type's pace.
  Allocation mixed = Allocation::of(DeviceType::kV100, 1);
  mixed.per_type[DeviceType::kP100] = 4;
  const double v1 = allocation_throughput(resnet(), 4096, Allocation::of(DeviceType::kV100, 1));
  const double got = allocation_throughput(resnet(), 4096, mixed);
  EXPECT_GT(got, 1.5 * v1);
}

TEST(AllocationThroughput, LargeGlobalBatchFoldsIntoVns) {
  // 8192 on one V100 (frontier 256) requires 32 VNs; must not throw.
  const double t = allocation_step_time_s(resnet(), 8192, Allocation::of(DeviceType::kV100, 1));
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(ReferenceThroughput, PositiveAndStable) {
  const double r = reference_throughput(resnet(), 2048);
  EXPECT_GT(r, 0.0);
  EXPECT_DOUBLE_EQ(r, reference_throughput(resnet(), 2048));
}

TEST(AllocationThroughput, CommOverheadGrowsWithWorld) {
  // Fixed total capacity, more participants -> more sync time.
  const double two = allocation_step_time_s(resnet(), 4096, Allocation::of(DeviceType::kV100, 2));
  LinkSpec slow;
  slow.bandwidth_bytes = 1e8;  // 100 MB/s: comm-dominated
  const double two_slow =
      allocation_step_time_s(resnet(), 4096, Allocation::of(DeviceType::kV100, 2), slow);
  EXPECT_GT(two_slow, two);
}

}  // namespace
}  // namespace vf
