// ClusterController: the one device economy. Covers the grant/lease
// protocol (fake + real holders), the defensive over-commit and
// serve-band checks, the static-partition baseline, fault-driven
// re-grants with zero loss, and bit-identical replay across host worker
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "fault/fault.h"
#include "sched/cluster.h"
#include "sched/wfs.h"
#include "serve/arrival.h"
#include "serve/server.h"
#include "util/common.h"
#include "workloads/profiles.h"
#include "workloads/tasks.h"

namespace vf {
namespace {

constexpr std::uint64_t kSeed = 42;

ClusterInventory v100s(std::int64_t n) {
  ClusterInventory c;
  c.per_type[DeviceType::kV100] = n;
  return c;
}

JobSpec train_spec(std::int64_t id, double arrival, std::int64_t steps,
                   std::int64_t demand, double priority = 1.0) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = priority;
  j.workload = "resnet56";
  j.profile = model_profile("resnet56");
  j.global_batch = 128;
  j.total_steps = steps;
  j.demand_gpus = demand;
  return j;
}

JobSpec serve_spec(std::int64_t id, std::int64_t demand, std::int64_t min_gpus,
                   std::int64_t max_gpus, double priority = 10.0) {
  JobSpec j;
  j.id = id;
  j.kind = JobKind::kServe;
  j.priority = priority;
  j.demand_gpus = demand;
  j.min_gpus = min_gpus;
  j.max_gpus = max_gpus;
  return j;
}

/// Minimal scripted lease: reports a fixed backlog until `busy_until_s`,
/// then drains. Lets the contract tests run without a full serving rig.
struct FakeServeLease : sched::DeviceLease {
  double busy_until_s = 2.0;
  std::int64_t queue_depth = 100;
  std::int64_t max_devices = 8;
  double clock_ = 0.0;
  std::int64_t devices_ = 1;
  std::vector<std::int64_t> grants_seen;

  double next_event_s() const override {
    return clock_ < busy_until_s ? busy_until_s
                                 : std::numeric_limits<double>::infinity();
  }
  void pump(double horizon_s) override {
    if (horizon_s < std::numeric_limits<double>::infinity())
      clock_ = std::max(clock_, horizon_s);
  }
  sched::LoadSignal load() const override {
    sched::LoadSignal s;
    s.queue_depth = clock_ < busy_until_s ? queue_depth : 0;
    s.devices = devices_;
    s.min_devices = 1;
    s.max_devices = max_devices;
    s.high_watermark = 8;
    s.low_watermark = 1;
    s.drained = clock_ >= busy_until_s;
    return s;
  }
  double apply_grant(std::int64_t devices) override {
    if (devices == devices_) return 0.0;
    devices_ = devices;
    grants_seen.push_back(devices);
    return 0.1;
  }
  bool drained() const override { return clock_ >= busy_until_s; }
};

TEST(ClusterController, ValidatesConstructionAndSpecs) {
  ElasticWfsScheduler wfs;
  EXPECT_THROW(ClusterController(v100s(0), wfs), VfError);

  ClusterController c(v100s(4), wfs);
  c.add_train_job(train_spec(0, 0.0, 10, 2));
  EXPECT_THROW(c.add_train_job(train_spec(0, 0.0, 10, 2)), VfError);  // dup id
  EXPECT_THROW(c.add_train_job(serve_spec(1, 2, 1, 4)), VfError);  // wrong kind

  FakeServeLease lease;
  EXPECT_THROW(c.add_serve_job(train_spec(2, 0.0, 10, 2), lease), VfError);
  JobSpec bad = serve_spec(3, 2, /*min=*/0, /*max=*/4);
  EXPECT_THROW(c.add_serve_job(bad, lease), VfError);  // min_gpus < 1

  ClusterController empty(v100s(4), wfs);
  EXPECT_THROW(empty.run(), VfError);  // no jobs
}

TEST(ClusterController, OverCommittingPolicyFailsLoudly) {
  struct Greedy : Scheduler {
    std::map<std::int64_t, Allocation> schedule(
        const ClusterInventory&, const std::vector<const JobState*>& jobs,
        double) override {
      std::map<std::int64_t, Allocation> out;
      for (const JobState* j : jobs)
        out[j->spec.id] = Allocation::of(DeviceType::kV100, 100);
      return out;
    }
    std::string name() const override { return "greedy"; }
  } policy;
  ClusterController c(v100s(4), policy);
  c.add_train_job(train_spec(0, 0.0, 10, 2));
  EXPECT_THROW(c.run(), VfError);
}

TEST(ClusterController, ServeGrantOutsideLiveBandFailsLoudly) {
  // A policy that ignores serving jobs entirely grants them 0 devices —
  // below the latency-critical floor. The controller must refuse to
  // forward that to the lease.
  struct TrainOnly : Scheduler {
    std::map<std::int64_t, Allocation> schedule(
        const ClusterInventory&, const std::vector<const JobState*>&,
        double) override {
      return {};
    }
    std::string name() const override { return "train-only"; }
  } policy;
  ClusterController c(v100s(8), policy);
  FakeServeLease lease;
  c.add_serve_job(serve_spec(0, 2, 1, 8), lease);
  EXPECT_THROW(c.run(), VfError);
}

TEST(ClusterController, WfsGrowsBackloggedServingJob) {
  ElasticWfsScheduler wfs;
  ClusterOptions opts;
  opts.reeval_interval_s = 0.25;  // the fake lease has no internal events
  ClusterController c(v100s(16), wfs, opts);
  FakeServeLease lease;
  c.add_serve_job(serve_spec(0, 2, 1, 8), lease);
  c.add_train_job(train_spec(1, 0.0, 2000, 8));
  const ClusterReport report = c.run();

  // Sustained backlog over the high watermark must have doubled the
  // serving device-set toward its ceiling, through grants only.
  EXPECT_FALSE(lease.grants_seen.empty());
  EXPECT_GT(*std::max_element(lease.grants_seen.begin(), lease.grants_seen.end()),
            1);
  for (const GrantRecord& g : report.grants) {
    if (report.jobs[0].spec.id != g.job_id) continue;
    EXPECT_GE(g.to_devices, 1);
    EXPECT_LE(g.to_devices, 8);
  }
  EXPECT_TRUE(report.jobs[0].finished());
  EXPECT_TRUE(report.jobs[1].finished());
  EXPECT_GT(report.train_makespan_s, 0.0);
}

TEST(ClusterController, StaticPartitionPinsServingAtProvisionedSize) {
  ElasticWfsScheduler wfs;
  StaticPartitionScheduler policy(wfs, DeviceType::kV100);
  EXPECT_EQ(policy.name(), "static(elastic-wfs)");

  ClusterOptions opts;
  opts.reeval_interval_s = 0.25;
  ClusterController c(v100s(16), policy, opts);
  FakeServeLease lease;  // backlog wants 8, partition pins 4
  c.add_serve_job(serve_spec(0, /*demand=*/4, 1, 8), lease);
  c.add_train_job(train_spec(1, 0.0, 500, 12));
  const ClusterReport report = c.run();

  ASSERT_FALSE(report.grants.empty());
  for (const GrantRecord& g : report.grants) {
    if (g.job_id == 0) {
      EXPECT_EQ(g.to_devices, 4) << "partition must pin serving";
    }
  }
  EXPECT_EQ(lease.devices_, 4);
  EXPECT_TRUE(report.jobs[1].finished());
}

// ---------------------------------------------------------------------------
// Real serving rig (mrpc-sim proxy task, as tests/serve uses).
// ---------------------------------------------------------------------------

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;
};

Rig make_rig() {
  return Rig{make_task("mrpc-sim", kSeed), make_proxy_model("mrpc-sim", kSeed),
             make_recipe("mrpc-sim")};
}

VirtualFlowEngine make_engine(Rig& rig, std::int64_t devices, std::int64_t workers,
                              std::int64_t vns = 8) {
  EngineConfig cfg;
  cfg.seed = kSeed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(rig.model, *rig.recipe.optimizer, *rig.recipe.schedule,
                           *rig.task.train, model_profile("bert-base"),
                           make_devices(DeviceType::kV100, devices),
                           VnMapping::even(vns, devices, rig.recipe.global_batch),
                           cfg);
}

serve::ServerConfig serve_config() {
  serve::ServerConfig cfg;
  cfg.continuous = true;
  cfg.queue_capacity = 4096;
  cfg.batch = {/*max_batch=*/64, /*max_wait_s=*/0.01};
  cfg.deadline_s = 0.5;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = 8;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

std::vector<serve::InferRequest> burst_trace(const Dataset& pool) {
  return serve::phased_poisson_trace(
      kSeed,
      {{/*rate_rps=*/300.0, /*duration_s=*/0.5},
       {/*rate_rps=*/2500.0, /*duration_s=*/1.0},
       {/*rate_rps=*/150.0, /*duration_s=*/2.0}},
      pool.size());
}

struct CoschedResult {
  std::vector<GrantRecord> grants;
  std::vector<double> latencies;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  double train_completion_s = 0.0;
  double end_s = 0.0;
};

CoschedResult run_cosched(std::int64_t workers) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/1, workers);
  serve::Server server(engine, *rig.task.val, serve_config());
  server.set_cluster_governed();
  const auto trace = burst_trace(*rig.task.val);  // begin() keeps a pointer
  server.begin(trace);

  ElasticWfsScheduler wfs;
  ClusterController c(v100s(12), wfs);
  c.add_serve_job(serve_spec(0, /*demand=*/4, 1, 8), server);
  c.add_train_job(train_spec(1, 0.0, 1500, 4));
  const ClusterReport report = c.run();
  server.finish();

  CoschedResult out;
  out.grants = report.grants;
  for (const serve::RequestRecord& r : server.slo().records()) {
    if (!r.rejected) out.latencies.push_back(r.latency_s());
  }
  out.completed = server.slo().completed();
  out.rejected = server.slo().rejected();
  out.train_completion_s = report.jobs[1].completion_s;
  out.end_s = report.end_s;
  return out;
}

TEST(ClusterController, ServerLeaseEndToEnd) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, /*workers=*/0);
  serve::Server server(engine, *rig.task.val, serve_config());
  server.set_cluster_governed();
  const auto trace = burst_trace(*rig.task.val);
  ASSERT_GT(trace.size(), 100u);
  server.begin(trace);

  ElasticWfsScheduler wfs;
  ClusterController c(v100s(12), wfs);
  c.add_serve_job(serve_spec(0, 4, 1, 8), server);
  c.add_train_job(train_spec(1, 0.0, 1500, 4));
  const ClusterReport report = c.run();
  server.finish();

  // Conservation: every request was served or explicitly rejected, and
  // the lease drained before the controller retired it.
  EXPECT_EQ(server.slo().completed() + server.slo().rejected(),
            static_cast<std::int64_t>(trace.size()));
  EXPECT_GT(server.slo().completed(), 0);
  EXPECT_TRUE(server.drained());
  EXPECT_TRUE(report.jobs[0].finished());
  EXPECT_TRUE(report.jobs[1].finished());
  EXPECT_GT(report.train_makespan_s, 0.0);

  // Every grant stayed inside the serving band; the burst forced growth.
  bool grew = false;
  for (const GrantRecord& g : report.grants) {
    if (g.job_id != 0) continue;
    EXPECT_GE(g.to_devices, 1);
    EXPECT_LE(g.to_devices, 8);
    if (g.to_devices > g.from_devices) grew = true;
  }
  EXPECT_TRUE(grew) << "the burst must force at least one growth grant";
}

TEST(ClusterController, BitIdenticalAcrossWorkerCounts) {
  const CoschedResult base = run_cosched(/*workers=*/0);
  ASSERT_GT(base.completed, 0);
  for (std::int64_t workers : {2, 8}) {
    const CoschedResult other = run_cosched(workers);
    EXPECT_EQ(base.completed, other.completed) << "workers=" << workers;
    EXPECT_EQ(base.rejected, other.rejected) << "workers=" << workers;
    EXPECT_EQ(base.latencies, other.latencies) << "workers=" << workers;
    EXPECT_EQ(base.train_completion_s, other.train_completion_s)
        << "workers=" << workers;
    EXPECT_EQ(base.end_s, other.end_s) << "workers=" << workers;
    ASSERT_EQ(base.grants.size(), other.grants.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < base.grants.size(); ++i) {
      EXPECT_EQ(base.grants[i].time_s, other.grants[i].time_s);
      EXPECT_EQ(base.grants[i].job_id, other.grants[i].job_id);
      EXPECT_EQ(base.grants[i].to_devices, other.grants[i].to_devices);
      EXPECT_EQ(base.grants[i].migration_s, other.grants[i].migration_s);
    }
  }
}

TEST(ClusterController, FaultKillForcesRegrantWithZeroLoss) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, 1, 0);
  serve::Server server(engine, *rig.task.val, serve_config());

  fault::FaultPlan plan;
  plan.kill(/*time_s=*/0.8, /*device=*/0).recover(/*time_s=*/1.6);
  fault::FaultInjector injector(std::move(plan));
  server.set_fault_injector(&injector);

  server.set_cluster_governed();
  const auto trace = burst_trace(*rig.task.val);
  server.begin(trace);

  ElasticWfsScheduler wfs;
  ClusterController c(v100s(12), wfs);
  c.add_serve_job(serve_spec(0, 4, 1, 8), server);
  c.add_train_job(train_spec(1, 0.0, 1500, 4));
  const ClusterReport report = c.run();
  server.finish();

  // Zero loss: the kill evicted and requeued work, but every request is
  // accounted for and the trace fully drained.
  EXPECT_EQ(server.slo().completed() + server.slo().rejected(),
            static_cast<std::int64_t>(trace.size()));
  EXPECT_TRUE(server.drained());
  EXPECT_TRUE(report.jobs[1].finished()) << "training rides through the fault";

  // The policy re-granted after the kill: the controller saw the capped
  // ceiling / shrunk device-set through load() and kept governing.
  bool regranted = false;
  for (const GrantRecord& g : report.grants) {
    if (g.job_id == 0 && g.time_s > 0.8) regranted = true;
  }
  EXPECT_TRUE(regranted) << "no grant after the kill — controller stopped governing";
}

TEST(EngineTrainLease, RunsGrantedEngineToCompletion) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/2, /*workers=*/0);
  EngineTrainLease lease(engine, /*total_steps=*/25, DeviceType::kV100);

  JobSpec spec = train_spec(0, 0.0, 25, 2);
  spec.workload = "bert-base";
  spec.profile = model_profile("bert-base");
  spec.global_batch = rig.recipe.global_batch;

  ElasticWfsScheduler wfs;
  ClusterController c(v100s(4), wfs);
  c.add_train_lease(spec, lease);
  const ClusterReport report = c.run();

  EXPECT_EQ(lease.steps_done(), 25);
  EXPECT_TRUE(lease.drained());
  EXPECT_TRUE(report.jobs[0].finished());
  EXPECT_NEAR(report.jobs[0].completion_s, engine.sim_time_s(), 1e-9)
      << "controller completion stamps at the engine's virtual clock";
  EXPECT_GT(report.train_makespan_s, 0.0);
}

TEST(EngineTrainLease, FullPreemptionPausesAndResumes) {
  Rig rig = make_rig();
  VirtualFlowEngine engine = make_engine(rig, /*devices=*/2, /*workers=*/0);
  EngineTrainLease lease(engine, /*total_steps=*/40, DeviceType::kV100);

  JobSpec lease_spec = train_spec(0, 0.0, 40, 2, /*priority=*/1.0);
  lease_spec.workload = "bert-base";
  lease_spec.profile = model_profile("bert-base");
  lease_spec.global_batch = rig.recipe.global_batch;

  // A much heavier-weighted analytic job arrives mid-run; WFS water-fills
  // the 2-GPU cluster as 10:1 which rounds to 2/0 — the lease is fully
  // preempted (grant 0) and re-granted when the heavy job completes.
  ElasticWfsScheduler policy;
  ClusterController c(v100s(2), policy);
  c.add_train_lease(lease_spec, lease);
  c.add_train_job(train_spec(1, 0.5, 400, 2, /*priority=*/10.0));
  const ClusterReport report = c.run();

  EXPECT_EQ(lease.steps_done(), 40);
  EXPECT_TRUE(report.jobs[0].finished());
  EXPECT_TRUE(report.jobs[1].finished());
  EXPECT_GT(report.jobs[0].completion_s, report.jobs[1].completion_s)
      << "preempted lease finishes after the high-priority job";

  bool preempted = false, resumed = false;
  for (const GrantRecord& g : report.grants) {
    if (g.job_id != 0) continue;
    if (g.to_devices == 0) preempted = true;
    if (preempted && g.to_devices > 0) resumed = true;
  }
  EXPECT_TRUE(preempted) << "priority arrival must fully preempt the lease";
  EXPECT_TRUE(resumed) << "lease must be re-granted after the job completes";
}

}  // namespace
}  // namespace vf
