// Elastic WFS (Algorithm 1) and the static priority baseline.
#include <gtest/gtest.h>

#include "sched/simulator.h"
#include "sched/wfs.h"
#include "util/common.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

JobSpec job(std::int64_t id, double arrival, std::int64_t steps, std::int64_t demand,
            double priority) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = priority;
  j.workload = "resnet56";
  j.profile = model_profile("resnet56");
  j.global_batch = 128;
  j.total_steps = steps;
  j.demand_gpus = demand;
  return j;
}

/// Job sized to run for ~duration_s at its full demand.
JobSpec job_lasting(std::int64_t id, double arrival, double duration_s,
                    std::int64_t demand, double priority) {
  JobSpec j = job(id, arrival, 1, demand, priority);
  const double st = allocation_step_time_s(j.profile, j.global_batch,
                                           Allocation::of(DeviceType::kV100, demand));
  j.total_steps = std::max<std::int64_t>(1, static_cast<std::int64_t>(duration_s / st));
  return j;
}

JobState state_of(const JobSpec& spec) {
  JobState s;
  s.spec = spec;
  s.remaining_steps = static_cast<double>(spec.total_steps);
  return s;
}

ClusterInventory v100s(std::int64_t n) {
  ClusterInventory c;
  c.per_type[DeviceType::kV100] = n;
  return c;
}

TEST(WeightedFairShares, EqualWeightsEqualShares) {
  auto a = state_of(job(0, 0, 10, 4, 1.0));
  auto b = state_of(job(1, 0, 10, 4, 1.0));
  const auto shares = weighted_fair_shares(8, {&a, &b});
  EXPECT_EQ(shares.at(0), 4);
  EXPECT_EQ(shares.at(1), 4);
}

TEST(WeightedFairShares, ProportionalToWeights) {
  auto a = state_of(job(0, 0, 10, 8, 1.0));
  auto b = state_of(job(1, 0, 10, 8, 3.0));
  const auto shares = weighted_fair_shares(8, {&a, &b});
  EXPECT_EQ(shares.at(0), 2);
  EXPECT_EQ(shares.at(1), 6);
}

TEST(WeightedFairShares, CappedAtDemandWithRedistribution) {
  // Job 1's fair share exceeds its demand of 2; the excess flows to job 0.
  auto a = state_of(job(0, 0, 10, 8, 1.0));
  auto b = state_of(job(1, 0, 10, 2, 3.0));
  const auto shares = weighted_fair_shares(8, {&a, &b});
  EXPECT_EQ(shares.at(1), 2);
  EXPECT_EQ(shares.at(0), 6);
}

TEST(WeightedFairShares, IntegerizationConservesTotal) {
  auto a = state_of(job(0, 0, 10, 8, 1.0));
  auto b = state_of(job(1, 0, 10, 8, 1.0));
  auto c = state_of(job(2, 0, 10, 8, 1.0));
  const auto shares = weighted_fair_shares(8, {&a, &b, &c});
  std::int64_t total = 0;
  for (const auto& [id, s] : shares) total += s;
  EXPECT_EQ(total, 8);
  for (const auto& [id, s] : shares) EXPECT_GE(s, 2);
}

TEST(WeightedFairShares, NeverExceedsDemand) {
  auto a = state_of(job(0, 0, 10, 1, 10.0));
  auto b = state_of(job(1, 0, 10, 1, 1.0));
  const auto shares = weighted_fair_shares(8, {&a, &b});
  EXPECT_EQ(shares.at(0), 1);
  EXPECT_EQ(shares.at(1), 1);
}

TEST(WeightedFairShares, EmptyJobs) {
  EXPECT_TRUE(weighted_fair_shares(8, {}).empty());
}

TEST(ElasticWfs, HighPriorityArrivalDownsizesLowerPriority) {
  // Fig 10a: when the high-priority job arrives, running jobs shrink
  // immediately instead of blocking it.
  ElasticWfsScheduler wfs;
  auto res = simulate(v100s(4),
                      {job_lasting(0, 0.0, 300.0, 4, 1.0),
                       job_lasting(1, 30.0, 300.0, 4, 10.0)},
                      wfs);
  const JobState& high = res.jobs[1];
  EXPECT_LT(high.first_start_s - high.spec.arrival_s, 1.0)
      << "high-priority job should start almost immediately";
  // Job 0 must have been resized down at the arrival.
  EXPECT_GE(res.jobs[0].resizes, 1);
}

TEST(ElasticWfs, BeatsPriorityOnMakespanForFig10Shape) {
  // Three jobs on 4 GPUs in the paper's arrival pattern: elastic WFS
  // should cut both makespan and the high-priority job's JCT.
  const std::vector<JobSpec> trace = {
      job_lasting(0, 0.0, 500.0, 4, 1.0),    // BERT-SST2-like
      job_lasting(1, 60.0, 700.0, 2, 5.0),   // ResNet-56-like
      job_lasting(2, 540.0, 800.0, 4, 10.0), // BERT-QNLI-like, highest priority
  };
  ElasticWfsScheduler wfs;
  PriorityScheduler prio;
  const auto elastic = simulate(v100s(4), trace, wfs);
  const auto fixed = simulate(v100s(4), trace, prio);

  EXPECT_LT(elastic.makespan_s, fixed.makespan_s);
  const double jct_high_elastic = elastic.jobs[2].completion_s - elastic.jobs[2].spec.arrival_s;
  const double jct_high_fixed = fixed.jobs[2].completion_s - fixed.jobs[2].spec.arrival_s;
  EXPECT_LT(jct_high_elastic, jct_high_fixed);
  EXPECT_GT(elastic.avg_utilization, fixed.avg_utilization);
}

TEST(ElasticWfs, NoHigherPriorityJobHurtByAdmission) {
  // Admission control (Algorithm 1 lines 5-9): admitting a low-priority
  // job must not shrink a higher-priority job below its fair share.
  ElasticWfsScheduler wfs;
  auto res = simulate(v100s(4),
                      {job_lasting(0, 0.0, 400.0, 4, 10.0),
                       job_lasting(1, 10.0, 100.0, 4, 1.0)},
                      wfs);
  // The high-priority job holds 3+ GPUs throughout (fair share with the
  // 1:10 weights is > 3.6 -> integerized 4).
  for (const AllocSegment& seg : res.jobs[0].timeline)
    EXPECT_GE(seg.alloc.total(), 3) << "high-priority job squeezed at t=" << seg.t0;
}

TEST(PriorityStatic, NoBackfillBehindBlockedHighPriorityJob) {
  // Fig 10b's pathology: a blocked high-priority job leaves GPUs idle.
  PriorityScheduler prio;
  const std::vector<JobSpec> trace = {
      job_lasting(0, 0.0, 200.0, 4, 1.0),   // occupies everything
      job_lasting(1, 10.0, 200.0, 4, 10.0), // high priority, blocked
      job_lasting(2, 20.0, 200.0, 2, 1.0),  // low priority, must wait
  };
  auto res = simulate(v100s(4), trace, prio);
  // Job 1 starts exactly when job 0 finishes; job 2 cannot jump ahead of
  // job 1 even when 2 GPUs are idle... there are no idle GPUs while 0
  // runs, but after 0 completes, 1 takes all 4, and 2 waits for 1.
  EXPECT_NEAR(res.jobs[1].first_start_s, res.jobs[0].completion_s, 1e-6);
  EXPECT_GE(res.jobs[2].first_start_s, res.jobs[1].completion_s - 1e-6);
}

TEST(PriorityStatic, NeverResizes) {
  PriorityScheduler prio;
  auto res = simulate(v100s(4),
                      {job(0, 0.0, 500, 2, 1.0), job(1, 5.0, 500, 2, 5.0)}, prio);
  for (const JobState& j : res.jobs) EXPECT_EQ(j.resizes, 0);
}

}  // namespace
}  // namespace vf
