// Gavel-LAS rounds and the heterogeneous-allocation extension (§6.5.2).
#include <gtest/gtest.h>

#include "sched/gavel.h"
#include "util/common.h"
#include "util/stats.h"
#include "workloads/profiles.h"

namespace vf {
namespace {

JobSpec job(std::int64_t id, double arrival, std::int64_t steps, std::int64_t demand) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = 1.0;
  j.workload = "resnet50";
  j.profile = model_profile("resnet50");
  j.global_batch = 2048;
  j.total_steps = steps;
  j.demand_gpus = demand;
  return j;
}

ClusterInventory paper_cluster() {
  // §6.5.2: 4 V100 + 8 P100 + 16 K80.
  ClusterInventory c;
  c.per_type[DeviceType::kV100] = 4;
  c.per_type[DeviceType::kP100] = 8;
  c.per_type[DeviceType::kK80] = 16;
  return c;
}

TEST(Gavel, SingleJobGetsBestType) {
  GavelScheduler gavel({});
  auto res = simulate(paper_cluster(), {job(0, 0.0, 600, 4)}, gavel);
  ASSERT_FALSE(res.jobs[0].timeline.empty());
  const Allocation& a = res.jobs[0].timeline[0].alloc;
  EXPECT_FALSE(a.heterogeneous());
  EXPECT_EQ(a.per_type.count(DeviceType::kV100), 1u) << "should pick the fastest type";
}

TEST(Gavel, HomogeneousModeNeverMixesTypes) {
  GavelScheduler gavel({});
  const std::vector<JobSpec> trace = {job(0, 0.0, 400, 4), job(1, 10.0, 400, 8),
                                      job(2, 20.0, 400, 4)};
  auto res = simulate(paper_cluster(), trace, gavel);
  for (const JobState& j : res.jobs)
    for (const AllocSegment& s : j.timeline)
      EXPECT_FALSE(s.alloc.heterogeneous());
}

TEST(Gavel, HeterogeneousModeUsesLeftoverTypes) {
  GavelOptions opt;
  opt.heterogeneous_allocations = true;
  GavelScheduler gavel(opt);
  // One lone job: with +HT it can take V100s plus leftover P100s.
  auto res = simulate(paper_cluster(), {job(0, 0.0, 1000, 4)}, gavel);
  bool saw_hetero = false;
  for (const AllocSegment& s : res.jobs[0].timeline)
    saw_hetero |= s.alloc.heterogeneous();
  EXPECT_TRUE(saw_hetero);
}

TEST(Gavel, HtImprovesJctAtLowLoad) {
  // Fig 15's low-arrival-rate regime: few jobs, leftover GPUs -> +HT wins.
  const std::vector<JobSpec> trace = {job(0, 0.0, 1200, 4), job(1, 100.0, 1200, 4)};
  GavelScheduler plain({});
  GavelOptions ho;
  ho.heterogeneous_allocations = true;
  GavelScheduler ht(ho);
  const auto a = simulate(paper_cluster(), trace, plain);
  const auto b = simulate(paper_cluster(), trace, ht);
  EXPECT_LT(mean(b.jcts()), mean(a.jcts()));
}

TEST(Gavel, RoundBoundariesQuantizeChanges) {
  GavelOptions opt;
  opt.round_s = 360.0;
  GavelScheduler gavel(opt);
  const std::vector<JobSpec> trace = {job(0, 0.0, 2000, 4), job(1, 30.0, 2000, 4)};
  auto res = simulate(paper_cluster(), trace, gavel);
  // Job 1 arrives mid-round; its start should wait for the next boundary
  // (360 s), not happen at the 30 s arrival.
  EXPECT_NEAR(res.jobs[1].first_start_s, 360.0, 1.0);
}

TEST(Gavel, LasSharesOverTime) {
  // Two identical jobs, cluster big enough for one at full demand: LAS
  // alternates or splits; both must finish within a similar span.
  ClusterInventory small;
  small.per_type[DeviceType::kV100] = 4;
  GavelScheduler gavel({});
  const std::vector<JobSpec> trace = {job(0, 0.0, 1500, 4), job(1, 0.0, 1500, 4)};
  auto res = simulate(small, trace, gavel);
  const double jct0 = res.jobs[0].completion_s - res.jobs[0].spec.arrival_s;
  const double jct1 = res.jobs[1].completion_s - res.jobs[1].spec.arrival_s;
  EXPECT_LT(std::abs(jct0 - jct1) / std::max(jct0, jct1), 0.5);
}

TEST(Gavel, RestartPenaltyConfigured) {
  GavelOptions opt;
  opt.restart_penalty_s = 30.0;
  GavelScheduler g(opt);
  EXPECT_DOUBLE_EQ(g.resize_penalty_s(), 30.0);
  EXPECT_DOUBLE_EQ(g.round_interval_s(), 360.0);
  EXPECT_EQ(g.name(), "gavel");
  GavelOptions h;
  h.heterogeneous_allocations = true;
  EXPECT_EQ(GavelScheduler(h).name(), "gavel+ht");
}

TEST(Gavel, InvalidRoundThrows) {
  GavelOptions opt;
  opt.round_s = 0.0;
  EXPECT_THROW(GavelScheduler{opt}, VfError);
}

}  // namespace
}  // namespace vf
