// The shared elastic hysteresis rule (sched/elastic.h): one pure function
// drives both the single-model Server and the multi-model ColocatedServer,
// so its decision table is pinned here once.
#include <gtest/gtest.h>

#include "sched/elastic.h"

namespace vf::sched {
namespace {

constexpr std::int64_t kHigh = 64;
constexpr std::int64_t kLow = 4;
constexpr std::int64_t kMin = 1;
constexpr std::int64_t kMax = 8;

std::int64_t target(std::int64_t depth, std::int64_t inflight, std::int64_t cur) {
  return elastic_resize_target(depth, inflight, cur, kHigh, kLow, kMin, kMax);
}

TEST(ElasticResizeTarget, GrowsByDoublingAtTheHighWatermark) {
  EXPECT_EQ(target(kHigh, 0, 1), 2);
  EXPECT_EQ(target(kHigh + 100, 0, 2), 4);
  EXPECT_EQ(target(kHigh - 1, 0, 1), 1) << "below the watermark: no growth";
}

TEST(ElasticResizeTarget, GrowsOnSystemLoadNotQueueDepthAlone) {
  // The PR-6 blind spot: under continuous batching a burst is admitted
  // straight into in-flight slots, so the queue stays shallow while every
  // slot saturates. The grow arm must read queue + in-flight, symmetric
  // with the shrink arm — these assertions fail against the queue-only
  // rule (it returns cur_devices for all three).
  EXPECT_EQ(target(0, kHigh, 1), 2) << "a saturated ledger alone must grow";
  EXPECT_EQ(target(kHigh / 2, kHigh / 2, 1), 2)
      << "half queued + half in flight is the same pressure";
  EXPECT_EQ(target(0, kHigh - 1, 1), 1) << "below the watermark: no growth";
}

TEST(ElasticResizeTarget, GrowthIsCappedAtMaxDevices) {
  EXPECT_EQ(target(kHigh, 0, 8), 8) << "already at the ceiling";
  EXPECT_EQ(target(kHigh, 0, 5), 8) << "doubling clamps to max, not past it";
}

TEST(ElasticResizeTarget, ShrinksOnSystemLoadNotQueueDepthAlone) {
  // An empty queue with a full in-flight batch is a busy system: mid-burst
  // the queue drains the instant requests are admitted into slots, and
  // shrinking on that illusion of idleness oscillates the device set.
  EXPECT_EQ(target(0, 64, 8), 8) << "in-flight load must block the shrink";
  EXPECT_EQ(target(0, kLow + 1, 8), 8);
  EXPECT_EQ(target(0, kLow, 8), 4) << "queue + in-flight at the low watermark";
  EXPECT_EQ(target(2, 2, 8), 4);
  EXPECT_EQ(target(0, 0, 8), 4);
}

TEST(ElasticResizeTarget, ShrinkIsFlooredAtMinDevices) {
  EXPECT_EQ(target(0, 0, 1), 1) << "already at the floor";
  EXPECT_EQ(elastic_resize_target(0, 0, 3, kHigh, kLow, 2, kMax), 2)
      << "halving clamps to min, not past it";
}

TEST(ElasticResizeTarget, HoldsInsideTheHysteresisBand) {
  for (std::int64_t depth = kLow + 1; depth < kHigh; depth += 7)
    EXPECT_EQ(target(depth, 0, 4), 4) << "depth " << depth;
}

TEST(ElasticResizeTarget, GrowthWinsWhenBothConditionsHold) {
  // Degenerate watermarks can make both branches true; growth is checked
  // first (pressure beats thrift).
  EXPECT_EQ(elastic_resize_target(5, 0, 4, 5, 5, 1, 8), 8);
}

}  // namespace
}  // namespace vf::sched
