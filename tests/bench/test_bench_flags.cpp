// bench_util Flags: unknown or malformed flags must fail loudly — a clear
// stderr diagnosis and exit code kUsageErrorExit (2) — never a silent
// ignore and never an uncaught-exception SIGABRT. Every bench's smoke
// reliability rides on this: a typoed flag in a sweep script or CI line
// must kill the run legibly instead of benchmarking the wrong config.
#include <gtest/gtest.h>

#include <vector>

#include "common/bench_util.h"

namespace vf::bench {
namespace {

Flags make_flags(std::vector<const char*> args,
                 const std::map<std::string, std::string>& known = {
                     {"steps", "steps"}, {"rate", "rate"}}) {
  args.insert(args.begin(), "bench");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()), known);
}

TEST(BenchFlags, ParsesKnownFlags) {
  const Flags f = make_flags({"--steps=7", "--rate=2.5"});
  EXPECT_EQ(f.get_int("steps", 0), 7);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
  EXPECT_FALSE(f.smoke());
  EXPECT_FALSE(f.help_requested());
}

TEST(BenchFlags, SmokeIsAlwaysKnownAndShrinksDefaults) {
  const Flags f = make_flags({"--smoke=1"});
  EXPECT_TRUE(f.smoke());
  EXPECT_EQ(f.get_int("steps", 100, 3), 3);
  const Flags full = make_flags({});
  EXPECT_EQ(full.get_int("steps", 100, 3), 100);
}

TEST(BenchFlagsDeathTest, UnknownFlagExitsTwoWithClearError) {
  EXPECT_EXIT(make_flags({"--stpes=7"}), ::testing::ExitedWithCode(kUsageErrorExit),
              "unknown flag --stpes");
}

TEST(BenchFlagsDeathTest, MissingEqualsExitsTwo) {
  EXPECT_EXIT(make_flags({"--steps"}), ::testing::ExitedWithCode(kUsageErrorExit),
              "missing '='");
}

TEST(BenchFlagsDeathTest, NonFlagArgumentExitsTwo) {
  EXPECT_EXIT(make_flags({"steps=7"}), ::testing::ExitedWithCode(kUsageErrorExit),
              "flags look like --key=value");
}

TEST(BenchFlagsDeathTest, ErrorListsKnownFlags) {
  // The diagnosis includes the known-flag list (matched per line: the
  // death-test regex does not span newlines).
  EXPECT_EXIT(make_flags({"--bogus=1"}), ::testing::ExitedWithCode(kUsageErrorExit),
              "--steps=");
}

}  // namespace
}  // namespace vf::bench
