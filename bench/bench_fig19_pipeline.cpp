// Figure 19 (§7): model parallelism with virtual nodes. Folding the
// data-parallel replicas of each pipeline stage into sequential virtual
// nodes halves (or better) the accelerator requirement at a proportional
// step-time cost.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"batch", "global batch (default 512)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 19: model parallelism + virtual nodes");
    return 0;
  }
  const std::int64_t B = flags.get_int("batch", 512);
  const DeviceSpec& dev = device_spec(DeviceType::kV100);
  const ModelProfile& m = model_profile("bert-large");

  print_banner(std::cout, "Fig 19: bert-large, 4 pipeline stages, global batch " +
                              std::to_string(B));
  Table table({"config", "VN fold", "GPUs", "step time (s)", "throughput (ex/s)",
               "stage peak mem"});
  PipelineConfig base;
  base.stages = 4;
  base.replicas_per_stage = 8;
  base.vns_per_replica = 1;
  base.global_batch = B;

  PipelineCost first{};
  for (const std::int64_t fold : {1, 2, 4, 8}) {
    PipelineConfig c = base;
    c.vns_per_replica = fold;
    const PipelineCost r = pipeline_cost(dev, m, c);
    if (fold == 1) first = r;
    table.row()
        .cell(fold == 1 ? "data parallel (today)" : "virtual-node fold")
        .cell(fold)
        .cell(r.devices_required)
        .cell(r.step_time_s, 3)
        .cell(r.throughput, 1)
        .cell(fmt_bytes(r.peak_stage_mem_bytes));
  }
  table.print(std::cout);

  PipelineConfig folded = base;
  folded.vns_per_replica = 2;
  const PipelineCost half = pipeline_cost(dev, m, folded);
  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("GPU requirement at 2-way fold (vs 32)",
                         static_cast<double>(half.devices_required), 16.0);
  std::printf("  resource requirement halves with a 2-way virtual-node fold: %s\n",
              half.devices_required * 2 == first.devices_required ? "YES" : "NO");
  std::printf(
      "  (Pipelining the virtual nodes as in GPipe would recover part of the\n"
      "  step-time cost — noted as future work in §7.)\n");
  return 0;
}
