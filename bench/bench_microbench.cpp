// Google-benchmark microbenchmarks for the hot paths of the library: the
// tensor kernels behind training, the ordered gradient reduction, the data
// pipeline, and a full engine step at several virtual-node counts (the
// host-side cost of virtual-node processing itself — the paper's claim is
// that aggregation adds a small constant, not O(V), overhead).
#include <benchmark/benchmark.h>

#include "virtualflow.h"

namespace {

using namespace vf;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = state.range(0);
  CounterRng rng(1, 0);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    Tensor c = a.matmul(b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(64)->Arg(128);

void BM_WeightedSum(benchmark::State& state) {
  const auto parts = state.range(0);
  CounterRng rng(2, 0);
  std::vector<Tensor> bufs;
  std::vector<const Tensor*> ptrs;
  std::vector<double> weights;
  for (std::int64_t i = 0; i < parts; ++i) {
    bufs.push_back(Tensor::randn({32768}, rng));
  }
  for (const auto& b : bufs) {
    ptrs.push_back(&b);
    weights.push_back(1.0 / static_cast<double>(parts));
  }
  for (auto _ : state) {
    Tensor out = weighted_sum(ptrs, weights);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * parts * 32768);
}
BENCHMARK(BM_WeightedSum)->Arg(2)->Arg(8)->Arg(32);

void BM_EpochPermutation(benchmark::State& state) {
  const auto n = state.range(0);
  std::int64_t epoch = 0;
  for (auto _ : state) {
    auto p = epoch_permutation(n, 42, epoch++);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EpochPermutation)->Arg(4096)->Arg(65536);

void BM_DatasetGather(benchmark::State& state) {
  GaussianMixtureDataset ds("bench", 7, 65536, 32, 16, 0.38F);
  std::vector<std::int64_t> idx(256);
  for (std::size_t i = 0; i < idx.size(); ++i)
    idx[i] = static_cast<std::int64_t>(i * 131) % ds.size();
  for (auto _ : state) {
    Tensor f;
    std::vector<std::int64_t> labels;
    ds.gather(idx, f, labels);
    benchmark::DoNotOptimize(f.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(idx.size()));
}
BENCHMARK(BM_DatasetGather);

/// Full engine training step at V virtual nodes on one simulated device.
/// Host time should scale ~linearly with data volume (V x per-VN batch),
/// not super-linearly with V — the gradient buffer is O(model).
void BM_EngineStepPerVnCount(benchmark::State& state) {
  const auto vns = state.range(0);
  ProxyTask task = make_task("qnli-sim", 42);
  TrainRecipe recipe = make_recipe("qnli-sim");
  Sequential model = make_proxy_model("qnli-sim", 42);
  EngineConfig cfg;
  cfg.seed = 42;
  cfg.enforce_memory = false;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"), make_devices(DeviceType::kV100, 1),
                        VnMapping::even(vns, 1, recipe.global_batch), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.train_step().loss);
  }
  state.SetItemsProcessed(state.iterations() * recipe.global_batch);
}
BENCHMARK(BM_EngineStepPerVnCount)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_RingAllreduceCostModel(benchmark::State& state) {
  const LinkSpec link;
  double bytes = 102.45e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring_allreduce_time_s(bytes, 16, link));
  }
}
BENCHMARK(BM_RingAllreduceCostModel);

void BM_SolverSolve(benchmark::State& state) {
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kP100, profile_workload(DeviceType::kP100, m));
  profiles.emplace(DeviceType::kK80, profile_workload(DeviceType::kK80, m));
  HeterogeneousSolver solver(m, std::move(profiles));
  for (auto _ : state) {
    auto r = solver.solve(
        {{DeviceType::kV100, 2}, {DeviceType::kP100, 8}, {DeviceType::kK80, 16}}, 8192);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SolverSolve);

}  // namespace

BENCHMARK_MAIN();
