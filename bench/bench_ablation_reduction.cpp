// Ablation: strict VN-ordered gradient reduction vs hierarchical
// device-order reduction (DESIGN.md §4, decision 2).
//
// Both compute the same weighted mean, but float addition is not
// associative: under hierarchical reduction the trained parameters drift
// across mappings, while the strict VN order is bit-exact. This bench
// quantifies the drift — the cost the paper's ±0.5% reproducibility band
// absorbs and this library eliminates.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

Tensor run(std::int64_t devices, ReductionMode mode, std::int64_t steps,
           std::uint64_t seed) {
  ProxyTask task = make_task("qnli-sim", seed);
  Sequential model = make_proxy_model("qnli-sim", seed);
  TrainRecipe recipe = make_recipe("qnli-sim");
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  cfg.reduction = mode;
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("bert-base"),
                        make_devices(DeviceType::kV100, devices),
                        VnMapping::even(8, devices, recipe.global_batch), cfg);
  for (std::int64_t i = 0; i < steps; ++i) eng.train_step();
  return eng.parameters();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"steps", "training steps (default 100)"},
                           {"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Ablation: reduction order vs mapping invariance");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps", 100, 5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  print_banner(std::cout,
               "Ablation: parameter drift vs the 1-GPU run after " +
                   std::to_string(steps) + " steps (qnli-sim, 8 VNs)");
  Table table({"devices", "strict VN order (max |diff|)", "hierarchical (max |diff|)"});
  const Tensor strict_ref = run(1, ReductionMode::kStrictVnOrder, steps, seed);
  const Tensor hier_ref = run(1, ReductionMode::kHierarchical, steps, seed);
  double worst_hier = 0.0;
  bool strict_exact = true;
  for (const std::int64_t d : {2, 4, 8}) {
    const Tensor s = run(d, ReductionMode::kStrictVnOrder, steps, seed);
    const Tensor h = run(d, ReductionMode::kHierarchical, steps, seed);
    const double ds = s.max_abs_diff(strict_ref);
    const double dh = h.max_abs_diff(hier_ref);
    strict_exact &= s.equals(strict_ref);
    worst_hier = std::max(worst_hier, dh);
    table.row().cell(d).cell(ds, 8).cell(dh, 8);
  }
  table.print(std::cout);

  print_banner(std::cout, "Summary");
  std::printf("  strict VN-order reduction bit-exact across mappings: %s\n",
              strict_exact ? "YES" : "NO");
  std::printf("  hierarchical reduction worst parameter drift: %.2e\n", worst_hier);
  std::printf(
      "  Both modes train correctly; the strict order is what upgrades the\n"
      "  paper's +/-0.5%% accuracy band to bit-exact reproducibility.\n");
  return 0;
}
