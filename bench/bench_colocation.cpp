// Multi-model co-location A/B: two models sharing ONE elastic device set
// (ColocatedServer) versus the same two models on two DEDICATED half-size
// device sets (one Server each). Staggered bursts — model A spikes early,
// model B late — are the statistical-multiplexing shape co-location
// exists for: the shared budget hands the bursting model the whole set
// while the quiet one idles, where a dedicated split caps each model at
// its own half.
//
// Headline claims, enforced at the default workload (informational under
// overridden knobs, like bench_serving):
//
//   1. Both co-located models meet their per-model SLOs (hit rate gates).
//   2. Co-location serves at least as many requests as the dedicated
//      split, at no worse p99 queue wait (worst model of each setup).
//   3. The shared budget closes the elastic loop: the bursts grow the
//      shared set, the drains shrink it back.
//   4. Determinism: every model's record stream and the resize timeline
//      replay bit-identically across host worker counts {0, 2, 8}.
//
// Prints per-model SLO tables for both setups, the shared-set resize
// timeline, and the co-located vs dedicated comparison. Exit 1 when any
// enforced claim fails. --json emits the perf-trajectory record.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace vf;
using namespace vf::serve;
using vf::bench::Flags;

namespace {

struct BenchParams {
  std::uint64_t seed = 42;
  std::string task_a = "cola-sim";
  std::string task_b = "cola-sim";
  std::string profile = "bert-base";
  std::int64_t vns = 8;
  std::int64_t max_devices = 8;  ///< shared ceiling; dedicated halves get max/2
  std::int64_t queue_cap = 4096;
  std::int64_t max_batch = 64;
  double max_wait_s = 0.01;
  double deadline_a_s = 0.5;
  double deadline_b_s = 0.5;
  double steady_rps = 150.0;
  double burst_rps = 2000.0;
  double burst_s = 2.5;
  double tail_s = 2.0;
};

struct EngineBox {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;

  explicit EngineBox(const std::string& task_name, std::uint64_t seed)
      : task(make_task(task_name, seed)),
        model(make_proxy_model(task_name, seed)),
        recipe(make_recipe(task_name)) {}

  VirtualFlowEngine make_engine(const BenchParams& p, std::int64_t devices,
                                std::int64_t workers) const {
    EngineConfig cfg;
    cfg.seed = 42;
    cfg.enforce_memory = false;
    cfg.num_threads = workers;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             model_profile(p.profile),
                             make_devices(DeviceType::kV100, devices),
                             VnMapping::even(p.vns, devices, recipe.global_batch), cfg);
  }
};

/// Model A bursts early, model B late (staggered by A's burst window).
std::vector<std::vector<InferRequest>> staggered_traces(const BenchParams& p,
                                                        const Dataset& pool_a,
                                                        const Dataset& pool_b) {
  // Both traces span the same horizon: A bursts in [0.5, 0.5 + burst],
  // B in [0.5 + burst, 0.5 + 2*burst] — one model is always quiet while
  // the other spikes.
  return {phased_poisson_trace(p.seed,
                               {{p.steady_rps, 0.5},
                                {p.burst_rps, p.burst_s},
                                {p.steady_rps / 2.0, p.burst_s + p.tail_s}},
                               pool_a.size()),
          phased_poisson_trace(p.seed + 1,
                               {{p.steady_rps, 0.5 + p.burst_s},
                                {p.burst_rps, p.burst_s},
                                {p.steady_rps / 2.0, p.tail_s}},
                               pool_b.size())};
}

ElasticPolicy elastic(std::int64_t max_devices) {
  ElasticPolicy e;
  e.enabled = true;
  e.high_watermark = 48;
  e.low_watermark = 4;
  e.min_devices = 1;
  e.max_devices = max_devices;
  e.cooldown_batches = 1;
  return e;
}

struct SetupOutcome {
  std::vector<SloSummary> summaries;              // per model
  std::vector<std::vector<RequestRecord>> records;  // per model
  std::vector<ResizeEvent> resizes;
  double drained_at_s = 0.0;
};

SetupOutcome run_colocated(const BenchParams& p, std::int64_t workers,
                           obs::Observability obs = {}) {
  EngineBox box_a(p.task_a, p.seed);
  EngineBox box_b(p.task_b, p.seed);
  // The shared set starts at 2 devices — the same total hardware the
  // dedicated split starts with (1 + 1) — and may grow to max_devices,
  // the same total the split's two halves may reach together.
  VirtualFlowEngine eng_a = box_a.make_engine(p, /*devices=*/2, workers);
  VirtualFlowEngine eng_b = box_b.make_engine(p, /*devices=*/2, workers);

  ModelRegistry registry;
  ModelConfig mc_a;
  mc_a.name = p.task_a;
  mc_a.queue_capacity = p.queue_cap;
  mc_a.batch = {p.max_batch, p.max_wait_s};
  mc_a.deadline_s = p.deadline_a_s;
  ModelConfig mc_b = mc_a;
  mc_b.name = p.task_b;
  mc_b.deadline_s = p.deadline_b_s;
  registry.add(eng_a, *box_a.task.val, mc_a);
  registry.add(eng_b, *box_b.task.val, mc_b);

  ColocationConfig cfg;
  cfg.continuous = true;
  cfg.elastic = elastic(p.max_devices);
  ColocatedServer server(registry, cfg);
  server.set_observability(obs);
  server.replay(staggered_traces(p, *box_a.task.val, *box_b.task.val));

  SetupOutcome out;
  for (std::int32_t m = 0; m < 2; ++m) {
    out.summaries.push_back(server.slo(m).summary());
    out.records.push_back(server.slo(m).records());
  }
  out.resizes = server.resizes();
  out.drained_at_s = server.now_s();
  return out;
}

SetupOutcome run_dedicated(const BenchParams& p) {
  SetupOutcome out;
  EngineBox box_a(p.task_a, p.seed);
  EngineBox box_b(p.task_b, p.seed);
  const auto traces = staggered_traces(p, *box_a.task.val, *box_b.task.val);

  const EngineBox* boxes[2] = {&box_a, &box_b};
  const double deadlines[2] = {p.deadline_a_s, p.deadline_b_s};
  for (int m = 0; m < 2; ++m) {
    // Each model gets its own half-size device set: starts at 1 device,
    // elastic ceiling max_devices / 2 — it can never borrow the other
    // model's idle half.
    VirtualFlowEngine engine = boxes[m]->make_engine(p, /*devices=*/1, /*workers=*/0);
    ServerConfig scfg;
    scfg.queue_capacity = p.queue_cap;
    scfg.batch = {p.max_batch, p.max_wait_s};
    scfg.deadline_s = deadlines[m];
    scfg.continuous = true;
    scfg.elastic = elastic(std::max<std::int64_t>(1, p.max_devices / 2));
    Server server(engine, *boxes[m]->task.val, scfg);
    server.replay(traces[static_cast<std::size_t>(m)]);
    out.summaries.push_back(server.slo().summary());
    out.records.push_back(server.slo().records());
    for (const ResizeEvent& e : server.resizes()) out.resizes.push_back(e);
    out.drained_at_s = std::max(out.drained_at_s, server.now_s());
  }
  return out;
}

bool identical(const SetupOutcome& a, const SetupOutcome& b) {
  for (std::size_t m = 0; m < 2; ++m) {
    if (a.records[m].size() != b.records[m].size()) return false;
    for (std::size_t i = 0; i < a.records[m].size(); ++i) {
      const RequestRecord& x = a.records[m][i];
      const RequestRecord& y = b.records[m][i];
      // Exact comparisons throughout: the claim is bit-identity.
      if (x.id != y.id || x.rejected != y.rejected || x.prediction != y.prediction ||
          x.dispatch_s != y.dispatch_s || x.queue_wait_s != y.queue_wait_s ||
          x.compute_s != y.compute_s || x.comm_s != y.comm_s ||
          x.finish_s != y.finish_s)
        return false;
    }
  }
  if (a.resizes.size() != b.resizes.size()) return false;
  for (std::size_t i = 0; i < a.resizes.size(); ++i) {
    if (a.resizes[i].time_s != b.resizes[i].time_s ||
        a.resizes[i].to_devices != b.resizes[i].to_devices)
      return false;
  }
  return true;
}

void print_setup_table(const char* title, const BenchParams& p,
                       const SetupOutcome& o) {
  std::printf("\n  %s\n", title);
  Table table({"model", "served", "rejected", "p50 (ms)", "p99 (ms)",
               "mean wait (ms)", "p99 wait (ms)", "SLO hit"});
  const std::string names[2] = {p.task_a, p.task_b};
  for (std::size_t m = 0; m < 2; ++m) {
    const SloSummary& s = o.summaries[m];
    table.row()
        .cell(names[m])
        .cell(s.completed)
        .cell(s.rejected)
        .cell(s.p50_s * 1e3, 2)
        .cell(s.p99_s * 1e3, 2)
        .cell(s.mean_queue_wait_s * 1e3, 2)
        .cell(s.p99_queue_wait_s * 1e3, 2)
        .cell(s.hit_rate, 3);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task-a", "model A's proxy task (default cola-sim)"},
               {"task-b", "model B's proxy task (default cola-sim)"},
               {"profile", "paper model profile for timing (default bert-base)"},
               {"vns", "virtual nodes per model (default 8)"},
               {"max-devices", "shared elastic ceiling; dedicated halves "
                               "get half each (default 8)"},
               {"queue-cap", "per-model admission queue capacity (default 4096)"},
               {"max-batch", "batch former size trigger (default 64)"},
               {"max-wait-ms", "batch former timeout trigger (default 10)"},
               {"deadline-a-ms", "model A latency SLO (default 500)"},
               {"deadline-b-ms", "model B latency SLO (default 500)"},
               {"steady-rps", "steady arrival rate per model (default 150)"},
               {"burst-rps", "burst arrival rate (default 2000)"},
               {"burst-s", "burst duration per model (default 2.5)"},
               {"seed", "trace + model seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Multi-model co-location on a shared device set: "
                     "co-located vs dedicated-split A/B, per-model SLOs, "
                     "shared elastic budget, bit-exact replay");
    return 0;
  }

  BenchParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  p.task_a = flags.get_string("task-a", "cola-sim");
  p.task_b = flags.get_string("task-b", "cola-sim");
  p.profile = flags.get_string("profile", "bert-base");
  p.vns = flags.get_int("vns", 8);
  p.max_devices = flags.get_int("max-devices", 8);
  p.queue_cap = flags.get_int("queue-cap", 4096);
  p.max_batch = flags.get_int("max-batch", 64);
  p.max_wait_s = flags.get_double("max-wait-ms", 10.0) / 1e3;
  p.deadline_a_s = flags.get_double("deadline-a-ms", 500.0) / 1e3;
  p.deadline_b_s = flags.get_double("deadline-b-ms", 500.0) / 1e3;
  p.steady_rps = flags.get_double("steady-rps", 150.0);
  p.burst_rps = flags.get_double("burst-rps", 2000.0);
  p.burst_s = flags.get_double("burst-s", 2.5, /*smoke_def=*/0.6);
  p.tail_s = flags.smoke() ? 1.0 : 2.0;

  print_banner(std::cout,
               "vf::serve — multi-model co-location on a shared device set");
  std::printf("  %s + %s on %s, %lld VNs each; staggered bursts %.0f -> %.0f rps\n",
              p.task_a.c_str(), p.task_b.c_str(), p.profile.c_str(),
              static_cast<long long>(p.vns), p.steady_rps, p.burst_rps);
  std::printf("  co-located: one shared set, 2 -> %lld devices | dedicated: two "
              "halves, 1 -> %lld devices each\n",
              static_cast<long long>(p.max_devices),
              static_cast<long long>(p.max_devices / 2));

  // Determinism sweep (the claim-4 witness) doubles as the co-located run.
  const std::vector<std::int64_t> worker_counts = {0, 2, 8};
  std::vector<SetupOutcome> colo_runs;
  // The reference run records the per-model observability timeline
  // (one track per device, per-model metrics prefixes) for --trace /
  // --metrics; recording never perturbs records, which the cross-worker
  // bit-identity claim below would catch.
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  for (const std::int64_t w : worker_counts)
    colo_runs.push_back(run_colocated(
        p, w,
        w == worker_counts.front()
            ? obs::Observability{&trace, &metrics}
            : obs::Observability{}));
  const SetupOutcome& colo = colo_runs.front();
  const SetupOutcome dedicated = run_dedicated(p);

  print_setup_table("co-located (shared elastic budget):", p, colo);
  print_setup_table("dedicated split (two half-size sets):", p, dedicated);

  std::printf("\n  shared-set resize timeline:\n");
  for (const ResizeEvent& e : colo.resizes) {
    std::printf("    t=%7.3fs  %lld -> %lld devices  (combined depth %lld, "
                "migration %.4fs)\n",
                e.time_s, static_cast<long long>(e.from_devices),
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth), e.migration_s);
  }

  const std::int64_t colo_served =
      colo.summaries[0].completed + colo.summaries[1].completed;
  const std::int64_t ded_served =
      dedicated.summaries[0].completed + dedicated.summaries[1].completed;
  const double colo_p99_wait = std::max(colo.summaries[0].p99_queue_wait_s,
                                        colo.summaries[1].p99_queue_wait_s);
  const double ded_p99_wait = std::max(dedicated.summaries[0].p99_queue_wait_s,
                                       dedicated.summaries[1].p99_queue_wait_s);

  std::printf("\n  co-located vs dedicated: served %lld vs %lld  |  worst-model "
              "p99 wait %.2f ms vs %.2f ms\n",
              static_cast<long long>(colo_served), static_cast<long long>(ded_served),
              colo_p99_wait * 1e3, ded_p99_wait * 1e3);

  // Claims. Calibrated against the default staggered-burst workload;
  // overridden knobs make them informational (determinism always gates).
  bool custom_load = false;
  for (const char* knob :
       {"task-a", "task-b", "profile", "vns", "max-devices", "queue-cap",
        "max-batch", "max-wait-ms", "deadline-a-ms", "deadline-b-ms",
        "steady-rps", "burst-rps", "burst-s", "seed"})
    custom_load |= flags.overridden(knob);

  bool exact = true;
  for (std::size_t i = 1; i < colo_runs.size(); ++i)
    exact &= identical(colo, colo_runs[i]);
  bool grew = false, shrank = false;
  for (const ResizeEvent& e : colo.resizes) {
    grew |= e.to_devices > e.from_devices;
    shrank |= e.to_devices < e.from_devices;
  }
  const bool slo_met =
      colo.summaries[0].hit_rate >= 0.95 && colo.summaries[1].hit_rate >= 0.95;
  const bool served_ok = colo_served >= ded_served;
  const bool wait_ok = colo_p99_wait <= ded_p99_wait;

  bool ok = true;
  const std::string json = flags.json_path();
  if (!json.empty()) {
    vf::bench::JsonReport report("bench_colocation");
    const char* model_names[2] = {"model_a", "model_b"};
    for (std::size_t m = 0; m < 2; ++m) {
      const std::string colo_base = std::string("colocation.colocated.") + model_names[m] + ".";
      const std::string ded_base = std::string("colocation.dedicated.") + model_names[m] + ".";
      const SloSummary& cs = colo.summaries[m];
      const SloSummary& ds = dedicated.summaries[m];
      report.add(colo_base + "served", static_cast<double>(cs.completed), "requests");
      report.add(colo_base + "p99_latency_ms", cs.p99_s * 1e3, "ms");
      report.add(colo_base + "p99_queue_wait_ms", cs.p99_queue_wait_s * 1e3, "ms");
      report.add(colo_base + "slo_hit_rate", cs.hit_rate, "fraction");
      report.add(ded_base + "served", static_cast<double>(ds.completed), "requests");
      report.add(ded_base + "p99_latency_ms", ds.p99_s * 1e3, "ms");
      report.add(ded_base + "p99_queue_wait_ms", ds.p99_queue_wait_s * 1e3, "ms");
      report.add(ded_base + "slo_hit_rate", ds.hit_rate, "fraction");
    }
    report.add("colocation.served_gain",
               static_cast<double>(colo_served - ded_served), "requests");
    report.add("colocation.resizes", static_cast<double>(colo.resizes.size()),
               "events");
    report.add("colocation.obs.trace_events", static_cast<double>(trace.size()),
               "events");
    if (!report.save(json)) ok = false;
  }
  if (!flags.trace_path().empty() && !trace.save(flags.trace_path())) ok = false;
  if (!flags.metrics_path().empty() && !metrics.save(flags.metrics_path()))
    ok = false;

  const char* miss = custom_load ? "no (informational: custom workload)" : "NO — BUG";
  std::printf("\n  per-model SLO hit rates >= 0.95: %s\n", slo_met ? "yes" : miss);
  std::printf("  served >= dedicated split: %s\n", served_ok ? "yes" : miss);
  std::printf("  worst-model p99 queue wait <= dedicated: %s\n", wait_ok ? "yes" : miss);
  std::printf("  shared budget grew and shrank: %s\n", (grew && shrank) ? "yes" : miss);
  std::printf("  bit-identical per-model records across workers {0, 2, 8}: %s\n",
              exact ? "yes" : "NO — BUG");

  if (!exact) ok = false;
  if (!custom_load && (!slo_met || !served_ok || !wait_ok || !grew || !shrank))
    ok = false;
  return ok ? 0 : 1;
}
