// Figure 2: fine-tuning BERT-LARGE on RTE on a single RTX 2080 Ti.
//
// Stock TensorFlow can only fit batch 4 on this GPU; VirtualFlow reaches
// batch 16 with 4 virtual nodes and (paper) gains ~+7% final accuracy.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 2: BERT-LARGE on RTE, batch 4 (TF) vs 16 (VirtualFlow)");
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  print_banner(std::cout, "Fig 2: BERT-LARGE fine-tuning on RTE (1x RTX 2080 Ti)");
  const auto frontier = max_micro_batch(device_spec(DeviceType::kRtx2080Ti),
                                        model_profile("bert-large"), true);
  std::printf("  bert-large max single-VN batch on a 2080 Ti: %lld (paper: 4)\n",
              static_cast<long long>(frontier));

  // TF baseline: batch 4, single VN. VirtualFlow: batch 16 as 4 VNs of 4.
  const std::int64_t epochs = flags.smoke() ? 1 : -1;
  auto tf = vf::bench::make_setup("rte-sim", "bert-large", 1, 1,
                                  DeviceType::kRtx2080Ti, seed, 4, epochs);
  const TrainResult tf_res = train(tf.engine, *tf.task.val, tf.recipe.epochs);
  auto vfr = vf::bench::make_setup("rte-sim", "bert-large", 4, 1,
                                   DeviceType::kRtx2080Ti, seed, 16, epochs);
  const TrainResult vf_res = train(vfr.engine, *vfr.task.val, vfr.recipe.epochs);

  Table table({"epoch", "TF batch 4 (val acc)", "VF batch 16 (val acc)"});
  for (std::size_t e = 0; e < vf_res.curve.size(); ++e) {
    table.row()
        .cell(vf_res.curve[e].epoch)
        .cell(tf_res.curve[e].val_accuracy, 4)
        .cell(vf_res.curve[e].val_accuracy, 4);
  }
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("TF batch-4 final accuracy", 100 * tf_res.final_accuracy, 65.5);
  vf::bench::print_claim("VF batch-16 final accuracy", 100 * vf_res.final_accuracy, 72.6);
  vf::bench::print_claim("accuracy gain from batch 16 (pts)",
                         100 * (vf_res.final_accuracy - tf_res.final_accuracy), 7.1);
  return 0;
}
