// Table 1 + Figure 8: reproducibility of ResNet-50/ImageNet-class training
// across GPU counts and types.
//
// VirtualFlow rows fix the global batch at 8192 by fixing the total number
// of virtual nodes (32 on V100s, 64 on 2080 Tis) and only remapping them;
// the TF* baseline instead shrinks the batch to 256 x n_gpus and reuses
// the batch-8192 hyperparameters without retuning (§6.2).
//
// Expected shape (paper): every VF row hits the target accuracy (±0.5%);
// TF* diverges or lands visibly lower, worst at 1 GPU.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::EngineSetup;
using vf::bench::Flags;

namespace {

struct Row {
  std::string config;
  std::int64_t gpus = 0;
  std::int64_t batch = 0;
  std::int64_t vn_per_gpu = 0;
  double acc = 0.0;
  double hours = 0.0;
  std::vector<EpochRecord> curve;
};

Row run_vf(std::int64_t gpus, DeviceType type, std::int64_t total_vns,
           std::int64_t epochs, std::uint64_t seed) {
  EngineSetup s = vf::bench::make_setup("imagenet-sim", "resnet50", total_vns, gpus,
                                        type, seed, -1, epochs);
  const TrainResult res = train(s.engine, *s.task.val, s.recipe.epochs);
  Row row;
  row.config = std::string("VF ") + std::to_string(gpus) + "x" + device_type_name(type);
  row.gpus = gpus;
  row.batch = s.recipe.global_batch;
  row.vn_per_gpu = total_vns / gpus;
  row.acc = res.final_accuracy;
  row.hours = res.total_sim_time_s / 3600.0;
  row.curve = res.curve;
  return row;
}

Row run_tf_star(std::int64_t gpus, std::int64_t epochs, std::uint64_t seed) {
  // TF*: local batch 256 per GPU, one "virtual node" per GPU (i.e. plain
  // data parallelism), same hyperparameters as the batch-8192 recipe.
  const std::int64_t batch = 256 * gpus;
  EngineSetup s = vf::bench::make_setup("imagenet-sim", "resnet50", gpus, gpus,
                                        DeviceType::kV100, seed, batch, epochs);
  const TrainResult res = train(s.engine, *s.task.val, s.recipe.epochs);
  Row row;
  row.config = "TF* " + std::to_string(gpus) + "xV100";
  row.gpus = gpus;
  row.batch = batch;
  row.vn_per_gpu = 1;
  row.acc = res.final_accuracy;
  row.hours = res.total_sim_time_s / 3600.0;
  row.curve = res.curve;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"epochs", "training epochs (default 30)"},
               {"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Table 1 + Fig 8: reproducibility across GPU counts/types");
    return 0;
  }
  const std::int64_t epochs = flags.get_int("epochs", 30, 1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  print_banner(std::cout, "Table 1: ResNet-50 (imagenet-sim), global batch 8192");
  std::vector<Row> rows;
  for (const std::int64_t g : {1, 2, 4, 8, 16})
    rows.push_back(run_vf(g, DeviceType::kV100, 32, epochs, seed));
  // The dagger row: 2x RTX 2080 Ti with 64 total VNs (per-VN batch 128).
  rows.push_back(run_vf(2, DeviceType::kRtx2080Ti, 64, epochs, seed));
  for (const std::int64_t g : {1, 2, 4, 8}) rows.push_back(run_tf_star(g, epochs, seed));

  Table table({"config", "GPUs", "BS", "VN/GPU", "final acc (%)", "sim hours"});
  for (const Row& r : rows) {
    table.row()
        .cell(r.config)
        .cell(r.gpus)
        .cell(r.batch)
        .cell(r.vn_per_gpu)
        .cell(100.0 * r.acc, 2)
        .cell(r.hours, 2);
  }
  table.print(std::cout);

  print_banner(std::cout, "Fig 8: convergence trajectories (val acc by epoch)");
  std::printf("  %-18s", "epoch");
  for (const Row& r : rows) std::printf("%-16s", r.config.c_str());
  std::printf("\n");
  for (std::size_t e = 0; e < rows[0].curve.size(); e += 3) {
    std::printf("  %-18lld", static_cast<long long>(rows[0].curve[e].epoch));
    for (const Row& r : rows) std::printf("%-16.4f", r.curve[e].val_accuracy);
    std::printf("\n");
  }

  print_banner(std::cout, "Claims vs paper");
  const double target = make_task("imagenet-sim", seed).target_accuracy;
  double vf_min = 1.0, vf_max = 0.0, tf_worst = 1.0;
  bool identical = true;  // across same-VN-count (V100) rows: bit-exact
  for (const Row& r : rows) {
    if (r.config.rfind("VF", 0) == 0) {
      vf_min = std::min(vf_min, r.acc);
      vf_max = std::max(vf_max, r.acc);
      // The 2080 Ti row uses 64 total VNs (vs 32 on V100s), so its per-VN
      // batch statistics differ slightly — the paper reports the same
      // effect (75.68..76.01 across rows); bit-exactness applies to rows
      // with the same total VN count.
      if (r.config.find("V100") != std::string::npos) identical &= (r.acc == rows[0].acc);
    } else {
      tf_worst = std::min(tf_worst, r.acc);
    }
  }
  vf::bench::print_claim("VF accuracy (all configs, min)", 100 * vf_min, 100 * target);
  vf::bench::print_claim("VF accuracy spread across configs (pts)",
                         100 * (vf_max - vf_min), 0.5);
  vf::bench::print_claim("TF* worst accuracy (paper: 1 GPU = 69.25)", 100 * tf_worst,
                         69.25);
  std::printf("  VF V100 rows (32 VNs) bit-identical across 1-16 GPUs: %s\n", identical ? "YES" : "NO");
  std::printf("  (paper: all rows within +/-0.5%%; ours additionally bit-exact per VN count)\n");
  return 0;
}
