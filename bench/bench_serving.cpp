// Serving harness: replays a seeded open-loop Poisson arrival trace
// (steady -> burst -> drain) through vf::serve on virtual nodes, and
// verifies the subsystem's headline claims:
//
//   1. Elasticity closes the loop: the burst drives queue depth over the
//      high watermark, the server grows the device set with the engine's
//      seamless resize, and the drain shrinks it back — at least one
//      queue-depth-triggered resize must occur.
//   2. Determinism: the full per-request record stream (latency bits,
//      predictions, resize timeline) is bit-identical across host worker
//      counts num_threads in {0, 2, 8} — in whichever batching mode
//      --continuous selects.
//   3. Continuous batching pays off: admitting arrivals into in-flight
//      per-VN slots (--continuous=1) yields lower mean queue wait than
//      draining at batch boundaries (--continuous=0) on the same
//      high-load trace. The A/B table prints the p95/p99 queue-wait
//      reduction.
//
// Prints per-worker-count SLO tables (p50/p95/p99, deadline hit rate,
// rejections), the resize timeline, and the batch-vs-continuous A/B
// queue-wait table. Exit 1 when any claim fails.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace vf;
using namespace vf::serve;
using vf::bench::Flags;

namespace {

struct BenchParams {
  std::uint64_t seed = 42;
  std::string task = "mrpc-sim";
  std::string profile = "bert-base";
  std::int64_t vns = 8;
  std::int64_t devices = 1;
  std::int64_t max_devices = 8;
  std::int64_t queue_cap = 512;
  std::int64_t max_batch = 64;
  double max_wait_s = 0.01;
  double deadline_s = 0.5;
  double steady_rps = 300.0;
  double burst_rps = 4000.0;
  double steady_s = 0.5;
  double burst_s = 2.0;
  double drain_s = 2.0;
  bool continuous = false;
};

struct ReplayOutcome {
  std::vector<RequestRecord> records;
  std::vector<ResizeEvent> resizes;
  std::vector<BatchEvent> batches;
  SloSummary summary;
  double drained_at_s = 0.0;
};

ReplayOutcome run_replay(const BenchParams& p, std::int64_t workers,
                         obs::Observability obs = {},
                         double* wall_s = nullptr) {
  ProxyTask task = make_task(p.task, p.seed);
  Sequential model = make_proxy_model(p.task, p.seed);
  TrainRecipe recipe = make_recipe(p.task);

  EngineConfig cfg;
  cfg.seed = p.seed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile(p.profile),
                           make_devices(DeviceType::kV100, p.devices),
                           VnMapping::even(p.vns, p.devices, recipe.global_batch), cfg);

  ServerConfig scfg;
  scfg.queue_capacity = p.queue_cap;
  scfg.batch = {p.max_batch, p.max_wait_s};
  scfg.deadline_s = p.deadline_s;
  scfg.continuous = p.continuous;
  scfg.elastic.enabled = true;
  scfg.elastic.high_watermark = 48;
  scfg.elastic.low_watermark = 4;
  scfg.elastic.min_devices = 1;
  scfg.elastic.max_devices = p.max_devices;
  scfg.elastic.cooldown_batches = 1;

  Server server(engine, *task.val, scfg);
  server.set_observability(obs);
  const auto trace = phased_poisson_trace(p.seed,
                                          {{p.steady_rps, p.steady_s},
                                           {p.burst_rps, p.burst_s},
                                           {p.steady_rps / 2.0, p.drain_s}},
                                          task.val->size());
  const auto t0 = std::chrono::steady_clock::now();
  server.replay(trace);
  if (wall_s != nullptr)
    *wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();

  ReplayOutcome out;
  out.records = server.slo().records();
  out.resizes = server.resizes();
  out.batches = server.batches();
  out.summary = server.slo().summary();
  out.drained_at_s = server.now_s();
  return out;
}

bool identical(const ReplayOutcome& a, const ReplayOutcome& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& x = a.records[i];
    const RequestRecord& y = b.records[i];
    // Exact comparisons throughout: the claim is bit-identity.
    if (x.id != y.id || x.rejected != y.rejected || x.prediction != y.prediction ||
        x.dispatch_s != y.dispatch_s || x.queue_wait_s != y.queue_wait_s ||
        x.compute_s != y.compute_s || x.comm_s != y.comm_s ||
        x.finish_s != y.finish_s)
      return false;
  }
  if (a.resizes.size() != b.resizes.size()) return false;
  for (std::size_t i = 0; i < a.resizes.size(); ++i) {
    if (a.resizes[i].time_s != b.resizes[i].time_s ||
        a.resizes[i].from_devices != b.resizes[i].from_devices ||
        a.resizes[i].to_devices != b.resizes[i].to_devices)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task", "proxy task serving the requests (default mrpc-sim)"},
               {"profile", "paper model profile for timing (default bert-base)"},
               {"vns", "virtual nodes (default 8; also the device ceiling)"},
               {"devices", "initial device count (default 1)"},
               {"max-devices", "elastic ceiling (default 8)"},
               {"queue-cap", "admission queue capacity (default 512)"},
               {"max-batch", "batch former size trigger (default 64)"},
               {"max-wait-ms", "batch former timeout trigger (default 10)"},
               {"deadline-ms", "per-request latency SLO (default 500)"},
               {"steady-rps", "steady arrival rate (default 300)"},
               {"burst-rps", "burst arrival rate (default 4000)"},
               {"burst-s", "burst duration in virtual seconds (default 2)"},
               {"continuous", "1 = continuous (in-flight) batching, 0 = "
                              "batch-boundary (default 0)"},
               {"seed", "trace + model seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Serving on virtual nodes: open-loop replay, SLO percentiles, "
                     "elasticity, batch vs continuous A/B");
    return 0;
  }

  BenchParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  p.task = flags.get_string("task", "mrpc-sim");
  p.profile = flags.get_string("profile", "bert-base");
  p.vns = flags.get_int("vns", 8);
  p.devices = flags.get_int("devices", 1);
  p.max_devices = flags.get_int("max-devices", 8);
  p.queue_cap = flags.get_int("queue-cap", 512);
  p.max_batch = flags.get_int("max-batch", 64);
  p.max_wait_s = flags.get_double("max-wait-ms", 10.0) / 1e3;
  p.deadline_s = flags.get_double("deadline-ms", 500.0) / 1e3;
  p.steady_rps = flags.get_double("steady-rps", 300.0);
  p.burst_rps = flags.get_double("burst-rps", 4000.0);
  p.burst_s = flags.get_double("burst-s", 2.0, /*smoke_def=*/0.5);
  p.steady_s = flags.smoke() ? 0.25 : 0.5;
  p.drain_s = flags.smoke() ? 1.0 : 2.0;
  p.continuous = flags.get_int("continuous", 0) != 0;

  print_banner(std::cout, "vf::serve — deadline-aware inference on virtual nodes");
  std::printf("  task=%s profile=%s mode=%s  trace: %.0f rps -> %.0f rps burst (%.2fs) -> drain\n",
              p.task.c_str(), p.profile.c_str(),
              p.continuous ? "continuous" : "batch-boundary", p.steady_rps,
              p.burst_rps, p.burst_s);
  std::printf("  start %lld device(s), elastic ceiling %lld, queue cap %lld, "
              "batch <= %lld or %.0f ms, SLO %.0f ms\n\n",
              static_cast<long long>(p.devices), static_cast<long long>(p.max_devices),
              static_cast<long long>(p.queue_cap), static_cast<long long>(p.max_batch),
              p.max_wait_s * 1e3, p.deadline_s * 1e3);

  const std::vector<std::int64_t> worker_counts = {0, 2, 8};
  std::vector<ReplayOutcome> outcomes;
  Table table({"workers", "served", "rejected", "p50 (ms)", "p95 (ms)", "p99 (ms)",
               "SLO hit", "resizes", "drained (s)"});
  for (const std::int64_t w : worker_counts) {
    outcomes.push_back(run_replay(p, w));
    const ReplayOutcome& o = outcomes.back();
    table.row()
        .cell(w == 0 ? std::string("serial") : "pool x" + std::to_string(w))
        .cell(o.summary.completed)
        .cell(o.summary.rejected)
        .cell(o.summary.p50_s * 1e3, 2)
        .cell(o.summary.p95_s * 1e3, 2)
        .cell(o.summary.p99_s * 1e3, 2)
        .cell(o.summary.hit_rate, 3)
        .cell(static_cast<std::int64_t>(o.resizes.size()))
        .cell(o.drained_at_s, 3);
  }
  table.print(std::cout);

  const ReplayOutcome& ref = outcomes.front();
  std::printf("\n  resize timeline (queue-depth-triggered, seamless):\n");
  for (const ResizeEvent& e : ref.resizes) {
    std::printf("    t=%7.3fs  %lld -> %lld devices  (depth %lld, migration %.4fs)\n",
                e.time_s, static_cast<long long>(e.from_devices),
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth), e.migration_s);
  }

  // A/B: the selected mode (already replayed) against the other one,
  // serial engine, identical trace — the queue-wait reduction continuous
  // batching buys at high load.
  BenchParams flipped = p;
  flipped.continuous = !p.continuous;
  const ReplayOutcome other = run_replay(flipped, /*workers=*/0);
  const SloSummary& cont = p.continuous ? ref.summary : other.summary;
  const SloSummary& batch = p.continuous ? other.summary : ref.summary;
  std::printf("\n  batch-boundary vs continuous batching (same trace, serial engine):\n");
  Table ab({"mode", "served", "mean wait (ms)", "p95 wait (ms)", "p99 wait (ms)",
            "mean in-flight (ms)", "p99 latency (ms)"});
  ab.row()
      .cell(std::string("batch"))
      .cell(batch.completed)
      .cell(batch.mean_queue_wait_s * 1e3, 2)
      .cell(batch.p95_queue_wait_s * 1e3, 2)
      .cell(batch.p99_queue_wait_s * 1e3, 2)
      .cell(batch.mean_inflight_s * 1e3, 2)
      .cell(batch.p99_s * 1e3, 2);
  ab.row()
      .cell(std::string("continuous"))
      .cell(cont.completed)
      .cell(cont.mean_queue_wait_s * 1e3, 2)
      .cell(cont.p95_queue_wait_s * 1e3, 2)
      .cell(cont.p99_queue_wait_s * 1e3, 2)
      .cell(cont.mean_inflight_s * 1e3, 2)
      .cell(cont.p99_s * 1e3, 2);
  ab.print(std::cout);
  if (batch.p95_queue_wait_s > 0.0 && batch.p99_queue_wait_s > 0.0) {
    std::printf("  queue-wait reduction: mean %.1f%%  p95 %.1f%%  p99 %.1f%%\n",
                -pct_change(batch.mean_queue_wait_s, cont.mean_queue_wait_s),
                -pct_change(batch.p95_queue_wait_s, cont.p95_queue_wait_s),
                -pct_change(batch.p99_queue_wait_s, cont.p99_queue_wait_s));
  }

  // Observability overhead guard: the same replay with the recorder +
  // registry attached must produce bit-identical records (a pure
  // observer), and its wall time must stay within budget of the
  // unobserved run. Both arms re-run fresh here so they are timed under
  // identical cache conditions.
  double wall_off = 0.0, wall_on = 0.0;
  const ReplayOutcome unobserved = run_replay(p, /*workers=*/0, {}, &wall_off);
  obs::TraceRecorder trace;
  obs::MetricsRegistry metrics;
  const ReplayOutcome observed =
      run_replay(p, /*workers=*/0, {&trace, &metrics}, &wall_on);
  const bool obs_pure = identical(unobserved, observed);
  // Generous budget: recording is a bounded vector push per slice, so
  // even smoke-sized replays with noisy wall clocks sit far inside 1.5x.
  const double obs_overhead = wall_on / wall_off;
  const bool obs_cheap = obs_overhead < 1.5;
  std::printf("\n  observability: %zu trace events; replay wall %.3fs off / "
              "%.3fs on (%.2fx)\n",
              trace.size(), wall_off, wall_on, obs_overhead);

  // The growth and queue-wait claims are calibrated against the default
  // high-load trace; an exploratory sweep with overridden workload knobs
  // (e.g. a trickle of arrivals, where both modes dispatch every slice on
  // timeout and the means tie) reports them informationally instead of
  // failing. Determinism is enforced unconditionally.
  bool custom_load = false;
  for (const char* knob :
       {"task", "profile", "vns", "devices", "max-devices", "queue-cap",
        "max-batch", "max-wait-ms", "steady-rps", "burst-rps", "burst-s", "seed"})
    custom_load |= flags.overridden(knob);

  bool ok = true;
  bool grew = false;
  for (const ResizeEvent& e : ref.resizes) grew |= e.to_devices > e.from_devices;
  bool exact = true;
  for (std::size_t i = 1; i < outcomes.size(); ++i) exact &= identical(ref, outcomes[i]);
  const bool wait_reduced = cont.mean_queue_wait_s < batch.mean_queue_wait_s;

  const std::string json = flags.json_path();
  if (!json.empty()) {
    vf::bench::JsonReport report("bench_serving");
    const auto add_mode = [&report](const char* mode, const SloSummary& s) {
      const std::string base = std::string("serving.") + mode + ".";
      report.add(base + "served", static_cast<double>(s.completed), "requests");
      report.add(base + "rejected", static_cast<double>(s.rejected), "requests");
      report.add(base + "mean_queue_wait_ms", s.mean_queue_wait_s * 1e3, "ms");
      report.add(base + "p95_queue_wait_ms", s.p95_queue_wait_s * 1e3, "ms");
      report.add(base + "p99_queue_wait_ms", s.p99_queue_wait_s * 1e3, "ms");
      report.add(base + "p50_latency_ms", s.p50_s * 1e3, "ms");
      report.add(base + "p95_latency_ms", s.p95_s * 1e3, "ms");
      report.add(base + "p99_latency_ms", s.p99_s * 1e3, "ms");
      report.add(base + "slo_hit_rate", s.hit_rate, "fraction");
    };
    add_mode("batch", batch);
    add_mode("continuous", cont);
    report.add("serving.resizes", static_cast<double>(ref.resizes.size()), "events");
    report.add("serving.obs.trace_events", static_cast<double>(trace.size()),
               "events");
    report.add("serving.obs.overhead_x", obs_overhead, "ratio");
    if (!report.save(json)) ok = false;
  }
  if (!flags.trace_path().empty() && !trace.save(flags.trace_path())) ok = false;
  if (!flags.metrics_path().empty() && !metrics.save(flags.metrics_path()))
    ok = false;
  const char* miss = custom_load ? "no (informational: custom workload)" : "NO — BUG";
  std::printf("\n  queue-depth-triggered growth: %s\n", grew ? "yes" : miss);
  std::printf("  bit-identical records/resizes across workers {0, 2, 8}: %s\n",
              exact ? "yes" : "NO — BUG");
  std::printf("  continuous mean queue wait below batch-boundary: %s\n",
              wait_reduced ? "yes" : miss);
  std::printf("  recording does not perturb the replay: %s\n",
              obs_pure ? "yes" : "NO — BUG");
  std::printf("  recording wall overhead within 1.5x budget: %s\n",
              obs_cheap ? "yes" : miss);
  if (!exact || !obs_pure) ok = false;
  if (!custom_load && (!grew || !wait_reduced || !obs_cheap)) ok = false;
  return ok ? 0 : 1;
}
