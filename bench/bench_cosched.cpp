// Cluster-scale train+serve co-scheduling A/B: ONE device economy under a
// pluggable policy (ClusterController) versus the classic static split
// ("a serving cluster and a training cluster"), at equal hardware.
//
// The cluster: 120 simulated V100s. The tenants: a single-model Server, a
// two-model ColocatedServer (both live replay loops consuming grants
// through the DeviceLease interface), one REAL training engine wrapped in
// an EngineTrainLease, and a queue of analytic training jobs whose demand
// saturates the pool. Serving load is bursty and staggered — the Server
// spikes early, the co-located pair late — so a static partition is
// either over-provisioned (wasting devices training wants) or
// under-provisioned (blowing SLOs in the burst). The co-scheduled economy
// moves the same devices to whichever side is loaded.
//
// Headline claims, enforced at the default workload (informational under
// overridden knobs):
//
//   1. Scale: the mixed job set runs on >= 100 simulated devices, under
//      BOTH policy families (weighted fair sharing and round-based Gavel).
//   2. At equal hardware, co-scheduling beats the static partition on the
//      worst model's SLO hit rate, for both policies.
//   3. It pays for that with at most 5% training-makespan degradation.
//   4. Determinism: grants, per-model record streams, and the final clock
//      replay bit-identically across host worker counts {0, 2, 8}.
//
// --json emits the perf-trajectory record; --metrics snapshots the
// sched.* + serve.* instrument families from the co-scheduled WFS run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace vf;
using namespace vf::serve;
using vf::bench::Flags;

namespace {

struct BenchParams {
  std::uint64_t seed = 42;
  std::int64_t devices = 120;      ///< cluster inventory (gate: >= 100)
  std::int64_t serve_max = 8;      ///< elastic ceiling per serving lease
  std::int64_t queue_cap = 8192;
  std::int64_t max_batch = 64;
  double max_wait_s = 0.01;
  double deadline_s = 0.5;
  double steady_rps = 120.0;
  double burst_rps = 1200.0;
  double burst_s = 3.0;
  double tail_s = 1.5;
  std::int64_t lease_steps = 60;   ///< real-engine training lease length
  std::int64_t train_steps = 6000; ///< analytic training job length
  double gavel_round_s = 2.0;
};

BenchParams params_from(const Flags& flags) {
  BenchParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  p.devices = flags.get_int("devices", 120);
  p.steady_rps = flags.get_double("steady_rps", p.steady_rps);
  p.burst_rps = flags.get_double("burst_rps", p.burst_rps, 1200.0);
  p.burst_s = flags.get_double("burst_s", p.burst_s, 1.6);
  p.tail_s = flags.get_double("tail_s", p.tail_s, 1.0);
  p.lease_steps = flags.get_int("lease_steps", p.lease_steps, 30);
  p.train_steps = flags.get_int("train_steps", p.train_steps, 2500);
  return p;
}

struct EngineBox {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;

  EngineBox(const std::string& task_name, std::uint64_t seed)
      : task(make_task(task_name, seed)),
        model(make_proxy_model(task_name, seed)),
        recipe(make_recipe(task_name)) {}

  VirtualFlowEngine make_engine(std::int64_t devices, std::int64_t workers,
                                const std::string& profile = "bert-base",
                                std::int64_t vns = 8) const {
    EngineConfig cfg;
    cfg.seed = 42;
    cfg.enforce_memory = false;
    cfg.num_threads = workers;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule,
                             *task.train, model_profile(profile),
                             make_devices(DeviceType::kV100, devices),
                             VnMapping::even(vns, devices, recipe.global_batch),
                             cfg);
  }
};

ElasticPolicy elastic(std::int64_t max_devices, std::int64_t min_devices = 1) {
  ElasticPolicy e;
  e.enabled = true;
  e.high_watermark = 48;
  // Shrink only when nearly idle: a rolling migration stalls dispatch for
  // a deadline-scale window, so giving devices back eagerly between burst
  // waves costs two migrations AND the refill backlog.
  e.low_watermark = 1;
  e.min_devices = min_devices;
  e.max_devices = max_devices;
  e.cooldown_batches = 1;
  return e;
}

/// Server (model 0) bursts early; the co-located pair (models 1, 2)
/// bursts late — the statistical-multiplexing shape.
std::vector<InferRequest> early_trace(const BenchParams& p, std::size_t pool) {
  return phased_poisson_trace(p.seed,
                              {{p.steady_rps, 0.5},
                               {p.burst_rps, p.burst_s},
                               {p.steady_rps / 2.0, p.burst_s + p.tail_s}},
                              pool);
}

std::vector<std::vector<InferRequest>> late_traces(const BenchParams& p,
                                                   std::size_t pool_b,
                                                   std::size_t pool_c) {
  return {phased_poisson_trace(p.seed + 1,
                               {{p.steady_rps, 0.5 + p.burst_s},
                                {p.burst_rps, p.burst_s},
                                {p.steady_rps / 2.0, p.tail_s}},
                               pool_b),
          phased_poisson_trace(p.seed + 2,
                               {{p.steady_rps / 2.0, 0.5 + p.burst_s},
                                {p.burst_rps / 2.0, p.burst_s},
                                {p.steady_rps / 2.0, p.tail_s}},
                               pool_c)};
}

JobSpec serve_spec(std::int64_t id, std::int64_t demand, std::int64_t max_gpus) {
  JobSpec j;
  j.id = id;
  j.kind = JobKind::kServe;
  j.priority = 10.0;
  j.demand_gpus = demand;  // the static partition pins it here
  j.min_gpus = 1;
  j.max_gpus = max_gpus;
  return j;
}

/// The analytic training queue: staggered arrivals whose total demand
/// saturates the 120-device pool once serving is carved out.
std::vector<JobSpec> train_jobs(const BenchParams& p) {
  struct Shape { std::int64_t demand; double arrival; };
  const std::vector<Shape> shapes = {{32, 0.0}, {24, 0.0},  {16, 2.0},
                                     {16, 4.0}, {8, 6.0},   {8, 8.0},
                                     {8, 10.0}, {8, 12.0}};
  std::vector<JobSpec> jobs;
  std::int64_t id = 100;
  for (const Shape& s : shapes) {
    JobSpec j;
    j.id = id++;
    j.arrival_s = s.arrival;
    j.workload = "resnet56";
    j.profile = model_profile("resnet56");
    j.global_batch = 128;
    j.total_steps = p.train_steps;
    j.demand_gpus = s.demand;
    jobs.push_back(j);
  }
  return jobs;
}

enum class PolicyKind { kWfs, kGavel };

const char* policy_label(PolicyKind k) {
  return k == PolicyKind::kWfs ? "wfs" : "gavel";
}

struct RunOutcome {
  std::vector<SloSummary> summaries;  ///< models 0 (server), 1, 2 (colocated)
  std::vector<std::vector<double>> latencies;  ///< per model, record order
  std::vector<GrantRecord> grants;
  double train_makespan_s = 0.0;
  double end_s = 0.0;
  double worst_hit_rate = 1.0;
  std::int64_t lease_steps_done = 0;
};

RunOutcome run_cluster(const BenchParams& p, PolicyKind kind, bool static_split,
                       std::int64_t workers, obs::Observability obs = {}) {
  EngineBox box_a("cola-sim", p.seed);
  EngineBox box_b("cola-sim", p.seed + 1);
  EngineBox box_c("mrpc-sim", p.seed + 2);
  EngineBox box_t("mrpc-sim", p.seed + 3);

  // Serving lease 1: single-model Server.
  VirtualFlowEngine eng_a = box_a.make_engine(1, workers);
  ServerConfig scfg;
  scfg.continuous = true;
  scfg.queue_capacity = p.queue_cap;
  scfg.batch = {p.max_batch, p.max_wait_s};
  scfg.deadline_s = p.deadline_s;
  scfg.elastic = elastic(p.serve_max);
  Server server(eng_a, *box_a.task.val, scfg);
  server.set_observability(obs);
  server.set_cluster_governed();
  const auto trace_a = early_trace(p, box_a.task.val->size());
  server.begin(trace_a);

  // Serving lease 2: two models co-located on ONE shared device set. The
  // set hosts two tenants, so its elastic ceiling (and VN count) is two
  // single-model ceilings.
  const std::int64_t colo_max = 2 * p.serve_max;
  VirtualFlowEngine eng_b = box_b.make_engine(2, workers, "bert-base", colo_max);
  VirtualFlowEngine eng_c = box_c.make_engine(2, workers, "bert-base", colo_max);
  ModelRegistry registry;
  ModelConfig mc_b;
  mc_b.name = "model_b";
  mc_b.queue_capacity = p.queue_cap;
  mc_b.batch = {p.max_batch, p.max_wait_s};
  mc_b.deadline_s = p.deadline_s;
  ModelConfig mc_c = mc_b;
  mc_c.name = "model_c";
  registry.add(eng_b, *box_b.task.val, mc_b);
  registry.add(eng_c, *box_c.task.val, mc_c);
  ColocationConfig ccfg;
  ccfg.continuous = true;
  // The rolling-migration set never goes below its built size: shrinking
  // 2 -> 1 at an empty queue buys one device back at the price of a
  // cutover stall when the steady stream resumes.
  ccfg.elastic = elastic(colo_max, /*min_devices=*/2);
  ColocatedServer colo(registry, ccfg);
  colo.set_observability(obs);
  colo.set_cluster_governed();
  const auto traces_bc =
      late_traces(p, box_b.task.val->size(), box_c.task.val->size());
  colo.begin(traces_bc);

  // A real training engine on the same economy.
  VirtualFlowEngine eng_t = box_t.make_engine(2, workers);
  EngineTrainLease lease(eng_t, p.lease_steps, DeviceType::kV100);
  JobSpec lease_spec;
  lease_spec.id = 99;
  lease_spec.arrival_s = 0.0;
  lease_spec.workload = "bert-base";
  lease_spec.profile = model_profile("bert-base");
  lease_spec.global_batch = box_t.recipe.global_batch;
  lease_spec.total_steps = p.lease_steps;
  lease_spec.demand_gpus = 2;
  JobSpec server_spec = serve_spec(0, /*demand=*/2, p.serve_max);
  JobSpec colo_spec = serve_spec(1, /*demand=*/4, colo_max);

  std::unique_ptr<Scheduler> inner;
  if (kind == PolicyKind::kWfs) {
    inner = std::make_unique<ElasticWfsScheduler>();
  } else {
    GavelOptions gopt;
    gopt.round_s = p.gavel_round_s;
    gopt.restart_penalty_s = 1.0;  // VirtualFlow resize, not checkpoint-restart
    inner = std::make_unique<GavelScheduler>(gopt);
  }
  std::unique_ptr<Scheduler> policy;
  if (static_split) {
    policy = std::make_unique<StaticPartitionScheduler>(*inner, DeviceType::kV100);
  }
  Scheduler& chosen = static_split ? *policy : *inner;

  ClusterInventory cluster;
  cluster.per_type[DeviceType::kV100] = p.devices;
  ClusterController controller(cluster, chosen);
  controller.set_observability(obs);
  controller.add_serve_job(server_spec, server);
  controller.add_serve_job(colo_spec, colo);
  controller.add_train_lease(lease_spec, lease);
  for (const JobSpec& j : train_jobs(p)) controller.add_train_job(j);

  const ClusterReport report = controller.run();
  server.finish();
  colo.finish();

  RunOutcome out;
  out.summaries.push_back(server.slo().summary());
  out.summaries.push_back(colo.slo(0).summary());
  out.summaries.push_back(colo.slo(1).summary());
  out.latencies.resize(3);
  for (const RequestRecord& r : server.slo().records())
    if (!r.rejected) out.latencies[0].push_back(r.latency_s());
  for (std::int32_t m = 0; m < 2; ++m)
    for (const RequestRecord& r : colo.slo(m).records())
      if (!r.rejected)
        out.latencies[static_cast<std::size_t>(m) + 1].push_back(r.latency_s());
  out.grants = report.grants;
  out.train_makespan_s = report.train_makespan_s;
  out.end_s = report.end_s;
  for (const SloSummary& s : out.summaries)
    out.worst_hit_rate = std::min(out.worst_hit_rate, s.hit_rate);
  out.lease_steps_done = lease.steps_done();
  return out;
}

void print_outcome(const char* label, const RunOutcome& o) {
  std::printf("  %-16s worst_slo_hit=%.4f  train_makespan=%8.1f s  grants=%3zu"
              "  end=%8.1f s\n",
              label, o.worst_hit_rate, o.train_makespan_s, o.grants.size(),
              o.end_s);
  for (std::size_t m = 0; m < o.summaries.size(); ++m) {
    const SloSummary& s = o.summaries[m];
    std::printf("    model %zu: served=%6lld  hit=%.4f  p99=%.1f ms\n", m,
                static_cast<long long>(s.completed), s.hit_rate, s.p99_s * 1e3);
  }
  for (const GrantRecord& g : o.grants)
    std::printf("    grant t=%7.3f job=%lld %lld->%lld mig=%.3f\n", g.time_s,
                static_cast<long long>(g.job_id),
                static_cast<long long>(g.from_devices),
                static_cast<long long>(g.to_devices), g.migration_s);
}

bool identical(const RunOutcome& a, const RunOutcome& b) {
  if (a.end_s != b.end_s || a.train_makespan_s != b.train_makespan_s) return false;
  if (a.latencies != b.latencies) return false;
  if (a.lease_steps_done != b.lease_steps_done) return false;
  if (a.grants.size() != b.grants.size()) return false;
  for (std::size_t i = 0; i < a.grants.size(); ++i) {
    if (a.grants[i].time_s != b.grants[i].time_s ||
        a.grants[i].job_id != b.grants[i].job_id ||
        a.grants[i].to_devices != b.grants[i].to_devices ||
        a.grants[i].migration_s != b.grants[i].migration_s)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"seed", "rng seed (default 42)"},
               {"devices", "cluster inventory in V100s (default 120)"},
               {"steady_rps", "steady-state arrival rate per model"},
               {"burst_rps", "burst arrival rate (smoke: 1200)"},
               {"burst_s", "burst duration seconds (smoke: 0.8)"},
               {"tail_s", "post-burst tail seconds (smoke: 1.0)"},
               {"lease_steps", "real training-lease steps (smoke: 30)"},
               {"train_steps", "analytic training job steps (smoke: 2500)"},
               {"smoke", "tiny workload for CI (0/1)"},
               {"json", "write perf-trajectory JSON to this path"},
               {"trace", "write Chrome trace-event JSON to this path"},
               {"metrics", "write metrics snapshot to this path"}});
  if (flags.help_requested()) {
    flags.print_help("bench_cosched: train+serve co-scheduling vs static split");
    return 0;
  }
  const BenchParams p = params_from(flags);
  const bool custom_load =
      flags.overridden("devices") || flags.overridden("steady_rps") ||
      flags.overridden("burst_rps") || flags.overridden("burst_s") ||
      flags.overridden("tail_s") || flags.overridden("train_steps") ||
      flags.overridden("lease_steps");

  std::printf("bench_cosched: %lld V100s, 3 serving models (2 leases) + 1 live "
              "training lease + 8 analytic training jobs\n",
              static_cast<long long>(p.devices));

  obs::TraceRecorder trace_rec;
  obs::MetricsRegistry metrics;
  obs::Observability obs{&trace_rec, &metrics};

  struct PolicyResult {
    RunOutcome cosched, stat;
    bool deterministic = true;
  };
  std::map<std::string, PolicyResult> results;
  for (PolicyKind kind : {PolicyKind::kWfs, PolicyKind::kGavel}) {
    PolicyResult r;
    // Observability attaches to the WFS co-scheduled run only: one run's
    // instruments, not four runs merged.
    const bool instrument = kind == PolicyKind::kWfs;
    r.cosched = run_cluster(p, kind, /*static_split=*/false, /*workers=*/0,
                            instrument ? obs : obs::Observability{});
    r.stat = run_cluster(p, kind, /*static_split=*/true, /*workers=*/0);
    for (std::int64_t workers : {2, 8}) {
      const RunOutcome other =
          run_cluster(p, kind, /*static_split=*/false, workers);
      if (!identical(r.cosched, other)) r.deterministic = false;
    }
    std::printf("\npolicy=%s\n", policy_label(kind));
    print_outcome("co-scheduled", r.cosched);
    print_outcome("static-split", r.stat);
    results[policy_label(kind)] = r;
  }

  // ---- claims ----
  bool ok = true;
  const char* miss = custom_load ? "no (informational: custom workload)" : "NO — BUG";
  auto gate = [&](bool pass, const char* text) {
    std::printf("  %s: %s\n", text, pass ? "yes" : miss);
    if (!pass && !custom_load) ok = false;
  };

  std::printf("\nclaims:\n");
  gate(p.devices >= 100, "cluster scale >= 100 simulated devices");
  for (const auto& [name, r] : results) {
    std::string t1 = name + ": co-scheduled beats static split on worst-model SLO hit";
    gate(r.cosched.worst_hit_rate > r.stat.worst_hit_rate, t1.c_str());
    std::string t2 = name + ": training makespan within 5% of static split";
    gate(r.cosched.train_makespan_s <= 1.05 * r.stat.train_makespan_s, t2.c_str());
    std::string t3 = name + ": bit-identical across workers {0, 2, 8}";
    gate(r.deterministic, t3.c_str());
  }

  const std::string json = flags.json_path();
  if (!json.empty()) {
    vf::bench::JsonReport report("bench_cosched");
    report.add("cosched.devices", static_cast<double>(p.devices), "devices");
    for (const auto& [name, r] : results) {
      const std::string base = "cosched." + name + ".";
      report.add(base + "worst_slo_hit", r.cosched.worst_hit_rate, "fraction");
      report.add(base + "static.worst_slo_hit", r.stat.worst_hit_rate, "fraction");
      report.add(base + "slo_gain",
                 r.cosched.worst_hit_rate - r.stat.worst_hit_rate, "fraction");
      report.add(base + "train_makespan_s", r.cosched.train_makespan_s, "s");
      report.add(base + "static.train_makespan_s", r.stat.train_makespan_s, "s");
      report.add(base + "grants", static_cast<double>(r.cosched.grants.size()),
                 "events");
    }
    if (!report.save(json)) ok = false;
  }
  if (!flags.metrics_path().empty() && !metrics.save(flags.metrics_path()))
    ok = false;
  if (!flags.trace_path().empty() && !trace_rec.save(flags.trace_path()))
    ok = false;

  std::printf("\nbench_cosched: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
