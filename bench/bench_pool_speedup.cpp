// Microbench: wall-clock speedup of the host thread pool running the
// engine's per-device step loop, versus the serial reference path, on an
// 8-device mapping. Also re-verifies the determinism contract on the way:
// the pooled run's parameters must be bit-identical to the serial run's.
//
// Expected shape: on a host with >= 8 cores the speedup approaches the
// device count (minus sync overhead); the acceptance bar for this harness
// is > 1.5x. On a single-core host both paths serialize and the ratio is
// ~1.0 — the bench prints the core count so that reading is unambiguous.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

double run_steps(VirtualFlowEngine& eng, std::int64_t steps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < steps; ++i) eng.train_step();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

VirtualFlowEngine make_engine(const ProxyTask& task, const Sequential& model,
                              const TrainRecipe& recipe, std::int64_t vns,
                              std::int64_t num_devices, std::int64_t workers,
                              std::uint64_t seed) {
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  cfg.num_threads = workers;
  return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile("bert-base"),
                           make_devices(DeviceType::kV100, num_devices),
                           VnMapping::even(vns, num_devices, recipe.global_batch), cfg);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"steps", "timed training steps per configuration (default 20)"},
               {"devices", "device count (default 8)"},
               {"vns", "virtual nodes (default 8)"},
               {"workers", "pool workers (default: hardware concurrency, capped at devices)"},
               {"batch", "global batch (default 512 for meaty per-device work)"},
               {"seed", "seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Pool speedup: parallel vs serial per-device step loop");
    return 0;
  }
  const std::int64_t steps = flags.get_int("steps", 20, 2);
  const std::int64_t devices = flags.get_int("devices", 8);
  const std::int64_t vns = flags.get_int("vns", 8);
  const std::int64_t batch = flags.get_int("batch", 512, 64);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto hw = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  const std::int64_t workers =
      flags.get_int("workers", std::max<std::int64_t>(1, std::min(hw, devices)));

  ProxyTask task = make_task("qnli-sim", seed);
  TrainRecipe recipe = make_recipe_with_batch("qnli-sim", batch);
  Sequential model = make_proxy_model("qnli-sim", seed);

  print_banner(std::cout, "Thread-pool speedup on the per-device step loop");
  std::printf("  host cores=%lld  devices=%lld  vns=%lld  batch=%lld  workers=%lld  steps=%lld\n",
              static_cast<long long>(hw), static_cast<long long>(devices),
              static_cast<long long>(vns), static_cast<long long>(batch),
              static_cast<long long>(workers), static_cast<long long>(steps));

  auto serial = make_engine(task, model, recipe, vns, devices, /*workers=*/0, seed);
  auto pooled = make_engine(task, model, recipe, vns, devices, workers, seed);

  // Warm both paths (first step pays one-time setup in the cost model).
  serial.train_step();
  pooled.train_step();

  const double serial_s = run_steps(serial, steps);
  const double pooled_s = run_steps(pooled, steps);
  const double speedup = serial_s / pooled_s;

  Table table({"path", "wall time (s)", "steps/s"});
  table.row().cell("serial").cell(serial_s, 3).cell(static_cast<double>(steps) / serial_s, 2);
  table.row()
      .cell("pool x" + std::to_string(workers))
      .cell(pooled_s, 3)
      .cell(static_cast<double>(steps) / pooled_s, 2);
  table.print(std::cout);

  const bool exact = serial.parameters().equals(pooled.parameters());
  std::printf("  bit-identical parameters after %lld steps: %s\n",
              static_cast<long long>(steps + 1), exact ? "yes" : "NO — BUG");
  std::printf("  speedup: %.2fx (target > 1.5x on a multi-core host)\n", speedup);
  if (!exact) return 1;
  return 0;
}
