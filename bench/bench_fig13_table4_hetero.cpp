// Figure 13 + Table 4: heterogeneous training throughput and accuracy.
//
// Reproduces the paper's H1/H2/H3 experiment groups (V100 + P100 mixes at
// global batch 8192) against the homogeneous baselines, then verifies the
// headline H3 configuration converges to the same target accuracy by
// actually training the imagenet-sim proxy under the uneven mapping.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

struct HeteroConfig {
  std::string name;
  std::int64_t v100s, v100_bs, v100_vn;
  std::int64_t p100s, p100_bs, p100_vn;
};

// Table 4 of the paper.
const std::vector<HeteroConfig> kConfigs = {
    {"H1a", 2, 2048, 8, 2, 2048, 8},  {"H1b", 2, 3072, 16, 2, 1024, 4},
    {"H1c", 2, 3072, 32, 2, 1024, 4}, {"H2a", 2, 3072, 16, 4, 512, 2},
    {"H2b", 2, 3072, 16, 4, 512, 4},  {"H2c", 2, 3072, 16, 4, 512, 8},
    {"H2d", 2, 3072, 16, 4, 512, 16}, {"H3", 2, 2048, 8, 8, 512, 2},
};

double simulate_throughput(const HeteroConfig& c) {
  // Engine-level simulated throughput (compute barrier + ring all-reduce),
  // the "Actual" series of Fig 14.
  const ModelProfile& m = model_profile("resnet50");
  double worst = 0.0;
  {
    std::vector<std::int64_t> vns(static_cast<std::size_t>(c.v100_vn),
                                  c.v100_bs / c.v100_vn);
    worst = std::max(worst, device_step_time_s(device_spec(DeviceType::kV100), m, vns));
  }
  {
    std::vector<std::int64_t> vns(static_cast<std::size_t>(c.p100_vn),
                                  c.p100_bs / c.p100_vn);
    worst = std::max(worst, device_step_time_s(device_spec(DeviceType::kP100), m, vns));
  }
  const std::int64_t world = c.v100s + c.p100s;
  const double t = worst + ring_allreduce_time_s(m.param_bytes(), world, {});
  return static_cast<double>(c.v100s * c.v100_bs + c.p100s * c.p100_bs) / t;
}

double homogeneous_throughput(DeviceType type, std::int64_t gpus, std::int64_t B) {
  return allocation_throughput(model_profile("resnet50"), B, Allocation::of(type, gpus));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"epochs", "accuracy-run epochs (default 30)"},
                           {"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 13 + Table 4: heterogeneous training throughput & accuracy");
    return 0;
  }
  const std::int64_t epochs = flags.get_int("epochs", 30, 1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::int64_t B = 8192;

  print_banner(std::cout, "Table 4 configs + Fig 13 throughput (ResNet-50, B=8192)");
  Table table({"exp", "config", "throughput (img/s)", "vs 2xV100", "vs P100-only"});
  const double v100_only = homogeneous_throughput(DeviceType::kV100, 2, B);
  double h3_gain = 0.0;
  for (const auto& c : kConfigs) {
    const double tput = simulate_throughput(c);
    const double p100_only = homogeneous_throughput(DeviceType::kP100, c.p100s, B);
    const std::string cfg = std::to_string(c.v100s) + "xV100@" + std::to_string(c.v100_bs) +
                            "/" + std::to_string(c.v100_vn) + "VN + " +
                            std::to_string(c.p100s) + "xP100@" + std::to_string(c.p100_bs) +
                            "/" + std::to_string(c.p100_vn) + "VN";
    table.row()
        .cell(c.name)
        .cell(cfg)
        .cell(tput, 0)
        .cell(tput / v100_only, 2)
        .cell(tput / p100_only, 2);
    if (c.name == "H3") h3_gain = tput / v100_only - 1.0;
  }
  table.row().cell("-").cell("2xV100 only").cell(v100_only, 0).cell(1.0, 2).cell("-");
  table.row()
      .cell("-")
      .cell("8xP100 only")
      .cell(homogeneous_throughput(DeviceType::kP100, 8, B), 0)
      .cell("-")
      .cell(1.0, 2);
  table.print(std::cout);

  // Solver fallback behaviour for the H1 inventory (paper: V100-only wins).
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kP100, profile_workload(DeviceType::kP100, m));
  HeterogeneousSolver solver(m, std::move(profiles));
  const auto h1 = solver.solve({{DeviceType::kV100, 2}, {DeviceType::kP100, 2}}, B);
  std::printf("\n  H1 inventory solver pick: %s (paper: falls back toward V100-heavy)\n",
              h1.has_value() && h1->heterogeneous ? "heterogeneous" : "V100 only");

  // Accuracy check: H3's uneven mapping must reach the homogeneous target.
  print_banner(std::cout, "Fig 13 accuracy: H3 trains to the homogeneous target");
  ProxyTask task = make_task("imagenet-sim", seed);
  Sequential model = make_proxy_model("imagenet-sim", seed);
  TrainRecipe recipe = make_recipe("imagenet-sim");
  recipe.epochs = epochs;
  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  std::vector<std::vector<std::int64_t>> per_device;
  for (int g = 0; g < 2; ++g)
    per_device.push_back(std::vector<std::int64_t>(8, 256));  // V100: 8 VNs x 256
  for (int g = 0; g < 8; ++g)
    per_device.push_back(std::vector<std::int64_t>(2, 256));  // P100: 2 VNs x 256
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile("resnet50"),
                        make_heterogeneous({{DeviceType::kV100, 2}, {DeviceType::kP100, 8}}),
                        VnMapping::uneven(per_device), cfg);
  const TrainResult res = train(eng, *task.val, recipe.epochs);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("H3 throughput gain over V100-only (%)", 100.0 * h3_gain, 42.3);
  vf::bench::print_claim("H3 final accuracy (%)", 100.0 * res.final_accuracy, 75.80);
  vf::bench::print_claim("homogeneous target (%)", 100.0 * task.target_accuracy, 76.26);
  return 0;
}
