// Table 2: BERT-BASE fine-tuning reproducibility across GPU counts on
// three GLUE tasks (QNLI, SST-2, CoLA), global batch fixed at 64 via
// 8 total virtual nodes (VN/GPU of 8, 4, 2, 1 on 1, 2, 4, 8 GPUs).
//
// Expected shape (paper): all rows match the target accuracy per task;
// batch 64 previously did not fit one V100 at all.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "experiment seed (default 42)"},
                           {"epochs", "override epochs (default: per-task recipe)"}});
  if (flags.help_requested()) {
    flags.print_help("Table 2: BERT-BASE GLUE reproducibility, batch 64");
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::int64_t epochs = flags.get_int("epochs", -1, 1);

  const std::vector<std::string> tasks = {"qnli-sim", "sst2-sim", "cola-sim"};
  const std::vector<double> paper_acc = {90.90, 91.97, 82.36};

  print_banner(std::cout, "Table 2: BERT-BASE fine-tuning (batch 64, 8 total VNs)");
  // Memory context from the simulated devices (Table 2's footnote).
  const auto frontier =
      max_micro_batch(device_spec(DeviceType::kV100), model_profile("bert-base"), true);
  std::printf("  bert-base max single-VN batch on one V100: %lld (paper: 64 does not fit)\n\n",
              static_cast<long long>(frontier));

  Table table({"GPUs", "BS", "VN/GPU", "QNLI acc (%)", "SST-2 acc (%)", "CoLA acc (%)"});
  std::vector<std::vector<double>> accs(4);
  const std::int64_t gpu_counts[] = {1, 2, 4, 8};
  for (int gi = 0; gi < 4; ++gi) {
    const std::int64_t gpus = gpu_counts[gi];
    for (const auto& task : tasks) {
      auto s = vf::bench::make_setup(task, "bert-base", 8, gpus, DeviceType::kV100,
                                     seed, -1, epochs);
      const TrainResult res = train(s.engine, *s.task.val, s.recipe.epochs);
      accs[static_cast<std::size_t>(gi)].push_back(100.0 * res.final_accuracy);
    }
    table.row()
        .cell(gpus)
        .cell(std::int64_t{64})
        .cell(8 / gpus)
        .cell(accs[static_cast<std::size_t>(gi)][0], 2)
        .cell(accs[static_cast<std::size_t>(gi)][1], 2)
        .cell(accs[static_cast<std::size_t>(gi)][2], 2);
  }
  table.row().cell("Target").cell("-").cell("-").cell(paper_acc[0], 2).cell(paper_acc[1], 2)
      .cell(paper_acc[2], 2);
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    bool identical = true;
    for (int gi = 1; gi < 4; ++gi)
      identical &= accs[static_cast<std::size_t>(gi)][t] == accs[0][t];
    vf::bench::print_claim(tasks[t] + " accuracy (1 GPU)", accs[0][t], paper_acc[t]);
    std::printf("  %-52s %s (paper: same target across 1-8 GPUs)\n",
                (tasks[t] + " identical across GPU counts").c_str(),
                identical ? "YES" : "NO");
  }
  return 0;
}
