// Figure 6: memory usage of ResNet-50 training on one RTX 2080 Ti, broken
// down by category over the first steps. Activations dominate the peak;
// the first step is slower due to one-off graph optimization.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"batch", "per-device batch (default: max that fits)"},
                           {"steps", "steps to trace (default 3)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 6: ResNet-50 memory breakdown on one RTX 2080 Ti");
    return 0;
  }
  const DeviceSpec& dev = device_spec(DeviceType::kRtx2080Ti);
  const ModelProfile& m = model_profile("resnet50");
  const std::int64_t max_b = max_micro_batch(dev, m, /*use_grad_buffer=*/false);
  const std::int64_t batch = flags.get_int("batch", max_b);
  const std::int64_t steps = flags.get_int("steps", 3);

  print_banner(std::cout, "Fig 6: ResNet-50 on one RTX 2080 Ti, batch " +
                              std::to_string(batch));
  const MemoryBreakdown mem = peak_memory(m, {batch}, /*use_grad_buffer=*/false);
  Table table({"category", "bytes", "fraction of peak"});
  const struct {
    const char* name;
    double v;
  } cats[] = {
      {"inputs", mem.inputs},         {"activations", mem.activations},
      {"kernel_temp", mem.kernel_temp}, {"parameters", mem.parameters},
      {"other/unknown", mem.other},
  };
  for (const auto& c : cats)
    table.row().cell(c.name).cell(fmt_bytes(c.v)).cell(c.v / mem.total(), 3);
  table.row().cell("TOTAL peak").cell(fmt_bytes(mem.total())).cell(1.0, 3);
  table.print(std::cout);

  print_banner(std::cout, "Step-time trace (first step pays graph optimization)");
  Table trace({"step", "step time (s)", "peak mem"});
  for (std::int64_t s = 0; s < steps; ++s) {
    double t = device_step_time_s(dev, m, {batch});
    if (s == 0) t += dev.first_step_extra_s;
    trace.row().cell(s + 1).cell(t, 3).cell(fmt_bytes(mem.total()));
  }
  trace.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("activations at peak (GB)", mem.activations / 1e9, 8.17);
  vf::bench::print_claim("parameters (MB)", mem.parameters / 1e6, 102.45);
  vf::bench::print_claim("kernel_temp (MB)", mem.kernel_temp / 1e6, 788.81);
  std::printf("  activations dominate peak: %s (paper: 'vast majority')\n",
              mem.activations > 0.7 * mem.total() ? "YES" : "NO");
  return 0;
}
