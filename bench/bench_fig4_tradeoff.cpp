// Figure 4: the time/resource trade-off space virtual nodes open up.
// Today's frameworks occupy only the 1-VN-per-GPU corner; VirtualFlow
// trades GPUs for sequential waves at near-linear cost.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"batch", "global batch (default 1024)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 4: time vs GPU requirement at a fixed global batch");
    return 0;
  }
  const std::int64_t B = flags.get_int("batch", 1024);
  const DeviceSpec& dev = device_spec(DeviceType::kV100);
  const ModelProfile& m = model_profile("resnet50");

  print_banner(std::cout, "Fig 4: ResNet-50, global batch " + std::to_string(B) +
                              ", V100s (4 total VNs)");
  Table table({"GPUs", "VN/GPU", "step time (s)", "norm time", "norm GPUs"});
  const std::int64_t total_vns = 4;
  double t_full = 0.0;
  for (const std::int64_t gpus : {4, 2, 1}) {
    const std::int64_t vn_per_gpu = total_vns / gpus;
    const std::vector<std::int64_t> vns(static_cast<std::size_t>(vn_per_gpu),
                                        B / total_vns);
    const double compute = device_step_time_s(dev, m, vns);
    const double comm = gpus > 1 ? ring_allreduce_time_s(m.param_bytes(), gpus, {}) : 0.0;
    const double t = compute + comm;
    if (gpus == 4) t_full = t;
    table.row()
        .cell(gpus)
        .cell(vn_per_gpu)
        .cell(t, 4)
        .cell(t / t_full, 2)
        .cell(static_cast<double>(gpus) / 4.0, 2);
  }
  table.print(std::cout);
  std::printf(
      "\n  Today's design space is the first row only (1 VN per GPU); VirtualFlow\n"
      "  gracefully falls back to fewer GPUs at ~proportionally longer steps.\n");
  return 0;
}
