// Figure 17: peak memory and throughput on a single RTX 2080 Ti across
// virtual-node counts (1..32), normalized by the VN=1 (stock framework)
// values, for ResNet-50, Transformer, and BERT-LARGE.
//
// Per-VN batch is held at the device's max-fit micro-batch, so the global
// batch grows with the VN count — fewer parameter updates per example is
// what lifts throughput for update-heavy models (paper: up to +31.4% for
// BERT-LARGE; memory overhead at most ~16.2%, constant beyond 2 VNs).
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {});
  if (flags.help_requested()) {
    flags.print_help("Fig 17: normalized peak memory and throughput vs VN count");
    return 0;
  }
  const DeviceSpec& dev = device_spec(DeviceType::kRtx2080Ti);
  const std::vector<std::string> models = {"resnet50", "transformer", "bert-large"};
  const std::vector<std::int64_t> vn_counts = {1, 2, 4, 8, 16, 32};

  double worst_mem_overhead = 0.0;
  double best_tput_gain = 0.0;
  double worst_tput_loss = 1.0;

  for (const auto& name : models) {
    const ModelProfile& m = model_profile(name);
    const std::int64_t b = max_micro_batch(dev, m, /*use_grad_buffer=*/false);

    print_banner(std::cout, "Fig 17: " + name + " on one RTX 2080 Ti (per-VN batch " +
                                std::to_string(b) + ")");
    Table table({"VNs", "global batch", "norm peak mem", "norm throughput"});
    const double mem1 = peak_memory(m, {b}, false).total();
    const double tput1 = static_cast<double>(b) / device_step_time_s(dev, m, {b});
    for (const std::int64_t v : vn_counts) {
      const std::vector<std::int64_t> vns(static_cast<std::size_t>(v), b);
      const double mem = peak_memory(m, vns, v > 1).total();
      const double tput =
          static_cast<double>(b * v) / device_step_time_s(dev, m, vns);
      table.row().cell(v).cell(b * v).cell(mem / mem1, 3).cell(tput / tput1, 3);
      worst_mem_overhead = std::max(worst_mem_overhead, mem / mem1 - 1.0);
      best_tput_gain = std::max(best_tput_gain, tput / tput1 - 1.0);
      worst_tput_loss = std::min(worst_tput_loss, tput / tput1);
    }
    table.print(std::cout);
    const double mem2 = peak_memory(m, {b, b}, true).total();
    const double mem32 =
        peak_memory(m, std::vector<std::int64_t>(32, b), true).total();
    std::printf("  memory overhead constant beyond 2 VNs: %s\n",
                mem2 == mem32 ? "YES" : "NO");
  }

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("max memory overhead across models (%)",
                         100.0 * worst_mem_overhead, 16.2);
  vf::bench::print_claim("best throughput gain at high VN count (%)",
                         100.0 * best_tput_gain, 31.4);
  vf::bench::print_claim("worst throughput vs stock (x)", worst_tput_loss, 0.958);
  return 0;
}
