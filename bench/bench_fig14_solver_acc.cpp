// Figure 14: heterogeneous-solver prediction accuracy. For every Table 4
// configuration, compare the solver's predicted throughput (from offline
// profiles + the comm estimate) against the engine-simulated "actual"
// throughput. Paper: predictions within 5.6% of actual on average.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

struct HeteroConfig {
  std::string name;
  std::int64_t v100s, v100_bs, v100_vn;
  std::int64_t p100s, p100_bs, p100_vn;
};

const std::vector<HeteroConfig> kConfigs = {
    {"H1a", 2, 2048, 8, 2, 2048, 8},  {"H1b", 2, 3072, 16, 2, 1024, 4},
    {"H1c", 2, 3072, 32, 2, 1024, 4}, {"H2a", 2, 3072, 16, 4, 512, 2},
    {"H2b", 2, 3072, 16, 4, 512, 4},  {"H2c", 2, 3072, 16, 4, 512, 8},
    {"H2d", 2, 3072, 16, 4, 512, 16}, {"H3", 2, 2048, 8, 8, 512, 2},
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {});
  if (flags.help_requested()) {
    flags.print_help("Fig 14: solver-predicted vs actual throughput (Table 4 configs)");
    return 0;
  }
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kP100, profile_workload(DeviceType::kP100, m));
  HeterogeneousSolver solver(m, std::move(profiles));

  print_banner(std::cout, "Fig 14: predicted vs actual throughput (img/s)");
  Table table({"exp", "actual", "solver", "error (%)"});
  double total_err = 0.0;
  for (const auto& c : kConfigs) {
    // Actual: engine-style simulation (barrier + ring all-reduce).
    double worst = 0.0;
    worst = std::max(worst, device_step_time_s(
                                device_spec(DeviceType::kV100), m,
                                std::vector<std::int64_t>(
                                    static_cast<std::size_t>(c.v100_vn),
                                    c.v100_bs / c.v100_vn)));
    worst = std::max(worst, device_step_time_s(
                                device_spec(DeviceType::kP100), m,
                                std::vector<std::int64_t>(
                                    static_cast<std::size_t>(c.p100_vn),
                                    c.p100_bs / c.p100_vn)));
    const std::int64_t world = c.v100s + c.p100s;
    const std::int64_t B = c.v100s * c.v100_bs + c.p100s * c.p100_bs;
    const double actual =
        static_cast<double>(B) /
        (worst + ring_allreduce_time_s(m.param_bytes(), world, {}));

    // Solver prediction from the profile-driven objective.
    std::vector<TypeAssignment> a = {
        {DeviceType::kV100, c.v100s, c.v100_bs, c.v100_vn, c.v100_bs / c.v100_vn},
        {DeviceType::kP100, c.p100s, c.p100_bs, c.p100_vn, c.p100_bs / c.p100_vn}};
    const double predicted = static_cast<double>(B) / solver.predict_step_time(a);

    const double err = 100.0 * std::fabs(predicted - actual) / actual;
    total_err += err;
    table.row().cell(c.name).cell(actual, 0).cell(predicted, 0).cell(err, 2);
  }
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("mean absolute prediction error (%)",
                         total_err / static_cast<double>(kConfigs.size()), 5.6);
  return 0;
}
