// Chaos bench: deterministic fault injection through training and serving.
//
// A seeded FaultPlan (vf::fault) schedules device kills, recoveries,
// straggler slowdown windows, and comm-step faults against the virtual
// clock while a 2000 rps streaming burst is in flight. The serving loop
// answers every kill with a VN remap onto the survivors plus a zero-loss
// re-dispatch of the dead device's in-flight slices; the elastic rule sees
// the loss as a capacity cap until recovery; expired requests shed
// gracefully at admission. The same injector drives a training arm: a kill
// mid-run must leave the parameter trajectory bit-identical to an engine
// that ran on the surviving device count from the start.
//
// Headline claims. The invariants (1, 2, 5, 6) gate on every workload —
// they are correctness, not calibration; the SLO-delta and fault-coverage
// claims (3, 4) are enforced at the default workload and informational
// under overridden knobs, like bench_serving:
//
//   1. Zero loss: every trace request leaves the chaos replay exactly once
//      — served, rejected, or shed; never lost, never duplicated.
//   2. Streams survive kills intact: a completed stream carries exactly its
//      requested tokens with strictly increasing stamps — an eviction
//      re-dispatches only the lost token, never rewinds landed ones.
//   3. Graceful degradation: the chaos arm's SLO hit rate lands within a
//      bounded delta of the no-fault baseline on the same trace.
//   4. Faults bite: every kill is honored (4-device rig, never at minimum),
//      charges a VN-remap migration, and evicts in-flight slices whose
//      requests all surface as recorded retries.
//   5. Determinism: the faulted replay — records, fault log, resize
//      timeline — is bit-identical across host worker counts {0, 2, 8},
//      the exported trace + metrics JSON are BYTE-identical across the
//      sweep, and a re-run with the same fault seed is byte-identical too.
//   6. Training recovery invariant: a chaos plan replays bit-exactly across
//      worker counts, and a kill's post-remap trajectory equals a
//      from-scratch run on the surviving device set.
//
// Prints the baseline-vs-chaos SLO table, the fault log, and the resize
// timeline. Exit 1 when any enforced claim fails. --json emits the
// perf-trajectory record; --trace/--metrics dump the chaos run's Perfetto
// timeline (fault markers included) and metrics snapshot.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.h"

using namespace vf;
using namespace vf::serve;
using vf::bench::Flags;

namespace {

struct BenchParams {
  std::uint64_t seed = 42;
  std::uint64_t fault_seed = 7;
  std::string task = "mrpc-sim";
  std::string profile = "bert-base";
  std::int64_t vns = 8;
  std::int64_t devices = 4;
  std::int64_t max_devices = 8;
  std::int64_t queue_cap = 1024;
  std::int64_t max_batch = 64;
  double max_wait_s = 0.01;
  double deadline_s = 0.25;
  double stream_fraction = 0.4;
  double steady_rps = 300.0;
  double burst_rps = 2000.0;
  double burst_s = 1.0;
  double tail_s = 1.0;
  double slo_delta = 0.25;  ///< max hit-rate drop the chaos arm may cost
  std::int64_t train_steps = 12;
};

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;

  explicit Rig(const std::string& task_name, std::uint64_t seed)
      : task(make_task(task_name, seed)),
        model(make_proxy_model(task_name, seed)),
        recipe(make_recipe(task_name)) {}

  VirtualFlowEngine make_engine(const BenchParams& p, std::int64_t devices,
                                std::int64_t workers) const {
    EngineConfig cfg;
    cfg.seed = 42;
    cfg.enforce_memory = false;
    cfg.num_threads = workers;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             model_profile(p.profile),
                             make_devices(DeviceType::kV100, devices),
                             VnMapping::even(p.vns, devices, recipe.global_batch),
                             cfg);
  }
};

std::vector<InferRequest> chaos_trace(const BenchParams& p, const Dataset& pool) {
  StreamShape shape;
  shape.stream_fraction = p.stream_fraction;
  return streaming_trace(p.seed,
                         {{p.steady_rps, 0.4},
                          {p.burst_rps, p.burst_s},
                          {p.steady_rps * 0.5, p.tail_s}},
                         pool.size(), shape);
}

/// The chaos schedule under test: kills (each with a paired recover),
/// straggler windows, and a comm fault, all landing inside the burst.
fault::FaultPlan make_plan(const BenchParams& p) {
  fault::ChaosConfig cfg;
  cfg.start_s = 0.45;
  cfg.duration_s = 0.4 + p.burst_s;  // the whole burst is fair game
  cfg.kills = 2;
  cfg.recover_delay_s = 0.6;
  cfg.stragglers = 2;
  cfg.straggler_duration_s = 0.5;
  cfg.comm_faults = 1;
  cfg.max_device = p.devices - 1;
  return fault::FaultPlan::chaos(p.fault_seed, cfg);
}

ServerConfig server_config(const BenchParams& p, bool shed) {
  ServerConfig cfg;
  cfg.queue_capacity = p.queue_cap;
  cfg.batch = {p.max_batch, p.max_wait_s};
  cfg.deadline_s = p.deadline_s;
  cfg.continuous = true;
  cfg.stream.disaggregate = true;
  cfg.shed_expired = shed;
  cfg.elastic.enabled = true;
  cfg.elastic.high_watermark = 48;
  cfg.elastic.low_watermark = 4;
  cfg.elastic.min_devices = 1;
  cfg.elastic.max_devices = p.max_devices;
  cfg.elastic.cooldown_batches = 1;
  return cfg;
}

struct RunOutcome {
  SloSummary summary;
  std::vector<RequestRecord> records;
  std::vector<ResizeEvent> resizes;
  std::vector<FaultRecord> faults;
  std::int64_t shed = 0;
  std::int64_t requeued = 0;
};

/// One serving replay; `faulted` attaches the seeded injector (and opts
/// into deadline shedding — graceful degradation is part of the fault
/// story). The baseline runs the identical trace with neither.
RunOutcome run_serving(const BenchParams& p, std::int64_t workers, bool faulted,
                       obs::Observability obs = {}) {
  Rig rig(p.task, p.seed);
  VirtualFlowEngine engine = rig.make_engine(p, p.devices, workers);
  Server server(engine, *rig.task.val, server_config(p, /*shed=*/faulted));
  server.set_observability(obs);
  fault::FaultInjector injector(make_plan(p));
  injector.set_observability(obs);
  if (faulted) server.set_fault_injector(&injector);
  server.replay(chaos_trace(p, *rig.task.val));
  return {server.slo().summary(), server.slo().records(), server.resizes(),
          server.faults(),         server.queue().shed(), server.queue().requeued()};
}

/// Zero-loss invariant: every trace request leaves the replay exactly
/// once. Returns false on any lost or duplicated id.
bool zero_loss(const RunOutcome& o, std::size_t trace_size) {
  if (o.summary.completed + o.summary.rejected !=
      static_cast<std::int64_t>(trace_size))
    return false;
  std::set<std::int64_t> ids;
  for (const RequestRecord& r : o.records) ids.insert(r.id);
  return ids.size() == o.records.size() && ids.size() == trace_size;
}

/// Claim 2: completed streams carry exactly their requested tokens with
/// strictly increasing stamps.
bool streams_intact(const RunOutcome& o, const std::vector<InferRequest>& trace) {
  std::vector<std::int64_t> requested(trace.size(), 0);
  for (const InferRequest& r : trace)
    requested[static_cast<std::size_t>(r.id)] = r.stream_tokens;
  for (const RequestRecord& r : o.records) {
    if (r.rejected || !r.streamed()) continue;
    if (static_cast<std::int64_t>(r.tokens.size()) !=
        requested[static_cast<std::size_t>(r.id)])
      return false;
    for (std::size_t i = 1; i < r.token_stamps.size(); ++i)
      if (r.token_stamps[i] <= r.token_stamps[i - 1]) return false;
  }
  return true;
}

/// Bit-identity over records, fault log, and resize timeline.
bool identical(const RunOutcome& a, const RunOutcome& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& x = a.records[i];
    const RequestRecord& y = b.records[i];
    if (x.id != y.id || x.rejected != y.rejected || x.retries != y.retries ||
        x.prediction != y.prediction || x.dispatch_s != y.dispatch_s ||
        x.queue_wait_s != y.queue_wait_s || x.finish_s != y.finish_s ||
        x.first_token_s != y.first_token_s)
      return false;
    if (x.tokens.size() != y.tokens.size()) return false;
    for (std::size_t t = 0; t < x.tokens.size(); ++t)
      if (x.tokens[t] != y.tokens[t] || x.token_stamps[t] != y.token_stamps[t])
        return false;
  }
  if (a.faults.size() != b.faults.size()) return false;
  for (std::size_t i = 0; i < a.faults.size(); ++i)
    if (a.faults[i].time_s != b.faults[i].time_s ||
        a.faults[i].device != b.faults[i].device ||
        a.faults[i].skipped != b.faults[i].skipped ||
        a.faults[i].evicted_slices != b.faults[i].evicted_slices ||
        a.faults[i].migration_s != b.faults[i].migration_s)
      return false;
  if (a.resizes.size() != b.resizes.size()) return false;
  for (std::size_t i = 0; i < a.resizes.size(); ++i)
    if (a.resizes[i].time_s != b.resizes[i].time_s ||
        a.resizes[i].to_devices != b.resizes[i].to_devices)
      return false;
  return true;
}

/// Does the exported trace contain an event with this exact name?
bool has_event(const std::string& trace_json, const char* name) {
  return trace_json.find("{\"name\": \"" + std::string(name) + "\"") !=
         std::string::npos;
}

/// Drives training steps against an injector-scheduled plan on the
/// engine's virtual clock — the training half of the recovery story.
void train_with_faults(VirtualFlowEngine& eng, fault::FaultInjector& inj,
                       std::int64_t steps) {
  for (std::int64_t i = 0; i < steps; ++i) {
    for (const fault::FaultEvent& ev : inj.due(eng.sim_time_s())) {
      switch (ev.kind) {
        case fault::FaultKind::kKill: {
          const auto ndev = static_cast<std::int64_t>(eng.devices().size());
          if (ndev <= 1) {
            inj.kill_skipped();
            break;
          }
          eng.fail_device(ev.device % ndev);
          inj.apply_slowdowns(eng);
          break;
        }
        case fault::FaultKind::kStragglerStart:
        case fault::FaultKind::kStragglerEnd:
          inj.apply_slowdowns(eng);
          break;
        case fault::FaultKind::kCommFault:
          if (inj.take_comm_fault()) eng.inject_comm_retry();
          break;
        case fault::FaultKind::kRecover:
          break;
      }
    }
    eng.train_step();
  }
}

struct TrainOutcome {
  bool workers_exact = false;    ///< chaos run bit-exact across {0, 2, 8}
  bool survivors_exact = false;  ///< post-kill == from-scratch surviving set
  double faulted_time_s = 0.0;
  double clean_time_s = 0.0;
};

TrainOutcome run_training(const BenchParams& p) {
  const std::string task_name = "qnli-sim";
  TrainOutcome out;

  // Chaos plan across worker counts: same seed, same plan, same bits.
  fault::ChaosConfig cfg;
  cfg.kills = 1;
  cfg.stragglers = 1;
  cfg.comm_faults = 1;
  cfg.max_device = p.devices - 1;
  std::vector<Tensor> params;
  std::vector<double> times;
  for (const std::int64_t workers : {0, 2, 8}) {
    Rig rig(task_name, p.seed);
    VirtualFlowEngine eng = rig.make_engine(p, p.devices, workers);
    fault::FaultInjector inj(fault::FaultPlan::chaos(p.fault_seed, cfg));
    train_with_faults(eng, inj, p.train_steps);
    params.push_back(eng.parameters());
    times.push_back(eng.sim_time_s());
  }
  out.workers_exact = params[0].equals(params[1]) && params[0].equals(params[2]) &&
                      times[0] == times[1] && times[0] == times[2];
  out.faulted_time_s = times[0];

  // The §7 invariant: kill one of `devices`, train on; the trajectory must
  // match an engine that ran on the survivors from step zero.
  Rig rig(task_name, p.seed);
  VirtualFlowEngine faulted = rig.make_engine(p, p.devices, 0);
  VirtualFlowEngine survivors = rig.make_engine(p, p.devices - 1, 0);
  fault::FaultPlan plan;
  plan.kill(faulted.sim_time_s(), p.devices - 1);
  fault::FaultInjector inj(std::move(plan));
  train_with_faults(faulted, inj, p.train_steps);
  for (std::int64_t i = 0; i < p.train_steps; ++i) survivors.train_step();
  out.survivors_exact = faulted.parameters().equals(survivors.parameters());
  out.clean_time_s = survivors.sim_time_s();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task", "proxy task generating payloads (default mrpc-sim)"},
               {"profile", "paper model profile for timing (default bert-base)"},
               {"vns", "virtual nodes / slots (default 8)"},
               {"devices", "initial device count (default 4)"},
               {"max-devices", "elastic ceiling (default 8)"},
               {"queue-cap", "admission queue capacity (default 1024)"},
               {"deadline-ms", "per-request SLO / stream TTFT (default 250)"},
               {"stream-fraction", "fraction of requests that stream (default 0.4)"},
               {"steady-rps", "steady arrival rate (default 300)"},
               {"burst-rps", "burst arrival rate (default 2000)"},
               {"burst-s", "burst duration (default 1.0)"},
               {"slo-delta", "max hit-rate drop chaos may cost (default 0.25)"},
               {"train-steps", "training-arm steps (default 12)"},
               {"fault-seed", "chaos plan seed (default 7)"},
               {"seed", "trace + model seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Deterministic fault injection: chaos kills/stragglers/"
                     "comm faults under a streaming burst — zero-loss "
                     "re-dispatch, bounded SLO cost, bit-exact faulted replay");
    return 0;
  }

  BenchParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  p.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 7));
  p.task = flags.get_string("task", "mrpc-sim");
  p.profile = flags.get_string("profile", "bert-base");
  p.vns = flags.get_int("vns", 8);
  p.devices = flags.get_int("devices", 4);
  p.max_devices = flags.get_int("max-devices", 8);
  p.queue_cap = flags.get_int("queue-cap", 1024);
  p.deadline_s = flags.get_double("deadline-ms", 250.0) / 1e3;
  p.stream_fraction = flags.get_double("stream-fraction", 0.4);
  p.steady_rps = flags.get_double("steady-rps", 300.0);
  p.burst_rps = flags.get_double("burst-rps", 2000.0);
  p.burst_s = flags.get_double("burst-s", 1.0, /*smoke_def=*/0.5);
  p.tail_s = flags.smoke() ? 0.6 : 1.0;
  p.slo_delta = flags.get_double("slo-delta", 0.25);
  p.train_steps = flags.get_int("train-steps", 12, /*smoke_def=*/8);

  print_banner(std::cout,
               "vf::fault — chaos schedule under a streaming burst");
  std::printf("  %s payloads on %s, %lld devices (max %lld); burst %.0f -> "
              "%.0f rps; fault seed %llu\n",
              p.task.c_str(), p.profile.c_str(), static_cast<long long>(p.devices),
              static_cast<long long>(p.max_devices), p.steady_rps, p.burst_rps,
              static_cast<unsigned long long>(p.fault_seed));

  Rig trace_rig(p.task, p.seed);
  const std::vector<InferRequest> trace = chaos_trace(p, *trace_rig.task.val);

  // Baseline and chaos arms on the identical trace; the chaos arm's
  // determinism sweep carries the worker-count bit-identity claim, with
  // trace + metrics exports as byte witnesses.
  const RunOutcome baseline = run_serving(p, 0, /*faulted=*/false);
  const std::vector<std::int64_t> worker_counts = {0, 2, 8};
  std::vector<RunOutcome> chaos_runs;
  std::vector<std::string> trace_jsons, metrics_jsons;
  for (const std::int64_t w : worker_counts) {
    obs::TraceRecorder rec;
    obs::MetricsRegistry metrics;
    chaos_runs.push_back(run_serving(p, w, /*faulted=*/true, {&rec, &metrics}));
    trace_jsons.push_back(rec.to_json());
    metrics_jsons.push_back(metrics.to_json());
  }
  const RunOutcome& chaos = chaos_runs.front();

  // Same fault seed, fresh everything: the replay must be byte-identical.
  std::string replay_trace_json, replay_metrics_json;
  {
    obs::TraceRecorder rec;
    obs::MetricsRegistry metrics;
    const RunOutcome again = run_serving(p, 0, /*faulted=*/true, {&rec, &metrics});
    (void)again;
    replay_trace_json = rec.to_json();
    replay_metrics_json = metrics.to_json();
  }

  std::printf("\n  no-fault baseline vs chaos schedule (same trace):\n");
  Table table({"arm", "served", "rejected", "shed", "retried", "p99 (ms)",
               "SLO hit", "tokens", "resizes"});
  for (const auto& [name, o] :
       {std::pair<const char*, const RunOutcome&>{"baseline", baseline},
        std::pair<const char*, const RunOutcome&>{"chaos", chaos}}) {
    table.row()
        .cell(name)
        .cell(o.summary.completed)
        .cell(o.summary.rejected)
        .cell(o.shed)
        .cell(o.summary.retried)
        .cell(o.summary.p99_s * 1e3, 2)
        .cell(o.summary.hit_rate, 3)
        .cell(o.summary.tokens)
        .cell(static_cast<std::int64_t>(o.resizes.size()));
  }
  table.print(std::cout);

  std::printf("\n  fault log (chaos arm):\n");
  for (const FaultRecord& f : chaos.faults)
    std::printf("    t=%7.3fs  %-10s dev=%-2lld%s evicted=%lld requeued=%lld "
                "migration=%.4fs\n",
                f.time_s, fault::fault_kind_name(f.kind),
                static_cast<long long>(f.device), f.skipped ? " SKIPPED" : "",
                static_cast<long long>(f.evicted_slices),
                static_cast<long long>(f.requeued_requests), f.migration_s);

  std::printf("\n  resize timeline (chaos arm):\n");
  for (const ResizeEvent& e : chaos.resizes)
    std::printf("    t=%7.3fs  %lld -> %lld devices  (queue %lld, migration %.4fs)\n",
                e.time_s, static_cast<long long>(e.from_devices),
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth), e.migration_s);

  const TrainOutcome train = run_training(p);
  std::printf("\n  training arm: chaos sim time %.3fs, clean surviving-set "
              "run %.3fs over %lld steps\n",
              train.faulted_time_s, train.clean_time_s,
              static_cast<long long>(p.train_steps));

  // Claims.
  bool custom_load = false;
  for (const char* knob :
       {"task", "profile", "vns", "devices", "max-devices", "queue-cap",
        "deadline-ms", "stream-fraction", "steady-rps", "burst-rps", "burst-s",
        "slo-delta", "train-steps", "fault-seed", "seed"})
    custom_load |= flags.overridden(knob);

  const bool loss_ok = zero_loss(baseline, trace.size()) &&
                       zero_loss(chaos, trace.size());
  const bool streams_ok = streams_intact(chaos, trace) && chaos.summary.tokens > 0;
  const double hit_drop = baseline.summary.hit_rate - chaos.summary.hit_rate;
  const bool slo_ok = hit_drop <= p.slo_delta;
  std::int64_t kills = 0, evicted = 0;
  bool kills_honored = true, migrations_charged = true;
  for (const FaultRecord& f : chaos.faults) {
    if (f.kind != fault::FaultKind::kKill) continue;
    ++kills;
    kills_honored &= !f.skipped;
    migrations_charged &= f.migration_s > 0.0;
    evicted += f.evicted_slices;
  }
  // Retries count every slice eviction; requeues only the classify/prefill
  // subset (an evicted decode chain parks and resumes instead), so the
  // requeue count can never exceed the retry count.
  const bool faults_bite = kills == 2 && kills_honored && migrations_charged &&
                           evicted > 0 && chaos.summary.retried > 0 &&
                           chaos.requeued <= chaos.summary.retries;
  bool exact = true;
  for (std::size_t i = 1; i < chaos_runs.size(); ++i)
    exact &= identical(chaos, chaos_runs[i]);
  bool export_exact = true;
  for (std::size_t i = 1; i < trace_jsons.size(); ++i) {
    export_exact &= trace_jsons[i] == trace_jsons.front();
    export_exact &= metrics_jsons[i] == metrics_jsons.front();
  }
  const bool replay_exact = replay_trace_json == trace_jsons.front() &&
                            replay_metrics_json == metrics_jsons.front();
  const std::string& trace_json = trace_jsons.front();
  const bool markers_ok =
      has_event(trace_json, "kill") && has_event(trace_json, "recover") &&
      has_event(trace_json, "straggler") && has_event(trace_json, "comm_fault") &&
      has_event(trace_json, "resize");

  bool ok = true;
  const std::string json = flags.json_path();
  if (!json.empty()) {
    vf::bench::JsonReport report("bench_faults");
    for (const auto& [name, o] :
         {std::pair<const char*, const RunOutcome&>{"baseline", baseline},
          std::pair<const char*, const RunOutcome&>{"chaos", chaos}}) {
      const std::string base = std::string("faults.") + name + ".";
      report.add(base + "served", static_cast<double>(o.summary.completed),
                 "requests");
      report.add(base + "rejected", static_cast<double>(o.summary.rejected),
                 "requests");
      report.add(base + "p99_latency_ms", o.summary.p99_s * 1e3, "ms");
      report.add(base + "slo_hit_rate", o.summary.hit_rate, "fraction");
      report.add(base + "tokens", static_cast<double>(o.summary.tokens), "tokens");
    }
    report.add("faults.chaos.shed", static_cast<double>(chaos.shed), "requests");
    report.add("faults.chaos.retried", static_cast<double>(chaos.summary.retried),
               "requests");
    report.add("faults.chaos.retries", static_cast<double>(chaos.summary.retries),
               "evictions");
    report.add("faults.chaos.evicted_slices", static_cast<double>(evicted),
               "slices");
    report.add("faults.chaos.fault_events",
               static_cast<double>(chaos.faults.size()), "events");
    report.add("faults.slo_hit_drop", hit_drop, "fraction");
    report.add("faults.train.chaos_sim_time_s", train.faulted_time_s, "s");
    report.add("faults.train.clean_sim_time_s", train.clean_time_s, "s");
    if (!report.save(json)) ok = false;
  }
  if (!flags.trace_path().empty() &&
      !vf::obs::save_text_file(flags.trace_path(), trace_json))
    ok = false;
  if (!flags.metrics_path().empty() &&
      !vf::obs::save_text_file(flags.metrics_path(), metrics_jsons.front()))
    ok = false;

  const char* miss = custom_load ? "no (informational: custom workload)" : "NO — BUG";
  std::printf("\n  zero loss, zero duplication (both arms): %s\n",
              loss_ok ? "yes" : "NO — BUG");
  std::printf("  streams complete with every requested token: %s\n",
              streams_ok ? "yes" : "NO — BUG");
  std::printf("  SLO hit-rate drop %.3f within %.2f of baseline: %s\n", hit_drop,
              p.slo_delta, slo_ok ? "yes" : miss);
  std::printf("  kills honored, migrations charged, evictions surface as "
              "retries: %s\n",
              faults_bite ? "yes" : miss);
  std::printf("  bit-identical faulted replay across workers {0, 2, 8}: %s\n",
              exact ? "yes" : "NO — BUG");
  std::printf("  byte-identical trace + metrics export across workers: %s\n",
              export_exact ? "yes" : "NO — BUG");
  std::printf("  byte-identical replay for the fixed fault seed: %s\n",
              replay_exact ? "yes" : "NO — BUG");
  std::printf("  trace carries kill/recover/straggler/comm_fault markers: %s\n",
              markers_ok ? "yes" : miss);
  std::printf("  training chaos bit-exact across workers {0, 2, 8}: %s\n",
              train.workers_exact ? "yes" : "NO — BUG");
  std::printf("  post-kill trajectory == from-scratch surviving set: %s\n",
              train.survivors_exact ? "yes" : "NO — BUG");

  if (!loss_ok || !streams_ok || !exact || !export_exact || !replay_exact ||
      !train.workers_exact || !train.survivors_exact)
    ok = false;
  if (!custom_load && (!slo_ok || !faults_bite || !markers_ok)) ok = false;
  return ok ? 0 : 1;
}
