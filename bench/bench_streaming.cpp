// Token-streaming serving A/B: prefill/decode disaggregation on the
// continuous-batching slice chain versus plain FIFO slice order, plus the
// share-weighted arbiter's device-time split under two-model contention.
//
// The workload is the LLM-serving shape: most requests stream a short
// completion — one long PREFILL slice (compute-bound, prices the whole
// prompt) admits the request into a VN slot, then a chain of short DECODE
// slices (memory-bandwidth-bound, one token each on the llm-decode
// profile's full-parameter read) streams the rest. Disaggregated
// scheduling admits waiting prefills ahead of decode continuations and
// preempts a decode chain at a token boundary when every slot is busy and
// a stream waits; FIFO order chains decodes first and never preempts.
//
// Headline claims, enforced at the default workload (informational under
// overridden knobs, like bench_serving):
//
//   1. Disaggregation cuts p99 TTFT versus FIFO slice order, at equal
//      or more tokens served.
//   2. The elastic budget closes under streaming load: bursts grow the
//      set (queue + in-flight triggering), drains shrink it back.
//   3. Two co-located models under sustained contention split device time
//      by their configured share weights: the SMALL-BATCH model's measured
//      share lands within 10% of its weight — the starvation case the
//      deadline-only arbiter failed.
//   4. Determinism: records — including every per-token stamp — replay
//      bit-identically across host worker counts {0, 2, 8}; the exported
//      observability trace (obs/trace.h) is BYTE-identical across the
//      same sweep, and attaching the recorder never perturbs a record.
//
// Prints the A/B SLO/TTFT/ITL table, the resize timeline, and the share
// split. Exit 1 when any enforced claim fails. --json emits the
// perf-trajectory record; --trace/--metrics dump the elastic run's
// Perfetto timeline and metrics snapshot.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace vf;
using namespace vf::serve;
using vf::bench::Flags;

namespace {

struct BenchParams {
  std::uint64_t seed = 42;
  std::string task = "cifar10-sim";
  std::string profile = "llm-decode";
  std::int64_t vns = 8;
  std::int64_t max_devices = 8;
  std::int64_t queue_cap = 4096;
  std::int64_t max_batch = 64;
  double max_wait_s = 0.005;
  double ttft_slo_s = 0.25;  ///< a stream's deadline is its TTFT
  double stream_fraction = 0.85;
  std::int64_t prompt_min = 8, prompt_max = 32;
  std::int64_t tokens_min = 4, tokens_max = 16;
  double steady_rps = 25.0;
  double burst_rps = 90.0;
  double burst_s = 2.0;
  double tail_s = 2.0;
  std::int64_t share_requests = 1024;  ///< small-batch model's backlog size
};

struct Rig {
  ProxyTask task;
  Sequential model;
  TrainRecipe recipe;

  Rig(const std::string& task_name, std::uint64_t seed, std::int64_t batch = -1)
      : task(make_task(task_name, seed)),
        model(make_proxy_model(task_name, seed)),
        recipe(batch > 0 ? make_recipe_with_batch(task_name, batch)
                         : make_recipe(task_name)) {}

  VirtualFlowEngine make_engine(const BenchParams& p, std::int64_t devices,
                                std::int64_t workers, std::int64_t vns) const {
    EngineConfig cfg;
    cfg.seed = 42;
    cfg.enforce_memory = false;
    cfg.num_threads = workers;
    return VirtualFlowEngine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                             model_profile(p.profile),
                             make_devices(DeviceType::kV100, devices),
                             VnMapping::even(vns, devices, recipe.global_batch), cfg);
  }
};

std::vector<InferRequest> make_stream_trace(const BenchParams& p,
                                            const Dataset& pool) {
  StreamShape shape;
  shape.stream_fraction = p.stream_fraction;
  shape.prompt_min = p.prompt_min;
  shape.prompt_max = p.prompt_max;
  shape.tokens_min = p.tokens_min;
  shape.tokens_max = p.tokens_max;
  return streaming_trace(p.seed,
                         {{p.steady_rps, 1.0},
                          {p.burst_rps, p.burst_s},
                          {p.steady_rps * 0.6, p.tail_s}},
                         pool.size(), shape);
}

ElasticPolicy elastic(std::int64_t max_devices) {
  ElasticPolicy e;
  e.enabled = true;
  // Streaming slots hold one request each, so load counts run far lower
  // than the classify benches': watermarks sized to the 8-slot rig.
  e.high_watermark = 18;
  e.low_watermark = 6;
  e.min_devices = 1;
  e.max_devices = max_devices;
  e.cooldown_batches = 1;
  return e;
}

struct RunOutcome {
  SloSummary summary;
  std::vector<RequestRecord> records;
  std::vector<ResizeEvent> resizes;
};

/// One full streaming replay. The A/B arms run on a FIXED device set so
/// the TTFT difference is pure scheduling policy; the elastic run lets
/// the budget move and carries the grow/shrink claim plus the
/// determinism sweep (resize timelines must replay bit-exactly too).
RunOutcome run_streaming(const BenchParams& p, std::int64_t workers,
                         bool disaggregate, bool elastic_enabled,
                         obs::Observability obs = {}) {
  Rig rig(p.task, p.seed);
  VirtualFlowEngine engine = rig.make_engine(p, /*devices=*/1, workers, p.vns);
  ServerConfig cfg;
  cfg.queue_capacity = p.queue_cap;
  cfg.batch = {p.max_batch, p.max_wait_s};
  cfg.deadline_s = p.ttft_slo_s;
  cfg.continuous = true;
  cfg.stream.disaggregate = disaggregate;
  cfg.elastic = elastic(p.max_devices);
  cfg.elastic.enabled = elastic_enabled;
  Server server(engine, *rig.task.val, cfg);
  server.set_observability(obs);
  server.replay(make_stream_trace(p, *rig.task.val));
  return {server.slo().summary(), server.slo().records(), server.resizes()};
}

/// Does the exported trace contain an event with this exact name?
bool has_event(const std::string& trace_json, const char* name) {
  return trace_json.find("{\"name\": \"" + std::string(name) + "\"") !=
         std::string::npos;
}

/// Bit-identity over full streamed records, token stamps included.
bool identical(const RunOutcome& a, const RunOutcome& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& x = a.records[i];
    const RequestRecord& y = b.records[i];
    if (x.id != y.id || x.rejected != y.rejected || x.prediction != y.prediction ||
        x.dispatch_s != y.dispatch_s || x.queue_wait_s != y.queue_wait_s ||
        x.compute_s != y.compute_s || x.comm_s != y.comm_s ||
        x.finish_s != y.finish_s || x.first_token_s != y.first_token_s)
      return false;
    if (x.tokens.size() != y.tokens.size()) return false;
    for (std::size_t t = 0; t < x.tokens.size(); ++t)
      if (x.tokens[t] != y.tokens[t] || x.token_stamps[t] != y.token_stamps[t])
        return false;
  }
  if (a.resizes.size() != b.resizes.size()) return false;
  for (std::size_t i = 0; i < a.resizes.size(); ++i)
    if (a.resizes[i].time_s != b.resizes[i].time_s ||
        a.resizes[i].to_devices != b.resizes[i].to_devices)
      return false;
  return true;
}

/// Two-model weighted-share contention: an aggressive large-batch model
/// (share 1) against a small-batch model (share 3), both with t = 0
/// classify backlogs sized to drain together under the 3:1 split. The
/// deadline-only arbiter let the large-batch co-tenant starve the
/// small-batch model; the share ledger must hold the small-batch model's
/// device time at its configured weight.
struct ShareOutcome {
  double small_batch_frac = 0.0;
  double target_frac = 0.0;
};

ShareOutcome run_share_split(const BenchParams& p) {
  Rig rig_big(p.task, p.seed, /*batch=*/64);
  Rig rig_small(p.task, p.seed + 1, /*batch=*/8);
  VirtualFlowEngine eng_big = rig_big.make_engine(p, 1, 0, /*vns=*/8);
  VirtualFlowEngine eng_small = rig_small.make_engine(p, 1, 0, /*vns=*/8);

  ModelRegistry registry;
  ModelConfig mc_big;
  mc_big.name = "large-batch";
  mc_big.queue_capacity = p.queue_cap;
  mc_big.batch = {p.max_batch, p.max_wait_s};
  mc_big.deadline_s = p.ttft_slo_s;
  mc_big.share = 1.0;
  ModelConfig mc_small = mc_big;
  mc_small.name = "small-batch";
  mc_small.share = 3.0;
  registry.add(eng_big, *rig_big.task.val, mc_big);
  registry.add(eng_small, *rig_small.task.val, mc_small);

  ColocationConfig cfg;
  cfg.continuous = true;
  cfg.elastic = elastic(p.max_devices);
  cfg.elastic.enabled = false;
  ColocatedServer server(registry, cfg);

  // Demands matched to the 3:1 split so both models stay backlogged for
  // essentially the whole replay (a drained model stops charging its
  // ledger and would skew the cumulative ratio). The small-batch model's
  // per-request device time is higher (vn_batch 1 slices amortize
  // nothing), so its request count is calibrated, not 3x.
  const std::int64_t small_n = p.share_requests;
  const std::int64_t big_n = (p.share_requests * 13) / 5;
  const auto backlog = [](std::int64_t count, const Dataset& pool) {
    std::vector<InferRequest> trace;
    for (std::int64_t i = 0; i < count; ++i)
      trace.push_back(InferRequest{i, 0.0, i % pool.size()});
    return trace;
  };
  server.replay({backlog(big_n, *rig_big.task.val),
                 backlog(small_n, *rig_small.task.val)});

  const double used_big = server.device_time_used(0);
  const double used_small = server.device_time_used(1);
  ShareOutcome out;
  out.target_frac = 3.0 / 4.0;
  out.small_batch_frac = used_small / (used_big + used_small);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task", "proxy task generating payloads (default cifar10-sim)"},
               {"profile", "paper model profile for timing (default llm-decode)"},
               {"vns", "virtual nodes / slots (default 8)"},
               {"max-devices", "elastic ceiling (default 8)"},
               {"queue-cap", "admission queue capacity (default 4096)"},
               {"ttft-slo-ms", "streaming TTFT deadline (default 250)"},
               {"stream-fraction", "fraction of requests that stream (default 0.85)"},
               {"tokens-max", "max tokens per stream (default 16)"},
               {"steady-rps", "steady arrival rate (default 25)"},
               {"burst-rps", "burst arrival rate (default 90)"},
               {"burst-s", "burst duration (default 2.0)"},
               {"share-requests", "per-model backlog of the share split run "
                                  "(default 1024)"},
               {"seed", "trace + model seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Token-streaming serving: prefill/decode disaggregation "
                     "vs FIFO slice order, TTFT/ITL SLOs, share-weighted "
                     "device-time split, bit-exact replay");
    return 0;
  }

  BenchParams p;
  p.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  p.task = flags.get_string("task", "cifar10-sim");
  p.profile = flags.get_string("profile", "llm-decode");
  p.vns = flags.get_int("vns", 8);
  p.max_devices = flags.get_int("max-devices", 8);
  p.queue_cap = flags.get_int("queue-cap", 4096);
  p.ttft_slo_s = flags.get_double("ttft-slo-ms", 250.0) / 1e3;
  p.stream_fraction = flags.get_double("stream-fraction", 0.85);
  p.tokens_max = flags.get_int("tokens-max", 16);
  p.steady_rps = flags.get_double("steady-rps", 25.0);
  p.burst_rps = flags.get_double("burst-rps", 90.0);
  p.burst_s = flags.get_double("burst-s", 2.0, /*smoke_def=*/0.6);
  p.tail_s = flags.smoke() ? 0.8 : 2.0;
  p.share_requests = flags.get_int("share-requests", 1024, /*smoke_def=*/256);

  print_banner(std::cout,
               "vf::serve — token streaming with prefill/decode disaggregation");
  std::printf("  %s payloads on %s, %lld slots; %.0f%% streams, %lld-%lld tokens, "
              "burst %.0f -> %.0f rps\n",
              p.task.c_str(), p.profile.c_str(), static_cast<long long>(p.vns),
              p.stream_fraction * 100.0, static_cast<long long>(p.tokens_min),
              static_cast<long long>(p.tokens_max), p.steady_rps, p.burst_rps);

  // A/B arms on a fixed single device: policy is the only difference.
  const RunOutcome disagg =
      run_streaming(p, 0, /*disaggregate=*/true, /*elastic_enabled=*/false);
  const RunOutcome fifo =
      run_streaming(p, 0, /*disaggregate=*/false, /*elastic_enabled=*/false);

  // Elastic run carries the grow/shrink claim; the determinism sweep
  // (claim 4) rides it so resize timelines are bit-compared too. Every
  // sweep run records a full observability trace + metrics snapshot: the
  // exported bytes must agree across worker counts (the trace is a
  // witness of the determinism contract, not just the records).
  const std::vector<std::int64_t> worker_counts = {0, 2, 8};
  std::vector<RunOutcome> elastic_runs;
  std::vector<std::string> trace_jsons, metrics_jsons;
  for (const std::int64_t w : worker_counts) {
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    elastic_runs.push_back(run_streaming(p, w, /*disaggregate=*/true,
                                         /*elastic_enabled=*/true,
                                         {&trace, &metrics}));
    trace_jsons.push_back(trace.to_json());
    metrics_jsons.push_back(metrics.to_json());
  }
  const RunOutcome& grown = elastic_runs.front();

  // The recorder must be a pure observer: an unobserved replay of the
  // same elastic run produces bit-identical records.
  const RunOutcome unobserved =
      run_streaming(p, 0, /*disaggregate=*/true, /*elastic_enabled=*/true);

  std::printf("\n  disaggregated vs FIFO slice order:\n");
  Table table({"policy", "served", "streams", "tokens", "p50 TTFT (ms)",
               "p99 TTFT (ms)", "mean ITL (ms)", "p99 ITL (ms)", "TTFT SLO hit"});
  for (const auto& [name, o] :
       {std::pair<const char*, const RunOutcome&>{"disaggregated", disagg},
        std::pair<const char*, const RunOutcome&>{"fifo", fifo},
        std::pair<const char*, const RunOutcome&>{"disagg+elastic", grown}}) {
    table.row()
        .cell(name)
        .cell(o.summary.completed)
        .cell(o.summary.streams)
        .cell(o.summary.tokens)
        .cell(o.summary.p50_ttft_s * 1e3, 2)
        .cell(o.summary.p99_ttft_s * 1e3, 2)
        .cell(o.summary.mean_itl_s * 1e3, 3)
        .cell(o.summary.p99_itl_s * 1e3, 3)
        .cell(o.summary.hit_rate, 3);
  }
  table.print(std::cout);

  std::printf("\n  resize timeline (elastic run):\n");
  for (const ResizeEvent& e : grown.resizes)
    std::printf("    t=%7.3fs  %lld -> %lld devices  (queue %lld, migration %.4fs)\n",
                e.time_s, static_cast<long long>(e.from_devices),
                static_cast<long long>(e.to_devices),
                static_cast<long long>(e.queue_depth), e.migration_s);

  const ShareOutcome share = run_share_split(p);
  const double share_rel_err =
      (share.small_batch_frac - share.target_frac) / share.target_frac;
  std::printf("\n  weighted-share split (small-batch model, share 3 of 4): "
              "measured %.3f vs target %.3f (%+.1f%%)\n",
              share.small_batch_frac, share.target_frac, share_rel_err * 100.0);

  // Claims. Calibrated against the default workload; overridden knobs make
  // them informational (determinism always gates).
  bool custom_load = false;
  for (const char* knob :
       {"task", "profile", "vns", "max-devices", "queue-cap", "ttft-slo-ms",
        "stream-fraction", "tokens-max", "steady-rps", "burst-rps", "burst-s",
        "share-requests", "seed"})
    custom_load |= flags.overridden(knob);

  bool exact = true;
  for (std::size_t i = 1; i < elastic_runs.size(); ++i)
    exact &= identical(grown, elastic_runs[i]);
  bool trace_exact = true;
  for (std::size_t i = 1; i < trace_jsons.size(); ++i) {
    trace_exact &= trace_jsons[i] == trace_jsons.front();
    trace_exact &= metrics_jsons[i] == metrics_jsons.front();
  }
  const bool unperturbed = identical(grown, unobserved);
  // The elastic streaming replay must have exercised every slice kind and
  // both scheduler markers the trace exists to expose.
  const std::string& trace_json = trace_jsons.front();
  const bool trace_complete =
      has_event(trace_json, "classify") && has_event(trace_json, "prefill") &&
      has_event(trace_json, "decode") && has_event(trace_json, "resize") &&
      has_event(trace_json, "preempt");
  bool grew = false, shrank = false;
  for (const ResizeEvent& e : grown.resizes) {
    grew |= e.to_devices > e.from_devices;
    shrank |= e.to_devices < e.from_devices;
  }
  const bool ttft_ok = disagg.summary.p99_ttft_s < fifo.summary.p99_ttft_s;
  const bool tokens_ok = disagg.summary.tokens >= fifo.summary.tokens &&
                         disagg.summary.tokens > 0;
  const bool share_ok =
      share_rel_err >= -0.10 && share_rel_err <= 0.10;

  bool ok = true;
  const std::string json = flags.json_path();
  if (!json.empty()) {
    vf::bench::JsonReport report("bench_streaming");
    for (const auto& [name, o] :
         {std::pair<const char*, const RunOutcome&>{"disagg", disagg},
          std::pair<const char*, const RunOutcome&>{"fifo", fifo},
          std::pair<const char*, const RunOutcome&>{"elastic", grown}}) {
      const std::string base = std::string("streaming.") + name + ".";
      report.add(base + "served", static_cast<double>(o.summary.completed),
                 "requests");
      report.add(base + "tokens", static_cast<double>(o.summary.tokens), "tokens");
      report.add(base + "p50_ttft_ms", o.summary.p50_ttft_s * 1e3, "ms");
      report.add(base + "p99_ttft_ms", o.summary.p99_ttft_s * 1e3, "ms");
      report.add(base + "mean_itl_ms", o.summary.mean_itl_s * 1e3, "ms");
      report.add(base + "p99_itl_ms", o.summary.p99_itl_s * 1e3, "ms");
      report.add(base + "ttft_slo_hit_rate", o.summary.hit_rate, "fraction");
    }
    report.add("streaming.p99_ttft_cut_ms",
               (fifo.summary.p99_ttft_s - disagg.summary.p99_ttft_s) * 1e3, "ms");
    report.add("streaming.resizes", static_cast<double>(grown.resizes.size()),
               "events");
    report.add("streaming.share.small_batch_frac", share.small_batch_frac,
               "fraction");
    report.add("streaming.share.target_frac", share.target_frac, "fraction");
    report.add("streaming.trace_events",
               static_cast<double>(
                   std::count(trace_json.begin(), trace_json.end(), '\n') - 2),
               "events");
    if (!report.save(json)) ok = false;
  }
  if (!flags.trace_path().empty() &&
      !vf::obs::save_text_file(flags.trace_path(), trace_json))
    ok = false;
  if (!flags.metrics_path().empty() &&
      !vf::obs::save_text_file(flags.metrics_path(), metrics_jsons.front()))
    ok = false;

  const char* miss = custom_load ? "no (informational: custom workload)" : "NO — BUG";
  std::printf("\n  p99 TTFT: disaggregated < FIFO: %s\n", ttft_ok ? "yes" : miss);
  std::printf("  tokens served >= FIFO: %s\n", tokens_ok ? "yes" : miss);
  std::printf("  elastic budget grew and shrank under streaming load: %s\n",
              (grew && shrank) ? "yes" : miss);
  std::printf("  small-batch device-time share within 10%% of weight: %s\n",
              share_ok ? "yes" : miss);
  std::printf("  bit-identical records (token stamps included) across workers "
              "{0, 2, 8}: %s\n",
              exact ? "yes" : "NO — BUG");
  std::printf("  byte-identical trace + metrics export across workers "
              "{0, 2, 8}: %s\n",
              trace_exact ? "yes" : "NO — BUG");
  std::printf("  recording does not perturb the replay: %s\n",
              unperturbed ? "yes" : "NO — BUG");
  std::printf("  trace covers classify/prefill/decode + resize + preempt: %s\n",
              trace_complete ? "yes" : miss);

  if (!exact || !trace_exact || !unperturbed) ok = false;
  if (!custom_load && (!ttft_ok || !tokens_ok || !grew || !shrank || !share_ok ||
                       !trace_complete))
    ok = false;
  return ok ? 0 : 1;
}
