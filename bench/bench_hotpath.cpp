// Hot-path harness: the kernel tiers and the zero-allocation workspace
// A/B, gating the wins this repo claims for its innermost loops.
//
//   1. Per-kernel throughput: GFLOP/s of matmul / matmul_transpose_lhs /
//      matmul_transpose_rhs on the workload-profile shapes the proxy
//      models actually run (per-VN batch x feature dims), three-way:
//      reference vs blocked vs simd — with a bit-identity check on every
//      shape (no tier may change one bit) and the backend factory's
//      per-shape dispatch decision printed per row ("vector" = the AVX2
//      kernel served; "isa"/"narrow-n" = a fallback did — see
//      tensor/backend.h for the rule names). On large shapes
//      (>= 8 MFLOP) the simd tier must beat blocked by
//      --min-simd-speedup (default 1.5x, smoke 1.2x) whenever the
//      vector ISA is live; hosts without AVX2 skip the gate and report
//      the fallback tier honestly.
//   2. End-to-end step time: the same training job run three times —
//      "reference" arm: reference kernels + allocate-per-use workspaces
//      (VF_WORKSPACE_REUSE=0 semantics), i.e. the pre-optimization hot
//      path; "blocked" and "simd" arms: that tier + buffer reuse. All
//      arms must produce bit-identical parameters and losses, the
//      optimized arms' timed steps must perform ZERO tensor heap
//      allocations, and blocked-over-reference must clear --min-speedup
//      (default 1.5x full, 1.15x smoke). simd-over-reference is reported
//      and recorded; it is not gated end-to-end because the step budget
//      is dominated by the simulated device clock, not GEMM wall time.
//
// Exit 1 when any claim fails (speedups are informational under
// overridden workload knobs, like bench_serving's custom-load rule).
// --json=<path> emits the machine-readable perf trajectory records.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/backend.h"
#include "tensor/kernels.h"

using namespace vf;
using vf::bench::Flags;
using vf::bench::JsonReport;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelCase {
  const char* op;  // "matmul", "tl", "tr"
  std::int64_t m, k, n;
};

/// Runs one kernel in one mode `reps` times; returns seconds per call.
double time_kernel(const KernelCase& c, KernelMode mode, const Tensor& a,
                   const Tensor& b, Tensor& out, std::int64_t reps) {
  const std::string op(c.op);
  const double t0 = now_s();
  for (std::int64_t r = 0; r < reps; ++r) {
    if (op == "matmul") {
      kernels::matmul(a.data().data(), b.data().data(), out.data().data(), c.m, c.k,
                      c.n, mode);
    } else if (op == "tl") {
      kernels::matmul_transpose_lhs(a.data().data(), b.data().data(),
                                    out.data().data(), c.m, c.k, c.n, mode);
    } else {
      kernels::matmul_transpose_rhs(a.data().data(), b.data().data(),
                                    out.data().data(), c.m, c.k, c.n, mode);
    }
  }
  return (now_s() - t0) / static_cast<double>(reps);
}

struct ArmResult {
  double step_s = 0.0;          // mean timed step wall-clock
  std::vector<double> losses;   // per-step loss trajectory
  Tensor params;                // final parameters
  std::int64_t tensor_allocs = 0;  // allocations during the timed steps
  std::int64_t ws_allocs = 0;      // workspace-audited allocations
};

ArmResult run_arm(const std::string& task, const std::string& profile,
                  std::int64_t vns, std::int64_t devices, std::uint64_t seed,
                  std::int64_t warmup, std::int64_t steps, KernelMode mode,
                  bool reuse, obs::Observability obs = {}) {
  TensorConfig::set_kernel_mode(mode);
  TensorConfig::set_workspace_reuse(reuse);
  bench::EngineSetup setup =
      bench::make_setup(task, profile, vns, devices, DeviceType::kV100, seed);
  setup.engine.set_observability(obs);
  ArmResult out;
  for (std::int64_t s = 0; s < warmup; ++s) out.losses.push_back(setup.engine.train_step().loss);
  const std::int64_t allocs0 = tensor_alloc_count();
  const std::int64_t ws0 = setup.engine.workspace_allocs();
  const double t0 = now_s();
  for (std::int64_t s = 0; s < steps; ++s) out.losses.push_back(setup.engine.train_step().loss);
  out.step_s = (now_s() - t0) / static_cast<double>(steps);
  out.tensor_allocs = tensor_alloc_count() - allocs0;
  out.ws_allocs = setup.engine.workspace_allocs() - ws0;
  out.params = setup.engine.parameters();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task", "proxy task for the end-to-end A/B (default imagenet-sim)"},
               {"profile", "paper model profile for the simulated clock (default resnet50)"},
               {"vns", "virtual nodes (default 8)"},
               {"devices", "devices; VNs fold onto them serially (default 1)"},
               {"steps", "timed steps per arm (default 30; smoke 8)"},
               {"warmup", "untimed warm-up steps per arm (default 5; smoke 2)"},
               {"min-speedup", "required end-to-end speedup, blocked+reuse vs "
                               "reference+alloc (default 1.5; smoke 1.15)"},
               {"min-simd-speedup", "required per-kernel simd-over-blocked speedup "
                                    "on >=8 MFLOP shapes when the vector ISA is "
                                    "live (default 1.5; smoke 1.2)"},
               {"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help(
        "Hot-path kernels + zero-allocation workspaces: per-kernel GFLOP/s and the "
        "end-to-end train-step A/B gate");
    return 0;
  }

  const std::string task = flags.get_string("task", "imagenet-sim");
  const std::string profile = flags.get_string("profile", "resnet50");
  const std::int64_t vns = flags.get_int("vns", 8);
  const std::int64_t devices = flags.get_int("devices", 1);
  const std::int64_t steps = flags.get_int("steps", 30, /*smoke_def=*/8);
  const std::int64_t warmup = flags.get_int("warmup", 5, /*smoke_def=*/2);
  const double min_speedup = flags.get_double("min-speedup", 1.5, /*smoke_def=*/1.15);
  const double min_simd_speedup =
      flags.get_double("min-simd-speedup", 1.5, /*smoke_def=*/1.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const KernelMode saved_mode = TensorConfig::kernel_mode();
  const bool saved_reuse = TensorConfig::workspace_reuse();
  JsonReport report("bench_hotpath");
  bool ok = true;

  print_banner(std::cout, "hot path — kernel tiers (reference/blocked/simd) + reusable workspaces");

  // Overridden workload knobs make the speedup claims informational (the
  // default configuration is what the acceptance numbers are calibrated
  // on); bit-identity and the zero-allocation contract hold regardless.
  bool custom = false;
  for (const char* knob : {"task", "profile", "vns", "devices", "seed"})
    custom |= flags.overridden(knob);

  backend::BackendFactory& factory = backend::BackendFactory::instance();
  std::printf("  simd backend: compiled=%s isa=%s cpu-avx2=%s -> %s\n",
              backend::BackendFactory::simd_compiled() ? "yes" : "no",
              backend::BackendFactory::simd_isa(),
              factory.cpu_features().avx2 ? "yes" : "no",
              factory.simd_available() ? "live" : "falling back to blocked");

  // ---- 1. Per-kernel GFLOP/s on the workload-profile shapes. The per-VN
  // batch rows come from the task's reference global batch folded onto the
  // default VN count; the feature dims are the proxy model's layers. A
  // larger square shape shows the cache-blocking effect beyond L1-resident
  // panels.
  {
    bench::EngineSetup probe =
        bench::make_setup(task, profile, vns, devices, DeviceType::kV100, seed);
    const std::int64_t rows = probe.recipe.global_batch / vns;
    const std::int64_t dim = probe.task.train->feature_dim();
    const std::int64_t hidden = 64;  // proxy-model width (workloads/tasks.cpp)
    const std::int64_t classes = probe.task.train->num_classes();
    const std::vector<KernelCase> cases = {
        {"matmul", rows, dim, hidden},     // layer-1 forward
        {"matmul", rows, hidden, hidden},  // layer-2 forward
        {"matmul", rows, hidden, classes}, // head forward
        {"tl", hidden, rows, hidden},      // layer-2 dW = x^T @ g
        {"tr", rows, hidden, hidden},      // layer-2 dx = g @ W^T
        {"tr", rows, classes, hidden},     // head dx
        {"matmul", 256, 256, 256},         // beyond-L1 square
    };

    std::printf("  per-kernel throughput (GFLOP/s), reference vs blocked vs simd:\n");
    Table table({"kernel", "m", "k", "n", "reference", "blocked", "simd",
                 "simd/blk", "tier", "bit-identical"});
    CounterRng rng(seed, /*stream=*/0xBE7C4);
    bool simd_gate_ok = true;
    for (const KernelCase& c : cases) {
      const std::string op(c.op);
      // Operand layouts per op (see kernels.h): tl takes a as [k x m].
      const Tensor a = op == "tl" ? Tensor::randn({c.k, c.m}, rng)
                                  : Tensor::randn({c.m, c.k}, rng);
      const Tensor b = op == "tr" ? Tensor::randn({c.n, c.k}, rng)
                                  : Tensor::randn({c.k, c.n}, rng);
      Tensor out_ref({c.m, c.n});
      Tensor out_blk({c.m, c.n});
      Tensor out_simd({c.m, c.n});
      const double flops = 2.0 * static_cast<double>(c.m) *
                           static_cast<double>(c.k) * static_cast<double>(c.n);
      const auto reps = std::max<std::int64_t>(
          1, static_cast<std::int64_t>((flags.smoke() ? 2e7 : 2e8) / flops));
      // Which tier actually serves VF_KERNELS=simd here, and under which
      // factory rule (tensor/backend.h).
      const backend::KernelOp bop =
          op == "matmul" ? backend::KernelOp::kMatmul
          : op == "tl"   ? backend::KernelOp::kMatmulTransposeLhs
                         : backend::KernelOp::kMatmulTransposeRhs;
      const backend::Dispatch dispatch = factory.select(bop, c.m, c.k, c.n);
      // Bit-identity first (also warms the caches).
      time_kernel(c, KernelMode::kReference, a, b, out_ref, 1);
      time_kernel(c, KernelMode::kBlocked, a, b, out_blk, 1);
      time_kernel(c, KernelMode::kSimd, a, b, out_simd, 1);
      const bool identical = out_ref.equals(out_blk) && out_ref.equals(out_simd);
      ok &= identical;
      const double ref_s = time_kernel(c, KernelMode::kReference, a, b, out_ref, reps);
      const double blk_s = time_kernel(c, KernelMode::kBlocked, a, b, out_blk, reps);
      const double simd_s = time_kernel(c, KernelMode::kSimd, a, b, out_simd, reps);
      const double ref_gf = flops / ref_s / 1e9;
      const double blk_gf = flops / blk_s / 1e9;
      const double simd_gf = flops / simd_s / 1e9;
      const double simd_speedup = simd_s > 0.0 ? blk_s / simd_s : 0.0;
      // The vector-width claim is gated only where it is claimed: shapes
      // big enough to amortize the panel fill (>= 8 MFLOP) that the
      // factory actually serves with the vector kernel.
      const bool gated = flops >= 8e6 && dispatch.tier == KernelMode::kSimd;
      if (gated && simd_speedup < min_simd_speedup) simd_gate_ok = false;
      const std::string shape = std::to_string(c.m) + "x" + std::to_string(c.k) +
                                "x" + std::to_string(c.n);
      table.row()
          .cell(std::string(c.op))
          .cell(c.m)
          .cell(c.k)
          .cell(c.n)
          .cell(ref_gf, 2)
          .cell(blk_gf, 2)
          .cell(simd_gf, 2)
          .cell(simd_speedup, 2)
          .cell(std::string(dispatch.rule) + (gated ? "*" : ""))
          .cell(std::string(identical ? "yes" : "NO — BUG"));
      report.add("kernel." + op + "." + shape + ".reference", ref_gf, "GFLOP/s");
      report.add("kernel." + op + "." + shape + ".blocked", blk_gf, "GFLOP/s");
      report.add("kernel." + op + "." + shape + ".simd", simd_gf, "GFLOP/s");
    }
    table.print(std::cout);
    std::printf("  (tier = backend-factory rule serving VF_KERNELS=simd for that "
                "shape; * = simd speedup gated)\n");
    if (factory.simd_available()) {
      std::printf("  simd-over-blocked on gated shapes >= %.2fx: %s\n",
                  min_simd_speedup,
                  simd_gate_ok ? "yes"
                               : (custom ? "no (informational: custom workload)"
                                         : "NO — BUG"));
      if (!custom && !simd_gate_ok) ok = false;
    } else {
      std::printf("  simd-over-blocked gate skipped: vector ISA not live on this "
                  "host (simd serves via blocked fallback)\n");
    }
  }

  // ---- 2. End-to-end train-step A/B.
  std::printf("\n  end-to-end train step (%s on %s, %lld VNs on %lld device(s), "
              "%lld warmup + %lld timed):\n",
              task.c_str(), profile.c_str(), static_cast<long long>(vns),
              static_cast<long long>(devices), static_cast<long long>(warmup),
              static_cast<long long>(steps));
  const ArmResult ref = run_arm(task, profile, vns, devices, seed, warmup, steps,
                                KernelMode::kReference, /*reuse=*/false);
  const ArmResult blk = run_arm(task, profile, vns, devices, seed, warmup, steps,
                                KernelMode::kBlocked, /*reuse=*/true);
  const ArmResult simd = run_arm(task, profile, vns, devices, seed, warmup, steps,
                                 KernelMode::kSimd, /*reuse=*/true);
  // ---- 3. Observability A/B on the same blocked hot path: with a
  // TraceRecorder + MetricsRegistry attached, the step loop must stay at
  // zero tensor heap allocations (recording touches no tensors), the
  // trajectory must not move a bit, and the step time must stay within
  // the stated budget of the unobserved arm.
  obs::TraceRecorder obs_trace;
  obs::MetricsRegistry obs_metrics;
  const ArmResult obs_on =
      run_arm(task, profile, vns, devices, seed, warmup, steps,
              KernelMode::kBlocked, /*reuse=*/true, {&obs_trace, &obs_metrics});
  TensorConfig::set_kernel_mode(saved_mode);
  TensorConfig::set_workspace_reuse(saved_reuse);

  const double speedup = blk.step_s > 0.0 ? ref.step_s / blk.step_s : 0.0;
  const double simd_e2e = simd.step_s > 0.0 ? ref.step_s / simd.step_s : 0.0;
  Table e2e({"arm", "step (ms)", "speedup", "tensor allocs/step", "ws allocs"});
  e2e.row()
      .cell(std::string("reference + alloc-per-use"))
      .cell(ref.step_s * 1e3, 3)
      .cell(1.0, 2)
      .cell(static_cast<double>(ref.tensor_allocs) / static_cast<double>(steps), 1)
      .cell(ref.ws_allocs);
  e2e.row()
      .cell(std::string("blocked + workspace reuse"))
      .cell(blk.step_s * 1e3, 3)
      .cell(speedup, 2)
      .cell(static_cast<double>(blk.tensor_allocs) / static_cast<double>(steps), 1)
      .cell(blk.ws_allocs);
  e2e.row()
      .cell(std::string("simd + workspace reuse"))
      .cell(simd.step_s * 1e3, 3)
      .cell(simd_e2e, 2)
      .cell(static_cast<double>(simd.tensor_allocs) / static_cast<double>(steps), 1)
      .cell(simd.ws_allocs);
  e2e.print(std::cout);

  const auto arm_identical = [&ref](const ArmResult& other) {
    bool same =
        ref.params.equals(other.params) && ref.losses.size() == other.losses.size();
    if (same) {
      for (std::size_t i = 0; i < ref.losses.size(); ++i)
        same &= ref.losses[i] == other.losses[i];
    }
    return same;
  };
  const bool identical = arm_identical(blk) && arm_identical(simd);

  const char* miss = custom ? "no (informational: custom workload)" : "NO — BUG";

  const bool zero_alloc = blk.tensor_allocs == 0 && blk.ws_allocs == 0 &&
                          simd.tensor_allocs == 0 && simd.ws_allocs == 0;
  const bool fast_enough = speedup >= min_speedup;

  // Observability gates: pure observer (bit-identical trajectory), zero
  // tensor allocations either way, and a 1.5x step-time budget — the
  // recorder's cost is a POD vector push per device per step (measured
  // ~0.8x-1.0x), so the headroom is all for wall noise on smoke-sized
  // steps under loaded CI hosts.
  bool obs_identical =
      blk.params.equals(obs_on.params) && blk.losses.size() == obs_on.losses.size();
  if (obs_identical) {
    for (std::size_t i = 0; i < blk.losses.size(); ++i)
      obs_identical &= blk.losses[i] == obs_on.losses[i];
  }
  const bool obs_zero_alloc = obs_on.tensor_allocs == 0 && obs_on.ws_allocs == 0;
  const double obs_ratio = blk.step_s > 0.0 ? obs_on.step_s / blk.step_s : 0.0;
  const bool obs_cheap = obs_ratio <= 1.5;

  std::printf("\n  trajectories bit-identical across all three kernel modes: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("  optimized arms steady-state tensor heap allocations: %lld + %lld "
              "(want 0)\n",
              static_cast<long long>(blk.tensor_allocs),
              static_cast<long long>(simd.tensor_allocs));
  std::printf("  end-to-end speedup %.2fx blocked / %.2fx simd (gate on blocked: "
              ">= %.2fx): %s\n",
              speedup, simd_e2e, min_speedup, fast_enough ? "yes" : miss);
  std::printf("  recording on: %zu trace events, step %.3f ms vs %.3f ms off "
              "(%.2fx, budget 1.5x): %s\n",
              obs_trace.size(), obs_on.step_s * 1e3, blk.step_s * 1e3, obs_ratio,
              obs_cheap ? "yes" : miss);
  std::printf("  recording does not perturb the trajectory, zero tensor allocs: %s\n",
              (obs_identical && obs_zero_alloc) ? "yes" : "NO — BUG");
  if (!identical || !zero_alloc) ok = false;
  if (!obs_identical || !obs_zero_alloc) ok = false;
  if (!custom && (!fast_enough || !obs_cheap)) ok = false;

  report.add("e2e.reference.step_ms", ref.step_s * 1e3, "ms");
  report.add("e2e.blocked.step_ms", blk.step_s * 1e3, "ms");
  report.add("e2e.simd.step_ms", simd.step_s * 1e3, "ms");
  report.add("e2e.speedup", speedup, "x");
  report.add("e2e.simd_speedup", simd_e2e, "x");
  report.add("e2e.blocked.tensor_allocs_per_step",
             static_cast<double>(blk.tensor_allocs) / static_cast<double>(steps),
             "allocs");
  report.add("e2e.obs_on.step_ms", obs_on.step_s * 1e3, "ms");
  report.add("e2e.obs_on.overhead_x", obs_ratio, "x");
  report.add("e2e.obs_on.trace_events", static_cast<double>(obs_trace.size()),
             "events");
  const std::string json = flags.json_path();
  if (!json.empty() && !report.save(json)) ok = false;

  return ok ? 0 : 1;
}
