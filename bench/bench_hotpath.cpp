// Hot-path harness: the kernel layer and the zero-allocation workspace
// A/B, gating the wins this repo claims for its innermost loops.
//
//   1. Per-kernel throughput: GFLOP/s of matmul / matmul_transpose_lhs /
//      matmul_transpose_rhs on the workload-profile shapes the proxy
//      models actually run (per-VN batch x feature dims), reference vs
//      blocked — with a bit-identity check on every shape (the blocked
//      kernels must not change one bit; tiling is over i/j only).
//   2. End-to-end step time: the same training job run twice —
//      "reference" arm: reference kernels + allocate-per-use workspaces
//      (VF_WORKSPACE_REUSE=0 semantics), i.e. the pre-optimization hot
//      path; "blocked" arm: blocked kernels + buffer reuse. The arms must
//      produce bit-identical parameters and losses, the blocked arm's
//      timed steps must perform ZERO tensor heap allocations, and the
//      speedup must clear --min-speedup (default 1.5x full, 1.15x smoke).
//
// Exit 1 when any claim fails (speedup is informational under overridden
// workload knobs, like bench_serving's custom-load rule). --json=<path>
// emits the machine-readable perf trajectory records.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

using namespace vf;
using vf::bench::Flags;
using vf::bench::JsonReport;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct KernelCase {
  const char* op;  // "matmul", "tl", "tr"
  std::int64_t m, k, n;
};

/// Runs one kernel in one mode `reps` times; returns seconds per call.
double time_kernel(const KernelCase& c, KernelMode mode, const Tensor& a,
                   const Tensor& b, Tensor& out, std::int64_t reps) {
  const std::string op(c.op);
  const double t0 = now_s();
  for (std::int64_t r = 0; r < reps; ++r) {
    if (op == "matmul") {
      kernels::matmul(a.data().data(), b.data().data(), out.data().data(), c.m, c.k,
                      c.n, mode);
    } else if (op == "tl") {
      kernels::matmul_transpose_lhs(a.data().data(), b.data().data(),
                                    out.data().data(), c.m, c.k, c.n, mode);
    } else {
      kernels::matmul_transpose_rhs(a.data().data(), b.data().data(),
                                    out.data().data(), c.m, c.k, c.n, mode);
    }
  }
  return (now_s() - t0) / static_cast<double>(reps);
}

struct ArmResult {
  double step_s = 0.0;          // mean timed step wall-clock
  std::vector<double> losses;   // per-step loss trajectory
  Tensor params;                // final parameters
  std::int64_t tensor_allocs = 0;  // allocations during the timed steps
  std::int64_t ws_allocs = 0;      // workspace-audited allocations
};

ArmResult run_arm(const std::string& task, const std::string& profile,
                  std::int64_t vns, std::int64_t devices, std::uint64_t seed,
                  std::int64_t warmup, std::int64_t steps, KernelMode mode,
                  bool reuse, obs::Observability obs = {}) {
  TensorConfig::set_kernel_mode(mode);
  TensorConfig::set_workspace_reuse(reuse);
  bench::EngineSetup setup =
      bench::make_setup(task, profile, vns, devices, DeviceType::kV100, seed);
  setup.engine.set_observability(obs);
  ArmResult out;
  for (std::int64_t s = 0; s < warmup; ++s) out.losses.push_back(setup.engine.train_step().loss);
  const std::int64_t allocs0 = tensor_alloc_count();
  const std::int64_t ws0 = setup.engine.workspace_allocs();
  const double t0 = now_s();
  for (std::int64_t s = 0; s < steps; ++s) out.losses.push_back(setup.engine.train_step().loss);
  out.step_s = (now_s() - t0) / static_cast<double>(steps);
  out.tensor_allocs = tensor_alloc_count() - allocs0;
  out.ws_allocs = setup.engine.workspace_allocs() - ws0;
  out.params = setup.engine.parameters();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"task", "proxy task for the end-to-end A/B (default imagenet-sim)"},
               {"profile", "paper model profile for the simulated clock (default resnet50)"},
               {"vns", "virtual nodes (default 8)"},
               {"devices", "devices; VNs fold onto them serially (default 1)"},
               {"steps", "timed steps per arm (default 30; smoke 8)"},
               {"warmup", "untimed warm-up steps per arm (default 5; smoke 2)"},
               {"min-speedup", "required end-to-end speedup, blocked+reuse vs "
                               "reference+alloc (default 1.5; smoke 1.15)"},
               {"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help(
        "Hot-path kernels + zero-allocation workspaces: per-kernel GFLOP/s and the "
        "end-to-end train-step A/B gate");
    return 0;
  }

  const std::string task = flags.get_string("task", "imagenet-sim");
  const std::string profile = flags.get_string("profile", "resnet50");
  const std::int64_t vns = flags.get_int("vns", 8);
  const std::int64_t devices = flags.get_int("devices", 1);
  const std::int64_t steps = flags.get_int("steps", 30, /*smoke_def=*/8);
  const std::int64_t warmup = flags.get_int("warmup", 5, /*smoke_def=*/2);
  const double min_speedup = flags.get_double("min-speedup", 1.5, /*smoke_def=*/1.15);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  const KernelMode saved_mode = TensorConfig::kernel_mode();
  const bool saved_reuse = TensorConfig::workspace_reuse();
  JsonReport report("bench_hotpath");
  bool ok = true;

  print_banner(std::cout, "hot path — blocked GEMM kernels + reusable workspaces");

  // ---- 1. Per-kernel GFLOP/s on the workload-profile shapes. The per-VN
  // batch rows come from the task's reference global batch folded onto the
  // default VN count; the feature dims are the proxy model's layers. A
  // larger square shape shows the cache-blocking effect beyond L1-resident
  // panels.
  {
    bench::EngineSetup probe =
        bench::make_setup(task, profile, vns, devices, DeviceType::kV100, seed);
    const std::int64_t rows = probe.recipe.global_batch / vns;
    const std::int64_t dim = probe.task.train->feature_dim();
    const std::int64_t hidden = 64;  // proxy-model width (workloads/tasks.cpp)
    const std::int64_t classes = probe.task.train->num_classes();
    const std::vector<KernelCase> cases = {
        {"matmul", rows, dim, hidden},     // layer-1 forward
        {"matmul", rows, hidden, hidden},  // layer-2 forward
        {"matmul", rows, hidden, classes}, // head forward
        {"tl", hidden, rows, hidden},      // layer-2 dW = x^T @ g
        {"tr", rows, hidden, hidden},      // layer-2 dx = g @ W^T
        {"tr", rows, classes, hidden},     // head dx
        {"matmul", 256, 256, 256},         // beyond-L1 square
    };

    std::printf("  per-kernel throughput (GFLOP/s), reference vs blocked:\n");
    Table table({"kernel", "m", "k", "n", "reference", "blocked", "speedup", "bit-identical"});
    CounterRng rng(seed, /*stream=*/0xBE7C4);
    for (const KernelCase& c : cases) {
      const std::string op(c.op);
      // Operand layouts per op (see kernels.h): tl takes a as [k x m].
      const Tensor a = op == "tl" ? Tensor::randn({c.k, c.m}, rng)
                                  : Tensor::randn({c.m, c.k}, rng);
      const Tensor b = op == "tr" ? Tensor::randn({c.n, c.k}, rng)
                                  : Tensor::randn({c.k, c.n}, rng);
      Tensor out_ref({c.m, c.n});
      Tensor out_blk({c.m, c.n});
      const double flops = 2.0 * static_cast<double>(c.m) *
                           static_cast<double>(c.k) * static_cast<double>(c.n);
      const auto reps = std::max<std::int64_t>(
          1, static_cast<std::int64_t>((flags.smoke() ? 2e7 : 2e8) / flops));
      // Bit-identity first (also warms the caches).
      time_kernel(c, KernelMode::kReference, a, b, out_ref, 1);
      time_kernel(c, KernelMode::kBlocked, a, b, out_blk, 1);
      const bool identical = out_ref.equals(out_blk);
      ok &= identical;
      const double ref_s = time_kernel(c, KernelMode::kReference, a, b, out_ref, reps);
      const double blk_s = time_kernel(c, KernelMode::kBlocked, a, b, out_blk, reps);
      const double ref_gf = flops / ref_s / 1e9;
      const double blk_gf = flops / blk_s / 1e9;
      const std::string shape = std::to_string(c.m) + "x" + std::to_string(c.k) +
                                "x" + std::to_string(c.n);
      table.row()
          .cell(std::string(c.op))
          .cell(c.m)
          .cell(c.k)
          .cell(c.n)
          .cell(ref_gf, 2)
          .cell(blk_gf, 2)
          .cell(blk_s > 0.0 ? ref_s / blk_s : 0.0, 2)
          .cell(std::string(identical ? "yes" : "NO — BUG"));
      report.add("kernel." + op + "." + shape + ".reference", ref_gf, "GFLOP/s");
      report.add("kernel." + op + "." + shape + ".blocked", blk_gf, "GFLOP/s");
    }
    table.print(std::cout);
  }

  // ---- 2. End-to-end train-step A/B.
  std::printf("\n  end-to-end train step (%s on %s, %lld VNs on %lld device(s), "
              "%lld warmup + %lld timed):\n",
              task.c_str(), profile.c_str(), static_cast<long long>(vns),
              static_cast<long long>(devices), static_cast<long long>(warmup),
              static_cast<long long>(steps));
  const ArmResult ref = run_arm(task, profile, vns, devices, seed, warmup, steps,
                                KernelMode::kReference, /*reuse=*/false);
  const ArmResult blk = run_arm(task, profile, vns, devices, seed, warmup, steps,
                                KernelMode::kBlocked, /*reuse=*/true);
  // ---- 3. Observability A/B on the same blocked hot path: with a
  // TraceRecorder + MetricsRegistry attached, the step loop must stay at
  // zero tensor heap allocations (recording touches no tensors), the
  // trajectory must not move a bit, and the step time must stay within
  // the stated budget of the unobserved arm.
  obs::TraceRecorder obs_trace;
  obs::MetricsRegistry obs_metrics;
  const ArmResult obs_on =
      run_arm(task, profile, vns, devices, seed, warmup, steps,
              KernelMode::kBlocked, /*reuse=*/true, {&obs_trace, &obs_metrics});
  TensorConfig::set_kernel_mode(saved_mode);
  TensorConfig::set_workspace_reuse(saved_reuse);

  const double speedup = blk.step_s > 0.0 ? ref.step_s / blk.step_s : 0.0;
  Table e2e({"arm", "step (ms)", "speedup", "tensor allocs/step", "ws allocs"});
  e2e.row()
      .cell(std::string("reference + alloc-per-use"))
      .cell(ref.step_s * 1e3, 3)
      .cell(1.0, 2)
      .cell(static_cast<double>(ref.tensor_allocs) / static_cast<double>(steps), 1)
      .cell(ref.ws_allocs);
  e2e.row()
      .cell(std::string("blocked + workspace reuse"))
      .cell(blk.step_s * 1e3, 3)
      .cell(speedup, 2)
      .cell(static_cast<double>(blk.tensor_allocs) / static_cast<double>(steps), 1)
      .cell(blk.ws_allocs);
  e2e.print(std::cout);

  bool identical = ref.params.equals(blk.params) && ref.losses.size() == blk.losses.size();
  if (identical) {
    for (std::size_t i = 0; i < ref.losses.size(); ++i)
      identical &= ref.losses[i] == blk.losses[i];
  }

  // Overridden workload knobs make the speedup claim informational (the
  // default configuration is what the acceptance numbers are calibrated
  // on); bit-identity and the zero-allocation contract hold regardless.
  bool custom = false;
  for (const char* knob : {"task", "profile", "vns", "devices", "seed"})
    custom |= flags.overridden(knob);
  const char* miss = custom ? "no (informational: custom workload)" : "NO — BUG";

  const bool zero_alloc = blk.tensor_allocs == 0 && blk.ws_allocs == 0;
  const bool fast_enough = speedup >= min_speedup;

  // Observability gates: pure observer (bit-identical trajectory), zero
  // tensor allocations either way, and a 1.5x step-time budget — the
  // recorder's cost is a POD vector push per device per step (measured
  // ~0.8x-1.0x), so the headroom is all for wall noise on smoke-sized
  // steps under loaded CI hosts.
  bool obs_identical =
      blk.params.equals(obs_on.params) && blk.losses.size() == obs_on.losses.size();
  if (obs_identical) {
    for (std::size_t i = 0; i < blk.losses.size(); ++i)
      obs_identical &= blk.losses[i] == obs_on.losses[i];
  }
  const bool obs_zero_alloc = obs_on.tensor_allocs == 0 && obs_on.ws_allocs == 0;
  const double obs_ratio = blk.step_s > 0.0 ? obs_on.step_s / blk.step_s : 0.0;
  const bool obs_cheap = obs_ratio <= 1.5;

  std::printf("\n  trajectories bit-identical across kernel modes: %s\n",
              identical ? "yes" : "NO — BUG");
  std::printf("  blocked arm steady-state tensor heap allocations: %lld (want 0)\n",
              static_cast<long long>(blk.tensor_allocs));
  std::printf("  end-to-end speedup %.2fx (gate: >= %.2fx): %s\n", speedup, min_speedup,
              fast_enough ? "yes" : miss);
  std::printf("  recording on: %zu trace events, step %.3f ms vs %.3f ms off "
              "(%.2fx, budget 1.5x): %s\n",
              obs_trace.size(), obs_on.step_s * 1e3, blk.step_s * 1e3, obs_ratio,
              obs_cheap ? "yes" : miss);
  std::printf("  recording does not perturb the trajectory, zero tensor allocs: %s\n",
              (obs_identical && obs_zero_alloc) ? "yes" : "NO — BUG");
  if (!identical || !zero_alloc) ok = false;
  if (!obs_identical || !obs_zero_alloc) ok = false;
  if (!custom && (!fast_enough || !obs_cheap)) ok = false;

  report.add("e2e.reference.step_ms", ref.step_s * 1e3, "ms");
  report.add("e2e.blocked.step_ms", blk.step_s * 1e3, "ms");
  report.add("e2e.speedup", speedup, "x");
  report.add("e2e.blocked.tensor_allocs_per_step",
             static_cast<double>(blk.tensor_allocs) / static_cast<double>(steps),
             "allocs");
  report.add("e2e.obs_on.step_ms", obs_on.step_s * 1e3, "ms");
  report.add("e2e.obs_on.overhead_x", obs_ratio, "x");
  report.add("e2e.obs_on.trace_events", static_cast<double>(obs_trace.size()),
             "events");
  const std::string json = flags.json_path();
  if (!json.empty() && !report.save(json)) ok = false;

  return ok ? 0 : 1;
}
