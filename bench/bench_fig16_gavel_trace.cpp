// Figure 16: one example Gavel trace at 8 jobs/hour, with and without
// heterogeneous allocations, showing per-type allocation timelines
// (hatched boxes in the paper = heterogeneous allocations) and the
// rightmost-job effect: a K80-bound job accelerating with leftover P100s.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

void print_type_timeline(const SimResult& res, const ClusterInventory& cluster,
                         const char* label) {
  std::printf("\n  %s: allocated GPUs by type over time:\n", label);
  std::printf("    %-9s", "t (s)");
  for (const auto& [type, count] : cluster.per_type)
    std::printf("%-12s", device_type_name(type));
  std::printf("%s\n", "hetero jobs");
  const int rows = 14;
  for (int r = 0; r <= rows; ++r) {
    const double t = res.makespan_s * r / rows;
    std::printf("    %-9.0f", t);
    std::int64_t hetero = 0;
    for (const auto& [type, count] : cluster.per_type) {
      std::int64_t used = 0;
      for (const auto& j : res.jobs)
        for (const auto& seg : j.timeline)
          if (seg.t0 <= t && t < seg.t1) {
            const auto it = seg.alloc.per_type.find(type);
            if (it != seg.alloc.per_type.end()) used += it->second;
          }
      std::printf("%-2lld/%-9lld", static_cast<long long>(used),
                  static_cast<long long>(count));
    }
    for (const auto& j : res.jobs)
      for (const auto& seg : j.timeline)
        if (seg.t0 <= t && t < seg.t1 && seg.alloc.heterogeneous()) ++hetero;
    std::printf("%lld\n", static_cast<long long>(hetero));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "trace seed (default 11)"},
                           {"jobs", "jobs in trace (default 12)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 16: example Gavel / Gavel+HT trace at 8 jobs/hour");
    return 0;
  }
  ClusterInventory cluster;
  cluster.per_type[DeviceType::kV100] = 4;
  cluster.per_type[DeviceType::kP100] = 8;
  cluster.per_type[DeviceType::kK80] = 16;

  TraceOptions opt;
  opt.num_jobs = flags.get_int("jobs", 12);
  opt.jobs_per_hour = 8.0;
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  opt.steps_scale = 0.5;
  opt.workloads = {"resnet50", "transformer"};  // §6.5.2: Table 3 subset
  const auto trace = poisson_trace(opt);

  GavelScheduler gavel({});
  GavelOptions ho;
  ho.heterogeneous_allocations = true;
  GavelScheduler gavel_ht(ho);
  const SimResult plain = simulate(cluster, trace, gavel);
  const SimResult ht = simulate(cluster, trace, gavel_ht);

  print_banner(std::cout, "Fig 16: allocation timelines (8 jobs/hour)");
  print_type_timeline(ht, cluster, "Gavel + heterogeneous allocations (top)");
  print_type_timeline(plain, cluster, "Gavel, homogeneous only (bottom)");

  // The paper's example: a job already holding K80s gains P100 leftovers.
  print_banner(std::cout, "Per-job heterogeneous speedups under Gavel+HT");
  double best_gain = 0.0;
  for (const auto& j : ht.jobs) {
    for (const auto& seg : j.timeline) {
      if (!seg.alloc.heterogeneous()) continue;
      // Gain over the best single-type restriction of this allocation —
      // i.e. what the job would get if it could not mix types.
      Allocation homog;
      double homog_tput = 0.0;
      for (const auto& [type, count] : seg.alloc.per_type) {
        const Allocation cand = Allocation::of(type, count);
        const double tput =
            allocation_throughput(j.spec.profile, j.spec.global_batch, cand);
        if (tput > homog_tput) {
          homog_tput = tput;
          homog = cand;
        }
      }
      const double mixed =
          allocation_throughput(j.spec.profile, j.spec.global_batch, seg.alloc);
      const double base =
          allocation_throughput(j.spec.profile, j.spec.global_batch, homog);
      const double gain = 100.0 * (mixed / base - 1.0);
      best_gain = std::max(best_gain, gain);
      std::printf("  job%-3lld %-22s vs %-12s throughput +%.1f%%\n",
                  static_cast<long long>(j.spec.id), seg.alloc.describe().c_str(),
                  homog.describe().c_str(), gain);
      break;  // one line per job
    }
  }

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("avg JCT reduction in this trace (%)",
                         100.0 * (1.0 - mean(ht.jcts()) / mean(plain.jcts())), 26.4);
  vf::bench::print_claim("best per-job hetero throughput gain (%)", best_gain, 33.7);
  return 0;
}
