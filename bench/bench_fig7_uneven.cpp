// Figure 7 (right): even vs uneven batch splits on a heterogeneous
// cluster. Training ResNet-50 at global batch 8192 on 2 V100 + 2 P100:
// the even 2048:2048 split is bottlenecked on the P100s; the solver's
// uneven split (3072:1024) is ~44% faster.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

double config_step_time(const HeterogeneousSolver& solver, std::int64_t bv,
                        std::int64_t bp) {
  std::vector<TypeAssignment> a;
  TypeAssignment v;
  v.type = DeviceType::kV100;
  v.gpus = 2;
  v.per_gpu_batch = bv;
  v.vns_per_gpu = solver.choose_vns(DeviceType::kV100, bv);
  v.per_vn_batch = bv / v.vns_per_gpu;
  a.push_back(v);
  TypeAssignment p;
  p.type = DeviceType::kP100;
  p.gpus = 2;
  p.per_gpu_batch = bp;
  p.vns_per_gpu = solver.choose_vns(DeviceType::kP100, bp);
  p.per_vn_batch = bp / p.vns_per_gpu;
  a.push_back(p);
  return solver.predict_step_time(a);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {});
  if (flags.help_requested()) {
    flags.print_help("Fig 7 (right): even vs uneven split on 2 V100 + 2 P100");
    return 0;
  }
  const ModelProfile& m = model_profile("resnet50");
  std::map<DeviceType, OfflineProfile> profiles;
  profiles.emplace(DeviceType::kV100, profile_workload(DeviceType::kV100, m));
  profiles.emplace(DeviceType::kP100, profile_workload(DeviceType::kP100, m));
  HeterogeneousSolver solver(m, std::move(profiles));

  print_banner(std::cout, "Fig 7 (left): offline profiles (throughput vs batch)");
  Table prof_table({"batch", "V100 (img/s)", "P100 (img/s)"});
  for (const std::int64_t b : {16, 32, 64, 128, 192, 256}) {
    prof_table.row()
        .cell(b)
        .cell(static_cast<double>(b) / solver.profile(DeviceType::kV100).step_time(b), 1)
        .cell(static_cast<double>(b) / solver.profile(DeviceType::kP100).step_time(b), 1);
  }
  prof_table.print(std::cout);

  print_banner(std::cout,
               "Fig 7 (right): ResNet-50, B=8192 on 2 V100 + 2 P100 (16 GB each)");
  const double even = config_step_time(solver, 2048, 2048);
  const double uneven = config_step_time(solver, 3072, 1024);
  Table table({"config", "V100:P100 per-GPU batch", "step time (s)"});
  table.row().cell("even").cell("2048:2048").cell(even, 3);
  table.row().cell("uneven (solver)").cell("3072:1024").cell(uneven, 3);
  table.print(std::cout);

  const auto best = solver.solve({{DeviceType::kV100, 2}, {DeviceType::kP100, 2}}, 8192);
  std::printf("\n  solver recommendation:");
  if (best.has_value()) {
    for (const auto& a : best->assignment)
      std::printf(" %s x%lld: BS %lld (%lld VN)", device_type_name(a.type),
                  static_cast<long long>(a.gpus),
                  static_cast<long long>(a.per_gpu_batch),
                  static_cast<long long>(a.vns_per_gpu));
    std::printf("  -> %.3f s/step\n", best->predicted_step_time_s);
  }

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("uneven split step-time reduction (%)",
                         100.0 * (1.0 - uneven / even), 44.0);
  return 0;
}
