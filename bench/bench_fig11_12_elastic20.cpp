// Figures 11 + 12: elastic scheduling on a 20-job Poisson trace
// (Table 3 workload mix, 12 jobs/hour) on 8 V100s.
//
// Expected shape (paper): vs the static priority scheduler, VirtualFlow's
// elastic WFS raises average utilization (71.1% -> 90.6%), cuts makespan
// by ~45.5%, median JCT by ~47.6%, and median queueing delay by ~99.3%.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

void print_gpu_timeline(const SimResult& res, std::int64_t total_gpus,
                        const char* label) {
  std::printf("\n  %s: total allocated GPUs over time (Fig 11 shape):\n", label);
  std::printf("    t(s):   ");
  const int cols = 24;
  for (int c = 0; c < cols; ++c) {
    const double t = res.makespan_s * c / cols;
    std::int64_t used = 0;
    for (const auto& j : res.jobs)
      for (const auto& seg : j.timeline)
        if (seg.t0 <= t && t < seg.t1) used += seg.alloc.total();
    std::printf("%lld", static_cast<long long>(used));
    std::printf(c + 1 < cols ? " " : "");
  }
  std::printf("   (0..%lld GPUs, sampled)\n", static_cast<long long>(total_gpus));
}

void print_cdf(const std::vector<double>& xs, const char* label) {
  const auto cdf = empirical_cdf(xs);
  std::printf("  %s CDF: ", label);
  for (double p : {0.25, 0.5, 0.75, 0.9, 1.0})
    std::printf("p%.0f=%.0fs  ", 100 * p, percentile(xs, p));
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"jobs", "number of jobs (default 20)"},
               {"rate", "jobs per hour (default 12)"},
               {"seed", "trace seed (default 1)"},
               {"scale", "job-length scale (default 1.0)"}});
  if (flags.help_requested()) {
    flags.print_help("Figs 11-12: 20-job Poisson trace, elastic WFS vs priority");
    return 0;
  }
  TraceOptions opt;
  opt.num_jobs = flags.get_int("jobs", 20);
  opt.jobs_per_hour = flags.get_double("rate", 12.0);
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opt.steps_scale = flags.get_double("scale", 1.0);

  ClusterInventory cluster;
  cluster.per_type[DeviceType::kV100] = 8;
  auto trace = poisson_trace(opt);
  // The elasticity experiments run on a homogeneous V100 pool; clamp each
  // job's demand to the pool size.
  for (auto& j : trace) j.demand_gpus = std::min<std::int64_t>(j.demand_gpus, 8);

  ElasticWfsScheduler wfs;
  PriorityScheduler prio;
  const SimResult vf = simulate(cluster, trace, wfs);
  const SimResult fixed = simulate(cluster, trace, prio);

  print_banner(std::cout, "Fig 11: cluster allocation over time");
  print_gpu_timeline(vf, 8, "VF elastic WFS");
  print_gpu_timeline(fixed, 8, "static priority");

  print_banner(std::cout, "Fig 12: JCT and queueing-delay distributions");
  print_cdf(vf.jcts(), "VF JCT");
  print_cdf(fixed.jcts(), "priority JCT");
  print_cdf(vf.queueing_delays(), "VF queueing delay");
  print_cdf(fixed.queueing_delays(), "priority queueing delay");

  print_banner(std::cout, "Summary");
  Table table({"metric", "VF elastic", "priority", "change (%)"});
  auto add = [&](const char* name, double a, double b) {
    table.row().cell(name).cell(a, 1).cell(b, 1).cell(
        b == 0.0 ? "n/a" : fmt_double(pct_change(b, a), 1));
  };
  add("avg utilization (%)", 100 * vf.avg_utilization, 100 * fixed.avg_utilization);
  add("makespan (s)", vf.makespan_s, fixed.makespan_s);
  add("median JCT (s)", median(vf.jcts()), median(fixed.jcts()));
  add("median queueing delay (s)", median(vf.queueing_delays()),
      median(fixed.queueing_delays()));
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("utilization gain (pts)",
                         100 * (vf.avg_utilization - fixed.avg_utilization), 19.5);
  vf::bench::print_claim("makespan reduction (%)",
                         100.0 * (1.0 - vf.makespan_s / fixed.makespan_s), 45.5);
  vf::bench::print_claim(
      "median JCT reduction (%)",
      100.0 * (1.0 - median(vf.jcts()) / median(fixed.jcts())), 47.6);
  const double qd_fixed = std::max(1e-9, median(fixed.queueing_delays()));
  vf::bench::print_claim(
      "median queueing-delay reduction (%)",
      100.0 * (1.0 - median(vf.queueing_delays()) / qd_fixed), 99.3);
  return 0;
}
