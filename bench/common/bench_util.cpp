#include "common/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace vf::bench {

namespace {

/// Usage errors exit cleanly with kUsageErrorExit after a stderr diagnosis
/// (a thrown VfError would escape main and abort via std::terminate, which
/// buries the message under stack noise and yields a SIGABRT exit status).
[[noreturn]] void usage_error(const std::string& msg,
                              const std::map<std::string, std::string>& known) {
  std::cerr << "error: " << msg << "\nKnown flags:\n";
  for (const auto& [key, desc] : known) std::cerr << "  --" << key << "=...  " << desc << "\n";
  std::cerr << "Run with --help for details.\n";
  std::exit(kUsageErrorExit);
}

}  // namespace

Flags::Flags(int argc, char** argv, const std::map<std::string, std::string>& known)
    : known_(known) {
  known_.emplace("smoke", "run a tiny workload (used by `ctest -L bench-smoke`)");
  known_.emplace("json", "write machine-readable results (name/value/unit JSON) here");
  known_.emplace("trace", "write a Chrome trace-event JSON timeline here (Perfetto-openable)");
  known_.emplace("metrics", "write a runtime MetricsRegistry snapshot (JSON) here");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) usage_error("flags look like --key=value, got: " + arg, known_);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) usage_error("missing '=' in flag: " + arg, known_);
    const std::string key = arg.substr(2, eq - 2);
    if (known_.count(key) != 1) usage_error("unknown flag --" + key, known_);
    values_[key] = arg.substr(eq + 1);
  }
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stoll(it->second);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::stod(it->second);
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def,
                            std::int64_t smoke_def) const {
  return get_int(key, smoke() ? smoke_def : def);
}

double Flags::get_double(const std::string& key, double def, double smoke_def) const {
  return get_double(key, smoke() ? smoke_def : def);
}

std::string Flags::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

void Flags::print_help(const std::string& title) const {
  std::cout << title << "\n\nFlags:\n";
  for (const auto& [key, desc] : known_) std::cout << "  --" << key << "=...  " << desc << "\n";
}

EngineSetup make_setup(const std::string& task_name, const std::string& profile_name,
                       std::int64_t total_vns, std::int64_t num_devices,
                       DeviceType type, std::uint64_t seed,
                       std::int64_t batch_override, std::int64_t epochs_override) {
  ProxyTask task = make_task(task_name, seed);
  TrainRecipe recipe = batch_override > 0
                           ? make_recipe_with_batch(task_name, batch_override)
                           : make_recipe(task_name);
  if (epochs_override > 0) recipe.epochs = epochs_override;
  Sequential model = make_proxy_model(task_name, seed);

  EngineConfig cfg;
  cfg.seed = seed;
  // The proxy models are tiny; simulated memory limits apply to the paper
  // profile and are already exercised by the memory benches/tests. The
  // training benches run the mappings the paper ran.
  cfg.enforce_memory = false;

  VirtualFlowEngine engine(model, *recipe.optimizer, *recipe.schedule, *task.train,
                           model_profile(profile_name), make_devices(type, num_devices),
                           VnMapping::even(total_vns, num_devices, recipe.global_batch),
                           cfg);
  return EngineSetup{std::move(task), std::move(recipe), std::move(engine)};
}

void print_claim(const std::string& name, double measured, double paper,
                 const std::string& unit) {
  std::printf("  %-52s measured=%.3f%s paper=%.3f%s\n", name.c_str(), measured,
              unit.c_str(), paper, unit.c_str());
}

}  // namespace vf::bench
