// Shared plumbing for the paper-experiment benchmark harnesses: flag
// parsing, engine construction from (task, mapping), and output helpers.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (§6), printing the same rows/series the paper reports plus a
// `paper=` reference where a published number exists. EXPERIMENTS.md
// records the paper-vs-measured comparison for every binary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "virtualflow.h"

namespace vf::bench {

/// Exit code used for command-line usage errors (unknown or malformed
/// flags). Distinct from 1, which benches use for failed acceptance checks.
inline constexpr int kUsageErrorExit = 2;

/// Minimal --key=value flag parser. Unknown or malformed flags are a
/// usage error: the constructor prints a one-line diagnosis plus the known
/// flag list to stderr and exits with `kUsageErrorExit` — never an
/// uncaught-exception abort, and never a silent ignore — so typos in sweep
/// scripts and CI smoke invocations fail loudly and legibly. Every bench
/// implicitly understands `--smoke=1`: CTest's `bench-smoke` label runs
/// each binary that way, and benches shrink their workload via the
/// smoke-default accessors below so the harness finishes in seconds
/// instead of minutes. `--json=<path>` is likewise parsed everywhere,
/// but only benches that build a JsonReport write the file (today:
/// bench_hotpath, bench_serving) — adopt it when adding records to the
/// perf trajectory. `--trace=<path>` / `--metrics=<path>` follow the same
/// pattern for the runtime observability outputs (Chrome trace-event JSON
/// and a MetricsRegistry snapshot; see src/obs/): the serving benches
/// write them, others accept-and-ignore.
class Flags {
 public:
  Flags(int argc, char** argv, const std::map<std::string, std::string>& known);

  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  std::string get_string(const std::string& key, const std::string& def) const;

  /// True when the binary was invoked with --smoke=1.
  bool smoke() const { return get_int("smoke", 0) != 0; }
  /// Path passed via --json=<path>, empty when absent.
  std::string json_path() const { return get_string("json", ""); }
  /// Path passed via --trace=<path> (Chrome trace-event JSON output).
  std::string trace_path() const { return get_string("trace", ""); }
  /// Path passed via --metrics=<path> (MetricsRegistry snapshot output).
  std::string metrics_path() const { return get_string("metrics", ""); }
  /// True when `key` was explicitly passed on the command line (as opposed
  /// to falling back to its default). Lets a bench distinguish its
  /// calibrated default workload (where acceptance claims are enforced)
  /// from an exploratory sweep (where they are informational).
  bool overridden(const std::string& key) const { return values_.count(key) > 0; }
  /// Like get_int, but the default shrinks to `smoke_def` under --smoke=1.
  /// An explicit --key=value always wins.
  std::int64_t get_int(const std::string& key, std::int64_t def,
                       std::int64_t smoke_def) const;
  double get_double(const std::string& key, double def, double smoke_def) const;

  bool help_requested() const { return help_; }
  void print_help(const std::string& title) const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> known_;
  bool help_ = false;
};

/// Builds a ready-to-run engine for a proxy task.
struct EngineSetup {
  ProxyTask task;
  TrainRecipe recipe;
  VirtualFlowEngine engine;
};

/// `total_vns` virtual nodes over `num_devices` devices of `type`, at the
/// task's reference batch (or `batch_override` if > 0). Memory checks use
/// the given paper-model profile.
EngineSetup make_setup(const std::string& task_name, const std::string& profile_name,
                       std::int64_t total_vns, std::int64_t num_devices,
                       DeviceType type, std::uint64_t seed,
                       std::int64_t batch_override = -1,
                       std::int64_t epochs_override = -1);

/// Prints "name: measured vs paper (delta)" comparison lines.
void print_claim(const std::string& name, double measured, double paper,
                 const std::string& unit = "");

/// The perf-trajectory report writer moved into the library proper
/// (src/obs/json.h) when the observability layer generalized it into the
/// runtime metrics sink; the alias keeps every bench compiling unchanged.
/// Doubles are now written round-trip-exact and locale-independent.
using JsonReport = vf::obs::JsonReport;

}  // namespace vf::bench
