// Figure 15: extending Gavel with heterogeneous allocations.
//
// Cluster: 4 V100 + 8 P100 + 16 K80 (the paper's §6.5.2 setup), LAS
// objective, 6-minute rounds, Poisson traces swept over 2..12 jobs/hour.
//
// Expected shape (paper): Gavel+HT cuts average JCT by up to ~29% at
// low-to-mid arrival rates; the benefit diminishes at high rates where
// leftover GPUs go to new jobs instead.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              {{"jobs", "jobs per trace (default 20)"},
               {"seed", "trace seed (default 1)"},
               {"scale", "job-length scale (default 0.5)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 15: Gavel vs Gavel+HT, avg JCT vs arrival rate");
    return 0;
  }
  ClusterInventory cluster;
  cluster.per_type[DeviceType::kV100] = 4;
  cluster.per_type[DeviceType::kP100] = 8;
  cluster.per_type[DeviceType::kK80] = 16;

  print_banner(std::cout, "Fig 15: average JCT vs arrival rate (4 V100 + 8 P100 + 16 K80)");
  Table table({"jobs/hour", "Gavel avg JCT (s)", "Gavel+HT avg JCT (s)", "change (%)"});
  double best_improvement = 0.0;
  double high_rate_improvement = 0.0;
  for (const double rate : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    TraceOptions opt;
    opt.num_jobs = flags.get_int("jobs", 20);
    opt.jobs_per_hour = rate;
    opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    opt.steps_scale = flags.get_double("scale", 0.5);
    opt.workloads = {"resnet50", "transformer"};  // §6.5.2: Table 3 subset
    const auto trace = poisson_trace(opt);

    GavelScheduler gavel({});
    GavelOptions ho;
    ho.heterogeneous_allocations = true;
    GavelScheduler gavel_ht(ho);

    const SimResult plain = simulate(cluster, trace, gavel);
    const SimResult ht = simulate(cluster, trace, gavel_ht);
    const double a = mean(plain.jcts());
    const double b = mean(ht.jcts());
    const double change = 100.0 * (1.0 - b / a);
    table.row().cell(rate, 0).cell(a, 0).cell(b, 0).cell(change, 1);
    best_improvement = std::max(best_improvement, change);
    if (rate == 12.0) high_rate_improvement = change;
  }
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("best avg-JCT reduction (%)", best_improvement, 29.2);
  std::printf("  benefit diminishes at high load: %s (12 jobs/hr: %.1f%% vs best %.1f%%)\n",
              high_rate_improvement < best_improvement ? "YES" : "NO",
              high_rate_improvement, best_improvement);
  return 0;
}
