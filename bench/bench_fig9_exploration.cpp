// Figure 9: batch-size exploration with virtual nodes on one RTX 2080 Ti.
//
// Holding the GPU fixed and varying the VN count sweeps the global batch
// over {4 (TF), 8, 16, 32, 64, 128} for BERT-LARGE fine-tuning on RTE,
// SST-2 and MRPC proxies. Unlike the reproducibility experiments, the
// batch CHANGES here, so trajectories legitimately differ — that is the
// point: the user explores convergence at batch sizes that previously
// required up to 32 GPUs.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 9: batch exploration on 1 GPU (RTE / SST-2 / MRPC)");
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::vector<std::int64_t> batches = {4, 8, 16, 32, 64, 128};

  // SST-2 in Fig 9 is the BERT-LARGE exploration variant: use the sst2
  // distribution at rte-like scale via the mrpc-style proxy family.
  const std::vector<std::string> tasks = {"rte-sim", "sst2-sim", "mrpc-sim"};

  for (const auto& task_name : tasks) {
    print_banner(std::cout, "Fig 9: BERT-LARGE on " + task_name +
                                " (1x RTX 2080 Ti, VN = batch/4)");
    Table table({"batch", "VNs", "final acc (%)", "acc by epoch 2/4/6/8/10"});
    double best_acc = 0.0;
    std::int64_t best_batch = 0;
    double tf4_acc = 0.0;
    for (const std::int64_t b : batches) {
      const std::int64_t vns = std::max<std::int64_t>(1, b / 4);
      auto s = vf::bench::make_setup(task_name, "bert-large", vns, 1,
                                     DeviceType::kRtx2080Ti, seed, b,
                                     flags.smoke() ? 1 : -1);
      const TrainResult res = train(s.engine, *s.task.val, s.recipe.epochs);
      std::string curve;
      for (std::size_t e = 1; e < res.curve.size(); e += 2) {
        if (!curve.empty()) curve += " / ";
        curve += fmt_double(res.curve[e].val_accuracy, 3);
      }
      table.row().cell(b).cell(vns).cell(100 * res.final_accuracy, 2).cell(curve);
      if (res.final_accuracy > best_acc) {
        best_acc = res.final_accuracy;
        best_batch = b;
      }
      if (b == 4) tf4_acc = res.final_accuracy;
    }
    table.print(std::cout);
    std::printf("  best batch: %lld (final acc %.2f%%); batch 4 (TF ceiling): %.2f%%\n",
                static_cast<long long>(best_batch), 100 * best_acc, 100 * tf4_acc);
    if (task_name == "rte-sim") {
      vf::bench::print_claim("RTE: gain of best explored batch over batch 4 (pts)",
                             100 * (best_acc - tf4_acc), 7.1);
    }
  }

  print_banner(std::cout, "Context");
  std::printf(
      "  Batch 128 on vanilla TF would need ~32 GPUs (paper §6.3); here it runs on\n"
      "  one simulated 2080 Ti with 32 virtual nodes.\n");
  return 0;
}
