// Figure 10: elastic scheduling with three jobs on 4 V100s.
//
// Job 0 fine-tunes BERT-BASE on SST-2 (demand 4), Job 1 trains ResNet-56
// on cifar10 (demand 2), Job 2 fine-tunes BERT-BASE on QNLI (demand 4,
// highest priority). The VirtualFlow elastic WFS scheduler resizes jobs on
// arrival; the static priority baseline leaves the high-priority job stuck
// and GPUs idle. Accuracies are then verified by actually training each
// job's proxy with the resize schedule extracted from the simulation.
//
// Expected shape (paper): makespan -38%, high-priority JCT -45%, same
// final accuracies as the static scheduler.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

namespace {

JobSpec make_job(std::int64_t id, double arrival, double priority,
                 const std::string& workload, const std::string& task,
                 std::int64_t batch, std::int64_t demand, double duration_s) {
  JobSpec j;
  j.id = id;
  j.arrival_s = arrival;
  j.priority = priority;
  j.workload = workload;
  j.task = task;
  j.profile = model_profile(workload);
  j.global_batch = batch;
  j.demand_gpus = demand;
  const double st = allocation_step_time_s(j.profile, batch,
                                           Allocation::of(DeviceType::kV100, demand));
  j.total_steps = std::max<std::int64_t>(1, static_cast<std::int64_t>(duration_s / st));
  return j;
}

/// Replays a job's simulated allocation timeline as resize events on a
/// real proxy-training run and returns the final accuracy.
double replay_accuracy(const JobState& sim_job, std::uint64_t seed,
                       std::int64_t epochs_override = -1) {
  const std::string& task_name = sim_job.spec.task;
  ProxyTask task = make_task(task_name, seed);
  TrainRecipe recipe = make_recipe(task_name);
  if (epochs_override > 0) recipe.epochs = epochs_override;
  Sequential model = make_proxy_model(task_name, seed);

  EngineConfig cfg;
  cfg.seed = seed;
  cfg.enforce_memory = false;
  const std::int64_t total_vns = 8;
  const std::int64_t first_gpus = sim_job.timeline.empty()
                                      ? sim_job.spec.demand_gpus
                                      : sim_job.timeline.front().alloc.total();
  VirtualFlowEngine eng(model, *recipe.optimizer, *recipe.schedule, *task.train,
                        model_profile(sim_job.spec.workload),
                        make_devices(DeviceType::kV100, first_gpus),
                        VnMapping::even(total_vns, first_gpus, recipe.global_batch), cfg);

  // Convert simulated progress fractions at segment boundaries into
  // training-step resize points.
  const double sim_total = static_cast<double>(sim_job.spec.total_steps);
  const std::int64_t train_total =
      eng.steps_per_epoch() * recipe.epochs;
  std::vector<ReconfigEvent> events;
  double sim_done = 0.0;
  for (std::size_t i = 0; i + 1 < sim_job.timeline.size(); ++i) {
    const AllocSegment& seg = sim_job.timeline[i];
    const double st = allocation_step_time_s(sim_job.spec.profile,
                                             sim_job.spec.global_batch, seg.alloc);
    sim_done += (seg.t1 - seg.t0) / st;
    const double frac = std::min(1.0, sim_done / sim_total);
    const auto at = static_cast<std::int64_t>(frac * static_cast<double>(train_total));
    const std::int64_t gpus =
        std::min<std::int64_t>(sim_job.timeline[i + 1].alloc.total(), total_vns);
    if (gpus <= 0 || at <= (events.empty() ? -1 : events.back().at_step)) continue;
    ReconfigEvent ev;
    ev.at_step = at;
    ev.devices = make_devices(DeviceType::kV100, gpus);
    events.push_back(ev);
  }
  return train(eng, *task.val, recipe.epochs, events).final_accuracy;
}

void print_timeline(const SimResult& res, const char* label) {
  std::printf("\n  %s allocation timeline (GPUs per job):\n", label);
  std::printf("    %-10s", "t (s)");
  for (const auto& j : res.jobs) std::printf("job%-6lld", static_cast<long long>(j.spec.id));
  std::printf("\n");
  for (double t = 0.0; t <= res.makespan_s; t += res.makespan_s / 12.0) {
    std::printf("    %-10.0f", t);
    for (const auto& j : res.jobs) {
      std::int64_t g = 0;
      for (const auto& seg : j.timeline)
        if (seg.t0 <= t && t < seg.t1) g = seg.alloc.total();
      std::printf("%-9lld", static_cast<long long>(g));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, {{"seed", "experiment seed (default 42)"}});
  if (flags.help_requested()) {
    flags.print_help("Fig 10: 3-job elastic scheduling on 4 V100s");
    return 0;
  }
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  ClusterInventory cluster;
  cluster.per_type[DeviceType::kV100] = 4;
  const std::vector<JobSpec> trace = {
      make_job(0, 0.0, 1.0, "bert-base", "sst2-sim", 64, 4, 500.0),
      make_job(1, 60.0, 5.0, "resnet56", "cifar10-sim", 128, 2, 700.0),
      make_job(2, 540.0, 10.0, "bert-base", "qnli-sim", 64, 4, 800.0),
  };

  ElasticWfsScheduler wfs;
  PriorityScheduler prio;
  const SimResult vf = simulate(cluster, trace, wfs);
  const SimResult fixed = simulate(cluster, trace, prio);

  print_banner(std::cout, "Fig 10a/b: allocations over time");
  print_timeline(vf, "VF elastic WFS");
  print_timeline(fixed, "static priority");

  print_banner(std::cout, "Fig 10d: job completion times (s)");
  Table jct({"job", "VF JCT", "priority JCT", "VF resizes"});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    jct.row()
        .cell("job" + std::to_string(i))
        .cell(vf.jobs[i].completion_s - vf.jobs[i].spec.arrival_s, 1)
        .cell(fixed.jobs[i].completion_s - fixed.jobs[i].spec.arrival_s, 1)
        .cell(vf.jobs[i].resizes);
  }
  jct.print(std::cout);

  print_banner(std::cout, "Fig 10c: final accuracies (replayed proxy training)");
  Table acc({"job", "task", "VF acc (%)", "static acc (%)", "paper VF", "paper static"});
  const double paper_vf[] = {91.7, 92.6, 90.6};
  const double paper_static[] = {91.2, 92.7, 90.2};
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double vf_acc = replay_accuracy(vf.jobs[i], seed, flags.smoke() ? 1 : -1);
    const double st_acc = replay_accuracy(fixed.jobs[i], seed, flags.smoke() ? 1 : -1);
    acc.row()
        .cell("job" + std::to_string(i))
        .cell(vf.jobs[i].spec.task)
        .cell(100 * vf_acc, 2)
        .cell(100 * st_acc, 2)
        .cell(paper_vf[i], 1)
        .cell(paper_static[i], 1);
  }
  acc.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("makespan reduction (%)",
                         100.0 * (1.0 - vf.makespan_s / fixed.makespan_s), 38.0);
  const double jv = vf.jobs[2].completion_s - vf.jobs[2].spec.arrival_s;
  const double jp = fixed.jobs[2].completion_s - fixed.jobs[2].spec.arrival_s;
  vf::bench::print_claim("high-priority JCT reduction (%)", 100.0 * (1.0 - jv / jp), 45.0);
  return 0;
}
