// Figure 18: virtual-node overhead for workloads that already fit within
// one GPU's memory. Global batch = the device's max batch; VirtualFlow
// splits it into {8, 4, 2, 1} VNs (per-VN batch = 1/8 .. 1/1 of max), and
// throughput is normalized by the stock (1 VN) configuration.
//
// Expected shape (paper): overhead is minimal — ≥88.4% of stock throughput
// in the worst case; BERT-LARGE's 1/8 point is N/A (max batch 4 cannot be
// split into eight positive micro-batches).
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace vf;
using vf::bench::Flags;

int main(int argc, char** argv) {
  Flags flags(argc, argv, {});
  if (flags.help_requested()) {
    flags.print_help("Fig 18: VN overhead at batch sizes that already fit");
    return 0;
  }
  const DeviceSpec& dev = device_spec(DeviceType::kRtx2080Ti);
  const std::vector<std::string> models = {"resnet50", "transformer", "bert-large"};
  const std::vector<std::int64_t> folds = {8, 4, 2, 1};

  print_banner(std::cout,
               "Fig 18: normalized throughput on one RTX 2080 Ti at max batch");
  Table table({"model", "max batch", "1/8", "1/4", "1/2", "1 (stock)"});
  double worst = 1.0;
  for (const auto& name : models) {
    const ModelProfile& m = model_profile(name);
    const std::int64_t max_b = max_micro_batch(dev, m, /*use_grad_buffer=*/false);
    const double tput1 = static_cast<double>(max_b) / device_step_time_s(dev, m, {max_b});
    auto& row = table.row().cell(name).cell(max_b);
    for (const std::int64_t f : folds) {
      if (max_b % f != 0 || max_b / f < 1 || (f > 1 && max_b / f == 0)) {
        row.cell("N/A");
        continue;
      }
      const std::int64_t per_vn = max_b / f;
      if (per_vn < 1) {
        row.cell("N/A");
        continue;
      }
      const std::vector<std::int64_t> vns(static_cast<std::size_t>(f), per_vn);
      const double tput = static_cast<double>(max_b) / device_step_time_s(dev, m, vns);
      row.cell(tput / tput1, 3);
      if (f > 1) worst = std::min(worst, tput / tput1);
    }
  }
  table.print(std::cout);

  print_banner(std::cout, "Claims vs paper");
  vf::bench::print_claim("worst normalized throughput (x)", worst, 0.884);
  std::printf(
      "  Note: for single-accelerator workloads that already fit, the user can\n"
      "  simply disable virtual nodes (paper §6.6).\n");
  return 0;
}
