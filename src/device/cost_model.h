// Analytic step-time cost model for simulated accelerators.
//
// step_time(device, model, VN batches) =
//     Σ_v [ launch + max(compute(b_v), memory(b_v)) ]   (sequential VNs)
//   + update_time                                        (once per step!)
//   + fixed framework overhead
//
// Charging the parameter update once per step regardless of V is the
// mechanism behind two results the paper reports: Fig 17's throughput
// *increase* at high virtual-node counts (bigger global batch -> fewer
// updates per example) and Fig 18's low overhead when a workload already
// fits in memory.
#pragma once

#include <cstdint>
#include <vector>

#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// Batch-size utilization curve: fraction of peak compute achieved at
/// micro-batch size b. Saturating b / (b + b_half).
double batch_utilization(const ModelProfile& model, double batch);

/// Forward+backward time of one virtual-node pass of `batch` examples.
double pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                   std::int64_t batch);

/// Parameter-update time (optimizer step), charged once per training step.
double update_time_s(const DeviceSpec& spec, const ModelProfile& model);

/// Full local step time for one device running its VN batches sequentially.
/// Does not include gradient synchronization (the engine adds comm cost).
double device_step_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          const std::vector<std::int64_t>& vn_batches);

/// Steady-state training throughput (examples/s) of a single device running
/// a local batch of `batch` split into `vns` equal virtual nodes.
double device_throughput(const DeviceSpec& spec, const ModelProfile& model,
                         std::int64_t batch, std::int64_t vns);

/// Forward-only (inference) time of one virtual-node pass of `batch`
/// examples: no backward, no gradient traffic, activations written once and
/// parameters read once. Used by the serving path (src/serve/) for
/// per-request latency accounting.
double infer_pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                         std::int64_t batch);

/// Full forward-only time for one device running its VN batches
/// sequentially. No parameter update is charged (inference never updates);
/// the per-step framework overhead is charged once per formed batch.
double device_infer_time_s(const DeviceSpec& spec, const ModelProfile& model,
                           const std::vector<std::int64_t>& vn_batches);

/// Forward time of one autoregressive DECODE pass over `batch` in-flight
/// token streams: each stream contributes one token of compute, but the
/// pass still reads the FULL parameter set from device memory. That full
/// read is what makes small-batch decode memory-bandwidth-bound — the
/// param_bytes() / mem_bw floor dominates the single token's FLOPs by an
/// order of magnitude on profiles sized like transformer decoders — and it
/// is why decode slices are short, near-constant-cost, and cheap to chain
/// through a slot (the prefill/decode disaggregation the serving path
/// exploits). For the token-denominated profiles the serving benches use,
/// `flops_per_example` / `activation_bytes_per_example` are per-token, so
/// a prefill of P tokens prices as infer_pass_time_s(batch = P) and each
/// decode step as decode_pass_time_s(batch = streams).
double decode_pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          std::int64_t batch);

/// Forward-only time of ONE independently dispatched slice onto an IDLE
/// device: the cold-dispatch price of continuous batching's scheduling
/// unit (src/serve/). Unlike device_infer_time_s, which amortizes the
/// per-dispatch framework overhead across every VN of a co-scheduled
/// batch, a cold continuously batched slice pays the full overhead.
/// A warm dispatch — the slice pipelines behind a pass already running on
/// its device — amortizes the overhead away and costs just
/// infer_pass_time_s; the serving scheduler picks the price from the
/// device's virtual-clock state. Invariant:
///   device_infer_time_s(batches) <= Σ_b slice_infer_time_s(b)
/// with equality only for single-slice batches.
double slice_infer_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          std::int64_t batch);

}  // namespace vf
