// Simulated hardware accelerator catalog.
//
// Substitution (DESIGN.md §1): the paper's physical V100 / P100 / K80 /
// RTX 2080 Ti GPUs are replaced by analytic specs. `compute_efficiency`
// is calibrated so *relative* speeds match what the paper reports for its
// workloads (§5.1.2: "for this workload, V100 GPUs are 4x as fast as P100
// GPUs"), which is what the heterogeneous-training and scheduling results
// depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vf {

/// Accelerator model.
enum class DeviceType : std::uint8_t { kV100, kP100, kK80, kRtx2080Ti };

const char* device_type_name(DeviceType t);

/// Static description of one accelerator type.
struct DeviceSpec {
  DeviceType type = DeviceType::kV100;
  std::string name;

  double peak_tflops = 0.0;        ///< peak FP32-equivalent training compute
  double compute_efficiency = 1.0; ///< achieved fraction of peak on DL kernels
  double mem_bytes = 0.0;          ///< HBM capacity
  double mem_bw_bytes = 0.0;       ///< memory bandwidth, bytes/s
  double usable_mem_fraction = 0.95;  ///< framework reserves the rest
  double kernel_launch_s = 30e-6;  ///< per-pass launch/dispatch overhead
  double step_fixed_s = 1e-3;      ///< per-step framework overhead
  double first_step_extra_s = 8.0; ///< one-off graph optimization (Fig 6)

  /// Effective sustained FLOP/s at full utilization.
  double effective_flops() const { return peak_tflops * 1e12 * compute_efficiency; }
  double usable_mem_bytes() const { return mem_bytes * usable_mem_fraction; }
};

/// Canonical spec for each device type. Efficiencies are calibrated so
/// that on compute-bound CNN workloads V100 : P100 : K80 ≈ 4 : 1 : 0.25
/// and RTX 2080 Ti ≈ 0.75 x V100, matching the ratios the paper reports.
const DeviceSpec& device_spec(DeviceType t);

/// A concrete accelerator instance in a simulated cluster.
struct Device {
  std::int64_t id = 0;
  DeviceType type = DeviceType::kV100;

  const DeviceSpec& spec() const { return device_spec(type); }
};

/// Builds `count` devices of one type with ids starting at `first_id`.
std::vector<Device> make_devices(DeviceType t, std::int64_t count,
                                 std::int64_t first_id = 0);

/// Concatenates heterogeneous device groups, re-numbering ids contiguously.
std::vector<Device> make_heterogeneous(
    const std::vector<std::pair<DeviceType, std::int64_t>>& groups);

}  // namespace vf
