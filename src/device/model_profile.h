// Performance profile of a deep-learning model, as the device cost model
// sees it.
//
// The paper's evaluation uses ResNet-50, ResNet-56, BERT-BASE/LARGE and a
// WMT Transformer. We cannot run those architectures here, but all of the
// paper's *performance* results depend only on a handful of per-model
// quantities: parameter bytes, FLOPs per example, activation bytes per
// example, and how quickly a device saturates with batch size. Profiles
// carrying those quantities (calibrated to published model sizes — e.g.
// ResNet-50's 102.45 MB of parameters from Fig 6) drive the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace vf {

/// Static performance-relevant description of one model/workload.
struct ModelProfile {
  std::string name;

  std::int64_t param_count = 0;          ///< trainable scalars
  double flops_per_example = 0.0;        ///< forward-pass FLOPs per example
  double activation_bytes_per_example = 0.0;  ///< forward activation footprint
  double input_bytes_per_example = 0.0;  ///< input tensor footprint
  double workspace_bytes = 0.0;          ///< kernel scratch ("kernel_temp" in Fig 6)

  /// Batch size at which a device reaches half of its saturated
  /// throughput on this model; smaller values mean the model saturates
  /// hardware quickly (large per-example kernels).
  double batch_half_saturation = 32.0;

  /// Multiplier on the parameter-update cost (optimizers like LAMB/Adam
  /// touch more state per parameter than plain SGD).
  double update_cost_factor = 1.0;

  double param_bytes() const { return static_cast<double>(param_count) * 4.0; }

  /// Forward+backward FLOPs per example (backward ~ 2x forward).
  double train_flops_per_example() const { return 3.0 * flops_per_example; }
};

}  // namespace vf
