#include "device/cost_model.h"

#include <algorithm>

#include "util/common.h"

namespace vf {

double batch_utilization(const ModelProfile& model, double batch) {
  check(batch > 0, "batch must be positive");
  return batch / (batch + model.batch_half_saturation);
}

double pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                   std::int64_t batch) {
  check(batch > 0, "batch must be positive");
  const double b = static_cast<double>(batch);
  const double util = batch_utilization(model, b);
  const double compute_s =
      model.train_flops_per_example() * b / (spec.effective_flops() * util);
  // Bytes touched in a training pass: activations written + read in
  // backward, parameters read twice (forward and backward).
  const double bytes =
      3.0 * model.activation_bytes_per_example * b + 2.0 * model.param_bytes();
  const double memory_s = bytes / spec.mem_bw_bytes;
  return spec.kernel_launch_s + std::max(compute_s, memory_s);
}

double update_time_s(const DeviceSpec& spec, const ModelProfile& model) {
  // Optimizer reads params + grads and writes params: ~3x param bytes,
  // scaled by the optimizer's state-touch factor.
  const double bytes = 3.0 * model.param_bytes() * model.update_cost_factor;
  return spec.kernel_launch_s + bytes / spec.mem_bw_bytes;
}

double device_step_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          const std::vector<std::int64_t>& vn_batches) {
  check(!vn_batches.empty(), "device must run at least one virtual node");
  double t = 0.0;
  for (auto b : vn_batches) t += pass_time_s(spec, model, b);
  return t + update_time_s(spec, model) + spec.step_fixed_s;
}

double infer_pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                         std::int64_t batch) {
  check(batch > 0, "batch must be positive");
  const double b = static_cast<double>(batch);
  const double util = batch_utilization(model, b);
  const double compute_s =
      model.flops_per_example * b / (spec.effective_flops() * util);
  // Bytes touched forward-only: activations written once, parameters read
  // once (no backward re-read, no gradient buffer).
  const double bytes = model.activation_bytes_per_example * b + model.param_bytes();
  const double memory_s = bytes / spec.mem_bw_bytes;
  return spec.kernel_launch_s + std::max(compute_s, memory_s);
}

double decode_pass_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          std::int64_t batch) {
  check(batch > 0, "batch must be positive");
  const double b = static_cast<double>(batch);
  const double util = batch_utilization(model, b);
  const double compute_s =
      model.flops_per_example * b / (spec.effective_flops() * util);
  // One token's activations per stream, but the FULL parameter read: the
  // weights do not shrink because the input did. This floor is the
  // memory-bound regime of autoregressive decoding.
  const double bytes = model.input_bytes_per_example * b + model.param_bytes();
  const double memory_s = bytes / spec.mem_bw_bytes;
  return spec.kernel_launch_s + std::max(compute_s, memory_s);
}

double device_infer_time_s(const DeviceSpec& spec, const ModelProfile& model,
                           const std::vector<std::int64_t>& vn_batches) {
  check(!vn_batches.empty(), "device must run at least one virtual node");
  double t = 0.0;
  for (auto b : vn_batches) t += infer_pass_time_s(spec, model, b);
  return t + spec.step_fixed_s;
}

double slice_infer_time_s(const DeviceSpec& spec, const ModelProfile& model,
                          std::int64_t batch) {
  return infer_pass_time_s(spec, model, batch) + spec.step_fixed_s;
}

double device_throughput(const DeviceSpec& spec, const ModelProfile& model,
                         std::int64_t batch, std::int64_t vns) {
  check(vns > 0, "virtual node count must be positive");
  check(batch % vns == 0, "batch must divide evenly across virtual nodes");
  const std::vector<std::int64_t> per_vn(static_cast<std::size_t>(vns), batch / vns);
  const double t = device_step_time_s(spec, model, per_vn);
  return static_cast<double>(batch) / t;
}

}  // namespace vf
