// Memory accounting for simulated accelerators, by Fig 6's categories:
// inputs, activations, kernel_temp (workspace), parameters, the gradient
// buffer VirtualFlow adds, and "other" framework overhead.
//
// Invariants this model encodes (paper §3.3):
//  * the gradient buffer is shared across all VNs on a device, so its cost
//    is one model-size constant, independent of V;
//  * activations are per-VN and only one VN's activations are live at a
//    time (sequential execution), plus the prefetched inputs of the next
//    VN (Fig 5, step 1);
//  * peak memory is therefore driven by the *largest* VN on the device,
//    not the sum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// Per-category memory footprint in bytes (Fig 6 legend).
struct MemoryBreakdown {
  double inputs = 0.0;
  double activations = 0.0;
  double kernel_temp = 0.0;
  double parameters = 0.0;
  double grad_buffer = 0.0;
  double other = 0.0;

  double total() const {
    return inputs + activations + kernel_temp + parameters + grad_buffer + other;
  }
};

/// Fixed framework overhead ("other" + "unknown" in Fig 6).
constexpr double kFrameworkOverheadBytes = 850.0 * 1024.0 * 1024.0;

/// Peak memory of a device running the given VN micro-batches.
/// `use_grad_buffer` is false only in the V=1 fallback, where VirtualFlow
/// behaves exactly like the stock framework (§3.2).
MemoryBreakdown peak_memory(const ModelProfile& model,
                            const std::vector<std::int64_t>& vn_batches,
                            bool use_grad_buffer);

/// True if the given VN layout fits in the device's usable memory.
bool fits(const DeviceSpec& spec, const ModelProfile& model,
          const std::vector<std::int64_t>& vn_batches, bool use_grad_buffer);

/// Throws OomError (mirroring the framework's OOM abort) if it doesn't fit.
void check_fits(const DeviceSpec& spec, const ModelProfile& model,
                const std::vector<std::int64_t>& vn_batches, bool use_grad_buffer);

/// Largest micro-batch (power of 2 or midpoint, per §5.1.1) that fits on
/// the device as a single virtual node. Returns 0 if even batch 1 OOMs.
std::int64_t max_micro_batch(const DeviceSpec& spec, const ModelProfile& model,
                             bool use_grad_buffer);

/// The "power-of-2-like" batch sizes of §5.1.1: powers of two plus the
/// midpoints between adjacent powers (48, 96, 192, ...), ascending, up to
/// and including `limit`.
std::vector<std::int64_t> pow2_like_batches(std::int64_t limit);

}  // namespace vf
