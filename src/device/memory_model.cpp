#include "device/memory_model.h"

#include <algorithm>

#include "util/common.h"
#include "util/table.h"

namespace vf {

MemoryBreakdown peak_memory(const ModelProfile& model,
                            const std::vector<std::int64_t>& vn_batches,
                            bool use_grad_buffer) {
  // An empty list is a device hosting zero virtual nodes this phase (a
  // legal skewed mapping): it still holds its model replica and the
  // framework footprint, but no inputs or activations.
  std::int64_t max_b = 0;
  for (auto b : vn_batches) {
    check(b > 0, "virtual-node batch must be positive");
    max_b = std::max(max_b, b);
  }

  MemoryBreakdown m;
  const double bd = static_cast<double>(max_b);
  // Current VN's inputs plus the prefetched inputs of the next VN (Fig 5).
  m.inputs = model.input_bytes_per_example * bd * (vn_batches.size() > 1 ? 2.0 : 1.0);
  m.activations = model.activation_bytes_per_example * bd;
  m.kernel_temp = model.workspace_bytes;
  m.parameters = model.param_bytes();
  m.grad_buffer = use_grad_buffer ? model.param_bytes() : 0.0;
  m.other = kFrameworkOverheadBytes;
  return m;
}

bool fits(const DeviceSpec& spec, const ModelProfile& model,
          const std::vector<std::int64_t>& vn_batches, bool use_grad_buffer) {
  return peak_memory(model, vn_batches, use_grad_buffer).total() <=
         spec.usable_mem_bytes();
}

void check_fits(const DeviceSpec& spec, const ModelProfile& model,
                const std::vector<std::int64_t>& vn_batches, bool use_grad_buffer) {
  const auto m = peak_memory(model, vn_batches, use_grad_buffer);
  if (m.total() > spec.usable_mem_bytes()) {
    throw OomError("OOM on " + spec.name + " running " + model.name + ": needs " +
                   fmt_bytes(m.total()) + " but only " +
                   fmt_bytes(spec.usable_mem_bytes()) + " usable");
  }
}

std::vector<std::int64_t> pow2_like_batches(std::int64_t limit) {
  std::vector<std::int64_t> out;
  for (std::int64_t p = 1; p <= limit; p *= 2) {
    out.push_back(p);
    const std::int64_t mid = p + p / 2;  // midpoint between p and 2p
    if (p >= 2 && mid <= limit) out.push_back(mid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t max_micro_batch(const DeviceSpec& spec, const ModelProfile& model,
                             bool use_grad_buffer) {
  std::int64_t best = 0;
  for (std::int64_t b : pow2_like_batches(1 << 20)) {
    if (fits(spec, model, {b}, use_grad_buffer)) {
      best = b;
    } else {
      break;  // memory use is monotone in batch size
    }
  }
  return best;
}

}  // namespace vf
