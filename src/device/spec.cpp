#include "device/spec.h"

#include "util/common.h"

namespace vf {

const char* device_type_name(DeviceType t) {
  switch (t) {
    case DeviceType::kV100: return "V100";
    case DeviceType::kP100: return "P100";
    case DeviceType::kK80: return "K80";
    case DeviceType::kRtx2080Ti: return "RTX2080Ti";
  }
  return "unknown";
}

namespace {

DeviceSpec make_spec(DeviceType t) {
  DeviceSpec s;
  s.type = t;
  s.name = device_type_name(t);
  switch (t) {
    case DeviceType::kV100:
      s.peak_tflops = 15.7;
      s.compute_efficiency = 0.64;  // -> ~10.0 effective TFLOP/s
      s.mem_bytes = 16.0 * kGiB;
      s.mem_bw_bytes = 900e9;
      break;
    case DeviceType::kP100:
      s.peak_tflops = 9.3;
      s.compute_efficiency = 0.27;  // -> ~2.5 effective: V100 is 4x (paper §5.1.2)
      s.mem_bytes = 16.0 * kGiB;
      s.mem_bw_bytes = 732e9;
      break;
    case DeviceType::kK80:
      s.peak_tflops = 4.1;          // per-die
      s.compute_efficiency = 0.15;  // -> ~0.6 effective: ~4x slower than P100
      s.mem_bytes = 12.0 * kGiB;
      s.mem_bw_bytes = 240e9;
      s.kernel_launch_s = 60e-6;
      break;
    case DeviceType::kRtx2080Ti:
      s.peak_tflops = 13.4;
      s.compute_efficiency = 0.56;  // -> ~7.5 effective (~0.75x V100)
      s.mem_bytes = 11.0 * kGiB;
      s.mem_bw_bytes = 616e9;
      break;
  }
  return s;
}

}  // namespace

const DeviceSpec& device_spec(DeviceType t) {
  static const DeviceSpec v100 = make_spec(DeviceType::kV100);
  static const DeviceSpec p100 = make_spec(DeviceType::kP100);
  static const DeviceSpec k80 = make_spec(DeviceType::kK80);
  static const DeviceSpec rtx = make_spec(DeviceType::kRtx2080Ti);
  switch (t) {
    case DeviceType::kV100: return v100;
    case DeviceType::kP100: return p100;
    case DeviceType::kK80: return k80;
    case DeviceType::kRtx2080Ti: return rtx;
  }
  throw VfError("unknown device type");
}

std::vector<Device> make_devices(DeviceType t, std::int64_t count, std::int64_t first_id) {
  check(count >= 0, "device count must be non-negative");
  std::vector<Device> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) out.push_back({first_id + i, t});
  return out;
}

std::vector<Device> make_heterogeneous(
    const std::vector<std::pair<DeviceType, std::int64_t>>& groups) {
  std::vector<Device> out;
  std::int64_t next_id = 0;
  for (const auto& [type, count] : groups) {
    auto g = make_devices(type, count, next_id);
    next_id += count;
    out.insert(out.end(), g.begin(), g.end());
  }
  return out;
}

}  // namespace vf
