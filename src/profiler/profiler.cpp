#include "profiler/profiler.h"

#include <algorithm>

#include "util/common.h"
#include "util/rng.h"

namespace vf {

OfflineProfile::OfflineProfile(DeviceType device, std::string workload,
                               std::vector<ProfilePoint> points, double comm_overhead_s)
    : device_(device),
      workload_(std::move(workload)),
      points_(std::move(points)),
      comm_overhead_(comm_overhead_s) {
  check(!points_.empty(), "profile must contain at least one point");
  for (std::size_t i = 1; i < points_.size(); ++i)
    check(points_[i].batch > points_[i - 1].batch, "profile points must be ascending");
}

std::int64_t OfflineProfile::max_batch() const { return points_.back().batch; }

double OfflineProfile::step_time(std::int64_t batch) const {
  check(batch > 0, "batch must be positive");
  check(batch <= max_batch(),
        "batch " + std::to_string(batch) + " exceeds the profiled memory frontier (" +
            std::to_string(max_batch()) + ") on " + device_spec(device_).name);
  if (batch <= points_.front().batch) {
    // Below the smallest profiled point: scale linearly toward zero batch
    // (conservative; the launch overhead keeps real times above this).
    return points_.front().step_time_s * static_cast<double>(batch) /
           static_cast<double>(points_.front().batch);
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (batch <= points_[i].batch) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double f = static_cast<double>(batch - lo.batch) /
                       static_cast<double>(hi.batch - lo.batch);
      return lo.step_time_s + f * (hi.step_time_s - lo.step_time_s);
    }
  }
  return points_.back().step_time_s;  // unreachable given the max_batch check
}

OfflineProfile profile_workload(DeviceType type, const ModelProfile& model,
                                const ProfilerOptions& opts,
                                double* out_profiling_time_s) {
  const DeviceSpec& spec = device_spec(type);
  check(opts.steps_per_point > 0, "steps_per_point must be positive");

  std::vector<ProfilePoint> points;
  double profiling_time = 0.0;
  const std::int64_t frontier = max_micro_batch(spec, model, /*use_grad_buffer=*/true);
  check(frontier > 0, "workload " + model.name + " does not fit on " + spec.name +
                          " at any batch size");

  for (const std::int64_t b : pow2_like_batches(frontier)) {
    // "Run" steps_per_point steps: in simulation every step takes the
    // model-predicted time, so the average equals one step's cost; the
    // simulated profiling clock still pays for all of them, plus the
    // first-step graph-optimization overhead per batch size. A small
    // deterministic measurement perturbation (+/-1.5%) models the
    // run-to-run variance real profiling averages over — this is what
    // separates the solver's predictions from ground truth in Fig 14.
    const double exact = device_step_time_s(spec, model, {b});
    const std::uint64_t h = splitmix64(
        derive_seed(static_cast<std::uint64_t>(type) + 1,
                    static_cast<std::uint64_t>(b)));
    const double unit = 2.0 * (static_cast<double>(h >> 11) * 0x1.0p-53) - 1.0;
    const double one = exact * (1.0 + 0.015 * unit);
    points.push_back({b, one, static_cast<double>(b) / one});
    profiling_time +=
        spec.first_step_extra_s + exact * static_cast<double>(opts.steps_per_point);
  }

  // §5.1.2: estimate comm overhead as distributed-minus-single-node step
  // time at local batch 1 — which the ring all-reduce model gives directly
  // for a minimal 2-node ring.
  const double comm = ring_allreduce_time_s(model.param_bytes(), 2, opts.link);

  if (out_profiling_time_s != nullptr) *out_profiling_time_s = profiling_time;
  return OfflineProfile(type, model.name, std::move(points), comm);
}

}  // namespace vf
