// Offline profiler (§5.1.1).
//
// "VirtualFlow runs the given workload on a single hardware accelerator at
// a time across all batch sizes of interest that fit in the accelerator's
// memory" — batch sizes are powers of two and their midpoints, and ~20
// steps per point suffice because step times are stable. In this repo the
// "runs" execute against the simulated device cost model, which plays the
// role of the physical GPU (DESIGN.md §1); the profiler's interface,
// enumeration rule, curve shape, and downstream consumers (the
// heterogeneous solver, Gavel+HT) are exactly the paper's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/comm.h"
#include "device/cost_model.h"
#include "device/memory_model.h"
#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// One measured point of a throughput-over-batch-size curve.
struct ProfilePoint {
  std::int64_t batch = 0;
  double step_time_s = 0.0;   ///< single-device step time at this batch
  double throughput = 0.0;    ///< examples/s
};

/// Offline profile of one (workload, device type) pair.
class OfflineProfile {
 public:
  OfflineProfile() = default;
  OfflineProfile(DeviceType device, std::string workload,
                 std::vector<ProfilePoint> points, double comm_overhead_s);

  DeviceType device() const { return device_; }
  const std::string& workload() const { return workload_; }
  const std::vector<ProfilePoint>& points() const { return points_; }

  /// Largest profiled batch (the device's memory-fit frontier).
  std::int64_t max_batch() const;

  /// Step time at an arbitrary batch size, linearly interpolated between
  /// profiled points (extrapolates linearly through the origin below the
  /// smallest point; throws above max_batch — the workload wouldn't fit).
  double step_time(std::int64_t batch) const;

  /// Estimated per-step gradient-synchronization overhead (§5.1.2: the
  /// difference between distributed and single-node step times).
  double comm_overhead_s() const { return comm_overhead_; }

 private:
  DeviceType device_ = DeviceType::kV100;
  std::string workload_;
  std::vector<ProfilePoint> points_;  // ascending batch
  double comm_overhead_ = 0.0;
};

/// Profiling knobs.
struct ProfilerOptions {
  std::int64_t steps_per_point = 20;  ///< paper's "a few steps (e.g., 20)"
  LinkSpec link;                      ///< used for the comm-overhead estimate
};

/// Profiles `model` on a device of type `type` across all power-of-2-like
/// batch sizes that fit. Also returns the simulated profiling cost
/// (the paper: "typically takes no longer than 10 minutes") via
/// `out_profiling_time_s` when non-null.
OfflineProfile profile_workload(DeviceType type, const ModelProfile& model,
                                const ProfilerOptions& opts = {},
                                double* out_profiling_time_s = nullptr);

}  // namespace vf
