// Blocked kernel implementations — the hot half of tensor/kernels.h.
//
// One core implements all three matrix products. Tiling partitions the
// OUTPUT space: each out[i, j] is touched by exactly one (i-tile, j-tile)
// pair, inside which its k loop runs 0..k-1 in order — the per-element
// float-addition chain matches the reference kernels on all finite inputs
// (the reference's zero-skip only adds/removes +/-0 terms; see kernels.h).
//
// The inner loop is register-blocked over k by 4: out[i, j] stays in a
// register across four *sequential* += operations (k order preserved, no
// accumulator splitting), quartering the output-row load/store traffic
// that otherwise bounds the saxpy form. The j loop is the vectorization
// axis — independent output elements, safe at any SIMD width, which is
// why this file is built -O3: the optimizer widens the j lanes but can
// never touch an accumulation chain (no fast-math anywhere).
//
// The transpose-operand variants (tl/tr) transpose the transposed operand
// into per-thread scratch and reuse the core: the multiplication terms
// and their per-element order are unchanged, and the core's contiguous
// b-row access replaces the strided walks that made the naive forms
// latency-bound.
#include "tensor/kernels_blocked.h"

#include <vector>

namespace vf::kernels::detail {

namespace {

// Tile sizes (floats, not bytes). The j tile keeps the rhs panel and the
// output row segment L1-resident while the k loop streams over them; the
// i tile keeps a batch of output rows hot. Both only partition the output
// space — k is never tiled, preserving each element's accumulation order.
constexpr std::int64_t kTileI = 32;
constexpr std::int64_t kTileJ = 128;
// Square tile for the blocked transpose: 32x32 floats = two 4 KiB pages.
constexpr std::int64_t kTileT = 32;

/// Reusable per-thread transpose scratch for the tl/tr mappings. Not a
/// Tensor on purpose: kernel-internal, invisible to the workspace audit,
/// and stable after warm-up.
std::vector<float>& transpose_scratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

void matmul_core(const float* __restrict a, const float* __restrict b,
                 float* __restrict out, std::int64_t m, std::int64_t k,
                 std::int64_t n) {
  for (std::int64_t ii = 0; ii < m; ii += kTileI) {
    const std::int64_t ie = ii + kTileI < m ? ii + kTileI : m;
    for (std::int64_t jj = 0; jj < n; jj += kTileJ) {
      const std::int64_t je = jj + kTileJ < n ? jj + kTileJ : n;
      for (std::int64_t i = ii; i < ie; ++i) {
        const float* __restrict a_row = a + i * k;
        float* __restrict o_row = out + i * n;
        for (std::int64_t j = jj; j < je; ++j) o_row[j] = 0.0F;
        std::int64_t kk = 0;
        for (; kk + 4 <= k; kk += 4) {
          const float a0 = a_row[kk], a1 = a_row[kk + 1];
          const float a2 = a_row[kk + 2], a3 = a_row[kk + 3];
          const float* __restrict b0 = b + kk * n;
          const float* __restrict b1 = b0 + n;
          const float* __restrict b2 = b1 + n;
          const float* __restrict b3 = b2 + n;
          for (std::int64_t j = jj; j < je; ++j) {
            float o = o_row[j];
            o += a0 * b0[j];
            o += a1 * b1[j];
            o += a2 * b2[j];
            o += a3 * b3[j];
            o_row[j] = o;
          }
        }
        for (; kk < k; ++kk) {
          const float av = a_row[kk];
          const float* __restrict b_row = b + kk * n;
          for (std::int64_t j = jj; j < je; ++j) o_row[j] += av * b_row[j];
        }
      }
    }
  }
}

}  // namespace

void transpose_blocked(const float* in, float* out, std::int64_t rows,
                       std::int64_t cols) {
  // Square tiles keep both the row-major reads and the strided writes
  // within a few cache lines at a time (pure data movement: any visit
  // order is trivially bit-identical to the reference).
  const float* __restrict inp = in;
  float* __restrict outp = out;
  for (std::int64_t ii = 0; ii < rows; ii += kTileT) {
    const std::int64_t ie = ii + kTileT < rows ? ii + kTileT : rows;
    for (std::int64_t jj = 0; jj < cols; jj += kTileT) {
      const std::int64_t je = jj + kTileT < cols ? jj + kTileT : cols;
      for (std::int64_t i = ii; i < ie; ++i) {
        const float* __restrict in_row = inp + i * cols;
        for (std::int64_t j = jj; j < je; ++j) outp[j * rows + i] = in_row[j];
      }
    }
  }
}

void matmul_blocked(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  matmul_core(a, b, out, m, k, n);
}

void matmul_tl_blocked(const float* a, const float* b, float* out,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
  // out = a^T @ b with a stored [k x m]: transpose a into row-major
  // [m x k] scratch and run the core. Element (i, j) still sums
  // a[kk, i] * b[kk, j] for kk ascending — the identical chain.
  std::vector<float>& scratch = transpose_scratch();
  scratch.resize(static_cast<std::size_t>(m * k));
  transpose_blocked(a, scratch.data(), k, m);
  matmul_core(scratch.data(), b, out, m, k, n);
}

void matmul_tr_blocked(const float* a, const float* b, float* out,
                       std::int64_t m, std::int64_t k, std::int64_t n) {
  // out = a @ b^T with b stored [n x k]: transpose b into row-major
  // [k x n] scratch and run the core. Element (i, j) still sums
  // a[i, kk] * b[j, kk] for kk ascending — the identical chain.
  std::vector<float>& scratch = transpose_scratch();
  scratch.resize(static_cast<std::size_t>(k * n));
  transpose_blocked(b, scratch.data(), n, k);
  matmul_core(a, scratch.data(), out, m, k, n);
}

}  // namespace vf::kernels::detail
