#include "tensor/backend.h"

#include <array>
#include <atomic>
#include <mutex>

#include "util/common.h"

namespace vf::backend {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  // Runtime cpuid probe — what makes calling into the -mavx2 TU safe on
  // a binary that must also run on older x86 hosts.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
  f.neon = true;  // baseline on aarch64
#endif
  return f;
}

struct ContractKey {
  KernelOp op;
  std::int64_t m, k, n;
};

// Bounded lock-free-read registry: writers append under a mutex and then
// publish by bumping the count (release); readers acquire the count and
// scan. Registration is a setup/test API — it must not race in-flight
// kernels that could observe a slot mid-write after clear() recycles it.
constexpr std::size_t kMaxContractFallbacks = 64;
std::array<ContractKey, kMaxContractFallbacks> g_contract{};
std::atomic<std::size_t> g_contract_count{0};
std::mutex g_contract_mu;

std::atomic<bool> g_simd_disabled{false};

/// Lazily probed on first use: __builtin_cpu_supports needs libgcc's cpu
/// indicator initialized, which a namespace-scope initializer in another
/// TU could beat to the punch.
const CpuFeatures& features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

bool contract_fallback_hit(KernelOp op, std::int64_t m, std::int64_t k,
                           std::int64_t n) {
  const std::size_t count = g_contract_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    const ContractKey& e = g_contract[i];
    if (e.op == op && e.m == m && e.k == k && e.n == n) return true;
  }
  return false;
}

}  // namespace

const char* kernel_op_name(KernelOp op) {
  switch (op) {
    case KernelOp::kMatmul: return "matmul";
    case KernelOp::kMatmulTransposeLhs: return "tl";
    case KernelOp::kMatmulTransposeRhs: return "tr";
    case KernelOp::kTranspose: return "transpose";
    case KernelOp::kAdd: return "add";
    case KernelOp::kMul: return "mul";
    case KernelOp::kColumnSums: return "column_sums";
  }
  return "?";
}

BackendFactory::BackendFactory() = default;

BackendFactory& BackendFactory::instance() {
  static BackendFactory factory;
  return factory;
}

bool BackendFactory::simd_compiled() {
#if defined(VF_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

const char* BackendFactory::simd_isa() {
#if defined(VF_SIMD_AVX2)
  return "avx2";
#elif defined(__ARM_NEON) || defined(__aarch64__)
  return "neon";  // stub tier: compiled as delegation, never selected
#else
  return "none";
#endif
}

CpuFeatures BackendFactory::cpu_features() const { return features(); }

bool BackendFactory::simd_available() const {
  return simd_compiled() && features().avx2 &&
         !g_simd_disabled.load(std::memory_order_relaxed);
}

void BackendFactory::set_simd_disabled(bool disabled) {
  g_simd_disabled.store(disabled, std::memory_order_relaxed);
}

bool BackendFactory::simd_disabled() const {
  return g_simd_disabled.load(std::memory_order_relaxed);
}

void BackendFactory::register_contract_fallback(KernelOp op, std::int64_t m,
                                                std::int64_t k, std::int64_t n) {
  std::lock_guard<std::mutex> lock(g_contract_mu);
  const std::size_t count = g_contract_count.load(std::memory_order_relaxed);
  check(count < kMaxContractFallbacks,
        "backend contract-fallback registry is full");
  g_contract[count] = ContractKey{op, m, k, n};
  g_contract_count.store(count + 1, std::memory_order_release);
}

void BackendFactory::clear_contract_fallbacks() {
  std::lock_guard<std::mutex> lock(g_contract_mu);
  g_contract_count.store(0, std::memory_order_release);
}

std::size_t BackendFactory::contract_fallback_count() const {
  return g_contract_count.load(std::memory_order_acquire);
}

Dispatch BackendFactory::select(KernelOp op, std::int64_t m, std::int64_t k,
                                std::int64_t n) const {
  // Rule order is the contract (backend.h): ISA, then per-shape contract
  // fallbacks, then the static per-op entries, then the vector kernel.
  if (!simd_available()) return {KernelMode::kBlocked, "isa"};
  if (contract_fallback_hit(op, m, k, n)) return {KernelMode::kReference, "contract"};
  switch (op) {
    case KernelOp::kTranspose:
      // Pure data movement: the blocked tiles already run at load/store
      // port speed; a shuffle-based vector transpose is a follow-on.
      return {KernelMode::kBlocked, "no-simd-transpose"};
    case KernelOp::kMatmul:
    case KernelOp::kMatmulTransposeLhs:
    case KernelOp::kMatmulTransposeRhs:
    case KernelOp::kAdd:
    case KernelOp::kMul:
    case KernelOp::kColumnSums:
      // n is the lane axis for every op (see KernelOp): with fewer
      // elements than one vector register there is nothing to win, so
      // the blocked tier serves — it is bit-identical, so this is a
      // speed decision, not a contract one.
      if (n < 8) return {KernelMode::kBlocked, "narrow-n"};
      return {KernelMode::kSimd, "vector"};
  }
  return {KernelMode::kBlocked, "isa"};
}

}  // namespace vf::backend
