#include "tensor/workspace.h"

#include "tensor/kernels.h"
#include "util/common.h"

namespace vf {

void Workspace::ensure_vns(std::int64_t num_vns) {
  check(num_vns >= 0, "workspace VN count must be non-negative");
  if (static_cast<std::int64_t>(vns_.size()) < num_vns)
    vns_.resize(static_cast<std::size_t>(num_vns));
}

void Workspace::audit(const Slot& s) const {
  const std::size_t cap = s.t.buffer_capacity();
  if (cap != s.audited_capacity) {
    // Capacity only ever moves on (re)allocation; charge one per change.
    allocs_.fetch_add(1, std::memory_order_relaxed);
    s.audited_capacity = cap;
  }
}

Tensor& Workspace::acquire(std::int32_t vn, std::int32_t tag) {
  check_index(vn, num_vns(), "workspace virtual node");
  Slot& s = vns_[static_cast<std::size_t>(vn)][tag];
  audit(s);
  if (!TensorConfig::workspace_reuse()) {
    // Allocate-per-use baseline: drop the buffer so the caller's
    // ensure_shape pays a fresh heap allocation, like the pre-workspace
    // code did for every intermediate.
    s.t = Tensor();
    s.audited_capacity = 0;
  }
  return s.t;
}

Tensor& Workspace::acquire(std::int32_t vn, std::int32_t tag,
                           std::initializer_list<std::int64_t> shape) {
  Tensor& t = acquire(vn, tag);
  t.ensure_shape(shape);
  return t;
}

std::int64_t Workspace::heap_allocs() const {
  for (const auto& slots : vns_)
    for (const auto& kv : slots) audit(kv.second);
  return allocs_;
}

void Workspace::clear() {
  vns_.clear();
  allocs_ = 0;
}

}  // namespace vf
