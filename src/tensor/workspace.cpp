#include "tensor/workspace.h"

#ifndef NDEBUG
#include <functional>
#include <thread>
#endif

#include "tensor/kernels.h"
#include "util/common.h"

namespace vf {

void Workspace::ensure_vns(std::int64_t num_vns) {
  check(num_vns >= 0, "workspace VN count must be non-negative");
  if (static_cast<std::int64_t>(vns_.size()) < num_vns) {
    vns_.resize(static_cast<std::size_t>(num_vns));
    owners_.resize(static_cast<std::size_t>(num_vns));
  }
}

void Workspace::shrink_vns(std::int64_t num_vns) {
  check(num_vns >= 0, "workspace VN count must be non-negative");
  if (static_cast<std::int64_t>(vns_.size()) > num_vns) {
    // Destroying the maps drops every (vn, tag) slot — and with it the
    // tensor buffers — of the evicted virtual nodes. The cumulative
    // allocation audit is history, not occupancy; it stays put.
    vns_.resize(static_cast<std::size_t>(num_vns));
    owners_.resize(static_cast<std::size_t>(num_vns));
  }
}

void Workspace::audit(const Slot& s) const {
  const std::size_t cap = s.t.buffer_capacity();
  if (cap != s.audited_capacity) {
    // Capacity only ever moves on (re)allocation; charge one per change.
    allocs_.fetch_add(1, std::memory_order_relaxed);
    s.audited_capacity = cap;
  }
}

#ifndef NDEBUG
namespace {
/// Nonzero 32-bit tag for the calling thread (folded hash of its id).
/// A tag collision between two live threads would mask a violation, never
/// invent one — acceptable odds for a debug tripwire.
std::uint64_t thread_tag32() {
  static thread_local const std::uint64_t tag = [] {
    const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
    const auto folded = static_cast<std::uint32_t>(h ^ (h >> 17) ^ (h >> 31));
    return static_cast<std::uint64_t>(folded == 0 ? 1U : folded);
  }();
  return tag;
}
}  // namespace

void Workspace::assert_vn_owner(std::int32_t vn) {
  const std::uint64_t gen =
      generation_.load(std::memory_order_acquire) & 0xffffffffULL;
  const std::uint64_t me = thread_tag32();
  std::atomic<std::uint64_t>& word = owners_[static_cast<std::size_t>(vn)].word;
  std::uint64_t cur = word.load(std::memory_order_acquire);
  for (;;) {
    if ((cur >> 32) == gen) {
      // The VN is claimed in this region; only its owner may touch it.
      check((cur & 0xffffffffULL) == me,
            "workspace confinement violated: virtual node " + std::to_string(vn) +
                " acquired by a second thread within one region (slots assume "
                "one worker per VN; see Workspace docs)");
      return;
    }
    // Unclaimed this region: claim it. A lost CAS means another thread
    // claimed concurrently — loop back and the ownership check above
    // reports the violation.
    if (word.compare_exchange_weak(cur, (gen << 32) | me,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return;
    }
  }
}
#endif

Tensor& Workspace::acquire(std::int32_t vn, std::int32_t tag) {
  check_index(vn, num_vns(), "workspace virtual node");
#ifndef NDEBUG
  // Ownership check first: a violating thread throws before it can touch
  // (and race on) the slot's non-atomic state.
  assert_vn_owner(vn);
#endif
  Slot& s = vns_[static_cast<std::size_t>(vn)][tag];
  audit(s);
  if (!TensorConfig::workspace_reuse()) {
    // Allocate-per-use baseline: drop the buffer so the caller's
    // ensure_shape pays a fresh heap allocation, like the pre-workspace
    // code did for every intermediate.
    s.t = Tensor();
    s.audited_capacity = 0;
  }
  return s.t;
}

Tensor& Workspace::acquire(std::int32_t vn, std::int32_t tag,
                           std::initializer_list<std::int64_t> shape) {
  Tensor& t = acquire(vn, tag);
  t.ensure_shape(shape);
  return t;
}

std::int64_t Workspace::heap_allocs() const {
  for (const auto& slots : vns_)
    for (const auto& kv : slots) audit(kv.second);
  return allocs_;
}

void Workspace::clear() {
  vns_.clear();
  owners_.clear();
  allocs_ = 0;
}

}  // namespace vf
