#include "tensor/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tensor/backend.h"
#include "tensor/kernels_blocked.h"
#include "tensor/kernels_simd.h"

namespace vf {

namespace {

/// Rejects a bad environment value the way the bench flag parser rejects
/// a bad flag (bench/common/bench_util.h): a one-line stderr diagnosis
/// and a clean exit 2 — never a silent fall-through to the default, and
/// never an uncaught throw out of a static initializer (which would bury
/// the message under terminate() stack noise).
[[noreturn]] void env_usage_error(const std::string& msg) {
  std::fprintf(stderr, "virtualflow: %s\n", msg.c_str());
  std::exit(2);
}

KernelMode mode_from_env() {
  const char* env = std::getenv("VF_KERNELS");
  if (env == nullptr) return KernelMode::kBlocked;
  const std::string v(env);
  if (v == "reference") return KernelMode::kReference;
  if (v == "blocked" || v.empty()) return KernelMode::kBlocked;
  if (v == "simd") return KernelMode::kSimd;
  env_usage_error("VF_KERNELS must be 'reference', 'blocked', or 'simd', got: '" +
                  v + "'");
}

bool reuse_from_env() {
  const char* env = std::getenv("VF_WORKSPACE_REUSE");
  if (env == nullptr) return true;
  const std::string v(env);
  if (v == "0") return false;
  if (v == "1" || v.empty()) return true;
  env_usage_error("VF_WORKSPACE_REUSE must be '0' or '1', got: '" + v + "'");
}

std::atomic<KernelMode>& mode_flag() {
  static std::atomic<KernelMode> flag{mode_from_env()};
  return flag;
}

std::atomic<bool>& reuse_flag() {
  static std::atomic<bool> flag{reuse_from_env()};
  return flag;
}

}  // namespace

const char* kernel_mode_name(KernelMode mode) {
  switch (mode) {
    case KernelMode::kReference: return "reference";
    case KernelMode::kBlocked: return "blocked";
    case KernelMode::kSimd: return "simd";
  }
  return "?";
}

KernelMode TensorConfig::kernel_mode() {
  return mode_flag().load(std::memory_order_relaxed);
}
void TensorConfig::set_kernel_mode(KernelMode mode) {
  mode_flag().store(mode, std::memory_order_relaxed);
}
bool TensorConfig::workspace_reuse() {
  return reuse_flag().load(std::memory_order_relaxed);
}
void TensorConfig::set_workspace_reuse(bool reuse) {
  reuse_flag().store(reuse, std::memory_order_relaxed);
}
void TensorConfig::reload_from_env() {
  mode_flag().store(mode_from_env(), std::memory_order_relaxed);
  reuse_flag().store(reuse_from_env(), std::memory_order_relaxed);
}

namespace kernels {

namespace {

// ------------------------------------------------------------- reference
//
// These are the original Tensor loops, verbatim: they define the
// accumulation order the blocked and simd versions must reproduce bit
// for bit.

void matmul_reference(const float* a, const float* b, float* out,
                      std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
  // i-k-j loop order keeps the inner loop contiguous in both rhs and out.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* o_row = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0F) continue;
      const float* b_row = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void matmul_tl_reference(const float* a, const float* b, float* out,
                         std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0F) continue;
      float* o_row = out + i * n;
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void matmul_tr_reference(const float* a, const float* b, float* out,
                         std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out[i * n + j] = acc;
    }
  }
}

void transpose_reference(const float* in, float* out, std::int64_t rows,
                         std::int64_t cols) {
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j) out[j * rows + i] = in[i * cols + j];
}

// The scalar elementwise/column-sum loops serve BOTH the reference and
// blocked tiers (there is nothing to tile); only simd differs.

void add_scalar(const float* a, const float* b, float* out, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) out[i] = a[i] + b[i];
}

void mul_scalar(const float* a, const float* b, float* out, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) out[i] = a[i] * b[i];
}

void column_sums_scalar(const float* in, float* out, std::int64_t rows,
                        std::int64_t cols) {
  for (std::int64_t j = 0; j < cols; ++j) out[j] = 0.0F;
  // Single row-major pass; per column the accumulation runs over rows in
  // ascending order.
  const float* p = in;
  for (std::int64_t i = 0; i < rows; ++i, p += cols)
    for (std::int64_t j = 0; j < cols; ++j) out[j] += p[j];
}

/// Resolves the tier that actually serves this call: kSimd consults the
/// backend factory per shape (ISA probe, contract fallbacks, per-op
/// entries — see backend.h); the other modes are themselves.
KernelMode resolve(backend::KernelOp op, std::int64_t m, std::int64_t k,
                   std::int64_t n, KernelMode mode) {
  if (mode != KernelMode::kSimd) return mode;
  return backend::BackendFactory::instance().select(op, m, k, n).tier;
}

}  // namespace

// The blocked implementations live in kernels_blocked.cpp (compiled -O3)
// and the vector implementations in kernels_simd.cpp (the one TU built
// with -mavx2; see CMakeLists). Dispatch is the only coupling.

void matmul(const float* a, const float* b, float* out, std::int64_t m,
            std::int64_t k, std::int64_t n, KernelMode mode) {
  switch (resolve(backend::KernelOp::kMatmul, m, k, n, mode)) {
    case KernelMode::kSimd: detail::matmul_simd(a, b, out, m, k, n); return;
    case KernelMode::kBlocked: detail::matmul_blocked(a, b, out, m, k, n); return;
    case KernelMode::kReference: break;
  }
  matmul_reference(a, b, out, m, k, n);
}

void matmul_transpose_lhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode) {
  switch (resolve(backend::KernelOp::kMatmulTransposeLhs, m, k, n, mode)) {
    case KernelMode::kSimd: detail::matmul_tl_simd(a, b, out, m, k, n); return;
    case KernelMode::kBlocked: detail::matmul_tl_blocked(a, b, out, m, k, n); return;
    case KernelMode::kReference: break;
  }
  matmul_tl_reference(a, b, out, m, k, n);
}

void matmul_transpose_rhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode) {
  switch (resolve(backend::KernelOp::kMatmulTransposeRhs, m, k, n, mode)) {
    case KernelMode::kSimd: detail::matmul_tr_simd(a, b, out, m, k, n); return;
    case KernelMode::kBlocked: detail::matmul_tr_blocked(a, b, out, m, k, n); return;
    case KernelMode::kReference: break;
  }
  matmul_tr_reference(a, b, out, m, k, n);
}

void transpose(const float* in, float* out, std::int64_t rows,
               std::int64_t cols, KernelMode mode) {
  switch (resolve(backend::KernelOp::kTranspose, rows, cols, cols, mode)) {
    case KernelMode::kSimd:  // factory never selects it today; keep total
    case KernelMode::kBlocked: detail::transpose_blocked(in, out, rows, cols); return;
    case KernelMode::kReference: break;
  }
  transpose_reference(in, out, rows, cols);
}

void add(const float* a, const float* b, float* out, std::int64_t count,
         KernelMode mode) {
  if (resolve(backend::KernelOp::kAdd, 0, 0, count, mode) == KernelMode::kSimd) {
    detail::add_simd(a, b, out, count);
    return;
  }
  add_scalar(a, b, out, count);
}

void mul(const float* a, const float* b, float* out, std::int64_t count,
         KernelMode mode) {
  if (resolve(backend::KernelOp::kMul, 0, 0, count, mode) == KernelMode::kSimd) {
    detail::mul_simd(a, b, out, count);
    return;
  }
  mul_scalar(a, b, out, count);
}

void column_sums(const float* in, float* out, std::int64_t rows,
                 std::int64_t cols, KernelMode mode) {
  if (resolve(backend::KernelOp::kColumnSums, rows, 0, cols, mode) ==
      KernelMode::kSimd) {
    detail::column_sums_simd(in, out, rows, cols);
    return;
  }
  column_sums_scalar(in, out, rows, cols);
}

}  // namespace kernels

}  // namespace vf
