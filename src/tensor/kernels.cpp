#include "tensor/kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "tensor/kernels_blocked.h"
#include "util/common.h"

namespace vf {

namespace {

KernelMode mode_from_env() {
  const char* env = std::getenv("VF_KERNELS");
  if (env == nullptr) return KernelMode::kBlocked;
  const std::string v(env);
  if (v == "reference") return KernelMode::kReference;
  if (v == "blocked" || v.empty()) return KernelMode::kBlocked;
  throw VfError("VF_KERNELS must be 'reference' or 'blocked', got: " + v);
}

bool reuse_from_env() {
  const char* env = std::getenv("VF_WORKSPACE_REUSE");
  if (env == nullptr) return true;
  const std::string v(env);
  if (v == "0") return false;
  if (v == "1" || v.empty()) return true;
  throw VfError("VF_WORKSPACE_REUSE must be '0' or '1', got: " + v);
}

std::atomic<KernelMode>& mode_flag() {
  static std::atomic<KernelMode> flag{mode_from_env()};
  return flag;
}

std::atomic<bool>& reuse_flag() {
  static std::atomic<bool> flag{reuse_from_env()};
  return flag;
}

}  // namespace

const char* kernel_mode_name(KernelMode mode) {
  return mode == KernelMode::kReference ? "reference" : "blocked";
}

KernelMode TensorConfig::kernel_mode() {
  return mode_flag().load(std::memory_order_relaxed);
}
void TensorConfig::set_kernel_mode(KernelMode mode) {
  mode_flag().store(mode, std::memory_order_relaxed);
}
bool TensorConfig::workspace_reuse() {
  return reuse_flag().load(std::memory_order_relaxed);
}
void TensorConfig::set_workspace_reuse(bool reuse) {
  reuse_flag().store(reuse, std::memory_order_relaxed);
}

namespace kernels {

namespace {

// ------------------------------------------------------------- reference
//
// These are the original Tensor loops, verbatim: they define the
// accumulation order the blocked versions must reproduce bit for bit.

void matmul_reference(const float* a, const float* b, float* out,
                      std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
  // i-k-j loop order keeps the inner loop contiguous in both rhs and out.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* o_row = out + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a_row[kk];
      if (av == 0.0F) continue;
      const float* b_row = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void matmul_tl_reference(const float* a, const float* b, float* out,
                         std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* a_row = a + kk * m;
    const float* b_row = b + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0F) continue;
      float* o_row = out + i * n;
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += av * b_row[j];
    }
  }
}

void matmul_tr_reference(const float* a, const float* b, float* out,
                         std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out[i * n + j] = acc;
    }
  }
}

void transpose_reference(const float* in, float* out, std::int64_t rows,
                         std::int64_t cols) {
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j) out[j * rows + i] = in[i * cols + j];
}

}  // namespace

// The blocked implementations live in kernels_blocked.cpp (compiled -O3;
// see CMakeLists). Dispatch is the only coupling.

void matmul(const float* a, const float* b, float* out, std::int64_t m,
            std::int64_t k, std::int64_t n, KernelMode mode) {
  if (mode == KernelMode::kBlocked) {
    detail::matmul_blocked(a, b, out, m, k, n);
  } else {
    matmul_reference(a, b, out, m, k, n);
  }
}

void matmul_transpose_lhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode) {
  if (mode == KernelMode::kBlocked) {
    detail::matmul_tl_blocked(a, b, out, m, k, n);
  } else {
    matmul_tl_reference(a, b, out, m, k, n);
  }
}

void matmul_transpose_rhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode) {
  if (mode == KernelMode::kBlocked) {
    detail::matmul_tr_blocked(a, b, out, m, k, n);
  } else {
    matmul_tr_reference(a, b, out, m, k, n);
  }
}

void transpose(const float* in, float* out, std::int64_t rows,
               std::int64_t cols, KernelMode mode) {
  if (mode == KernelMode::kBlocked) {
    detail::transpose_blocked(in, out, rows, cols);
  } else {
    transpose_reference(in, out, rows, cols);
  }
}

}  // namespace kernels

}  // namespace vf
