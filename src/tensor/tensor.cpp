#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tensor/kernels.h"
#include "util/common.h"

namespace vf {

namespace {

std::atomic<std::int64_t> g_tensor_allocs{0};

/// Records one tensor heap-buffer allocation (growth). Relaxed: the
/// counter is a diagnostic total, not a synchronization point.
inline void note_alloc() { g_tensor_allocs.fetch_add(1, std::memory_order_relaxed); }

std::int64_t shape_product(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    check(d >= 0, "tensor dimensions must be non-negative");
    n *= d;
  }
  return n;
}

std::int64_t shape_product(std::span<const std::int64_t> shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    check(d >= 0, "tensor dimensions must be non-negative");
    n *= d;
  }
  return n;
}

/// _into ops fully overwrite `out`, so aliasing an input would corrupt the
/// computation silently; catch it loudly instead.
void check_no_alias(const Tensor& out, const Tensor& in, const char* op) {
  check(out.data().data() != in.data().data() || out.data().empty(),
        std::string(op) + ": out must not alias an input tensor");
}

}  // namespace

std::int64_t tensor_alloc_count() {
  return g_tensor_allocs.load(std::memory_order_relaxed);
}

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  check(shape_.size() <= 4, "tensor rank must be <= 4");
  const auto n = static_cast<std::size_t>(shape_product(shape_));
  if (n > 0) note_alloc();
  data_.assign(n, 0.0F);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), data_(other.data_) {
  if (!data_.empty()) note_alloc();
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  // vector copy-assignment recycles the existing buffer when it is large
  // enough; only a genuine growth counts as an allocation.
  if (other.data_.size() > data_.capacity()) note_alloc();
  shape_ = other.shape_;
  data_ = other.data_;
  return *this;
}

Tensor Tensor::zeros(std::initializer_list<std::int64_t> shape) {
  return Tensor(std::vector<std::int64_t>(shape));
}

Tensor Tensor::full(std::initializer_list<std::int64_t> shape, float value) {
  Tensor t{std::vector<std::int64_t>(shape)};
  t.fill(value);
  return t;
}

Tensor Tensor::from_values(std::vector<std::int64_t> shape, std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  check(static_cast<std::int64_t>(values.size()) == shape_product(t.shape_),
        "from_values: value count does not match shape");
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, CounterRng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(0.0F, stddev);
  return t;
}

Tensor& Tensor::ensure_shape(std::span<const std::int64_t> shape) {
  check(shape.size() <= 4, "tensor rank must be <= 4");
  const auto n = static_cast<std::size_t>(shape_product(shape));
  if (n > data_.capacity()) note_alloc();
  shape_.assign(shape.begin(), shape.end());
  data_.resize(n);
  return *this;
}

Tensor& Tensor::ensure_shape(std::initializer_list<std::int64_t> shape) {
  return ensure_shape(std::span<const std::int64_t>(shape.begin(), shape.size()));
}

std::int64_t Tensor::dim(std::int64_t i) const {
  check_index(i, rank(), "tensor dim");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
  check_index(i, size(), "tensor element");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  check_index(i, size(), "tensor element");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  check(rank() == 2, "rank-2 accessor on non-matrix tensor");
  check_index(r, rows(), "row");
  check_index(c, cols(), "col");
  return data_[static_cast<std::size_t>(r * cols() + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

std::int64_t Tensor::rows() const {
  check(rank() == 2, "rows() requires a rank-2 tensor");
  return shape_[0];
}

std::int64_t Tensor::cols() const {
  check(rank() == 2, "cols() requires a rank-2 tensor");
  return shape_[1];
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  check(a.shape() == b.shape(),
        std::string(op) + ": shape mismatch " + a.shape_str() + " vs " + b.shape_str());
}

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float a, const Tensor& x) {
  check_same_shape(*this, x, "axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
  return *this;
}

Tensor& Tensor::add_scalar_(float s) {
  for (float& v : data_) v += s;
  return *this;
}

Tensor Tensor::add(const Tensor& other) const { return Tensor(*this).add_(other); }
Tensor Tensor::sub(const Tensor& other) const { return Tensor(*this).sub_(other); }
Tensor Tensor::mul(const Tensor& other) const { return Tensor(*this).mul_(other); }
Tensor Tensor::scaled(float s) const { return Tensor(*this).scale_(s); }

void Tensor::add_into(const Tensor& other, Tensor& out) const {
  check_same_shape(*this, other, "add_into");
  check_no_alias(out, *this, "add_into");
  check_no_alias(out, other, "add_into");
  out.ensure_shape(shape_);
  kernels::add(data_.data(), other.data_.data(), out.data_.data(), size(),
               TensorConfig::kernel_mode());
}

void Tensor::mul_into(const Tensor& other, Tensor& out) const {
  check_same_shape(*this, other, "mul_into");
  check_no_alias(out, *this, "mul_into");
  check_no_alias(out, other, "mul_into");
  out.ensure_shape(shape_);
  kernels::mul(data_.data(), other.data_.data(), out.data_.data(), size(),
               TensorConfig::kernel_mode());
}

void Tensor::matmul_into(const Tensor& rhs, Tensor& out) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul requires rank-2 tensors");
  check(cols() == rhs.rows(), "matmul: inner dimensions disagree (" + shape_str() + " @ " +
                                  rhs.shape_str() + ")");
  check_no_alias(out, *this, "matmul_into");
  check_no_alias(out, rhs, "matmul_into");
  const std::int64_t m = rows(), k = cols(), n = rhs.cols();
  out.ensure_shape({m, n});
  kernels::matmul(data_.data(), rhs.data_.data(), out.data_.data(), m, k, n,
                  TensorConfig::kernel_mode());
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  Tensor out;
  matmul_into(rhs, out);
  return out;
}

void Tensor::matmul_transpose_lhs_into(const Tensor& rhs, Tensor& out) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul_transpose_lhs requires rank-2 tensors");
  check(rows() == rhs.rows(), "matmul_transpose_lhs: row counts disagree");
  check_no_alias(out, *this, "matmul_transpose_lhs_into");
  check_no_alias(out, rhs, "matmul_transpose_lhs_into");
  const std::int64_t k = rows(), m = cols(), n = rhs.cols();
  out.ensure_shape({m, n});
  kernels::matmul_transpose_lhs(data_.data(), rhs.data_.data(), out.data_.data(), m,
                                k, n, TensorConfig::kernel_mode());
}

Tensor Tensor::matmul_transpose_lhs(const Tensor& rhs) const {
  Tensor out;
  matmul_transpose_lhs_into(rhs, out);
  return out;
}

void Tensor::matmul_transpose_rhs_into(const Tensor& rhs, Tensor& out) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul_transpose_rhs requires rank-2 tensors");
  check(cols() == rhs.cols(), "matmul_transpose_rhs: column counts disagree");
  check_no_alias(out, *this, "matmul_transpose_rhs_into");
  check_no_alias(out, rhs, "matmul_transpose_rhs_into");
  const std::int64_t m = rows(), k = cols(), n = rhs.rows();
  out.ensure_shape({m, n});
  kernels::matmul_transpose_rhs(data_.data(), rhs.data_.data(), out.data_.data(), m,
                                k, n, TensorConfig::kernel_mode());
}

Tensor Tensor::matmul_transpose_rhs(const Tensor& rhs) const {
  Tensor out;
  matmul_transpose_rhs_into(rhs, out);
  return out;
}

void Tensor::transpose_into(Tensor& out) const {
  check(rank() == 2, "transpose_into requires a rank-2 tensor");
  check_no_alias(out, *this, "transpose_into");
  out.ensure_shape({cols(), rows()});
  kernels::transpose(data_.data(), out.data_.data(), rows(), cols(),
                     TensorConfig::kernel_mode());
}

Tensor Tensor::transposed() const {
  Tensor out;
  transpose_into(out);
  return out;
}

float Tensor::sum() const {
  float s = 0.0F;
  for (float v : data_) s += v;
  return s;
}

float Tensor::mean() const {
  check(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0F;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::squared_norm() const {
  float s = 0.0F;
  for (float v : data_) s += v * v;
  return s;
}

void Tensor::column_sums_into(Tensor& out) const {
  check(rank() == 2, "column_sums requires a rank-2 tensor");
  check_no_alias(out, *this, "column_sums_into");
  const std::int64_t r = rows(), c = cols();
  out.ensure_shape({c});
  // Per column the accumulation runs over rows in ascending order in
  // every kernel tier, exactly as the nested at() loops did.
  kernels::column_sums(data_.data(), out.data_.data(), r, c,
                       TensorConfig::kernel_mode());
}

Tensor Tensor::column_sums() const {
  Tensor out;
  column_sums_into(out);
  return out;
}

std::vector<std::int64_t> Tensor::row_argmax() const {
  std::vector<std::int64_t> out;
  row_argmax_into(out);
  return out;
}

void Tensor::row_argmax_into(std::vector<std::int64_t>& out) const {
  check(rank() == 2, "row_argmax requires a rank-2 tensor");
  const std::int64_t r = rows(), c = cols();
  check(c > 0 || r == 0, "row_argmax requires at least one column");
  out.resize(static_cast<std::size_t>(r));
  const float* p = data_.data();
  for (std::int64_t i = 0; i < r; ++i, p += c) {
    std::int64_t best = 0;
    float best_v = p[0];
    for (std::int64_t j = 1; j < c; ++j) {
      if (p[j] > best_v) {
        best_v = p[j];
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
}

Tensor Tensor::slice_rows(std::int64_t start_row, std::int64_t count) const {
  check(rank() == 2, "slice_rows requires a rank-2 tensor");
  check(start_row >= 0 && count >= 0 && start_row + count <= rows(),
        "slice_rows out of range");
  Tensor out({count, cols()});
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(start_row * cols()),
              static_cast<std::ptrdiff_t>(count * cols()), out.data_.begin());
  return out;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  check_same_shape(*this, other, "max_abs_diff");
  float m = 0.0F;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

}  // namespace vf
