#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace vf {

namespace {
std::int64_t shape_product(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    check(d >= 0, "tensor dimensions must be non-negative");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape)) {
  check(shape_.size() <= 4, "tensor rank must be <= 4");
  data_.assign(static_cast<std::size_t>(shape_product(shape_)), 0.0F);
}

Tensor Tensor::zeros(std::initializer_list<std::int64_t> shape) {
  return Tensor(std::vector<std::int64_t>(shape));
}

Tensor Tensor::full(std::initializer_list<std::int64_t> shape, float value) {
  Tensor t{std::vector<std::int64_t>(shape)};
  t.fill(value);
  return t;
}

Tensor Tensor::from_values(std::vector<std::int64_t> shape, std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  check(static_cast<std::int64_t>(values.size()) == shape_product(t.shape_),
        "from_values: value count does not match shape");
  t.data_ = std::move(values);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, CounterRng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(0.0F, stddev);
  return t;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  check_index(i, rank(), "tensor dim");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
  check_index(i, size(), "tensor element");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  check_index(i, size(), "tensor element");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  check(rank() == 2, "rank-2 accessor on non-matrix tensor");
  check_index(r, rows(), "row");
  check_index(c, cols(), "col");
  return data_[static_cast<std::size_t>(r * cols() + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

std::int64_t Tensor::rows() const {
  check(rank() == 2, "rows() requires a rank-2 tensor");
  return shape_[0];
}

std::int64_t Tensor::cols() const {
  check(rank() == 2, "cols() requires a rank-2 tensor");
  return shape_[1];
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  check(a.shape() == b.shape(),
        std::string(op) + ": shape mismatch " + a.shape_str() + " vs " + b.shape_str());
}

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(*this, other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(*this, other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(*this, other, "mul_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::axpy_(float a, const Tensor& x) {
  check_same_shape(*this, x, "axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * x.data_[i];
  return *this;
}

Tensor& Tensor::add_scalar_(float s) {
  for (float& v : data_) v += s;
  return *this;
}

Tensor Tensor::add(const Tensor& other) const { return Tensor(*this).add_(other); }
Tensor Tensor::sub(const Tensor& other) const { return Tensor(*this).sub_(other); }
Tensor Tensor::mul(const Tensor& other) const { return Tensor(*this).mul_(other); }
Tensor Tensor::scaled(float s) const { return Tensor(*this).scale_(s); }

Tensor Tensor::matmul(const Tensor& rhs) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul requires rank-2 tensors");
  check(cols() == rhs.rows(), "matmul: inner dimensions disagree (" + shape_str() + " @ " +
                                  rhs.shape_str() + ")");
  const std::int64_t m = rows(), k = cols(), n = rhs.cols();
  Tensor out({m, n});
  // i-k-j loop order keeps the inner loop contiguous in both rhs and out.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = &data_[static_cast<std::size_t>(i * k)];
    float* o_row = &out.data_[static_cast<std::size_t>(i * n)];
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float a = a_row[kk];
      if (a == 0.0F) continue;
      const float* b_row = &rhs.data_[static_cast<std::size_t>(kk * n)];
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Tensor Tensor::matmul_transpose_lhs(const Tensor& rhs) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul_transpose_lhs requires rank-2 tensors");
  check(rows() == rhs.rows(), "matmul_transpose_lhs: row counts disagree");
  const std::int64_t k = rows(), m = cols(), n = rhs.cols();
  Tensor out({m, n});
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* a_row = &data_[static_cast<std::size_t>(kk * m)];
    const float* b_row = &rhs.data()[static_cast<std::size_t>(kk * n)];
    for (std::int64_t i = 0; i < m; ++i) {
      const float a = a_row[i];
      if (a == 0.0F) continue;
      float* o_row = &out.data_[static_cast<std::size_t>(i * n)];
      for (std::int64_t j = 0; j < n; ++j) o_row[j] += a * b_row[j];
    }
  }
  return out;
}

Tensor Tensor::matmul_transpose_rhs(const Tensor& rhs) const {
  check(rank() == 2 && rhs.rank() == 2, "matmul_transpose_rhs requires rank-2 tensors");
  check(cols() == rhs.cols(), "matmul_transpose_rhs: column counts disagree");
  const std::int64_t m = rows(), k = cols(), n = rhs.rows();
  Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    const float* a_row = &data_[static_cast<std::size_t>(i * k)];
    for (std::int64_t j = 0; j < n; ++j) {
      const float* b_row = &rhs.data()[static_cast<std::size_t>(j * k)];
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out.data_[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
  return out;
}

Tensor Tensor::transposed() const {
  check(rank() == 2, "transposed requires a rank-2 tensor");
  Tensor out({cols(), rows()});
  for (std::int64_t i = 0; i < rows(); ++i)
    for (std::int64_t j = 0; j < cols(); ++j) out.at(j, i) = at(i, j);
  return out;
}

float Tensor::sum() const {
  float s = 0.0F;
  for (float v : data_) s += v;
  return s;
}

float Tensor::mean() const {
  check(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0F;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::squared_norm() const {
  float s = 0.0F;
  for (float v : data_) s += v * v;
  return s;
}

Tensor Tensor::column_sums() const {
  check(rank() == 2, "column_sums requires a rank-2 tensor");
  Tensor out({cols()});
  for (std::int64_t i = 0; i < rows(); ++i)
    for (std::int64_t j = 0; j < cols(); ++j) out.at(j) += at(i, j);
  return out;
}

std::vector<std::int64_t> Tensor::row_argmax() const {
  check(rank() == 2, "row_argmax requires a rank-2 tensor");
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows()));
  for (std::int64_t i = 0; i < rows(); ++i) {
    std::int64_t best = 0;
    float best_v = at(i, 0);
    for (std::int64_t j = 1; j < cols(); ++j) {
      if (at(i, j) > best_v) {
        best_v = at(i, j);
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

Tensor Tensor::slice_rows(std::int64_t start_row, std::int64_t count) const {
  check(rank() == 2, "slice_rows requires a rank-2 tensor");
  check(start_row >= 0 && count >= 0 && start_row + count <= rows(),
        "slice_rows out of range");
  Tensor out({count, cols()});
  std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(start_row * cols()),
              static_cast<std::ptrdiff_t>(count * cols()), out.data_.begin());
  return out;
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  check_same_shape(*this, other, "max_abs_diff");
  float m = 0.0F;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Tensor::shape_str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  s += "]";
  return s;
}

}  // namespace vf
