// SIMD kernel implementations — the vector tier of tensor/kernels.h.
//
// This is the only translation unit the build compiles with a vector ISA
// (-mavx2 on x86-64; see the per-TU flags in CMakeLists.txt), which is
// what keeps the rest of the library runnable on any host: AVX2
// instructions exist only behind entry points the backend factory guards
// with its runtime cpuid probe.
//
// Determinism scheme (the whole trick): a vector lane is always ONE
// output element, never a slice of one. The j axis — output columns for
// the matmul family and column_sums, the element index for add/mul — is
// the lane axis, because its elements' accumulation chains are mutually
// independent; the k chain is never split across lanes or reordered, so
// each out[i, j] is built by the same ascending-k multiply-then-add
// chain the reference kernels perform, just eight elements at a time. No horizontal reduction ever
// combines lanes, and the build forbids FMA contraction for this TU
// (-mno-fma -ffp-contract=off): a fused multiply-add rounds once where
// the reference rounds twice, which would change bits. The result is
// bit-identity with the reference tier on all finite inputs at ANY
// vector width — the lane count only changes how many independent chains
// advance per instruction, never the order within a chain. A backend
// that cannot keep this discipline (e.g. a lane-split dot product with a
// reduction tree) must register its shapes in the factory's contract-
// fallback registry instead of weakening the contract (backend.h).
//
// The matmul core keeps a 2-row x 32-column block of out in eight ymm
// accumulators across each k tile, streaming b row by row — with mul+add
// on separate ports this saturates the FP units on AVX2 hosts at about
// twice the blocked tier's SSE-width ceiling. The k loop is tiled so the
// streamed [kc x n] panel of b stays L1-resident while every output row
// sweeps it (without this, long-k shapes like the backward-pass dW GEMM
// re-stream a multi-hundred-KB operand from L2 per row pair and the
// kernel goes bandwidth-bound). Between tiles the accumulators round-trip
// through out[] — a float store/reload is value-exact, so the per-element
// chain is STILL the one ascending-k mul-then-add sequence at any tile
// size. The transpose-operand variants (tl/tr) transpose the transposed
// operand into per-thread scratch and reuse the core, exactly like the
// blocked tier.
#include "tensor/kernels_simd.h"

#include <algorithm>
#include <vector>

#include "tensor/kernels_blocked.h"

#if defined(VF_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace vf::kernels::detail {

#if defined(VF_SIMD_AVX2)

namespace {

/// Reusable per-thread transpose scratch for the tl/tr mappings (same
/// pattern as the blocked tier: kernel-internal, invisible to the
/// workspace audit, stable after warm-up).
std::vector<float>& simd_scratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

/// out[i0..i0+1, jj..jj+31] over one k tile. `b_col` points at the
/// tile's b + jj (stride n). Eight accumulators live in registers for
/// the tile; `first` seeds them with +0 (tile 0) or the partial sums
/// already in out — per element the chain is ascending-k mul-then-add
/// from +0 either way: the reference chain.
inline void panel_2x32(const float* __restrict a0, const float* __restrict a1,
                       const float* __restrict b_col, float* __restrict o0,
                       float* __restrict o1, std::int64_t k, std::int64_t n,
                       bool first) {
  __m256 c00, c01, c02, c03, c10, c11, c12, c13;
  if (first) {
    c00 = c01 = c02 = c03 = _mm256_setzero_ps();
    c10 = c11 = c12 = c13 = _mm256_setzero_ps();
  } else {
    c00 = _mm256_loadu_ps(o0);
    c01 = _mm256_loadu_ps(o0 + 8);
    c02 = _mm256_loadu_ps(o0 + 16);
    c03 = _mm256_loadu_ps(o0 + 24);
    c10 = _mm256_loadu_ps(o1);
    c11 = _mm256_loadu_ps(o1 + 8);
    c12 = _mm256_loadu_ps(o1 + 16);
    c13 = _mm256_loadu_ps(o1 + 24);
  }
  for (std::int64_t kk = 0; kk < k; ++kk, b_col += n) {
    const __m256 b0 = _mm256_loadu_ps(b_col);
    const __m256 b1 = _mm256_loadu_ps(b_col + 8);
    const __m256 b2 = _mm256_loadu_ps(b_col + 16);
    const __m256 b3 = _mm256_loadu_ps(b_col + 24);
    const __m256 av0 = _mm256_set1_ps(a0[kk]);
    c00 = _mm256_add_ps(c00, _mm256_mul_ps(av0, b0));
    c01 = _mm256_add_ps(c01, _mm256_mul_ps(av0, b1));
    c02 = _mm256_add_ps(c02, _mm256_mul_ps(av0, b2));
    c03 = _mm256_add_ps(c03, _mm256_mul_ps(av0, b3));
    const __m256 av1 = _mm256_set1_ps(a1[kk]);
    c10 = _mm256_add_ps(c10, _mm256_mul_ps(av1, b0));
    c11 = _mm256_add_ps(c11, _mm256_mul_ps(av1, b1));
    c12 = _mm256_add_ps(c12, _mm256_mul_ps(av1, b2));
    c13 = _mm256_add_ps(c13, _mm256_mul_ps(av1, b3));
  }
  _mm256_storeu_ps(o0, c00);
  _mm256_storeu_ps(o0 + 8, c01);
  _mm256_storeu_ps(o0 + 16, c02);
  _mm256_storeu_ps(o0 + 24, c03);
  _mm256_storeu_ps(o1, c10);
  _mm256_storeu_ps(o1 + 8, c11);
  _mm256_storeu_ps(o1 + 16, c12);
  _mm256_storeu_ps(o1 + 24, c13);
}

/// Single-row variant of panel_2x32 for odd m tails.
inline void panel_1x32(const float* __restrict a_row,
                       const float* __restrict b_col, float* __restrict o,
                       std::int64_t k, std::int64_t n, bool first) {
  __m256 c0, c1, c2, c3;
  if (first) {
    c0 = c1 = c2 = c3 = _mm256_setzero_ps();
  } else {
    c0 = _mm256_loadu_ps(o);
    c1 = _mm256_loadu_ps(o + 8);
    c2 = _mm256_loadu_ps(o + 16);
    c3 = _mm256_loadu_ps(o + 24);
  }
  for (std::int64_t kk = 0; kk < k; ++kk, b_col += n) {
    const __m256 av = _mm256_set1_ps(a_row[kk]);
    c0 = _mm256_add_ps(c0, _mm256_mul_ps(av, _mm256_loadu_ps(b_col)));
    c1 = _mm256_add_ps(c1, _mm256_mul_ps(av, _mm256_loadu_ps(b_col + 8)));
    c2 = _mm256_add_ps(c2, _mm256_mul_ps(av, _mm256_loadu_ps(b_col + 16)));
    c3 = _mm256_add_ps(c3, _mm256_mul_ps(av, _mm256_loadu_ps(b_col + 24)));
  }
  _mm256_storeu_ps(o, c0);
  _mm256_storeu_ps(o + 8, c1);
  _mm256_storeu_ps(o + 16, c2);
  _mm256_storeu_ps(o + 24, c3);
}

/// One-vector (8-column) strip for n tails past the 32-wide panels.
inline void panel_1x8(const float* __restrict a_row,
                      const float* __restrict b_col, float* __restrict o,
                      std::int64_t k, std::int64_t n, bool first) {
  __m256 c = first ? _mm256_setzero_ps() : _mm256_loadu_ps(o);
  for (std::int64_t kk = 0; kk < k; ++kk, b_col += n) {
    const __m256 av = _mm256_set1_ps(a_row[kk]);
    c = _mm256_add_ps(c, _mm256_mul_ps(av, _mm256_loadu_ps(b_col)));
  }
  _mm256_storeu_ps(o, c);
}

/// out = a[m x k] @ b[k x n], vector lanes over the n axis, scalar tail
/// for the last n % 8 columns (same per-element chain either way). The
/// k loop is tiled to keep the streamed b panel L1-resident; tile 0
/// seeds the accumulators with +0, later tiles resume from out[].
void matmul_core_avx2(const float* __restrict a, const float* __restrict b,
                      float* __restrict out, std::int64_t m, std::int64_t k,
                      std::int64_t n) {
  if (k == 0) {
    for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
    return;
  }
  // ~24 KiB of b per tile leaves L1 room for the out rows in flight; the
  // floor keeps tiles from degenerating on very wide n (where one b row
  // is most of the budget and tiling buys nothing anyway).
  constexpr std::int64_t kPanelBudgetFloats = 6 * 1024;
  const std::int64_t kc_max =
      n > 0 ? std::max<std::int64_t>(16, kPanelBudgetFloats / n) : k;
  for (std::int64_t k0 = 0; k0 < k; k0 += kc_max) {
    const std::int64_t kc = std::min(kc_max, k - k0);
    const bool first = k0 == 0;
    const float* __restrict bt = b + k0 * n;
    std::int64_t jj = 0;
    for (; jj + 32 <= n; jj += 32) {
      std::int64_t i = 0;
      for (; i + 2 <= m; i += 2)
        panel_2x32(a + i * k + k0, a + (i + 1) * k + k0, bt + jj,
                   out + i * n + jj, out + (i + 1) * n + jj, kc, n, first);
      if (i < m)
        panel_1x32(a + i * k + k0, bt + jj, out + i * n + jj, kc, n, first);
    }
    for (; jj + 8 <= n; jj += 8)
      for (std::int64_t i = 0; i < m; ++i)
        panel_1x8(a + i * k + k0, bt + jj, out + i * n + jj, kc, n, first);
    if (jj < n) {
      for (std::int64_t i = 0; i < m; ++i) {
        const float* __restrict a_row = a + i * k + k0;
        for (std::int64_t j = jj; j < n; ++j) {
          float acc = first ? 0.0F : out[i * n + j];
          for (std::int64_t kk = 0; kk < kc; ++kk)
            acc += a_row[kk] * bt[kk * n + j];
          out[i * n + j] = acc;
        }
      }
    }
  }
}

}  // namespace

void matmul_simd(const float* a, const float* b, float* out, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  matmul_core_avx2(a, b, out, m, k, n);
}

void matmul_tl_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  // out = a^T @ b with a stored [k x m]. The practical tl shapes are the
  // backward-pass dW GEMMs: m and n are layer widths (small), k is the
  // batch (large) — so out fits in L1 and the win is streaming a and b
  // exactly once in their storage order. That is the reference tl loop
  // itself (kk outer, i, j inner), vectorized over the j lanes: element
  // (i, j) accumulates a[kk, i] * b[kk, j] for kk ascending, in place in
  // out — the identical chain (the reference's zero-lhs skip is
  // value-invisible: a +/-0 term can never flip a live accumulator's
  // bits, see kernels.h).
  if (m * n <= 8192) {
    for (std::int64_t i = 0; i < m * n; ++i) out[i] = 0.0F;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* __restrict a_row = a + kk * m;
      const float* __restrict b_row = b + kk * n;
      // The b row is hoisted into registers per 32-column panel and
      // reused by every output row — the i loop is then pure
      // broadcast/mul/add/store with no reloads and no inner branch.
      std::int64_t j0 = 0;
      for (; j0 + 32 <= n; j0 += 32) {
        const __m256 b0 = _mm256_loadu_ps(b_row + j0);
        const __m256 b1 = _mm256_loadu_ps(b_row + j0 + 8);
        const __m256 b2 = _mm256_loadu_ps(b_row + j0 + 16);
        const __m256 b3 = _mm256_loadu_ps(b_row + j0 + 24);
        for (std::int64_t i = 0; i < m; ++i) {
          const __m256 av = _mm256_set1_ps(a_row[i]);
          float* __restrict o = out + i * n + j0;
          _mm256_storeu_ps(
              o, _mm256_add_ps(_mm256_loadu_ps(o), _mm256_mul_ps(av, b0)));
          _mm256_storeu_ps(o + 8, _mm256_add_ps(_mm256_loadu_ps(o + 8),
                                                _mm256_mul_ps(av, b1)));
          _mm256_storeu_ps(o + 16, _mm256_add_ps(_mm256_loadu_ps(o + 16),
                                                 _mm256_mul_ps(av, b2)));
          _mm256_storeu_ps(o + 24, _mm256_add_ps(_mm256_loadu_ps(o + 24),
                                                 _mm256_mul_ps(av, b3)));
        }
      }
      for (; j0 + 8 <= n; j0 += 8) {
        const __m256 b0 = _mm256_loadu_ps(b_row + j0);
        for (std::int64_t i = 0; i < m; ++i) {
          float* __restrict o = out + i * n + j0;
          _mm256_storeu_ps(
              o, _mm256_add_ps(_mm256_loadu_ps(o),
                               _mm256_mul_ps(_mm256_set1_ps(a_row[i]), b0)));
        }
      }
      if (j0 < n) {
        for (std::int64_t i = 0; i < m; ++i) {
          const float av = a_row[i];
          float* __restrict o_row = out + i * n;
          for (std::int64_t j = j0; j < n; ++j) o_row[j] += av * b_row[j];
        }
      }
    }
    return;
  }
  // Large-out fallback: cycling a beyond-L1 out per kk row would thrash,
  // so transpose a into row-major scratch and run the tiled core.
  std::vector<float>& scratch = simd_scratch();
  scratch.resize(static_cast<std::size_t>(m * k));
  transpose_blocked(a, scratch.data(), k, m);
  matmul_core_avx2(scratch.data(), b, out, m, k, n);
}

void matmul_tr_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  // out = a @ b^T with b stored [n x k]: transpose b into row-major
  // [k x n] scratch and run the core — same terms, same order.
  std::vector<float>& scratch = simd_scratch();
  scratch.resize(static_cast<std::size_t>(k * n));
  transpose_blocked(b, scratch.data(), n, k);
  matmul_core_avx2(a, scratch.data(), out, m, k, n);
}

void add_simd(const float* a, const float* b, float* out, std::int64_t count) {
  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8)
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < count; ++i) out[i] = a[i] + b[i];
}

void mul_simd(const float* a, const float* b, float* out, std::int64_t count) {
  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8)
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  for (; i < count; ++i) out[i] = a[i] * b[i];
}

void column_sums_simd(const float* in, float* out, std::int64_t rows,
                      std::int64_t cols) {
  // Lanes over columns; per column the chain runs over rows in ascending
  // order, exactly as the reference single-pass loop does.
  std::int64_t j = 0;
  for (; j + 8 <= cols; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    const float* p = in + j;
    for (std::int64_t i = 0; i < rows; ++i, p += cols)
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(p));
    _mm256_storeu_ps(out + j, acc);
  }
  for (; j < cols; ++j) {
    float s = 0.0F;
    const float* p = in + j;
    for (std::int64_t i = 0; i < rows; ++i, p += cols) s += *p;
    out[j] = s;
  }
}

#else  // !VF_SIMD_AVX2

// Portable stubs: same symbol set on every platform, delegating to the
// blocked tier. The factory reports simd_compiled() == false here, so
// these are never selected — they exist so link and call sites need no
// preprocessor guards. The `#if defined(__ARM_NEON)` slot below is where
// real NEON kernels land (same lane discipline: a lane is one output
// element, the k chain never splits); until then aarch64 builds take the
// delegation path too.
#if defined(__ARM_NEON) || defined(__aarch64__)
// NEON tier: intentionally still the delegation stub — see docs/kernels.md
// ("Adding a backend") for the checklist a real implementation follows.
#endif

void matmul_simd(const float* a, const float* b, float* out, std::int64_t m,
                 std::int64_t k, std::int64_t n) {
  matmul_blocked(a, b, out, m, k, n);
}

void matmul_tl_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  matmul_tl_blocked(a, b, out, m, k, n);
}

void matmul_tr_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n) {
  matmul_tr_blocked(a, b, out, m, k, n);
}

void add_simd(const float* a, const float* b, float* out, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) out[i] = a[i] + b[i];
}

void mul_simd(const float* a, const float* b, float* out, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) out[i] = a[i] * b[i];
}

void column_sums_simd(const float* in, float* out, std::int64_t rows,
                      std::int64_t cols) {
  for (std::int64_t j = 0; j < cols; ++j) out[j] = 0.0F;
  const float* p = in;
  for (std::int64_t i = 0; i < rows; ++i, p += cols)
    for (std::int64_t j = 0; j < cols; ++j) out[j] += p[j];
}

#endif  // VF_SIMD_AVX2

}  // namespace vf::kernels::detail
