// Dense-kernel layer: the matmul/transpose/elementwise inner loops behind
// Tensor.
//
// VirtualFlow replays many virtual nodes serially on each physical device,
// so per-slice compute time is multiplied by the VN:device ratio — these
// loops ARE the system's throughput. Three implementations are provided
// for the hot kernels and are selectable at runtime:
//
//   * kReference — the original order-stable loops, kept as the executable
//     specification.
//   * kBlocked   — cache-blocked (i/j-tiled), unroll-by-4 versions.
//   * kSimd      — explicitly vectorized (AVX2; NEON slot stubbed) cores,
//     selected per shape through the backend factory in tensor/backend.h,
//     which probes the CPU at runtime and falls back to blocked whenever
//     the ISA or the shape cannot keep the contract below.
//
// Bit-exactness contract: all modes produce bit-identical outputs on all
// finite inputs. The blocked kernels tile ONLY over the i/j (output)
// dimensions and never reorder, split, or vectorize the k-accumulation of
// a single output element: each out[i, j] is built by the exact
// float-addition chain the reference performs, term by term in ascending
// k. The SIMD kernels keep the same discipline with vector registers: a
// lane is always one output element, the k chain stays sequential per
// lane (multiply then add, two roundings — never FMA-contracted), and no
// horizontal reduction ever combines lanes. Two implementation liberties
// are taken, neither observable on finite data:
//
//   * The reference's zero-lhs skip is dropped (branchless inner loops).
//     A skipped term contributes a*b = +/-0, and adding a signed zero to
//     a running sum that started at +0 can never change its bits — the
//     modes diverge only in the 0 * inf / 0 * NaN corner.
//   * The transpose-variant kernels transpose the transposed operand into
//     scratch first and reuse the one core; the multiplication terms and
//     their order per output element are unchanged.
//
// This is what lets the entire training/serving bit-reproducibility story
// (mapping invariance, worker invariance) survive a kernel swap, and it is
// what tests/tensor/test_kernels.cpp and tests/tensor/test_backend.cpp
// assert shape by shape. The full tier handbook is docs/kernels.md.
#pragma once

#include <cstdint>

namespace vf {

/// Which implementation the tensor ops dispatch to.
enum class KernelMode : std::uint8_t {
  kReference,  ///< original order-stable loops (executable specification)
  kBlocked,    ///< i/j-tiled, unroll-by-4; bit-identical to kReference
  kSimd,       ///< vectorized per-shape via backend factory; same bits
};

/// Short name for logs/benches: "reference", "blocked", or "simd".
const char* kernel_mode_name(KernelMode mode);

/// Process-wide tensor-runtime configuration. Defaults come from the
/// environment on first use and can be overridden programmatically (the
/// benches A/B all knobs):
///
///   VF_KERNELS=reference|blocked|simd  kernel implementation (default
///                                      blocked; simd falls back to
///                                      blocked per shape when the CPU or
///                                      the shape cannot carry it)
///   VF_WORKSPACE_REUSE=0|1             workspace buffer reuse (default 1;
///                                      0 is the allocate-per-use baseline)
///
/// Unknown values are rejected loudly: a one-line diagnosis on stderr and
/// exit code 2, the same usage-error policy as the bench flag parser — a
/// typo must never silently run the default configuration. Neither knob
/// can change a single bit of any computed result — kernels are
/// bit-identical by contract and workspaces only recycle storage — so
/// flipping them mid-run is safe; they trade speed only.
struct TensorConfig {
  static KernelMode kernel_mode();
  static void set_kernel_mode(KernelMode mode);
  static bool workspace_reuse();
  static void set_workspace_reuse(bool reuse);
  /// Re-reads both knobs from the environment (they are otherwise latched
  /// on first use). Test hook; applies the same reject-loudly policy.
  static void reload_from_env();
};

namespace kernels {

// All kernels take row-major dense buffers. Output buffers must not alias
// inputs. Shapes follow the Tensor-level ops:
//
//   matmul:               out[m x n]  = a[m x k] @ b[k x n]
//   matmul_transpose_lhs: out[m x n]  = a[k x m]^T @ b[k x n]
//   matmul_transpose_rhs: out[m x n]  = a[m x k] @ b[n x k]^T
//   transpose:            out[c x r]  = in[r x c]^T
//   add / mul:            out[i]      = a[i] + b[i] / a[i] * b[i]
//   column_sums:          out[n]      = sum over rows of in[r x n]
//
// Each overwrites `out` entirely (no accumulation into prior contents).

void matmul(const float* a, const float* b, float* out, std::int64_t m,
            std::int64_t k, std::int64_t n, KernelMode mode);

void matmul_transpose_lhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode);

void matmul_transpose_rhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode);

void transpose(const float* in, float* out, std::int64_t rows,
               std::int64_t cols, KernelMode mode);

// Elementwise / reduction kernels. reference and blocked share one scalar
// loop (there is nothing to tile); simd vectorizes the independent lanes
// (elements / columns) and keeps every per-element chain in order.

void add(const float* a, const float* b, float* out, std::int64_t count,
         KernelMode mode);

void mul(const float* a, const float* b, float* out, std::int64_t count,
         KernelMode mode);

void column_sums(const float* in, float* out, std::int64_t rows,
                 std::int64_t cols, KernelMode mode);

}  // namespace kernels

}  // namespace vf
