// Dense-kernel layer: the matmul/transpose inner loops behind Tensor.
//
// VirtualFlow replays many virtual nodes serially on each physical device,
// so per-slice compute time is multiplied by the VN:device ratio — these
// loops ARE the system's throughput. Two implementations are provided for
// every kernel and are selectable at runtime:
//
//   * kReference — the original order-stable loops, kept as the executable
//     specification.
//   * kBlocked   — cache-blocked (i/j-tiled), unroll-by-4 versions.
//
// Bit-exactness contract: both modes produce bit-identical outputs on all
// finite inputs. The blocked kernels tile ONLY over the i/j (output)
// dimensions and never reorder, split, or vectorize the k-accumulation of
// a single output element: each out[i, j] is built by the exact
// float-addition chain the reference performs, term by term in ascending
// k. Two implementation liberties are taken, neither observable on finite
// data:
//
//   * The reference's zero-lhs skip is dropped (branchless inner loops).
//     A skipped term contributes a*b = +/-0, and adding a signed zero to
//     a running sum that started at +0 can never change its bits — the
//     modes diverge only in the 0 * inf / 0 * NaN corner.
//   * The transpose-variant kernels transpose the transposed operand into
//     scratch first and reuse the one blocked core; the multiplication
//     terms and their order per output element are unchanged.
//
// This is what lets the entire training/serving bit-reproducibility story
// (mapping invariance, worker invariance) survive a kernel swap, and it is
// what tests/tensor/test_kernels.cpp asserts shape by shape.
#pragma once

#include <cstdint>

namespace vf {

/// Which implementation the tensor ops dispatch to.
enum class KernelMode : std::uint8_t {
  kReference,  ///< original order-stable loops (executable specification)
  kBlocked,    ///< i/j-tiled, unroll-by-4; bit-identical to kReference
};

/// Short name for logs/benches: "reference" or "blocked".
const char* kernel_mode_name(KernelMode mode);

/// Process-wide tensor-runtime configuration. Defaults come from the
/// environment on first use and can be overridden programmatically (the
/// benches A/B both knobs):
///
///   VF_KERNELS=reference|blocked   kernel implementation (default blocked)
///   VF_WORKSPACE_REUSE=0|1         workspace buffer reuse (default 1; 0 is
///                                  the allocate-per-use baseline)
///
/// Neither knob can change a single bit of any computed result — kernels
/// are bit-identical by contract and workspaces only recycle storage — so
/// flipping them mid-run is safe; they trade speed only.
struct TensorConfig {
  static KernelMode kernel_mode();
  static void set_kernel_mode(KernelMode mode);
  static bool workspace_reuse();
  static void set_workspace_reuse(bool reuse);
};

namespace kernels {

// All kernels take row-major dense buffers. Output buffers must not alias
// inputs. Shapes follow the Tensor-level ops:
//
//   matmul:               out[m x n]  = a[m x k] @ b[k x n]
//   matmul_transpose_lhs: out[m x n]  = a[k x m]^T @ b[k x n]
//   matmul_transpose_rhs: out[m x n]  = a[m x k] @ b[n x k]^T
//   transpose:            out[c x r]  = in[r x c]^T
//
// Each overwrites `out` entirely (no accumulation into prior contents).

void matmul(const float* a, const float* b, float* out, std::int64_t m,
            std::int64_t k, std::int64_t n, KernelMode mode);

void matmul_transpose_lhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode);

void matmul_transpose_rhs(const float* a, const float* b, float* out,
                          std::int64_t m, std::int64_t k, std::int64_t n,
                          KernelMode mode);

void transpose(const float* in, float* out, std::int64_t rows,
               std::int64_t cols, KernelMode mode);

}  // namespace kernels

}  // namespace vf
