// Dense float tensor used by the neural-network substrate.
//
// VirtualFlow's convergence experiments run real SGD, so this is a real
// (if deliberately small) tensor library: row-major dense storage, the
// elementwise/matmul/reduction ops the nn layers need, and nothing more.
// Determinism matters more than speed here — every op is sequential and
// order-stable so that training trajectories are bit-reproducible.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace vf {

/// Row-major dense float tensor with up to rank-4 shapes (rank 1 and 2 are
/// what the layers use; higher ranks exist for completeness).
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);

  /// Convenience rank-1 / rank-2 constructors.
  static Tensor zeros(std::initializer_list<std::int64_t> shape);
  static Tensor full(std::initializer_list<std::int64_t> shape, float value);
  static Tensor from_values(std::vector<std::int64_t> shape, std::vector<float> values);

  /// Gaussian init with the given stddev (mean 0), deterministic in `rng`.
  static Tensor randn(std::vector<std::int64_t> shape, CounterRng& rng, float stddev = 1.0F);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  /// Rank-2 accessors.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// Number of rows / columns for rank-2 tensors.
  std::int64_t rows() const;
  std::int64_t cols() const;

  // ---- In-place ops (return *this for chaining) ----
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);           // this += other
  Tensor& sub_(const Tensor& other);           // this -= other
  Tensor& mul_(const Tensor& other);           // elementwise this *= other
  Tensor& scale_(float s);                     // this *= s
  Tensor& axpy_(float a, const Tensor& x);     // this += a * x
  Tensor& add_scalar_(float s);                // this += s

  // ---- Out-of-place ops ----
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float s) const;

  /// Matrix multiply: (m x k) @ (k x n) -> (m x n). Both rank-2.
  Tensor matmul(const Tensor& rhs) const;
  /// this^T @ rhs for rank-2 tensors: (k x m)^T is (m x k).
  Tensor matmul_transpose_lhs(const Tensor& rhs) const;
  /// this @ rhs^T for rank-2 tensors.
  Tensor matmul_transpose_rhs(const Tensor& rhs) const;

  Tensor transposed() const;

  // ---- Reductions ----
  float sum() const;
  float mean() const;
  float abs_max() const;
  float squared_norm() const;
  /// Per-column sums of a rank-2 tensor -> rank-1 of length cols().
  Tensor column_sums() const;
  /// Row-wise argmax of a rank-2 tensor -> vector of column indices.
  std::vector<std::int64_t> row_argmax() const;

  /// Copies `count` rows starting at `start_row` into a new tensor.
  Tensor slice_rows(std::int64_t start_row, std::int64_t count) const;

  /// Exact equality (bitwise over all elements); used by reproducibility tests.
  bool equals(const Tensor& other) const;
  /// Max elementwise absolute difference.
  float max_abs_diff(const Tensor& other) const;

  std::string shape_str() const;

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// Checks two tensors share a shape; throws with a helpful message otherwise.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace vf
