// Dense float tensor used by the neural-network substrate.
//
// VirtualFlow's convergence experiments run real SGD, so this is a real
// (if deliberately small) tensor library: row-major dense storage, the
// elementwise/matmul/reduction ops the nn layers need, and nothing more.
// Determinism comes first — every op is sequential and order-stable so
// that training trajectories are bit-reproducible — but the hot-path ops
// (matmul family, transpose, elementwise add/mul, column_sums) dispatch
// to the kernel layer in tensor/kernels.h, whose blocked and simd tiers
// are bit-identical to the reference loops by construction (the simd
// tier resolves per shape through the backend factory in
// tensor/backend.h).
//
// Allocation discipline: the `_into` variants write into caller-owned
// tensors via ensure_shape(), which recycles the existing heap buffer
// whenever capacity allows. Every buffer growth is counted in a global
// allocation counter (tensor_alloc_count()) so tests can assert that a
// warmed-up training step performs zero tensor heap allocations.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace vf {

/// Total tensor heap-buffer allocations (growths) performed by this
/// process so far. Monotone; read it before/after a region to count the
/// allocations inside. Thread-safe (relaxed atomic).
std::int64_t tensor_alloc_count();

/// Row-major dense float tensor with up to rank-4 shapes (rank 1 and 2 are
/// what the layers use; higher ranks exist for completeness).
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Convenience rank-1 / rank-2 constructors.
  static Tensor zeros(std::initializer_list<std::int64_t> shape);
  static Tensor full(std::initializer_list<std::int64_t> shape, float value);
  static Tensor from_values(std::vector<std::int64_t> shape, std::vector<float> values);

  /// Gaussian init with the given stddev (mean 0), deterministic in `rng`.
  static Tensor randn(std::vector<std::int64_t> shape, CounterRng& rng, float stddev = 1.0F);

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  /// Heap-buffer capacity in floats (allocation-reuse introspection).
  std::size_t buffer_capacity() const { return data_.capacity(); }

  /// Reshapes to `shape`, reusing the existing heap buffer when capacity
  /// allows (the workspace-reuse fast path). Element contents are
  /// unspecified afterwards — callers overwrite. Never shrinks capacity.
  Tensor& ensure_shape(std::span<const std::int64_t> shape);
  Tensor& ensure_shape(std::initializer_list<std::int64_t> shape);

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  /// Rank-2 accessors.
  float& at(std::int64_t r, std::int64_t c);
  float at(std::int64_t r, std::int64_t c) const;

  /// Number of rows / columns for rank-2 tensors.
  std::int64_t rows() const;
  std::int64_t cols() const;

  // ---- In-place ops (return *this for chaining) ----
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);           // this += other
  Tensor& sub_(const Tensor& other);           // this -= other
  Tensor& mul_(const Tensor& other);           // elementwise this *= other
  Tensor& scale_(float s);                     // this *= s
  Tensor& axpy_(float a, const Tensor& x);     // this += a * x
  Tensor& add_scalar_(float s);                // this += s

  // ---- Out-of-place ops ----
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float s) const;

  /// Matrix multiply: (m x k) @ (k x n) -> (m x n). Both rank-2.
  Tensor matmul(const Tensor& rhs) const;
  /// this^T @ rhs for rank-2 tensors: (k x m)^T is (m x k).
  Tensor matmul_transpose_lhs(const Tensor& rhs) const;
  /// this @ rhs^T for rank-2 tensors.
  Tensor matmul_transpose_rhs(const Tensor& rhs) const;

  // ---- Out-parameter variants (allocation-free once `out` is warm) ----
  // `out` is reshaped with ensure_shape() and fully overwritten; it must
  // not alias this tensor or the operand.
  void matmul_into(const Tensor& rhs, Tensor& out) const;
  void matmul_transpose_lhs_into(const Tensor& rhs, Tensor& out) const;
  void matmul_transpose_rhs_into(const Tensor& rhs, Tensor& out) const;
  void add_into(const Tensor& other, Tensor& out) const;
  void mul_into(const Tensor& other, Tensor& out) const;
  void transpose_into(Tensor& out) const;
  void column_sums_into(Tensor& out) const;

  Tensor transposed() const;

  // ---- Reductions ----
  float sum() const;
  float mean() const;
  float abs_max() const;
  float squared_norm() const;
  /// Per-column sums of a rank-2 tensor -> rank-1 of length cols().
  Tensor column_sums() const;
  /// Row-wise argmax of a rank-2 tensor -> vector of column indices.
  std::vector<std::int64_t> row_argmax() const;
  /// row_argmax writing into a caller-owned vector (capacity reused across
  /// calls — the serving hot path's per-VN prediction scratch).
  void row_argmax_into(std::vector<std::int64_t>& out) const;

  /// Copies `count` rows starting at `start_row` into a new tensor.
  Tensor slice_rows(std::int64_t start_row, std::int64_t count) const;

  /// Exact equality (bitwise over all elements); used by reproducibility tests.
  bool equals(const Tensor& other) const;
  /// Max elementwise absolute difference.
  float max_abs_diff(const Tensor& other) const;

  std::string shape_str() const;

 private:
  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

/// Checks two tensors share a shape; throws with a helpful message otherwise.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace vf
