// vf::Workspace — a reusable tensor arena for the training/serving hot path.
//
// The engine replays each device's virtual nodes serially, and every pass
// needs the same set of intermediates (activations, loss gradients, weight-
// gradient temporaries, flattened gradient sums) with the same shapes step
// after step. Allocating them fresh each time dominated steady-state cost;
// the workspace instead hands out named slots whose tensors keep their heap
// buffers across steps.
//
// Keying: slots are addressed by (virtual-node id, tag). Keying by the
// *logical* VN id — not by device or worker — is what keeps the arena out
// of the bit-exactness story entirely: under any mapping and any pool
// worker count, the worker running device d touches exactly the slots of
// d's VNs and nobody else's, so there are no races and no scheduling-
// dependent buffer contents. (Two workers may concurrently create slots
// for *different* VNs; each VN's slot map is an independent object, so
// that is safe. A single VN is always driven by one worker at a time.)
//
// The A/B baseline: when TensorConfig::workspace_reuse() is false (env
// VF_WORKSPACE_REUSE=0), every acquisition drops the slot's buffer first,
// faithfully reproducing the allocate-per-intermediate behaviour the
// workspace replaced — bench_hotpath uses this as the "before" arm.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "tensor/tensor.h"

namespace vf {

class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(std::int64_t num_vns) { ensure_vns(num_vns); }

  // Movable (the engine is movable), not copyable: two workspaces sharing
  // a history would double-count the audit. The atomic counter needs the
  // moves spelled out.
  Workspace(Workspace&& other) noexcept
      : vns_(std::move(other.vns_)),
        allocs_(other.allocs_.load(std::memory_order_relaxed)) {}
  Workspace& operator=(Workspace&& other) noexcept {
    vns_ = std::move(other.vns_);
    allocs_.store(other.allocs_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Grows the per-VN slot table to at least `num_vns` entries. NOT
  /// thread-safe — call from single-threaded setup (engine construction /
  /// reconfiguration), never inside a parallel region.
  void ensure_vns(std::int64_t num_vns);

  std::int64_t num_vns() const { return static_cast<std::int64_t>(vns_.size()); }

  /// The reusable tensor in slot (vn, tag), created empty on first use.
  /// The caller reshapes (ensure_shape) and overwrites it; contents from
  /// the previous acquisition are stale, never meaningful.
  Tensor& acquire(std::int32_t vn, std::int32_t tag);

  /// acquire() + ensure_shape in one call, for fixed-shape scratch.
  Tensor& acquire(std::int32_t vn, std::int32_t tag,
                  std::initializer_list<std::int64_t> shape);

  /// Heap-buffer allocations observed across this workspace's slots so
  /// far (audited by capacity changes at acquisition time and on this
  /// call). After warm-up this must stop moving — the zero-allocation
  /// steady-state test asserts exactly that.
  std::int64_t heap_allocs() const;

  /// Drops every slot (buffers included).
  void clear();

 private:
  struct Slot {
    Tensor t;
    mutable std::size_t audited_capacity = 0;
  };

  /// Re-audits one slot's capacity, charging any growth since last look.
  void audit(const Slot& s) const;

  // One independent slot map per VN: concurrent first-use insertions for
  // different VNs touch different maps. std::map keeps node addresses
  // stable, so Tensor& references survive later insertions. The audit
  // total is atomic because workers acquiring *different* VNs' slots
  // charge it concurrently (relaxed: it is a diagnostic counter, read
  // from quiescent contexts only).
  std::vector<std::map<std::int32_t, Slot>> vns_;
  mutable std::atomic<std::int64_t> allocs_{0};
};

}  // namespace vf
