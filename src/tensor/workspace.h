// vf::Workspace — a reusable tensor arena for the training/serving hot path.
//
// The engine replays each device's virtual nodes serially, and every pass
// needs the same set of intermediates (activations, loss gradients, weight-
// gradient temporaries, flattened gradient sums) with the same shapes step
// after step. Allocating them fresh each time dominated steady-state cost;
// the workspace instead hands out named slots whose tensors keep their heap
// buffers across steps.
//
// Keying: slots are addressed by (virtual-node id, tag). Keying by the
// *logical* VN id — not by device or worker — is what keeps the arena out
// of the bit-exactness story entirely: under any mapping and any pool
// worker count, the worker running device d touches exactly the slots of
// d's VNs and nobody else's, so there are no races and no scheduling-
// dependent buffer contents. (Two workers may concurrently create slots
// for *different* VNs; each VN's slot map is an independent object, so
// that is safe. A single VN is always driven by one worker at a time.)
//
// The A/B baseline: when TensorConfig::workspace_reuse() is false (env
// VF_WORKSPACE_REUSE=0), every acquisition drops the slot's buffer first,
// faithfully reproducing the allocate-per-intermediate behaviour the
// workspace replaced — bench_hotpath uses this as the "before" arm.
//
// Confinement tripwire (debug builds): the one-worker-per-VN contract
// above is load-bearing but was previously unchecked — a future caller
// letting two pool workers drive the same VN would corrupt buffers
// silently. In builds without NDEBUG every acquisition verifies that the
// acquiring thread is the VN's sole owner within the current ownership
// region (begin_region() opens a new one; the engine calls it before
// every parallel section). The check costs one atomic op per acquisition
// and compiles out of release builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "tensor/tensor.h"

namespace vf {

class Workspace {
 public:
  Workspace() = default;
  explicit Workspace(std::int64_t num_vns) { ensure_vns(num_vns); }

  // Movable (the engine is movable), not copyable: two workspaces sharing
  // a history would double-count the audit. The atomic counter needs the
  // moves spelled out.
  Workspace(Workspace&& other) noexcept
      : vns_(std::move(other.vns_)),
        owners_(std::move(other.owners_)),
        generation_(other.generation_.load(std::memory_order_relaxed)),
        allocs_(other.allocs_.load(std::memory_order_relaxed)) {}
  Workspace& operator=(Workspace&& other) noexcept {
    vns_ = std::move(other.vns_);
    owners_ = std::move(other.owners_);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    allocs_.store(other.allocs_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Grows the per-VN slot table to at least `num_vns` entries. NOT
  /// thread-safe — call from single-threaded setup (engine construction /
  /// reconfiguration), never inside a parallel region.
  void ensure_vns(std::int64_t num_vns);

  /// Drops every slot (and its buffers) of VNs at or beyond `num_vns`.
  /// The engine calls this on reconfigure: when a new mapping has fewer
  /// virtual nodes, the departed VNs' slots must not outlive it — before
  /// this existed they pinned their buffers for the engine's lifetime.
  /// Same thread-safety contract as ensure_vns (setup only).
  void shrink_vns(std::int64_t num_vns);

  std::int64_t num_vns() const { return static_cast<std::int64_t>(vns_.size()); }

  /// Opens a new ownership region for the debug confinement check: the
  /// first thread to acquire a VN's slots after this call owns that VN
  /// until the next begin_region(). Callers bracket every parallel
  /// section with it (worker -> VN assignment may legitimately change
  /// between sections, never within one). Cheap enough to call always;
  /// the per-acquisition check compiles out of NDEBUG builds.
  void begin_region() { generation_.fetch_add(1, std::memory_order_acq_rel); }

  /// The reusable tensor in slot (vn, tag), created empty on first use.
  /// The caller reshapes (ensure_shape) and overwrites it; contents from
  /// the previous acquisition are stale, never meaningful.
  Tensor& acquire(std::int32_t vn, std::int32_t tag);

  /// acquire() + ensure_shape in one call, for fixed-shape scratch.
  Tensor& acquire(std::int32_t vn, std::int32_t tag,
                  std::initializer_list<std::int64_t> shape);

  /// Heap-buffer allocations observed across this workspace's slots so
  /// far (audited by capacity changes at acquisition time and on this
  /// call). After warm-up this must stop moving — the zero-allocation
  /// steady-state test asserts exactly that.
  std::int64_t heap_allocs() const;

  /// Drops every slot (buffers included).
  void clear();

 private:
  struct Slot {
    Tensor t;
    mutable std::size_t audited_capacity = 0;
  };

  /// Per-VN ownership word for the debug confinement check, packed as
  /// (region generation << 32) | 32-bit thread tag. One atomic so the
  /// claim race between two violating threads is itself data-race-free
  /// (the tripwire must not trip TSan). Movable wrapper because the slot
  /// table resizes during single-threaded setup.
  struct VnOwner {
    std::atomic<std::uint64_t> word{0};
    VnOwner() = default;
    VnOwner(VnOwner&& o) noexcept : word(o.word.load(std::memory_order_relaxed)) {}
    VnOwner& operator=(VnOwner&& o) noexcept {
      word.store(o.word.load(std::memory_order_relaxed), std::memory_order_relaxed);
      return *this;
    }
  };

  /// Re-audits one slot's capacity, charging any growth since last look.
  void audit(const Slot& s) const;

#ifndef NDEBUG
  /// Debug confinement check: throws VfError when a second thread touches
  /// `vn`'s slots within the current ownership region.
  void assert_vn_owner(std::int32_t vn);
#endif

  // One independent slot map per VN: concurrent first-use insertions for
  // different VNs touch different maps. std::map keeps node addresses
  // stable, so Tensor& references survive later insertions. The audit
  // total is atomic because workers acquiring *different* VNs' slots
  // charge it concurrently (relaxed: it is a diagnostic counter, read
  // from quiescent contexts only).
  std::vector<std::map<std::int32_t, Slot>> vns_;
  std::vector<VnOwner> owners_;
  // Region generations start at 1 so the zero-initialized owner words can
  // never look like a live claim.
  std::atomic<std::uint64_t> generation_{1};
  mutable std::atomic<std::int64_t> allocs_{0};
};

}  // namespace vf
