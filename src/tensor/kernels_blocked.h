// Internal: blocked kernel entry points (implementation in
// kernels_blocked.cpp, which the build compiles at -O3 — the kernel TU is
// the system's innermost loop). Public dispatch lives in kernels.h.
#pragma once

#include <cstdint>

namespace vf::kernels::detail {

void matmul_blocked(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n);
void matmul_tl_blocked(const float* a, const float* b, float* out, std::int64_t m,
                       std::int64_t k, std::int64_t n);
void matmul_tr_blocked(const float* a, const float* b, float* out, std::int64_t m,
                       std::int64_t k, std::int64_t n);
void transpose_blocked(const float* in, float* out, std::int64_t rows,
                       std::int64_t cols);

}  // namespace vf::kernels::detail
