// Internal: SIMD kernel entry points (implementation in kernels_simd.cpp,
// the only TU the build compiles with a vector ISA — -mavx2 on x86-64,
// isolated there so the rest of the library stays runnable on any host).
//
// These must only be invoked when the backend factory resolved the call
// to the SIMD tier (backend.h rule "vector"): the factory's runtime cpuid
// probe is what makes executing AVX2 instructions safe. On builds without
// a vector ISA the same symbols exist as delegation stubs to the blocked
// kernels, and BackendFactory::simd_compiled() reports false so the
// factory never selects them. Public dispatch lives in kernels.h.
#pragma once

#include <cstdint>

namespace vf::kernels::detail {

void matmul_simd(const float* a, const float* b, float* out, std::int64_t m,
                 std::int64_t k, std::int64_t n);
void matmul_tl_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n);
void matmul_tr_simd(const float* a, const float* b, float* out, std::int64_t m,
                    std::int64_t k, std::int64_t n);
void add_simd(const float* a, const float* b, float* out, std::int64_t count);
void mul_simd(const float* a, const float* b, float* out, std::int64_t count);
void column_sums_simd(const float* in, float* out, std::int64_t rows,
                      std::int64_t cols);

}  // namespace vf::kernels::detail
