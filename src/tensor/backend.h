// Runtime kernel-backend factory: decides, per op and per shape, which
// kernel tier actually serves a call when the configured mode asks for
// the SIMD tier (`VF_KERNELS=simd`).
//
// VirtualFlow decouples the model from the hardware it runs on; on a CPU
// host the kernel layer is that hardware, and this factory is the
// decoupling point: the rest of the system only ever names a *mode*
// (`TensorConfig::kernel_mode()`), while the factory probes what the CPU
// can actually do (cpuid via `__builtin_cpu_supports`) and resolves every
// (op, shape) to the fastest tier that can keep the repo's bit-exactness
// contract. Resolution is by a small registry of named rules, evaluated
// in a fixed order:
//
//   1. "isa"       — the SIMD tier was not compiled in, the CPU lacks the
//                    ISA, or a test force-disabled it: serve with blocked
//                    (bit-identical, the fastest scalar tier).
//   2. "contract"  — the (op, shape) is registered as unable to keep
//                    bit-identity under the SIMD implementation: serve
//                    with reference (the executable specification). The
//                    AVX2 backend never splits an accumulation chain —
//                    its vector lanes are independent output elements —
//                    so it registers nothing here; the registry exists so
//                    a backend that *does* split chains (a lane-tree dot
//                    kernel, say) can fall back per shape instead of
//                    weakening the contract for everyone.
//   3. static per-op entries — e.g. "narrow-n" (the vectorized axis is
//                    shorter than one vector register: nothing to win) or
//                    "no-simd-transpose" (pure data movement; the blocked
//                    tiles already saturate the load/store ports).
//   4. "vector"    — the SIMD kernel serves the call.
//
// The factory exposes the decision (`select()` returns tier + rule name)
// so bench_hotpath can print which tier actually served each shape and
// tests can assert the dispatch, not just the bits. See docs/kernels.md
// for the full tier handbook.
#pragma once

#include <cstdint>

#include "tensor/kernels.h"

namespace vf::backend {

/// Ops the factory dispatches. For every op, `n` in `select()` is the
/// extent of the vectorized axis (independent output lanes): the output
/// columns for the matmul family and column_sums, the element count for
/// the elementwise ops, the output columns for transpose.
enum class KernelOp : std::uint8_t {
  kMatmul,
  kMatmulTransposeLhs,
  kMatmulTransposeRhs,
  kTranspose,
  kAdd,
  kMul,
  kColumnSums,
};

/// Short op name for logs/benches ("matmul", "tl", "tr", "transpose",
/// "add", "mul", "column_sums").
const char* kernel_op_name(KernelOp op);

/// Raw CPU-feature probe (independent of what was compiled in or any
/// test override).
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 runtime cpuid probe
  bool neon = false;  ///< aarch64: baseline, compile-time
};

/// One dispatch decision: the tier that will serve, and the name of the
/// registry rule that decided it.
struct Dispatch {
  KernelMode tier;
  const char* rule;
};

/// Process-wide backend factory. All queries are lock-free and safe from
/// any thread; the registration/override hooks are test/setup APIs and
/// must not race in-flight kernels.
class BackendFactory {
 public:
  static BackendFactory& instance();

  /// True when this binary carries real vector kernels (the build gave
  /// kernels_simd.cpp a vector ISA). False on hosts/toolchains where the
  /// TU compiled as delegation stubs.
  static bool simd_compiled();
  /// Name of the compiled vector ISA: "avx2", "neon" (stub), or "none".
  static const char* simd_isa();

  /// Raw runtime probe of the host CPU.
  CpuFeatures cpu_features() const;

  /// True iff the SIMD tier can serve anything at all: vector kernels
  /// compiled in, the CPU reports the ISA, and no test override.
  bool simd_available() const;

  /// Test hook: make the factory behave as if the vector ISA were absent
  /// (every simd-mode call falls back to blocked under rule "isa").
  void set_simd_disabled(bool disabled);
  bool simd_disabled() const;

  /// Registers (op, shape) as unable to keep bit-identity under the SIMD
  /// implementation; `select()` then serves it with the reference tier
  /// under rule "contract". Bounded registry — throws VfError when full.
  void register_contract_fallback(KernelOp op, std::int64_t m, std::int64_t k,
                                  std::int64_t n);
  /// Drops every registered contract fallback (test hook).
  void clear_contract_fallbacks();
  std::size_t contract_fallback_count() const;

  /// Resolves the tier that will serve `op` at this shape when the
  /// configured kernel mode is kSimd. Shape extents follow the op (see
  /// KernelOp): gemm ops pass (m, k, n); transpose (rows, cols, cols);
  /// elementwise (0, 0, count); column_sums (rows, 0, cols).
  Dispatch select(KernelOp op, std::int64_t m, std::int64_t k,
                  std::int64_t n) const;

 private:
  BackendFactory();
};

/// RAII test guard: force-disables the SIMD tier for a scope and restores
/// the previous override on exit.
class ScopedSimdDisable {
 public:
  ScopedSimdDisable()
      : saved_(BackendFactory::instance().simd_disabled()) {
    BackendFactory::instance().set_simd_disabled(true);
  }
  ~ScopedSimdDisable() { BackendFactory::instance().set_simd_disabled(saved_); }
  ScopedSimdDisable(const ScopedSimdDisable&) = delete;
  ScopedSimdDisable& operator=(const ScopedSimdDisable&) = delete;

 private:
  bool saved_;
};

}  // namespace vf::backend
