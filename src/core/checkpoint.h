// Checkpoint file I/O.
//
// The restart-based baselines the paper compares against ([38], Gavel,
// Optimus, ...) persist jobs to disk between allocations; this module is
// that substrate. Format: a small versioned binary container holding the
// flat parameter vector, optimizer slots + counter, per-VN stateful-kernel
// tensors, and progress counters. Round-tripping a Checkpoint through a
// file is byte-exact, so a restored job continues on the identical
// trajectory (tested in tests/core/test_checkpoint.cpp).
#pragma once

#include <string>

#include "core/engine.h"

namespace vf {

/// Serializes `snapshot` to `path` (overwrites). Throws VfError on I/O
/// failure.
void save_checkpoint(const Checkpoint& snapshot, const std::string& path);

/// Reads a checkpoint previously written by save_checkpoint. Throws
/// VfError on missing file, bad magic, or truncation.
Checkpoint load_checkpoint(const std::string& path);

}  // namespace vf
