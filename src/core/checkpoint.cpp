#include "core/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/common.h"

namespace vf {

namespace {

constexpr std::uint64_t kMagic = 0x5646434B50543031ULL;  // "VFCKPT01"

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(bool(is), "checkpoint truncated while reading u64");
  return v;
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(bool(is), "checkpoint truncated while reading f64");
  return v;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.rank()));
  for (std::int64_t i = 0; i < t.rank(); ++i)
    write_u64(os, static_cast<std::uint64_t>(t.dim(i)));
  os.write(reinterpret_cast<const char*>(t.data().data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  const auto rank = static_cast<std::int64_t>(read_u64(is));
  check(rank >= 0 && rank <= 4, "checkpoint tensor has invalid rank");
  std::vector<std::int64_t> shape;
  for (std::int64_t i = 0; i < rank; ++i)
    shape.push_back(static_cast<std::int64_t>(read_u64(is)));
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data().data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  check(bool(is), "checkpoint truncated while reading tensor data");
  return t;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_u64(is);
  check(n < (1ULL << 20), "checkpoint string implausibly large");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  check(bool(is), "checkpoint truncated while reading string");
  return s;
}

}  // namespace

void save_checkpoint(const Checkpoint& snapshot, const std::string& path) {
  // Crash-safe save: write the full snapshot to a sibling temp file, then
  // atomically rename it over the destination. A save interrupted mid-write
  // leaves at most a stale ".tmp" beside an intact previous checkpoint —
  // the destination is never observable in a partial state.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    check(os.is_open(), "cannot open checkpoint file for writing: " + tmp);

    write_u64(os, kMagic);
    write_tensor(os, snapshot.parameters);
    write_u64(os, snapshot.optimizer_slots.size());
    for (const Tensor& t : snapshot.optimizer_slots) write_tensor(os, t);
    write_u64(os, static_cast<std::uint64_t>(snapshot.optimizer_counter));
    write_u64(os, snapshot.vn_states.size());
    for (const VnState& st : snapshot.vn_states) {
      const auto keys = st.keys();
      write_u64(os, keys.size());
      for (const std::string& k : keys) {
        write_string(os, k);
        write_tensor(os, st.get(k));
      }
    }
    write_u64(os, static_cast<std::uint64_t>(snapshot.step));
    write_f64(os, snapshot.sim_time_s);
    os.flush();
    check(bool(os), "checkpoint write failed: " + tmp);
  }
  check(std::rename(tmp.c_str(), path.c_str()) == 0,
        "cannot publish checkpoint (rename failed): " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.is_open(), "cannot open checkpoint file: " + path);
  check(read_u64(is) == kMagic, "not a VirtualFlow checkpoint: " + path);

  Checkpoint snap;
  snap.parameters = read_tensor(is);
  const auto n_slots = read_u64(is);
  check(n_slots < (1ULL << 20), "checkpoint slot count implausibly large");
  for (std::uint64_t i = 0; i < n_slots; ++i)
    snap.optimizer_slots.push_back(read_tensor(is));
  snap.optimizer_counter = static_cast<std::int64_t>(read_u64(is));
  const auto n_states = read_u64(is);
  check(n_states < (1ULL << 20), "checkpoint VN count implausibly large");
  for (std::uint64_t i = 0; i < n_states; ++i) {
    VnState st;
    const auto n_keys = read_u64(is);
    check(n_keys < (1ULL << 20), "checkpoint key count implausibly large");
    for (std::uint64_t k = 0; k < n_keys; ++k) {
      const std::string key = read_string(is);
      st.put(key, read_tensor(is));
    }
    snap.vn_states.push_back(std::move(st));
  }
  snap.step = static_cast<std::int64_t>(read_u64(is));
  snap.sim_time_s = read_f64(is);
  return snap;
}

}  // namespace vf
