// Virtual nodes and the VN -> device mapping (Figs 1 and 3 of the paper).
//
// The mapping is the ONLY place where hardware configuration lives. The
// model, the hyperparameters, and the data pipeline reference virtual
// nodes exclusively; changing the mapping (resize, heterogeneous split,
// different cluster) must not change training semantics. Invariants:
//   * every virtual node id in [0, V) is assigned to exactly one device;
//   * per-VN batch sizes are positive and sum to the global batch;
//   * VN ids, not device ids, determine which slice of the global batch a
//     VN processes (in ascending VN-id order).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/sharding.h"
#include "device/spec.h"

namespace vf {

/// One virtual node: a logical worker with a fixed share of each global
/// batch. Identity is the id; placement is the mapping's business.
struct VirtualNode {
  std::int32_t id = 0;
  std::int64_t batch_size = 0;
};

/// Assignment of virtual nodes to devices.
class VnMapping {
 public:
  /// Even mapping: `total_vns` equal VNs over `num_devices` devices, each
  /// VN processing global_batch / total_vns examples. VNs are distributed
  /// contiguously (device d gets a block of V/D VNs, with the first
  /// (V mod D) devices taking one extra).
  static VnMapping even(std::int64_t total_vns, std::int64_t num_devices,
                        std::int64_t global_batch);

  /// Fully general mapping: per_device[d] lists the batch sizes of the VNs
  /// placed on device d, in execution order. VN ids are assigned in
  /// (device, position) order: device 0's VNs first, then device 1's, ...
  static VnMapping uneven(const std::vector<std::vector<std::int64_t>>& per_device);

  /// Remaps existing virtual nodes onto a different device count, keeping
  /// VN ids and batch sizes (the elastic resize of §4.1). VNs are
  /// redistributed contiguously.
  VnMapping redistributed(std::int64_t new_num_devices) const;

  std::int64_t num_devices() const { return static_cast<std::int64_t>(device_vns_.size()); }
  std::int64_t total_vns() const { return static_cast<std::int64_t>(vn_batches_.size()); }
  std::int64_t global_batch() const;

  /// VN ids on device d, in execution order.
  const std::vector<std::int32_t>& device_vns(std::int64_t d) const;

  /// Batch size of VN `vn`.
  std::int64_t vn_batch(std::int32_t vn) const;

  /// Micro-batch sizes of the VNs on device d, in execution order.
  std::vector<std::int64_t> device_batches(std::int64_t d) const;

  /// Total examples processed by device d per step (its local batch).
  std::int64_t device_batch_total(std::int64_t d) const;

  /// Per-VN batch sizes in ascending VN-id order; the data pipeline's
  /// shares (see data/sharding.h).
  std::vector<std::int64_t> shares() const { return vn_batches_; }

  /// Batch slices per VN in ascending VN-id order.
  std::vector<BatchSlice> slices() const;

  /// Device index hosting VN `vn`.
  std::int64_t device_of(std::int32_t vn) const;

  /// Human-readable summary, e.g. "4 devices x 4 VN x 512".
  std::string describe() const;

 private:
  VnMapping() = default;
  void validate() const;

  std::vector<std::vector<std::int32_t>> device_vns_;  // device -> VN ids
  std::vector<std::int64_t> vn_batches_;               // VN id -> batch size
};

}  // namespace vf
