// VirtualFlowEngine: the paper's core execution loop (Fig 5).
//
// Each training step:
//   1. for every device (in parallel in real deployments; the simulated
//      step time is the max over devices), run its virtual nodes
//      sequentially: forward pass (+ input prefetch), backward pass,
//      aggregate the VN's gradients into the device's shared gradient
//      buffer;
//   2. synchronize gradients across devices with a *weighted* all-reduce
//      (§5.2) so that every example contributes equally no matter how the
//      batch was partitioned;
//   3. every device applies the same averaged gradient to its replica.
//
// Math is real (actual SGD on actual gradients); device/step timing comes
// from the analytic cost model and a virtual clock (DESIGN.md §4.1).
//
// Reduction-order contract: gradient contributions are combined in
// ascending virtual-node-id order. Together with VN-id-keyed data
// sharding, dropout, and batch-norm state, this makes the entire training
// trajectory a pure function of (model, hyperparameters, seed, total VNs)
// — bit-identical across any device mapping, which is the paper's
// reproducibility claim strengthened from ±0.5% to exact equality.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "comm/comm.h"
#include "core/mapping.h"
#include "data/batch.h"
#include "device/cost_model.h"
#include "device/memory_model.h"
#include "device/model_profile.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"
#include "obs/obs.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace vf {

/// Gradient reduction order (DESIGN.md §4, ablated by
/// bench_ablation_reduction).
enum class ReductionMode : std::uint8_t {
  /// Combine per-VN gradient sums in ascending VN-id order. Bit-exact
  /// under any VN -> device mapping (this library's default contract).
  kStrictVnOrder,
  /// Combine per-device partial sums in device order — what a naive
  /// hierarchical all-reduce does. Numerically correct but only
  /// approximately mapping-invariant (float addition is not associative).
  kHierarchical,
};

/// Engine configuration.
struct EngineConfig {
  std::uint64_t seed = 42;
  LinkSpec link;
  /// If false, skip the simulated-memory fit check (used by unit tests
  /// that run tiny models under mappings the real profile would OOM).
  bool enforce_memory = true;
  /// Seconds charged for a checkpoint-restart resize; used when
  /// `Resize::seamless` is false to model restart-based baselines [38].
  double restart_penalty_s = 45.0;
  ReductionMode reduction = ReductionMode::kStrictVnOrder;
  /// Host worker threads running the per-device step loop. 0 = serial
  /// (the reference path). Any value yields bit-identical results: each
  /// device writes only its own VNs' gradient sums and the reduction in
  /// sync_and_update is ordered by VN id, not by completion.
  std::int64_t num_threads = 0;
};

/// A point-in-time snapshot of everything a training job needs to resume:
/// model parameters, optimizer slots and counters, per-VN stateful-kernel
/// tensors, and progress counters. See core/checkpoint.h for file I/O.
struct Checkpoint {
  Tensor parameters;
  std::vector<Tensor> optimizer_slots;
  std::int64_t optimizer_counter = 0;
  std::vector<VnState> vn_states;
  std::int64_t step = 0;
  double sim_time_s = 0.0;
};

/// Telemetry for one training step.
struct StepStats {
  std::int64_t step = 0;
  double loss = 0.0;           ///< global-batch mean training loss
  double step_time_s = 0.0;    ///< simulated wall time of this step
  double sim_time_s = 0.0;     ///< simulated clock after this step
  double throughput = 0.0;     ///< examples per simulated second
  double comm_time_s = 0.0;    ///< all-reduce portion of step_time_s
  double max_device_mem = 0.0; ///< peak simulated memory over devices
};

/// One virtual node's share of a forward-only inference batch (the serving
/// path, src/serve/). `features` is a [count x feature_dim] matrix.
struct InferSlice {
  std::int32_t vn = 0;
  Tensor features;
  /// Autoregressive decode step: the forward math is unchanged (each row
  /// still produces a logits row), but the slice is PRICED with
  /// decode_pass_time_s — one token of compute per row against a full
  /// parameter read — instead of infer_pass_time_s. Set by the token
  /// streamer for every post-prefill slice of a stream.
  bool decode = false;
};

/// Simulated cost of one inference slice, priced as an independently
/// dispatched unit — what a continuous-batching scheduler needs to free
/// the slice's VN slot the moment *it* finishes, instead of waiting for
/// the whole batch's barrier. The pass time and the per-dispatch framework
/// overhead are split out so the scheduler can apply warm/cold pricing: a
/// slice dispatched onto an already-busy device pipelines behind the
/// running pass and amortizes the overhead away; a cold dispatch pays it
/// in full (cold_total_s() == slice_infer_time_s of the cost model).
struct SliceCost {
  std::int32_t vn = 0;
  std::int64_t device = 0;  ///< device hosting the VN under the current mapping
  double pass_s = 0.0;      ///< forward time of this slice alone on its device
  double overhead_s = 0.0;  ///< per-dispatch framework overhead (cold price)
  double comm_s = 0.0;      ///< this slice's logits return to the frontend

  double cold_total_s() const { return pass_s + overhead_s; }
};

/// Result of a forward-only pass over a set of inference slices.
struct InferStats {
  /// Predicted class per example, concatenated in slice order. Predictions
  /// are a pure function of (parameters, averaged VN state, inputs) — the
  /// VN -> device mapping and the host worker count cannot change a bit.
  std::vector<std::int64_t> predictions;
  /// Simulated time: barrier at the slowest participating device (its VN
  /// passes run sequentially, forward-only, no parameter update).
  double compute_s = 0.0;
  /// Simulated time to return each device's logits to the serving frontend
  /// (max over devices; independent links).
  double comm_s = 0.0;
  /// Per-slice costs aligned with the input slice order. compute_s/comm_s
  /// above price the slices co-scheduled as one batch (overhead amortized
  /// per device); each SliceCost prices its slice dispatched alone.
  std::vector<SliceCost> slice_costs;
};

/// Options controlling a resize (§4.1).
struct ResizeOptions {
  /// Migrate VN state (batch-norm moving stats) and optimizer slots via
  /// all-gather. Setting false models the naive bootstrap that resets
  /// stateful kernels — the failure mode §4.1 warns about.
  bool migrate_state = true;
  /// Seamless VirtualFlow resize (sub-second all-gather) vs stop-and-
  /// restart-from-checkpoint (the paper's baseline schedulers).
  bool seamless = true;
};

/// Data-parallel synchronous training engine with virtual-node processing.
class VirtualFlowEngine {
 public:
  /// The engine clones `model` onto every device (replica per device) and
  /// `optimizer` likewise. `profile` drives simulated timing/memory.
  VirtualFlowEngine(const Sequential& model, const Optimizer& optimizer,
                    const LrSchedule& schedule, const Dataset& train,
                    ModelProfile profile, std::vector<Device> devices,
                    VnMapping mapping, EngineConfig config);

  /// Attaches observability sinks (obs/obs.h; either pointer may be
  /// null). With a TraceRecorder attached, each train_step records one
  /// "train" span per busy device (its simulated busy window on the
  /// virtual clock) plus a "step" span on the control track covering the
  /// whole step; with a MetricsRegistry it feeds "train.*" counters,
  /// gauges, and the step-time histogram. Spans are emitted from the
  /// serial timing section, so recording is identical under any host
  /// worker count and never perturbs the simulated trajectory.
  void set_observability(obs::Observability obs);

  /// Runs one global-batch step (Fig 5 steps 1-6).
  StepStats train_step();

  /// Elastic resize: redistribute the existing virtual nodes across a new
  /// device set (§4.1). Keeps VN count/batches, hence semantics. This is
  /// the execution path for every sizing decision made ABOVE the engine —
  /// the self-governed elastic rule and cluster-policy device grants
  /// (sched::DeviceLease / EngineTrainLease) both land here, so a grant
  /// can never produce a trajectory a standalone resize could not.
  void resize(std::vector<Device> new_devices, const ResizeOptions& opts = {});

  /// Fault tolerance (§7): drop the device at `device_index` and
  /// redistribute its virtual nodes over the survivors, reusing the
  /// elastic migration machinery. Training continues uninterrupted from
  /// the application's perspective; a later resize() re-adds replacements.
  /// Throws if it would leave zero devices.
  void fail_device(std::int64_t device_index, const ResizeOptions& opts = {});

  /// Snapshot / restore of full training state (the substrate behind the
  /// checkpoint-restart baselines and the fault-tolerance story).
  Checkpoint capture() const;
  void restore(const Checkpoint& snapshot);

  /// Straggler injection (src/fault/): scales device d's simulated compute
  /// time by `multiplier` (>= 1) in both train_step and infer. Timing
  /// only — the numerical trajectory is untouched, so bit-exactness across
  /// worker counts survives any straggler schedule. Reset to 1.0 for every
  /// device by resize/reconfigure (slots are positional, and a migration
  /// re-lands VNs on fresh hardware).
  void set_device_slowdown(std::int64_t device, double multiplier);
  double device_slowdown(std::int64_t device) const;

  /// Comm-fault injection: the next train_step charges its all-reduce
  /// twice (one retry), consuming the flag. Timing only; a single-device
  /// step has no comm phase and consumes the flag for free.
  void inject_comm_retry() { comm_retry_ = true; }

  /// General reconfiguration to an arbitrary mapping (used by
  /// heterogeneous training, §5). The new mapping must preserve the
  /// global batch size.
  void reconfigure(std::vector<Device> new_devices, VnMapping new_mapping,
                   const ResizeOptions& opts = {});

  /// Top-1 accuracy on `eval` (full dataset, or first `limit` examples).
  /// Uses batch-norm moving statistics averaged over VNs in id order.
  double evaluate(const Dataset& eval, std::int64_t limit = -1);

  /// Mean loss on `eval` without updating anything.
  double evaluate_loss(const Dataset& eval, std::int64_t limit = -1);

  /// Forward-only execution of inference micro-batches on a subset of
  /// virtual nodes (the serving entry point, src/serve/). Each slice runs
  /// on the device hosting its VN, with a private copy of the averaged
  /// eval-time VN state; devices run concurrently on the pool when
  /// configured. Does NOT advance the engine's simulated clock — callers
  /// (the serving loop) own their own timeline and consume the returned
  /// simulated costs. Slices must name distinct, valid VNs.
  InferStats infer(const std::vector<InferSlice>& slices);

  // ---- Introspection (tests, benches) ----
  std::int64_t step() const { return step_; }
  std::int64_t epoch() const { return step_ / batcher_.batches_per_epoch(); }
  std::int64_t steps_per_epoch() const { return batcher_.batches_per_epoch(); }
  double sim_time_s() const { return clock_s_; }
  const VnMapping& mapping() const { return mapping_; }
  const std::vector<Device>& devices() const { return devices_; }
  const ModelProfile& profile() const { return profile_; }
  std::int64_t num_replicas() const { return static_cast<std::int64_t>(replicas_.size()); }
  /// Replica d's model (replicas are asserted identical in tests).
  const Sequential& replica_model(std::int64_t d) const;
  /// Flat parameter vector of replica 0 (the canonical copy).
  Tensor parameters() const;
  /// Per-VN stateful-kernel storage (batch-norm moving stats).
  const VnState& vn_state(std::int32_t vn) const;
  /// Simulated peak memory on device d under the current mapping.
  MemoryBreakdown device_memory(std::int64_t d) const;
  /// Whether device d uses the shared gradient buffer (V_d > 1).
  bool uses_grad_buffer(std::int64_t d) const;
  /// Heap allocations observed across the engine's workspaces so far.
  /// After warm-up a steady-state train_step must not move this (the
  /// zero-allocation contract; see tests/core/test_zero_alloc.cpp).
  std::int64_t workspace_allocs() const;
  /// Virtual-node slot rows currently held by the hot-path workspace.
  /// Tracks the live mapping exactly: reconfigure evicts slots (and infer
  /// scratch) of departed VNs rather than letting them pin buffers.
  std::int64_t workspace_vns() const { return ws_.num_vns(); }

 private:
  struct Replica {
    Device device;
    Sequential model;
    std::unique_ptr<Optimizer> optimizer;
  };

  void build_replicas(const Sequential& proto, const Optimizer& opt_proto);
  void check_memory() const;
  /// (Re)sizes the per-VN hot-path scratch to the current mapping.
  void resize_vn_scratch();
  double sync_and_update(const std::vector<Tensor>& vn_grad_sums,
                         const std::vector<double>& vn_loss_sums, double* out_loss);
  /// Runs fn(d) for every device, on the pool when configured, serially
  /// otherwise. fn must only write state owned by device d (its replica,
  /// its VNs' slots).
  void for_each_device(const std::function<void(std::int64_t)>& fn);
  /// Shared harness for evaluate/evaluate_loss: forwards the first `n`
  /// examples of `eval` in fixed kEvalChunk-sized chunks, chunk c on
  /// replica (c mod D) with a private copy of the averaged eval state,
  /// and calls fn(c, logits, labels) per chunk. fn must only write its
  /// chunk's slot; callers reduce in ascending chunk order, making the
  /// result bit-identical to a serial single-replica sweep.
  void for_each_eval_chunk(
      const Dataset& eval, std::int64_t n,
      const std::function<void(std::int64_t, const Tensor&,
                               const std::vector<std::int64_t>&)>& fn);
  /// Averaged eval-time VN state, recomputed lazily (train_step, restore,
  /// and reconfigure invalidate it). Eval-mode forwards only read state,
  /// so eval/infer workers share this one copy instead of deep-copying it
  /// per call per device — the infer hot path allocates nothing for it.
  VnState& shared_eval_state();

  static constexpr std::int64_t kEvalChunk = 1024;

  ModelProfile profile_;
  std::vector<Device> devices_;
  VnMapping mapping_;
  EngineConfig config_;
  std::unique_ptr<LrSchedule> schedule_;
  EpochBatcher batcher_;

  std::vector<Replica> replicas_;
  std::vector<VnState> vn_states_;  // indexed by VN id; survives resizes
  std::unique_ptr<ThreadPool> pool_;  // null when config_.num_threads == 0

  // ---- Reusable hot-path scratch (zero tensor allocations once warm).
  // Everything is keyed by VN id, so under any mapping and worker count
  // the worker driving device d touches exactly its VNs' slots — the same
  // confinement argument that makes the gradient slots race-free.
  Workspace ws_;                                    // activations, kernel temps
  std::vector<MicroBatch> vn_mb_;                   // micro-batch buffers
  std::vector<std::vector<std::int64_t>> vn_idx_;   // gather index scratch
  std::vector<LossResult> vn_loss_;                 // loss + grad_logits slots
  std::vector<Tensor> vn_grad_sums_;                // flattened gradient sums
  std::vector<double> vn_loss_sums_;
  Tensor global_grad_;                              // reduction scratch
  std::vector<Tensor> device_sums_;                 // hierarchical-mode scratch
  std::vector<Workspace> eval_ws_;                  // per-eval-worker arenas

  // ---- Per-model infer scratch (this engine IS the model: co-located
  // serving runs one engine per model, so everything here is keyed by
  // (model, VN) overall). Sized to the mapping by resize_vn_scratch and
  // evicted with it on reconfigure, like the training slots above.
  VnState eval_state_cache_;                        // shared averaged eval state
  bool eval_state_dirty_ = true;
  std::vector<std::vector<std::int64_t>> vn_infer_preds_;  // per-VN predictions
  std::vector<double> vn_infer_bytes_;              // per-VN logits bytes
  std::vector<std::vector<std::size_t>> infer_by_device_;  // device -> slice idx
  std::vector<bool> infer_seen_;                    // duplicate-VN guard

  // ---- Observability sinks (null = off) and instrument pointers cached
  // at attach time so the step loop never does a name lookup.
  obs::Observability obs_;
  obs::Counter* steps_counter_ = nullptr;
  obs::Counter* evals_counter_ = nullptr;
  obs::Histogram* step_hist_ = nullptr;
  obs::Gauge* loss_gauge_ = nullptr;
  obs::Gauge* throughput_gauge_ = nullptr;

  // ---- Fault injection (timing-only; see set_device_slowdown).
  std::vector<double> slowdowns_;  // per device slot, reset on reconfigure
  bool comm_retry_ = false;

  std::int64_t step_ = 0;
  double clock_s_ = 0.0;
  bool first_step_done_ = false;
};

}  // namespace vf
