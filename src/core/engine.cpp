#include "core/engine.h"

#include <algorithm>

#include "util/common.h"

namespace vf {

namespace {
// Engine-level workspace tags (negative: layer tags are >= 0).
constexpr std::int32_t kTagLogits = -1;    // forward output per VN
constexpr std::int32_t kTagTopGrad = -2;   // model-input gradient (discarded)
}  // namespace

VirtualFlowEngine::VirtualFlowEngine(const Sequential& model, const Optimizer& optimizer,
                                     const LrSchedule& schedule, const Dataset& train,
                                     ModelProfile profile, std::vector<Device> devices,
                                     VnMapping mapping, EngineConfig config)
    : profile_(std::move(profile)),
      devices_(std::move(devices)),
      mapping_(std::move(mapping)),
      config_(config),
      schedule_(schedule.clone()),
      batcher_(train, config.seed, mapping_.global_batch()) {
  check(static_cast<std::int64_t>(devices_.size()) == mapping_.num_devices(),
        "mapping device count (" + std::to_string(mapping_.num_devices()) +
            ") must match cluster size (" + std::to_string(devices_.size()) + ")");
  vn_states_.resize(static_cast<std::size_t>(mapping_.total_vns()));
  resize_vn_scratch();
  build_replicas(model, optimizer);
  if (config_.enforce_memory) check_memory();
  if (config_.num_threads > 0)
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
}

void VirtualFlowEngine::resize_vn_scratch() {
  const auto n = static_cast<std::size_t>(mapping_.total_vns());
  // Evict before growing: a reconfigure onto fewer VNs must not leave the
  // departed VNs' workspace slots (or their infer scratch) pinning
  // buffers behind the new mapping's back.
  ws_.shrink_vns(mapping_.total_vns());
  ws_.ensure_vns(mapping_.total_vns());
  // Shrinking these vectors destroys the departed VNs' elements, freeing
  // their tensor buffers (the vector shells they leave behind are bytes).
  vn_mb_.resize(n);
  vn_idx_.resize(n);
  vn_loss_.resize(n);
  vn_grad_sums_.resize(n);
  vn_loss_sums_.assign(n, 0.0);
  vn_infer_preds_.resize(n);
  vn_infer_bytes_.assign(n, 0.0);
  infer_seen_.assign(n, false);
  // Slowdowns are positional (slot d of the current set); a reconfigure
  // re-lands VNs on fresh hardware, so injected stragglers do not follow.
  slowdowns_.assign(devices_.size(), 1.0);
  eval_state_dirty_ = true;
}

void VirtualFlowEngine::set_device_slowdown(std::int64_t device, double multiplier) {
  check_index(device, static_cast<std::int64_t>(slowdowns_.size()), "device");
  check(multiplier >= 1.0, "slowdown multiplier must be >= 1");
  slowdowns_[static_cast<std::size_t>(device)] = multiplier;
}

double VirtualFlowEngine::device_slowdown(std::int64_t device) const {
  check_index(device, static_cast<std::int64_t>(slowdowns_.size()), "device");
  return slowdowns_[static_cast<std::size_t>(device)];
}

std::int64_t VirtualFlowEngine::workspace_allocs() const {
  std::int64_t total = ws_.heap_allocs();
  for (const Workspace& w : eval_ws_) total += w.heap_allocs();
  return total;
}

void VirtualFlowEngine::for_each_device(const std::function<void(std::int64_t)>& fn) {
  const std::int64_t n = mapping_.num_devices();
  if (pool_) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::int64_t d = 0; d < n; ++d) fn(d);
  }
}

void VirtualFlowEngine::build_replicas(const Sequential& proto,
                                       const Optimizer& opt_proto) {
  replicas_.clear();
  replicas_.reserve(devices_.size());
  for (const Device& dev : devices_) {
    Replica r;
    r.device = dev;
    r.model = proto;  // deep copy
    r.optimizer = opt_proto.clone();
    replicas_.push_back(std::move(r));
  }
}

bool VirtualFlowEngine::uses_grad_buffer(std::int64_t d) const {
  // With a single VN per device VirtualFlow falls back to stock framework
  // behaviour and needs no separate accumulation buffer (§3.2).
  return mapping_.device_vns(d).size() > 1;
}

MemoryBreakdown VirtualFlowEngine::device_memory(std::int64_t d) const {
  return peak_memory(profile_, mapping_.device_batches(d), uses_grad_buffer(d));
}

void VirtualFlowEngine::check_memory() const {
  for (std::int64_t d = 0; d < mapping_.num_devices(); ++d) {
    check_fits(devices_[static_cast<std::size_t>(d)].spec(), profile_,
               mapping_.device_batches(d), uses_grad_buffer(d));
  }
}

void VirtualFlowEngine::set_observability(obs::Observability obs) {
  obs_ = obs;
  if (obs.metrics == nullptr) {
    steps_counter_ = evals_counter_ = nullptr;
    step_hist_ = nullptr;
    loss_gauge_ = throughput_gauge_ = nullptr;
    return;
  }
  // Step times of interesting configs span ~1ms (tiny test models) to
  // tens of seconds (first-step warmup on large profiles).
  static const std::vector<double> kStepTimeEdges = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
      0.2,   0.5,   1.0,   2.0,  5.0,  10.0, 30.0};
  steps_counter_ = &obs.metrics->counter("train.steps");
  evals_counter_ = &obs.metrics->counter("train.evals");
  step_hist_ = &obs.metrics->histogram("train.step_time_s", kStepTimeEdges);
  loss_gauge_ = &obs.metrics->gauge("train.loss");
  throughput_gauge_ = &obs.metrics->gauge("train.throughput");
}

StepStats VirtualFlowEngine::train_step() {
  const std::int64_t bpe = batcher_.batches_per_epoch();
  const std::int64_t epoch = step_ / bpe;
  const std::int64_t bie = step_ % bpe;
  const auto slices = mapping_.slices();

  // --- Fig 5 steps 1-3: per-device sequential VN execution, with devices
  // running concurrently on the host pool when configured (matching a real
  // deployment). Device d mutates only its own replica, its VNs' states,
  // and its VNs' slots of the scratch vectors/workspace, so the partition
  // is race-free; the epoch permutation is warmed up front so the batcher
  // is read-only inside the loop. Scheduling cannot change the result: the
  // reduction order is fixed by VN id in sync_and_update. Every buffer the
  // pass needs lives in a per-VN slot reused across steps — a warmed-up
  // step performs zero tensor heap allocations.
  batcher_.prepare_epoch(epoch);
  ws_.begin_region();  // new ownership region: worker -> VN may have moved
  for_each_device([&](std::int64_t d) {
    Replica& rep = replicas_[static_cast<std::size_t>(d)];
    for (const std::int32_t vn : mapping_.device_vns(d)) {
      const auto v = static_cast<std::size_t>(vn);
      MicroBatch& mb = vn_mb_[v];
      batcher_.micro_batch_into(epoch, bie, slices, vn, mb, vn_idx_[v]);
      ExecContext ctx;
      ctx.seed = config_.seed;
      ctx.step = step_;
      ctx.vn_id = vn;
      ctx.training = true;
      ctx.state = &vn_states_[v];
      ctx.ws = &ws_;

      rep.model.zero_grad();
      Tensor& logits = ws_.acquire(vn, kTagLogits);
      rep.model.forward_into(mb.features, logits, ctx);
      LossResult& loss = vn_loss_[v];
      softmax_cross_entropy_into(logits, mb.labels, loss);
      rep.model.backward_into(loss.grad_logits, ws_.acquire(vn, kTagTopGrad));

      rep.model.flatten_grads_into(vn_grad_sums_[v]);
      vn_loss_sums_[v] = loss.loss_sum;
    }
  });

  // --- Fig 5 steps 4-5: synchronize and update.
  double loss = 0.0;
  const double comm_s = sync_and_update(vn_grad_sums_, vn_loss_sums_, &loss);

  // --- Simulated timing: barrier at the slowest device, plus all-reduce.
  double compute_s = 0.0;
  double max_mem = 0.0;
  for (std::int64_t d = 0; d < mapping_.num_devices(); ++d) {
    const DeviceSpec& spec = devices_[static_cast<std::size_t>(d)].spec();
    // A device hosting zero VNs this phase idles: it spends no compute
    // and cannot be the step's barrier (its replica memory still counts).
    if (!mapping_.device_vns(d).empty()) {
      // Injected straggler multipliers (src/fault/) stretch the device's
      // simulated window; the barrier picks up the slowest device either
      // way, and the math above already ran — timing only.
      const double dt =
          device_step_time_s(spec, profile_, mapping_.device_batches(d)) *
          slowdowns_[static_cast<std::size_t>(d)];
      compute_s = std::max(compute_s, dt);
      if (obs_.trace != nullptr) {
        // One span per busy device: its simulated compute window this
        // step. Emitted here, in the serial timing section, so the trace
        // is byte-identical under any host worker count.
        obs_.trace->span("train", clock_s_, clock_s_ + dt,
                         static_cast<std::int32_t>(d), /*vn=*/-1,
                         /*model=*/-1, mapping_.device_batch_total(d),
                         /*warm=*/false);
      }
    }
    max_mem = std::max(max_mem, device_memory(d).total());
  }
  double step_time = compute_s + comm_s;
  if (!first_step_done_) {
    double extra = 0.0;
    for (const Device& dev : devices_) extra = std::max(extra, dev.spec().first_step_extra_s);
    step_time += extra;
    first_step_done_ = true;
  }

  if (obs_.trace != nullptr) {
    // The whole step (compute barrier + all-reduce + any first-step
    // extra) on the control track, sized by the global batch.
    obs_.trace->span("step", clock_s_, clock_s_ + step_time, /*device=*/-1,
                     /*vn=*/-1, /*model=*/-1, mapping_.global_batch(),
                     /*warm=*/false);
  }

  clock_s_ += step_time;
  ++step_;
  eval_state_dirty_ = true;  // the step moved batch-norm moving stats

  StepStats s;
  s.step = step_;
  s.loss = loss;
  s.step_time_s = step_time;
  s.sim_time_s = clock_s_;
  s.throughput = static_cast<double>(mapping_.global_batch()) / step_time;
  s.comm_time_s = comm_s;
  s.max_device_mem = max_mem;
  if (steps_counter_ != nullptr) {
    steps_counter_->add();
    step_hist_->observe(step_time);
    loss_gauge_->set(loss, clock_s_);
    throughput_gauge_->set(s.throughput, clock_s_);
  }
  return s;
}

double VirtualFlowEngine::sync_and_update(const std::vector<Tensor>& vn_grad_sums,
                                          const std::vector<double>& vn_loss_sums,
                                          double* out_loss) {
  const auto b = static_cast<double>(mapping_.global_batch());

  double loss_sum = 0.0;
  for (const double l : vn_loss_sums) loss_sum += l;

  // `global_grad_` and `device_sums_` are member scratch: the copy
  // assignments below recycle their buffers, so steady-state reduction
  // allocates nothing. The addition orders are unchanged.
  if (config_.reduction == ReductionMode::kStrictVnOrder) {
    // Ascending VN-id reduction of per-VN gradient *sums*, then one
    // division by the global batch. Mathematically this equals the
    // paper's weighted average of per-device means (§5.2):
    // sum_d (B_d / B) * mean_d(g) = sum_all(g) / B — and, because the
    // order is fixed by VN id, the result is bit-identical under any
    // VN -> device mapping.
    global_grad_ = vn_grad_sums.at(0);
    for (std::size_t vn = 1; vn < vn_grad_sums.size(); ++vn)
      global_grad_.add_(vn_grad_sums[vn]);
  } else {
    // Hierarchical mode (ablation): each device folds its own VNs into
    // its gradient buffer, then buffers combine in device-rank order —
    // the shape of a real ring all-reduce. Same expectation, but the
    // addition order now depends on placement.
    //
    // Devices hosting zero VNs (legal under skewed mappings) contribute
    // nothing and are skipped outright: their buffer was never written
    // this step, so folding it in would read a default-constructed — or,
    // after a skewed reconfigure, a stale previous-mapping — gradient sum.
    device_sums_.resize(static_cast<std::size_t>(mapping_.num_devices()));
    for (std::int64_t d = 0; d < mapping_.num_devices(); ++d) {
      Tensor& buf = device_sums_[static_cast<std::size_t>(d)];
      bool first = true;
      for (const std::int32_t vn : mapping_.device_vns(d)) {
        if (first) {
          buf = vn_grad_sums[static_cast<std::size_t>(vn)];
          first = false;
        } else {
          buf.add_(vn_grad_sums[static_cast<std::size_t>(vn)]);
        }
      }
    }
    bool first_device = true;
    for (std::int64_t d = 0; d < mapping_.num_devices(); ++d) {
      if (mapping_.device_vns(d).empty()) continue;
      if (first_device) {
        global_grad_ = device_sums_[static_cast<std::size_t>(d)];
        first_device = false;
      } else {
        global_grad_.add_(device_sums_[static_cast<std::size_t>(d)]);
      }
    }
    check(!first_device, "reduction saw no virtual nodes");  // validate() forbids this
  }
  global_grad_.scale_(static_cast<float>(1.0 / b));
  *out_loss = loss_sum / b;

  const float lr = schedule_->lr(step_);
  for_each_device([&](std::int64_t d) {
    Replica& rep = replicas_[static_cast<std::size_t>(d)];
    rep.model.load_grads(global_grad_);
    rep.optimizer->apply(rep.model, lr);
  });

  // An injected comm fault charges the all-reduce twice (one retry).
  // Consumed even on a single device, where no comm phase exists.
  const double retry = comm_retry_ ? 2.0 : 1.0;
  comm_retry_ = false;
  if (mapping_.num_devices() <= 1) return 0.0;
  return retry * ring_allreduce_time_s(profile_.param_bytes(),
                                       mapping_.num_devices(), config_.link);
}

void VirtualFlowEngine::resize(std::vector<Device> new_devices, const ResizeOptions& opts) {
  check(!new_devices.empty(), "cannot resize to zero devices");
  const VnMapping new_mapping =
      mapping_.redistributed(static_cast<std::int64_t>(new_devices.size()));
  reconfigure(std::move(new_devices), new_mapping, opts);
}

void VirtualFlowEngine::reconfigure(std::vector<Device> new_devices,
                                    VnMapping new_mapping, const ResizeOptions& opts) {
  check(static_cast<std::int64_t>(new_devices.size()) == new_mapping.num_devices(),
        "reconfigure: device count mismatch");
  check(new_mapping.global_batch() == mapping_.global_batch(),
        "reconfigure must preserve the global batch size (got " +
            std::to_string(new_mapping.global_batch()) + ", want " +
            std::to_string(mapping_.global_batch()) + ")");

  // Migration cost (§4.1): one all-gather carrying model parameters,
  // optimizer slots, and per-VN stateful-kernel tensors to bootstrap the
  // new workers. Typically well under a second — vs. minutes for the
  // checkpoint-restart baseline.
  double migration_s = 0.0;
  if (opts.seamless) {
    double state_bytes = profile_.param_bytes();
    state_bytes += static_cast<double>(replicas_.at(0).optimizer->slot_bytes());
    for (const VnState& st : vn_states_) state_bytes += static_cast<double>(st.total_bytes());
    // The state is sharded across participants for the all-gather, so the
    // wire cost is ~one full copy of the state, not world x state. Both
    // the departing and the joining workers take part, so the ring spans
    // the larger of the two memberships.
    const auto world = std::max<std::int64_t>(
        static_cast<std::int64_t>(new_devices.size()), mapping_.num_devices());
    migration_s = ring_allgather_time_s(state_bytes / static_cast<double>(world),
                                        world, config_.link);
  } else {
    migration_s = config_.restart_penalty_s;
  }
  if (obs_.trace != nullptr) {
    // Reconfiguration marker on the control track: device-count change
    // plus the migration charge (arg_s), stamped when the decision lands.
    obs_.trace->instant("migrate", clock_s_, /*device=*/-1, /*vn=*/-1,
                        /*model=*/-1, mapping_.num_devices(),
                        static_cast<std::int64_t>(new_devices.size()),
                        migration_s);
  }
  if (obs_.metrics != nullptr)
    obs_.metrics->counter("train.reconfigures").add();
  clock_s_ += migration_s;

  if (!opts.migrate_state) {
    // Naive bootstrap: stateful kernels (batch-norm moving statistics)
    // are reset on the new workers — the §4.1 failure mode.
    for (VnState& st : vn_states_) st.clear();
  }

  // VN states are keyed by VN id. A semantics-preserving resize keeps the
  // VN count; a general reconfiguration (heterogeneous) may change it, in
  // which case surviving ids keep their state and new ids start fresh.
  vn_states_.resize(static_cast<std::size_t>(new_mapping.total_vns()));

  const Sequential proto = replicas_.at(0).model;  // deep copy with current params
  const std::unique_ptr<Optimizer> opt_proto = replicas_.at(0).optimizer->clone();

  devices_ = std::move(new_devices);
  mapping_ = std::move(new_mapping);
  resize_vn_scratch();
  build_replicas(proto, *opt_proto);
  if (config_.enforce_memory) check_memory();
}

void VirtualFlowEngine::fail_device(std::int64_t device_index, const ResizeOptions& opts) {
  check_index(device_index, static_cast<std::int64_t>(devices_.size()), "device");
  check(devices_.size() > 1, "cannot lose the last device");
  std::vector<Device> survivors;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (static_cast<std::int64_t>(d) != device_index) survivors.push_back(devices_[d]);
  }
  // The failed device's replica is gone, but every survivor holds the
  // full model, and VN state lives with the (logical) virtual nodes —
  // redistribute and continue.
  resize(std::move(survivors), opts);
}

Checkpoint VirtualFlowEngine::capture() const {
  Checkpoint snap;
  snap.parameters = replicas_.at(0).model.flatten_params();
  snap.optimizer_slots = replicas_.at(0).optimizer->slots();
  snap.optimizer_counter = replicas_.at(0).optimizer->counter();
  snap.vn_states = vn_states_;
  snap.step = step_;
  snap.sim_time_s = clock_s_;
  return snap;
}

void VirtualFlowEngine::restore(const Checkpoint& snapshot) {
  check(snapshot.vn_states.size() == vn_states_.size(),
        "checkpoint virtual-node count (" + std::to_string(snapshot.vn_states.size()) +
            ") does not match the engine (" + std::to_string(vn_states_.size()) + ")");
  for (Replica& rep : replicas_) {
    rep.model.unflatten_params(snapshot.parameters);
    rep.optimizer->slots() = snapshot.optimizer_slots;
    rep.optimizer->set_counter(snapshot.optimizer_counter);
  }
  vn_states_ = snapshot.vn_states;
  step_ = snapshot.step;
  clock_s_ = snapshot.sim_time_s;
  eval_state_dirty_ = true;
}

const Sequential& VirtualFlowEngine::replica_model(std::int64_t d) const {
  check_index(d, num_replicas(), "replica");
  return replicas_[static_cast<std::size_t>(d)].model;
}

Tensor VirtualFlowEngine::parameters() const {
  return replicas_.at(0).model.flatten_params();
}

const VnState& VirtualFlowEngine::vn_state(std::int32_t vn) const {
  check_index(vn, static_cast<std::int64_t>(vn_states_.size()), "virtual node");
  return vn_states_[static_cast<std::size_t>(vn)];
}

namespace {

/// Averages per-VN stateful-kernel tensors (in ascending VN-id order) into
/// one evaluation-time state. VNs missing a key are skipped.
VnState average_states(const std::vector<VnState>& states) {
  VnState out;
  if (states.empty()) return out;
  for (const std::string& key : states.front().keys()) {
    Tensor acc;
    std::int64_t count = 0;
    for (const VnState& st : states) {
      if (!st.has(key)) continue;
      if (count == 0) {
        acc = st.get(key);
      } else {
        acc.add_(st.get(key));
      }
      ++count;
    }
    if (count > 0) {
      acc.scale_(1.0F / static_cast<float>(count));
      out.put(key, std::move(acc));
    }
  }
  return out;
}

}  // namespace

VnState& VirtualFlowEngine::shared_eval_state() {
  if (eval_state_dirty_) {
    eval_state_cache_ = average_states(vn_states_);
    eval_state_dirty_ = false;
  }
  return eval_state_cache_;
}

void VirtualFlowEngine::for_each_eval_chunk(
    const Dataset& eval, std::int64_t n,
    const std::function<void(std::int64_t, const Tensor&,
                             const std::vector<std::int64_t>&)>& fn) {
  // One shared averaged state for every worker: eval-mode forwards only
  // ever read it (batch-norm consumes the moving stats), so the workers
  // need no private copies — concurrent reads are race-free.
  VnState& eval_state = shared_eval_state();
  VnState* const eval_state_ptr = eval_state.empty() ? nullptr : &eval_state;
  const std::int64_t n_chunks = ceil_div(n, kEvalChunk);

  // Eval parallelism is decoupled from the replica count: chunks stripe
  // over every pool worker, not just one per device, so an eval-heavy
  // workload on a small mapping still uses the whole host. Worker w within
  // the replica count borrows replica w's model (distinct objects, one
  // worker each — no copies, no races); workers beyond it get private deep
  // copies, made serially up front because copying inside the parallel
  // region would race with worker w's forward-cache writes on the source
  // replica. Each worker writes only its own chunks' slots and callers
  // reduce in ascending chunk order, so the result is bit-identical for
  // any worker count.
  const std::int64_t n_dev = num_replicas();
  const std::int64_t workers =
      pool_ ? std::min<std::int64_t>(config_.num_threads, n_chunks) : 1;
  std::vector<Sequential> extra_models;
  for (std::int64_t w = n_dev; w < workers; ++w)
    extra_models.push_back(replicas_.front().model);
  // One private arena per worker (persisted across eval calls): chunks of
  // one worker reuse the same gather/forward buffers, and workers never
  // share a slot — the eval twin of the per-VN confinement in train_step.
  if (static_cast<std::int64_t>(eval_ws_.size()) < workers)
    eval_ws_.resize(static_cast<std::size_t>(workers));
  for (Workspace& w : eval_ws_) {
    w.ensure_vns(1);
    // Each arena belongs to one worker index, but the pool thread running
    // that index changes call to call — open a fresh ownership region.
    w.begin_region();
  }

  const auto worker_body = [&](std::int64_t w) {
    Sequential& model = w < n_dev
                            ? replicas_[static_cast<std::size_t>(w)].model
                            : extra_models[static_cast<std::size_t>(w - n_dev)];
    Workspace& wws = eval_ws_[static_cast<std::size_t>(w)];
    std::vector<std::int64_t> idx;
    Tensor features;
    std::vector<std::int64_t> labels;
    for (std::int64_t c = w; c < n_chunks; c += workers) {
      const std::int64_t start = c * kEvalChunk;
      const std::int64_t count = std::min(kEvalChunk, n - start);
      idx.resize(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) idx[static_cast<std::size_t>(i)] = start + i;
      eval.gather(idx, features, labels);

      ExecContext ctx;
      ctx.seed = config_.seed;
      ctx.step = step_;
      ctx.training = false;
      ctx.state = eval_state_ptr;
      ctx.ws = &wws;
      Tensor& logits = wws.acquire(0, kTagLogits);
      model.forward_into(features, logits, ctx);
      fn(c, logits, labels);
    }
  };

  if (pool_) {
    pool_->parallel_for(workers, worker_body);
  } else {
    worker_body(0);
  }
}

InferStats VirtualFlowEngine::infer(const std::vector<InferSlice>& slices) {
  check(!slices.empty(), "infer needs at least one slice");
  infer_seen_.assign(static_cast<std::size_t>(mapping_.total_vns()), false);
  for (const InferSlice& s : slices) {
    check_index(s.vn, mapping_.total_vns(), "virtual node");
    check(!infer_seen_[static_cast<std::size_t>(s.vn)],
          "infer: virtual node " + std::to_string(s.vn) + " appears twice");
    infer_seen_[static_cast<std::size_t>(s.vn)] = true;
    check(s.features.rank() == 2 && s.features.rows() > 0,
          "infer slice features must be a non-empty [count x dim] matrix");
  }

  // Group slices by hosting device; a device runs its slices sequentially
  // (same execution shape as training VNs) while devices run concurrently
  // on the pool. Each slice writes only its own VN's prediction/byte
  // slots, so scheduling cannot change the result. All the loop's scratch
  // — grouping lists, per-VN prediction vectors, the averaged eval state —
  // is engine-member storage keyed by VN: a serving loop issuing thousands
  // of dispatches reuses it call after call instead of reallocating.
  const std::int64_t n_dev = mapping_.num_devices();
  infer_by_device_.resize(static_cast<std::size_t>(n_dev));
  for (auto& list : infer_by_device_) list.clear();
  for (std::size_t i = 0; i < slices.size(); ++i)
    infer_by_device_[static_cast<std::size_t>(mapping_.device_of(slices[i].vn))]
        .push_back(i);

  VnState& eval_state = shared_eval_state();  // read-only under training=false
  VnState* const eval_state_ptr = eval_state.empty() ? nullptr : &eval_state;

  ws_.begin_region();  // worker -> device assignment may differ per call
  for_each_device([&](std::int64_t d) {
    if (infer_by_device_[static_cast<std::size_t>(d)].empty()) return;
    Sequential& model = replicas_[static_cast<std::size_t>(d)].model;
    for (const std::size_t i : infer_by_device_[static_cast<std::size_t>(d)]) {
      const InferSlice& s = slices[i];
      const auto v = static_cast<std::size_t>(s.vn);
      ExecContext ctx;
      ctx.seed = config_.seed;
      ctx.step = step_;
      ctx.vn_id = s.vn;
      ctx.training = false;
      ctx.state = eval_state_ptr;
      // Slices name distinct VNs, so the per-VN slots of the training
      // workspace are free for serving reuse (and race-free on the pool).
      ctx.ws = &ws_;
      Tensor& logits = ws_.acquire(s.vn, kTagLogits);
      model.forward_into(s.features, logits, ctx);
      logits.row_argmax_into(vn_infer_preds_[v]);
      vn_infer_bytes_[v] = static_cast<double>(logits.size()) * 4.0;
    }
  });

  // Simulated timing: barrier at the slowest participating device, plus
  // the slowest logits return to the frontend. Both are pure functions of
  // the slice shapes and the mapping — never of host scheduling. Alongside
  // the batch barrier, each slice is also priced as an independent dispatch
  // (slice_infer_time_s) so a continuous-batching caller can free per-VN
  // slots at per-slice completion times.
  InferStats out;
  out.slice_costs.resize(slices.size());
  for (std::int64_t d = 0; d < n_dev; ++d) {
    const auto& mine = infer_by_device_[static_cast<std::size_t>(d)];
    if (mine.empty()) continue;
    double dev_pass_s = 0.0;
    double dev_bytes = 0.0;
    const DeviceSpec& spec = devices_[static_cast<std::size_t>(d)].spec();
    for (const std::size_t i : mine) {
      const auto v = static_cast<std::size_t>(slices[i].vn);
      dev_bytes += vn_infer_bytes_[v];
      SliceCost& c = out.slice_costs[i];
      c.vn = slices[i].vn;
      c.device = d;
      // Decode slices price against the memory-bandwidth floor (full
      // parameter read per token step); everything else is the standard
      // forward pass. The device barrier below sums the same per-slice
      // pass times, so for non-decode batches it equals the old
      // device_infer_time_s(batches) bit-for-bit.
      c.pass_s = slices[i].decode
                     ? decode_pass_time_s(spec, profile_, slices[i].features.rows())
                     : infer_pass_time_s(spec, profile_, slices[i].features.rows());
      // Injected straggler multiplier (src/fault/): a degraded device
      // serves its slices slower; predictions are untouched.
      c.pass_s *= slowdowns_[static_cast<std::size_t>(d)];
      c.overhead_s = spec.step_fixed_s;
      if (n_dev > 1) c.comm_s = send_time_s(vn_infer_bytes_[v], config_.link);
      dev_pass_s += c.pass_s;
    }
    out.compute_s = std::max(out.compute_s, dev_pass_s + spec.step_fixed_s);
    if (n_dev > 1)
      out.comm_s = std::max(out.comm_s, send_time_s(dev_bytes, config_.link));
  }
  for (const InferSlice& s : slices) {
    const auto& preds = vn_infer_preds_[static_cast<std::size_t>(s.vn)];
    out.predictions.insert(out.predictions.end(), preds.begin(), preds.end());
  }
  return out;
}

double VirtualFlowEngine::evaluate(const Dataset& eval, std::int64_t limit) {
  const std::int64_t n = limit < 0 ? eval.size() : std::min(limit, eval.size());
  check(n > 0, "evaluate on empty dataset");
  std::vector<std::int64_t> chunk_correct(
      static_cast<std::size_t>(ceil_div(n, kEvalChunk)), 0);

  for_each_eval_chunk(eval, n,
                      [&](std::int64_t c, const Tensor& logits,
                          const std::vector<std::int64_t>& labels) {
                        const auto preds = logits.row_argmax();
                        std::int64_t correct = 0;
                        for (std::size_t i = 0; i < labels.size(); ++i)
                          if (preds[i] == labels[i]) ++correct;
                        chunk_correct[static_cast<std::size_t>(c)] = correct;
                      });

  std::int64_t correct = 0;
  for (const std::int64_t c : chunk_correct) correct += c;
  const double acc = static_cast<double>(correct) / static_cast<double>(n);
  // Evaluation does not advance the simulated clock, so it gets an
  // instant marker (stamped at the current clock) rather than a span.
  if (obs_.trace != nullptr)
    obs_.trace->instant("eval", clock_s_, /*device=*/-1, /*vn=*/-1,
                        /*model=*/-1, /*arg0=*/n, /*arg1=*/correct, acc);
  if (evals_counter_ != nullptr) {
    evals_counter_->add();
    obs_.metrics->gauge("train.eval_accuracy").set(acc, clock_s_);
  }
  return acc;
}

double VirtualFlowEngine::evaluate_loss(const Dataset& eval, std::int64_t limit) {
  const std::int64_t n = limit < 0 ? eval.size() : std::min(limit, eval.size());
  check(n > 0, "evaluate_loss on empty dataset");
  std::vector<double> chunk_loss(static_cast<std::size_t>(ceil_div(n, kEvalChunk)),
                                 0.0);

  for_each_eval_chunk(eval, n,
                      [&](std::int64_t c, const Tensor& logits,
                          const std::vector<std::int64_t>& labels) {
                        chunk_loss[static_cast<std::size_t>(c)] =
                            softmax_cross_entropy(logits, labels).loss_sum;
                      });

  double loss_sum = 0.0;
  for (const double l : chunk_loss) loss_sum += l;
  return loss_sum / static_cast<double>(n);
}

}  // namespace vf
