#include "core/mapping.h"

#include <numeric>

#include "util/common.h"

namespace vf {

VnMapping VnMapping::even(std::int64_t total_vns, std::int64_t num_devices,
                          std::int64_t global_batch) {
  check(total_vns > 0, "total virtual nodes must be positive");
  check(num_devices > 0, "device count must be positive");
  check(num_devices <= total_vns,
        "cannot have more devices than virtual nodes (" + std::to_string(num_devices) +
            " > " + std::to_string(total_vns) + ")");
  check(global_batch % total_vns == 0,
        "global batch " + std::to_string(global_batch) + " must divide evenly among " +
            std::to_string(total_vns) + " virtual nodes");

  VnMapping m;
  m.vn_batches_.assign(static_cast<std::size_t>(total_vns), global_batch / total_vns);
  m.device_vns_.resize(static_cast<std::size_t>(num_devices));
  const std::int64_t base = total_vns / num_devices;
  const std::int64_t extra = total_vns % num_devices;
  std::int32_t next = 0;
  for (std::int64_t d = 0; d < num_devices; ++d) {
    const std::int64_t count = base + (d < extra ? 1 : 0);
    for (std::int64_t k = 0; k < count; ++k)
      m.device_vns_[static_cast<std::size_t>(d)].push_back(next++);
  }
  m.validate();
  return m;
}

VnMapping VnMapping::uneven(const std::vector<std::vector<std::int64_t>>& per_device) {
  check(!per_device.empty(), "at least one device required");
  VnMapping m;
  m.device_vns_.resize(per_device.size());
  std::int32_t next = 0;
  for (std::size_t d = 0; d < per_device.size(); ++d) {
    // An empty list is legal: a device may host zero virtual nodes this
    // phase (skewed heterogeneous splits, co-location warm spares). Such
    // a device idles — the engine skips it in compute, timing, and
    // reduction — but stays in the cluster for later reconfigurations.
    for (const std::int64_t b : per_device[d]) {
      check(b > 0, "virtual-node batch must be positive");
      m.device_vns_[d].push_back(next++);
      m.vn_batches_.push_back(b);
    }
  }
  check(next > 0, "mapping needs at least one virtual node");
  m.validate();
  return m;
}

VnMapping VnMapping::redistributed(std::int64_t new_num_devices) const {
  check(new_num_devices > 0, "device count must be positive");
  check(new_num_devices <= total_vns(),
        "cannot spread " + std::to_string(total_vns()) + " virtual nodes over " +
            std::to_string(new_num_devices) + " devices");
  VnMapping m;
  m.vn_batches_ = vn_batches_;
  m.device_vns_.resize(static_cast<std::size_t>(new_num_devices));
  const std::int64_t v = total_vns();
  const std::int64_t base = v / new_num_devices;
  const std::int64_t extra = v % new_num_devices;
  std::int32_t next = 0;
  for (std::int64_t d = 0; d < new_num_devices; ++d) {
    const std::int64_t count = base + (d < extra ? 1 : 0);
    for (std::int64_t k = 0; k < count; ++k)
      m.device_vns_[static_cast<std::size_t>(d)].push_back(next++);
  }
  m.validate();
  return m;
}

void VnMapping::validate() const {
  const std::int64_t v = total_vns();
  std::vector<bool> seen(static_cast<std::size_t>(v), false);
  for (const auto& vns : device_vns_) {
    for (const std::int32_t id : vns) {
      check_index(id, v, "virtual node id");
      check(!seen[static_cast<std::size_t>(id)],
            "virtual node " + std::to_string(id) + " assigned to multiple devices");
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
  for (std::int64_t i = 0; i < v; ++i)
    check(seen[static_cast<std::size_t>(i)],
          "virtual node " + std::to_string(i) + " not assigned to any device");
}

std::int64_t VnMapping::global_batch() const {
  return std::accumulate(vn_batches_.begin(), vn_batches_.end(), std::int64_t{0});
}

const std::vector<std::int32_t>& VnMapping::device_vns(std::int64_t d) const {
  check_index(d, num_devices(), "device");
  return device_vns_[static_cast<std::size_t>(d)];
}

std::int64_t VnMapping::vn_batch(std::int32_t vn) const {
  check_index(vn, total_vns(), "virtual node");
  return vn_batches_[static_cast<std::size_t>(vn)];
}

std::vector<std::int64_t> VnMapping::device_batches(std::int64_t d) const {
  std::vector<std::int64_t> out;
  for (const std::int32_t vn : device_vns(d)) out.push_back(vn_batch(vn));
  return out;
}

std::int64_t VnMapping::device_batch_total(std::int64_t d) const {
  std::int64_t total = 0;
  for (const std::int32_t vn : device_vns(d)) total += vn_batch(vn);
  return total;
}

std::vector<BatchSlice> VnMapping::slices() const {
  return split_batch(global_batch(), vn_batches_);
}

std::int64_t VnMapping::device_of(std::int32_t vn) const {
  check_index(vn, total_vns(), "virtual node");
  for (std::int64_t d = 0; d < num_devices(); ++d) {
    for (const std::int32_t id : device_vns_[static_cast<std::size_t>(d)])
      if (id == vn) return d;
  }
  throw VfError("unreachable: validated mapping lost a virtual node");
}

std::string VnMapping::describe() const {
  std::string s = std::to_string(num_devices()) + " device(s), " +
                  std::to_string(total_vns()) + " VN(s), global batch " +
                  std::to_string(global_batch());
  return s;
}

}  // namespace vf
