// Model parallelism with virtual nodes (paper §7, Fig 19).
//
// The paper sketches this as future work: when a model is partitioned into
// S pipeline stages and each stage is replicated R ways for data
// parallelism (S*R accelerators total), virtual nodes let the R data-
// parallel replicas of every stage be *unrolled* onto a single accelerator
// as R sequential virtual nodes — dropping the requirement to S
// accelerators at ~R x the step time. This module provides the analytic
// resource/time accounting for that trade-off (the Fig 19 bench target).
#pragma once

#include <cstdint>
#include <vector>

#include "device/cost_model.h"
#include "device/model_profile.h"
#include "device/spec.h"

namespace vf {

/// Configuration of a model-parallel job.
struct PipelineConfig {
  std::int64_t stages = 1;            ///< model partitions (S)
  std::int64_t replicas_per_stage = 1;///< data-parallel width (R)
  std::int64_t vns_per_replica = 1;   ///< virtual nodes folded per replica slot
  std::int64_t global_batch = 0;
};

/// Result of the pipeline cost analysis.
struct PipelineCost {
  std::int64_t devices_required = 0;  ///< physical accelerators needed
  double step_time_s = 0.0;           ///< simulated training step time
  double throughput = 0.0;            ///< examples per second
  double peak_stage_mem_bytes = 0.0;  ///< per-device memory at the fattest stage
};

/// Per-stage profile: the model's cost split evenly across `stages`
/// partitions (layer-balanced partitioning assumption).
ModelProfile stage_profile(const ModelProfile& model, std::int64_t stages);

/// Cost of running the pipeline on `spec`-type devices.
///
/// devices_required = stages * replicas_per_stage / vns_per_replica; the
/// VN fold must divide the replica count. Each physical device hosting a
/// stage executes vns_per_replica sequential passes per step (Fig 19,
/// bottom). Pipeline fill/drain is modelled as one extra micro-batch pass
/// per additional stage.
PipelineCost pipeline_cost(const DeviceSpec& spec, const ModelProfile& model,
                           const PipelineConfig& config);

}  // namespace vf
