// Trainer: epoch-level loop around VirtualFlowEngine with per-epoch
// evaluation, optional mid-training reconfiguration events, and recorded
// convergence curves (what Figs 2, 8, 9 plot).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/engine.h"

namespace vf {

/// One point of a recorded convergence curve.
struct EpochRecord {
  std::int64_t epoch = 0;       ///< 1-based, matching the paper's plots
  double train_loss = 0.0;      ///< mean training loss over the epoch
  double val_accuracy = 0.0;
  double sim_time_s = 0.0;      ///< simulated clock at end of epoch
};

/// A scheduled reconfiguration: before global step `at_step`, switch to
/// `devices` (+ `mapping` if present; otherwise redistribute the current
/// virtual nodes evenly, the standard elastic resize).
struct ReconfigEvent {
  std::int64_t at_step = 0;
  std::vector<Device> devices;
  std::optional<VnMapping> mapping;
  ResizeOptions options;
};

/// Result of a full training run.
struct TrainResult {
  std::vector<EpochRecord> curve;
  double final_accuracy = 0.0;
  double total_sim_time_s = 0.0;
  std::int64_t total_steps = 0;
};

/// Runs `epochs` epochs of training with per-epoch validation.
/// `events` must be sorted by at_step; each fires once.
TrainResult train(VirtualFlowEngine& engine, const Dataset& val, std::int64_t epochs,
                  std::vector<ReconfigEvent> events = {},
                  std::int64_t eval_limit = -1);

}  // namespace vf
