#include "core/trainer.h"

#include "util/common.h"

namespace vf {

TrainResult train(VirtualFlowEngine& engine, const Dataset& val, std::int64_t epochs,
                  std::vector<ReconfigEvent> events, std::int64_t eval_limit) {
  check(epochs > 0, "epochs must be positive");
  for (std::size_t i = 1; i < events.size(); ++i)
    check(events[i].at_step > events[i - 1].at_step,
          "reconfiguration events must be sorted by step");

  TrainResult result;
  std::size_t next_event = 0;
  const std::int64_t spe = engine.steps_per_epoch();

  for (std::int64_t e = 0; e < epochs; ++e) {
    double loss_acc = 0.0;
    for (std::int64_t s = 0; s < spe; ++s) {
      while (next_event < events.size() &&
             events[next_event].at_step == engine.step()) {
        const ReconfigEvent& ev = events[next_event];
        if (ev.mapping.has_value()) {
          engine.reconfigure(ev.devices, *ev.mapping, ev.options);
        } else {
          engine.resize(ev.devices, ev.options);
        }
        ++next_event;
      }
      loss_acc += engine.train_step().loss;
    }
    EpochRecord rec;
    rec.epoch = e + 1;
    rec.train_loss = loss_acc / static_cast<double>(spe);
    rec.val_accuracy = engine.evaluate(val, eval_limit);
    rec.sim_time_s = engine.sim_time_s();
    result.curve.push_back(rec);
  }

  result.final_accuracy = result.curve.back().val_accuracy;
  result.total_sim_time_s = engine.sim_time_s();
  result.total_steps = engine.step();
  return result;
}

}  // namespace vf
