#include "core/pipeline.h"

#include <algorithm>

#include "device/memory_model.h"
#include "util/common.h"

namespace vf {

ModelProfile stage_profile(const ModelProfile& model, std::int64_t stages) {
  check(stages > 0, "stage count must be positive");
  ModelProfile p = model;
  p.name = model.name + "/stage";
  const double s = static_cast<double>(stages);
  p.param_count = model.param_count / stages;
  p.flops_per_example = model.flops_per_example / s;
  p.activation_bytes_per_example = model.activation_bytes_per_example / s;
  p.workspace_bytes = model.workspace_bytes / s;
  return p;
}

PipelineCost pipeline_cost(const DeviceSpec& spec, const ModelProfile& model,
                           const PipelineConfig& config) {
  check(config.stages > 0 && config.replicas_per_stage > 0 && config.vns_per_replica > 0,
        "pipeline configuration values must be positive");
  check(config.replicas_per_stage % config.vns_per_replica == 0,
        "virtual-node fold must divide the data-parallel replica count");
  check(config.global_batch > 0, "global batch must be positive");
  check(config.global_batch % config.replicas_per_stage == 0,
        "global batch must divide evenly among data-parallel replicas");

  const std::int64_t device_slots_per_stage =
      config.replicas_per_stage / config.vns_per_replica;
  const std::int64_t micro_batch = config.global_batch / config.replicas_per_stage;

  const ModelProfile stage = stage_profile(model, config.stages);

  // Each physical slot runs `vns_per_replica` sequential passes of the
  // stage (the unrolled pipelines of Fig 19, bottom); the pipeline needs
  // (stages - 1) extra passes to fill and drain.
  const double pass = pass_time_s(spec, stage, micro_batch);
  const double passes_steady = static_cast<double>(config.vns_per_replica);
  const double passes_fill = static_cast<double>(config.stages - 1);
  const double compute_s = (passes_steady + passes_fill) * pass;

  PipelineCost out;
  out.devices_required = config.stages * device_slots_per_stage;
  out.step_time_s = compute_s + update_time_s(spec, stage) + spec.step_fixed_s;
  out.throughput = static_cast<double>(config.global_batch) / out.step_time_s;
  // One stage's parameters + grad buffer + one VN's activations at a time.
  const std::vector<std::int64_t> vn_batches(
      static_cast<std::size_t>(config.vns_per_replica), micro_batch);
  out.peak_stage_mem_bytes =
      peak_memory(stage, vn_batches, config.vns_per_replica > 1).total();
  return out;
}

}  // namespace vf
