#include "comm/comm.h"

#include "util/common.h"

namespace vf {

double ring_allreduce_time_s(double bytes, std::int64_t world, const LinkSpec& link) {
  check(world >= 1, "world size must be positive");
  check(bytes >= 0.0, "bytes must be non-negative");
  if (world == 1) return 0.0;
  // Reduce-scatter + all-gather: 2(n-1) rounds, each moving bytes/n.
  const double n = static_cast<double>(world);
  const double rounds = 2.0 * (n - 1.0);
  return rounds * (link.latency_s + (bytes / n) / link.bandwidth_bytes);
}

double ring_allgather_time_s(double bytes, std::int64_t world, const LinkSpec& link) {
  check(world >= 1, "world size must be positive");
  if (world == 1) return 0.0;
  const double n = static_cast<double>(world);
  return (n - 1.0) * (link.latency_s + bytes / link.bandwidth_bytes);
}

double broadcast_time_s(double bytes, std::int64_t world, const LinkSpec& link) {
  check(world >= 1, "world size must be positive");
  if (world == 1) return 0.0;
  // Pipelined binomial-tree broadcast approximation.
  const double hops = static_cast<double>(world - 1);
  return link.latency_s * hops + bytes / link.bandwidth_bytes;
}

double send_time_s(double bytes, const LinkSpec& link) {
  check(bytes >= 0, "send bytes must be non-negative");
  return link.latency_s + bytes / link.bandwidth_bytes;
}

Tensor weighted_sum(const std::vector<const Tensor*>& bufs,
                    const std::vector<double>& weights) {
  check(!bufs.empty(), "weighted_sum of zero tensors");
  check(bufs.size() == weights.size(), "weighted_sum: weight count mismatch");
  Tensor out(bufs[0]->shape());
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    check(bufs[i] != nullptr, "weighted_sum: null tensor");
    check_same_shape(out, *bufs[i], "weighted_sum");
    out.axpy_(static_cast<float>(weights[i]), *bufs[i]);
  }
  return out;
}

Tensor average(const std::vector<const Tensor*>& bufs) {
  const std::vector<double> w(bufs.size(), 1.0 / static_cast<double>(bufs.size()));
  return weighted_sum(bufs, w);
}

}  // namespace vf
