// Collective communication: cost model + functional collectives.
//
// Substitution (DESIGN.md §1): the paper synchronizes gradients with
// Horovod ring all-reduce over a 16 Gbps interconnect. Here the *data
// movement is real* (tensors are actually combined, because §5.2's
// weighted-averaging correctness results are numerical claims) while the
// *latency* comes from the standard α-β ring model.
//
// Determinism note: reductions combine contributions in ascending rank /
// virtual-node order. Floating-point addition is not associative, so a
// fixed order is what upgrades the paper's "same convergence across
// hardware (±0.5%)" to this repo's bit-exact reproducibility.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace vf {

/// α-β interconnect description. Defaults approximate the paper's testbed
/// (16 Gbps between servers).
struct LinkSpec {
  double latency_s = 50e-6;            ///< per-message latency (α)
  double bandwidth_bytes = 2.0e9;      ///< 16 Gbps (β)
};

/// Time for a ring all-reduce of `bytes` across `world` participants.
double ring_allreduce_time_s(double bytes, std::int64_t world, const LinkSpec& link);

/// Time for a ring all-gather where each of `world` participants
/// contributes `bytes` (total traffic (world-1) x bytes per node).
double ring_allgather_time_s(double bytes, std::int64_t world, const LinkSpec& link);

/// Time for a broadcast of `bytes` from one root to `world - 1` receivers.
double broadcast_time_s(double bytes, std::int64_t world, const LinkSpec& link);

/// Time for a point-to-point send of `bytes` over one link (α + bytes / β).
/// The serving path charges this for returning each device's logits slice
/// to the frontend; devices send over independent links, so the batch-level
/// cost is the max, not the sum, over devices.
double send_time_s(double bytes, const LinkSpec& link);

/// Weighted sum of equally-shaped tensors: out = Σ_i weights[i] * bufs[i],
/// reduced in ascending index order. This is the numerical core of both
/// homogeneous averaging (uniform weights) and the weighted gradient
/// synchronization of §5.2 (weights = per-device batch shares).
Tensor weighted_sum(const std::vector<const Tensor*>& bufs,
                    const std::vector<double>& weights);

/// Convenience: uniform average in ascending index order.
Tensor average(const std::vector<const Tensor*>& bufs);

}  // namespace vf
