// Deterministic fault injection on the virtual clock.
//
// VirtualFlow's virtualization boundary turns hardware failure into a
// reconfiguration problem: a dead device is just a mapping with fewer
// slots, a straggler is a cost-model multiplier, a dropped comm step is
// one extra all-reduce charge. `FaultPlan` is a seeded, fully explicit
// schedule of such events; `FaultInjector` replays it against the virtual
// clock and tracks the derived state (capacity lost to kills, active
// straggler multipliers, pending comm retries). Because the plan is a pure
// function of its seed and every event fires at a deterministic virtual
// time, a faulted run replays byte-identically — the determinism contract
// for recovery (docs/fault_tolerance.md) gates on exactly that.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace vf {
class VirtualFlowEngine;
}  // namespace vf

namespace vf::fault {

enum class FaultKind : std::uint8_t {
  kKill,            ///< device leaves the set; its VNs migrate to survivors
  kRecover,         ///< one unit of capacity returns (anonymous device)
  kStragglerStart,  ///< device slows down by `multiplier`
  kStragglerEnd,    ///< the paired straggler ends
  kCommFault,       ///< the next communication step is retried (charged twice)
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. `device` is a slot index into the device set that
/// is *current when the event fires* (taken modulo the live size), not a
/// stable hardware identity — the virtualization boundary means devices
/// have no identity beyond their slot. `id` is the plan position and the
/// tie-break for events sharing a stamp.
struct FaultEvent {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kKill;
  std::int64_t device = -1;
  double multiplier = 1.0;  ///< straggler slowdown (>= 1)
  std::int64_t id = 0;
};

/// Knobs for the seeded chaos generator.
struct ChaosConfig {
  double start_s = 0.5;       ///< no faults before this stamp
  double duration_s = 3.0;    ///< faults drawn in [start_s, start_s + duration_s)
  std::int64_t kills = 2;     ///< each followed by a recover
  double recover_delay_s = 0.8;
  std::int64_t stragglers = 2;
  double straggler_duration_s = 0.6;
  double multiplier_min = 2.0;
  double multiplier_max = 4.0;
  std::int64_t comm_faults = 1;
  std::int64_t max_device = 7;  ///< device slots drawn uniform in [0, max_device]
};

/// An explicit, replayable schedule of faults. Built either by hand (the
/// fluent builders) or from a seed (`chaos`). Events keep insertion ids;
/// the injector orders them by (time_s, id).
class FaultPlan {
 public:
  FaultPlan& kill(double time_s, std::int64_t device);
  FaultPlan& recover(double time_s);
  /// Schedules a slowdown of `multiplier` on `device` over
  /// [time_s, time_s + duration_s) — adds the paired start/end events.
  FaultPlan& straggler(double time_s, std::int64_t device, double multiplier,
                       double duration_s);
  FaultPlan& comm_fault(double time_s);

  /// Seeded chaos schedule: `cfg.kills` kill/recover pairs,
  /// `cfg.stragglers` slowdown windows, and `cfg.comm_faults` comm retries,
  /// all drawn from a CounterRng stream derived from `seed`. A pure
  /// function of (seed, cfg): same inputs, same plan, same replay.
  static FaultPlan chaos(std::uint64_t seed, const ChaosConfig& cfg = {});

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

 private:
  FaultPlan& add(FaultEvent ev);

  std::vector<FaultEvent> events_;
};

/// Replays a FaultPlan against the virtual clock. The owner (a server loop,
/// a training driver, a test) polls `due(now)` at its event-loop stamps and
/// reacts to the returned events; the injector tracks the derived state:
///   * `capacity_cap(max)` — elastic budget after kills minus recovers,
///   * `apply_slowdowns(engine)` — active straggler multipliers, re-applied
///     after any reconfiguration (which resets them),
///   * `take_comm_fault()` — one-shot flag for the next comm step.
/// Fired events emit `vf::obs` instant markers ("kill", "recover",
/// "straggler", "comm_fault") when observability is attached.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  void set_observability(obs::Observability obs) { obs_ = obs; }

  /// Virtual stamp of the next unfired event; +inf when exhausted. Event
  /// loops fold this into their wake-up horizon.
  double next_event_s() const;

  /// Pops every event with time_s <= now_s (in (time, id) order), updates
  /// the derived state, emits markers, and returns them for the caller to
  /// act on (evict slots, fail the device, ...).
  std::vector<FaultEvent> due(double now_s);

  /// Devices currently lost to kills (never negative).
  std::int64_t killed() const { return killed_; }
  /// Reverts the capacity loss of a kill the owner could not honor
  /// (e.g. the device set is already at one device).
  void kill_skipped();
  /// Elastic device budget under the current loss: max(1, max_devices - killed).
  std::int64_t capacity_cap(std::int64_t max_devices) const;

  /// Re-applies the active straggler multipliers to the engine's current
  /// device set (slots taken modulo the live size; overlapping windows on
  /// one slot keep the largest multiplier). Call after every reconfigure —
  /// resizes reset per-device slowdowns to 1.
  void apply_slowdowns(VirtualFlowEngine& engine) const;

  /// One-shot: true exactly once per fired comm fault.
  bool take_comm_fault();
  bool comm_fault_pending() const { return comm_pending_; }

  /// Events fired so far, in firing order (replay witness for tests).
  const std::vector<FaultEvent>& fired() const { return fired_; }

 private:
  std::vector<FaultEvent> events_;  // sorted by (time_s, id)
  std::size_t cursor_ = 0;
  std::int64_t killed_ = 0;
  std::vector<FaultEvent> active_stragglers_;
  bool comm_pending_ = false;
  std::vector<FaultEvent> fired_;
  obs::Observability obs_;
};

}  // namespace vf::fault
