#include "fault/fault.h"

#include <algorithm>
#include <limits>

#include "core/engine.h"
#include "util/common.h"
#include "util/rng.h"

namespace vf::fault {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Stream tag for chaos plan generation ("FAULT" on a phone pad).
constexpr std::uint64_t kChaosTag = 0x328588;

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kStragglerStart: return "straggler";
    case FaultKind::kStragglerEnd: return "straggler_end";
    case FaultKind::kCommFault: return "comm_fault";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add(FaultEvent ev) {
  check(ev.time_s >= 0.0, "fault time must be non-negative");
  ev.id = static_cast<std::int64_t>(events_.size());
  events_.push_back(ev);
  return *this;
}

FaultPlan& FaultPlan::kill(double time_s, std::int64_t device) {
  check(device >= 0, "kill needs a device slot");
  return add({time_s, FaultKind::kKill, device, 1.0, 0});
}

FaultPlan& FaultPlan::recover(double time_s) {
  return add({time_s, FaultKind::kRecover, -1, 1.0, 0});
}

FaultPlan& FaultPlan::straggler(double time_s, std::int64_t device,
                                double multiplier, double duration_s) {
  check(device >= 0, "straggler needs a device slot");
  check(multiplier >= 1.0, "straggler multiplier must be >= 1");
  check(duration_s > 0.0, "straggler duration must be positive");
  add({time_s, FaultKind::kStragglerStart, device, multiplier, 0});
  return add({time_s + duration_s, FaultKind::kStragglerEnd, device, multiplier, 0});
}

FaultPlan& FaultPlan::comm_fault(double time_s) {
  return add({time_s, FaultKind::kCommFault, -1, 1.0, 0});
}

FaultPlan FaultPlan::chaos(std::uint64_t seed, const ChaosConfig& cfg) {
  check(cfg.duration_s > 0.0, "chaos duration must be positive");
  check(cfg.max_device >= 0, "chaos needs a device range");
  check(cfg.multiplier_min >= 1.0 && cfg.multiplier_max >= cfg.multiplier_min,
        "chaos multipliers must satisfy 1 <= min <= max");
  CounterRng rng(derive_seed(seed, kChaosTag));
  FaultPlan plan;
  const auto slots = static_cast<std::uint64_t>(cfg.max_device + 1);
  for (std::int64_t i = 0; i < cfg.kills; ++i) {
    const double t = cfg.start_s + rng.next_double() * cfg.duration_s;
    const auto dev = static_cast<std::int64_t>(rng.next_below(slots));
    plan.kill(t, dev);
    plan.recover(t + cfg.recover_delay_s);
  }
  for (std::int64_t i = 0; i < cfg.stragglers; ++i) {
    const double t = cfg.start_s + rng.next_double() * cfg.duration_s;
    const auto dev = static_cast<std::int64_t>(rng.next_below(slots));
    const double mult =
        cfg.multiplier_min +
        rng.next_double() * (cfg.multiplier_max - cfg.multiplier_min);
    plan.straggler(t, dev, mult, cfg.straggler_duration_s);
  }
  for (std::int64_t i = 0; i < cfg.comm_faults; ++i) {
    plan.comm_fault(cfg.start_s + rng.next_double() * cfg.duration_s);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : events_(plan.events()) {
  std::sort(events_.begin(), events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.id < b.id;
            });
}

double FaultInjector::next_event_s() const {
  return cursor_ < events_.size() ? events_[cursor_].time_s : kInf;
}

std::vector<FaultEvent> FaultInjector::due(double now_s) {
  std::vector<FaultEvent> out;
  while (cursor_ < events_.size() && events_[cursor_].time_s <= now_s) {
    const FaultEvent& ev = events_[cursor_++];
    switch (ev.kind) {
      case FaultKind::kKill:
        ++killed_;
        break;
      case FaultKind::kRecover:
        killed_ = std::max<std::int64_t>(0, killed_ - 1);
        break;
      case FaultKind::kStragglerStart:
        active_stragglers_.push_back(ev);
        break;
      case FaultKind::kStragglerEnd: {
        // Retire the oldest active window matching this device slot.
        auto it = std::find_if(active_stragglers_.begin(), active_stragglers_.end(),
                               [&](const FaultEvent& a) { return a.device == ev.device; });
        if (it != active_stragglers_.end()) active_stragglers_.erase(it);
        break;
      }
      case FaultKind::kCommFault:
        comm_pending_ = true;
        break;
    }
    if (obs_.trace != nullptr) {
      obs_.trace->instant(fault_kind_name(ev.kind), ev.time_s,
                          static_cast<std::int32_t>(ev.device), -1, -1, ev.id, 0,
                          ev.multiplier);
    }
    if (obs_.metrics != nullptr) {
      obs_.metrics->counter(std::string("fault.") + fault_kind_name(ev.kind)).add();
    }
    fired_.push_back(ev);
    out.push_back(ev);
  }
  return out;
}

void FaultInjector::kill_skipped() {
  killed_ = std::max<std::int64_t>(0, killed_ - 1);
  if (obs_.metrics != nullptr) obs_.metrics->counter("fault.kill_skipped").add();
}

std::int64_t FaultInjector::capacity_cap(std::int64_t max_devices) const {
  return std::max<std::int64_t>(1, max_devices - killed_);
}

void FaultInjector::apply_slowdowns(VirtualFlowEngine& engine) const {
  const auto n_dev = static_cast<std::int64_t>(engine.devices().size());
  for (std::int64_t d = 0; d < n_dev; ++d) engine.set_device_slowdown(d, 1.0);
  for (const FaultEvent& ev : active_stragglers_) {
    const std::int64_t d = ev.device % n_dev;
    engine.set_device_slowdown(d, std::max(engine.device_slowdown(d), ev.multiplier));
  }
}

bool FaultInjector::take_comm_fault() {
  const bool pending = comm_pending_;
  comm_pending_ = false;
  return pending;
}

}  // namespace vf::fault
