#include "workloads/tasks.h"

#include <algorithm>
#include <map>

#include "util/common.h"

namespace vf {

namespace {

/// Static description of one proxy task family.
struct TaskDef {
  // Dataset geometry.
  std::string kind;  // "gmm" or "teacher"
  std::int64_t train_n = 0, val_n = 0, dim = 0, classes = 0;
  float noise = 0.0F;          // gmm: feature noise; teacher: label-flip rate
  std::int64_t teacher_hidden = 3;  // teacher-network width (boundary complexity)
  // Model geometry.
  std::int64_t hidden = 64;
  float dropout = 0.0F;
  bool batch_norm = true;
  // Recipe (tuned once for `global_batch`).
  std::int64_t global_batch = 0;
  std::int64_t epochs = 0;
  std::string optimizer;  // "sgd" or "adam"
  std::string schedule = "warmup_step";  // "warmup_step", "cosine", or "constant"
  float lr = 0.0F;
  std::int64_t warmup_steps = 0;   // fixed warmup steps (SGD recipes)
  double warmup_frac = 0.0;        // if > 0, warmup = frac * total steps
  // Paper target accuracy.
  double target = 0.0;
};

const std::map<std::string, TaskDef>& task_defs() {
  static const std::map<std::string, TaskDef> defs = [] {
    std::map<std::string, TaskDef> m;

    // ResNet-50 / ImageNet stand-in. Reference batch 8192, SGD+momentum
    // with warmup + step decay (the Goyal et al. recipe shape). Target
    // 76.26% top-1 (§6.2.1).
    TaskDef imagenet;
    imagenet.kind = "gmm";
    imagenet.train_n = 16384;
    imagenet.val_n = 4096;
    imagenet.dim = 32;
    imagenet.classes = 16;
    imagenet.noise = 0.375F;  // calibrated: trained accuracy ~0.768 (target 0.7626)
    imagenet.hidden = 64;
    imagenet.dropout = 0.0F;
    imagenet.batch_norm = true;
    imagenet.global_batch = 8192;
    imagenet.epochs = 30;
    imagenet.optimizer = "sgd";
    // Tuned for batch 8192 (the linear-scaling-rule magnitude). Running
    // this rate at small batches without retuning is exactly what breaks
    // the TF* baseline (Table 1 / Fig 8).
    imagenet.lr = 3.0F;
    imagenet.warmup_steps = 10;
    imagenet.target = 0.7626;
    m["imagenet-sim"] = imagenet;

    // ResNet-56 / CIFAR-10 stand-in (used by the scheduler traces).
    TaskDef cifar = imagenet;
    cifar.train_n = 8192;
    cifar.val_n = 2048;
    cifar.classes = 10;
    cifar.noise = 0.28F;  // calibrated to the paper's ResNet-56 ~0.92
    cifar.global_batch = 128;
    cifar.epochs = 6;
    cifar.lr = 0.12F;
    cifar.warmup_steps = 20;
    cifar.target = 0.926;
    m["cifar10-sim"] = cifar;

    // BERT-BASE GLUE fine-tuning stand-ins (Table 2). Reference batch 64,
    // Adam. Ceiling is set by the label-flip rate: acc_max ~ 1 - p/2.
    TaskDef glue;
    glue.kind = "teacher";
    glue.dim = 16;
    glue.classes = 2;
    glue.teacher_hidden = 3;
    glue.hidden = 64;
    glue.dropout = 0.1F;
    glue.batch_norm = true;
    glue.global_batch = 64;
    glue.optimizer = "adam";
    glue.lr = 4e-3F;
    glue.warmup_steps = 0;

    TaskDef qnli = glue;   // paper target 90.90%; calibrated run: 0.9131
    qnli.train_n = 10496;  // ~1/10 of QNLI per epoch (paper §6.2.2)
    qnli.val_n = 4096;
    qnli.noise = 0.10F;
    qnli.epochs = 20;
    qnli.target = 0.9090;
    m["qnli-sim"] = qnli;

    TaskDef sst2 = glue;   // paper target 91.97%; calibrated run: 0.9199
    sst2.train_n = 6735;   // ~1/10 of SST-2 per epoch
    sst2.val_n = 4096;
    sst2.noise = 0.06F;
    sst2.epochs = 20;
    sst2.target = 0.9197;
    m["sst2-sim"] = sst2;

    TaskDef cola = glue;   // paper target 82.36%; calibrated run: 0.8289
    cola.train_n = 8551;   // full CoLA
    cola.val_n = 4096;
    cola.noise = 0.27F;
    cola.epochs = 25;
    cola.target = 0.8236;
    m["cola-sim"] = cola;

    // BERT-LARGE fine-tuning stand-ins (Figs 2 and 9): small datasets where
    // batch size visibly moves the final accuracy. Reference batch 16 —
    // the batch the paper found best on RTE, reachable on one 2080 Ti only
    // with virtual nodes.
    TaskDef rte = glue;
    rte.train_n = 2490;    // true RTE training-set size
    rte.val_n = 2048;
    rte.noise = 0.26F;
    rte.teacher_hidden = 4;
    rte.dropout = 0.0F;
    rte.global_batch = 16;
    rte.epochs = 10;
    rte.optimizer = "sgd";
    // Cosine decay tuned for batch 16; deliberately NOT retuned elsewhere.
    // At batch 4 this rate is too noisy to converge (the Fig 2 effect),
    // robustly across seeds.
    rte.schedule = "cosine";
    rte.lr = 0.12F;
    rte.target = 0.73;     // paper Fig 2: ~0.73 at batch 16
    m["rte-sim"] = rte;

    TaskDef mrpc = rte;
    mrpc.train_n = 3668;   // true MRPC training-set size
    mrpc.noise = 0.22F;
    mrpc.target = 0.87;
    m["mrpc-sim"] = mrpc;

    return m;
  }();
  return defs;
}

const TaskDef& task_def(const std::string& name) {
  const auto& defs = task_defs();
  const auto it = defs.find(name);
  check(it != defs.end(), "unknown proxy task: " + name);
  return it->second;
}

std::shared_ptr<Dataset> make_dataset(const TaskDef& d, const std::string& name,
                                      std::uint64_t seed, bool validation) {
  const std::int64_t n = validation ? d.val_n : d.train_n;
  // Train and val share the task seed (and hence the GMM centers / teacher
  // weights) but draw disjoint examples via the index offset.
  const std::uint64_t ds_seed = derive_seed(seed, 0x7124);
  const std::int64_t offset = validation ? d.train_n : 0;
  if (d.kind == "gmm") {
    return std::make_shared<GaussianMixtureDataset>(
        name + (validation ? "/val" : "/train"), ds_seed, n, d.dim, d.classes,
        d.noise, offset);
  }
  return std::make_shared<TeacherDataset>(name + (validation ? "/val" : "/train"),
                                          ds_seed, n, d.dim, d.classes,
                                          d.teacher_hidden, d.noise, offset);
}

}  // namespace

ProxyTask make_task(const std::string& name, std::uint64_t seed) {
  const TaskDef& d = task_def(name);
  ProxyTask t;
  t.name = name;
  t.train = make_dataset(d, name, seed, /*validation=*/false);
  t.val = make_dataset(d, name, seed, /*validation=*/true);
  t.target_accuracy = d.target;
  return t;
}

Sequential make_proxy_model(const std::string& task_name, std::uint64_t seed) {
  const TaskDef& d = task_def(task_name);
  CounterRng rng(seed, /*stream=*/0x30DE1);
  Sequential model;
  model.add(std::make_unique<Dense>(d.dim, d.hidden, rng));
  if (d.batch_norm) model.add(std::make_unique<BatchNorm1d>(d.hidden));
  model.add(std::make_unique<Relu>());
  if (d.dropout > 0.0F) model.add(std::make_unique<Dropout>(d.dropout));
  model.add(std::make_unique<Dense>(d.hidden, d.hidden, rng));
  if (d.batch_norm) model.add(std::make_unique<BatchNorm1d>(d.hidden));
  model.add(std::make_unique<Relu>());
  model.add(std::make_unique<Dense>(d.hidden, d.classes, rng));
  return model;
}

TrainRecipe make_recipe(const std::string& task_name) {
  const TaskDef& d = task_def(task_name);
  return make_recipe_with_batch(task_name, d.global_batch);
}

TrainRecipe make_recipe_with_batch(const std::string& task_name,
                                   std::int64_t global_batch) {
  const TaskDef& d = task_def(task_name);
  TrainRecipe r;
  r.global_batch = global_batch;
  r.epochs = d.epochs;
  if (d.optimizer == "sgd") {
    r.optimizer = std::make_unique<Sgd>(/*momentum=*/0.9F, /*weight_decay=*/1e-4F);
  } else {
    r.optimizer = std::make_unique<Adam>();
  }
  // NOTE: the schedule is expressed in steps of the *reference* batch, then
  // rescaled to step counts of the requested batch so that decay happens at
  // the same epoch boundaries. The learning rate itself is NOT rescaled —
  // per the paper's TF* setup, no linear-scaling-rule retuning is applied
  // when the batch changes.
  const std::int64_t steps_per_epoch = std::max<std::int64_t>(1, d.train_n / global_batch);
  const std::int64_t total = steps_per_epoch * d.epochs;
  if (d.schedule == "cosine") {
    r.schedule = std::make_unique<CosineLr>(d.lr, total);
  } else if (d.schedule == "constant" || d.optimizer == "adam") {
    r.schedule = std::make_unique<ConstantLr>(d.lr);
  } else {
    std::int64_t w = d.warmup_frac > 0.0
                         ? static_cast<std::int64_t>(d.warmup_frac * static_cast<double>(total))
                         : d.warmup_steps;
    w = std::clamp<std::int64_t>(w, 1, std::max<std::int64_t>(1, total / 5));
    r.schedule = std::make_unique<WarmupStepDecayLr>(
        d.lr, w,
        std::vector<std::int64_t>{total * 6 / 10, total * 8 / 10}, 0.1F);
  }
  return r;
}

std::vector<std::string> task_names() {
  std::vector<std::string> out;
  for (const auto& [k, v] : task_defs()) out.push_back(k);
  return out;
}

}  // namespace vf
