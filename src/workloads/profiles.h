// Catalog of paper-workload performance profiles.
//
// Calibration anchors (all from the paper):
//  * ResNet-50 parameters = 102.45 MB, activations ~8.17 GB near the max
//    batch on an RTX 2080 Ti (Fig 6), max batch 192 on 2080 Ti, 256 on a
//    16 GB V100 (Fig 18, §6.2.1).
//  * BERT-LARGE max batch 4 on 2080 Ti; Transformer max batch 3072
//    (Fig 18). BERT-BASE batch 64 does not fit one V100 (Table 2).
//  * V100 : P100 ≈ 4 : 1 for ResNet-50-class work (§5.1.2).
#pragma once

#include <string>
#include <vector>

#include "device/model_profile.h"

namespace vf {

/// Profiles by paper name: "resnet50", "resnet56", "bert-base",
/// "bert-large", "transformer". Throws on unknown name.
const ModelProfile& model_profile(const std::string& name);

/// All catalog profile names.
std::vector<std::string> model_profile_names();

}  // namespace vf
