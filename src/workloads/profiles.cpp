#include "workloads/profiles.h"

#include <map>

#include "util/common.h"

namespace vf {

namespace {

ModelProfile resnet50_profile() {
  ModelProfile p;
  p.name = "resnet50";
  p.param_count = 25'610'000;                   // 102.45 MB of fp32 (Fig 6)
  p.flops_per_example = 4.1e9;                  // forward at 224x224
  p.activation_bytes_per_example = 40.6 * kMiB; // -> 8.17 GB at batch 192 (Fig 6)
  p.input_bytes_per_example = 224.0 * 224 * 3 * 4;
  p.workspace_bytes = 788.81e6;                 // "kernel_temp" (Fig 6)
  p.batch_half_saturation = 3.0;                // large conv kernels saturate fast
  p.update_cost_factor = 2.0;                   // SGD + momentum
  return p;
}

ModelProfile resnet56_profile() {
  ModelProfile p;
  p.name = "resnet56";
  p.param_count = 850'000;                      // CIFAR-scale ResNet
  p.flops_per_example = 0.126e9;
  p.activation_bytes_per_example = 1.6 * kMiB;
  p.input_bytes_per_example = 32.0 * 32 * 3 * 4;
  p.workspace_bytes = 64.0 * kMiB;
  p.batch_half_saturation = 48.0;               // tiny kernels need big batches
  p.update_cost_factor = 2.0;
  return p;
}

ModelProfile bert_base_profile() {
  ModelProfile p;
  p.name = "bert-base";
  p.param_count = 110'000'000;                  // 440 MB
  p.flops_per_example = 22.0e9;                 // seq len 128, forward
  p.activation_bytes_per_example = 220.0 * kMiB;// batch 64 > 13.7 GB: OOM on V100 (Table 2)
  p.input_bytes_per_example = 2.0 * kKiB;
  p.workspace_bytes = 512.0 * kMiB;
  p.batch_half_saturation = 4.0;
  p.update_cost_factor = 6.0;                   // Adam/LAMB state + trust ratios
  return p;
}

ModelProfile bert_large_profile() {
  ModelProfile p;
  p.name = "bert-large";
  p.param_count = 340'000'000;                  // 1.36 GB
  p.flops_per_example = 78.0e9;
  p.activation_bytes_per_example = 1.45 * kGiB; // max batch 4 on 2080 Ti (Fig 18)
  p.input_bytes_per_example = 2.0 * kKiB;
  p.workspace_bytes = 512.0 * kMiB;
  p.batch_half_saturation = 0.15;               // huge per-example kernels saturate at once
  p.update_cost_factor = 6.0;                   // expensive LAMB-style update: Fig 17 lever
  return p;
}

ModelProfile transformer_profile() {
  // WMT'14 translation Transformer; "examples" are tokens, matching the
  // token-denominated batch sizes in Table 3 (4096 ... 65536).
  ModelProfile p;
  p.name = "transformer";
  p.param_count = 210'000'000;                  // 840 MB
  p.flops_per_example = 0.42e9;                 // per token, forward
  p.activation_bytes_per_example = 2.4 * kMiB;  // max 3072 tokens on 2080 Ti (Fig 18)
  p.input_bytes_per_example = 8.0;
  p.workspace_bytes = 512.0 * kMiB;
  p.batch_half_saturation = 48.0;
  p.update_cost_factor = 6.0;
  return p;
}

ModelProfile llm_decode_profile() {
  // Token-denominated decoder for the streaming-serving benches (like
  // "transformer", examples are TOKENS): a prefill of P prompt tokens
  // prices as a batch-P forward pass; a decode step prices one token
  // against the full parameter read (decode_pass_time_s). Sized so decode
  // is firmly memory-bandwidth-bound on a V100 — 1.4 GB of weights reads
  // in ~1.56 ms at 900 GB/s, an order of magnitude over the single
  // token's compute — while a 32-token prefill is compute-bound.
  ModelProfile p;
  p.name = "llm-decode";
  p.param_count = 350'000'000;                  // 1.4 GB of fp32
  p.flops_per_example = 0.7e9;                  // per token, forward
  p.activation_bytes_per_example = 2.0 * kMiB;
  p.input_bytes_per_example = 4.0 * kKiB;
  p.workspace_bytes = 512.0 * kMiB;
  p.batch_half_saturation = 2.0;                // wide matmuls saturate early
  p.update_cost_factor = 6.0;
  return p;
}

}  // namespace

const ModelProfile& model_profile(const std::string& name) {
  static const std::map<std::string, ModelProfile> catalog = {
      {"resnet50", resnet50_profile()},       {"resnet56", resnet56_profile()},
      {"bert-base", bert_base_profile()},     {"bert-large", bert_large_profile()},
      {"transformer", transformer_profile()}, {"llm-decode", llm_decode_profile()},
  };
  const auto it = catalog.find(name);
  check(it != catalog.end(), "unknown model profile: " + name);
  return it->second;
}

std::vector<std::string> model_profile_names() {
  return {"resnet50",    "resnet56",    "bert-base",
          "bert-large",  "transformer", "llm-decode"};
}

}  // namespace vf
