// Trainable proxy tasks standing in for the paper's datasets.
//
// Substitution (DESIGN.md §1): ImageNet/GLUE are unavailable, so each paper
// task maps to a deterministic synthetic classification task whose ceiling
// (Bayes) accuracy is calibrated near the paper's reported target accuracy.
// What the reproducibility experiments need from a task is *not* its
// content but its optimization behaviour:
//  * a fixed global batch + tuned hyperparameters reach the target;
//  * shrinking the batch without retuning the learning rate (the TF*
//    baseline) visibly degrades convergence;
//  * on small tasks (rte-sim), batch size materially changes the final
//    accuracy, with an interior optimum (Fig 9).
// Real SGD on these tasks exhibits all three properties for the same
// reason the real workloads do: the per-step gradient noise scales with
// learning rate / batch size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/schedule.h"

namespace vf {

/// A complete proxy task: train/val datasets plus the paper's target
/// accuracy for the corresponding real task.
struct ProxyTask {
  std::string name;
  std::shared_ptr<Dataset> train;
  std::shared_ptr<Dataset> val;
  double target_accuracy = 0.0;  ///< paper-reported accuracy for this task
};

/// Training recipe tuned ONCE for the reference global batch size —
/// VirtualFlow's contract is that this recipe then works unchanged on any
/// hardware configuration.
struct TrainRecipe {
  std::int64_t global_batch = 0;
  std::int64_t epochs = 0;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<LrSchedule> schedule;
};

/// Known tasks: "imagenet-sim", "cifar10-sim", "qnli-sim", "sst2-sim",
/// "cola-sim", "rte-sim", "mrpc-sim". Throws on unknown name.
ProxyTask make_task(const std::string& name, std::uint64_t seed);

/// Proxy model for a task (the "architecture" is fixed per task family so
/// that the only variable across experiments is the hardware mapping).
Sequential make_proxy_model(const std::string& task_name, std::uint64_t seed);

/// Reference recipe for the task (hyperparameters tuned for its reference
/// global batch).
TrainRecipe make_recipe(const std::string& task_name);

/// Recipe with an overridden global batch but otherwise *unchanged*
/// hyperparameters — this is the paper's TF* baseline ("no retuning") and
/// its batch-size exploration mode (Fig 9).
TrainRecipe make_recipe_with_batch(const std::string& task_name,
                                   std::int64_t global_batch);

std::vector<std::string> task_names();

}  // namespace vf
