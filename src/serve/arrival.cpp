#include "serve/arrival.h"

#include <cmath>

#include "util/common.h"
#include "util/rng.h"

namespace vf::serve {

namespace {

// Distinct RNG streams for gaps vs payloads (vs stream shapes) so trace
// length changes never correlate any two of them.
constexpr std::uint64_t kGapStream = 0x5e41'0001;
constexpr std::uint64_t kPayloadStream = 0x5e41'0002;
constexpr std::uint64_t kShapeStream = 0x5e41'0003;

double exponential_gap(CounterRng& rng, double rate_rps) {
  // Inverse-CDF sample; next_double() is in [0, 1) so the log argument is
  // in (0, 1] and the gap is finite.
  return -std::log(1.0 - rng.next_double()) / rate_rps;
}

}  // namespace

std::vector<InferRequest> poisson_trace(std::uint64_t seed, double rate_rps,
                                        std::int64_t count,
                                        std::int64_t example_pool) {
  check(rate_rps > 0.0, "arrival rate must be positive");
  check(count >= 0, "trace length must be non-negative");
  check(example_pool > 0, "example pool must be non-empty");
  CounterRng gaps(seed, kGapStream);
  CounterRng payloads(seed, kPayloadStream);
  std::vector<InferRequest> trace;
  trace.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    t += exponential_gap(gaps, rate_rps);
    InferRequest r;
    r.id = i;
    r.arrival_s = t;
    r.example_index =
        static_cast<std::int64_t>(payloads.next_below(static_cast<std::uint64_t>(example_pool)));
    trace.push_back(r);
  }
  return trace;
}

std::vector<InferRequest> phased_poisson_trace(std::uint64_t seed,
                                               const std::vector<TracePhase>& phases,
                                               std::int64_t example_pool) {
  check(!phases.empty(), "phased trace needs at least one phase");
  check(example_pool > 0, "example pool must be non-empty");
  CounterRng gaps(seed, kGapStream);
  CounterRng payloads(seed, kPayloadStream);
  std::vector<InferRequest> trace;
  double phase_start = 0.0;
  double t = 0.0;
  std::int64_t id = 0;
  for (const TracePhase& ph : phases) {
    check(ph.rate_rps > 0.0, "phase rate must be positive");
    check(ph.duration_s > 0.0, "phase duration must be positive");
    const double phase_end = phase_start + ph.duration_s;
    t = phase_start;
    while (true) {
      t += exponential_gap(gaps, ph.rate_rps);
      if (t >= phase_end) break;
      InferRequest r;
      r.id = id++;
      r.arrival_s = t;
      r.example_index = static_cast<std::int64_t>(
          payloads.next_below(static_cast<std::uint64_t>(example_pool)));
      trace.push_back(r);
    }
    phase_start = phase_end;
  }
  return trace;
}

std::vector<InferRequest> streaming_trace(std::uint64_t seed,
                                          const std::vector<TracePhase>& phases,
                                          std::int64_t example_pool,
                                          const StreamShape& shape) {
  check(shape.stream_fraction >= 0.0 && shape.stream_fraction <= 1.0,
        "stream fraction must be in [0, 1]");
  check(shape.prompt_min >= 1 && shape.prompt_min <= shape.prompt_max,
        "prompt token range must satisfy 1 <= min <= max");
  check(shape.tokens_min >= 1 && shape.tokens_min <= shape.tokens_max,
        "stream token range must satisfy 1 <= min <= max");
  std::vector<InferRequest> trace = phased_poisson_trace(seed, phases, example_pool);
  CounterRng shapes(seed, kShapeStream);
  for (InferRequest& r : trace) {
    // Three draws per request unconditionally, so the annotation of
    // request i never depends on the coins of requests before it.
    const bool is_stream = shapes.next_double() < shape.stream_fraction;
    const auto prompt_span =
        static_cast<std::uint64_t>(shape.prompt_max - shape.prompt_min + 1);
    const auto token_span =
        static_cast<std::uint64_t>(shape.tokens_max - shape.tokens_min + 1);
    const auto prompt =
        shape.prompt_min + static_cast<std::int64_t>(shapes.next_below(prompt_span));
    const auto tokens =
        shape.tokens_min + static_cast<std::int64_t>(shapes.next_below(token_span));
    if (is_stream) {
      r.prompt_tokens = prompt;
      r.stream_tokens = tokens;
    }
  }
  return trace;
}

}  // namespace vf::serve
