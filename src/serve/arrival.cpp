#include "serve/arrival.h"

#include <cmath>

#include "util/common.h"
#include "util/rng.h"

namespace vf::serve {

namespace {

// Distinct RNG streams for gaps vs payloads so trace length changes never
// correlate the two.
constexpr std::uint64_t kGapStream = 0x5e41'0001;
constexpr std::uint64_t kPayloadStream = 0x5e41'0002;

double exponential_gap(CounterRng& rng, double rate_rps) {
  // Inverse-CDF sample; next_double() is in [0, 1) so the log argument is
  // in (0, 1] and the gap is finite.
  return -std::log(1.0 - rng.next_double()) / rate_rps;
}

}  // namespace

std::vector<InferRequest> poisson_trace(std::uint64_t seed, double rate_rps,
                                        std::int64_t count,
                                        std::int64_t example_pool) {
  check(rate_rps > 0.0, "arrival rate must be positive");
  check(count >= 0, "trace length must be non-negative");
  check(example_pool > 0, "example pool must be non-empty");
  CounterRng gaps(seed, kGapStream);
  CounterRng payloads(seed, kPayloadStream);
  std::vector<InferRequest> trace;
  trace.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (std::int64_t i = 0; i < count; ++i) {
    t += exponential_gap(gaps, rate_rps);
    InferRequest r;
    r.id = i;
    r.arrival_s = t;
    r.example_index =
        static_cast<std::int64_t>(payloads.next_below(static_cast<std::uint64_t>(example_pool)));
    trace.push_back(r);
  }
  return trace;
}

std::vector<InferRequest> phased_poisson_trace(std::uint64_t seed,
                                               const std::vector<TracePhase>& phases,
                                               std::int64_t example_pool) {
  check(!phases.empty(), "phased trace needs at least one phase");
  check(example_pool > 0, "example pool must be non-empty");
  CounterRng gaps(seed, kGapStream);
  CounterRng payloads(seed, kPayloadStream);
  std::vector<InferRequest> trace;
  double phase_start = 0.0;
  double t = 0.0;
  std::int64_t id = 0;
  for (const TracePhase& ph : phases) {
    check(ph.rate_rps > 0.0, "phase rate must be positive");
    check(ph.duration_s > 0.0, "phase duration must be positive");
    const double phase_end = phase_start + ph.duration_s;
    t = phase_start;
    while (true) {
      t += exponential_gap(gaps, ph.rate_rps);
      if (t >= phase_end) break;
      InferRequest r;
      r.id = id++;
      r.arrival_s = t;
      r.example_index = static_cast<std::int64_t>(
          payloads.next_below(static_cast<std::uint64_t>(example_pool)));
      trace.push_back(r);
    }
    phase_start = phase_end;
  }
  return trace;
}

}  // namespace vf::serve
