// SloTracker: per-request latency accounting and SLO percentiles.
//
// Latency decomposes exactly the way the serving loop spends virtual time:
// queue wait (admission -> batch formation) + cost-model compute + result
// comm. Percentiles use util/stats (linear interpolation between order
// statistics) over completed requests only; rejected requests are counted
// separately — a rejection is an SLO event of its own, not an infinite
// latency sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/request.h"

namespace vf::serve {

/// Aggregate serving quality over one replay. All fields are well-defined
/// for any sample count — with zero completions the percentiles, means,
/// and rates are exactly 0.0 (never NaN); with one sample every percentile
/// equals that sample.
struct SloSummary {
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t deadline_misses = 0;
  /// Completed requests that survived at least one fault eviction, and the
  /// total evictions across them — the retry/requeue read-out of the fault
  /// story (docs/fault_tolerance.md). Queue-wait stats above already count
  /// pre-eviction waits (RequestRecord::queue_wait_s is the honest total).
  std::int64_t retried = 0;
  std::int64_t retries = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  /// Fraction of *admitted* requests that met the deadline.
  double hit_rate = 0.0;
  // Latency decomposition: latency = queue wait (arrival -> dispatch) +
  // in-flight time (dispatch -> completion). Continuous batching exists to
  // shrink the first term; the A/B bench compares exactly these.
  double mean_queue_wait_s = 0.0;
  double p95_queue_wait_s = 0.0;
  double p99_queue_wait_s = 0.0;
  double mean_inflight_s = 0.0;

  // Token-streaming read-outs, over streamed completions only (all zero in
  // a pure-classify replay). TTFT — arrival to first token — is the SLO a
  // streaming client feels; inter-token latency (ITL, consecutive token
  // stamp gaps) is the cadence of the decode chain afterwards.
  std::int64_t streams = 0;       ///< completed streamed requests
  std::int64_t tokens = 0;        ///< total tokens across completed streams
  double p50_ttft_s = 0.0;
  double p95_ttft_s = 0.0;
  double p99_ttft_s = 0.0;
  double mean_itl_s = 0.0;
  double p99_itl_s = 0.0;
};

class SloTracker {
 public:
  /// `deadline_s` is the per-request latency SLO: arrival -> completion
  /// for classify requests, arrival -> FIRST TOKEN (TTFT) for token
  /// streams — a stream's total latency scales with its requested length,
  /// so responsiveness, not completion, is the meaningful deadline.
  explicit SloTracker(double deadline_s);

  double deadline_s() const { return deadline_s_; }

  /// Records a served request; stamps `deadline_met` from the tracker's SLO.
  void record_completion(RequestRecord r);

  /// Records an admission-time rejection (queue full) at time `now_s`.
  void record_rejection(const InferRequest& r, double now_s);

  std::int64_t completed() const;
  std::int64_t rejected() const;

  /// Latency percentile over completed requests, p in [0, 1]. Returns 0.0
  /// when nothing has completed (an empty replay has no latency, not an
  /// undefined one); a single sample is every percentile of itself.
  double latency_percentile_s(double p) const;

  /// Queue-wait percentile over completed requests; same edge-case
  /// semantics as latency_percentile_s.
  double queue_wait_percentile_s(double p) const;

  SloSummary summary() const;

  /// Every record in completion/rejection order — the bit-exactness
  /// witness the determinism tests and bench_serving compare across
  /// worker counts.
  const std::vector<RequestRecord>& records() const { return records_; }

  /// Attaches per-request metrics under `prefix`: completion/rejection/
  /// deadline-miss counters plus latency and queue-wait histograms
  /// (fixed edges; see docs/metrics.md). The registry must outlive the
  /// tracker; instrument pointers are cached so the record path stays
  /// allocation-free. Null detaches.
  void set_metrics(obs::MetricsRegistry* metrics, const std::string& prefix);

  /// Writes `summary()` into `metrics` as "<prefix>slo.*" gauges stamped
  /// at virtual time `now_s` — the SloTracker summary export the serving
  /// loops call once per replay.
  static void export_summary(const SloSummary& s, obs::MetricsRegistry& metrics,
                             const std::string& prefix, double now_s);

 private:
  double deadline_s_;
  std::vector<RequestRecord> records_;
  std::int64_t completed_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t retried_ = 0;
  std::int64_t retries_ = 0;
  // Cached instrument pointers (null = off); see set_metrics.
  obs::Counter* completions_ = nullptr;
  obs::Counter* rejections_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
};

}  // namespace vf::serve
