// BatchFormer: packs queued requests into per-VN inference micro-batches.
//
// Determinism contract: both decisions the former makes — *when* a batch
// forms and *which* requests it contains — are pure functions of the queue
// contents and the virtual clock. A batch forms when `max_batch` requests
// are waiting, or when the oldest request has waited `max_wait_s` (the
// classic size-or-timeout policy); it always takes the FIFO prefix; and it
// packs that prefix onto virtual nodes in ascending VN-id order, each VN
// taking at most its mapping batch share. Nothing depends on host threads
// or execution order, so a replayed trace forms identical batches under
// any `num_threads` — the property tests/serve/test_batch_former.cpp pins.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mapping.h"
#include "serve/request_queue.h"

namespace vf::serve {

/// Size-or-timeout batching policy.
struct BatchPolicy {
  std::int64_t max_batch = 32;  ///< form as soon as this many are queued
  double max_wait_s = 0.05;     ///< ... or the oldest has waited this long
};

/// One virtual node's share of a formed batch: positions into the formed
/// request vector (FIFO prefix), in order.
struct VnPack {
  std::int32_t vn = 0;
  std::vector<std::int64_t> positions;
};

class BatchFormer {
 public:
  explicit BatchFormer(BatchPolicy policy);

  const BatchPolicy& policy() const { return policy_; }

  /// How many requests to take from the queue front at virtual time
  /// `now_s`; 0 means keep waiting. Never exceeds `max_batch` — a deeper
  /// queue drains over consecutive batches.
  std::int64_t ready_count(const RequestQueue& q, double now_s) const;

  /// Earliest virtual time at which the *current* queue contents would
  /// form a batch (the oldest request's timeout). Only meaningful when the
  /// queue is non-empty and ready_count() == 0; a later arrival can only
  /// move the formation earlier, never later.
  double timeout_deadline_s(const RequestQueue& q) const;

  /// Packs `count` formed requests onto virtual nodes: ascending VN id,
  /// VN v taking at most mapping.vn_batch(v) requests. `count` must not
  /// exceed the mapping's global batch (the serving capacity of one
  /// formed batch).
  std::vector<VnPack> pack(std::int64_t count, const VnMapping& mapping) const;

 private:
  BatchPolicy policy_;
};

}  // namespace vf::serve
