#include "serve/server.h"

#include <algorithm>
#include <limits>

#include "data/batch.h"
#include "util/common.h"

namespace vf::serve {

Server::Server(VirtualFlowEngine& engine, const Dataset& request_pool,
               ServerConfig config)
    : engine_(engine),
      request_pool_(request_pool),
      config_(config),
      queue_(config.queue_capacity),
      former_(config.batch),
      tracker_(config.deadline_s) {
  if (config_.elastic.enabled) {
    const ElasticPolicy& e = config_.elastic;
    check(e.min_devices >= 1, "elastic min_devices must be >= 1");
    check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
    check(e.max_devices <= engine_.mapping().total_vns(),
          "elastic max_devices (" + std::to_string(e.max_devices) +
              ") exceeds the virtual-node count (" +
              std::to_string(engine_.mapping().total_vns()) +
              "); devices beyond the VN count would idle");
    check(e.high_watermark > e.low_watermark,
          "elastic watermarks must satisfy high > low (hysteresis)");
    check(e.cooldown_batches >= 0, "elastic cooldown must be non-negative");
  }
}

void Server::replay(const std::vector<InferRequest>& trace) {
  check(!replayed_, "a Server replays exactly one trace");
  replayed_ = true;
  for (std::size_t i = 1; i < trace.size(); ++i)
    check(trace[i - 1].arrival_s <= trace[i].arrival_s,
          "trace must be sorted by arrival time");

  std::size_t next_arrival = 0;
  // Admits every arrival up to the current virtual time, in trace order.
  // Rejections (queue full) happen at the request's own arrival stamp.
  const auto admit_up_to_clock = [&]() {
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= clock_) {
      const InferRequest& r = trace[next_arrival];
      if (!queue_.push(r)) tracker_.record_rejection(r, r.arrival_s);
      ++next_arrival;
    }
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (true) {
    admit_up_to_clock();

    const std::int64_t ready = former_.ready_count(queue_, clock_);
    if (ready == 0) {
      // Nothing to form yet: jump to the next event — the oldest queued
      // request's timeout or the next arrival, whichever is earlier.
      double next_t = kInf;
      if (!queue_.empty()) next_t = former_.timeout_deadline_s(queue_);
      if (next_arrival < trace.size())
        next_t = std::min(next_t, trace[next_arrival].arrival_s);
      if (next_t == kInf) break;  // queue drained, trace exhausted
      clock_ = std::max(clock_, next_t);
      continue;
    }

    execute_batch(std::min(ready, engine_.mapping().global_batch()));
    // The batch advanced the clock; admit everything that arrived during
    // its service window so the resize decision sees the true depth (a
    // burst's pressure registers the batch it builds up in, not one
    // batch later).
    admit_up_to_clock();
    batches_.back().queue_depth_after = queue_.size();
    maybe_resize();
  }
}

void Server::execute_batch(std::int64_t take) {
  const double start = clock_;
  const std::vector<InferRequest> batch = queue_.pop(take);
  const std::vector<VnPack> packs = former_.pack(take, engine_.mapping());

  // Packs take FIFO positions contiguously in ascending VN order, so the
  // engine's slice-ordered prediction vector lines up with batch position.
  std::vector<InferSlice> slices;
  slices.reserve(packs.size());
  for (const VnPack& p : packs) {
    std::vector<std::int64_t> idx;
    idx.reserve(p.positions.size());
    for (const std::int64_t pos : p.positions)
      idx.push_back(batch[static_cast<std::size_t>(pos)].example_index);
    InferSlice s;
    s.vn = p.vn;
    s.features = gather_micro_batch(request_pool_, idx).features;
    slices.push_back(std::move(s));
  }

  const InferStats stats = engine_.infer(slices);
  const double finish = start + stats.compute_s + stats.comm_s;

  for (std::int64_t p = 0; p < take; ++p) {
    const InferRequest& r = batch[static_cast<std::size_t>(p)];
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival_s = r.arrival_s;
    rec.queue_wait_s = start - r.arrival_s;
    rec.compute_s = stats.compute_s;
    rec.comm_s = stats.comm_s;
    rec.finish_s = finish;
    rec.prediction = stats.predictions[static_cast<std::size_t>(p)];
    tracker_.record_completion(std::move(rec));
  }

  clock_ = finish;
  ++batches_since_resize_;
  BatchEvent ev;
  ev.start_s = start;
  ev.finish_s = finish;
  ev.size = take;
  ev.devices = static_cast<std::int64_t>(engine_.devices().size());
  // queue_depth_after is finalized by replay() once the arrivals that
  // landed during this batch's service window are admitted.
  ev.queue_depth_after = queue_.size();
  batches_.push_back(ev);
}

void Server::maybe_resize() {
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (batches_since_resize_ < e.cooldown_batches) return;

  const std::int64_t depth = queue_.size();
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  std::int64_t target = cur;
  if (depth >= e.high_watermark && cur < e.max_devices) {
    target = std::min(cur * 2, e.max_devices);
  } else if (depth <= e.low_watermark && cur > e.min_devices) {
    target = std::max(cur / 2, e.min_devices);
  }
  if (target == cur) return;

  // The engine charges the seamless all-gather migration to its own
  // simulated clock; serving requests queue behind it on ours.
  const double before = engine_.sim_time_s();
  engine_.resize(make_devices(e.device, target));
  const double migration = engine_.sim_time_s() - before;
  clock_ += migration;

  ResizeEvent ev;
  ev.time_s = clock_;
  ev.from_devices = cur;
  ev.to_devices = target;
  ev.queue_depth = depth;
  ev.migration_s = migration;
  resizes_.push_back(ev);
  batches_since_resize_ = 0;
}

}  // namespace vf::serve
