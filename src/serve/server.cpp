#include "serve/server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "data/batch.h"
#include "sched/elastic.h"
#include "util/common.h"

namespace vf::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Server::Server(VirtualFlowEngine& engine, const Dataset& request_pool,
               ServerConfig config)
    : engine_(engine),
      request_pool_(request_pool),
      config_(config),
      queue_(config.queue_capacity),
      former_(config.batch),
      tracker_(config.deadline_s),
      dispatcher_(engine, request_pool) {
  // Backpressure accounting lives at the backpressure point: the queue
  // reports every dropped request (with its id) straight to the tracker
  // (and, when a recorder is attached, as a "reject" marker on the control
  // track), so both replay modes share one drop-accounting path.
  queue_.set_reject_observer([this](const InferRequest& r, double now_s) {
    tracker_.record_rejection(r, now_s);
    if (obs_.trace != nullptr)
      obs_.trace->instant("reject", now_s, /*device=*/-1, /*vn=*/-1,
                          /*model=*/-1, /*arg0=*/r.id);
  });
  // Deadline-aware load shedding (opt-in): requests already past the SLO
  // at admission are bounced at the door rather than queued to a miss.
  if (config_.shed_expired) queue_.set_deadline(config_.deadline_s);
  if (config_.elastic.enabled) {
    const ElasticPolicy& e = config_.elastic;
    check(e.min_devices >= 1, "elastic min_devices must be >= 1");
    check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
    check(e.max_devices <= engine_.mapping().total_vns(),
          "elastic max_devices (" + std::to_string(e.max_devices) +
              ") exceeds the virtual-node count (" +
              std::to_string(engine_.mapping().total_vns()) +
              "); devices beyond the VN count would idle");
    check(e.high_watermark > e.low_watermark,
          "elastic watermarks must satisfy high > low (hysteresis)");
    check(e.cooldown_batches >= 0, "elastic cooldown must be non-negative");
  }
}

void Server::set_observability(obs::Observability obs) {
  check(!replayed_, "attach observability before replay()");
  obs_ = obs;
  dispatcher_.set_observability(obs, /*model=*/-1, "serve.");
  tracker_.set_metrics(obs.metrics, "serve.");
}

void Server::set_fault_injector(fault::FaultInjector* injector) {
  check(!replayed_, "attach the fault injector before replay()");
  check(injector == nullptr || config_.continuous,
        "fault injection requires continuous batching "
        "(ServerConfig::continuous) — recovery re-dispatches through the "
        "slot ledger, which batch-boundary mode has no notion of");
  injector_ = injector;
}

void Server::replay(const std::vector<InferRequest>& trace) {
  if (config_.continuous) {
    begin(trace);
    pump(kInf);
    finish();
    return;
  }
  check(!replayed_, "a Server replays exactly one trace");
  replayed_ = true;
  for (std::size_t i = 1; i < trace.size(); ++i)
    check(trace[i - 1].arrival_s <= trace[i].arrival_s,
          "trace must be sorted by arrival time");
  for (const InferRequest& r : trace)
    check(!TokenStreamer::is_stream(r),
          "token streams require continuous batching "
          "(ServerConfig::continuous) — a stream is a slice chain through "
          "a VN slot, which batch-boundary mode has no notion of");
  replay_batch_boundary(trace);
  finish();
}

void Server::set_cluster_governed() {
  check(!replayed_, "switch to cluster governance before replay()/begin()");
  check(config_.continuous,
        "cluster governance requires continuous batching — grants reuse "
        "the seamless slice-level resize path");
  // The ElasticPolicy band parameterizes the load() signal even when the
  // internal loop is off, so it must be coherent regardless of `enabled`.
  const ElasticPolicy& e = config_.elastic;
  check(e.min_devices >= 1, "elastic min_devices must be >= 1");
  check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
  check(e.max_devices <= engine_.mapping().total_vns(),
        "elastic max_devices exceeds the virtual-node count");
  check(e.high_watermark > e.low_watermark,
        "elastic watermarks must satisfy high > low (hysteresis)");
  cluster_governed_ = true;
}

void Server::begin(const std::vector<InferRequest>& trace) {
  check(!replayed_, "a Server replays exactly one trace");
  check(config_.continuous,
        "externally stepped serving requires continuous batching");
  replayed_ = true;
  for (std::size_t i = 1; i < trace.size(); ++i)
    check(trace[i - 1].arrival_s <= trace[i].arrival_s,
          "trace must be sorted by arrival time");
  flight_ = std::make_unique<Flight>(
      trace, engine_.mapping().total_vns(),
      static_cast<std::int64_t>(request_pool_.size()),
      engine_.devices().size());
  flight_->ledger.set_metrics(obs_.metrics, "serve.");
}

void Server::finish() {
  if (finished_) return;
  finished_ = true;
  if (obs_.metrics != nullptr) {
    SloTracker::export_summary(tracker_.summary(), *obs_.metrics, "serve.",
                               clock_);
    obs_.metrics->gauge("serve.devices")
        .set(static_cast<double>(engine_.devices().size()), clock_);
  }
}

double Server::next_event_s() const {
  if (flight_ == nullptr) return kInf;
  return next_event_internal();
}

bool Server::drained() const {
  if (flight_ == nullptr) return false;
  const Flight& f = *flight_;
  return f.next_arrival == f.trace->size() && queue_.empty() &&
         f.ledger.all_free() && !f.streamer.has_paused() &&
         f.continuations.empty();
}

sched::LoadSignal Server::load() const {
  check(flight_ != nullptr, "begin() a trace before reading the load signal");
  const ElasticPolicy& e = config_.elastic;
  sched::LoadSignal s;
  s.queue_depth = queue_.size();
  s.inflight =
      flight_->ledger.inflight_requests() + flight_->streamer.paused_streams();
  s.devices = static_cast<std::int64_t>(engine_.devices().size());
  // Killed devices cap the live ceiling until their recover events lift
  // it — the cluster policy must not re-grow onto hardware that is gone.
  std::int64_t max_dev = e.max_devices;
  if (injector_ != nullptr)
    max_dev = std::max<std::int64_t>(
        1, std::min(max_dev, injector_->capacity_cap(e.max_devices)));
  s.max_devices = max_dev;
  s.min_devices = std::min(e.min_devices, max_dev);
  s.high_watermark = e.high_watermark;
  s.low_watermark = e.low_watermark;
  s.deadline_s = config_.deadline_s;
  if (!queue_.empty())
    s.oldest_wait_s = std::max(0.0, clock_ - queue_.front().enqueued_s());
  s.drained = drained();
  return s;
}

double Server::apply_grant(std::int64_t devices) {
  check(cluster_governed_,
        "apply_grant() requires cluster governance (set_cluster_governed)");
  check(flight_ != nullptr, "begin() a trace before granting devices");
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  if (devices == cur) return 0.0;
  check(devices >= 1, "a device grant must keep at least one device");
  check(devices <= engine_.mapping().total_vns(),
        "device grant exceeds the virtual-node count");
  const double before = clock_;
  perform_resize(devices, queue_.size());
  flight_->device_free.assign(engine_.devices().size(), clock_);
  // Arrivals that landed during the migration window queue behind it.
  admit_up_to_clock();
  return clock_ - before;
}

void Server::replay_batch_boundary(const std::vector<InferRequest>& trace) {
  std::size_t next_arrival = 0;
  // Admits every arrival up to the current virtual time, in trace order.
  // Rejections (queue full) happen at the request's own arrival stamp;
  // with shedding on, expired requests bounce at the admission stamp.
  const auto admit_up_to_clock = [&]() {
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= clock_) {
      if (config_.shed_expired) {
        queue_.push(trace[next_arrival], clock_);
      } else {
        queue_.push(trace[next_arrival]);
      }
      ++next_arrival;
    }
  };

  while (true) {
    admit_up_to_clock();

    const std::int64_t ready = former_.ready_count(queue_, clock_);
    if (ready == 0) {
      // Nothing to form yet: jump to the next event — the oldest queued
      // request's timeout or the next arrival, whichever is earlier.
      double next_t = kInf;
      if (!queue_.empty()) next_t = former_.timeout_deadline_s(queue_);
      if (next_arrival < trace.size())
        next_t = std::min(next_t, trace[next_arrival].arrival_s);
      if (next_t == kInf) break;  // queue drained, trace exhausted
      clock_ = std::max(clock_, next_t);
      continue;
    }

    execute_batch(std::min(ready, engine_.mapping().global_batch()));
    // The batch advanced the clock; admit everything that arrived during
    // its service window so the resize decision sees the true depth (a
    // burst's pressure registers the batch it builds up in, not one
    // batch later).
    admit_up_to_clock();
    batches_.back().queue_depth_after = queue_.size();
    if (obs_.trace != nullptr)
      obs_.trace->set_queue_depth(batches_.back().trace_span,
                                  batches_.back().queue_depth_after);
    maybe_resize();
  }
}

void Server::admit_up_to_clock() {
  Flight& f = *flight_;
  while (f.next_arrival < f.trace->size() &&
         (*f.trace)[f.next_arrival].arrival_s <= clock_) {
    if (config_.shed_expired) {
      queue_.push((*f.trace)[f.next_arrival], clock_);
    } else {
      queue_.push((*f.trace)[f.next_arrival]);
    }
    ++f.next_arrival;
  }
}

// Injected comm fault (one-shot): the next dispatched slice retries its
// logits return — one extra comm charge delays that slice's completion.
Slot Server::with_comm_fault(Slot slot) {
  if (injector_ != nullptr && injector_->take_comm_fault()) {
    slot.done_s += slot.comm_s;
    slot.comm_s *= 2.0;
  }
  return slot;
}

// Finalizes the newest slice event's trace span with the queue depth the
// event recorded (a no-op without a recorder or span).
void Server::finalize_span_depth() {
  if (obs_.trace != nullptr)
    obs_.trace->set_queue_depth(batches_.back().trace_span,
                                batches_.back().queue_depth_after);
}

// Completion transition, in (done_s, VN id) order. Classify slices free
// their slot and record their requests; stream slices stamp one token
// and either chain (continuation), retire (last token), or — under
// disaggregated scheduling — yield the slot to a queued prefill at this
// token boundary.
void Server::complete_due() {
  Flight& f = *flight_;
  for (const std::int32_t vn : f.ledger.due(clock_)) {
    if (f.ledger.slot(vn).kind == SliceKind::kClassify) {
      const Slot done = f.ledger.complete(vn);
      record_slice_requests(done, tracker_);
      ++work_since_resize_;
      batches_.push_back(make_slice_event(done, vn, queue_.size()));
      finalize_span_depth();
      continue;
    }
    const bool more = f.streamer.absorb(vn, f.ledger.slot(vn));
    ++work_since_resize_;
    batches_.push_back(make_slice_event(f.ledger.slot(vn), vn, queue_.size()));
    finalize_span_depth();
    if (!more) {
      f.ledger.complete(vn);
      tracker_.record_completion(f.streamer.finish(vn));
    } else if (config_.stream.disaggregate && !f.streamer.has_paused() &&
               f.ledger.lowest_free() < 0 && !queue_.empty() &&
               TokenStreamer::is_stream(queue_.front())) {
      // Token-boundary preemption: every slot is busy and a stream heads
      // the queue — park this stream (at most one parked at a time, so
      // churn stays bounded) and lend its slot to the waiting prefill.
      // Admissions run before resumes within an instant, so the freed
      // slot goes to the queue first and the parked stream takes the
      // next one.
      const Slot freed = f.ledger.complete(vn);
      f.streamer.pause(vn);
      if (obs_.trace != nullptr)
        obs_.trace->instant("preempt", clock_,
                            static_cast<std::int32_t>(freed.device), vn,
                            /*model=*/-1);
      if (obs_.metrics != nullptr)
        obs_.metrics->counter("serve.preemptions").add();
    } else {
      f.continuations.push_back(vn);
    }
  }
}

// Fault transition: fires every injected event due at the current stamp.
// Ordering contract: complete_due runs first within an instant, so a
// slice finishing exactly at a kill's stamp survives (its work is done;
// only un-finished work is on the dead device). A kill evicts the dead
// device's in-flight slices — classify/prefill requests requeue at the
// queue head with honest retry stamps, decode chains park and later
// resume from their last landed token — then remaps its VNs onto the
// survivors through the engine's seamless-migration machinery. Eviction
// matches slices by their dispatch-time device slot; a slice that
// straddled an elastic resize keeps its old slot index (the documented
// approximation — see docs/fault_tolerance.md).
void Server::process_faults_due() {
  if (injector_ == nullptr) return;
  Flight& f = *flight_;
  for (const fault::FaultEvent& ev : injector_->due(clock_)) {
    FaultRecord rec;
    rec.time_s = clock_;
    rec.kind = ev.kind;
    rec.device = ev.device;
    switch (ev.kind) {
      case fault::FaultKind::kKill: {
        const auto ndev = static_cast<std::int64_t>(engine_.devices().size());
        if (ndev <= 1) {
          // The last device cannot die without ending the replay; the
          // kill is skipped (capacity loss reverted) and recorded.
          injector_->kill_skipped();
          rec.skipped = true;
          break;
        }
        const std::int64_t dead = ev.device % ndev;
        rec.device = dead;
        std::vector<InferRequest> requeue;
        for (std::int32_t vn = 0; vn < f.ledger.total_slots(); ++vn) {
          const Slot& s = f.ledger.slot(vn);
          if (!s.busy || s.device != dead) continue;
          // A slice absorbed this instant (pending decode continuation)
          // finished before the kill; its chain re-dispatches on the
          // post-migration mapping below.
          if (std::find(f.continuations.begin(), f.continuations.end(), vn) !=
              f.continuations.end())
            continue;
          Slot evicted = f.ledger.evict(vn);
          ++rec.evicted_slices;
          if (evicted.kind == SliceKind::kClassify) {
            for (InferRequest& r : evicted.requests) {
              r.queue_wait_accum_s += evicted.dispatch_s - r.enqueued_s();
              ++r.retries;
              requeue.push_back(std::move(r));
            }
          } else if (evicted.kind == SliceKind::kPrefill) {
            // No token landed yet: abort the stream and requeue the
            // request; its next prefill restarts the chain.
            InferRequest r = f.streamer.cancel(vn);
            r.queue_wait_accum_s += evicted.dispatch_s - r.enqueued_s();
            ++r.retries;
            requeue.push_back(std::move(r));
          } else {
            // Decode chain with landed tokens: never recompute them —
            // park the stream; resume re-dispatches only the lost token.
            f.streamer.mark_retry(vn);
            f.streamer.pause(vn);
          }
        }
        // VN remap onto the survivors (the paper's fault story §7),
        // charged to the serving clock like any elastic migration.
        const double before = engine_.sim_time_s();
        engine_.fail_device(dead);
        const double migration = engine_.sim_time_s() - before;
        clock_ += migration;
        rec.migration_s = migration;
        rec.requeued_requests = static_cast<std::int64_t>(requeue.size());
        // Requeue at the head, lowest id first (in-flight requests are
        // always older than anything queued, so FIFO order is restored).
        std::sort(requeue.begin(), requeue.end(),
                  [](const InferRequest& a, const InferRequest& b) {
                    return a.id < b.id;
                  });
        for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
          it->requeue_s = clock_;
          queue_.push_front(*it);
        }
        f.device_free.assign(engine_.devices().size(), clock_);
        // The migration landed the VNs on fresh slots; re-apply any
        // straggler windows still active.
        injector_->apply_slowdowns(engine_);
        work_since_resize_ = 0;
        ResizeEvent rev;
        rev.time_s = clock_;
        rev.from_devices = ndev;
        rev.to_devices = ndev - 1;
        rev.queue_depth = queue_.size();
        rev.migration_s = migration;
        resizes_.push_back(rev);
        if (obs_.metrics != nullptr) {
          obs_.metrics->counter("serve.faults.requeued").add(rec.requeued_requests);
          obs_.metrics->gauge("serve.devices")
              .set(static_cast<double>(ndev - 1), clock_);
        }
        break;
      }
      case fault::FaultKind::kRecover:
        // Capacity returns to the elastic budget (capacity_cap); the
        // resize rule re-grows on observed load, not on the event. Under
        // cluster governance the recover lifts the lease's advertised
        // ceiling (load()), and the next policy grant re-expands.
        break;
      case fault::FaultKind::kStragglerStart:
      case fault::FaultKind::kStragglerEnd:
        injector_->apply_slowdowns(engine_);
        break;
      case fault::FaultKind::kCommFault:
        // One-shot; consumed by the next dispatch (with_comm_fault).
        break;
    }
    faults_.push_back(rec);
  }
}

// Resize decisions use the same hysteresis as batch mode, and the
// resize itself is as seamless as the paper's: in-flight slices keep
// the completion times the old mapping scheduled for them (compute is
// never interrupted), while the migration charge lands on the clock and
// so on every *subsequent* dispatch — the new device set starts clean
// once the all-gather is done.
//
// Under cluster governance the local rule is disabled outright: the
// ClusterController owns the device count and the same signals flow to
// it through load() instead (elastic_resize_target demoted to one input
// of the policy's desired-size derivation).
void Server::resize_if_needed() {
  if (cluster_governed_) return;
  Flight& f = *flight_;
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (work_since_resize_ < e.cooldown_batches) return;
  const std::int64_t depth = queue_.size();
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  // The shared hysteresis rule (src/sched/elastic.h) acts on *system*
  // load — queue plus in-flight — in both directions: the queue empties
  // the instant a burst is admitted into slots, so depth alone both
  // shrinks too eagerly and (the PR-6 blind spot) fails to grow while
  // every slot saturates under a shallow queue. Parked streams count as
  // in-flight: each holds an un-served request that is merely between
  // slots.
  // Killed devices are budget loss: the elastic ceiling drops by the
  // capacity currently dead (floored at min_devices), so the rule
  // degrades gracefully instead of re-growing onto hardware that is
  // gone, and re-expands when a recover lifts the cap.
  std::int64_t max_dev = e.max_devices;
  if (injector_ != nullptr)
    max_dev = std::max(e.min_devices,
                       std::min(max_dev, injector_->capacity_cap(e.max_devices)));
  const std::int64_t target = sched::elastic_resize_target(
      depth, f.ledger.inflight_requests() + f.streamer.paused_streams(), cur,
      e.high_watermark, e.low_watermark, e.min_devices, max_dev);
  if (target == cur) return;
  perform_resize(target, depth);
  f.device_free.assign(engine_.devices().size(), clock_);
  // Arrivals that landed during the migration window queue behind it.
  admit_up_to_clock();
}

// Admit transition: fill free slots (lowest VN id first) from the FIFO
// prefix. A stream admits alone — one prefill slice claims the whole
// slot. Classify requests pool into slices as before: a slice
// dispatches when a full slice's worth is waiting, when the oldest
// request has timed out, or when a queued stream blocks the prefix (the
// classify prefix is then complete by definition — FIFO order never
// lets a classify slice jump over a stream).
void Server::try_dispatch() {
  Flight& f = *flight_;
  while (!queue_.empty()) {
    const std::int32_t vn = f.ledger.lowest_free();
    if (vn < 0) break;
    if (TokenStreamer::is_stream(queue_.front())) {
      std::vector<InferRequest> one = queue_.pop(1);
      f.ledger.admit(vn, with_comm_fault(f.streamer.prefill(
                             dispatcher_, vn, clock_, f.device_free,
                             std::move(one.front()))));
      continue;
    }
    const std::int64_t cap = engine_.mapping().vn_batch(vn);
    std::int64_t prefix = 0;
    while (prefix < queue_.size() && prefix < cap &&
           !TokenStreamer::is_stream(queue_.at(prefix)))
      ++prefix;
    const bool full_slice = prefix >= cap || prefix < queue_.size();
    const bool timed_out =
        clock_ >= queue_.front().arrival_s + config_.batch.max_wait_s;
    if (!full_slice && !timed_out) break;
    f.ledger.admit(vn, with_comm_fault(dispatcher_.dispatch_classify(
                           vn, clock_, f.device_free, queue_.pop(prefix))));
  }
}

// Chain transition: swap each finished stream slice for its next decode
// slice in the same (still busy) slot.
void Server::readmit_continuations() {
  Flight& f = *flight_;
  for (const std::int32_t vn : f.continuations)
    f.ledger.readmit(vn, with_comm_fault(f.streamer.next_decode(
                             dispatcher_, vn, clock_, f.device_free)));
  f.continuations.clear();
}

// Un-park transition: paused streams take free slots left over after
// admissions (disaggregated mode only; FIFO never pauses).
void Server::try_resumes() {
  Flight& f = *flight_;
  while (f.streamer.has_paused()) {
    const std::int32_t vn = f.ledger.lowest_free();
    if (vn < 0) break;
    f.ledger.admit(vn,
                   with_comm_fault(f.streamer.resume(dispatcher_, vn, clock_,
                                                     f.device_free)));
  }
}

// Next event: earliest in-flight completion, next arrival, or — when
// a partial classify slice is waiting on a free slot — the oldest
// request's timeout. (A stream at the head of the queue needs no
// timeout term: it is always dispatchable, so if it is still queued
// here there is no free slot and a completion must come first.)
double Server::next_event_internal() const {
  const Flight& f = *flight_;
  double next_t = f.ledger.earliest_done_s();
  if (f.next_arrival < f.trace->size())
    next_t = std::min(next_t, (*f.trace)[f.next_arrival].arrival_s);
  if (!queue_.empty() && !TokenStreamer::is_stream(queue_.front()) &&
      f.ledger.lowest_free() >= 0)
    next_t = std::min(next_t,
                      queue_.front().arrival_s + config_.batch.max_wait_s);
  if (injector_ != nullptr) next_t = std::min(next_t, injector_->next_event_s());
  return next_t;
}

void Server::pump(double horizon_s) {
  check(flight_ != nullptr, "begin() a trace before pump()");
  while (true) {
    admit_up_to_clock();
    complete_due();
    // Faults after completions at the same stamp: a slice finishing
    // exactly when its device dies has already finished.
    process_faults_due();
    resize_if_needed();
    if (config_.stream.disaggregate) {
      // Admission-class work first (that is the point of preemption),
      // then decode chains, then parked streams into leftover slots.
      try_dispatch();
      readmit_continuations();
      try_resumes();
    } else {
      // FIFO: running streams chain ahead of new admissions and nothing
      // is ever preemption-parked — a stream holds its slot from prefill
      // to last token. A device kill can still park decode chains, so
      // resumes run here too (a no-op without faults).
      readmit_continuations();
      try_dispatch();
      try_resumes();
    }
    const double next_t = next_event_internal();
    if (next_t == kInf) break;  // ledger idle, queue drained, trace exhausted
    if (next_t > horizon_s) break;  // next event beyond this pump's horizon
    clock_ = std::max(clock_, next_t);
  }
  // A bounded pump leaves the clock at its horizon so the next load()
  // snapshot and grant charge from a consistent stamp.
  if (horizon_s < kInf && clock_ < horizon_s) clock_ = horizon_s;
}

void Server::execute_batch(std::int64_t take) {
  BatchEvent ev =
      dispatcher_.run_formed_batch(queue_, former_, tracker_, clock_, take);
  clock_ = ev.finish_s;
  ++work_since_resize_;
  batches_.push_back(ev);
}

void Server::maybe_resize() {
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (work_since_resize_ < e.cooldown_batches) return;

  const std::int64_t depth = queue_.size();
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  // Batch-boundary decision points have nothing in flight (the batch
  // barrier just drained), so the shared rule sees inflight = 0.
  const std::int64_t target = sched::elastic_resize_target(
      depth, /*inflight=*/0, cur, e.high_watermark, e.low_watermark,
      e.min_devices, e.max_devices);
  if (target == cur) return;
  perform_resize(target, depth);
}

void Server::perform_resize(std::int64_t target, std::int64_t depth) {
  // The engine charges the seamless all-gather migration to its own
  // simulated clock; serving requests queue behind it on ours.
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  const double before = engine_.sim_time_s();
  engine_.resize(make_devices(config_.elastic.device, target));
  const double migration = engine_.sim_time_s() - before;
  clock_ += migration;

  ResizeEvent ev;
  ev.time_s = clock_;
  ev.from_devices = cur;
  ev.to_devices = target;
  ev.queue_depth = depth;
  ev.migration_s = migration;
  resizes_.push_back(ev);
  work_since_resize_ = 0;

  // The elastic_resize_target decision, marked on the control track and
  // counted by direction; the devices gauge tracks the set's size over
  // virtual time.
  if (obs_.trace != nullptr)
    obs_.trace->instant("resize", clock_, /*device=*/-1, /*vn=*/-1,
                        /*model=*/-1, /*arg0=*/cur, /*arg1=*/target,
                        /*arg_s=*/migration);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter(target > cur ? "serve.resizes.grow"
                                       : "serve.resizes.shrink")
        .add();
    obs_.metrics->gauge("serve.devices").set(static_cast<double>(target), clock_);
  }
}

}  // namespace vf::serve
