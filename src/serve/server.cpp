#include "serve/server.h"

#include <algorithm>
#include <limits>

#include "data/batch.h"
#include "sched/elastic.h"
#include "util/common.h"

namespace vf::serve {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Server::Server(VirtualFlowEngine& engine, const Dataset& request_pool,
               ServerConfig config)
    : engine_(engine),
      request_pool_(request_pool),
      config_(config),
      queue_(config.queue_capacity),
      former_(config.batch),
      tracker_(config.deadline_s) {
  // Backpressure accounting lives at the backpressure point: the queue
  // reports every dropped request (with its id) straight to the tracker,
  // so both replay modes share one drop-accounting path.
  queue_.set_reject_observer(
      [this](const InferRequest& r) { tracker_.record_rejection(r, r.arrival_s); });
  if (config_.elastic.enabled) {
    const ElasticPolicy& e = config_.elastic;
    check(e.min_devices >= 1, "elastic min_devices must be >= 1");
    check(e.max_devices >= e.min_devices, "elastic max_devices < min_devices");
    check(e.max_devices <= engine_.mapping().total_vns(),
          "elastic max_devices (" + std::to_string(e.max_devices) +
              ") exceeds the virtual-node count (" +
              std::to_string(engine_.mapping().total_vns()) +
              "); devices beyond the VN count would idle");
    check(e.high_watermark > e.low_watermark,
          "elastic watermarks must satisfy high > low (hysteresis)");
    check(e.cooldown_batches >= 0, "elastic cooldown must be non-negative");
  }
}

void Server::replay(const std::vector<InferRequest>& trace) {
  check(!replayed_, "a Server replays exactly one trace");
  replayed_ = true;
  for (std::size_t i = 1; i < trace.size(); ++i)
    check(trace[i - 1].arrival_s <= trace[i].arrival_s,
          "trace must be sorted by arrival time");
  if (config_.continuous) {
    replay_continuous(trace);
  } else {
    replay_batch_boundary(trace);
  }
}

void Server::replay_batch_boundary(const std::vector<InferRequest>& trace) {
  std::size_t next_arrival = 0;
  // Admits every arrival up to the current virtual time, in trace order.
  // Rejections (queue full) happen at the request's own arrival stamp.
  const auto admit_up_to_clock = [&]() {
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= clock_) {
      queue_.push(trace[next_arrival]);
      ++next_arrival;
    }
  };

  while (true) {
    admit_up_to_clock();

    const std::int64_t ready = former_.ready_count(queue_, clock_);
    if (ready == 0) {
      // Nothing to form yet: jump to the next event — the oldest queued
      // request's timeout or the next arrival, whichever is earlier.
      double next_t = kInf;
      if (!queue_.empty()) next_t = former_.timeout_deadline_s(queue_);
      if (next_arrival < trace.size())
        next_t = std::min(next_t, trace[next_arrival].arrival_s);
      if (next_t == kInf) break;  // queue drained, trace exhausted
      clock_ = std::max(clock_, next_t);
      continue;
    }

    execute_batch(std::min(ready, engine_.mapping().global_batch()));
    // The batch advanced the clock; admit everything that arrived during
    // its service window so the resize decision sees the true depth (a
    // burst's pressure registers the batch it builds up in, not one
    // batch later).
    admit_up_to_clock();
    batches_.back().queue_depth_after = queue_.size();
    maybe_resize();
  }
}

void Server::replay_continuous(const std::vector<InferRequest>& trace) {
  SlotLedger ledger(engine_.mapping().total_vns());
  // Per-device serialization: a device runs its slices one after another
  // (the same execution shape as training VNs), so a slice dispatched to a
  // busy device starts when the device frees up. Indexed by device id
  // under the current mapping; rebuilt after every resize.
  std::vector<double> device_free(engine_.devices().size(), 0.0);
  std::size_t next_arrival = 0;

  const auto admit_up_to_clock = [&]() {
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_s <= clock_) {
      queue_.push(trace[next_arrival]);
      ++next_arrival;
    }
  };

  // Completion transition: free every slot due at the current clock in
  // (done_s, VN id) order, recording its requests' completions.
  const auto complete_due = [&]() {
    for (const std::int32_t vn : ledger.due(clock_)) {
      const Slot done = ledger.complete(vn);
      for (std::size_t i = 0; i < done.requests.size(); ++i) {
        const InferRequest& r = done.requests[i];
        RequestRecord rec;
        rec.id = r.id;
        rec.arrival_s = r.arrival_s;
        rec.dispatch_s = done.dispatch_s;
        rec.queue_wait_s = done.dispatch_s - r.arrival_s;
        rec.compute_s = done.compute_s;
        rec.comm_s = done.comm_s;
        rec.finish_s = done.done_s;
        rec.prediction = done.predictions[i];
        tracker_.record_completion(std::move(rec));
      }
      ++work_since_resize_;
      BatchEvent ev;
      ev.start_s = done.dispatch_s;
      ev.finish_s = done.done_s;
      ev.size = static_cast<std::int64_t>(done.requests.size());
      // The device count that dispatched the slice — a slice can span a
      // seamless resize, and it ran on the mapping it was launched under.
      ev.devices = done.devices;
      ev.queue_depth_after = queue_.size();
      ev.vn = vn;
      batches_.push_back(ev);
    }
  };

  // Resize decisions use the same hysteresis as batch mode, and the
  // resize itself is as seamless as the paper's: in-flight slices keep
  // the completion times the old mapping scheduled for them (compute is
  // never interrupted), while the migration charge lands on the clock and
  // so on every *subsequent* dispatch — the new device set starts clean
  // once the all-gather is done.
  const auto resize_if_needed = [&]() {
    const ElasticPolicy& e = config_.elastic;
    if (!e.enabled) return;
    if (work_since_resize_ < e.cooldown_batches) return;
    const std::int64_t depth = queue_.size();
    const auto cur = static_cast<std::int64_t>(engine_.devices().size());
    // The shared hysteresis rule (src/sched/elastic.h) shrinks on *system*
    // load — queue plus in-flight — never queue depth alone: mid-burst the
    // queue empties the instant a full in-flight batch is admitted into
    // slots, and shrinking on that illusion of idleness would bounce the
    // device set (shrink -> queue re-fills -> grow) under steady pressure.
    const std::int64_t target = sched::elastic_resize_target(
        depth, ledger.inflight_requests(), cur, e.high_watermark, e.low_watermark,
        e.min_devices, e.max_devices);
    if (target == cur) return;
    perform_resize(target, depth);
    device_free.assign(engine_.devices().size(), clock_);
    // Arrivals that landed during the migration window queue behind it.
    admit_up_to_clock();
  };

  // Admit transition: fill free slots (lowest VN id first) from the FIFO
  // prefix whenever a full slice is waiting or the oldest request has
  // timed out — size-or-timeout at slice granularity.
  const auto try_dispatch = [&]() {
    while (!queue_.empty()) {
      const std::int32_t vn = ledger.lowest_free();
      if (vn < 0) break;
      const std::int64_t cap = engine_.mapping().vn_batch(vn);
      const bool full_slice = queue_.size() >= cap;
      const bool timed_out =
          clock_ >= queue_.front().arrival_s + config_.batch.max_wait_s;
      if (!full_slice && !timed_out) break;

      Slot slot;
      slot.requests = queue_.pop(std::min(cap, queue_.size()));
      idx_scratch_.clear();
      idx_scratch_.reserve(slot.requests.size());
      for (const InferRequest& r : slot.requests) idx_scratch_.push_back(r.example_index);
      slices_scratch_.resize(1);
      InferSlice& slice = slices_scratch_.front();
      slice.vn = vn;
      request_pool_.gather(idx_scratch_, slice.features, labels_scratch_);
      InferStats stats = engine_.infer(slices_scratch_);
      const SliceCost& cost = stats.slice_costs.front();

      // Warm/cold dispatch pricing (price_slice_dispatch, shared with the
      // co-located server so the two price models cannot diverge).
      const auto dev = static_cast<std::size_t>(cost.device);
      const SliceSchedule sched = price_slice_dispatch(clock_, device_free[dev], cost);
      slot.dispatch_s = clock_;
      slot.devices = static_cast<std::int64_t>(engine_.devices().size());
      slot.compute_s = sched.compute_s;
      slot.comm_s = cost.comm_s;
      slot.done_s = sched.done_s;
      // The device is busy for the forward pass; the logits return rides
      // the link while the device moves on to its next slice.
      device_free[dev] = sched.start_s + sched.compute_s;
      slot.predictions = std::move(stats.predictions);
      ledger.admit(vn, std::move(slot));
    }
  };

  while (true) {
    admit_up_to_clock();
    complete_due();
    resize_if_needed();
    try_dispatch();

    // Next event: earliest in-flight completion, next arrival, or — when a
    // partial slice is waiting on a free slot — the oldest request's
    // timeout.
    double next_t = ledger.earliest_done_s();
    if (next_arrival < trace.size())
      next_t = std::min(next_t, trace[next_arrival].arrival_s);
    if (!queue_.empty() && ledger.lowest_free() >= 0)
      next_t = std::min(next_t,
                        queue_.front().arrival_s + config_.batch.max_wait_s);
    if (next_t == kInf) break;  // ledger idle, queue drained, trace exhausted
    clock_ = std::max(clock_, next_t);
  }
}

void Server::execute_batch(std::int64_t take) {
  const double start = clock_;
  const std::vector<InferRequest> batch = queue_.pop(take);
  const std::vector<VnPack> packs = former_.pack(take, engine_.mapping());

  // Packs take FIFO positions contiguously in ascending VN order, so the
  // engine's slice-ordered prediction vector lines up with batch position.
  // The slice vector and each slice's feature matrix are member scratch,
  // reused batch after batch.
  slices_scratch_.resize(packs.size());
  for (std::size_t pi = 0; pi < packs.size(); ++pi) {
    const VnPack& p = packs[pi];
    idx_scratch_.clear();
    idx_scratch_.reserve(p.positions.size());
    for (const std::int64_t pos : p.positions)
      idx_scratch_.push_back(batch[static_cast<std::size_t>(pos)].example_index);
    InferSlice& s = slices_scratch_[pi];
    s.vn = p.vn;
    request_pool_.gather(idx_scratch_, s.features, labels_scratch_);
  }

  const InferStats stats = engine_.infer(slices_scratch_);
  const double finish = start + stats.compute_s + stats.comm_s;

  for (std::int64_t p = 0; p < take; ++p) {
    const InferRequest& r = batch[static_cast<std::size_t>(p)];
    RequestRecord rec;
    rec.id = r.id;
    rec.arrival_s = r.arrival_s;
    rec.dispatch_s = start;
    rec.queue_wait_s = start - r.arrival_s;
    rec.compute_s = stats.compute_s;
    rec.comm_s = stats.comm_s;
    rec.finish_s = finish;
    rec.prediction = stats.predictions[static_cast<std::size_t>(p)];
    tracker_.record_completion(std::move(rec));
  }

  clock_ = finish;
  ++work_since_resize_;
  BatchEvent ev;
  ev.start_s = start;
  ev.finish_s = finish;
  ev.size = take;
  ev.devices = static_cast<std::int64_t>(engine_.devices().size());
  // queue_depth_after is finalized by replay() once the arrivals that
  // landed during this batch's service window are admitted.
  ev.queue_depth_after = queue_.size();
  batches_.push_back(ev);
}

void Server::maybe_resize() {
  const ElasticPolicy& e = config_.elastic;
  if (!e.enabled) return;
  if (work_since_resize_ < e.cooldown_batches) return;

  const std::int64_t depth = queue_.size();
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  // Batch-boundary decision points have nothing in flight (the batch
  // barrier just drained), so the shared rule sees inflight = 0.
  const std::int64_t target = sched::elastic_resize_target(
      depth, /*inflight=*/0, cur, e.high_watermark, e.low_watermark,
      e.min_devices, e.max_devices);
  if (target == cur) return;
  perform_resize(target, depth);
}

void Server::perform_resize(std::int64_t target, std::int64_t depth) {
  // The engine charges the seamless all-gather migration to its own
  // simulated clock; serving requests queue behind it on ours.
  const auto cur = static_cast<std::int64_t>(engine_.devices().size());
  const double before = engine_.sim_time_s();
  engine_.resize(make_devices(config_.elastic.device, target));
  const double migration = engine_.sim_time_s() - before;
  clock_ += migration;

  ResizeEvent ev;
  ev.time_s = clock_;
  ev.from_devices = cur;
  ev.to_devices = target;
  ev.queue_depth = depth;
  ev.migration_s = migration;
  resizes_.push_back(ev);
  work_since_resize_ = 0;
}

}  // namespace vf::serve
