// vf::serve::Server — deadline-aware inference serving on virtual nodes.
//
// Pipeline (one virtual-clock event loop):
//
//   arrival trace ──> RequestQueue ──> BatchFormer ──> engine.infer ──> SloTracker
//        (open loop)   (bounded,        (size-or-        (forward-only     (p50/p95/p99,
//                       backpressure)    timeout pack)     on VNs)           deadlines)
//
// plus the elasticity loop the paper built for training: when queue depth
// crosses hysteresis watermarks the server calls the engine's seamless
// resize(), growing or shrinking the device set under the *same* virtual
// nodes — serving capacity per batch (the global batch) never changes,
// only how fast a batch drains.
//
// Determinism contract: a replay is a pure function of (trace, policies,
// engine construction). Arrival stamps come from the seeded trace, service
// times from the analytic cost model, batch boundaries from the FIFO
// prefix policy, and predictions from slot-ordered forward passes — host
// worker count (EngineConfig::num_threads) can change wall-clock speed but
// not one bit of the records. bench_serving and tests/serve/ verify this
// across num_threads in {0, 2, 8}.
#pragma once

#include <cstdint>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "device/spec.h"
#include "serve/batch_former.h"
#include "serve/request_queue.h"
#include "serve/slo_tracker.h"

namespace vf::serve {

/// Queue-depth-triggered elasticity with hysteresis: grow (double the
/// device count) when depth reaches `high_watermark`, shrink (halve) when
/// depth falls to `low_watermark`, never within `cooldown_batches` formed
/// batches of the previous resize. high > low keeps the loop from
/// oscillating on a steady queue.
struct ElasticPolicy {
  bool enabled = true;
  std::int64_t high_watermark = 64;
  std::int64_t low_watermark = 4;
  std::int64_t min_devices = 1;
  std::int64_t max_devices = 8;  ///< must not exceed the mapping's VN count
  DeviceType device = DeviceType::kV100;
  std::int64_t cooldown_batches = 4;
};

struct ServerConfig {
  std::int64_t queue_capacity = 1024;
  BatchPolicy batch;
  double deadline_s = 0.5;  ///< per-request latency SLO
  ElasticPolicy elastic;
};

/// One elastic reconfiguration taken during a replay.
struct ResizeEvent {
  double time_s = 0.0;  ///< virtual time after the migration completed
  std::int64_t from_devices = 0;
  std::int64_t to_devices = 0;
  std::int64_t queue_depth = 0;   ///< depth that triggered the decision
  double migration_s = 0.0;       ///< seamless all-gather cost charged
};

/// One formed batch executed during a replay.
struct BatchEvent {
  double start_s = 0.0;
  double finish_s = 0.0;
  std::int64_t size = 0;
  std::int64_t devices = 0;          ///< device count that served it
  std::int64_t queue_depth_after = 0;
};

class Server {
 public:
  /// `engine` supplies the model replicas, mapping, and resize machinery;
  /// `request_pool` generates request payload features on demand. Both
  /// must outlive the server.
  Server(VirtualFlowEngine& engine, const Dataset& request_pool, ServerConfig config);

  /// Replays an open-loop arrival trace (ascending arrival order) to
  /// completion, draining the queue. One replay per Server.
  void replay(const std::vector<InferRequest>& trace);

  double now_s() const { return clock_; }
  const SloTracker& slo() const { return tracker_; }
  const RequestQueue& queue() const { return queue_; }
  const std::vector<ResizeEvent>& resizes() const { return resizes_; }
  const std::vector<BatchEvent>& batches() const { return batches_; }

 private:
  void execute_batch(std::int64_t take);
  void maybe_resize();

  VirtualFlowEngine& engine_;
  const Dataset& request_pool_;
  ServerConfig config_;
  RequestQueue queue_;
  BatchFormer former_;
  SloTracker tracker_;

  double clock_ = 0.0;
  std::int64_t batches_since_resize_ = 0;
  bool replayed_ = false;
  std::vector<ResizeEvent> resizes_;
  std::vector<BatchEvent> batches_;
};

}  // namespace vf::serve
