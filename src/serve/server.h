// vf::serve::Server — deadline-aware inference serving on virtual nodes.
//
// Pipeline (one virtual-clock event loop):
//
//   arrival trace ──> RequestQueue ──> batching ──> engine.infer ──> SloTracker
//        (open loop)   (bounded,        (two modes,    (forward-only     (p50/p95/p99,
//                       backpressure)    below)          on VNs)           deadlines)
//
// Two batching modes, selected by ServerConfig::continuous:
//
//   * Batch-boundary (BatchFormer): the classic size-or-timeout policy —
//     a batch forms, every slice runs, every request in it finishes at
//     the batch barrier, and only then is the queue drained again.
//   * Continuous (SlotLedger): every virtual node is an independent slot.
//     A slice is admitted the moment a slot is free (FIFO prefix, lowest
//     VN id first), runs to its *own* completion time from the per-slice
//     cost model, and frees the slot — newly arrived requests flow into
//     the partially-formed in-flight batch instead of waiting for the
//     next full drain, which is what cuts queue wait at high load.
//
// Continuous mode also serves TOKEN STREAMS (requests with
// stream_tokens > 0): a long prefill slice admits the stream into a slot
// and samples its first token; short decode slices then chain through the
// same slot (SlotLedger::readmit), one token per completion. With
// StreamPolicy::disaggregate the scheduler may pause a stream at a token
// boundary to lend its slot to a queued prefill — see serve/streaming.h.
//
// plus the elasticity loop the paper built for training: when queue depth
// crosses hysteresis watermarks the server calls the engine's seamless
// resize(), growing or shrinking the device set under the *same* virtual
// nodes. In continuous mode the resize is as seamless as the paper's:
// in-flight slices keep the completion times the old mapping scheduled
// (compute is never interrupted), and the migration charge delays only
// subsequent dispatches.
//
// Determinism contract: a replay is a pure function of (trace, policies,
// engine construction). Arrival stamps come from the seeded trace, service
// times from the analytic cost model, batch/slice boundaries from the FIFO
// prefix policy (admission FIFO by request id, slots claimed in ascending
// VN-id order, completions processed in (time, VN id) order) — host worker
// count (EngineConfig::num_threads) can change wall-clock speed but not
// one bit of the records. bench_serving and tests/serve/ verify this
// across num_threads in {0, 2, 8} for both modes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "device/spec.h"
#include "fault/fault.h"
#include "sched/lease.h"
#include "serve/batch_former.h"
#include "serve/dispatch.h"
#include "serve/request_queue.h"
#include "serve/slo_tracker.h"
#include "serve/slot_ledger.h"
#include "serve/streaming.h"

namespace vf::serve {

/// Queue-depth-triggered elasticity with hysteresis: grow (double the
/// device count) when depth reaches `high_watermark`, shrink (halve) when
/// depth falls to `low_watermark`, never within `cooldown_batches` units
/// of work (formed batches, or completed slices in continuous mode) of the
/// previous resize. high > low keeps the loop from oscillating on a
/// steady queue.
struct ElasticPolicy {
  bool enabled = true;
  std::int64_t high_watermark = 64;
  std::int64_t low_watermark = 4;
  std::int64_t min_devices = 1;
  std::int64_t max_devices = 8;  ///< must not exceed the mapping's VN count
  DeviceType device = DeviceType::kV100;
  std::int64_t cooldown_batches = 4;
};

struct ServerConfig {
  std::int64_t queue_capacity = 1024;
  BatchPolicy batch;
  double deadline_s = 0.5;  ///< per-request latency SLO
  ElasticPolicy elastic;
  /// Continuous (in-flight) batching: per-VN slots freed as slices finish,
  /// arrivals admitted into the partially-formed in-flight batch. False
  /// keeps the drain-at-batch-boundary BatchFormer. In continuous mode a
  /// slice dispatches onto a free VN when a full slice's worth of requests
  /// (the VN's mapping batch share) is queued or the oldest request has
  /// waited `batch.max_wait_s` — the same size-or-timeout policy applied
  /// at slice granularity; `batch.max_batch` is a batch-boundary knob and
  /// is not consulted.
  bool continuous = false;
  /// Token-stream scheduling (prefill/decode disaggregation). Traces with
  /// stream requests require continuous mode — a stream is a slice chain
  /// through a VN slot, which batch-boundary mode has no notion of.
  StreamPolicy stream;
  /// Deadline-aware load shedding at admission (RequestQueue::set_deadline
  /// with `deadline_s`): requests already past the SLO when the loop gets
  /// to them are bounced instead of queued to a guaranteed miss — the
  /// graceful-degradation arm of the fault story under sustained capacity
  /// loss. Off by default: shedding changes which requests are served, so
  /// it is opt-in per workload (bench_faults turns it on).
  bool shed_expired = false;
};

/// One elastic reconfiguration taken during a replay.
struct ResizeEvent {
  double time_s = 0.0;  ///< virtual time after the migration completed
  std::int64_t from_devices = 0;
  std::int64_t to_devices = 0;
  std::int64_t queue_depth = 0;   ///< depth that triggered the decision
  double migration_s = 0.0;       ///< seamless all-gather cost charged
};

/// One injected fault the replay acted on (or explicitly skipped).
struct FaultRecord {
  double time_s = 0.0;          ///< virtual stamp the loop processed it at
  fault::FaultKind kind = fault::FaultKind::kKill;
  std::int64_t device = -1;     ///< resolved device slot (kills/stragglers)
  bool skipped = false;         ///< kill skipped: the set was at one device
  std::int64_t evicted_slices = 0;    ///< in-flight slices torn off the device
  std::int64_t requeued_requests = 0; ///< classify/prefill requests requeued
  double migration_s = 0.0;     ///< VN-remap all-gather charged by the kill
};

// BatchEvent lives in serve/dispatch.h (shared with the SliceDispatcher
// that produces them); included above.

class Server : public sched::DeviceLease {
 public:
  /// `engine` supplies the model replicas, mapping, and resize machinery;
  /// `request_pool` generates request payload features on demand. Both
  /// must outlive the server.
  Server(VirtualFlowEngine& engine, const Dataset& request_pool, ServerConfig config);

  /// Non-copyable, non-movable: the queue's reject observer holds a
  /// back-pointer to this server's tracker, which a copy or move would
  /// leave dangling at the original address.
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Attaches observability sinks (obs/obs.h; either pointer may be null).
  /// Must be called before replay(); the referents must outlive it. With a
  /// TraceRecorder attached the replay records one span per slice/batch on
  /// its device's track plus instant markers (resize, preempt, reject);
  /// with a MetricsRegistry it feeds "serve.*" counters/histograms and
  /// exports the SLO summary as gauges when the replay drains. Recording
  /// never perturbs the schedule — records are bit-identical with sinks
  /// attached or not (bench_serving gates this).
  void set_observability(obs::Observability obs);

  /// Attaches a fault injector (src/fault/) whose events the continuous
  /// replay loop processes at their virtual stamps: kills evict the dead
  /// device's in-flight slices (classify/prefill requests requeue at the
  /// head; decode chains park and resume from their last landed token),
  /// remap its VNs onto survivors via the engine's migration machinery,
  /// and cap the elastic budget until a recover; stragglers re-apply
  /// cost-model slowdowns; comm faults retry the next slice's logits
  /// return. Must be called before replay(); requires continuous mode; the
  /// injector must outlive the replay.
  void set_fault_injector(fault::FaultInjector* injector);

  /// Replays an open-loop arrival trace (ascending arrival order) to
  /// completion, draining the queue. One replay per Server. Implemented
  /// on the stepping machinery below: begin(trace); pump(+inf); finish().
  void replay(const std::vector<InferRequest>& trace);

  // ---- Cluster-governed stepping (the sched::DeviceLease protocol) ----
  //
  // The ClusterController (sched/cluster.h) drives a Server through
  // begin()/pump()/apply_grant() instead of the self-driving replay():
  // the internal elastic loop is off — the cluster policy owns sizing,
  // with the ElasticPolicy watermarks and min/max demoted to the load()
  // signal's advisory band — and the device set changes only when a
  // grant arrives. The seamless-resize machinery underneath is the same
  // one the self-driving loop uses (perform_resize).

  /// Switches the server to cluster governance (before begin()):
  /// disables the internal elastic_resize_target loop and enables
  /// apply_grant(). Requires continuous batching and validates the
  /// ElasticPolicy band fields (they parameterize load()) regardless of
  /// `elastic.enabled`.
  void set_cluster_governed();

  /// Opens `trace` for externally-pumped stepping (continuous mode
  /// only; validation matches replay(); one begin per Server). The trace
  /// must outlive the stepping run.
  void begin(const std::vector<InferRequest>& trace);

  /// Processes every internal event due at or before `horizon_s` (slice
  /// completions, arrivals, faults, timeouts) and, when work remains,
  /// advances the clock to `horizon_s` so a grant applied next is
  /// stamped at controller time. `horizon_s = +inf` runs to the drain.
  void pump(double horizon_s) override;
  double next_event_s() const override;
  sched::LoadSignal load() const override;
  /// Resizes to `devices` through perform_resize (seamless migration,
  /// ResizeEvent record, obs markers). Returns the migration seconds.
  double apply_grant(std::int64_t devices) override;
  bool drained() const override;

  /// Exports the SLO summary + devices gauge to the attached metrics
  /// registry (idempotent). replay() calls it at the drain; cluster runs
  /// call it when the lease retires.
  void finish();

  double now_s() const { return clock_; }
  const SloTracker& slo() const { return tracker_; }
  const RequestQueue& queue() const { return queue_; }
  const std::vector<ResizeEvent>& resizes() const { return resizes_; }
  const std::vector<BatchEvent>& batches() const { return batches_; }
  const std::vector<FaultRecord>& faults() const { return faults_; }

 private:
  /// Continuous-mode in-flight state, created by begin() and alive for
  /// the whole stepping run. Holding it as a member (rather than locals
  /// of a closed replay loop) is what lets the ClusterController pump the
  /// replay between grants.
  struct Flight {
    const std::vector<InferRequest>* trace;
    SlotLedger ledger;
    TokenStreamer streamer;
    /// Per-device serialization horizon, indexed by device id under the
    /// current mapping; rebuilt after every resize.
    std::vector<double> device_free;
    std::size_t next_arrival = 0;
    /// Streams whose slice finished this instant and want another token;
    /// drained within the same event-loop iteration.
    std::vector<std::int32_t> continuations;

    Flight(const std::vector<InferRequest>& t, std::int64_t vns,
           std::int64_t pool_size, std::size_t devices)
        : trace(&t), ledger(vns), streamer(vns, pool_size),
          device_free(devices, 0.0) {}
  };

  void replay_batch_boundary(const std::vector<InferRequest>& trace);
  void execute_batch(std::int64_t take);
  void maybe_resize();
  /// Executes a decided resize to `target` devices: seamless migration on
  /// the engine, clock charge, event record, cooldown reset. `depth` is
  /// the queue depth that triggered the decision.
  void perform_resize(std::int64_t target, std::int64_t depth);

  // Continuous-mode transitions (one pump iteration = admit, complete,
  // faults, elastic decision, dispatch phases; see pump()).
  void admit_up_to_clock();
  Slot with_comm_fault(Slot slot);
  void finalize_span_depth();
  void complete_due();
  void process_faults_due();
  void resize_if_needed();
  void try_dispatch();
  void readmit_continuations();
  void try_resumes();
  double next_event_internal() const;

  VirtualFlowEngine& engine_;
  const Dataset& request_pool_;
  ServerConfig config_;
  RequestQueue queue_;
  BatchFormer former_;
  SloTracker tracker_;

  /// The shared engine-facing dispatch path (gather/infer/price scratch
  /// lives there, reused dispatch after dispatch).
  SliceDispatcher dispatcher_;

  /// Observability sinks (null = off); see set_observability.
  obs::Observability obs_;

  /// Fault injector (null = no faults); see set_fault_injector.
  fault::FaultInjector* injector_ = nullptr;

  double clock_ = 0.0;
  /// Work units (batches or slices) since the last resize; cooldown gate.
  std::int64_t work_since_resize_ = 0;
  bool replayed_ = false;
  bool cluster_governed_ = false;
  bool finished_ = false;
  std::unique_ptr<Flight> flight_;
  std::vector<ResizeEvent> resizes_;
  std::vector<BatchEvent> batches_;
  std::vector<FaultRecord> faults_;
};

}  // namespace vf::serve
