// Bounded admission queue for inference requests.
//
// Backpressure is the admission story: when the queue is at capacity, a
// new request is rejected immediately (the caller records the rejection)
// rather than queued into unbounded latency. FIFO order is part of the
// determinism contract — the BatchFormer only ever takes a prefix, so the
// batch sequence is a pure function of the arrival trace and the policy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "serve/request.h"

namespace vf::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::int64_t capacity);

  /// Called with each request the queue drops at admission, before push()
  /// returns false. The Server wires this to SloTracker::record_rejection
  /// so drop accounting lives at the backpressure point itself — every
  /// replay path (batch-boundary or continuous) gets the dropped request's
  /// id recorded without re-implementing it.
  void set_reject_observer(std::function<void(const InferRequest&)> observer);

  /// Admits `r` unless the queue is full. Returns false (and counts the
  /// rejection, notifying the reject observer) when capacity is reached —
  /// the backpressure signal.
  bool push(const InferRequest& r);

  /// Removes and returns the oldest `n` requests (n <= size()).
  std::vector<InferRequest> pop(std::int64_t n);

  /// Oldest queued request; queue must be non-empty.
  const InferRequest& front() const;
  /// Request at queue position `i` (0 = oldest).
  const InferRequest& at(std::int64_t i) const;

  bool empty() const { return q_.empty(); }
  std::int64_t size() const { return static_cast<std::int64_t>(q_.size()); }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t admitted() const { return admitted_; }
  std::int64_t rejected() const { return rejected_; }

 private:
  std::int64_t capacity_;
  std::deque<InferRequest> q_;
  std::function<void(const InferRequest&)> reject_observer_;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace vf::serve
