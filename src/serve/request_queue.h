// Bounded admission queue for inference requests.
//
// Backpressure is the admission story: when the queue is at capacity, a
// new request is rejected immediately (the caller records the rejection)
// rather than queued into unbounded latency. With a deadline configured
// (set_deadline), admission also sheds requests that are already past
// their deadline at admission time — under sustained capacity loss they
// would consume a slot only to miss, so dropping them at the door is the
// graceful-degradation half of the fault story. FIFO order is part of the
// determinism contract — the BatchFormer only ever takes a prefix, so the
// batch sequence is a pure function of the arrival trace and the policy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "serve/request.h"

namespace vf::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::int64_t capacity);

  /// Called with each request the queue drops at admission (capacity or
  /// deadline shed), before push() returns false, along with the virtual
  /// stamp of the drop. The Server wires this to
  /// SloTracker::record_rejection so drop accounting lives at the
  /// backpressure point itself — every replay path (batch-boundary or
  /// continuous) gets the dropped request's id recorded without
  /// re-implementing it.
  void set_reject_observer(std::function<void(const InferRequest&, double)> observer);

  /// Enables deadline shedding: push(r, now_s) drops requests with
  /// now_s - arrival_s > deadline_s (stamped as rejections at now_s, never
  /// counted as queue wait).
  void set_deadline(double deadline_s);

  /// Admits `r` unless the queue is full. Returns false (and counts the
  /// rejection, notifying the reject observer at the arrival stamp) when
  /// capacity is reached — the backpressure signal.
  bool push(const InferRequest& r);

  /// Admission at virtual time `now_s`: sheds `r` first when a deadline is
  /// configured and already blown, then applies the capacity check.
  bool push(const InferRequest& r, double now_s);

  /// Returns a fault-evicted request to the *head* of the queue. Requeues
  /// bypass capacity (zero-loss invariant: an admitted request is never
  /// dropped by recovery) and never re-count as admissions. In-flight
  /// requests are always older than anything still queued (dispatch takes
  /// a FIFO prefix), so head insertion keeps the queue arrival-ordered.
  void push_front(const InferRequest& r);

  /// Removes and returns the oldest `n` requests (n <= size()).
  std::vector<InferRequest> pop(std::int64_t n);

  /// Oldest queued request; queue must be non-empty.
  const InferRequest& front() const;
  /// Request at queue position `i` (0 = oldest).
  const InferRequest& at(std::int64_t i) const;

  bool empty() const { return q_.empty(); }
  std::int64_t size() const { return static_cast<std::int64_t>(q_.size()); }
  std::int64_t capacity() const { return capacity_; }
  std::int64_t admitted() const { return admitted_; }
  std::int64_t rejected() const { return rejected_; }
  /// Rejections that were deadline sheds (subset of rejected()).
  std::int64_t shed() const { return shed_; }
  /// Fault requeues accepted through push_front.
  std::int64_t requeued() const { return requeued_; }

 private:
  bool reject(const InferRequest& r, double now_s);

  std::int64_t capacity_;
  std::deque<InferRequest> q_;
  std::function<void(const InferRequest&, double)> reject_observer_;
  double deadline_s_ = 0.0;
  bool shed_enabled_ = false;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t requeued_ = 0;
};

}  // namespace vf::serve
