// SliceDispatcher: the one engine-facing dispatch path of vf::serve.
//
// The single-model Server and the multi-model ColocatedServer used to
// carry two copies of the same three bodies — gather-features/infer/price
// for a continuous slice, the formed-batch execution of batch-boundary
// mode, and the per-request completion recording — and the copies drifted
// by exactly one forgotten edit per PR. This header is the dedupe: both
// servers own a SliceDispatcher per engine and the bodies live once.
//
// Everything here is virtual-clock pure (same determinism contract as the
// rest of vf::serve): a dispatch consumes the caller's clock and per-device
// free horizon, prices via the analytic cost model, and returns schedule
// stamps — host threads can change wall-clock speed, never a stamp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/dataset.h"
#include "obs/obs.h"
#include "serve/batch_former.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "serve/slo_tracker.h"
#include "serve/slot_ledger.h"

namespace vf::serve {

/// Static display name of a slice kind ("classify"/"prefill"/"decode") —
/// the trace span names, shared so the trace and tables cannot disagree.
const char* slice_kind_name(SliceKind kind);

/// One unit of executed work during a replay: a formed batch in
/// batch-boundary mode, or a single VN slice in continuous mode.
struct BatchEvent {
  double start_s = 0.0;
  double finish_s = 0.0;
  std::int64_t size = 0;
  /// Device count that served it: the hosting device (1) for a
  /// continuous-mode slice, the full set for a formed batch.
  std::int64_t devices = 0;
  std::int64_t queue_depth_after = 0;
  std::int32_t vn = -1;  ///< slice's virtual node (continuous mode); -1 = batch
  std::int32_t model = -1;  ///< registry id (co-located serving); -1 = single model
  SliceKind kind = SliceKind::kClassify;  ///< scheduling class of the work
  std::int64_t device = -1;  ///< hosting device id (continuous mode); -1 = all
  bool warm = false;         ///< warm/cold dispatch pricing of the slice
  /// TraceRecorder span of the dispatch; obs::TraceRecorder::kNoSpan when
  /// recording is off. Servers finalize the span's queue depth and model
  /// through it.
  std::int64_t trace_span = obs::TraceRecorder::kNoSpan;
};

/// Records the completions of one finished slice (per-request stamps all
/// derive from the slot's schedule). Classify slices only — a stream's
/// record is assembled token by token by the TokenStreamer.
void record_slice_requests(const Slot& done, SloTracker& tracker);

/// The BatchEvent of one finished slice on VN `vn`. The caller finalizes
/// `model` (co-located serving) if it has one.
BatchEvent make_slice_event(const Slot& done, std::int32_t vn,
                            std::int64_t queue_depth_after);

class SliceDispatcher {
 public:
  /// Both referents must outlive the dispatcher. One dispatcher per
  /// engine: the gather/slice scratch inside is sized to that engine's
  /// request traffic and reused dispatch after dispatch.
  SliceDispatcher(VirtualFlowEngine& engine, const Dataset& request_pool);

  SliceDispatcher(const SliceDispatcher&) = delete;
  SliceDispatcher& operator=(const SliceDispatcher&) = delete;
  /// Movable so per-model serving state can live in a vector
  /// (ColocatedServer); the reference members rebind nowhere, they just
  /// travel with the state.
  SliceDispatcher(SliceDispatcher&&) = default;

  /// Attaches observability sinks (either pointer may be null — the
  /// default handle is the null sink, one pointer test per dispatch).
  /// Every subsequent dispatch records a span named by its slice kind and
  /// bumps "<metrics_prefix>slices.<kind>" counters; `model` stamps the
  /// spans' model id (-1 = single-model serving). The referents must
  /// outlive the dispatcher.
  void set_observability(obs::Observability obs, std::int32_t model,
                         const std::string& metrics_prefix);

  /// Dispatches one continuous-mode slice of arbitrary request-pool rows
  /// onto VN `vn`: gather -> forward -> warm/cold price against
  /// `device_free` (updated in place: the hosting device is busy for the
  /// forward pass; the logits return rides the link). `requests` is the
  /// slice's request set for completion accounting — for decode/prefill
  /// slices the rows are the stream's feature schedule, not one row per
  /// request. Returns the priced Slot, ready for SlotLedger admit/readmit.
  Slot dispatch_rows(std::int32_t vn, SliceKind kind, double now_s,
                     std::vector<double>& device_free,
                     std::vector<InferRequest> requests,
                     const std::vector<std::int64_t>& rows);

  /// Classify-slice convenience: one feature row per request, taken from
  /// each request's own `example_index`.
  Slot dispatch_classify(std::int32_t vn, double now_s,
                         std::vector<double>& device_free,
                         std::vector<InferRequest> requests);

  /// Batch-boundary execution: pops `take` requests, packs them across VNs
  /// (former.pack), runs the whole formed batch to its barrier, records
  /// every completion, and returns the BatchEvent (finish_s is the new
  /// clock; the caller finalizes queue_depth_after and `model`).
  BatchEvent run_formed_batch(RequestQueue& queue, const BatchFormer& former,
                              SloTracker& tracker, double start_s,
                              std::int64_t take);

 private:
  VirtualFlowEngine& engine_;
  const Dataset& request_pool_;

  // Observability (null sinks by default). Per-kind slice counters are
  // resolved once at attach time so the dispatch hot path never touches a
  // metric name.
  obs::Observability obs_;
  std::int32_t model_ = -1;
  obs::Counter* kind_counters_[3] = {nullptr, nullptr, nullptr};
  obs::Counter* batch_counter_ = nullptr;

  // Reusable dispatch scratch: the gather index list, the (discarded)
  // request-pool labels, and the slice vector handed to engine.infer.
  // Feature matrices keep their buffers across dispatches, so the
  // server-side half of a dispatch reallocates nothing once warm (the
  // engine's forward pass reuses its per-VN workspace likewise, but
  // infer() itself still builds per-call result vectors — serving is not
  // under the training loop's zero-allocation contract).
  std::vector<std::int64_t> idx_scratch_;
  std::vector<std::int64_t> labels_scratch_;
  std::vector<InferSlice> slices_scratch_;
};

}  // namespace vf::serve
