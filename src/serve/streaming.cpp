#include "serve/streaming.h"

#include <string>
#include <utility>

#include "util/common.h"

namespace vf::serve {

TokenStreamer::TokenStreamer(std::int64_t total_vns, std::int64_t pool_size)
    : seq_(static_cast<std::size_t>(total_vns)),
      live_(static_cast<std::size_t>(total_vns), 0),
      pool_size_(pool_size) {
  check(total_vns > 0, "token streamer needs at least one virtual node");
  check(pool_size > 0, "token streamer needs a non-empty request pool");
}

std::int64_t TokenStreamer::feature_row(const SequenceState& s) const {
  // Position and last token both perturb the row, so the schedule is
  // autoregressive (sampling feeds back into the input) yet replayable.
  return (s.request.example_index + s.request.prompt_tokens +
          s.generated * 131 + s.last_token * 31) %
         pool_size_;
}

Slot TokenStreamer::prefill(SliceDispatcher& dispatcher, std::int32_t vn,
                            double now_s, std::vector<double>& device_free,
                            InferRequest r) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(!live_[static_cast<std::size_t>(vn)],
        "prefill into VN " + std::to_string(vn) + " already hosting a stream");
  check(is_stream(r), "prefill needs a stream request (stream_tokens > 0)");
  check(r.prompt_tokens >= 1, "a stream needs at least one prompt token");

  SequenceState& s = seq_[static_cast<std::size_t>(vn)];
  s = SequenceState{};
  s.request = r;
  s.dispatch_s = now_s;
  live_[static_cast<std::size_t>(vn)] = 1;

  std::vector<std::int64_t> rows;
  rows.reserve(static_cast<std::size_t>(r.prompt_tokens));
  for (std::int64_t i = 0; i < r.prompt_tokens; ++i)
    rows.push_back((r.example_index + i) % pool_size_);
  return dispatcher.dispatch_rows(vn, SliceKind::kPrefill, now_s, device_free,
                                  {std::move(r)}, rows);
}

bool TokenStreamer::absorb(std::int32_t vn, const Slot& done) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "absorb on VN " + std::to_string(vn) + " with no live stream");
  check(done.kind != SliceKind::kClassify, "absorb expects a stream slice");
  SequenceState& s = seq_[static_cast<std::size_t>(vn)];
  // Greedy sampling: the slice's last logits row argmax is the token. For
  // a prefill that is the prompt's final position; for a decode, its only
  // position.
  s.last_token = done.predictions.back();
  s.tokens.push_back(s.last_token);
  s.token_stamps.push_back(done.done_s);
  if (done.kind == SliceKind::kPrefill) s.first_token_s = done.done_s;
  s.compute_s += done.compute_s;
  s.comm_s += done.comm_s;
  ++s.generated;
  return s.generated < s.request.stream_tokens;
}

Slot TokenStreamer::next_decode(SliceDispatcher& dispatcher, std::int32_t vn,
                                double now_s,
                                std::vector<double>& device_free) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "decode on VN " + std::to_string(vn) + " with no live stream");
  const SequenceState& s = seq_[static_cast<std::size_t>(vn)];
  return dispatcher.dispatch_rows(vn, SliceKind::kDecode, now_s, device_free,
                                  {s.request}, {feature_row(s)});
}

void TokenStreamer::pause(std::int32_t vn) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "pause on VN " + std::to_string(vn) + " with no live stream");
  paused_.push_back(std::move(seq_[static_cast<std::size_t>(vn)]));
  live_[static_cast<std::size_t>(vn)] = 0;
}

Slot TokenStreamer::resume(SliceDispatcher& dispatcher, std::int32_t vn,
                           double now_s, std::vector<double>& device_free) {
  check(!paused_.empty(), "resume with no paused stream");
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(!live_[static_cast<std::size_t>(vn)],
        "resume into VN " + std::to_string(vn) + " already hosting a stream");
  seq_[static_cast<std::size_t>(vn)] = std::move(paused_.front());
  paused_.pop_front();
  live_[static_cast<std::size_t>(vn)] = 1;
  return next_decode(dispatcher, vn, now_s, device_free);
}

RequestRecord TokenStreamer::finish(std::int32_t vn) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "finish on VN " + std::to_string(vn) + " with no live stream");
  SequenceState& s = seq_[static_cast<std::size_t>(vn)];
  check(s.generated == s.request.stream_tokens,
        "finish on a stream that still wants tokens");
  RequestRecord rec;
  rec.id = s.request.id;
  rec.arrival_s = s.request.arrival_s;
  rec.dispatch_s = s.dispatch_s;
  // Honest accounting across fault retries: waits that preceded evicted
  // dispatches accumulate on the request (queue_wait_accum_s), and the
  // last stretch is measured from the latest queue entry.
  rec.queue_wait_s =
      s.request.queue_wait_accum_s + (s.dispatch_s - s.request.enqueued_s());
  rec.retries = s.request.retries;
  rec.compute_s = s.compute_s;
  rec.comm_s = s.comm_s;
  rec.first_token_s = s.first_token_s;
  rec.finish_s = s.token_stamps.back();
  rec.prediction = s.tokens.back();
  rec.tokens = std::move(s.tokens);
  rec.token_stamps = std::move(s.token_stamps);
  s = SequenceState{};
  live_[static_cast<std::size_t>(vn)] = 0;
  return rec;
}

InferRequest TokenStreamer::cancel(std::int32_t vn) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "cancel on VN " + std::to_string(vn) + " with no live stream");
  SequenceState& s = seq_[static_cast<std::size_t>(vn)];
  check(s.generated == 0,
        "cancel on a stream with landed tokens — pause/resume it instead");
  InferRequest r = std::move(s.request);
  s = SequenceState{};
  live_[static_cast<std::size_t>(vn)] = 0;
  return r;
}

void TokenStreamer::mark_retry(std::int32_t vn) {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  check(live_[static_cast<std::size_t>(vn)],
        "mark_retry on VN " + std::to_string(vn) + " with no live stream");
  ++seq_[static_cast<std::size_t>(vn)].request.retries;
}

bool TokenStreamer::active(std::int32_t vn) const {
  check_index(vn, static_cast<std::int64_t>(seq_.size()), "virtual-node slot");
  return live_[static_cast<std::size_t>(vn)] != 0;
}

}  // namespace vf::serve
