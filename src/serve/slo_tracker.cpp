#include "serve/slo_tracker.h"

#include <algorithm>

#include "util/common.h"
#include "util/stats.h"

namespace vf::serve {

SloTracker::SloTracker(double deadline_s) : deadline_s_(deadline_s) {
  check(deadline_s > 0.0, "SLO deadline must be positive");
}

void SloTracker::record_completion(RequestRecord r) {
  check(!r.rejected, "use record_rejection for rejected requests");
  check(r.finish_s >= r.arrival_s, "completion before arrival");
  check(r.dispatch_s >= r.arrival_s && r.dispatch_s <= r.finish_s,
        "dispatch stamp must lie between arrival and completion");
  r.deadline_met = r.latency_s() <= deadline_s_;
  if (!r.deadline_met) ++deadline_misses_;
  ++completed_;
  records_.push_back(std::move(r));
}

void SloTracker::record_rejection(const InferRequest& r, double now_s) {
  RequestRecord rec;
  rec.id = r.id;
  rec.arrival_s = r.arrival_s;
  rec.finish_s = now_s;
  rec.rejected = true;
  rec.deadline_met = false;
  ++rejected_;
  records_.push_back(std::move(rec));
}

std::int64_t SloTracker::completed() const { return completed_; }
std::int64_t SloTracker::rejected() const { return rejected_; }

namespace {
/// Projects `metric` over every completed (non-rejected) record.
template <typename Metric>
std::vector<double> completed_samples(const std::vector<RequestRecord>& records,
                                      Metric metric) {
  std::vector<double> xs;
  xs.reserve(records.size());
  for (const RequestRecord& r : records)
    if (!r.rejected) xs.push_back(metric(r));
  return xs;
}

/// Percentile with serving edge-case semantics: an empty sample set has no
/// latency (0.0, never a throw/NaN); util/stats handles one sample and
/// all-identical samples exactly (any percentile is the common value).
double safe_percentile(const std::vector<double>& xs, double p) {
  return xs.empty() ? 0.0 : percentile(xs, p);
}
}  // namespace

double SloTracker::latency_percentile_s(double p) const {
  return safe_percentile(
      completed_samples(records_, [](const RequestRecord& r) { return r.latency_s(); }),
      p);
}

double SloTracker::queue_wait_percentile_s(double p) const {
  return safe_percentile(
      completed_samples(records_,
                        [](const RequestRecord& r) { return r.queue_wait_s; }),
      p);
}

SloSummary SloTracker::summary() const {
  SloSummary s;
  s.completed = completed_;
  s.rejected = rejected_;
  s.deadline_misses = deadline_misses_;
  const std::vector<double> xs = completed_samples(
      records_, [](const RequestRecord& r) { return r.latency_s(); });
  if (!xs.empty()) {
    s.p50_s = percentile(xs, 0.50);
    s.p95_s = percentile(xs, 0.95);
    s.p99_s = percentile(xs, 0.99);
    s.mean_s = mean(xs);
    s.max_s = max_of(xs);
    s.hit_rate = static_cast<double>(completed_ - deadline_misses_) /
                 static_cast<double>(completed_);
    const std::vector<double> waits = completed_samples(
        records_, [](const RequestRecord& r) { return r.queue_wait_s; });
    const std::vector<double> inflight = completed_samples(
        records_, [](const RequestRecord& r) { return r.inflight_s(); });
    s.mean_queue_wait_s = mean(waits);
    s.p95_queue_wait_s = percentile(waits, 0.95);
    s.p99_queue_wait_s = percentile(waits, 0.99);
    s.mean_inflight_s = mean(inflight);
  }
  return s;
}

}  // namespace vf::serve
